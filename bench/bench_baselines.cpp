//===- bench/bench_baselines.cpp - prior-work comparison -------------------===//
//
// Compares the paper's transition-aware MILP against the two prior
// approaches it extends (Section 2 / Section 4.1):
//  * best single frequency meeting the deadline (no intra-program DVS);
//  * Hsu & Kremer's heuristic: slow the most memory-bound regions;
//  * Saputra et al.'s MILP with NO transition costs — optimized as if
//    switching were free, then *executed* under the real regulator.
// Expected shape: Saputra's schedules look best on paper but leak
// energy/time at run time once real switch costs bite (and can even
// blow the deadline); Hsu–Kremer is safe but leaves energy on the
// table; the transition-aware MILP dominates both at run time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "dvs/Baselines.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  // A deliberately heavy regulator makes the unmodeled-cost gap vivid.
  TransitionModel Reg = TransitionModel::withCapacitance(40e-6);

  std::printf("== Baseline comparison (c = 40 uF, Deadline 4) ==\n");
  Table T({"benchmark", "scheduler", "energy uJ", "time ms",
           "deadline ms", "met?", "transitions"});

  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile Prof = collectProfile(*Sim, Modes);
    double Deadline = fiveDeadlines(Prof)[3];

    auto addRow = [&](const char *Label, const ModeAssignment &A) {
      RunStats Run = Sim->run(Modes, A, Reg);
      T.addRow({Name, Label, formatDouble(Run.EnergyJoules * 1e6, 1),
                formatDouble(Run.TimeSeconds * 1e3, 2),
                formatDouble(Deadline * 1e3, 2),
                Run.TimeSeconds <= Deadline * 1.0001 ? "yes" : "NO",
                formatInt(static_cast<long long>(Run.Transitions))});
    };

    // Best single frequency meeting the deadline.
    int BestSingle = -1;
    for (size_t M = 0; M < Modes.size(); ++M)
      if (Prof.TotalTimeAtMode[M] <= Deadline &&
          (BestSingle < 0 ||
           Prof.TotalEnergyAtMode[M] <
               Prof.TotalEnergyAtMode[BestSingle]))
        BestSingle = static_cast<int>(M);
    if (BestSingle >= 0) {
      ModeAssignment Single = ModeAssignment::uniform(BestSingle);
      addRow("best-single", Single);
    }

    DvsOptions O;
    O.InitialMode = static_cast<int>(Modes.size()) - 1;

    ErrorOr<ScheduleResult> HK = scheduleHsuKremer(
        *W.Fn, Prof, Modes, Reg, Deadline, O.InitialMode);
    if (HK)
      addRow("hsu-kremer", HK->Assignment);

    ErrorOr<ScheduleResult> Sap = scheduleIgnoringTransitionCosts(
        *W.Fn, Prof, Modes, Deadline, O);
    if (Sap)
      addRow("saputra (no-cost MILP)", Sap->Assignment);

    DvsScheduler Full(*W.Fn, Prof, Modes, Reg, O);
    ErrorOr<ScheduleResult> Milp = Full.schedule(Deadline);
    if (Milp)
      addRow("transition-aware MILP", Milp->Assignment);
  }
  T.print();
  std::printf("\n('NO' rows show schedules that blow the deadline once "
              "real switch costs apply)\n");
  return 0;
}
