//===- bench/bench_table7_params.cpp - Tables 2 & 7 ------------------------===//
//
// Regenerates:
//  * Table 2 — the simulator configuration actually in effect;
//  * Table 7 — program parameters (Ncache, Noverlap, Ndependent in
//    kilo-cycles; tinvariant in microseconds) extracted by cycle-level
//    simulation at the fastest operating point, for the four benchmarks
//    the paper's analytic study uses.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  std::printf("== Table 2: simulator configuration ==\n");
  SimConfig C;
  Table T2({"parameter", "value"});
  T2.addRow({"L1 data-cache", "64K, 4-way (LRU), 32B blocks, 1-cycle"});
  T2.addRow({"L2 unified", "512K, 4-way (LRU), 32B blocks, 16-cycle"});
  T2.addRow({"DRAM service", formatDouble(C.DramSeconds * 1e9, 0) + " ns"
                             " (frequency invariant)"});
  T2.addRow({"int ALU / mul / div",
             formatInt(C.IntAluLatency) + " / " +
                 formatInt(C.IntMulLatency) + " / " +
                 formatInt(C.IntDivLatency) + " cycles"});
  T2.addRow({"fp add / mul / div",
             formatInt(C.FpAddLatency) + " / " +
                 formatInt(C.FpMulLatency) + " / " +
                 formatInt(C.FpDivLatency) + " cycles"});
  T2.addRow({"DVS modes", "200MHz@0.7V, 600MHz@1.3V, 800MHz@1.65V"});
  T2.print();

  std::printf("\n== Table 7: simulated program parameters ==\n");
  ModeTable Modes = ModeTable::xscale3();
  Table T7({"benchmark", "Ncache (Kcycles)", "Noverlap (Kcycles)",
            "Ndependent (Kcycles)", "tinvariant (us)"});
  for (const std::string &Name : analyticBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile P = collectProfile(*Sim, Modes);
    const RunStats &R = P.Reference;
    T7.addRow({Name,
               formatDouble(static_cast<double>(R.NcacheCycles) / 1e3, 1),
               formatDouble(static_cast<double>(R.NoverlapCycles) / 1e3, 1),
               formatDouble(static_cast<double>(R.NdependentCycles) / 1e3,
                            1),
               formatDouble(R.TinvariantSeconds * 1e6, 1)});
  }
  T7.print();

  std::printf("\n== Supplement: whole-program behaviour at the fastest "
              "mode ==\n");
  Table TS({"benchmark", "instructions", "loads", "stores", "L1D misses",
            "L2 misses", "time at 800MHz (ms)", "energy (mJ)"});
  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    RunStats R = Sim->runAtLevel(Modes.level(Modes.size() - 1));
    TS.addRow({Name, formatInt(static_cast<long long>(R.Instructions)),
               formatInt(static_cast<long long>(R.Loads)),
               formatInt(static_cast<long long>(R.Stores)),
               formatInt(static_cast<long long>(R.L1DMisses)),
               formatInt(static_cast<long long>(R.L2Misses)),
               formatDouble(R.TimeSeconds * 1e3, 3),
               formatDouble(R.EnergyJoules * 1e3, 3)});
  }
  TS.print();
  return 0;
}
