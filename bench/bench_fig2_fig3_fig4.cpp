//===- bench/bench_fig2_fig3_fig4.cpp - Figures 2, 3, 4 -------------------===//
//
// Regenerates the continuous-voltage energy curves of Section 3.3:
//  * Figure 2 — computation-dominated: energy vs v1 is minimized at a
//    single voltage videal (v1 == v2);
//  * Figure 3 — memory-dominated: two-voltage optimum, with the best v1
//    *below* videal and v2 above it;
//  * Figure 4 — memory-dominated with slack (Ncache >= Noverlap): convex
//    single-voltage optimum again.
// Each series prints v1, total energy E(v1) (with v2 chosen optimally
// for the deadline), and the implied v2. Energy units: cycles * volts^2.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

void printCurve(const char *Title, const AnalyticModel &M,
                const AnalyticParams &P) {
  std::printf("\n== %s ==\n", Title);
  std::printf("   regime: %s, finvariant = %.1f MHz, single-f energy = "
              "%.4g\n",
              analyticCaseName(M.classify(P)), M.finvariant(P) / 1e6,
              M.singleFrequencyEnergy(P));
  ContinuousSolution S = M.solveContinuous(P);
  std::printf("   optimum: v1 = %.4f V (f1 = %.1f MHz), v2 = %.4f V "
              "(f2 = %.1f MHz), E = %.4g, saving = %.3f\n",
              S.V1, S.F1 / 1e6, S.V2, S.F2 / 1e6, S.EnergyMulti,
              S.SavingRatio);
  Table T({"v1 (V)", "E(v1)", "v2 (V)"});
  for (int I = 0; I <= 40; ++I) {
    double V1 = M.vMin() + (M.vMax() - M.vMin()) * I / 40.0;
    double E = M.energyAtV1(P, V1);
    if (!std::isfinite(E)) {
      T.addRow({formatDouble(V1, 3), "infeasible", "-"});
      continue;
    }
    // Recover the v2 the curve uses at this v1.
    double F1 = M.vfModel().frequencyAt(V1);
    double Region1 = std::max(P.TinvariantSeconds + P.NcacheCycles / F1,
                              P.NoverlapCycles / F1);
    double Rem = P.TdeadlineSeconds - Region1;
    double V2 = P.NdependentCycles > 0.0 && Rem > 0.0
                    ? std::max(M.vfModel().voltageFor(
                                   P.NdependentCycles / Rem),
                               M.vMin())
                    : V1;
    T.addRow({formatDouble(V1, 3), formatDouble(E, 0),
              formatDouble(V2, 3)});
  }
  T.print();
}

} // namespace

int main() {
  AnalyticModel M(VfModel::paperDefault(), 0.6, 3.3);

  // Figure 2: computation dominated — big overlap stream, small miss
  // window; a single frequency meets the deadline with memory hidden.
  AnalyticParams Fig2;
  Fig2.NoverlapCycles = 8e6;
  Fig2.NcacheCycles = 1e6;
  Fig2.NdependentCycles = 8e6;
  Fig2.TinvariantSeconds = 0.5e-3;
  Fig2.TdeadlineSeconds = 16e-3;
  printCurve("Figure 2: computation dominated", M, Fig2);

  // Figure 3: memory dominated — long miss window makes two voltages
  // optimal (slow hidden overlap, fast dependent phase).
  AnalyticParams Fig3;
  Fig3.NoverlapCycles = 4e6;
  Fig3.NcacheCycles = 0.3e6;
  Fig3.NdependentCycles = 5.8e6;
  Fig3.TinvariantSeconds = 20e-3;
  Fig3.TdeadlineSeconds = 30e-3;
  printCurve("Figure 3: memory dominated", M, Fig3);

  // Figure 4: memory dominated with slack — the cache-hit stream
  // exceeds the overlap stream, so slowing v1 dilates memory itself.
  AnalyticParams Fig4;
  Fig4.NoverlapCycles = 1e6;
  Fig4.NcacheCycles = 4e6;
  Fig4.NdependentCycles = 5e6;
  Fig4.TinvariantSeconds = 5e-3;
  Fig4.TdeadlineSeconds = 40e-3;
  printCurve("Figure 4: memory dominated with slack", M, Fig4);
  return 0;
}
