//===- bench/bench_table4_deadlines.cpp - Table 4 / Figure 16 -------------===//
//
// Regenerates Table 4: each benchmark's execution time when running
// entirely at 200, 600, or 800 MHz, plus the five chosen deadlines
// (Figure 16's positions: 1 = stringent, just above the 800 MHz time;
// 5 = lax, just under the 200 MHz time). Times in milliseconds.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  std::printf("== Table 4: execution times and chosen deadlines (ms) "
              "==\n");
  Table T({"benchmark", "T@200MHz", "T@600MHz", "T@800MHz", "Deadline5",
           "Deadline4", "Deadline3", "Deadline2", "Deadline1"});
  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile P = collectProfile(*Sim, Modes);
    std::vector<double> D = fiveDeadlines(P);
    T.addRow({Name, formatDouble(P.TotalTimeAtMode[0] * 1e3, 2),
              formatDouble(P.TotalTimeAtMode[1] * 1e3, 2),
              formatDouble(P.TotalTimeAtMode[2] * 1e3, 2),
              formatDouble(D[4] * 1e3, 2), formatDouble(D[3] * 1e3, 2),
              formatDouble(D[2] * 1e3, 2), formatDouble(D[1] * 1e3, 2),
              formatDouble(D[0] * 1e3, 2)});
  }
  T.print();
  return 0;
}
