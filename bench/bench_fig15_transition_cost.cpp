//===- bench/bench_fig15_transition_cost.cpp - Figure 15 ------------------===//
//
// Regenerates the transition-cost study of Section 6.2: sweep the power
// regulator capacitance c over {100u, 10u, 1u, 0.1u, 0.01u} F at the lax
// Deadline 5 and report, per benchmark:
//  * schedule energy normalized to the fixed 600 MHz run (the paper's
//    Figure 15 bars), and
//  * the dynamic mode-transition count (the paper's in-text numbers:
//    near zero at c = 100 uF, large at the smallest c).
// As c falls the energy approaches the (0.7/1.3)^2 ~ 0.29 bound of
// all-200 MHz operation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  const std::vector<double> Caps = {100e-6, 10e-6, 1e-6, 0.1e-6,
                                    0.01e-6};

  std::printf("== Figure 15: energy vs transition cost (normalized to "
              "600 MHz fixed) ==\n");
  Table TE({"benchmark", "c=100uF", "c=10uF", "c=1uF", "c=0.1uF",
            "c=0.01uF"});
  Table TT({"benchmark", "c=100uF", "c=10uF", "c=1uF", "c=0.1uF",
            "c=0.01uF"});

  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile Prof = collectProfile(*Sim, Modes);
    double Deadline = fiveDeadlines(Prof)[4]; // Deadline 5 (lax)
    double Base600 = Prof.TotalEnergyAtMode[1];

    std::vector<std::string> RowE = {Name}, RowT = {Name};
    for (double C : Caps) {
      TransitionModel Reg = TransitionModel::withCapacitance(C);
      DvsOptions O;
      O.InitialMode = 1; // start at the 600 MHz baseline mode
      DvsScheduler Sched(*W.Fn, Prof, Modes, Reg, O);
      ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
      if (!R) {
        RowE.push_back("-");
        RowT.push_back("-");
        continue;
      }
      RunStats Run = Sim->run(Modes, R->Assignment, Reg);
      RowE.push_back(formatDouble(Run.EnergyJoules / Base600, 3));
      RowT.push_back(formatInt(static_cast<long long>(Run.Transitions)));
    }
    TE.addRow(RowE);
    TT.addRow(RowT);
  }
  TE.print();
  std::printf("\n== Dynamic transition counts over the same sweep ==\n");
  TT.print();
  std::printf("\n(V^2 bound for all-200MHz: (0.7/1.3)^2 = %.3f)\n",
              (0.7 * 0.7) / (1.3 * 1.3));
  return 0;
}
