//===- bench/bench_service.cpp - Scheduling-service throughput -------------===//
//
// Measures what the cdvs-service tentpole buys over bare scheduling:
//  * cold vs warm batch throughput — the same 18-job batch (the six
//    Section 6 benchmarks x three deadline tightnesses) run twice on one
//    service; the warm pass must be served entirely from the
//    content-addressed result cache, with byte-identical schedules, at
//    >= 10x the cold throughput;
//  * concurrent-duplicate collapse — 16 identical requests released at
//    once must cost exactly one MILP solve (cache misses == 1), the rest
//    collapsing onto the in-flight leader or hitting the fresh entry.
//
// The checks are hard asserts, so the binary doubles as an integration
// test; scripts/check.sh runs it. Results also land in
// BENCH_service.json for machine consumption.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/Service.h"
#include "support/ArgParse.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

double seconds(std::chrono::steady_clock::time_point Start,
               std::chrono::steady_clock::time_point End) {
  return std::chrono::duration<double>(End - Start).count();
}

/// The 18-job batch: every Section 6 benchmark at a stringent, mid, and
/// lax relative deadline.
std::vector<JobRequest> makeBatch() {
  std::vector<JobRequest> Batch;
  for (const std::string &Name : milpBenchmarks())
    for (double Tightness : {0.15, 0.5, 0.85}) {
      JobRequest R;
      R.Id = Name + "@" + formatDouble(Tightness, 2);
      R.Workload = Name;
      R.DeadlineTightness = Tightness;
      Batch.push_back(R);
    }
  return Batch;
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("bench_service",
              "scheduling-service throughput: cold vs warm batches and "
              "concurrent-duplicate collapse");
  int &Threads =
      P.addInt("threads", 0, "service workers; 0 = one per core");
  std::string &OutPath = P.addString("benchmark_out", "BENCH_service.json",
                                     "JSON results file");
  if (!P.parseOrExit(argc, argv))
    return 0;

  // Part 1: cold vs warm throughput on one service.
  ServiceOptions Opts;
  Opts.NumWorkers = Threads;
  Opts.QueueCapacity = 64;
  SchedulerService Service(Opts);

  std::vector<JobRequest> Batch = makeBatch();
  auto T0 = std::chrono::steady_clock::now();
  std::vector<JobResult> Cold = Service.runBatch(Batch);
  auto T1 = std::chrono::steady_clock::now();
  std::vector<JobResult> Warm = Service.runBatch(Batch);
  auto T2 = std::chrono::steady_clock::now();
  double ColdSec = seconds(T0, T1), WarmSec = seconds(T1, T2);

  Table Tbl({"job", "status", "cold_ms", "warm_ms", "warm_hit",
             "identical", "energy_uJ"});
  size_t WarmHits = 0, Identical = 0;
  for (size_t I = 0; I < Batch.size(); ++I) {
    const JobResult &C = Cold[I], &W = Warm[I];
    assert(C.Status == JobStatus::Done && "cold batch job failed");
    assert(W.Status == JobStatus::Done && "warm batch job failed");
    assert(W.Fingerprint == C.Fingerprint &&
           "same request fingerprinted differently across passes");
    bool Same = W.ScheduleText == C.ScheduleText;
    WarmHits += W.CacheHit;
    Identical += Same;
    Tbl.addRow({C.Id, jobStatusName(W.Status),
                formatDouble(C.TotalSeconds * 1e3, 2),
                formatDouble(W.TotalSeconds * 1e3, 3),
                W.CacheHit ? "yes" : "NO", Same ? "yes" : "NO",
                formatDouble(W.PredictedEnergyJoules * 1e6, 1)});
  }
  std::printf("== cold vs warm batch (18 jobs) ==\n");
  Tbl.print();
  double Speedup = ColdSec / WarmSec;
  std::printf("cold %.3f s  warm %.6f s  speedup %.0fx\n\n", ColdSec,
              WarmSec, Speedup);

  // Stage breakdown of the cold pass: where a fresh batch spends its
  // time (profiling dominates; the MILP and serialization are the part
  // the cache removes).
  double StageQueue = 0, StageProfile = 0, StageBound = 0,
         StageSolve = 0, StageSerialize = 0, StageTotal = 0;
  for (const JobResult &C : Cold) {
    StageQueue += C.QueueSeconds;
    StageProfile += C.ProfileSeconds;
    StageBound += C.BoundSeconds;
    StageSolve += C.SolveSeconds;
    StageSerialize += C.SerializeSeconds;
    StageTotal += C.TotalSeconds;
  }
  Table Stages({"stage", "total_ms", "mean_ms", "share"});
  auto stageRow = [&](const char *Name, double Sum) {
    Stages.addRow({Name, formatDouble(Sum * 1e3, 2),
                   formatDouble(Sum * 1e3 / double(Cold.size()), 3),
                   formatDouble(StageTotal > 0 ? Sum / StageTotal : 0.0,
                                3)});
  };
  stageRow("queue", StageQueue);
  stageRow("profile", StageProfile);
  stageRow("bound", StageBound);
  stageRow("solve", StageSolve);
  stageRow("serialize", StageSerialize);
  stageRow("total", StageTotal);
  std::printf("== cold-pass stage breakdown ==\n");
  Stages.print();
  std::printf("\n");
  assert(WarmHits == Batch.size() &&
         "warm pass was not served entirely from the result cache");
  assert(Identical == Batch.size() &&
         "cached schedule differs from the fresh solve");
  assert(Speedup >= 10.0 && "warm batch under the 10x throughput floor");

  // Part 2: single-flight collapse. A fresh service (empty result cache)
  // profiles the workload once, then releases 16 identical requests from
  // a paused queue so every worker picks one up in the same instant. The
  // cache must record exactly one miss — one MILP solve for all 16 —
  // with the rest collapsing onto the leader's flight or hitting the
  // freshly installed entry. Observing collapses (not just hits) needs
  // the solve to outlast a scheduling quantum even on one core, so the
  // instances are deliberately hard — tight deadline, 16 voltage
  // levels, edge filtering off — escalating if this machine is too fast.
  struct DupCase {
    const char *Workload;
    double Tightness;
  };
  const DupCase DupCases[] = {
      {"mpg123", 0.03}, {"mpg123", 0.05}, {"mpeg_decode", 0.05}};
  ServiceOptions DupOpts;
  DupOpts.NumWorkers = 16;
  DupOpts.QueueCapacity = 64;
  const int NumDup = 16;
  long DupMisses = 0, DupShared = 0, DupHits = 0;
  double DupTightness = 0.0;
  const char *DupWorkload = "";
  for (const DupCase &Case : DupCases) {
    SchedulerService Dup(DupOpts);
    JobRequest R;
    R.Workload = Case.Workload;
    R.DeadlineTightness = Case.Tightness;
    R.NumLevels = 16;
    R.FilterThreshold = 0.0;
    DupTightness = R.DeadlineTightness;
    DupWorkload = Case.Workload;

    // Pre-warm the profile cache (distinct filter => distinct
    // fingerprint, so the result cache stays cold for the real run).
    JobRequest Warmup = R;
    Warmup.Id = "warmup";
    Warmup.FilterThreshold = 0.5;
    assert(Dup.submit(Warmup).get().Status == JobStatus::Done);
    CacheStats Before = Dup.cacheStats();

    Dup.pause();
    std::vector<std::future<JobResult>> Futures;
    for (int I = 0; I < NumDup; ++I) {
      R.Id = "dup" + std::to_string(I);
      Futures.push_back(Dup.submit(R));
    }
    Dup.resume();
    for (auto &F : Futures) {
      JobResult Res = F.get();
      assert(Res.Status == JobStatus::Done && "duplicate job failed");
      DupShared += Res.SharedFlight;
      DupHits += Res.CacheHit;
    }
    CacheStats After = Dup.cacheStats();
    DupMisses = After.Misses - Before.Misses;
    assert(DupMisses == 1 &&
           "16 identical requests cost more than one MILP solve");
    if (DupShared > 0)
      break; // collapse observed; no need to retry slower deadlines
  }
  std::printf("== single-flight collapse (16 identical requests) ==\n");
  std::printf("%s @ tightness %.2f: misses %ld, shared flights %ld, "
              "cache hits %ld\n\n",
              DupWorkload, DupTightness, DupMisses, DupShared, DupHits);
  assert(DupShared >= 1 && "no request collapsed onto the leader");

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "bench_service: cannot write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::fprintf(
      Out,
      "{\n"
      "  \"benchmark\": \"bench_service\",\n"
      "  \"jobs\": %zu,\n"
      "  \"cold_seconds\": %.6f,\n"
      "  \"warm_seconds\": %.6f,\n"
      "  \"warm_speedup\": %.1f,\n"
      "  \"warm_cache_hits\": %zu,\n"
      "  \"byte_identical_schedules\": %zu,\n"
      "  \"cold_stage_seconds\": {\n"
      "    \"queue\": %.6f,\n"
      "    \"profile\": %.6f,\n"
      "    \"bound\": %.6f,\n"
      "    \"solve\": %.6f,\n"
      "    \"serialize\": %.6f,\n"
      "    \"total\": %.6f\n"
      "  },\n"
      "  \"single_flight\": {\n"
      "    \"requests\": %d,\n"
      "    \"milp_solves\": %ld,\n"
      "    \"shared_flights\": %ld,\n"
      "    \"cache_hits\": %ld\n"
      "  }\n"
      "}\n",
      Batch.size(), ColdSec, WarmSec, Speedup, WarmHits, Identical,
      StageQueue, StageProfile, StageBound, StageSolve, StageSerialize,
      StageTotal, NumDup, DupMisses, DupShared, DupHits);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
