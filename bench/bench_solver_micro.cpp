//===- bench/bench_solver_micro.cpp - solver microbenchmarks ---------------===//
//
// google-benchmark timings of the from-scratch substrates: the dense
// bounded-variable simplex, the branch-and-bound MILP (warm-started and
// cold, serial and threaded), the cycle-level simulator, and end-to-end
// DVS scheduling. These are the pieces whose wall-clock cost the paper's
// Figures 14/18 measure; the microbenches track their throughput across
// instance sizes. Run with no arguments the binary also writes its
// results to BENCH_solver.json (google-benchmark JSON format).
//
//===----------------------------------------------------------------------===//

#include "../tests/common/RandomMilp.h"
#include "BenchCommon.h"
#include "support/ArgParse.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace cdvs;
using namespace cdvs::bench;
using testutil::makeModeAssignment;
using testutil::makeRandomLp;
using testutil::ModeAssignmentCase;

namespace {

void BM_SimplexDense(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  LpProblem P = makeRandomLp(N, N / 2, 42);
  for (auto _ : State) {
    LpSolution S = solveLp(P);
    benchmark::DoNotOptimize(S.Objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(20)->Arg(60)->Arg(120)->Arg(240);

/// Warm re-solve throughput: one engine, a bound toggled per iteration.
/// The cold equivalent is BM_SimplexDense — here only a few dual pivots
/// run per solve.
void BM_SimplexWarmResolve(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  LpProblem P = makeRandomLp(N, N / 2, 42);
  SimplexEngine Engine(P);
  benchmark::DoNotOptimize(Engine.solve().Objective);
  double Hi = P.upperBound(0);
  bool Shrunk = false;
  for (auto _ : State) {
    Shrunk = !Shrunk;
    Engine.setBounds(0, 0.0, Shrunk ? 0.25 * Hi : Hi);
    LpSolution S = Engine.solve();
    benchmark::DoNotOptimize(S.Objective);
  }
}
BENCHMARK(BM_SimplexWarmResolve)->Arg(20)->Arg(60)->Arg(120)->Arg(240);

/// Solves one mode-assignment instance with the given options.
double solveModeAssignment(const ModeAssignmentCase &C,
                           const MilpOptions &Opts) {
  MilpSolver S(C.P, C.Integers, Opts);
  for (const auto &G : C.Groups)
    S.addSos1Group(G);
  return S.solve().Objective;
}

/// Mode-assignment MILP with the historical mid-range deadline
/// (tightness 0.5): the rounding heuristic proves optimality at the
/// root, so this tracks root-LP + heuristic cost, not tree search.
void BM_MilpModeAssignment(benchmark::State &State) {
  int Groups = static_cast<int>(State.range(0));
  ModeAssignmentCase C = makeModeAssignment(Groups, 0.5, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(solveModeAssignment(C, MilpOptions()));
}
BENCHMARK(BM_MilpModeAssignment)->Arg(6)->Arg(12)->Arg(24);

/// Tight-deadline mode assignment: range(1) is the deadline tightness in
/// percent. Tight deadlines force real branch-and-bound trees (tens to
/// hundreds of nodes), which is where warm-started node LPs pay off.
void BM_MilpTightDeadline(benchmark::State &State) {
  ModeAssignmentCase C = makeModeAssignment(
      static_cast<int>(State.range(0)),
      static_cast<double>(State.range(1)) / 100.0, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(solveModeAssignment(C, MilpOptions()));
}
BENCHMARK(BM_MilpTightDeadline)
    ->Args({24, 15})
    ->Args({24, 5})
    ->Args({48, 10});

/// The same instances with warm starting disabled: every node runs the
/// cold two-phase simplex, which is what the solver did before the
/// persistent-engine rework. The ratio to BM_MilpTightDeadline is the
/// warm-start speedup.
void BM_MilpColdStart(benchmark::State &State) {
  ModeAssignmentCase C = makeModeAssignment(
      static_cast<int>(State.range(0)),
      static_cast<double>(State.range(1)) / 100.0, 7);
  MilpOptions O;
  O.WarmStart = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(solveModeAssignment(C, O));
}
BENCHMARK(BM_MilpColdStart)->Args({24, 15})->Args({24, 5})->Args({48, 10});

/// Thread scaling on one hard instance; range(0) is NumThreads. On a
/// single-core container this mostly measures the coordination overhead
/// of the work-stealing pool.
void BM_MilpThreads(benchmark::State &State) {
  ModeAssignmentCase C = makeModeAssignment(48, 0.10, 7);
  MilpOptions O;
  O.NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(solveModeAssignment(C, O));
}
BENCHMARK(BM_MilpThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SimulatorThroughput(benchmark::State &State) {
  Workload W = workloadByName("gsm");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  uint64_t Insts = 0;
  for (auto _ : State) {
    RunStats S = Sim.runAtLevel({1.65, 800e6});
    Insts += S.Instructions;
    benchmark::DoNotOptimize(S.EnergyJoules);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_ProfileCollection(benchmark::State &State) {
  Workload W = workloadByName("ghostscript");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  ModeTable Modes = ModeTable::xscale3();
  for (auto _ : State) {
    Profile P = collectProfile(Sim, Modes);
    benchmark::DoNotOptimize(P.TotalTimeAtMode[0]);
  }
}
BENCHMARK(BM_ProfileCollection)->Unit(benchmark::kMillisecond);

void BM_EndToEndSchedule(benchmark::State &State) {
  Workload W = workloadByName("mpeg_decode");
  auto Sim = makeSimulator(W, W.defaultInput());
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(*Sim, Modes);
  double Deadline =
      0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());
  for (auto _ : State) {
    DvsOptions O;
    O.InitialMode = 2;
    DvsScheduler Sched(*W.Fn, Prof, Modes, Reg, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    benchmark::DoNotOptimize(R.hasValue());
  }
}
BENCHMARK(BM_EndToEndSchedule)->Unit(benchmark::kMillisecond);

/// Certified presolve on/off over the Section 6 MILP instances at the
/// Figure 17/18 mid-range deadline (the ladder's Deadline 4, the widest
/// real branch-and-bound tree). range(0) indexes milpBenchmarks(),
/// range(1) toggles the presolve; counters record the instance size,
/// the reduction, and the tree the solver actually explored, so the
/// JSON record shows what the presolve buys per workload.
void BM_SchedulePresolve(benchmark::State &State) {
  std::vector<std::string> Names = milpBenchmarks();
  size_t WI = static_cast<size_t>(State.range(0)) % Names.size();
  bool Presolve = State.range(1) != 0;
  Workload W = workloadByName(Names[WI]);
  auto Sim = makeSimulator(W, W.defaultInput());
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(*Sim, Modes);
  // Deadline 2 of the Figure 16 ladder: stringent enough to force a
  // real branch-and-bound tree instead of a root-LP round-off.
  double Deadline = fiveDeadlines(Prof)[1];
  // Amortize the static analysis across solves, as the service does.
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(*W.Fn);
  DvsOptions O;
  O.InitialMode = static_cast<int>(Modes.size()) - 1;
  O.Presolve = Presolve;
  O.Analysis = &FA;

  ScheduleResult Last;
  for (auto _ : State) {
    DvsScheduler Sched(*W.Fn, Prof, Modes, Reg, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    if (!R) {
      State.SkipWithError(R.message().c_str());
      return;
    }
    Last = *R;
    benchmark::DoNotOptimize(Last.PredictedEnergyJoules);
  }
  State.SetLabel(Names[WI] + (Presolve ? "/presolve" : "/full"));
  State.counters["vars"] = static_cast<double>(Last.NumVars);
  State.counters["rows"] = static_cast<double>(Last.NumRows);
  State.counters["solved_vars"] = static_cast<double>(Last.SolvedVars);
  State.counters["solved_rows"] = static_cast<double>(Last.SolvedRows);
  State.counters["vars_fixed"] =
      static_cast<double>(Last.PresolveVarsFixed);
  State.counters["rows_dropped"] =
      static_cast<double>(Last.PresolveRowsDropped);
  State.counters["bb_nodes"] = static_cast<double>(Last.Nodes);
}
BENCHMARK(BM_SchedulePresolve)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

} // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_solver.json (JSON format) so every run leaves a machine-readable
// record next to the printed table. Unrecognized --benchmark_* flags
// pass through to google-benchmark untouched.
int main(int argc, char **argv) {
  ArgParser P("bench_solver_micro",
              "google-benchmark microbenches of the simplex, MILP, "
              "simulator, and end-to-end scheduling substrates");
  std::string &Out = P.addString("benchmark_out", "BENCH_solver.json",
                                 "results file (google-benchmark)");
  std::string &Format = P.addString("benchmark_out_format", "json",
                                    "results format (google-benchmark)");
  P.allowUnknown(true);
  if (!P.parseOrExit(argc, argv))
    return 0;

  // Rebuild an argv for benchmark::Initialize from the parsed values (so
  // the defaults apply) plus every pass-through --benchmark_* flag.
  std::vector<std::string> Rebuilt;
  Rebuilt.push_back(argv[0]);
  Rebuilt.push_back("--benchmark_out=" + Out);
  Rebuilt.push_back("--benchmark_out_format=" + Format);
  for (const std::string &A : P.unparsed())
    Rebuilt.push_back(A);
  std::vector<char *> Args;
  for (std::string &A : Rebuilt)
    Args.push_back(A.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
