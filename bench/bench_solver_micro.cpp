//===- bench/bench_solver_micro.cpp - solver microbenchmarks ---------------===//
//
// google-benchmark timings of the from-scratch substrates: the dense
// bounded-variable simplex, the branch-and-bound MILP, the cycle-level
// simulator, and end-to-end DVS scheduling. These are the pieces whose
// wall-clock cost the paper's Figures 14/18 measure; the microbenches
// track their throughput across instance sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

/// Random dense feasible LP with the given shape.
LpProblem makeLp(int Vars, int Rows, uint64_t Seed) {
  Rng R(Seed);
  LpProblem P;
  std::vector<double> X0(Vars);
  for (int J = 0; J < Vars; ++J) {
    double Ub = 1.0 + R.nextDouble() * 4.0;
    X0[J] = R.nextDouble() * Ub;
    P.addVariable(0.0, Ub, R.nextDouble() * 10.0 - 5.0);
  }
  for (int I = 0; I < Rows; ++I) {
    std::vector<LpTerm> Terms;
    double Act = 0.0;
    for (int J = 0; J < Vars; ++J) {
      double A = R.nextDouble() * 6.0 - 3.0;
      Terms.push_back({J, A});
      Act += A * X0[J];
    }
    P.addRow(RowSense::LE, Act + R.nextDouble() * 2.0, Terms);
  }
  return P;
}

void BM_SimplexDense(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  LpProblem P = makeLp(N, N / 2, 42);
  for (auto _ : State) {
    LpSolution S = solveLp(P);
    benchmark::DoNotOptimize(S.Objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(20)->Arg(60)->Arg(120)->Arg(240);

void BM_MilpModeAssignment(benchmark::State &State) {
  // Mode-assignment MILP: G groups x 3 modes + deadline row.
  int Groups = static_cast<int>(State.range(0));
  Rng R(7);
  LpProblem P;
  std::vector<std::vector<int>> K(Groups);
  std::vector<LpTerm> TimeRow;
  double MinT = 0, MaxT = 0;
  for (int G = 0; G < Groups; ++G) {
    std::vector<LpTerm> Sum;
    double GMin = 1e18, GMax = 0;
    for (int M = 0; M < 3; ++M) {
      double E = 1.0 + R.nextDouble() * 9.0;
      double T = 1.0 + R.nextDouble() * 9.0;
      int V = P.addVariable(0.0, 1.0, E);
      K[G].push_back(V);
      Sum.push_back({V, 1.0});
      TimeRow.push_back({V, T});
      GMin = std::min(GMin, T);
      GMax = std::max(GMax, T);
    }
    P.addRow(RowSense::EQ, 1.0, Sum);
    MinT += GMin;
    MaxT += GMax;
  }
  P.addRow(RowSense::LE, 0.5 * (MinT + MaxT), TimeRow);
  std::vector<int> Ints;
  for (auto &G : K)
    Ints.insert(Ints.end(), G.begin(), G.end());
  for (auto _ : State) {
    MilpSolver S(P, Ints);
    for (auto &G : K)
      S.addSos1Group(G);
    MilpSolution Sol = S.solve();
    benchmark::DoNotOptimize(Sol.Objective);
  }
}
BENCHMARK(BM_MilpModeAssignment)->Arg(6)->Arg(12)->Arg(24);

void BM_SimulatorThroughput(benchmark::State &State) {
  Workload W = workloadByName("gsm");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  uint64_t Insts = 0;
  for (auto _ : State) {
    RunStats S = Sim.runAtLevel({1.65, 800e6});
    Insts += S.Instructions;
    benchmark::DoNotOptimize(S.EnergyJoules);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_ProfileCollection(benchmark::State &State) {
  Workload W = workloadByName("ghostscript");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  ModeTable Modes = ModeTable::xscale3();
  for (auto _ : State) {
    Profile P = collectProfile(Sim, Modes);
    benchmark::DoNotOptimize(P.TotalTimeAtMode[0]);
  }
}
BENCHMARK(BM_ProfileCollection)->Unit(benchmark::kMillisecond);

void BM_EndToEndSchedule(benchmark::State &State) {
  Workload W = workloadByName("mpeg_decode");
  auto Sim = makeSimulator(W, W.defaultInput());
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(*Sim, Modes);
  double Deadline =
      0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());
  for (auto _ : State) {
    DvsOptions O;
    O.InitialMode = 2;
    DvsScheduler Sched(*W.Fn, Prof, Modes, Reg, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    benchmark::DoNotOptimize(R.hasValue());
  }
}
BENCHMARK(BM_EndToEndSchedule)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
