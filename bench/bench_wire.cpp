//===- bench/bench_wire.cpp - cdvs-wire framing microbenchmarks ------------===//
//
// google-benchmark timings of the cdvs-wire v1 codec in isolation:
// header encode/decode, whole-frame encode across payload sizes, and
// FrameParser reassembly throughput for contiguous streams and for the
// fragmented arrival pattern real sockets produce. The parser numbers
// bound what one net::Server loop thread can ingest before the MILP
// pipeline — not the network — is the bottleneck. Run with no arguments
// the binary also writes BENCH_wire.json (google-benchmark format).
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"
#include "support/ArgParse.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace cdvs;
using namespace cdvs::net;

namespace {

void BM_HeaderEncode(benchmark::State &State) {
  FrameHeader H;
  H.Type = FrameType::Request;
  H.Correlation = 0x123456789abcdef0ull;
  H.PayloadBytes = 512;
  unsigned char B[kFrameHeaderBytes];
  for (auto _ : State) {
    encodeFrameHeader(H, B);
    benchmark::DoNotOptimize(B);
  }
}
BENCHMARK(BM_HeaderEncode);

void BM_HeaderDecode(benchmark::State &State) {
  FrameHeader H;
  H.Type = FrameType::Request;
  H.Correlation = 0x123456789abcdef0ull;
  H.PayloadBytes = 512;
  unsigned char B[kFrameHeaderBytes];
  encodeFrameHeader(H, B);
  FrameHeader Out;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        decodeFrameHeader(B, sizeof(B), ~size_t{0}, Out));
    benchmark::DoNotOptimize(Out.Correlation);
  }
}
BENCHMARK(BM_HeaderDecode);

/// Whole-frame encode; range(0) is the payload size in bytes (256 is a
/// typical request, 4K a schedule-bearing response).
void BM_FrameEncode(benchmark::State &State) {
  std::string Payload(static_cast<size_t>(State.range(0)), 'x');
  uint64_t Corr = 1;
  for (auto _ : State) {
    std::string Bytes = encodeFrame(FrameType::Request, Corr++, Payload);
    benchmark::DoNotOptimize(Bytes.data());
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(Payload.size() +
                                               kFrameHeaderBytes));
}
BENCHMARK(BM_FrameEncode)->Arg(0)->Arg(256)->Arg(4096)->Arg(65536);

/// Parser throughput on a contiguous batch of frames (the happy case:
/// one recv() returned many whole frames).
void BM_ParseContiguousStream(benchmark::State &State) {
  const size_t PayloadBytes = static_cast<size_t>(State.range(0));
  const int FramesPerBatch = 64;
  std::string Stream;
  for (int I = 0; I < FramesPerBatch; ++I)
    Stream += encodeFrame(FrameType::Request,
                          static_cast<uint64_t>(I + 1),
                          std::string(PayloadBytes, 'p'));
  for (auto _ : State) {
    FrameParser Parser;
    Parser.feed(Stream.data(), Stream.size());
    Frame F;
    int N = 0;
    while (Parser.next(F) == FrameParser::Next::Frame)
      ++N;
    benchmark::DoNotOptimize(N);
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(Stream.size()));
}
BENCHMARK(BM_ParseContiguousStream)->Arg(256)->Arg(4096);

/// Parser throughput when frames arrive fragmented; range(0) is the
/// chunk size fed per call (a small MTU-ish slice splits most frames
/// across feeds and stresses the reassembly path).
void BM_ParseFragmentedStream(benchmark::State &State) {
  const size_t Chunk = static_cast<size_t>(State.range(0));
  const int FramesPerBatch = 64;
  std::string Stream;
  for (int I = 0; I < FramesPerBatch; ++I)
    Stream += encodeFrame(FrameType::Request,
                          static_cast<uint64_t>(I + 1),
                          std::string(1024, 'p'));
  for (auto _ : State) {
    FrameParser Parser;
    Frame F;
    int N = 0;
    for (size_t Off = 0; Off < Stream.size(); Off += Chunk) {
      Parser.feed(Stream.data() + Off,
                  std::min(Chunk, Stream.size() - Off));
      while (Parser.next(F) == FrameParser::Next::Frame)
        ++N;
    }
    benchmark::DoNotOptimize(N);
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(Stream.size()));
}
BENCHMARK(BM_ParseFragmentedStream)->Arg(64)->Arg(1460)->Arg(16384);

/// The Reject payload codec (error path; runs under protocol abuse).
void BM_RejectRoundTrip(benchmark::State &State) {
  for (auto _ : State) {
    std::string Payload =
        encodeReject("too_large", "frame of 2097152 bytes exceeds cap");
    ErrorOr<RejectInfo> R = decodeReject(Payload);
    benchmark::DoNotOptimize(R.hasValue());
  }
}
BENCHMARK(BM_RejectRoundTrip);

} // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to BENCH_wire.json
// so every run leaves a machine-readable record next to the printed
// table. Unrecognized --benchmark_* flags pass through untouched.
int main(int argc, char **argv) {
  ArgParser P("bench_wire",
              "google-benchmark microbenches of the cdvs-wire v1 "
              "framing codec and parser");
  std::string &Out = P.addString("benchmark_out", "BENCH_wire.json",
                                 "results file (google-benchmark)");
  std::string &Format = P.addString("benchmark_out_format", "json",
                                    "results format (google-benchmark)");
  P.allowUnknown(true);
  if (!P.parseOrExit(argc, argv))
    return 0;

  std::vector<std::string> Rebuilt;
  Rebuilt.push_back(argv[0]);
  Rebuilt.push_back("--benchmark_out=" + Out);
  Rebuilt.push_back("--benchmark_out_format=" + Format);
  for (const std::string &A : P.unparsed())
    Rebuilt.push_back(A);
  std::vector<char *> Args;
  for (std::string &A : Rebuilt)
    Args.push_back(A.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
