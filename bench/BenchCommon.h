//===- bench/BenchCommon.h - Shared experiment-harness helpers --*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure experiment binaries: the
/// paper's processor configuration (XScale-like 3-mode table, typical
/// regulator), simulator construction per workload input, and the five
/// per-benchmark deadlines spanning stringent-to-lax (the paper's
/// Figure 16 positions, concretized like its Table 4).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_BENCH_BENCHCOMMON_H
#define CDVS_BENCH_BENCHCOMMON_H

#include "analytic/AnalyticModel.h"
#include "dvs/DvsScheduler.h"
#include "power/ModeTable.h"
#include "power/TransitionModel.h"
#include "profile/Profile.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace cdvs {
namespace bench {

/// Builds a simulator for one workload input (applies the input setup).
inline std::unique_ptr<Simulator> makeSimulator(const Workload &W,
                                                const WorkloadInput &In) {
  auto Sim = std::make_unique<Simulator>(*W.Fn);
  In.Setup(*Sim);
  return Sim;
}

/// The five deadline positions of Figure 16, derived from the program's
/// single-mode execution times (slowest = index 0 mode, fastest = last):
/// 1 = stringent (just above the fastest time) ... 5 = lax (just under
/// the slowest-mode time, so the whole run fits at the lowest level).
inline std::vector<double> fiveDeadlines(const Profile &P) {
  double TFast = P.TotalTimeAtMode.back();
  double TMid = P.TotalTimeAtMode[P.TotalTimeAtMode.size() / 2];
  double TSlow = P.TotalTimeAtMode.front();
  std::vector<double> D = {
      1.03 * TFast,                 // Deadline 1
      TFast + 0.25 * (TMid - TFast),// Deadline 2
      1.02 * TMid,                  // Deadline 3
      0.5 * (TMid + TSlow),         // Deadline 4
      0.985 * TSlow,                // Deadline 5
  };
  // Memory-bound programs compress the fast end (T600 ~ T800): keep the
  // ladder strictly increasing anyway.
  for (size_t I = 1; I < D.size(); ++I)
    D[I] = std::max(D[I], D[I - 1] * 1.02);
  return D;
}

/// Analytic parameters from a reference run plus a chosen deadline.
inline AnalyticParams analyticParamsFrom(const RunStats &Ref,
                                         double Deadline) {
  AnalyticParams P;
  P.NoverlapCycles = static_cast<double>(Ref.NoverlapCycles);
  P.NdependentCycles = static_cast<double>(Ref.NdependentCycles);
  P.NcacheCycles = static_cast<double>(Ref.NcacheCycles);
  P.TinvariantSeconds = Ref.TinvariantSeconds;
  P.TdeadlineSeconds = Deadline;
  return P;
}

/// The paper's benchmark subset used in Tables 1/6/7.
inline std::vector<std::string> analyticBenchmarks() {
  return {"adpcm", "epic", "gsm", "mpeg_decode"};
}

/// The six-benchmark set of the Section 6 MILP experiments.
inline std::vector<std::string> milpBenchmarks() {
  return {"mpeg_decode", "gsm", "mpg123", "epic", "adpcm", "ghostscript"};
}

} // namespace bench
} // namespace cdvs

#endif // CDVS_BENCH_BENCHCOMMON_H
