//===- bench/bench_fig14_table3_filtering.cpp - Figure 14 & Table 3 -------===//
//
// Regenerates the edge-filtering study of Section 5.2:
//  * Figure 14 — MILP solution-time speedup when the low-energy-tail
//    edges are tied to their blocks' dominant incoming edges;
//  * Table 3 — the resulting schedule energy with the full edge set vs
//    the filtered subset (expected: essentially unchanged).
// Setup mirrors the paper: 6 MediaBench-class programs, c = 10 uF
// regulator, one mid-range deadline per program.
//
// The 6 x 2 benchmark/threshold grid is swept with parallelFor; each
// point gets its own simulator and a single-threaded MILP. --threads=N
// overrides the sweep width (default: one per core).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/ArgParse.h"
#include "support/ThreadPool.h"
#include "verify/CertificateChecker.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

struct Point {
  ScheduleResult R;
  double EnergyJoules = 0.0;
  double MaxRowViolation = 0.0;
};

} // namespace

int main(int argc, char **argv) {
  ArgParser P("bench_fig14_table3_filtering",
              "Figure 14 / Table 3: edge-filtering MILP speedup and "
              "schedule-energy impact");
  int &Threads =
      P.addInt("threads", 0, "sweep width; 0 = one per core");
  if (!P.parseOrExit(argc, argv))
    return 0;
  int SweepThreads = resolveThreads(Threads);

  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  // Phase 1 (serial): per-workload profile and mid-range deadline.
  std::vector<std::string> Names = milpBenchmarks();
  int NumW = static_cast<int>(Names.size());
  std::vector<Profile> Profiles(NumW);
  std::vector<double> Deadlines(NumW);
  for (int WI = 0; WI < NumW; ++WI) {
    Workload W = workloadByName(Names[WI]);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profiles[WI] = collectProfile(*Sim, Modes);
    Deadlines[WI] = 0.5 * (Profiles[WI].TotalTimeAtMode.front() +
                           Profiles[WI].TotalTimeAtMode.back());
  }

  // Phase 2 (parallel): each (workload, threshold) point schedules and
  // simulates independently. Threshold index 0 = full edge set, 1 =
  // filtered at the paper's 2%.
  const double Thresholds[2] = {0.0, 0.02};
  std::vector<Point> Grid(NumW * 2);
  parallelFor(NumW * 2, SweepThreads, [&](int Idx) {
    int WI = Idx / 2;
    Workload W = workloadByName(Names[WI]);
    auto Sim = makeSimulator(W, W.defaultInput());
    DvsOptions O;
    O.FilterThreshold = Thresholds[Idx % 2];
    O.InitialMode = static_cast<int>(Modes.size()) - 1;
    O.Milp.NumThreads = 1;
    O.KeepArtifacts = true;
    DvsScheduler Sched(*W.Fn, Profiles[WI], Modes, Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadlines[WI]);
    if (!R)
      cdvsUnreachable(("mid deadline infeasible for " + Names[WI]).c_str());
    // Certify the MILP point independently of the solver: every
    // constraint row re-evaluated in compensated arithmetic.
    verify::Certificate Cert = verify::checkCertificate(
        R->Artifacts->Problem, R->Artifacts->IntegerVars,
        R->Artifacts->Solution);
    if (!Cert.Checked || !Cert.R.ok() || Cert.MaxRowViolation >= 1e-6)
      cdvsUnreachable(("MILP certificate failed for " + Names[WI] +
                       ": " + Cert.R.firstError())
                          .c_str());
    RunStats Run = Sim->run(Modes, R->Assignment, Regulator);
    Grid[Idx] = {*R, Run.EnergyJoules, Cert.MaxRowViolation};
  });

  std::printf("== Figure 14 / Table 3: edge filtering ==\n");
  Table T({"benchmark", "edges", "groups(all)", "groups(filt)",
           "solve(all) ms", "solve(filt) ms", "speedup",
           "energy(all) uJ", "energy(filt) uJ"});
  for (int WI = 0; WI < NumW; ++WI) {
    const Point &All = Grid[WI * 2], &Filt = Grid[WI * 2 + 1];
    T.addRow({Names[WI], formatInt(All.R.NumEdges),
              formatInt(All.R.NumIndependentGroups),
              formatInt(Filt.R.NumIndependentGroups),
              formatDouble(All.R.SolveSeconds * 1e3, 2),
              formatDouble(Filt.R.SolveSeconds * 1e3, 2),
              formatDouble(All.R.SolveSeconds /
                               std::max(Filt.R.SolveSeconds, 1e-9),
                           1),
              formatDouble(All.EnergyJoules * 1e6, 1),
              formatDouble(Filt.EnergyJoules * 1e6, 1)});
  }
  T.print();
  double WorstViolation = 0.0;
  for (const Point &Pt : Grid)
    WorstViolation = std::max(WorstViolation, Pt.MaxRowViolation);
  std::printf("\n(deadline: midpoint of slowest/fastest single-mode "
              "times; energies should match closely — paper Table 3)\n"
              "(all %d MILP solutions certified; worst scaled row "
              "violation %.3g)\n",
              NumW * 2, WorstViolation);
  return 0;
}
