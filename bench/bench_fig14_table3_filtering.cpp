//===- bench/bench_fig14_table3_filtering.cpp - Figure 14 & Table 3 -------===//
//
// Regenerates the edge-filtering study of Section 5.2:
//  * Figure 14 — MILP solution-time speedup when the low-energy-tail
//    edges are tied to their blocks' dominant incoming edges;
//  * Table 3 — the resulting schedule energy with the full edge set vs
//    the filtered subset (expected: essentially unchanged).
// Setup mirrors the paper: 6 MediaBench-class programs, c = 10 uF
// regulator, one mid-range deadline per program.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  std::printf("== Figure 14 / Table 3: edge filtering ==\n");
  Table T({"benchmark", "edges", "groups(all)", "groups(filt)",
           "solve(all) ms", "solve(filt) ms", "speedup",
           "energy(all) uJ", "energy(filt) uJ"});

  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile Prof = collectProfile(*Sim, Modes);
    double Deadline =
        0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());

    auto solveWith = [&](double Threshold) {
      DvsOptions O;
      O.FilterThreshold = Threshold;
      O.InitialMode = static_cast<int>(Modes.size()) - 1;
      DvsScheduler Sched(*W.Fn, Prof, Modes, Regulator, O);
      ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
      if (!R)
        cdvsUnreachable(("mid deadline infeasible for " + Name).c_str());
      RunStats Run = Sim->run(Modes, R->Assignment, Regulator);
      return std::make_pair(*R, Run.EnergyJoules);
    };

    auto [All, EAll] = solveWith(0.0);
    auto [Filt, EFilt] = solveWith(0.02);
    T.addRow({Name, formatInt(All.NumEdges),
              formatInt(All.NumIndependentGroups),
              formatInt(Filt.NumIndependentGroups),
              formatDouble(All.SolveSeconds * 1e3, 2),
              formatDouble(Filt.SolveSeconds * 1e3, 2),
              formatDouble(All.SolveSeconds /
                               std::max(Filt.SolveSeconds, 1e-9),
                           1),
              formatDouble(EAll * 1e6, 1),
              formatDouble(EFilt * 1e6, 1)});
  }
  T.print();
  std::printf("\n(deadline: midpoint of slowest/fastest single-mode "
              "times; energies should match closely — paper Table 3)\n");
  return 0;
}
