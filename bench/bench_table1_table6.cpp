//===- bench/bench_table1_table6.cpp - Tables 1 and 6 ---------------------===//
//
// Regenerates the paper's headline comparison:
//  * Table 1 — energy-saving ratios predicted by the ANALYTIC model
//    (Section 3) for adpcm/epic/gsm/mpeg at 3, 7, and 13 voltage
//    levels across five deadlines;
//  * Table 6 — the corresponding savings realized by the MILP scheduler
//    plus DVS-aware re-execution on the cycle simulator.
// Both are relative to the best single level that meets the deadline.
// The expected relationships (Section 6.5): the analytic bound is
// optimistic (Table 1 >= Table 6 modulo noise), savings shrink as the
// level count grows, and lax deadlines + few levels are the best case.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  VfModel Vf = VfModel::paperDefault();
  AnalyticModel Model(Vf, 0.6, 1.65);
  TransitionModel Regulator = TransitionModel::paperTypical();
  const std::vector<int> LevelCounts = {3, 7, 13};

  Table T1({"benchmark", "levels", "D1", "D2", "D3", "D4", "D5"});
  Table T6 = T1;

  for (const std::string &Name : analyticBenchmarks()) {
    Workload W = workloadByName(Name);

    // Deadlines span the level tables' own slow/fast envelope. All
    // three tables share the same end levels (0.7 V and 1.65 V), so the
    // same five deadlines apply to 3, 7, and 13 levels.
    auto SimRef = makeSimulator(W, W.defaultInput());
    Profile ProfRef = collectProfile(
        *SimRef, ModeTable::evenVoltageLevels(3, 0.7, 1.65, Vf));
    std::vector<double> Deadlines = fiveDeadlines(ProfRef);

    for (int NumLevels : LevelCounts) {
      ModeTable Levels =
          ModeTable::evenVoltageLevels(NumLevels, 0.7, 1.65, Vf);
      auto Sim = makeSimulator(W, W.defaultInput());
      Profile Prof = collectProfile(*Sim, Levels);

      std::vector<std::string> Row1 = {Name,
                                       formatInt(NumLevels)};
      std::vector<std::string> Row6 = Row1;
      for (double Deadline : Deadlines) {
        // ---- Table 1: analytic bound. ----
        AnalyticParams P = analyticParamsFrom(Prof.Reference, Deadline);
        DiscreteSolution D = Model.solveDiscrete(P, Levels);
        Row1.push_back(D.Kind == AnalyticCase::Infeasible
                           ? "-"
                           : formatDouble(D.SavingRatio, 2));

        // ---- Table 6: MILP + simulated execution. ----
        DvsOptions O;
        O.InitialMode = NumLevels - 1;
        DvsScheduler Sched(*W.Fn, Prof, Levels, Regulator, O);
        ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
        if (!R) {
          Row6.push_back("-");
          continue;
        }
        RunStats Run = Sim->run(Levels, R->Assignment, Regulator);
        double BestSingle = -1.0;
        for (size_t M = 0; M < Levels.size(); ++M)
          if (Prof.TotalTimeAtMode[M] <= Deadline &&
              (BestSingle < 0.0 ||
               Prof.TotalEnergyAtMode[M] < BestSingle))
            BestSingle = Prof.TotalEnergyAtMode[M];
        double Saving =
            BestSingle > 0.0
                ? std::max(0.0, 1.0 - Run.EnergyJoules / BestSingle)
                : 0.0;
        Row6.push_back(formatDouble(Saving, 2));
      }
      T1.addRow(Row1);
      T6.addRow(Row6);
    }
  }

  std::printf("== Table 1: analytic energy-saving ratio ==\n");
  T1.print();
  std::printf("\n== Table 6: MILP/simulation energy-saving ratio ==\n");
  T6.print();
  std::printf("\n(savings relative to the best single level meeting "
              "each deadline; '-' = deadline infeasible)\n");
  return 0;
}
