//===- bench/bench_fig17_fig18_deadline.cpp - Figures 17 & 18 -------------===//
//
// Regenerates the deadline study of Section 6.3 (c = 10 uF):
//  * Figure 17 — schedule energy per deadline, normalized to the best
//    single-frequency setting that meets that deadline (moving from the
//    stringent Deadline 1 to the lax Deadline 5 cuts energy by ~2x or
//    more in absolute terms; the normalized value shows where the MILP
//    beats any single setting);
//  * Figure 18 — MILP solution time per deadline (mid-range deadlines
//    are the hard ones: all three modes compete).
// Absolute schedule energy (uJ) is printed too, making the factor-of-2+
// absolute trend of the paper visible directly.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  Table TNorm({"benchmark", "D1", "D2", "D3", "D4", "D5"});
  Table TAbs = TNorm;
  Table TSolve = TNorm;

  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile Prof = collectProfile(*Sim, Modes);
    std::vector<double> Deadlines = fiveDeadlines(Prof);

    std::vector<std::string> RowN = {Name}, RowA = {Name},
                             RowS = {Name};
    for (double Deadline : Deadlines) {
      DvsOptions O;
      O.InitialMode = static_cast<int>(Modes.size()) - 1;
      DvsScheduler Sched(*W.Fn, Prof, Modes, Regulator, O);
      ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
      if (!R) {
        RowN.push_back("-");
        RowA.push_back("-");
        RowS.push_back("-");
        continue;
      }
      RunStats Run = Sim->run(Modes, R->Assignment, Regulator);
      double BestSingle = -1.0;
      for (size_t M = 0; M < Modes.size(); ++M)
        if (Prof.TotalTimeAtMode[M] <= Deadline &&
            (BestSingle < 0.0 ||
             Prof.TotalEnergyAtMode[M] < BestSingle))
          BestSingle = Prof.TotalEnergyAtMode[M];
      RowN.push_back(BestSingle > 0.0
                         ? formatDouble(Run.EnergyJoules / BestSingle, 3)
                         : "n/a");
      RowA.push_back(formatDouble(Run.EnergyJoules * 1e6, 1));
      RowS.push_back(formatDouble(R->SolveSeconds * 1e3, 2));
    }
    TNorm.addRow(RowN);
    TAbs.addRow(RowA);
    TSolve.addRow(RowS);
  }

  std::printf("== Figure 17: schedule energy / best single frequency "
              "meeting the deadline ==\n");
  TNorm.print();
  std::printf("\n== Figure 17 (absolute): schedule energy in uJ ==\n");
  TAbs.print();
  std::printf("\n== Figure 18: MILP solution time (ms) per deadline "
              "==\n");
  TSolve.print();
  return 0;
}
