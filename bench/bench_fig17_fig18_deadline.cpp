//===- bench/bench_fig17_fig18_deadline.cpp - Figures 17 & 18 -------------===//
//
// Regenerates the deadline study of Section 6.3 (c = 10 uF):
//  * Figure 17 — schedule energy per deadline, normalized to the best
//    single-frequency setting that meets that deadline (moving from the
//    stringent Deadline 1 to the lax Deadline 5 cuts energy by ~2x or
//    more in absolute terms; the normalized value shows where the MILP
//    beats any single setting);
//  * Figure 18 — MILP solution time per deadline (mid-range deadlines
//    are the hard ones: all three modes compete).
// Absolute schedule energy (uJ) is printed too, making the factor-of-2+
// absolute trend of the paper visible directly.
//
// The 6 x 5 benchmark/deadline grid is embarrassingly parallel: profiles
// are collected once per workload, then every point gets its own
// simulator and scheduler and the grid is swept with parallelFor.
// --threads=N overrides the sweep width (default: one per core); each
// point's MILP runs single-threaded to avoid oversubscription.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/ArgParse.h"
#include "support/ThreadPool.h"
#include "verify/CertificateChecker.h"

#include <atomic>
#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

struct Point {
  std::string Norm = "-", Abs = "-", Solve = "-";
};

} // namespace

int main(int argc, char **argv) {
  ArgParser P("bench_fig17_fig18_deadline",
              "Figures 17/18: schedule energy and MILP solution time "
              "across the deadline ladder");
  int &Threads =
      P.addInt("threads", 0, "sweep width; 0 = one per core");
  if (!P.parseOrExit(argc, argv))
    return 0;
  int SweepThreads = resolveThreads(Threads);

  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  // Phase 1 (serial): profiles and deadline ladders per workload.
  std::vector<std::string> Names = milpBenchmarks();
  int NumW = static_cast<int>(Names.size());
  std::vector<Profile> Profiles(NumW);
  std::vector<std::vector<double>> Deadlines(NumW);
  for (int WI = 0; WI < NumW; ++WI) {
    Workload W = workloadByName(Names[WI]);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profiles[WI] = collectProfile(*Sim, Modes);
    Deadlines[WI] = fiveDeadlines(Profiles[WI]);
  }

  // Phase 2 (parallel): one schedule + simulated run per grid point.
  // Every point builds its own simulator; Simulator::run mutates state.
  const int PerW = 5;
  std::vector<Point> Grid(NumW * PerW);
  std::atomic<long> Certified{0};
  parallelFor(NumW * PerW, SweepThreads, [&](int Idx) {
    int WI = Idx / PerW, DI = Idx % PerW;
    Workload W = workloadByName(Names[WI]);
    auto Sim = makeSimulator(W, W.defaultInput());
    const Profile &Prof = Profiles[WI];
    double Deadline = Deadlines[WI][DI];

    DvsOptions O;
    O.InitialMode = static_cast<int>(Modes.size()) - 1;
    O.Milp.NumThreads = 1;
    O.KeepArtifacts = true;
    DvsScheduler Sched(*W.Fn, Prof, Modes, Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    if (!R)
      return;
    // Every solved point must pass the independent MILP certificate.
    verify::Certificate Cert = verify::checkCertificate(
        R->Artifacts->Problem, R->Artifacts->IntegerVars,
        R->Artifacts->Solution);
    if (!Cert.Checked || !Cert.R.ok() || Cert.MaxRowViolation >= 1e-6)
      cdvsUnreachable(("MILP certificate failed for " + Names[WI] +
                       ": " + Cert.R.firstError())
                          .c_str());
    Certified.fetch_add(1, std::memory_order_relaxed);
    RunStats Run = Sim->run(Modes, R->Assignment, Regulator);
    double BestSingle = -1.0;
    for (size_t M = 0; M < Modes.size(); ++M)
      if (Prof.TotalTimeAtMode[M] <= Deadline &&
          (BestSingle < 0.0 || Prof.TotalEnergyAtMode[M] < BestSingle))
        BestSingle = Prof.TotalEnergyAtMode[M];
    Point &Pt = Grid[Idx];
    Pt.Norm = BestSingle > 0.0
                  ? formatDouble(Run.EnergyJoules / BestSingle, 3)
                  : "n/a";
    Pt.Abs = formatDouble(Run.EnergyJoules * 1e6, 1);
    Pt.Solve = formatDouble(R->SolveSeconds * 1e3, 2);
  });

  Table TNorm({"benchmark", "D1", "D2", "D3", "D4", "D5"});
  Table TAbs = TNorm;
  Table TSolve = TNorm;
  for (int WI = 0; WI < NumW; ++WI) {
    std::vector<std::string> RowN = {Names[WI]}, RowA = {Names[WI]},
                             RowS = {Names[WI]};
    for (int DI = 0; DI < PerW; ++DI) {
      const Point &Pt = Grid[WI * PerW + DI];
      RowN.push_back(Pt.Norm);
      RowA.push_back(Pt.Abs);
      RowS.push_back(Pt.Solve);
    }
    TNorm.addRow(RowN);
    TAbs.addRow(RowA);
    TSolve.addRow(RowS);
  }

  std::printf("== Figure 17: schedule energy / best single frequency "
              "meeting the deadline ==\n");
  TNorm.print();
  std::printf("\n== Figure 17 (absolute): schedule energy in uJ ==\n");
  TAbs.print();
  std::printf("\n== Figure 18: MILP solution time (ms) per deadline "
              "==\n");
  TSolve.print();
  std::printf("\n(%ld/%d solved points passed the independent MILP "
              "certificate check)\n",
              Certified.load(), NumW * PerW);
  return 0;
}
