//===- bench/bench_path_context.cpp - Section 7 extension study ------------===//
//
// Evaluates the paper's stated future-work direction ("moving from
// edges to paths would allow us to build more program context into our
// analysis of mode-set positioning", Section 7), implemented in
// dvs/PathScheduler.h. For each benchmark at a mid deadline, compares
//  * the paper's edge-based MILP with the 2% filter,
//  * the unfiltered edge-based MILP, and
//  * the path-context MILP (one SOS1 group per profiled local path),
// on MILP size, solve time, predicted energy, and realized energy.
// Expected: path context never predicts worse than unfiltered edges;
// whether it *helps* depends on how often a block's criticality differs
// by entry path — on these CFGs the gains are small, which is itself an
// instructive data point for the paper's speculation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "dvs/PathScheduler.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();

  std::printf("== Edge-based vs path-context scheduling (mid deadline) "
              "==\n");
  Table T({"benchmark", "scheduler", "groups", "binaries", "solve ms",
           "predicted uJ", "realized uJ", "time ms"});

  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile Prof = collectProfile(*Sim, Modes);
    double Deadline =
        0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());

    auto addRow = [&](const char *Label, const ScheduleResult &R) {
      RunStats Run = Sim->run(Modes, R.Assignment, Reg);
      T.addRow({Name, Label, formatInt(R.NumIndependentGroups),
                formatInt(R.NumBinaries),
                formatDouble(R.SolveSeconds * 1e3, 2),
                formatDouble(R.PredictedEnergyJoules * 1e6, 1),
                formatDouble(Run.EnergyJoules * 1e6, 1),
                formatDouble(Run.TimeSeconds * 1e3, 2)});
    };

    DvsOptions Filtered;
    Filtered.InitialMode = 2;
    DvsScheduler E1(*W.Fn, Prof, Modes, Reg, Filtered);
    if (ErrorOr<ScheduleResult> R = E1.schedule(Deadline))
      addRow("edges (2% filter)", *R);

    DvsOptions Unfiltered;
    Unfiltered.InitialMode = 2;
    Unfiltered.FilterThreshold = 0.0;
    DvsScheduler E2(*W.Fn, Prof, Modes, Reg, Unfiltered);
    if (ErrorOr<ScheduleResult> R = E2.schedule(Deadline))
      addRow("edges (all)", *R);

    if (ErrorOr<ScheduleResult> R = schedulePathContext(
            *W.Fn, Prof, Modes, Reg, Deadline, Unfiltered))
      addRow("paths", *R);
  }
  T.print();
  return 0;
}
