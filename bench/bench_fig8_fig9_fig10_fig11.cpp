//===- bench/bench_fig8_fig9_fig10_fig11.cpp - Figures 8–11 ---------------===//
//
// Regenerates the discrete-voltage analysis of Section 3.4:
//  * Figure 8 — Emin(y): discrete-case energy versus the time y granted
//    to the Ncache stream (staircase objective, swept numerically);
//  * Figure 9 — discrete saving vs (Noverlap, Ndependent); 7 levels,
//    Ncache = 2e5 cycles, tdl = 5200 us, tinv = 1000 us;
//  * Figure 10 — discrete saving vs (Ncache, tinvariant); 7 levels,
//    Nov = 1.3e7, Ndep = 7e7, tdl = 3.5e5 us;
//  * Figure 11 — discrete saving vs (tdeadline, Ncache); 7 levels,
//    Nov = 1.3e7, Ndep = 7e7, tinv = 1000 us (deadline range scaled to
//    where this point is feasible).
// Savings are relative to the best single level meeting the deadline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include <cstdio>
#include <functional>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

void printSurface(
    const char *Title, const char *RowAxis, const char *ColAxis,
    const std::vector<double> &Rows, const std::vector<double> &Cols,
    const std::function<double(double, double)> &Saving) {
  std::printf("\n== %s ==\n(rows: %s; cols: %s; cells: saving ratio, "
              "'-' = infeasible)\n",
              Title, RowAxis, ColAxis);
  std::vector<std::string> Header = {std::string(RowAxis) + "\\" +
                                     ColAxis};
  for (double C : Cols)
    Header.push_back(formatDouble(C, 0));
  Table T(Header);
  for (double R : Rows) {
    std::vector<std::string> Row = {formatDouble(R, 0)};
    for (double C : Cols) {
      double S = Saving(R, C);
      Row.push_back(S < 0.0 ? "-" : formatDouble(S, 3));
    }
    T.addRow(Row);
  }
  T.print();
}

} // namespace

int main() {
  VfModel Vf = VfModel::paperDefault();
  AnalyticModel M(Vf, 0.6, 3.3);
  ModeTable Seven = ModeTable::evenVoltageLevels(7, 0.7, 1.65, Vf);

  // ---- Figure 8: Emin(y) for a memory-dominated point. ----
  {
    AnalyticParams P;
    P.NoverlapCycles = 4e6;
    P.NcacheCycles = 0.3e6;
    P.NdependentCycles = 5.8e6;
    P.TinvariantSeconds = 20e-3;
    P.TdeadlineSeconds = 30e-3;
    DiscreteSolution D = M.solveDiscrete(P, Seven);
    std::printf("== Figure 8: Emin(y), 7 levels ==\n");
    std::printf("   regime %s, best y = %.4g s, Emin = %.4g, single = "
                "%.4g, saving = %.3f\n",
                analyticCaseName(D.Kind), D.BestY, D.EnergyMulti,
                D.EnergySingle, D.SavingRatio);
    double YLo = P.NcacheCycles / Seven.maxFrequency();
    double YHi = P.TdeadlineSeconds - P.TinvariantSeconds -
                 P.NdependentCycles / Seven.maxFrequency();
    Table T({"y (us)", "Emin(y)"});
    for (int I = 0; I <= 48; ++I) {
      double Y = YLo + (YHi - YLo) * I / 48.0;
      double E = M.discreteEminAtY(P, Seven, Y);
      T.addRow({formatDouble(Y * 1e6, 1),
                std::isfinite(E) ? formatDouble(E, 0) : "infeasible"});
    }
    T.print();
  }

  auto savingOf = [&](const AnalyticParams &P) {
    DiscreteSolution D = M.solveDiscrete(P, Seven);
    return D.Kind == AnalyticCase::Infeasible ? -1.0 : D.SavingRatio;
  };

  // ---- Figure 9: (Noverlap, Ndependent), 7 levels. ----
  {
    std::vector<double> Nov, Ndep;
    for (double X = 200; X <= 1800; X += 200)
      Nov.push_back(X);
    for (double X = 500; X <= 1500; X += 250)
      Ndep.push_back(X);
    printSurface("Figure 9: discrete saving vs (Noverlap, Ndependent)",
                 "Nov(Kcyc)", "Ndep(Kcyc)", Nov, Ndep,
                 [&](double NovK, double NdepK) {
                   AnalyticParams P;
                   P.NoverlapCycles = NovK * 1e3;
                   P.NdependentCycles = NdepK * 1e3;
                   P.NcacheCycles = 2e5;
                   P.TinvariantSeconds = 1000e-6;
                   P.TdeadlineSeconds = 5200e-6;
                   return savingOf(P);
                 });
  }

  // ---- Figure 10: (Ncache, tinvariant), 7 levels. ----
  {
    std::vector<double> Ncache, Tinv;
    for (double X = 2000; X <= 14000; X += 2000)
      Ncache.push_back(X);
    for (double X = 20000; X <= 180000; X += 40000)
      Tinv.push_back(X);
    printSurface("Figure 10: discrete saving vs (Ncache, tinvariant)",
                 "Ncache(Kcyc)", "tinv(us)", Ncache, Tinv,
                 [&](double NcacheK, double TinvUs) {
                   AnalyticParams P;
                   P.NoverlapCycles = 1.3e7;
                   P.NdependentCycles = 7e7;
                   P.NcacheCycles = NcacheK * 1e3;
                   P.TinvariantSeconds = TinvUs * 1e-6;
                   P.TdeadlineSeconds = 3.5e5 * 1e-6;
                   return savingOf(P);
                 });
  }

  // ---- Figure 11: (tdeadline, Ncache), 7 levels. ----
  {
    std::vector<double> Tdl, Ncache;
    for (double X = 120000; X <= 480000; X += 60000)
      Tdl.push_back(X);
    for (double X = 250; X <= 1500; X += 250)
      Ncache.push_back(X);
    printSurface("Figure 11: discrete saving vs (tdeadline, Ncache)",
                 "tdl(us)", "Ncache(Kcyc)", Tdl, Ncache,
                 [&](double TdlUs, double NcacheK) {
                   AnalyticParams P;
                   P.NoverlapCycles = 1.3e7;
                   P.NdependentCycles = 7e7;
                   P.NcacheCycles = NcacheK * 1e3;
                   P.TinvariantSeconds = 1000e-6;
                   P.TdeadlineSeconds = TdlUs * 1e-6;
                   return savingOf(P);
                 });
  }
  return 0;
}
