//===- bench/bench_fig5_fig6_fig7.cpp - Figures 5, 6, 7 -------------------===//
//
// Regenerates the continuous-case energy-saving-ratio surfaces of
// Section 3.3.3 at the paper's parameter points:
//  * Figure 5 — saving vs (Noverlap, Ndependent), Ncache = 3e5 cycles,
//    tdeadline = 3000 us, tinvariant = 1000 us;
//  * Figure 6 — saving vs (Ncache, tinvariant), Noverlap = 4e6,
//    Ndependent = 5.8e6, tdeadline = 5000 us;
//  * Figure 7 — saving vs (tdeadline, Ncache), Noverlap = 4e6,
//    Ndependent = 5.7e6, tinvariant = 1000 us.
// Each surface prints a CSV grid: rows = first axis, cols = second.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <functional>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

void printSurface(
    const char *Title, const char *RowAxis, const char *ColAxis,
    const std::vector<double> &Rows, const std::vector<double> &Cols,
    const std::function<double(double, double)> &Saving) {
  std::printf("\n== %s ==\n(rows: %s; cols: %s; cells: saving ratio, "
              "'-' = infeasible)\n",
              Title, RowAxis, ColAxis);
  std::vector<std::string> Header = {std::string(RowAxis) + "\\" +
                                     ColAxis};
  for (double C : Cols)
    Header.push_back(formatDouble(C, 0));
  Table T(Header);
  for (double R : Rows) {
    std::vector<std::string> Row = {formatDouble(R, 0)};
    for (double C : Cols) {
      double S = Saving(R, C);
      Row.push_back(S < 0.0 ? "-" : formatDouble(S, 3));
    }
    T.addRow(Row);
  }
  T.print();
}

} // namespace

int main() {
  AnalyticModel M(VfModel::paperDefault(), 0.6, 3.3);

  auto savingOf = [&](const AnalyticParams &P) {
    ContinuousSolution S = M.solveContinuous(P);
    return S.Kind == AnalyticCase::Infeasible ? -1.0 : S.SavingRatio;
  };

  // Figure 5: Noverlap (rows, Kcycles) x Ndependent (cols, Kcycles).
  {
    std::vector<double> Nov, Ndep;
    for (double X = 200; X <= 1800; X += 200)
      Nov.push_back(X);
    for (double X = 100; X <= 1500; X += 200)
      Ndep.push_back(X);
    printSurface(
        "Figure 5: continuous saving vs (Noverlap, Ndependent)",
        "Nov(Kcyc)", "Ndep(Kcyc)", Nov, Ndep,
        [&](double NovK, double NdepK) {
          AnalyticParams P;
          P.NoverlapCycles = NovK * 1e3;
          P.NdependentCycles = NdepK * 1e3;
          P.NcacheCycles = 3e5;
          P.TinvariantSeconds = 1000e-6;
          P.TdeadlineSeconds = 3000e-6;
          return savingOf(P);
        });
  }

  // Figure 6: Ncache (rows, Kcycles) x tinvariant (cols, us).
  {
    std::vector<double> Ncache, Tinv;
    for (double X = 200; X <= 1800; X += 200)
      Ncache.push_back(X);
    for (double X = 500; X <= 3500; X += 500)
      Tinv.push_back(X);
    printSurface(
        "Figure 6: continuous saving vs (Ncache, tinvariant)",
        "Ncache(Kcyc)", "tinv(us)", Ncache, Tinv,
        [&](double NcacheK, double TinvUs) {
          AnalyticParams P;
          P.NoverlapCycles = 4e6;
          P.NdependentCycles = 5.8e6;
          P.NcacheCycles = NcacheK * 1e3;
          P.TinvariantSeconds = TinvUs * 1e-6;
          P.TdeadlineSeconds = 5000e-6;
          return savingOf(P);
        });
  }

  // Figure 7: tdeadline (rows, us) x Ncache (cols, Kcycles).
  {
    std::vector<double> Tdl, Ncache;
    for (double X = 1500; X <= 5000; X += 500)
      Tdl.push_back(X);
    for (double X = 500; X <= 4000; X += 500)
      Ncache.push_back(X);
    printSurface(
        "Figure 7: continuous saving vs (tdeadline, Ncache)",
        "tdl(us)", "Ncache(Kcyc)", Tdl, Ncache,
        [&](double TdlUs, double NcacheK) {
          AnalyticParams P;
          P.NoverlapCycles = 4e6;
          P.NdependentCycles = 5.7e6;
          P.NcacheCycles = NcacheK * 1e3;
          P.TinvariantSeconds = 1000e-6;
          P.TdeadlineSeconds = TdlUs * 1e-6;
          return savingOf(P);
        });
  }
  return 0;
}
