//===- bench/bench_table5_transitions.cpp - Table 5 -----------------------===//
//
// Regenerates Table 5: dynamic mode-transition counts per benchmark per
// deadline (c = 10 uF). Expected shape: few transitions at the extreme
// deadlines (one mode dominates) and the most transitions at mid-range
// deadlines where the MILP mixes all modes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

int main() {
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  std::printf("== Table 5: dynamic mode transition counts ==\n");
  Table T({"benchmark", "Deadline1", "Deadline2", "Deadline3",
           "Deadline4", "Deadline5"});
  for (const std::string &Name : milpBenchmarks()) {
    Workload W = workloadByName(Name);
    auto Sim = makeSimulator(W, W.defaultInput());
    Profile Prof = collectProfile(*Sim, Modes);
    std::vector<std::string> Row = {Name};
    for (double Deadline : fiveDeadlines(Prof)) {
      DvsOptions O;
      O.InitialMode = static_cast<int>(Modes.size()) - 1;
      DvsScheduler Sched(*W.Fn, Prof, Modes, Regulator, O);
      ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
      if (!R) {
        Row.push_back("-");
        continue;
      }
      RunStats Run = Sim->run(Modes, R->Assignment, Regulator);
      Row.push_back(formatInt(static_cast<long long>(Run.Transitions)));
    }
    T.addRow(Row);
  }
  T.print();
  return 0;
}
