//===- bench/bench_taskgraph.cpp - Task-graph DVS: static vs online --------===//
//
// Quantifies what online slack reclamation buys over the compile-time
// static plan on the canned task-graph corpus: every instance is solved
// twice through the scheduling service — GraphReplan off (the static
// row: execute the compile-time modes and just watch the actual times)
// and on (the online row: re-solve the remaining subgraph at every
// completion event). Rows land as static/online pairs in
// BENCH_taskgraph.json.
//
// The checks are hard asserts, so the binary doubles as an integration
// test; scripts/check.sh runs it:
//  * the online row's recorded static energy equals the static row's
//    planned energy (same compile-time plan underneath);
//  * for every instance whose tasks all finish at or under their
//    profiles, online planned energy <= static planned energy — the
//    monotonicity-guard guarantee;
//  * replanning instances re-plan at least once and both rows meet the
//    shared deadline.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"
#include "support/ArgParse.h"
#include "taskgraph/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace cdvs;

namespace {

struct Row {
  std::string Graph;
  std::string Kind; // "static" | "online"
  int Tasks = 0;
  double DeadlineSeconds = 0.0;
  double StaticEnergyJoules = 0.0;
  double PlannedEnergyJoules = 0.0;
  double ActualEnergyJoules = 0.0;
  double MakespanSeconds = 0.0;
  int Replans = 0;
  int ReplansAccepted = 0;
};

JobResult solveOrDie(SchedulerService &Service, const taskgraph::TaskGraph &G,
                     bool Replan) {
  JobRequest R;
  R.Id = G.Name + (Replan ? "@online" : "@static");
  R.GraphReplan = Replan;
  R.Graph = std::make_shared<const taskgraph::TaskGraph>(G);
  JobResult Res = Service.submit(R).get();
  if (Res.Status != JobStatus::Done) {
    std::fprintf(stderr, "bench_taskgraph: %s failed: %s\n", R.Id.c_str(),
                 Res.Reason.c_str());
    std::exit(1);
  }
  return Res;
}

void check(bool Cond, const char *What, const std::string &Graph) {
  if (!Cond) {
    std::fprintf(stderr, "bench_taskgraph: CHECK FAILED on %s: %s\n",
                 Graph.c_str(), What);
    std::exit(1);
  }
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("bench_taskgraph",
              "task-graph DVS: paired static/online energy over the "
              "canned DAG corpus");
  int &Threads = P.addInt("threads", 0, "service workers; 0 = one per core");
  std::string &OutPath = P.addString("benchmark_out", "BENCH_taskgraph.json",
                                     "JSON results file");
  if (!P.parseOrExit(argc, argv))
    return 0;

  ServiceOptions Opts;
  Opts.NumWorkers = Threads;
  Opts.Verify = VerifyMode::Strict; // every emitted plan must audit green
  SchedulerService Service(Opts);

  std::vector<Row> Rows;
  int Reclaimers = 0, ReclaimersSaving = 0;
  for (const taskgraph::TaskGraph &G : taskgraph::cannedTaskGraphs()) {
    JobResult S = solveOrDie(Service, G, /*Replan=*/false);
    JobResult O = solveOrDie(Service, G, /*Replan=*/true);

    // Same compile-time plan underneath both rows.
    check(S.PredictedEnergyJoules == S.StaticEnergyJoules,
          "static row must execute the static plan verbatim", G.Name);
    check(O.StaticEnergyJoules == S.StaticEnergyJoules,
          "online row's static baseline drifted from the static row",
          G.Name);
    check(S.Replans == 0, "static row must not re-plan", G.Name);
    check(O.Replans >= 1, "online row never re-planned", G.Name);
    check(S.MakespanSeconds <= S.DeadlineSeconds * (1.0 + 1e-9) &&
              O.MakespanSeconds <= O.DeadlineSeconds * (1.0 + 1e-9),
          "a row missed the shared deadline", G.Name);

    bool AllUnderProfile = true;
    for (const taskgraph::TaskNode &N : G.Nodes)
      AllUnderProfile = AllUnderProfile && N.ActualFactor <= 1.0;
    if (AllUnderProfile) {
      // The acceptance inequality: reclaimed slack never costs energy.
      check(O.PredictedEnergyJoules <=
                S.PredictedEnergyJoules * (1.0 + 1e-12),
            "online energy exceeded static energy with no overruns",
            G.Name);
      ++Reclaimers;
      if (O.PredictedEnergyJoules < S.PredictedEnergyJoules)
        ++ReclaimersSaving;
    }

    for (const JobResult *R : {&S, &O}) {
      Row Out;
      Out.Graph = G.Name;
      Out.Kind = R == &S ? "static" : "online";
      Out.Tasks = static_cast<int>(G.Nodes.size());
      Out.DeadlineSeconds = R->DeadlineSeconds;
      Out.StaticEnergyJoules = R->StaticEnergyJoules;
      Out.PlannedEnergyJoules = R->PredictedEnergyJoules;
      Out.ActualEnergyJoules = R->ActualEnergyJoules;
      Out.MakespanSeconds = R->MakespanSeconds;
      Out.Replans = R->Replans;
      Out.ReplansAccepted = R->ReplansAccepted;
      Rows.push_back(Out);
    }

    double SavedPct = 100.0 *
                      (S.PredictedEnergyJoules - O.PredictedEnergyJoules) /
                      S.PredictedEnergyJoules;
    std::printf("%-16s tasks=%zu static=%.6e online=%.6e saved=%5.1f%% "
                "replans=%d accepted=%d\n",
                G.Name.c_str(), G.Nodes.size(), S.PredictedEnergyJoules,
                O.PredictedEnergyJoules, SavedPct, O.Replans,
                O.ReplansAccepted);
  }
  // The corpus must demonstrate reclamation, not just not regress.
  check(Reclaimers > 0 && ReclaimersSaving > 0,
        "no early-finishing instance actually saved energy", "corpus");

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "bench_taskgraph: cannot write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"benchmark\": \"bench_taskgraph\",\n");
  std::fprintf(Out, "  \"graphs\": %d,\n",
               static_cast<int>(Rows.size() / 2));
  std::fprintf(Out, "  \"reclaiming_graphs\": %d,\n", Reclaimers);
  std::fprintf(Out, "  \"reclaiming_graphs_saving\": %d,\n",
               ReclaimersSaving);
  std::fprintf(Out, "  \"rows\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(
        Out,
        "    {\"graph\": \"%s\", \"kind\": \"%s\", \"tasks\": %d, "
        "\"deadline_seconds\": %.17g, \"static_energy_joules\": %.17g, "
        "\"planned_energy_joules\": %.17g, \"actual_energy_joules\": %.17g, "
        "\"makespan_seconds\": %.17g, \"replans\": %d, "
        "\"replans_accepted\": %d}%s\n",
        R.Graph.c_str(), R.Kind.c_str(), R.Tasks, R.DeadlineSeconds,
        R.StaticEnergyJoules, R.PlannedEnergyJoules, R.ActualEnergyJoules,
        R.MakespanSeconds, R.Replans, R.ReplansAccepted,
        I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("bench_taskgraph: all checks passed; wrote %s\n",
              OutPath.c_str());
  return 0;
}
