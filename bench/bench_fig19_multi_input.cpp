//===- bench/bench_fig19_multi_input.cpp - Figure 19 ----------------------===//
//
// Regenerates the multiple-data-input study of Section 6.4 on the mpeg
// analogue. Four inputs in two categories (100b/bbc: no B frames;
// flwr/cact: two B frames between anchors). For each input we execute
// four schedules:
//  * "self"  — MILP optimized on that same input's profile;
//  * "flwr"  — optimized on flwr's profile only;
//  * "bbc"   — optimized on bbc's profile only;
//  * "avg"   — the multi-category formulation over flwr + bbc with
//              equal weights and both deadlines enforced.
// Reported: run time (ms) and energy (uJ). Expected shape (paper): the
// cross-category single-profile schedule ("bbc" driving a B2 input, or
// "flwr" driving a noB input) mispredicts; the average-optimized
// schedule tracks the self-profiled one and keeps both categories'
// deadlines.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

Profile profileInput(const Workload &W, const std::string &Input,
                     const ModeTable &Modes) {
  auto Sim = makeSimulator(W, W.input(Input));
  return collectProfile(*Sim, Modes);
}

} // namespace

int main() {
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();
  Workload W = workloadByName("mpeg_decode");
  const std::vector<std::string> Inputs = {"100b", "bbc", "flwr",
                                           "cact"};

  // Profiles for every input.
  std::map<std::string, Profile> Profiles;
  for (const std::string &In : Inputs)
    Profiles.emplace(In, profileInput(W, In, Modes));

  // A mid-range real-time target per profiled input. Paths that a
  // profile never exercised decode to the slowest mode, so scheduling
  // from a no-B-frames profile leaves the B-frame loops slow — running
  // a B2 stream under that schedule overshoots the deadline, the
  // paper's misprediction effect.
  auto laxDeadline = [&](const Profile &P) {
    return 0.45 * P.TotalTimeAtMode.front() +
           0.55 * P.TotalTimeAtMode.back();
  };

  DvsOptions O;
  O.InitialMode = static_cast<int>(Modes.size()) - 1;

  auto scheduleOn = [&](const Profile &P) {
    DvsScheduler Sched(*W.Fn, P, Modes, Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(laxDeadline(P));
    if (!R)
      cdvsUnreachable(("fig19 schedule failed: " + R.message()).c_str());
    return R->Assignment;
  };

  ModeAssignment FromFlwr = scheduleOn(Profiles.at("flwr"));
  ModeAssignment FromBbc = scheduleOn(Profiles.at("bbc"));

  // Average-optimized over the two profiled inputs (equal weights),
  // each category keeping its own deadline.
  std::vector<CategoryProfile> Cats = {{Profiles.at("flwr"), 0.5},
                                       {Profiles.at("bbc"), 0.5}};
  DvsScheduler AvgSched(*W.Fn, Cats, Modes, Regulator, O);
  ErrorOr<ScheduleResult> AvgR =
      AvgSched.schedule({laxDeadline(Profiles.at("flwr")),
                         laxDeadline(Profiles.at("bbc"))});
  if (!AvgR)
    cdvsUnreachable(("fig19 avg schedule failed: " + AvgR.message())
                        .c_str());

  std::printf("== Figure 19: run time (ms) under profile mismatch ==\n");
  Table TT({"input", "category", "opt.self", "opt.flwr", "opt.bbc",
            "opt.avg", "deadline"});
  Table TE({"input", "category", "opt.self", "opt.flwr", "opt.bbc",
            "opt.avg", "600MHz-ref"});

  for (const std::string &In : Inputs) {
    const Profile &P = Profiles.at(In);
    ModeAssignment Self = scheduleOn(P);
    auto Sim = makeSimulator(W, W.input(In));

    auto runWith = [&](const ModeAssignment &A) {
      return Sim->run(Modes, A, Regulator);
    };
    RunStats RSelf = runWith(Self);
    RunStats RFlwr = runWith(FromFlwr);
    RunStats RBbc = runWith(FromBbc);
    RunStats RAvg = runWith(AvgR->Assignment);

    std::string Cat = W.input(In).Category;
    TT.addRow({In, Cat, formatDouble(RSelf.TimeSeconds * 1e3, 2),
               formatDouble(RFlwr.TimeSeconds * 1e3, 2),
               formatDouble(RBbc.TimeSeconds * 1e3, 2),
               formatDouble(RAvg.TimeSeconds * 1e3, 2),
               formatDouble(laxDeadline(P) * 1e3, 2)});
    TE.addRow({In, Cat, formatDouble(RSelf.EnergyJoules * 1e6, 1),
               formatDouble(RFlwr.EnergyJoules * 1e6, 1),
               formatDouble(RBbc.EnergyJoules * 1e6, 1),
               formatDouble(RAvg.EnergyJoules * 1e6, 1),
               formatDouble(P.TotalEnergyAtMode[1] * 1e6, 1)});
  }
  TT.print();
  std::printf("\n== Figure 19 (supplement): energy (uJ) under profile "
              "mismatch ==\n");
  TE.print();
  return 0;
}
