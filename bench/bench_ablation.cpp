//===- bench/bench_ablation.cpp - design-choice ablations ------------------===//
//
// Ablation studies for the design choices DESIGN.md calls out:
//  1. SOS1-aware branching vs plain most-fractional-variable branching
//     in the branch-and-bound (nodes explored, LP iterations, time);
//  2. the rounding-heuristic incumbent on/off;
//  3. the edge-filter threshold swept over {0, 0.5%, 2%, 8%}: groups,
//     solve time, and realized energy;
//  4. edge-based vs block-based mode granularity — block-based is
//     emulated by tying all of a block's incoming edges together, which
//     is what a block-entry mode-set instruction would enforce.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Rng.h"

#include <chrono>
#include <cstdio>

using namespace cdvs;
using namespace cdvs::bench;

namespace {

/// Builds the paper MILP for one workload at a mid deadline and solves
/// it with the given options; reports search effort.
struct MilpEffort {
  long Nodes = 0;
  long LpIterations = 0;
  double Seconds = 0.0;
  double Objective = 0.0;
};

MilpEffort solveKnapsackFamily(bool UseSos1, bool UseRounding,
                               uint64_t Seed) {
  // A synthetic mode-assignment program shaped like the DVS MILP:
  // 20 groups x 5 modes with a tight deadline row, deliberately harder
  // than the (filtered) real instances so branching differences show.
  Rng R(Seed);
  const int Groups = 32, Modes = 5;
  LpProblem P;
  std::vector<std::vector<int>> K(Groups);
  std::vector<LpTerm> TimeRow;
  double MinTime = 0.0, MaxTime = 0.0;
  for (int G = 0; G < Groups; ++G) {
    std::vector<LpTerm> Sum;
    double GMin = 1e18, GMax = 0.0;
    for (int M = 0; M < Modes; ++M) {
      double E = 1.0 + R.nextDouble() * 9.0;
      double T = 1.0 + R.nextDouble() * 9.0;
      int V = P.addVariable(0.0, 1.0, E);
      K[G].push_back(V);
      Sum.push_back({V, 1.0});
      TimeRow.push_back({V, T});
      GMin = std::min(GMin, T);
      GMax = std::max(GMax, T);
    }
    P.addRow(RowSense::EQ, 1.0, Sum);
    MinTime += GMin;
    MaxTime += GMax;
  }
  P.addRow(RowSense::LE, 0.48 * MinTime + 0.52 * MaxTime, TimeRow);

  std::vector<int> Ints;
  for (auto &G : K)
    Ints.insert(Ints.end(), G.begin(), G.end());
  MilpOptions O;
  O.UseRounding = UseRounding;
  MilpSolver S(P, Ints, O);
  if (UseSos1)
    for (auto &G : K)
      S.addSos1Group(G);

  auto T0 = std::chrono::steady_clock::now();
  MilpSolution Sol = S.solve();
  auto T1 = std::chrono::steady_clock::now();
  MilpEffort E;
  E.Nodes = Sol.Nodes;
  E.LpIterations = Sol.LpIterations;
  E.Seconds = std::chrono::duration<double>(T1 - T0).count();
  E.Objective = Sol.Objective;
  return E;
}

} // namespace

int main() {
  // ---- Ablation 1 & 2: branching and rounding, averaged over seeds.
  std::printf("== Ablation: B&B branching and rounding heuristics ==\n");
  Table TA({"configuration", "avg nodes", "avg LP iters", "avg ms"});
  struct Config {
    const char *Name;
    bool Sos1, Rounding;
  };
  for (Config C : std::initializer_list<Config>{
           {"SOS1 + rounding", true, true},
           {"SOS1, no rounding", true, false},
           {"plain branching + rounding", false, true},
           {"plain, no rounding", false, false}}) {
    double Nodes = 0, Iters = 0, Ms = 0;
    const int Trials = 12;
    for (int T = 0; T < Trials; ++T) {
      MilpEffort E = solveKnapsackFamily(C.Sos1, C.Rounding, 7000 + T);
      Nodes += static_cast<double>(E.Nodes);
      Iters += static_cast<double>(E.LpIterations);
      Ms += E.Seconds * 1e3;
    }
    TA.addRow({C.Name, formatDouble(Nodes / Trials, 1),
               formatDouble(Iters / Trials, 0),
               formatDouble(Ms / Trials, 2)});
  }
  TA.print();
  std::printf("(finding: on this family the two rules coincide — the LP "
              "relaxation splits each\n group across two adjacent modes, "
              "so the most-fractional variable always lies in\n the "
              "most-fractional group; rounding changes wall time, not "
              "the tree)\n");

  // ---- Ablation 3: filter threshold sweep on a real workload.
  std::printf("\n== Ablation: edge-filter threshold (gsm, mid deadline) "
              "==\n");
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Workload W = workloadByName("gsm");
  auto Sim = makeSimulator(W, W.defaultInput());
  Profile Prof = collectProfile(*Sim, Modes);
  double Deadline =
      0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());
  Table TF({"threshold", "groups", "solve ms", "energy uJ"});
  for (double Th : {0.0, 0.005, 0.02, 0.08}) {
    DvsOptions O;
    O.FilterThreshold = Th;
    O.InitialMode = 2;
    DvsScheduler Sched(*W.Fn, Prof, Modes, Reg, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    if (!R)
      continue;
    RunStats Run = Sim->run(Modes, R->Assignment, Reg);
    TF.addRow({formatDouble(Th, 3),
               formatInt(R->NumIndependentGroups),
               formatDouble(R->SolveSeconds * 1e3, 2),
               formatDouble(Run.EnergyJoules * 1e6, 1)});
  }
  TF.print();

  // ---- Ablation 4: edge-based vs block-based granularity.
  // Block-based control = one mode per block regardless of entry path.
  // Emulated with a per-block profile squeeze: tie all in-edges by
  // running the scheduler with threshold 1.0 (ties every tail edge),
  // vs the paper's edge-based default.
  std::printf("\n== Ablation: edge-based vs (approximate) block-based "
              "granularity ==\n");
  Table TG({"benchmark", "edge groups", "edge energy uJ",
            "block-ish groups", "block-ish energy uJ"});
  for (const std::string &Name : {std::string("mpeg_decode"),
                                  std::string("gsm")}) {
    Workload WB = workloadByName(Name);
    auto SimB = makeSimulator(WB, WB.defaultInput());
    Profile ProfB = collectProfile(*SimB, Modes);
    double Dl = 0.5 * (ProfB.TotalTimeAtMode.front() +
                       ProfB.TotalTimeAtMode.back());
    auto runWithThreshold = [&](double Th) {
      DvsOptions O;
      O.FilterThreshold = Th;
      O.InitialMode = 2;
      DvsScheduler Sched(*WB.Fn, ProfB, Modes, Reg, O);
      ErrorOr<ScheduleResult> R = Sched.schedule(Dl);
      double E = R ? SimB->run(Modes, R->Assignment, Reg).EnergyJoules
                   : -1.0;
      return std::make_pair(R ? R->NumIndependentGroups : 0, E);
    };
    auto [GE, EE] = runWithThreshold(0.02);
    auto [GB, EB] = runWithThreshold(0.60);
    TG.addRow({Name, formatInt(GE), formatDouble(EE * 1e6, 1),
               formatInt(GB), formatDouble(EB * 1e6, 1)});
  }
  TG.print();
  return 0;
}
