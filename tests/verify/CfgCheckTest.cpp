//===- tests/verify/CfgCheckTest.cpp - CFG/profile structural pass --------===//

#include "verify/CfgChecker.h"

#include "ir/IRBuilder.h"
#include "power/ModeTable.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;
using verify::Diagnostic;
using verify::Report;
using verify::Severity;

namespace {

/// Diamond with a loop: entry -> head; head -> left|right; both -> latch;
/// latch -> head|exit.
std::shared_ptr<Function> makeDiamondLoop() {
  auto Fn = std::make_shared<Function>("diamond", 8, 4096);
  IRBuilder B(*Fn);
  int Entry = B.createBlock("entry");
  int Head = B.createBlock("head");
  int Left = B.createBlock("left");
  int Right = B.createBlock("right");
  int Latch = B.createBlock("latch");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(1, 0);  // i
  B.movImm(2, 10); // trips
  B.movImm(3, 1);
  B.jump(Head);

  B.setInsertPoint(Head);
  B.and_(4, 1, 3); // parity picks the arm
  B.condBr(4, Left, Right);

  B.setInsertPoint(Left);
  B.add(5, 5, 3);
  B.jump(Latch);

  B.setInsertPoint(Right);
  B.mul(5, 5, 3);
  B.jump(Latch);

  B.setInsertPoint(Latch);
  B.add(1, 1, 3);
  B.cmpLt(4, 1, 2);
  B.condBr(4, Head, Exit);

  B.setInsertPoint(Exit);
  B.ret();
  return Fn;
}

Profile profileOf(Function &Fn) {
  Simulator Sim(Fn);
  return collectProfile(Sim, ModeTable::xscale3());
}

bool hasError(const Report &R, const std::string &Needle) {
  for (const Diagnostic &D : R.diagnostics())
    if (D.Sev == Severity::Error &&
        D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(CfgCheck, CleanProfilePasses) {
  auto Fn = makeDiamondLoop();
  Profile P = profileOf(*Fn);
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_TRUE(R.ok()) << R.render();
}

TEST(CfgCheck, CorruptedEdgeCountBreaksFlowConservation) {
  auto Fn = makeDiamondLoop();
  Profile P = profileOf(*Fn);
  ASSERT_FALSE(P.EdgeCounts.empty());
  P.EdgeCounts.begin()->second += 7;
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "flow imbalance") ||
              hasError(R, "in-edge counts"))
      << R.render();
}

TEST(CfgCheck, NegativeTimeIsAnError) {
  auto Fn = makeDiamondLoop();
  Profile P = profileOf(*Fn);
  P.TimePerInvocation[1][0] = -1e-9;
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_TRUE(hasError(R, "negative time")) << R.render();
}

TEST(CfgCheck, NonCfgEdgeIsAnError) {
  auto Fn = makeDiamondLoop();
  Profile P = profileOf(*Fn);
  P.EdgeCounts[{2, 3}] = 5; // left -> right does not exist
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_TRUE(hasError(R, "not a CFG edge")) << R.render();
}

TEST(CfgCheck, PathEdgeMismatchIsAnError) {
  auto Fn = makeDiamondLoop();
  Profile P = profileOf(*Fn);
  ASSERT_FALSE(P.PathCounts.empty());
  P.PathCounts.begin()->second += 3;
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_TRUE(hasError(R, "path counts sum")) << R.render();
}

TEST(CfgCheck, DeadEdgeIsOnlyAWarning) {
  // A branch whose condition is always false: the true arm's edge is
  // dead in the profile but the counts stay perfectly conservative.
  auto Fn = std::make_shared<Function>("biased", 8, 4096);
  IRBuilder B(*Fn);
  int Entry = B.createBlock("entry");
  int Head = B.createBlock("head");
  int Cold = B.createBlock("cold");
  int Hot = B.createBlock("hot");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 0); // always-false condition
  B.movImm(2, 0);
  B.movImm(3, 1);
  B.movImm(4, 5); // trips
  B.jump(Head);
  B.setInsertPoint(Head);
  B.condBr(1, Cold, Hot);
  B.setInsertPoint(Cold);
  B.add(5, 5, 3);
  B.jump(Exit);
  B.setInsertPoint(Hot);
  B.add(2, 2, 3);
  B.cmpLt(6, 2, 4);
  B.condBr(6, Head, Exit);
  B.setInsertPoint(Exit);
  B.ret();

  Profile P = profileOf(*Fn);
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_EQ(R.errorCount(), 0) << R.render();
  bool DeadEdgeWarned = false;
  for (const Diagnostic &D : R.diagnostics())
    if (D.Sev == Severity::Warning &&
        D.Message.find("dead edge") != std::string::npos)
      DeadEdgeWarned = true;
  EXPECT_TRUE(DeadEdgeWarned) << R.render();
}

TEST(CfgCheck, ProfileShapeMismatchIsAnError) {
  auto Fn = makeDiamondLoop();
  Profile P = profileOf(*Fn);
  P.NumBlocks = 3;
  Report R = verify::checkCfgProfile(*Fn, P);
  EXPECT_FALSE(R.ok());
}

TEST(CfgCheck, AllBundledWorkloadsPassClean) {
  ModeTable Modes = ModeTable::xscale3();
  for (const Workload &W : allWorkloads()) {
    Simulator Sim(*W.Fn);
    W.defaultInput().Setup(Sim);
    Profile P = collectProfile(Sim, Modes);
    Report R = verify::checkCfgProfile(*W.Fn, P);
    EXPECT_EQ(R.errorCount(), 0)
        << W.Name << ":\n"
        << R.render();
  }
}

} // namespace
