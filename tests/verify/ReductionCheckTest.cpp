//===- tests/verify/ReductionCheckTest.cpp - reduction-certificate replay -===//

#include "verify/CertificateChecker.h"

#include "lp/LpProblem.h"
#include "milp/MilpSolver.h"
#include "milp/Presolve.h"

#include <gtest/gtest.h>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

/// min x + 2y + 7z st x + y + z >= 4, x,z binary, z caller-fixed at 1.
/// Presolve keeps {x, y}; optimum of the reduced MILP is x=1, y=2.
struct Fixture {
  LpProblem P;
  std::vector<int> Integers;
  PresolveResult PR;
  MilpSolution Reduced;

  Fixture() {
    int X = P.addVariable(0.0, 1.0, 1.0, "x");
    int Y = P.addVariable(0.0, 10.0, 2.0, "y");
    int Z = P.addVariable(0.0, 1.0, 7.0, "z");
    P.addRow(RowSense::GE, 4.0, {{X, 1.0}, {Y, 1.0}, {Z, 1.0}});
    Integers = {X, Z};
    PR = presolve(P, Integers, {Z}, {1.0});
    EXPECT_FALSE(PR.Infeasible) << PR.InfeasibleReason;
    Reduced = MilpSolver(PR.Reduced, PR.IntegerVars).solve();
    EXPECT_EQ(Reduced.Status, MilpStatus::Optimal);
  }
};

TEST(ReductionCheck, HonestPresolvePasses) {
  Fixture F;
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, F.PR.Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_TRUE(RC.Checked);
  EXPECT_TRUE(RC.ok()) << RC.R.render() << RC.Expanded.R.render();
  EXPECT_TRUE(RC.Expanded.Checked);
  EXPECT_LT(RC.ObjectiveBridgeError, 1e-9);
  // The expanded point carries the fixed value back.
  EXPECT_NEAR(RC.Expanded.RecomputedObjective,
              F.Reduced.Objective + F.PR.Cert.ObjectiveOffset, 1e-9);
}

TEST(ReductionCheck, TamperedFixedValueIsCaught) {
  Fixture F;
  ReductionCertificate Cert = F.PR.Cert;
  // Claim z was fixed at 0: the kept row's RHS no longer folds to the
  // reduced one, and the expanded point violates the original row.
  Cert.FixedValue[2] = 0.0;
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_FALSE(RC.ok()) << "tampered fixed value must not verify";
}

TEST(ReductionCheck, TamperedVarMapIsCaught) {
  Fixture F;
  ReductionCertificate Cert = F.PR.Cert;
  // Swap the surviving columns: costs/bounds no longer line up.
  std::swap(Cert.VarMap[0], Cert.VarMap[1]);
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_FALSE(RC.ok());
}

TEST(ReductionCheck, DuplicateVarMapTargetIsCaught) {
  Fixture F;
  ReductionCertificate Cert = F.PR.Cert;
  Cert.VarMap[1] = Cert.VarMap[0]; // two originals claim one column
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_FALSE(RC.ok());
}

TEST(ReductionCheck, TamperedObjectiveOffsetIsCaught) {
  Fixture F;
  ReductionCertificate Cert = F.PR.Cert;
  Cert.ObjectiveOffset += 1.0;
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_FALSE(RC.ok());
  EXPECT_GT(RC.ObjectiveBridgeError, 0.5);
}

TEST(ReductionCheck, DroppingALiveRowIsCaught) {
  Fixture F;
  ReductionCertificate Cert = F.PR.Cert;
  ASSERT_EQ(Cert.RowMap.size(), 1u);
  Cert.RowMap[0] = -1; // the constraint still has free variables
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_FALSE(RC.ok());
}

TEST(ReductionCheck, ShapeMismatchFailsStructurally) {
  Fixture F;
  ReductionCertificate Cert = F.PR.Cert;
  Cert.ReducedVars += 1;
  ReductionCheck RC = checkReductionCertificate(F.P, F.Integers, Cert,
                                                F.PR.Reduced, F.Reduced);
  EXPECT_FALSE(RC.Checked);
  EXPECT_FALSE(RC.ok());
}

} // namespace
