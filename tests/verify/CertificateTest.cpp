//===- tests/verify/CertificateTest.cpp - MILP certificate pass -----------===//
//
// The acceptance-critical corruption fixtures: a genuine MilpSolution
// must certify with max scaled violation < 1e-6, and each deliberate
// corruption — perturbed objective, violated constraint row, mode
// swapped inside one SOS1 group — must be flagged.
//
//===----------------------------------------------------------------------===//

#include "verify/CertificateChecker.h"

#include "dvs/DvsScheduler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace cdvs;
using verify::Certificate;

namespace {

/// One solved instance with retained artifacts, shared by the fixtures.
struct Solved {
  std::shared_ptr<Function> Fn;
  std::shared_ptr<const SolverArtifacts> Artifacts;
};

const Solved &solvedAdpcm() {
  static const Solved S = [] {
    Solved Out;
    Workload W = workloadByName("adpcm");
    Out.Fn = W.Fn;
    ModeTable Modes = ModeTable::xscale3();
    Simulator Sim(*W.Fn);
    W.defaultInput().Setup(Sim);
    Profile P = collectProfile(Sim, Modes);
    double Deadline = 0.5 * (P.TotalTimeAtMode.front() +
                             P.TotalTimeAtMode.back());
    TransitionModel Reg = TransitionModel::paperTypical();
    DvsOptions O;
    O.InitialMode = static_cast<int>(Modes.size()) - 1;
    O.KeepArtifacts = true;
    // The scheduler holds references to its inputs; every argument must
    // outlive the schedule() call (a temporary here is a use-after-scope).
    DvsScheduler Sched(*W.Fn, P, Modes, Reg, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    EXPECT_TRUE(static_cast<bool>(R)) << R.message();
    EXPECT_TRUE(R->Artifacts != nullptr);
    Out.Artifacts = R->Artifacts;
    return Out;
  }();
  return S;
}

Certificate certify(const MilpSolution &Sol) {
  const Solved &S = solvedAdpcm();
  return verify::checkCertificate(S.Artifacts->Problem,
                                  S.Artifacts->IntegerVars, Sol);
}

TEST(Certificate, GenuineSolutionCertifies) {
  Certificate C = certify(solvedAdpcm().Artifacts->Solution);
  EXPECT_TRUE(C.Checked);
  EXPECT_TRUE(C.R.ok()) << C.R.render();
  EXPECT_LT(C.MaxRowViolation, 1e-6);
  EXPECT_LT(C.MaxBoundViolation, 1e-6);
  EXPECT_LT(C.MaxIntegralityGap, 1e-6);
  EXPECT_LT(C.ObjectiveMismatch,
            1e-6 * std::max(1.0, C.RecomputedObjective));
}

TEST(Certificate, PerturbedObjectiveIsFlagged) {
  MilpSolution Sol = solvedAdpcm().Artifacts->Solution;
  Sol.Objective *= 0.9; // the solver "claims" 10% less energy
  Certificate C = certify(Sol);
  EXPECT_TRUE(C.Checked);
  EXPECT_FALSE(C.R.ok());
  EXPECT_GT(C.ObjectiveMismatch, 0.0);
  EXPECT_NE(C.R.firstError().find("objective"), std::string::npos)
      << C.R.render();
}

TEST(Certificate, ViolatedRowIsFlagged) {
  // Zeroing one mode binary breaks its SOS1 row (sum_m k = 1).
  const Solved &S = solvedAdpcm();
  MilpSolution Sol = S.Artifacts->Solution;
  ASSERT_FALSE(S.Artifacts->IntegerVars.empty());
  int SetVar = -1;
  for (int V : S.Artifacts->IntegerVars)
    if (Sol.X[V] > 0.5) {
      SetVar = V;
      break;
    }
  ASSERT_GE(SetVar, 0);
  Sol.X[SetVar] = 0.0;
  Certificate C = certify(Sol);
  EXPECT_TRUE(C.Checked);
  EXPECT_FALSE(C.R.ok()) << "zeroed k should violate its SOS1 row";
  EXPECT_GT(C.MaxRowViolation, 1e-6);
}

TEST(Certificate, SwappedModeInOneGroupIsFlagged) {
  // Move the selected binary within one SOS1 group: the group row still
  // sums to 1 and integrality holds, but the objective (and possibly
  // the deadline row) no longer matches the reported optimum.
  const Solved &S = solvedAdpcm();
  MilpSolution Sol = S.Artifacts->Solution;
  const std::vector<int> &Ints = S.Artifacts->IntegerVars;
  // Mode binaries are group-major: consecutive runs of NumModes values.
  // Swap the adjacent pair with the largest objective-cost difference,
  // so the recomputed c^T x moves well past the certificate tolerance.
  int BestV = -1, BestW = -1;
  double BestDiff = 0.0;
  for (size_t I = 0; I + 1 < Ints.size(); ++I) {
    int V = Ints[I], W = Ints[I + 1];
    if (Sol.X[V] > 0.5 && Sol.X[W] < 0.5) {
      double Diff = std::fabs(S.Artifacts->Problem.cost(V) -
                              S.Artifacts->Problem.cost(W));
      if (Diff > BestDiff) {
        BestDiff = Diff;
        BestV = V;
        BestW = W;
      }
    }
  }
  ASSERT_GE(BestV, 0) << "no adjacent swap with distinct costs found";
  ASSERT_GT(BestDiff, 2e-6) << "cost gap too small to detect";
  Sol.X[BestV] = 0.0;
  Sol.X[BestW] = 1.0;
  Certificate C = certify(Sol);
  EXPECT_TRUE(C.Checked);
  EXPECT_FALSE(C.R.ok())
      << "mode swap must break the objective match or a constraint row:\n"
      << C.R.render();
}

TEST(Certificate, NonPointStatusIsNotChecked) {
  MilpSolution Sol;
  Sol.Status = MilpStatus::Infeasible;
  Certificate C = certify(Sol);
  EXPECT_FALSE(C.Checked);
  EXPECT_TRUE(C.R.ok()); // a note, not an error
  EXPECT_FALSE(C.R.diagnostics().empty());
}

TEST(Certificate, WrongSizePointIsAnError) {
  MilpSolution Sol = solvedAdpcm().Artifacts->Solution;
  Sol.X.pop_back();
  Certificate C = certify(Sol);
  EXPECT_FALSE(C.Checked);
  EXPECT_FALSE(C.R.ok());
}

} // namespace
