//===- tests/verify/StaticCheckTest.cpp - the dvs-lint --static pass ------===//

#include "verify/StaticChecker.h"

#include "analysis/Analysis.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cdvs;
using namespace cdvs::verify;

namespace {

Function parse(const char *Text) {
  ErrorOr<Function> F = parseFunction(Text);
  EXPECT_TRUE(F.hasValue()) << F.message();
  return *F;
}

bool hasDiag(const Report &R, Severity Sev, const std::string &Needle) {
  for (const Diagnostic &D : R.diagnostics())
    if (D.Sev == Sev && (D.Message.find(Needle) != std::string::npos ||
                         D.Location.find(Needle) != std::string::npos))
      return true;
  return false;
}

const char *kLoop = "function loop (regs=8, mem=64)\n"
                    "0: entry\n"
                    "  jump -> 1\n"
                    "1: head\n"
                    "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                    "  condbr r1 -> 2, 3\n"
                    "2: body\n"
                    "  jump -> 1\n"
                    "3: exit\n"
                    "  ret\n";

TEST(StaticCheck, CleanLoopDrawsOnlyNotes) {
  Function F = parse(kLoop);
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Report R = checkStatic(F, FA);
  EXPECT_TRUE(R.ok()) << R.render();
  EXPECT_EQ(R.warningCount(), 0) << R.render();
  // The back-edge advisory and the summary are notes.
  EXPECT_TRUE(hasDiag(R, Severity::Note, "loop back edge"));
  EXPECT_TRUE(hasDiag(R, Severity::Note, "natural loops"));
}

TEST(StaticCheck, LoopNotesCanBeSilenced) {
  Function F = parse(kLoop);
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  StaticCheckOptions O;
  O.NoteLoopScalingPoints = false;
  Report R = checkStatic(F, FA, nullptr, O);
  EXPECT_FALSE(hasDiag(R, Severity::Note, "loop back edge"));
}

TEST(StaticCheck, UnreachableBlockIsAWarningNotAnError) {
  Function F = parse("function dead (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  ret\n"
                     "1: orphan\n"
                     "  jump -> 0\n");
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Report R = checkStatic(F, FA);
  EXPECT_TRUE(R.ok()) << R.render();
  EXPECT_TRUE(hasDiag(R, Severity::Warning, "unreachable from the entry"));
  EXPECT_TRUE(hasDiag(R, Severity::Warning, "statically dead edge"));
}

TEST(StaticCheck, InfiniteTrapBlockIsAWarning) {
  Function F = parse("function trap (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: out\n"
                     "  ret\n"
                     "2: trap\n"
                     "  jump -> 2\n");
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Report R = checkStatic(F, FA);
  EXPECT_TRUE(R.ok()) << R.render();
  EXPECT_TRUE(hasDiag(R, Severity::Warning, "no exit is reachable"));
}

TEST(StaticCheck, IrreducibleCycleIsFlagged) {
  Function F = parse("function irr (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: a\n"
                     "  cmplt d=r2 s1=r0 s2=r0 imm=0\n"
                     "  condbr r2 -> 2, 3\n"
                     "2: b\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Report R = checkStatic(F, FA);
  EXPECT_TRUE(R.ok()) << R.render(); // structural findings stay warnings
  EXPECT_TRUE(hasDiag(R, Severity::Warning, "irreducible cycle"));
  EXPECT_TRUE(hasDiag(R, Severity::Warning, "enters an irreducible cycle"));
}

TEST(StaticCheck, ProfileCountOnDeadEdgeIsAnError) {
  Function F = parse("function dead (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  ret\n"
                     "1: orphan\n"
                     "  jump -> 0\n");
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Profile Prof;
  Prof.BlockExecs = {1, 0};
  Prof.EdgeCounts[CfgEdge{1, 0}] = 3; // impossible: the edge is dead
  Report R = checkStatic(F, FA, &Prof);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Severity::Error,
                      "statically dead edge carries a nonzero profile "
                      "count"));
}

TEST(StaticCheck, ProfileCountOutsideIntervalIsAnError) {
  Function F = parse(kLoop);
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Profile Prof;
  // The entry block must execute exactly once per invocation.
  Prof.BlockExecs = {2, 5, 4, 1};
  Report R = checkStatic(F, FA, &Prof);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Severity::Error, "outside the static interval"));
}

TEST(StaticCheck, HonestProfilePassesTheCrossCheck) {
  Function F = parse(kLoop);
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(F);
  Profile Prof;
  Prof.BlockExecs = {1, 6, 5, 1};
  Prof.EdgeCounts[CfgEdge{0, 1}] = 1;
  Prof.EdgeCounts[CfgEdge{1, 2}] = 5;
  Prof.EdgeCounts[CfgEdge{2, 1}] = 5;
  Prof.EdgeCounts[CfgEdge{1, 3}] = 1;
  Report R = checkStatic(F, FA, &Prof);
  EXPECT_TRUE(R.ok()) << R.render();
}

} // namespace
