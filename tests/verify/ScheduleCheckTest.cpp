//===- tests/verify/ScheduleCheckTest.cpp - Schedule legality pass --------===//

#include "verify/ScheduleChecker.h"

#include "dvs/DvsScheduler.h"
#include "dvs/EdgeGroups.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;
using verify::Diagnostic;
using verify::ScheduleCheck;
using verify::ScheduleCheckOptions;
using verify::Severity;

namespace {

/// Everything the legality checker consumes, built once from a real
/// scheduled workload.
struct Fixture {
  std::shared_ptr<Function> Fn;
  std::vector<CategoryProfile> Categories;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Transitions = TransitionModel::paperTypical();
  ScheduleResult SR;
  double Deadline = 0.0;
  double Filter = 0.02;
};

Fixture makeScheduledGsm() {
  Fixture F;
  Workload W = workloadByName("gsm");
  F.Fn = W.Fn;
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  Profile P = collectProfile(Sim, F.Modes);
  F.Deadline = 0.5 * (P.TotalTimeAtMode.front() +
                      P.TotalTimeAtMode.back());
  F.Categories.push_back({std::move(P), 1.0});

  DvsOptions O;
  O.FilterThreshold = F.Filter;
  O.InitialMode = static_cast<int>(F.Modes.size()) - 1;
  DvsScheduler Sched(*F.Fn, F.Categories, F.Modes, F.Transitions, O);
  ErrorOr<ScheduleResult> R = Sched.schedule(F.Deadline);
  EXPECT_TRUE(static_cast<bool>(R)) << R.message();
  F.SR = *R;
  return F;
}

ScheduleCheck checkOf(const Fixture &F, const ModeAssignment &A,
                      double ClaimedJoules = -1.0) {
  ScheduleCheckOptions Opts;
  Opts.FilterThreshold = F.Filter;
  Opts.ClaimedEnergyJoules = ClaimedJoules;
  return verify::checkSchedule(*F.Fn, F.Categories, F.Modes,
                               F.Transitions, A, {F.Deadline}, Opts);
}

bool hasError(const ScheduleCheck &C, const std::string &Needle) {
  for (const Diagnostic &D : C.R.diagnostics())
    if (D.Sev == Severity::Error &&
        D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(ScheduleCheck, SolverOutputIsLegal) {
  Fixture F = makeScheduledGsm();
  ScheduleCheck C =
      checkOf(F, F.SR.Assignment, F.SR.PredictedEnergyJoules);
  EXPECT_TRUE(C.R.ok()) << C.R.render();
  ASSERT_EQ(C.CategoryTimeSeconds.size(), 1u);
  EXPECT_LE(C.CategoryTimeSeconds[0], F.Deadline * (1.0 + 1e-6));
  // The recomputed energy is the MILP objective, independently summed.
  EXPECT_NEAR(C.EnergyJoules, F.SR.PredictedEnergyJoules,
              1e-6 * F.SR.PredictedEnergyJoules);
}

TEST(ScheduleCheck, UniformAssignmentIsLegalViaInheritedModes) {
  // An empty edge map is a valid schedule: the initial mode persists
  // everywhere (silent mode-sets), resolved by the fixpoint.
  Fixture F = makeScheduledGsm();
  ModeAssignment A =
      ModeAssignment::uniform(static_cast<int>(F.Modes.size()) - 1);
  ScheduleCheck C = checkOf(F, A);
  EXPECT_TRUE(C.R.ok()) << C.R.render();
}

TEST(ScheduleCheck, OutOfRangeModeIsAnError) {
  Fixture F = makeScheduledGsm();
  ModeAssignment A = F.SR.Assignment;
  ASSERT_FALSE(A.EdgeMode.empty());
  A.EdgeMode.begin()->second = static_cast<int>(F.Modes.size());
  ScheduleCheck C = checkOf(F, A);
  EXPECT_TRUE(hasError(C, "not in the mode table")) << C.R.render();
}

TEST(ScheduleCheck, NonCfgEdgeAssignmentIsAnError) {
  Fixture F = makeScheduledGsm();
  ModeAssignment A = F.SR.Assignment;
  A.EdgeMode[{97, 98}] = 0;
  ScheduleCheck C = checkOf(F, A);
  EXPECT_TRUE(hasError(C, "not in the CFG")) << C.R.render();
}

TEST(ScheduleCheck, MissedDeadlineIsAnError) {
  // Force every edge to the slowest mode but keep the mid deadline: the
  // recomputed time must exceed it.
  Fixture F = makeScheduledGsm();
  ModeAssignment A = F.SR.Assignment;
  A.InitialMode = 0;
  for (auto &[E, M] : A.EdgeMode)
    M = 0;
  ScheduleCheck C = checkOf(F, A);
  EXPECT_TRUE(hasError(C, "exceeds the deadline")) << C.R.render();
}

TEST(ScheduleCheck, EnergyMismatchAgainstClaimIsAnError) {
  Fixture F = makeScheduledGsm();
  ScheduleCheck C =
      checkOf(F, F.SR.Assignment, F.SR.PredictedEnergyJoules * 1.5);
  EXPECT_TRUE(hasError(C, "claimed objective")) << C.R.render();
}

TEST(ScheduleCheck, FilteredGroupModeSwitchIsAnError) {
  // Find a filter group with at least two member edges and split their
  // modes: the Section 5.2 soundness condition must flag it.
  Fixture F = makeScheduledGsm();
  EdgeGroups G = computeEdgeGroups(*F.Fn, F.Categories, F.Filter);
  int TargetGroup = -1;
  std::vector<int> Members;
  for (int Grp = 0; Grp < G.NumGroups && TargetGroup < 0; ++Grp) {
    Members.clear();
    for (size_t E = 0; E < G.Edges.size(); ++E)
      if (G.GroupOf[E] == Grp && G.Edges[E].From != -1)
        Members.push_back(static_cast<int>(E));
    if (Members.size() >= 2)
      TargetGroup = Grp;
  }
  ASSERT_GE(TargetGroup, 0)
      << "expected the 2% filter to tie at least one edge pair on gsm";

  ModeAssignment A = F.SR.Assignment;
  const CfgEdge &E0 = G.Edges[Members[0]];
  const CfgEdge &E1 = G.Edges[Members[1]];
  int M = A.EdgeMode.count(E0) ? A.EdgeMode[E0] : A.InitialMode;
  A.EdgeMode[E0] = M;
  A.EdgeMode[E1] = (M + 1) % static_cast<int>(F.Modes.size());
  ScheduleCheck C = checkOf(F, A);
  EXPECT_TRUE(hasError(C, "filtered edge carries a mode switch"))
      << C.R.render();
}

} // namespace
