//===- tests/profile/ProfileTest.cpp - profile collection -----------------===//

#include "profile/Profile.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

/// A loop with a data-dependent branch inside: profiles have nontrivial
/// block, edge, and path structure.
Function makeBranchyLoop() {
  Function F("branchy", 10, 4096);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int Head = B.createBlock("head");
  int Odd = B.createBlock("odd");
  int Even = B.createBlock("even");
  int Latch = B.createBlock("latch");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 0);  // i
  B.movImm(2, 64); // n
  B.movImm(3, 1);
  B.movImm(6, 0); // acc
  B.jump(Head);
  B.setInsertPoint(Head);
  B.cmpLt(4, 1, 2);
  B.condBr(4, Latch, Exit);
  B.setInsertPoint(Latch);
  B.and_(5, 1, 3);
  B.condBr(5, Odd, Even);
  B.setInsertPoint(Odd);
  B.add(6, 6, 1);
  B.add(1, 1, 3);
  B.jump(Head);
  B.setInsertPoint(Even);
  B.mul(6, 6, 3);
  B.add(1, 1, 3);
  B.jump(Head);
  B.setInsertPoint(Exit);
  B.ret();
  return F;
}

TEST(Profile, ShapesMatchModeTable) {
  Function F = makeBranchyLoop();
  Simulator Sim(F);
  ModeTable Modes = ModeTable::xscale3();
  Profile P = collectProfile(Sim, Modes);
  EXPECT_EQ(P.NumBlocks, 6);
  EXPECT_EQ(P.NumModes, 3);
  EXPECT_EQ(P.TotalTimeAtMode.size(), 3u);
  ASSERT_EQ(P.TimePerInvocation.size(), 6u);
  ASSERT_EQ(P.TimePerInvocation[0].size(), 3u);
}

TEST(Profile, SlowerModesTakeLongerAndLessEnergy) {
  Function F = makeBranchyLoop();
  Simulator Sim(F);
  ModeTable Modes = ModeTable::xscale3();
  Profile P = collectProfile(Sim, Modes);
  EXPECT_GT(P.TotalTimeAtMode[0], P.TotalTimeAtMode[2]);
  EXPECT_LT(P.TotalEnergyAtMode[0], P.TotalEnergyAtMode[2]);
}

TEST(Profile, EdgeAndPathCountsConsistent) {
  Function F = makeBranchyLoop();
  Simulator Sim(F);
  ModeTable Modes = ModeTable::xscale3();
  Profile P = collectProfile(Sim, Modes);
  // Odd and even paths split the 64 iterations evenly. Block ids by
  // construction order: entry=0, head=1, odd=2, even=3, latch=4, exit=5.
  EXPECT_EQ(P.EdgeCounts.at({4, 2}), 32u); // latch -> odd (i odd)
  EXPECT_EQ(P.EdgeCounts.at({4, 3}), 32u); // latch -> even
  EXPECT_EQ(P.EdgeCounts.at({1, 5}), 1u);  // head -> exit
  // For every block: sum of incoming edge counts (+1 for the entry
  // block's virtual start) equals its execution count.
  std::vector<uint64_t> InCount(P.NumBlocks, 0);
  for (const auto &[E, C] : P.EdgeCounts)
    InCount[E.To] += C;
  InCount[0] += 1;
  for (int Blk = 0; Blk < P.NumBlocks; ++Blk)
    EXPECT_EQ(InCount[Blk], P.BlockExecs[Blk]) << "block " << Blk;
  // Path counts through a block sum to its non-final departures.
  uint64_t PathsThroughHead = 0;
  for (const auto &[Path, C] : P.PathCounts)
    if (std::get<1>(Path) == 1)
      PathsThroughHead += C;
  EXPECT_EQ(PathsThroughHead, P.BlockExecs[1]); // head never ends the run
}

TEST(Profile, PerInvocationTimesAreAverages) {
  Function F = makeBranchyLoop();
  Simulator Sim(F);
  ModeTable Modes = ModeTable::xscale3();
  Profile P = collectProfile(Sim, Modes);
  for (int M = 0; M < P.NumModes; ++M) {
    double Sum = 0.0;
    for (int Blk = 0; Blk < P.NumBlocks; ++Blk)
      Sum += P.TimePerInvocation[Blk][M] *
             static_cast<double>(P.BlockExecs[Blk]);
    EXPECT_NEAR(Sum, P.TotalTimeAtMode[M], 1e-12) << "mode " << M;
  }
}

TEST(Profile, ReferenceModeSelectable) {
  Function F = makeBranchyLoop();
  Simulator Sim(F);
  ModeTable Modes = ModeTable::xscale3();
  Profile P0 = collectProfile(Sim, Modes, 0);
  Profile P2 = collectProfile(Sim, Modes, 2);
  // Control flow is mode invariant, so counts agree.
  EXPECT_EQ(P0.EdgeCounts, P2.EdgeCounts);
  EXPECT_EQ(P0.Reference.Instructions, P2.Reference.Instructions);
  // But the reference run's wall time differs.
  EXPECT_GT(P0.Reference.TimeSeconds, P2.Reference.TimeSeconds);
}

} // namespace
