//===- tests/common/RandomProgram.h - random structured IR ------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random *structured* programs for property tests: a chain
/// of regions, each a straight block, a bounded counted loop (possibly
/// with memory traffic), or a data-dependent diamond. Programs always
/// verify and always terminate, so they can be fed to the simulator,
/// the parser, the passes, and the whole DVS pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TESTS_COMMON_RANDOMPROGRAM_H
#define CDVS_TESTS_COMMON_RANDOMPROGRAM_H

#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <functional>
#include <string>

namespace cdvs {
namespace testutil {

/// Register conventions inside generated programs.
///  r0       constant 0
///  r1       constant 1
///  r2       constant 2
///  r3       scratch accumulator (data dependent)
///  r4..r7   loop counters (by nesting depth)
///  r8..r15  temporaries
inline constexpr int RandomProgramRegs = 16;

namespace detail {

inline void emitComputePacket(IRBuilder &B, Rng &R) {
  int Ops = 1 + static_cast<int>(R.nextBelow(6));
  for (int I = 0; I < Ops; ++I) {
    int T = 8 + static_cast<int>(R.nextBelow(8));
    switch (R.nextBelow(6)) {
    case 0:
      B.add(3, 3, T);
      break;
    case 1:
      B.mul(T, 3, 1);
      break;
    case 2:
      B.xor_(3, 3, T);
      break;
    case 3:
      B.shr(T, 3, 2);
      break;
    case 4:
      B.fadd(3, 3, T);
      break;
    default:
      B.movImm(T, static_cast<int64_t>(R.nextBelow(1000)));
      break;
    }
  }
}

inline void emitMemoryPacket(IRBuilder &B, Rng &R, size_t MemBytes) {
  // Address = (acc masked) into the image; always in range.
  int64_t Mask = static_cast<int64_t>((MemBytes / 2) - 1) & ~3LL;
  int T = 8 + static_cast<int>(R.nextBelow(8));
  B.movImm(T, Mask);
  B.and_(T, 3, T);
  if (R.nextBool(0.6))
    B.load(9, T, 0);
  else
    B.store(3, T, 0);
  B.add(3, 3, 9);
}

} // namespace detail

/// Builds a random structured program. \p Regions bounds the number of
/// top-level regions; loops nest up to depth 2 with trips <= 9.
inline Function makeRandomProgram(Rng &R, int Regions = 5,
                                  size_t MemBytes = 8192) {
  Function F("random", RandomProgramRegs, MemBytes);
  IRBuilder B(F);

  int Entry = B.createBlock("entry");
  B.setInsertPoint(Entry);
  B.movImm(0, 0);
  B.movImm(1, 1);
  B.movImm(2, 2);
  B.movImm(3, static_cast<int64_t>(R.nextBelow(512)));
  for (int T = 8; T < 16; ++T)
    B.movImm(T, static_cast<int64_t>(R.nextBelow(64)));

  // Recursive region emitter; returns with the insert point at the end
  // of the emitted region's last block.
  std::function<void(int, int)> emitRegion = [&](int Kind, int Depth) {
    Rng &Rr = R;
    switch (Kind) {
    case 0: { // straight-line packet in the current block
      detail::emitComputePacket(B, Rr);
      if (Rr.nextBool(0.5))
        detail::emitMemoryPacket(B, Rr, MemBytes);
      break;
    }
    case 1: { // counted loop
      int Counter = 4 + Depth;
      int Trips = 2 + static_cast<int>(Rr.nextBelow(8));
      int Head = B.createBlock("head_d" + std::to_string(Depth));
      int Body = B.createBlock("body_d" + std::to_string(Depth));
      int After = B.createBlock("after_d" + std::to_string(Depth));
      B.movImm(Counter, Trips);
      B.jump(Head);
      B.setInsertPoint(Head);
      B.cmpLt(10, 0, Counter); // 0 < counter
      B.condBr(10, Body, After);
      B.setInsertPoint(Body);
      detail::emitComputePacket(B, Rr);
      if (Rr.nextBool(0.7))
        detail::emitMemoryPacket(B, Rr, MemBytes);
      if (Depth < 2 && Rr.nextBool(0.35))
        emitRegion(1, Depth + 1); // nested loop
      B.sub(Counter, Counter, 1);
      B.jump(Head);
      B.setInsertPoint(After);
      break;
    }
    default: { // data-dependent diamond
      int Then = B.createBlock("then");
      int Else = B.createBlock("else");
      int Join = B.createBlock("join");
      B.and_(10, 3, 1); // parity of the accumulator
      B.condBr(10, Then, Else);
      B.setInsertPoint(Then);
      detail::emitComputePacket(B, Rr);
      B.jump(Join);
      B.setInsertPoint(Else);
      detail::emitComputePacket(B, Rr);
      if (Rr.nextBool(0.5))
        detail::emitMemoryPacket(B, Rr, MemBytes);
      B.jump(Join);
      B.setInsertPoint(Join);
      break;
    }
    }
  };

  for (int I = 0; I < Regions; ++I)
    emitRegion(static_cast<int>(R.nextBelow(3)), 0);

  B.ret();
  return F;
}

} // namespace testutil
} // namespace cdvs

#endif // CDVS_TESTS_COMMON_RANDOMPROGRAM_H
