//===- tests/common/RandomMilp.h - random LP/MILP instances -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random LP and mode-assignment MILP generators shared by
/// the solver property tests and bench_solver_micro. The mode-assignment
/// shape mirrors the paper's DVS formulation: SOS1 groups of binary mode
/// variables plus one coupling deadline row whose tightness controls how
/// much branching the instance needs (0 = only the all-fastest point
/// fits, 1 = even the all-slowest point fits).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_TESTS_COMMON_RANDOMMILP_H
#define CDVS_TESTS_COMMON_RANDOMMILP_H

#include "lp/LpProblem.h"
#include "support/Rng.h"

#include <algorithm>
#include <vector>

namespace cdvs {
namespace testutil {

/// Random dense feasible LP with the given shape (all rows are <= with
/// slack at a known interior point, so the problem is never infeasible).
inline LpProblem makeRandomLp(int Vars, int Rows, uint64_t Seed) {
  Rng R(Seed);
  LpProblem P;
  std::vector<double> X0(Vars);
  for (int J = 0; J < Vars; ++J) {
    double Ub = 1.0 + R.nextDouble() * 4.0;
    X0[J] = R.nextDouble() * Ub;
    P.addVariable(0.0, Ub, R.nextDouble() * 10.0 - 5.0);
  }
  for (int I = 0; I < Rows; ++I) {
    std::vector<LpTerm> Terms;
    double Act = 0.0;
    for (int J = 0; J < Vars; ++J) {
      double A = R.nextDouble() * 6.0 - 3.0;
      Terms.push_back({J, A});
      Act += A * X0[J];
    }
    P.addRow(RowSense::LE, Act + R.nextDouble() * 2.0, Terms);
  }
  return P;
}

/// A mode-assignment MILP instance: binary variables in SOS1 groups of
/// ModesPerGroup, one EQ row per group, one global LE deadline row.
struct ModeAssignmentCase {
  LpProblem P;
  std::vector<std::vector<int>> Groups;
  std::vector<int> Integers;
};

/// Builds a mode-assignment MILP. \p Tightness in [0, 1] places the
/// deadline between the sum of per-group minimum times (0) and maximum
/// times (1); values around 0.05-0.2 force substantial branching.
inline ModeAssignmentCase makeModeAssignment(int NumGroups, double Tightness,
                                             uint64_t Seed,
                                             int ModesPerGroup = 3) {
  Rng R(Seed);
  ModeAssignmentCase C;
  std::vector<LpTerm> TimeRow;
  double MinT = 0.0, MaxT = 0.0;
  C.Groups.resize(NumGroups);
  for (int G = 0; G < NumGroups; ++G) {
    std::vector<LpTerm> Sum;
    double GMin = 1e18, GMax = 0.0;
    for (int M = 0; M < ModesPerGroup; ++M) {
      double E = 1.0 + R.nextDouble() * 9.0;
      double T = 1.0 + R.nextDouble() * 9.0;
      int V = C.P.addVariable(0.0, 1.0, E);
      C.Groups[G].push_back(V);
      Sum.push_back({V, 1.0});
      TimeRow.push_back({V, T});
      GMin = std::min(GMin, T);
      GMax = std::max(GMax, T);
    }
    C.P.addRow(RowSense::EQ, 1.0, Sum);
    MinT += GMin;
    MaxT += GMax;
  }
  C.P.addRow(RowSense::LE, MinT + Tightness * (MaxT - MinT), TimeRow);
  for (const auto &G : C.Groups)
    C.Integers.insert(C.Integers.end(), G.begin(), G.end());
  return C;
}

} // namespace testutil
} // namespace cdvs

#endif // CDVS_TESTS_COMMON_RANDOMMILP_H
