//===- tests/workloads/WorkloadsTest.cpp - MediaBench analogues -----------===//

#include "workloads/Workloads.h"

#include "profile/Profile.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

const VoltageLevel Fast{1.65, 800e6};

TEST(Workloads, RegistryHasSix) {
  std::vector<Workload> All = allWorkloads();
  ASSERT_EQ(All.size(), 6u);
  EXPECT_EQ(All[0].Name, "adpcm");
  EXPECT_EQ(All[3].Name, "mpeg_decode");
}

TEST(Workloads, ByNameFindsEach) {
  for (const char *Name : {"adpcm", "epic", "gsm", "mpeg_decode",
                           "mpg123", "ghostscript"})
    EXPECT_EQ(workloadByName(Name).Name, Name);
}

class AllWorkloadsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloadsTest, VerifiesAndTerminates) {
  Workload W = workloadByName(GetParam());
  ErrorOr<bool> Ok = W.Fn->verify();
  ASSERT_TRUE(Ok.hasValue()) << Ok.message();
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_TRUE(S.Completed);
  EXPECT_GT(S.Instructions, 100000u) << "workload too small to profile";
  EXPECT_GT(S.Loads + S.Stores, 10000u);
}

TEST_P(AllWorkloadsTest, DeterministicAcrossRuns) {
  Workload W = workloadByName(GetParam());
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  RunStats A = Sim.runAtLevel(Fast);
  RunStats B = Sim.runAtLevel(Fast);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_DOUBLE_EQ(A.TimeSeconds, B.TimeSeconds);
  EXPECT_DOUBLE_EQ(A.EnergyJoules, B.EnergyJoules);
  EXPECT_EQ(A.EdgeCounts, B.EdgeCounts);
}

TEST_P(AllWorkloadsTest, ControlFlowIsModeInvariant) {
  Workload W = workloadByName(GetParam());
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  RunStats A = Sim.runAtLevel(Fast);
  RunStats B = Sim.runAtLevel({0.70, 200e6});
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.EdgeCounts, B.EdgeCounts);
  EXPECT_EQ(A.PathCounts, B.PathCounts);
  // Slower clock: longer time, less energy (quadratic voltage).
  EXPECT_GT(B.TimeSeconds, A.TimeSeconds);
  EXPECT_LT(B.EnergyJoules, A.EnergyJoules);
}

INSTANTIATE_TEST_SUITE_P(Each, AllWorkloadsTest,
                         ::testing::Values("adpcm", "epic", "gsm",
                                           "mpeg_decode", "mpg123",
                                           "ghostscript"));

TEST(Workloads, RegimesMatchDesign) {
  // The parameter regimes DESIGN.md promises: adpcm/epic/mpeg are
  // memory-overlap programs (Noverlap ~ Ncache or above), gsm is
  // dependent-compute bound.
  auto ParamsOf = [](const std::string &Name) {
    Workload W = workloadByName(Name);
    Simulator Sim(*W.Fn);
    W.defaultInput().Setup(Sim);
    return Sim.runAtLevel(Fast);
  };
  RunStats Adpcm = ParamsOf("adpcm");
  EXPECT_GT(Adpcm.NoverlapCycles, Adpcm.NcacheCycles);
  RunStats Epic = ParamsOf("epic");
  EXPECT_GT(Epic.NoverlapCycles, Epic.NcacheCycles);
  RunStats Mpeg = ParamsOf("mpeg_decode");
  EXPECT_GT(Mpeg.NoverlapCycles, Mpeg.NcacheCycles / 2);
  RunStats Gsm = ParamsOf("gsm");
  EXPECT_LT(Gsm.NoverlapCycles, Gsm.NcacheCycles);
  EXPECT_GT(Gsm.NdependentCycles, 2 * Gsm.NcacheCycles);
  // All four have a real invariant-memory component.
  for (const RunStats *R : {&Adpcm, &Epic, &Mpeg, &Gsm})
    EXPECT_GT(R->TinvariantSeconds, 1e-5);
}

TEST(Workloads, MpegCategoriesExerciseDifferentPaths) {
  Workload W = workloadByName("mpeg_decode");
  ASSERT_EQ(W.Inputs.size(), 4u);

  auto RunInput = [&](const std::string &Name) {
    Simulator Sim(*W.Fn);
    W.input(Name).Setup(Sim);
    return Sim.runAtLevel(Fast);
  };
  RunStats NoB = RunInput("100b");
  RunStats B2 = RunInput("flwr");
  // Locate the B-frame motion-compensation body by name.
  int BBody = -1;
  for (int I = 0; I < W.Fn->numBlocks(); ++I)
    if (W.Fn->block(I).Name == "mc_b_body")
      BBody = I;
  ASSERT_GE(BBody, 0);
  EXPECT_EQ(NoB.BlockExecs[BBody], 0u) << "noB input ran the B path";
  EXPECT_GT(B2.BlockExecs[BBody], 1000u) << "B2 input missed the B path";
  // Double reference traffic: B2 runs see more DRAM time.
  EXPECT_GT(B2.TinvariantSeconds, NoB.TinvariantSeconds * 1.2);
}

TEST(Workloads, MpegInputsWithinCategoryAreSimilar) {
  Workload W = workloadByName("mpeg_decode");
  auto TimeOf = [&](const std::string &Name) {
    Simulator Sim(*W.Fn);
    W.input(Name).Setup(Sim);
    return Sim.runAtLevel(Fast).TimeSeconds;
  };
  double T100b = TimeOf("100b");
  double TBbc = TimeOf("bbc");
  double TFlwr = TimeOf("flwr");
  // Same-category inputs are within ~2x; cross-category differ more in
  // memory behaviour (checked elsewhere) though wall time may overlap.
  EXPECT_LT(std::max(T100b, TBbc) / std::min(T100b, TBbc), 2.0);
  EXPECT_GT(TFlwr, 0.0);
}

TEST(Workloads, ProfilesCollectCleanly) {
  // End-to-end profile collection over the 3-mode table for each
  // workload (also exercises the mode-invariance assertion inside).
  ModeTable Modes = ModeTable::xscale3();
  for (Workload &W : allWorkloads()) {
    Simulator Sim(*W.Fn);
    W.defaultInput().Setup(Sim);
    Profile P = collectProfile(Sim, Modes);
    EXPECT_EQ(P.NumBlocks, W.Fn->numBlocks());
    EXPECT_GT(P.EdgeCounts.size(), 3u) << W.Name;
    EXPECT_GT(P.TotalTimeAtMode[0], P.TotalTimeAtMode[2]) << W.Name;
  }
}

} // namespace
