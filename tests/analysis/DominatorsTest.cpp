//===- tests/analysis/DominatorsTest.cpp - dominator/post-dominator trees -===//

#include "analysis/Dominators.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cdvs;
using namespace cdvs::analysis;

namespace {

Function parse(const char *Text) {
  ErrorOr<Function> F = parseFunction(Text);
  EXPECT_TRUE(F.hasValue()) << F.message();
  return *F;
}

const char *kDiamond = "function diamond (regs=8, mem=64)\n"
                       "0: entry\n"
                       "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                       "  condbr r1 -> 1, 2\n"
                       "1: left\n"
                       "  jump -> 3\n"
                       "2: right\n"
                       "  jump -> 3\n"
                       "3: exit\n"
                       "  ret\n";

TEST(Dominators, DiamondJoinIsDominatedByBranchOnly) {
  Function F = parse(kDiamond);
  DomTree D = computeDominators(F);
  EXPECT_EQ(D.root(), 0);
  EXPECT_EQ(D.idom(0), 0);
  EXPECT_EQ(D.idom(1), 0);
  EXPECT_EQ(D.idom(2), 0);
  // The join is dominated by the branch, not by either arm.
  EXPECT_EQ(D.idom(3), 0);
  EXPECT_TRUE(D.dominates(0, 3));
  EXPECT_FALSE(D.dominates(1, 3));
  EXPECT_FALSE(D.dominates(2, 3));
  EXPECT_TRUE(D.dominates(3, 3)); // reflexive
  EXPECT_FALSE(D.strictlyDominates(3, 3));
  EXPECT_EQ(D.depth(0), 0);
  EXPECT_EQ(D.depth(3), 1);
}

TEST(Dominators, DiamondPostDominators) {
  Function F = parse(kDiamond);
  DomTree P = computePostDominators(F);
  // Virtual exit node is id numBlocks(); the single Ret block
  // post-dominates everything.
  int VExit = F.numBlocks();
  EXPECT_EQ(P.root(), VExit);
  EXPECT_EQ(P.idom(3), VExit);
  EXPECT_EQ(P.idom(0), 3);
  EXPECT_EQ(P.idom(1), 3);
  EXPECT_EQ(P.idom(2), 3);
  EXPECT_TRUE(P.dominates(3, 0));
  EXPECT_FALSE(P.dominates(1, 0)); // the left arm can be skipped
}

TEST(Dominators, LoopHeaderDominatesBody) {
  Function F = parse("function loop (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 3\n"
                     "2: body\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  DomTree D = computeDominators(F);
  EXPECT_EQ(D.idom(1), 0);
  EXPECT_EQ(D.idom(2), 1);
  EXPECT_EQ(D.idom(3), 1);
  EXPECT_TRUE(D.dominates(1, 2));
  // The back edge does not make the body dominate the header.
  EXPECT_FALSE(D.dominates(2, 1));
}

TEST(Dominators, UnreachableBlockHasNoIdom) {
  Function F = parse("function dead (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  ret\n"
                     "1: orphan\n"
                     "  jump -> 0\n");
  DomTree D = computeDominators(F);
  EXPECT_TRUE(D.reachable(0));
  EXPECT_FALSE(D.reachable(1));
  EXPECT_EQ(D.idom(1), DomTree::kNone);
  // Unreachable nodes dominate only themselves.
  EXPECT_TRUE(D.dominates(1, 1));
  EXPECT_FALSE(D.dominates(1, 0));
  EXPECT_FALSE(D.dominates(0, 1));
}

TEST(Dominators, MultiRetPostDominatorsMeetAtVirtualExit) {
  Function F = parse("function tworet (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: a\n"
                     "  ret\n"
                     "2: b\n"
                     "  ret\n");
  DomTree P = computePostDominators(F);
  int VExit = F.numBlocks();
  EXPECT_EQ(P.idom(1), VExit);
  EXPECT_EQ(P.idom(2), VExit);
  // Neither Ret post-dominates the entry; only the virtual exit does.
  EXPECT_FALSE(P.dominates(1, 0));
  EXPECT_FALSE(P.dominates(2, 0));
  EXPECT_TRUE(P.dominates(VExit, 0));
}

TEST(Dominators, SelfLoopEntry) {
  Function F = parse("function selfy (regs=8, mem=64)\n"
                     "0: spin\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 0, 1\n"
                     "1: exit\n"
                     "  ret\n");
  DomTree D = computeDominators(F);
  EXPECT_EQ(D.idom(0), 0);
  EXPECT_EQ(D.idom(1), 0);
  DomTree P = computePostDominators(F);
  EXPECT_TRUE(P.dominates(1, 0));
}

} // namespace
