//===- tests/analysis/AnalysisTest.cpp - reachability, intervals, points --===//

#include "analysis/Analysis.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cdvs;
using namespace cdvs::analysis;

namespace {

Function parse(const char *Text) {
  ErrorOr<Function> F = parseFunction(Text);
  EXPECT_TRUE(F.hasValue()) << F.message();
  return *F;
}

ScalingPointKind kindOf(const FunctionAnalysis &FA, int From, int To) {
  int I = FA.edgeIndex(CfgEdge{From, To});
  EXPECT_GE(I, 0) << "no edge " << From << "->" << To;
  return I >= 0 ? FA.Points[I].Kind : ScalingPointKind::Normal;
}

const ExecInterval &edgeInterval(const FunctionAnalysis &FA, int From,
                                 int To) {
  int I = FA.edgeIndex(CfgEdge{From, To});
  EXPECT_GE(I, 0);
  return FA.Freq.Edges[I];
}

// Entry returns directly; a two-block cycle dangles unreachable.
const char *kOrphanCycle = "function orphans (regs=8, mem=64)\n"
                           "0: entry\n"
                           "  ret\n"
                           "1: a\n"
                           "  jump -> 2\n"
                           "2: b\n"
                           "  jump -> 1\n";

TEST(Reachability, UnreachableBlocksAndEdgesAreClassified) {
  Function F = parse(kOrphanCycle);
  Reachability R = computeReachability(F);
  EXPECT_TRUE(R.live(0));
  EXPECT_EQ(R.Blocks[1], BlockLiveness::DeadUnreachable);
  EXPECT_EQ(R.Blocks[2], BlockLiveness::DeadUnreachable);
  EXPECT_EQ(R.classify(CfgEdge{1, 2}), EdgeLiveness::DeadUnreachable);
  EXPECT_FALSE(R.live(CfgEdge{2, 1}));
}

TEST(Reachability, NoExitBlocksAreDeadEvenThoughReachable) {
  // Block 2 is reachable but spins forever: no path to a Ret.
  Function F = parse("function trap (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: out\n"
                     "  ret\n"
                     "2: trap\n"
                     "  jump -> 2\n");
  Reachability R = computeReachability(F);
  EXPECT_TRUE(R.fromEntry(2));
  EXPECT_FALSE(R.toExit(2));
  EXPECT_EQ(R.Blocks[2], BlockLiveness::DeadNoExit);
  // The edge into the trap can never lie on a terminating path.
  EXPECT_EQ(R.classify(CfgEdge{0, 2}), EdgeLiveness::DeadNoExit);
  EXPECT_TRUE(R.live(CfgEdge{0, 1}));
}

TEST(Intervals, DiamondMinMaxBounds) {
  Function F = parse("function diamond (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: left\n"
                     "  jump -> 3\n"
                     "2: right\n"
                     "  jump -> 3\n"
                     "3: exit\n"
                     "  ret\n");
  FunctionAnalysis FA = analyzeFunction(F);
  // Entry and join execute exactly once; the arms zero-or-once.
  EXPECT_TRUE(FA.Freq.Blocks[0].mustExecute());
  EXPECT_TRUE(FA.Freq.Blocks[3].mustExecute());
  EXPECT_FALSE(FA.Freq.Blocks[0].Unbounded);
  EXPECT_EQ(FA.Freq.Blocks[1].Min, 0u);
  EXPECT_EQ(FA.Freq.Blocks[1].Max, 1u);
  EXPECT_TRUE(FA.Freq.Blocks[1].admits(0));
  EXPECT_TRUE(FA.Freq.Blocks[1].admits(1));
  EXPECT_FALSE(FA.Freq.Blocks[1].admits(2));
  // Either arm edge can be avoided, so Min = 0 on all four edges.
  EXPECT_EQ(edgeInterval(FA, 0, 1).Min, 0u);
  EXPECT_EQ(edgeInterval(FA, 1, 3).Max, 1u);
}

TEST(Intervals, LoopEdgesAreUnboundedButCrossingEdgesAreNot) {
  Function F = parse("function loop (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 3\n"
                     "2: body\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  FunctionAnalysis FA = analyzeFunction(F);
  // Inside the cycle: unbounded. Crossing into or out of it: at most
  // once per invocation (the condensation is a DAG).
  EXPECT_TRUE(edgeInterval(FA, 2, 1).Unbounded);
  EXPECT_TRUE(edgeInterval(FA, 1, 2).Unbounded);
  EXPECT_FALSE(edgeInterval(FA, 0, 1).Unbounded);
  EXPECT_EQ(edgeInterval(FA, 0, 1).Max, 1u);
  EXPECT_FALSE(edgeInterval(FA, 1, 3).Unbounded);
  EXPECT_EQ(edgeInterval(FA, 1, 3).Max, 1u);
  // The entry edge and the exit edge lie on every terminating path.
  EXPECT_TRUE(edgeInterval(FA, 0, 1).mustExecute());
  EXPECT_TRUE(edgeInterval(FA, 1, 3).mustExecute());
  EXPECT_TRUE(FA.Freq.Blocks[1].Unbounded);
}

TEST(Intervals, DeadBlocksGetZeroIntervals) {
  Function F = parse(kOrphanCycle);
  FunctionAnalysis FA = analyzeFunction(F);
  EXPECT_TRUE(FA.Freq.Blocks[1].cannotExecute());
  EXPECT_TRUE(FA.Freq.Blocks[2].cannotExecute());
  EXPECT_TRUE(edgeInterval(FA, 1, 2).cannotExecute());
  EXPECT_FALSE(FA.Freq.Blocks[1].admits(1));
}

TEST(Placement, LoopEdgesAreClassified) {
  Function F = parse("function loop (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 3\n"
                     "2: body\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  FunctionAnalysis FA = analyzeFunction(F);
  EXPECT_EQ(kindOf(FA, 0, 1), ScalingPointKind::LoopEntry);
  EXPECT_EQ(kindOf(FA, 2, 1), ScalingPointKind::LoopBack);
  EXPECT_EQ(kindOf(FA, 1, 3), ScalingPointKind::LoopExit);
  // Head->body stays inside the cycle: a plain scaling point.
  EXPECT_EQ(kindOf(FA, 1, 2), ScalingPointKind::Normal);
}

TEST(Placement, SelfLoopAndDeadAndIrreducibleKinds) {
  Function F = parse("function mix (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: spin\n"
                     "  cmplt d=r2 s1=r0 s2=r0 imm=0\n"
                     "  condbr r2 -> 1, 5\n"
                     "2: ia\n"
                     "  cmplt d=r3 s1=r0 s2=r0 imm=0\n"
                     "  condbr r3 -> 3, 5\n"
                     "3: ib\n"
                     "  jump -> 2\n"
                     "4: orphan\n"
                     "  jump -> 5\n"
                     "5: exit\n"
                     "  ret\n");
  // Make {2,3} irreducible by adding a second entry: reparse with an
  // extra edge is clumsy in text form, so instead check what this CFG
  // gives us: a self loop at 1, a reducible loop {2,3}, a dead edge
  // 4->5.
  FunctionAnalysis FA = analyzeFunction(F);
  EXPECT_EQ(kindOf(FA, 1, 1), ScalingPointKind::SelfLoop);
  EXPECT_EQ(kindOf(FA, 4, 5), ScalingPointKind::Dead);
  EXPECT_EQ(kindOf(FA, 0, 2), ScalingPointKind::LoopEntry);
  EXPECT_EQ(FA.numDeadBlocks(), 1);
  EXPECT_EQ(FA.numDeadEdges(), 1);
}

TEST(Placement, IrreducibleEntryEdges) {
  Function F = parse("function irr (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: a\n"
                     "  cmplt d=r2 s1=r0 s2=r0 imm=0\n"
                     "  condbr r2 -> 2, 3\n"
                     "2: b\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  FunctionAnalysis FA = analyzeFunction(F);
  EXPECT_EQ(FA.numIrreducibleSccs(), 1);
  EXPECT_EQ(kindOf(FA, 0, 1), ScalingPointKind::IrreducibleEntry);
  EXPECT_EQ(kindOf(FA, 0, 2), ScalingPointKind::IrreducibleEntry);
  // Leaving the irreducible region is still a loop exit.
  EXPECT_EQ(kindOf(FA, 1, 3), ScalingPointKind::LoopExit);
}

TEST(Analysis, SummaryCountersAndEdgeIndex) {
  Function F = parse("function loop (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 3\n"
                     "2: body\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  FunctionAnalysis FA = analyzeFunction(F);
  EXPECT_EQ(FA.Edges.size(), F.edges().size());
  EXPECT_EQ(FA.Points.size(), FA.Edges.size());
  EXPECT_EQ(FA.Freq.Edges.size(), FA.Edges.size());
  EXPECT_EQ(FA.numDeadBlocks(), 0);
  EXPECT_EQ(FA.numDeadEdges(), 0);
  EXPECT_EQ(FA.numIrreducibleSccs(), 0);
  EXPECT_EQ(FA.maxLoopDepth(), 1);
  EXPECT_EQ(FA.edgeIndex(CfgEdge{3, 0}), -1); // no such edge
}

TEST(Analysis, ScalingPointKindNamesAreStable) {
  EXPECT_STREQ(scalingPointKindName(ScalingPointKind::Normal), "normal");
  EXPECT_STREQ(scalingPointKindName(ScalingPointKind::Dead), "dead");
  EXPECT_STREQ(scalingPointKindName(ScalingPointKind::SelfLoop),
               "self-loop");
}

TEST(Analysis, EmptyFunctionIsAParseErrorNotACrash) {
  ErrorOr<Function> F = parseFunction("function empty (regs=4, mem=64)\n");
  ASSERT_FALSE(F.hasValue());
  EXPECT_NE(F.message().find("no blocks"), std::string::npos)
      << F.message();
}

} // namespace
