//===- tests/analysis/LoopsTest.cpp - SCCs, natural loops, irreducibility -===//

#include "analysis/Loops.h"

#include "analysis/Dominators.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cdvs;
using namespace cdvs::analysis;

namespace {

Function parse(const char *Text) {
  ErrorOr<Function> F = parseFunction(Text);
  EXPECT_TRUE(F.hasValue()) << F.message();
  return *F;
}

LoopForest forestOf(const Function &F) {
  DomTree D = computeDominators(F);
  return computeLoops(F, D);
}

TEST(Loops, StraightLineHasNoLoops) {
  Function F = parse("function straight (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: mid\n"
                     "  jump -> 2\n"
                     "2: exit\n"
                     "  ret\n");
  LoopForest LF = forestOf(F);
  EXPECT_TRUE(LF.Loops.empty());
  EXPECT_FALSE(LF.HasIrreducible);
  // Every block is its own trivial SCC.
  EXPECT_EQ(LF.Sccs.size(), 3u);
  for (int B = 0; B < 3; ++B) {
    EXPECT_FALSE(LF.inCycle(B));
    EXPECT_EQ(LF.LoopOf[B], -1);
    EXPECT_EQ(LF.LoopDepth[B], 0);
  }
}

TEST(Loops, SimpleLoopBodyAndBackEdge) {
  Function F = parse("function loop (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 3\n"
                     "2: body\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  LoopForest LF = forestOf(F);
  ASSERT_EQ(LF.Loops.size(), 1u);
  const Loop &L = LF.Loops[0];
  EXPECT_EQ(L.Header, 1);
  EXPECT_EQ(L.Blocks, (std::vector<int>{1, 2}));
  ASSERT_EQ(L.BackEdges.size(), 1u);
  EXPECT_EQ(L.BackEdges[0].From, 2);
  EXPECT_EQ(L.BackEdges[0].To, 1);
  EXPECT_EQ(L.Depth, 1);
  EXPECT_EQ(L.Parent, -1);
  EXPECT_TRUE(LF.inCycle(1));
  EXPECT_TRUE(LF.inCycle(2));
  EXPECT_FALSE(LF.inCycle(0));
  EXPECT_FALSE(LF.inCycle(3));
  EXPECT_EQ(LF.LoopDepth[2], 1);
  EXPECT_FALSE(LF.HasIrreducible);
}

TEST(Loops, NestedLoopsGetDepthsAndParents) {
  Function F = parse("function nest (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: outer_head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 5\n"
                     "2: inner_head\n"
                     "  cmplt d=r2 s1=r0 s2=r0 imm=0\n"
                     "  condbr r2 -> 3, 4\n"
                     "3: inner_body\n"
                     "  jump -> 2\n"
                     "4: outer_latch\n"
                     "  jump -> 1\n"
                     "5: exit\n"
                     "  ret\n");
  LoopForest LF = forestOf(F);
  ASSERT_EQ(LF.Loops.size(), 2u);
  // Outermost-first within a nest.
  const Loop &Outer = LF.Loops[0];
  const Loop &Inner = LF.Loops[1];
  EXPECT_EQ(Outer.Header, 1);
  EXPECT_EQ(Outer.Blocks, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(Outer.Depth, 1);
  EXPECT_EQ(Outer.Parent, -1);
  EXPECT_EQ(Inner.Header, 2);
  EXPECT_EQ(Inner.Blocks, (std::vector<int>{2, 3}));
  EXPECT_EQ(Inner.Depth, 2);
  EXPECT_EQ(Inner.Parent, 0);
  // Innermost loop wins the per-block map.
  EXPECT_EQ(LF.LoopOf[3], 1);
  EXPECT_EQ(LF.LoopOf[4], 0);
  EXPECT_EQ(LF.LoopDepth[3], 2);
  EXPECT_EQ(LF.LoopDepth[4], 1);
}

TEST(Loops, SelfLoopIsANontrivialSingleBlockScc) {
  Function F = parse("function selfy (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: spin\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "2: exit\n"
                     "  ret\n");
  LoopForest LF = forestOf(F);
  ASSERT_EQ(LF.Loops.size(), 1u);
  EXPECT_EQ(LF.Loops[0].Header, 1);
  EXPECT_EQ(LF.Loops[0].Blocks, (std::vector<int>{1}));
  EXPECT_TRUE(LF.inCycle(1));
  const Scc &S = LF.Sccs[LF.SccOf[1]];
  EXPECT_TRUE(S.Nontrivial);
  EXPECT_EQ(S.Blocks, (std::vector<int>{1}));
  EXPECT_FALSE(S.Irreducible);
}

TEST(Loops, MultiEntryCycleIsIrreducible) {
  // 0 branches into both members of the {1,2} cycle, so neither member
  // dominates the other: no natural loop, one irreducible SCC.
  Function F = parse("function irr (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 1, 2\n"
                     "1: a\n"
                     "  cmplt d=r2 s1=r0 s2=r0 imm=0\n"
                     "  condbr r2 -> 2, 3\n"
                     "2: b\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  LoopForest LF = forestOf(F);
  EXPECT_TRUE(LF.HasIrreducible);
  EXPECT_TRUE(LF.Loops.empty()); // no dominance back edge exists
  const Scc &S = LF.Sccs[LF.SccOf[1]];
  EXPECT_TRUE(S.Nontrivial);
  EXPECT_TRUE(S.Irreducible);
  EXPECT_EQ(S.Blocks, (std::vector<int>{1, 2}));
  EXPECT_EQ(S.Entries, (std::vector<int>{1, 2}));
  EXPECT_EQ(LF.SccOf[1], LF.SccOf[2]);
  EXPECT_TRUE(LF.inCycle(1));
  EXPECT_TRUE(LF.inCycle(2));
}

TEST(Loops, ReducibleLoopReportsSingleEntry) {
  Function F = parse("function loop (regs=8, mem=64)\n"
                     "0: entry\n"
                     "  jump -> 1\n"
                     "1: head\n"
                     "  cmplt d=r1 s1=r0 s2=r0 imm=0\n"
                     "  condbr r1 -> 2, 3\n"
                     "2: body\n"
                     "  jump -> 1\n"
                     "3: exit\n"
                     "  ret\n");
  LoopForest LF = forestOf(F);
  const Scc &S = LF.Sccs[LF.SccOf[1]];
  EXPECT_TRUE(S.Nontrivial);
  EXPECT_FALSE(S.Irreducible);
  EXPECT_EQ(S.Entries, (std::vector<int>{1}));
}

} // namespace
