//===- tests/cluster/RouterTest.cpp - sharding front end end to end -------===//
//
// cluster::Router over real loopback sockets against real net::Server
// backends: proxying with the backend annotation, deterministic ring
// routing (predicted by an independently built HashRing), mid-flight
// backend kill with exactly one answer, the eviction/reinstatement
// state machine, the no_backends reject, and both PeerFetch outcomes
// (miss → cold solve; hit → cache fill after a restart).
//
// Backends solve real MILPs, so timeouts are generous (sanitizer builds
// run these too); assertions are on ordering and state, never speed.
//
//===----------------------------------------------------------------------===//

#include "cluster/Key.h"
#include "cluster/PeerFill.h"
#include "cluster/Ring.h"
#include "cluster/Router.h"

#include "net/Client.h"
#include "net/Server.h"
#include "service/JobIO.h"
#include "service/JsonLite.h"
#include "support/Clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace cdvs;
using namespace cdvs::cluster;

namespace {

constexpr int kFrameWaitMs = 120'000; // MILP under TSan can be slow

net::ServerOptions backendOptions() {
  net::ServerOptions O;
  O.Service.NumWorkers = 2;
  O.Service.QueueCapacity = 64;
  return O;
}

JobRequest gsmJob(const std::string &Id, double Tightness = 0.5) {
  JobRequest R;
  R.Id = Id;
  R.Workload = "gsm";
  R.DeadlineTightness = Tightness;
  return R;
}

void startOrDie(net::Server &S) {
  ErrorOr<bool> R = S.start();
  ASSERT_TRUE(R.hasValue()) << R.message();
}

std::string nameOf(const net::Server &S) {
  return "127.0.0.1:" + std::to_string(S.port());
}

RouterOptions routerOptions(std::vector<std::string> Backends) {
  RouterOptions O;
  O.Backends = std::move(Backends);
  O.HealthIntervalMs = 50;
  O.FailThreshold = 1; // loopback transport failures are never transient
  O.ConnectTimeoutMs = 500;
  return O;
}

net::Client connectOrDie(const Router &R) {
  ErrorOr<net::Client> C = net::Client::connect("127.0.0.1", R.port());
  EXPECT_TRUE(C.hasValue()) << C.message();
  return C ? std::move(*C) : net::Client();
}

/// Polls \p Pred for up to \p Seconds.
bool eventually(double Seconds, const std::function<bool()> &Pred) {
  uint64_t Deadline =
      monotonicNanos() + static_cast<uint64_t>(Seconds * 1e9);
  while (monotonicNanos() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

bool backendOnRing(const Router &R, const std::string &Name) {
  for (const auto &[B, Up] : R.backendHealth())
    if (B == Name)
      return Up;
  ADD_FAILURE() << Name << " is not a configured backend";
  return false;
}

/// A tightness whose request key the ring assigns to \p Owner. The
/// local ring is built exactly as the router builds its own, so this is
/// a prediction, not a probe — the routing test closes the loop.
double tightnessOwnedBy(const HashRing &Ring, const std::string &Owner) {
  for (int I = 0; I <= 500; ++I) {
    double T = 0.45 + 0.001 * I;
    const std::string *O = Ring.ownerOf(requestKey(gsmJob("probe", T)));
    if (O && *O == Owner)
      return T;
  }
  ADD_FAILURE() << "no tightness in [0.45, 0.95] maps to " << Owner;
  return 0.5;
}

TEST(ClusterRouter, ProxiesAndAnnotatesTheBackend) {
  net::Server B(backendOptions());
  startOrDie(B);
  Router R(routerOptions({nameOf(B)}));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  net::Client C = connectOrDie(R);
  ErrorOr<JobResult> Res = C.call(gsmJob("via-router"), kFrameWaitMs);
  ASSERT_TRUE(Res.hasValue()) << Res.message();
  EXPECT_EQ(Res->Status, JobStatus::Done) << Res->Reason;
  EXPECT_EQ(Res->Id, "via-router");
  EXPECT_EQ(Res->Backend, nameOf(B))
      << "the router must stamp the serving backend into the response";
  EXPECT_FALSE(Res->ScheduleText.empty());

  // The same problem again is the same shard's cache hit.
  ErrorOr<JobResult> Again = C.call(gsmJob("again"), kFrameWaitMs);
  ASSERT_TRUE(Again.hasValue()) << Again.message();
  EXPECT_TRUE(Again->CacheHit);
  EXPECT_EQ(Again->ScheduleText, Res->ScheduleText);

  RouterStats S = R.stats();
  EXPECT_EQ(S.ConnectionsAccepted, 1);
  EXPECT_GE(S.RequestsRouted, 2);
  EXPECT_EQ(S.ResponsesRelayed, 2);
  EXPECT_EQ(S.RejectsSent, 0);
  EXPECT_EQ(S.OrphanResponses, 0);
}

TEST(ClusterRouter, RoutesEachKeyToItsPredictedRingOwner) {
  net::Server B1(backendOptions()), B2(backendOptions()),
      B3(backendOptions());
  startOrDie(B1);
  startOrDie(B2);
  startOrDie(B3);
  std::vector<std::string> Names = {nameOf(B1), nameOf(B2), nameOf(B3)};

  Router R(routerOptions(Names));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  HashRing Local;
  for (const std::string &N : Names)
    Local.add(N);

  net::Client C = connectOrDie(R);
  for (const std::string &Owner : Names) {
    double T = tightnessOwnedBy(Local, Owner);
    ErrorOr<JobResult> Res =
        C.call(gsmJob("owned-" + Owner, T), kFrameWaitMs);
    ASSERT_TRUE(Res.hasValue()) << Res.message();
    EXPECT_EQ(Res->Backend, Owner)
        << "tightness " << T << " routed off its predicted owner";
  }
}

TEST(ClusterRouter, MidFlightKillRetriesOnNextOwnerWithoutDuplicates) {
  // The victim's service starts paused so the request is parked in its
  // admission queue — guaranteed in flight through the router — when
  // the backend dies under it.
  net::ServerOptions Paused = backendOptions();
  Paused.Service.StartPaused = true;
  net::Server Victim(Paused);
  net::Server B2(backendOptions()), B3(backendOptions());
  startOrDie(Victim);
  startOrDie(B2);
  startOrDie(B3);
  std::vector<std::string> Names = {nameOf(Victim), nameOf(B2),
                                    nameOf(B3)};

  Router R(routerOptions(Names));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  HashRing Local;
  for (const std::string &N : Names)
    Local.add(N);
  double T = tightnessOwnedBy(Local, nameOf(Victim));

  net::Client C = connectOrDie(R);
  ErrorOr<uint64_t> Corr = C.sendRequest(gsmJob("fail-over", T));
  ASSERT_TRUE(Corr.hasValue());
  ASSERT_TRUE(eventually(
      120.0, [&] { return Victim.service().stats().Submitted == 1; }))
      << "request never reached the victim backend";

  Victim.stop(); // EOF on the router's upstream connection

  // Exactly one answer, from a surviving backend.
  ErrorOr<net::Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, net::FrameType::Response);
  EXPECT_EQ(F->Correlation, *Corr);
  ErrorOr<JobResult> Res = jobResultFromJsonText(F->Payload);
  ASSERT_TRUE(Res.hasValue()) << Res.message();
  EXPECT_EQ(Res->Status, JobStatus::Done) << Res->Reason;
  EXPECT_NE(Res->Backend, nameOf(Victim));
  EXPECT_FALSE(Res->Backend.empty());

  RouterStats S = R.stats();
  EXPECT_GE(S.Retries, 1);
  EXPECT_GE(S.BackendEvictions, 1);
  EXPECT_EQ(S.RejectsSent, 0);

  // ... and only one: nothing else arrives for this connection.
  ErrorOr<net::Frame> Extra = C.readFrame(400);
  EXPECT_FALSE(Extra.hasValue());
  EXPECT_NE(Extra.message().find("timed out"), std::string::npos)
      << Extra.message();
}

TEST(ClusterRouter, EvictsDeadBackendAndReinstatesOnAnsweredProbe) {
  net::Server Stable(backendOptions());
  startOrDie(Stable);
  net::Server Flaky(backendOptions());
  startOrDie(Flaky);
  uint16_t FlakyPort = Flaky.port();
  std::string FlakyName = nameOf(Flaky);

  Router R(routerOptions({nameOf(Stable), FlakyName}));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();
  ASSERT_TRUE(eventually(
      30.0, [&] { return R.stats().HealthyBackends == 2; }));

  Flaky.stop();
  ASSERT_TRUE(
      eventually(30.0, [&] { return !backendOnRing(R, FlakyName); }))
      << "dead backend never left the ring";
  EXPECT_GE(R.stats().BackendEvictions, 1);

  // While evicted, the survivor owns the whole key space.
  {
    net::Client C = connectOrDie(R);
    ErrorOr<JobResult> Res = C.call(gsmJob("during"), kFrameWaitMs);
    ASSERT_TRUE(Res.hasValue()) << Res.message();
    EXPECT_EQ(Res->Backend, nameOf(Stable));
  }

  // Same address comes back; an answered probe reinstates it.
  net::ServerOptions O = backendOptions();
  O.Port = FlakyPort;
  net::Server Reborn(O);
  startOrDie(Reborn);
  ASSERT_EQ(nameOf(Reborn), FlakyName);
  ASSERT_TRUE(
      eventually(30.0, [&] { return backendOnRing(R, FlakyName); }))
      << "restarted backend never rejoined the ring";
  EXPECT_GE(R.stats().BackendReinstatements, 1);

  // And it serves again: a key it owns routes to it.
  HashRing Local;
  Local.add(nameOf(Stable));
  Local.add(FlakyName);
  double T = tightnessOwnedBy(Local, FlakyName);
  net::Client C = connectOrDie(R);
  ErrorOr<JobResult> Res = C.call(gsmJob("after", T), kFrameWaitMs);
  ASSERT_TRUE(Res.hasValue()) << Res.message();
  EXPECT_EQ(Res->Status, JobStatus::Done) << Res->Reason;
  EXPECT_EQ(Res->Backend, FlakyName);
}

TEST(ClusterRouter, EmptyRingDrawsNoBackendsReject) {
  // Nothing listens on the victim port (bind-then-close reserves one).
  uint16_t Dead = 0;
  {
    net::Server Probe(backendOptions());
    startOrDie(Probe);
    Dead = Probe.port();
    Probe.stop();
  }
  Router R(routerOptions({"127.0.0.1:" + std::to_string(Dead)}));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();
  ASSERT_TRUE(eventually(
      30.0, [&] { return R.stats().HealthyBackends == 0; }))
      << "unreachable backend never evicted";

  net::Client C = connectOrDie(R);
  ErrorOr<JobResult> Res = C.call(gsmJob("nowhere"), kFrameWaitMs);
  ASSERT_FALSE(Res.hasValue());
  EXPECT_NE(Res.message().find("no_backends"), std::string::npos)
      << Res.message();
  EXPECT_GE(R.stats().RejectsSent, 1);
}

TEST(ClusterRouter, FlightRecorderCapturesTracedRequestAndStatsScrape) {
  net::Server B(backendOptions());
  startOrDie(B);
  RouterOptions O = routerOptions({nameOf(B)});
  O.FlightCapacity = 16;
  O.SlowLogMs = 1; // a cold MILP solve always clears 1ms
  O.SlowLogPath = ::testing::TempDir() + "cdvs-router-slow-" +
                  std::to_string(::getpid()) + ".jsonl";
  Router R(O);
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  net::Client C = connectOrDie(R);
  net::TraceContext T;
  T.TraceHi = 0x1234;
  T.TraceLo = 0x5678;
  T.ParentSpan = 7;
  T.Sampled = true;
  ErrorOr<uint64_t> Corr = C.sendRequest(gsmJob("flight"), 0, &T);
  ASSERT_TRUE(Corr.hasValue()) << Corr.message();
  for (;;) {
    ErrorOr<net::Frame> F = C.readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << F.message();
    if (F->Correlation != *Corr)
      continue;
    ASSERT_EQ(F->Type, net::FrameType::Response);
    break;
  }

  std::vector<FlightRecord> Recs = R.flightRecords();
  ASSERT_EQ(Recs.size(), 1u);
  const FlightRecord &Rec = Recs[0];
  EXPECT_EQ(Rec.Verdict, "response");
  EXPECT_EQ(Rec.Owner, nameOf(B));
  EXPECT_EQ(Rec.Retries, 0);
  EXPECT_EQ(Rec.TraceId, "00000000000012340000000000005678");
  EXPECT_EQ(Rec.Key.size(), 32u);
  ASSERT_EQ(Rec.Hops.size(), 1u);
  EXPECT_EQ(Rec.Hops[0].first, nameOf(B));
  EXPECT_GT(Rec.Hops[0].second, 0.0);
  EXPECT_GE(Rec.TotalSeconds, Rec.Hops[0].second);

  // The slow log got the same record as a JSON line (fsynced per line,
  // so it is readable while the router runs).
  {
    std::ifstream Slow(O.SlowLogPath);
    ASSERT_TRUE(Slow.good()) << "slow log was not created";
    std::string Line;
    ASSERT_TRUE(std::getline(Slow, Line));
    EXPECT_NE(Line.find("\"verdict\":\"response\""), std::string::npos)
        << Line;
    EXPECT_NE(Line.find(Rec.TraceId), std::string::npos) << Line;
  }

  // A StatsFetch over the same connection answers the live view:
  // role, metrics exposition, and the flight ring.
  ErrorOr<uint64_t> SCorr = C.sendStatsFetch();
  ASSERT_TRUE(SCorr.hasValue()) << SCorr.message();
  for (;;) {
    ErrorOr<net::Frame> F = C.readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << F.message();
    if (F->Correlation != *SCorr)
      continue;
    ASSERT_EQ(F->Type, net::FrameType::StatsData);
    ErrorOr<JsonValue> V = parseJson(F->Payload);
    ASSERT_TRUE(V.hasValue()) << V.message();
    EXPECT_EQ(V->find("role")->Str, "router");
    EXPECT_GT(V->find("pid")->Num, 0.0);
    EXPECT_GT(V->find("now_ns")->Num, 0.0);
    const JsonValue *Flight = V->find("flight");
    ASSERT_NE(Flight, nullptr);
    ASSERT_EQ(Flight->Arr.size(), 1u);
    EXPECT_EQ(Flight->Arr[0].find("trace_id")->Str, Rec.TraceId);
    const JsonValue *Metrics = V->find("metrics");
    ASSERT_NE(Metrics, nullptr);
    EXPECT_NE(Metrics->Str.find("cdvs_cluster_requests_total"),
              std::string::npos);
    EXPECT_NE(Metrics->Str.find("cdvs_cluster_slow_requests_total"),
              std::string::npos);
    break;
  }
  std::remove(O.SlowLogPath.c_str());
}

TEST(ClusterRouter, PeerFetchMissFallsBackToColdSolve) {
  // Fresh cluster, nothing cached anywhere: the owner's PeerFiller asks
  // its peer, records a miss, and solves cold — correctness never
  // depends on the peer having the key.
  net::Server Plain(backendOptions());
  startOrDie(Plain);

  net::ServerOptions FO = backendOptions();
  // Two-step start: the filler needs both final addresses, but Self's
  // port is only known after start() — so install the fill hook through
  // an indirection filled in afterwards.
  struct Holder {
    PeerFillFn F;
  };
  auto H = std::make_shared<Holder>();
  FO.Service.PeerFill = [H](const JobRequest &Req,
                            const std::string &Fp) {
    return H->F ? H->F(Req, Fp) : nullptr;
  };
  net::Server Owner(FO);
  startOrDie(Owner);

  PeerFillOptions PO;
  PO.Self = nameOf(Owner);
  PO.Peers = {nameOf(Owner), nameOf(Plain)};
  PeerFiller Filler(PO);
  H->F = Filler.asFn();

  Router R(routerOptions({nameOf(Owner), nameOf(Plain)}));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  HashRing Local;
  Local.add(nameOf(Owner));
  Local.add(nameOf(Plain));
  double T = tightnessOwnedBy(Local, nameOf(Owner));

  net::Client C = connectOrDie(R);
  ErrorOr<JobResult> Res = C.call(gsmJob("cold", T), kFrameWaitMs);
  ASSERT_TRUE(Res.hasValue()) << Res.message();
  EXPECT_EQ(Res->Status, JobStatus::Done) << Res->Reason;
  EXPECT_EQ(Res->Backend, nameOf(Owner));
  EXPECT_FALSE(Res->CacheHit);

  PeerFillStats FS = Filler.stats();
  EXPECT_GE(FS.Fetches, 1);
  EXPECT_GE(FS.Misses, 1);
  EXPECT_EQ(FS.Fills, 0);
  EXPECT_EQ(Owner.service().stats().PeerFills, 0);
  EXPECT_GE(Plain.stats().PeerFetches, 1);
  EXPECT_EQ(Plain.stats().PeerFetchHits, 0);
}

TEST(ClusterRouter, RestartedOwnerFillsItsCacheFromThePreviousOwner) {
  // The full migration story: the owner dies, a survivor solves (and
  // caches) its keys, the owner returns cold and pulls the schedule
  // over PeerFetch instead of re-solving — byte-identical.
  net::Server B2(backendOptions()), B3(backendOptions());
  startOrDie(B2);
  startOrDie(B3);
  net::Server First(backendOptions());
  startOrDie(First);
  uint16_t OwnerPort = First.port();
  std::string OwnerName = nameOf(First);
  std::vector<std::string> Names = {OwnerName, nameOf(B2), nameOf(B3)};

  Router R(routerOptions(Names));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  HashRing Local;
  for (const std::string &N : Names)
    Local.add(N);
  double T = tightnessOwnedBy(Local, OwnerName);

  // Kill the owner before it ever sees the key.
  First.stop();
  ASSERT_TRUE(
      eventually(30.0, [&] { return !backendOnRing(R, OwnerName); }));

  // A survivor solves and caches the key while the owner is out; the
  // interim ring is exactly Names minus the owner.
  HashRing Interim;
  for (const std::string &N : Names)
    if (N != OwnerName)
      Interim.add(N);
  const std::string Previous =
      *Interim.ownerOf(requestKey(gsmJob("x", T)));

  net::Client C = connectOrDie(R);
  ErrorOr<JobResult> Warm = C.call(gsmJob("warm", T), kFrameWaitMs);
  ASSERT_TRUE(Warm.hasValue()) << Warm.message();
  ASSERT_EQ(Warm->Status, JobStatus::Done) << Warm->Reason;
  EXPECT_EQ(Warm->Backend, Previous);

  // The owner returns on its old address, peer-fill wired up.
  net::ServerOptions RO = backendOptions();
  RO.Port = OwnerPort;
  PeerFillOptions PO;
  PO.Self = OwnerName;
  PO.Peers = Names;
  PeerFiller Filler(PO);
  RO.Service.PeerFill = Filler.asFn();
  net::Server Reborn(RO);
  startOrDie(Reborn);
  ASSERT_EQ(nameOf(Reborn), OwnerName);
  ASSERT_TRUE(
      eventually(30.0, [&] { return backendOnRing(R, OwnerName); }))
      << "owner never reinstated";

  // The key routes home; the cold cache fills from the previous owner.
  ErrorOr<JobResult> Back = C.call(gsmJob("back", T), kFrameWaitMs);
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Back->Status, JobStatus::Done) << Back->Reason;
  EXPECT_EQ(Back->Backend, OwnerName);
  EXPECT_EQ(Back->Fingerprint, Warm->Fingerprint);
  EXPECT_EQ(Back->ScheduleText, Warm->ScheduleText)
      << "peer-filled schedule must be byte-identical to the origin's";

  PeerFillStats FS = Filler.stats();
  EXPECT_GE(FS.Fills, 1);
  EXPECT_EQ(FS.Errors, 0);
  EXPECT_GE(Reborn.service().stats().PeerFills, 1);
}

TEST(ClusterRouter, DrainAnswersInFlightThenCloses) {
  net::Server B(backendOptions());
  startOrDie(B);
  Router R(routerOptions({nameOf(B)}));
  ErrorOr<bool> Started = R.start();
  ASSERT_TRUE(Started.hasValue()) << Started.message();

  net::Client C = connectOrDie(R);
  ErrorOr<uint64_t> Corr = C.sendRequest(gsmJob("draining"));
  ASSERT_TRUE(Corr.hasValue());
  ASSERT_TRUE(eventually(
      120.0, [&] { return R.stats().RequestsRouted >= 1; }));

  R.beginDrain();
  ErrorOr<net::Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, net::FrameType::Response);
  EXPECT_EQ(F->Correlation, *Corr);
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue()) << "expected EOF";
  EXPECT_TRUE(R.waitDrained(120.0));
  // The listener is gone.
  EXPECT_FALSE(net::Client::connect("127.0.0.1", R.port()).hasValue());
}

} // namespace
