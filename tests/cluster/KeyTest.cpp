//===- tests/cluster/KeyTest.cpp - Request routing-key normalization ------===//
//
// requestKey() decides which shard a request lands on, so its contract
// is the cluster's cache-locality contract: equal optimization problems
// must key equal (category order, weight scaling, caller-chosen ids are
// presentation), and anything that changes the MILP instance must move
// the key.
//
//===----------------------------------------------------------------------===//

#include "cluster/Key.h"

#include "taskgraph/TaskGraph.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace cdvs;
using namespace cdvs::cluster;

namespace {

JobRequest baseRequest() {
  JobRequest R;
  R.Id = "req-1";
  R.Workload = "gsm";
  R.Categories = {{"short", 1.0}, {"long", 3.0}};
  R.DeadlineTightness = 0.5;
  return R;
}

TEST(RequestKey, DeterministicAndIdInsensitive) {
  JobRequest A = baseRequest();
  JobRequest B = baseRequest();
  EXPECT_EQ(requestKey(A), requestKey(A));
  B.Id = "totally-different-id";
  EXPECT_EQ(requestKey(A), requestKey(B))
      << "the caller-chosen id must not shard-split identical problems";
}

TEST(RequestKey, CategoryOrderDoesNotMatter) {
  JobRequest A = baseRequest();
  JobRequest B = baseRequest();
  B.Categories = {{"long", 3.0}, {"short", 1.0}};
  EXPECT_EQ(requestKey(A), requestKey(B));
}

TEST(RequestKey, WeightsAreNormalizedToProbabilities) {
  // {1,3} and {2,6} describe the same mix; the key hashes the
  // normalized probabilities, not the raw weights.
  JobRequest A = baseRequest();
  JobRequest B = baseRequest();
  B.Categories = {{"short", 2.0}, {"long", 6.0}};
  EXPECT_EQ(requestKey(A), requestKey(B));
  JobRequest C = baseRequest();
  C.Categories = {{"short", 3.0}, {"long", 1.0}};
  EXPECT_NE(requestKey(A), requestKey(C));
}

TEST(RequestKey, SensitiveToProblemContent) {
  JobRequest Base = baseRequest();
  Fingerprint128 K = requestKey(Base);

  JobRequest W = baseRequest();
  W.Workload = "mpeg";
  EXPECT_NE(K, requestKey(W));

  JobRequest T = baseRequest();
  T.DeadlineTightness = 0.7;
  EXPECT_NE(K, requestKey(T));

  JobRequest F = baseRequest();
  F.FilterThreshold = 0.05;
  EXPECT_NE(K, requestKey(F));

  JobRequest M = baseRequest();
  M.InitialMode = 2;
  EXPECT_NE(K, requestKey(M));

  JobRequest L = baseRequest();
  L.NumLevels = 4;
  EXPECT_NE(K, requestKey(L));

  JobRequest Cap = baseRequest();
  Cap.CapacitanceF = 20e-6;
  EXPECT_NE(K, requestKey(Cap));

  JobRequest Cat = baseRequest();
  Cat.Categories = {{"short", 1.0}};
  EXPECT_NE(K, requestKey(Cat));
}

TEST(RequestKey, AbsoluteDeadlineWinsOverTightness) {
  // When DeadlineSeconds is set it defines the instance; tightness is
  // then dead weight and must not affect the key.
  JobRequest A = baseRequest();
  A.DeadlineSeconds = 0.015;
  A.DeadlineTightness = 0.3;
  JobRequest B = baseRequest();
  B.DeadlineSeconds = 0.015;
  B.DeadlineTightness = 0.9;
  EXPECT_EQ(requestKey(A), requestKey(B));

  JobRequest C = baseRequest();
  C.DeadlineSeconds = 0.016;
  C.DeadlineTightness = 0.3;
  EXPECT_NE(requestKey(A), requestKey(C));

  // And an absolute deadline is a different instance than any
  // tightness-derived one.
  EXPECT_NE(requestKey(A), requestKey(baseRequest()));
}

JobRequest graphRequest() {
  taskgraph::TaskGraph G;
  G.Name = "pair";
  G.Nodes = {{"a", "gsm", "", 1.0}, {"b", "adpcm", "", 0.5}};
  G.Edges = {{0, 1}};
  G.DeadlineTightness = 0.5;
  JobRequest R;
  R.Id = "graph-req";
  R.Graph = std::make_shared<const taskgraph::TaskGraph>(std::move(G));
  return R;
}

TEST(RequestKey, JobKindsNeverCollide) {
  // The kind discriminator leads the hash, so a task-graph job and a
  // single-program job can never land on the same key — not even a
  // degenerate single-node graph over the same workload as a plain
  // request with identical knobs.
  EXPECT_NE(requestKey(graphRequest()), requestKey(baseRequest()));

  JobRequest Single = baseRequest();
  taskgraph::TaskGraph G;
  G.Name = Single.Workload;
  G.Nodes = {{"only", Single.Workload, "", 1.0}};
  G.DeadlineTightness = Single.DeadlineTightness;
  JobRequest AsGraph;
  AsGraph.Id = Single.Id;
  AsGraph.DeadlineTightness = Single.DeadlineTightness;
  AsGraph.Graph = std::make_shared<const taskgraph::TaskGraph>(std::move(G));
  EXPECT_NE(requestKey(AsGraph), requestKey(Single));
}

TEST(RequestKey, GraphKeysAreContentAddressedAndIdInsensitive) {
  JobRequest A = graphRequest();
  JobRequest B = graphRequest();
  EXPECT_EQ(requestKey(A), requestKey(B));
  B.Id = "some-other-id";
  EXPECT_EQ(requestKey(A), requestKey(B));

  // Anything that changes the planning instance moves the key: graph
  // content, the mode-table knobs, and the replan discipline.
  JobRequest C = graphRequest();
  auto G = std::make_shared<taskgraph::TaskGraph>(*C.Graph);
  G->Nodes[1].ActualFactor = 0.75;
  C.Graph = G;
  EXPECT_NE(requestKey(A), requestKey(C));

  JobRequest D = graphRequest();
  D.NumLevels = 5;
  EXPECT_NE(requestKey(A), requestKey(D));

  JobRequest E = graphRequest();
  E.GraphReplan = false;
  EXPECT_NE(requestKey(A), requestKey(E));

  // Single-program-only knobs are dead weight on a graph job and must
  // not shard-split it.
  JobRequest F = graphRequest();
  F.Workload = "ignored";
  F.Categories = {{"x", 1.0}};
  EXPECT_EQ(requestKey(A), requestKey(F));
}

TEST(RequestKey, EmptyCategoriesHaveACanonicalForm) {
  // A request with no categories means "the workload's default single
  // category"; it must key stably rather than crash or collide with a
  // named one.
  JobRequest A = baseRequest();
  A.Categories.clear();
  JobRequest B = baseRequest();
  B.Categories.clear();
  EXPECT_EQ(requestKey(A), requestKey(B));
  EXPECT_NE(requestKey(A), requestKey(baseRequest()));
}

} // namespace
