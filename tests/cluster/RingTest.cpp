//===- tests/cluster/RingTest.cpp - Consistent-hash ring properties -------===//
//
// The ring carries the cluster's central promise: membership changes
// move only the departed member's share of the key space. These tests
// pin determinism (router and backends build their rings
// independently), spread (virtual nodes keep shares near 1/N), and the
// (N-1)/N stability bound under removal — every key whose owner changes
// must have been owned by the removed member.
//
//===----------------------------------------------------------------------===//

#include "cluster/Ring.h"

#include "support/Hash.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace cdvs;
using namespace cdvs::cluster;

namespace {

Fingerprint128 keyOf(int I) {
  HashBuilder H;
  H.add(std::string("ring-test-key"));
  H.add(static_cast<uint64_t>(I));
  Fingerprint128 K;
  H.digestRaw(K.Hi, K.Lo);
  return K;
}

const std::vector<std::string> kMembers = {
    "10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"};

HashRing makeRing(const std::vector<std::string> &Members) {
  HashRing R;
  for (const std::string &M : Members)
    EXPECT_TRUE(R.add(M));
  return R;
}

TEST(Ring, MembershipBasics) {
  HashRing R;
  EXPECT_TRUE(R.empty());
  EXPECT_EQ(R.ownerOf(keyOf(0)), nullptr);
  EXPECT_TRUE(R.add("a:1"));
  EXPECT_FALSE(R.add("a:1")) << "duplicate add must be refused";
  EXPECT_TRUE(R.contains("a:1"));
  EXPECT_EQ(R.size(), 1u);
  EXPECT_FALSE(R.remove("b:2"));
  EXPECT_TRUE(R.remove("a:1"));
  EXPECT_TRUE(R.empty());
}

TEST(Ring, SingleMemberOwnsEverything) {
  HashRing R;
  R.add("only:1");
  for (int I = 0; I < 100; ++I) {
    const std::string *O = R.ownerOf(keyOf(I));
    ASSERT_NE(O, nullptr);
    EXPECT_EQ(*O, "only:1");
  }
}

TEST(Ring, IndependentBuildsAgree) {
  // The router and every backend's PeerFiller build their rings from
  // the membership list alone; insertion order must not matter.
  HashRing A = makeRing(kMembers);
  HashRing B = makeRing(
      {kMembers[2], kMembers[0], kMembers[1]});
  for (int I = 0; I < 500; ++I) {
    const std::string *OA = A.ownerOf(keyOf(I));
    const std::string *OB = B.ownerOf(keyOf(I));
    ASSERT_NE(OA, nullptr);
    ASSERT_NE(OB, nullptr);
    EXPECT_EQ(*OA, *OB);
  }
}

TEST(Ring, VirtualNodesSpreadLoad) {
  HashRing R = makeRing(kMembers);
  std::map<std::string, int> Share;
  const int N = 3000;
  for (int I = 0; I < N; ++I)
    ++Share[*R.ownerOf(keyOf(I))];
  ASSERT_EQ(Share.size(), kMembers.size());
  for (const auto &[Member, Count] : Share) {
    // Fair share is 1/3; 64 virtual nodes keep every member within a
    // loose band of it (exact split varies with the hash).
    EXPECT_GT(Count, N / 10) << Member << " is starved";
    EXPECT_LT(Count, (N * 2) / 3) << Member << " is overloaded";
  }
}

TEST(Ring, RemovalMovesOnlyTheDepartedShare) {
  HashRing R = makeRing(kMembers);
  const int N = 2000;
  std::vector<std::string> Before;
  Before.reserve(N);
  for (int I = 0; I < N; ++I)
    Before.push_back(*R.ownerOf(keyOf(I)));

  const std::string &Gone = kMembers[1];
  ASSERT_TRUE(R.remove(Gone));

  int Moved = 0;
  for (int I = 0; I < N; ++I) {
    const std::string &Now = *R.ownerOf(keyOf(I));
    if (Now != Before[I]) {
      ++Moved;
      // The (N-1)/N guarantee: a key may change owner only because its
      // old owner left.
      EXPECT_EQ(Before[I], Gone)
          << "key " << I << " moved from a surviving member";
    } else {
      EXPECT_NE(Before[I], Gone);
    }
  }
  // Everything the departed member owned moved, nothing else did.
  int GoneShare = 0;
  for (const std::string &O : Before)
    if (O == Gone)
      ++GoneShare;
  EXPECT_EQ(Moved, GoneShare);

  // Re-adding restores the original assignment exactly (the point
  // positions are content-derived, not history-derived).
  ASSERT_TRUE(R.add(Gone));
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(*R.ownerOf(keyOf(I)), Before[I]);
}

TEST(Ring, OwnersOfGivesDistinctFailoverOrder) {
  HashRing R = makeRing(kMembers);
  for (int I = 0; I < 50; ++I) {
    std::vector<std::string> Owners =
        R.ownersOf(keyOf(I), kMembers.size());
    ASSERT_EQ(Owners.size(), kMembers.size());
    EXPECT_EQ(Owners[0], *R.ownerOf(keyOf(I)));
    for (size_t A = 0; A < Owners.size(); ++A)
      for (size_t B = A + 1; B < Owners.size(); ++B)
        EXPECT_NE(Owners[A], Owners[B]);
  }
}

TEST(Ring, FailoverOwnerIsNextRingOwner) {
  // The router's retry target (ownersOf[1]) must be exactly who the
  // rebuilt ring would route to — that is what makes the backend's
  // peers-minus-self ring find the data after a failover.
  HashRing Full = makeRing(kMembers);
  for (int I = 0; I < 200; ++I) {
    std::vector<std::string> Owners =
        Full.ownersOf(keyOf(I), kMembers.size());
    HashRing Without = makeRing(kMembers);
    ASSERT_TRUE(Without.remove(Owners[0]));
    EXPECT_EQ(*Without.ownerOf(keyOf(I)), Owners[1]);
  }
}

} // namespace
