//===- tests/milp/MilpParallelTest.cpp - thread/warm-start invariance -----===//
//
// The branch-and-bound explores nodes in a different order for every
// thread count and solves node LPs warm or cold, but all of those are
// pure search-strategy choices: the returned status must be identical
// and the objective must agree within AbsGap on every instance. These
// tests sweep randomized mode-assignment MILPs (the paper's DVS shape)
// across deadline tightnesses that range from trivial (root-only) to
// branching-heavy.
//
//===----------------------------------------------------------------------===//

#include "../common/RandomMilp.h"
#include "milp/MilpSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;
using testutil::makeModeAssignment;
using testutil::ModeAssignmentCase;

namespace {

MilpSolution solveCase(const ModeAssignmentCase &C, const MilpOptions &O) {
  MilpSolver S(C.P, C.Integers, O);
  for (const auto &G : C.Groups)
    S.addSos1Group(G);
  return S.solve();
}

void expectAgree(const MilpSolution &A, const MilpSolution &B,
                 const char *What) {
  ASSERT_EQ(A.Status, B.Status)
      << What << ": " << milpStatusName(A.Status) << " vs "
      << milpStatusName(B.Status);
  if (A.Status == MilpStatus::Optimal)
    EXPECT_NEAR(A.Objective, B.Objective,
                1e-7 * (1.0 + std::fabs(A.Objective)))
        << What;
}

class MilpThreadInvariance : public ::testing::TestWithParam<int> {};

TEST_P(MilpThreadInvariance, MatchesSingleThreadedSolve) {
  int Tightness = GetParam(); // percent
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    ModeAssignmentCase C =
        makeModeAssignment(10, Tightness / 100.0, 42 + Seed);
    MilpOptions Serial;
    Serial.NumThreads = 1;
    MilpSolution Ref = solveCase(C, Serial);

    for (int Threads : {2, 4}) {
      MilpOptions O;
      O.NumThreads = Threads;
      MilpSolution Par = solveCase(C, O);
      expectAgree(Ref, Par, "threaded vs serial");
      if (Par.Status == MilpStatus::Optimal) {
        EXPECT_TRUE(C.P.isFeasible(Par.X, 1e-5));
        for (int V : C.Integers)
          EXPECT_NEAR(Par.X[V], std::round(Par.X[V]), 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tightness, MilpThreadInvariance,
                         ::testing::Values(50, 20, 8));

TEST(MilpWarmStartInvariance, WarmMatchesColdNodeSolves) {
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    ModeAssignmentCase C = makeModeAssignment(10, 0.10, 900 + Seed);
    MilpOptions Warm;
    Warm.NumThreads = 1;
    MilpOptions Cold = Warm;
    Cold.WarmStart = false;
    MilpSolution A = solveCase(C, Warm);
    MilpSolution B = solveCase(C, Cold);
    expectAgree(A, B, "warm vs cold");
    // On branching-heavy instances the warm path must actually engage.
    if (A.Nodes > 4)
      EXPECT_GT(A.WarmLps, 0);
    EXPECT_EQ(B.WarmLps, 0);
  }
}

TEST(MilpWarmStartInvariance, RoundingDisabledStillAgrees) {
  // Without the rounding heuristic the incumbent arrives late and the
  // tree is larger — more warm re-solves, same answer.
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    ModeAssignmentCase C = makeModeAssignment(9, 0.12, 1300 + Seed);
    MilpOptions Plain;
    Plain.NumThreads = 1;
    MilpOptions NoRound = Plain;
    NoRound.UseRounding = false;
    expectAgree(solveCase(C, Plain), solveCase(C, NoRound),
                "rounding vs none");
  }
}

TEST(MilpSolutionStats, IntrospectionFieldsArePopulated) {
  // The solver's Stats surface: nodes, prunes, pivots, incumbent
  // updates, and wall time must come back self-consistent.
  ModeAssignmentCase C = makeModeAssignment(10, 0.10, 77);
  MilpOptions O;
  O.NumThreads = 1;
  MilpSolution S = solveCase(C, O);
  ASSERT_EQ(S.Status, MilpStatus::Optimal);
  EXPECT_GE(S.Nodes, 1L);
  EXPECT_GE(S.Pruned, 0L);
  EXPECT_LE(S.Pruned, S.Nodes);
  EXPECT_GT(S.LpPivots, 0L);
  EXPECT_GE(S.IncumbentUpdates, 1L); // an optimum implies an incumbent
  EXPECT_GT(S.SolveSeconds, 0.0);
  // One thread, one deque: nothing to steal from.
  EXPECT_EQ(S.Steals, 0L);
}

TEST(MilpSolutionStats, ParallelSolvesReportStealsConsistently) {
  // Steals are a property of the run, not the answer: whatever count
  // comes back must be bounded by the explored nodes, and the answer
  // must match the serial one (covered above, re-checked here).
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    ModeAssignmentCase C = makeModeAssignment(10, 0.08, 500 + Seed);
    MilpOptions Serial;
    Serial.NumThreads = 1;
    MilpOptions Par;
    Par.NumThreads = 4;
    MilpSolution A = solveCase(C, Serial);
    MilpSolution B = solveCase(C, Par);
    expectAgree(A, B, "stats run");
    EXPECT_GE(B.Steals, 0L);
    EXPECT_LE(B.Steals, B.Nodes);
    EXPECT_GT(B.SolveSeconds, 0.0);
  }
}

TEST(MilpParallel, ThreadCapRespectsTinyTrees) {
  // A 1-integer problem cannot feed many workers; asking for 8 threads
  // must still work (the solver caps internally) and stay exact.
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, -1.0);
  int Y = P.addVariable(0.0, 5.0, -0.1);
  P.addRow(RowSense::LE, 5.2, {{X, 3.0}, {Y, 1.0}});
  MilpOptions O;
  O.NumThreads = 8;
  MilpSolution S = MilpSolver(P, {X}, O).solve();
  ASSERT_EQ(S.Status, MilpStatus::Optimal);
  EXPECT_NEAR(S.Objective, -1.0 - 0.1 * 2.2, 1e-6);
}

} // namespace
