//===- tests/milp/MilpTest.cpp - known-answer MILP tests ------------------===//

#include "milp/MilpSolver.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(Milp, PureLpPassThrough) {
  // With no integer variables the MILP solver is just the LP.
  LpProblem P;
  int X = P.addVariable(0.0, 4.0, -1.0);
  P.addRow(RowSense::LE, 3.0, {{X, 1.0}});
  MilpSolver S(P, {});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -3.0, 1e-7);
}

TEST(Milp, SimpleBinaryKnapsack) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 4 (binaries).
  // Optimal: a=1, c=1 -> value 8 (b would need 3 more capacity).
  LpProblem P;
  int A = P.addVariable(0.0, 1.0, -5.0);
  int B = P.addVariable(0.0, 1.0, -4.0);
  int C = P.addVariable(0.0, 1.0, -3.0);
  P.addRow(RowSense::LE, 4.0, {{A, 2.0}, {B, 3.0}, {C, 1.0}});
  MilpSolver S(P, {A, B, C});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -8.0, 1e-6);
  EXPECT_NEAR(R.X[A], 1.0, 1e-6);
  EXPECT_NEAR(R.X[B], 0.0, 1e-6);
  EXPECT_NEAR(R.X[C], 1.0, 1e-6);
}

TEST(Milp, IntegerRoundingMatters) {
  // max x + y s.t. 2x + 2y <= 5, integers -> LP gives 2.5, MILP 2.
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, -1.0);
  int Y = P.addVariable(0.0, 10.0, -1.0);
  P.addRow(RowSense::LE, 5.0, {{X, 2.0}, {Y, 2.0}});
  MilpSolver S(P, {X, Y});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -2.0, 1e-6);
  EXPECT_LE(R.RootBound, -2.5 + 1e-6); // relaxation was stronger
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x integer: no integer point.
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 1.0);
  P.addRow(RowSense::GE, 0.4, {{X, 1.0}});
  P.addRow(RowSense::LE, 0.6, {{X, 1.0}});
  MilpSolver S(P, {X});
  MilpSolution R = S.solve();
  EXPECT_EQ(R.Status, MilpStatus::Infeasible);
}

TEST(Milp, Sos1GroupPicksCheapest) {
  // Mode-selection structure: sum k == 1, minimize cost.
  LpProblem P;
  int K0 = P.addVariable(0.0, 1.0, 9.0);
  int K1 = P.addVariable(0.0, 1.0, 4.0);
  int K2 = P.addVariable(0.0, 1.0, 6.0);
  P.addRow(RowSense::EQ, 1.0, {{K0, 1.0}, {K1, 1.0}, {K2, 1.0}});
  MilpSolver S(P, {K0, K1, K2});
  S.addSos1Group({K0, K1, K2});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 4.0, 1e-6);
  EXPECT_NEAR(R.X[K1], 1.0, 1e-6);
}

TEST(Milp, TwoGroupsWithCouplingConstraint) {
  // Two "edges" each pick a mode; a shared budget couples them:
  // time(mode) = {1, 3}; total time <= 4 forbids both picking mode 1
  // (3+3=6) -- minimize energy {5, 1}: best is one fast, one slow.
  LpProblem P;
  int A0 = P.addVariable(0.0, 1.0, 5.0);
  int A1 = P.addVariable(0.0, 1.0, 1.0);
  int B0 = P.addVariable(0.0, 1.0, 5.0);
  int B1 = P.addVariable(0.0, 1.0, 1.0);
  P.addRow(RowSense::EQ, 1.0, {{A0, 1.0}, {A1, 1.0}});
  P.addRow(RowSense::EQ, 1.0, {{B0, 1.0}, {B1, 1.0}});
  P.addRow(RowSense::LE, 4.0,
           {{A0, 1.0}, {A1, 3.0}, {B0, 1.0}, {B1, 3.0}});
  MilpSolver S(P, {A0, A1, B0, B1});
  S.addSos1Group({A0, A1});
  S.addSos1Group({B0, B1});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 6.0, 1e-6); // 5 + 1
}

TEST(Milp, GeneralIntegerVariable) {
  // min -x s.t. 3x <= 10, x integer in [0, 10] -> x = 3.
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, -1.0);
  P.addRow(RowSense::LE, 10.0, {{X, 3.0}});
  MilpSolver S(P, {X});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.X[X], 3.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // min 10b + y  s.t. y >= 3 - 5b, y >= 0, b binary.
  // b=0 -> y=3 obj 3; b=1 -> y=0 obj 10. Optimal 3.
  LpProblem P;
  int B = P.addVariable(0.0, 1.0, 10.0);
  int Y = P.addVariable(0.0, lpInf(), 1.0);
  P.addRow(RowSense::GE, 3.0, {{Y, 1.0}, {B, 5.0}});
  MilpSolver S(P, {B});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 3.0, 1e-6);
  EXPECT_NEAR(R.X[B], 0.0, 1e-6);
}

TEST(Milp, NodeLimitReturnsFeasibleOrLimit) {
  LpProblem P;
  std::vector<int> Ints;
  // A 12-binary knapsack; a node limit of 1 truncates the search.
  std::vector<LpTerm> Cap;
  for (int I = 0; I < 12; ++I) {
    int V = P.addVariable(0.0, 1.0, -(1.0 + (I % 5)));
    Ints.push_back(V);
    Cap.push_back({V, 1.0 + (I % 3)});
  }
  P.addRow(RowSense::LE, 7.0, Cap);
  MilpOptions O;
  O.MaxNodes = 1;
  O.UseRounding = true;
  MilpSolver S(P, Ints, O);
  MilpSolution R = S.solve();
  // The search is truncated after one node; the only legal outcomes are a
  // truncated status, or Optimal when the root relaxation was integral.
  EXPECT_TRUE(R.Status == MilpStatus::Feasible ||
              R.Status == MilpStatus::Limit ||
              R.Status == MilpStatus::Optimal);
  if (R.Status != MilpStatus::Limit) {
    EXPECT_TRUE(P.isFeasible(R.X, 1e-6));
  }
}

TEST(Milp, AbsoluteValueLinearization) {
  // The DVS transition-cost pattern: minimize |x - y| via e with
  // -e <= x - y <= e. x fixed 3, y binary*5 -> y=1 gives |3-5|=2,
  // y=0 gives 3. Plus cost on y steers choice.
  LpProblem P;
  int Y = P.addVariable(0.0, 1.0, 0.0);
  int E = P.addVariable(0.0, lpInf(), 1.0);
  // x = 3 constant; 3 - 5y <= e  ->  -5y - e <= -3, and
  // 3 - 5y >= -e  ->  -5y + e >= -3.
  P.addRow(RowSense::LE, -3.0, {{Y, -5.0}, {E, -1.0}});
  P.addRow(RowSense::GE, -3.0, {{Y, -5.0}, {E, 1.0}});
  MilpSolver S(P, {Y});
  MilpSolution R = S.solve();
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 2.0, 1e-6);
  EXPECT_NEAR(R.X[Y], 1.0, 1e-6);
}

} // namespace
