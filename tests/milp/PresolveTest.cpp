//===- tests/milp/PresolveTest.cpp - certified presolve mechanics ---------===//

#include "milp/Presolve.h"

#include "lp/LpProblem.h"
#include "milp/MilpSolver.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(Presolve, NoFixingsIsIdentity) {
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 1.0, "x");
  int Y = P.addVariable(0.0, 10.0, 2.0, "y");
  P.addRow(RowSense::GE, 3.0, {{X, 1.0}, {Y, 1.0}});
  PresolveResult R = presolve(P, {X}, {}, {});
  ASSERT_FALSE(R.Infeasible) << R.InfeasibleReason;
  EXPECT_EQ(R.Reduced.numVariables(), 2);
  EXPECT_EQ(R.Reduced.numRows(), 1);
  EXPECT_EQ(R.Cert.varsFixed(), 0);
  EXPECT_EQ(R.Cert.rowsDropped(), 0);
  EXPECT_EQ(R.Cert.ObjectiveOffset, 0.0);
  EXPECT_EQ(R.IntegerVars, (std::vector<int>{0}));
  // Kept columns are byte-equal to the originals.
  EXPECT_EQ(R.Reduced.cost(0), 1.0);
  EXPECT_EQ(R.Reduced.upperBound(1), 10.0);
  EXPECT_EQ(R.Reduced.name(0), "x");
}

TEST(Presolve, CallerFixingFoldsIntoRhsAndObjective) {
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 5.0, "x");
  int Y = P.addVariable(0.0, 10.0, 2.0, "y");
  P.addRow(RowSense::LE, 8.0, {{X, 3.0}, {Y, 1.0}});
  PresolveResult R = presolve(P, {X}, {X}, {1.0});
  ASSERT_FALSE(R.Infeasible);
  EXPECT_EQ(R.Reduced.numVariables(), 1);
  EXPECT_EQ(R.Cert.varsFixed(), 1);
  EXPECT_EQ(R.Cert.VarMap[X], -1);
  EXPECT_EQ(R.Cert.FixedValue[X], 1.0);
  EXPECT_EQ(R.Cert.VarMap[Y], 0);
  // 3*1 folded out of the row: y <= 5.
  ASSERT_EQ(R.Reduced.numRows(), 1);
  EXPECT_EQ(R.Reduced.rhs(0), 5.0);
  ASSERT_EQ(R.Reduced.rowTerms(0).size(), 1u);
  EXPECT_EQ(R.Reduced.rowTerms(0)[0].Var, 0);
  // The fixed variable's cost moves into the offset.
  EXPECT_EQ(R.Cert.ObjectiveOffset, 5.0);
  EXPECT_TRUE(R.IntegerVars.empty()); // the only integer var was fixed
}

TEST(Presolve, CoincidingBoundsAreFixedAutomatically) {
  LpProblem P;
  int X = P.addVariable(2.0, 2.0, 1.0, "pinned");
  int Y = P.addVariable(0.0, 4.0, 0.0, "free");
  P.addRow(RowSense::EQ, 6.0, {{X, 1.0}, {Y, 2.0}});
  PresolveResult R = presolve(P, {}, {}, {});
  ASSERT_FALSE(R.Infeasible);
  EXPECT_EQ(R.Cert.FixedValue[X], 2.0);
  // With PropagateEqualities the EQ row then pins y = 2 too, and the
  // fully-fixed row is dropped after a satisfaction check.
  EXPECT_EQ(R.Cert.varsFixed(), 2);
  EXPECT_EQ(R.Cert.FixedValue[Y], 2.0);
  EXPECT_EQ(R.Reduced.numVariables(), 0);
  EXPECT_EQ(R.Reduced.numRows(), 0);
  EXPECT_EQ(R.Cert.rowsDropped(), 1);
}

TEST(Presolve, EqualityPropagationCanBeDisabled) {
  LpProblem P;
  int X = P.addVariable(2.0, 2.0, 1.0, "pinned");
  int Y = P.addVariable(0.0, 4.0, 0.0, "free");
  P.addRow(RowSense::EQ, 6.0, {{X, 1.0}, {Y, 2.0}});
  PresolveOptions O;
  O.PropagateEqualities = false;
  PresolveResult R = presolve(P, {}, {}, {}, O);
  ASSERT_FALSE(R.Infeasible);
  EXPECT_EQ(R.Cert.varsFixed(), 1);
  EXPECT_EQ(R.Reduced.numVariables(), 1);
  // The row survives with the fixed term folded: 2y = 4.
  ASSERT_EQ(R.Reduced.numRows(), 1);
  EXPECT_EQ(R.Reduced.rhs(0), 4.0);
}

TEST(Presolve, ViolatedFixedRowReportsInfeasible) {
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 0.0, "x");
  P.addRow(RowSense::EQ, 5.0, {{X, 1.0}}); // x = 5 contradicts x <= 1
  PresolveResult R = presolve(P, {}, {X}, {1.0});
  EXPECT_TRUE(R.Infeasible);
  EXPECT_FALSE(R.InfeasibleReason.empty());
}

TEST(Presolve, FixingOutsideBoundsReportsInfeasible) {
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 0.0, "x");
  P.addRow(RowSense::LE, 9.0, {{X, 1.0}});
  PresolveResult R = presolve(P, {}, {X}, {3.0});
  EXPECT_TRUE(R.Infeasible);
}

TEST(Presolve, ExpandSolutionReconstructsOriginalSpace) {
  LpProblem P;
  int A = P.addVariable(0.0, 1.0, 1.0, "a");
  int B = P.addVariable(0.0, 9.0, 1.0, "b");
  int C = P.addVariable(0.0, 1.0, 1.0, "c");
  P.addRow(RowSense::LE, 7.0, {{A, 1.0}, {B, 1.0}, {C, 1.0}});
  PresolveResult R = presolve(P, {}, {A, C}, {1.0, 0.0});
  ASSERT_FALSE(R.Infeasible);
  ASSERT_EQ(R.Reduced.numVariables(), 1);
  std::vector<double> Full = R.Cert.expandSolution({4.5});
  ASSERT_EQ(Full.size(), 3u);
  EXPECT_EQ(Full[static_cast<size_t>(A)], 1.0);
  EXPECT_EQ(Full[static_cast<size_t>(B)], 4.5);
  EXPECT_EQ(Full[static_cast<size_t>(C)], 0.0);
  // Objective bridge: original == reduced + offset.
  EXPECT_DOUBLE_EQ(P.objectiveAt(Full), 4.5 + R.Cert.ObjectiveOffset);
}

TEST(Presolve, DuplicateTermsOnOneVariableAreSummed) {
  LpProblem P;
  int X = P.addVariable(0.0, 4.0, 0.0, "x");
  int Y = P.addVariable(0.0, 4.0, 0.0, "y");
  // x appears twice: effective coefficient 3.
  P.addRow(RowSense::EQ, 10.0, {{X, 1.0}, {X, 2.0}, {Y, 1.0}});
  PresolveResult R = presolve(P, {}, {X}, {2.0});
  ASSERT_FALSE(R.Infeasible);
  // Propagation pins y = 10 - 3*2 = 4 (still within bounds).
  EXPECT_EQ(R.Cert.varsFixed(), 2);
  EXPECT_EQ(R.Cert.FixedValue[Y], 4.0);
}

TEST(Presolve, ReducedMilpSolvesToSameOptimum) {
  // min x + 2y + 7z  s.t.  x + y + z >= 4, z pinned to 1 by bounds (the
  // DVS entry-group pattern), x binary.
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 1.0, "x");
  int Y = P.addVariable(0.0, 10.0, 2.0, "y");
  int Z = P.addVariable(1.0, 1.0, 7.0, "z");
  P.addRow(RowSense::GE, 4.0, {{X, 1.0}, {Y, 1.0}, {Z, 1.0}});
  MilpSolution Direct = MilpSolver(P, {X, Z}).solve();
  ASSERT_EQ(Direct.Status, MilpStatus::Optimal);

  PresolveResult R = presolve(P, {X, Z}, {}, {});
  ASSERT_FALSE(R.Infeasible);
  MilpSolution Reduced = MilpSolver(R.Reduced, R.IntegerVars).solve();
  ASSERT_EQ(Reduced.Status, MilpStatus::Optimal);
  EXPECT_NEAR(Reduced.Objective + R.Cert.ObjectiveOffset,
              Direct.Objective, 1e-9);
  std::vector<double> Full = R.Cert.expandSolution(Reduced.X);
  EXPECT_TRUE(P.isFeasible(Full, 1e-9));
}

} // namespace
