//===- tests/milp/MilpPropertyTest.cpp - randomized MILP cross-checks -----===//
//
// Property tests: random binary programs small enough to brute-force by
// enumerating all 2^n assignments; the branch-and-bound must match the
// enumerated optimum exactly (both objective and feasibility status).
//
//===----------------------------------------------------------------------===//

#include "milp/MilpSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

using namespace cdvs;

namespace {

struct BinaryCase {
  LpProblem P;
  std::vector<int> Binaries;
};

/// Brute-force optimum over all assignments of the binaries (continuous
/// variables are absent in these cases). Returns +inf if infeasible.
double bruteForce(const BinaryCase &C) {
  int N = static_cast<int>(C.Binaries.size());
  double Best = std::numeric_limits<double>::infinity();
  for (int Mask = 0; Mask < (1 << N); ++Mask) {
    std::vector<double> X(C.P.numVariables(), 0.0);
    for (int I = 0; I < N; ++I)
      X[C.Binaries[I]] = (Mask >> I) & 1 ? 1.0 : 0.0;
    if (C.P.isFeasible(X, 1e-9))
      Best = std::min(Best, C.P.objectiveAt(X));
  }
  return Best;
}

BinaryCase makeRandomBinaryProgram(Rng &R, int NumVars, int NumRows) {
  BinaryCase C;
  for (int J = 0; J < NumVars; ++J) {
    double Cost = R.nextDouble() * 20.0 - 10.0;
    C.Binaries.push_back(C.P.addVariable(0.0, 1.0, Cost));
  }
  for (int I = 0; I < NumRows; ++I) {
    std::vector<LpTerm> Terms;
    double MaxAct = 0.0;
    for (int J = 0; J < NumVars; ++J) {
      double A = R.nextDouble() * 6.0 - 2.0; // skew positive
      Terms.push_back({J, A});
      MaxAct += std::max(0.0, A);
    }
    // Rhs between 0 and the max activity keeps a nontrivial mix of
    // feasible and infeasible assignments.
    double B = R.nextDouble() * MaxAct;
    C.P.addRow(RowSense::LE, B, Terms);
  }
  return C;
}

class MilpRandomBinary : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomBinary, MatchesExhaustiveEnumeration) {
  Rng R(500 + GetParam());
  for (int Trial = 0; Trial < 20; ++Trial) {
    int NumVars = 3 + static_cast<int>(R.nextBelow(8)); // 3..10
    int NumRows = 1 + static_cast<int>(R.nextBelow(4));
    BinaryCase C = makeRandomBinaryProgram(R, NumVars, NumRows);

    double Exact = bruteForce(C);
    MilpSolver S(C.P, C.Binaries);
    MilpSolution Sol = S.solve();

    if (!std::isfinite(Exact)) {
      EXPECT_EQ(Sol.Status, MilpStatus::Infeasible)
          << "seed " << GetParam() << " trial " << Trial;
      continue;
    }
    ASSERT_EQ(Sol.Status, MilpStatus::Optimal)
        << "seed " << GetParam() << " trial " << Trial;
    EXPECT_NEAR(Sol.Objective, Exact, 1e-5 * (1.0 + std::fabs(Exact)))
        << "seed " << GetParam() << " trial " << Trial;
    EXPECT_TRUE(C.P.isFeasible(Sol.X, 1e-5));
    // Every binary is integral in the reported solution.
    for (int V : C.Binaries) {
      double Val = Sol.X[V];
      EXPECT_LT(std::fabs(Val - std::round(Val)), 1e-5);
    }
    // Root LP bound is a valid lower bound.
    EXPECT_LE(Sol.RootBound, Exact + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomBinary, ::testing::Range(0, 8));

/// Random "mode assignment" programs shaped like the paper's DVS MILP:
/// G groups each choosing exactly one of M modes, a global resource row,
/// and per-pick costs. Brute force enumerates M^G assignments.
class MilpRandomAssignment : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomAssignment, MatchesExhaustiveEnumeration) {
  Rng R(900 + GetParam());
  for (int Trial = 0; Trial < 10; ++Trial) {
    int Groups = 2 + static_cast<int>(R.nextBelow(4)); // 2..5
    int Modes = 2 + static_cast<int>(R.nextBelow(3));  // 2..4
    LpProblem P;
    std::vector<std::vector<int>> Vars(Groups);
    std::vector<std::vector<double>> Time(Groups);
    std::vector<std::vector<double>> Energy(Groups);
    std::vector<LpTerm> TimeRow;
    double MaxTime = 0.0, MinTime = 0.0;
    for (int G = 0; G < Groups; ++G) {
      std::vector<LpTerm> Sum;
      double GMin = 1e18, GMax = 0.0;
      for (int M = 0; M < Modes; ++M) {
        double E = 1.0 + R.nextDouble() * 9.0;
        double T = 1.0 + R.nextDouble() * 9.0;
        int V = P.addVariable(0.0, 1.0, E);
        Vars[G].push_back(V);
        Energy[G].push_back(E);
        Time[G].push_back(T);
        Sum.push_back({V, 1.0});
        TimeRow.push_back({V, T});
        GMin = std::min(GMin, T);
        GMax = std::max(GMax, T);
      }
      P.addRow(RowSense::EQ, 1.0, Sum);
      MaxTime += GMax;
      MinTime += GMin;
    }
    // A deadline strictly between the loosest and tightest possibilities.
    double Deadline = MinTime + (MaxTime - MinTime) * R.nextDouble();
    P.addRow(RowSense::LE, Deadline, TimeRow);

    // Brute force over mode choices.
    double Exact = std::numeric_limits<double>::infinity();
    std::vector<int> Choice(Groups, 0);
    std::function<void(int, double, double)> Rec = [&](int G, double T,
                                                       double E) {
      if (T > Deadline + 1e-9)
        return; // prune: times are nonnegative
      if (G == Groups) {
        Exact = std::min(Exact, E);
        return;
      }
      for (int M = 0; M < Modes; ++M)
        Rec(G + 1, T + Time[G][M], E + Energy[G][M]);
    };
    Rec(0, 0.0, 0.0);

    std::vector<int> AllBinaries;
    for (auto &V : Vars)
      AllBinaries.insert(AllBinaries.end(), V.begin(), V.end());
    MilpSolver S(P, AllBinaries);
    for (auto &V : Vars)
      S.addSos1Group(V);
    MilpSolution Sol = S.solve();

    if (!std::isfinite(Exact)) {
      EXPECT_EQ(Sol.Status, MilpStatus::Infeasible);
      continue;
    }
    ASSERT_EQ(Sol.Status, MilpStatus::Optimal) << "trial " << Trial;
    EXPECT_NEAR(Sol.Objective, Exact, 1e-6 * (1.0 + Exact))
        << "trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomAssignment,
                         ::testing::Range(0, 8));

} // namespace
