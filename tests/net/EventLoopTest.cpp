//===- tests/net/EventLoopTest.cpp - timer wheel + wakeup fd ---------------===//
//
// The event-loop building blocks in isolation, driven with synthetic
// clocks: timer scheduling/cancellation, the same-tick rescan rule
// (regression: a timer due later within an already-scanned tick must
// fire on the next advance, not one wheel rotation later), deadlines
// beyond one rotation, and WakeupFd's notify/drain round trip.
//
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

using namespace cdvs;
using namespace cdvs::net;

namespace {

constexpr uint64_t kTick = 10'000'000; // 10 ms, the server's default

TEST(TimerWheel, FiresAtTheDeadlineNotBefore) {
  TimerWheel W(kTick, 512);
  int Fired = 0;
  W.schedule(/*NowNanos=*/0, /*DelayNanos=*/3 * kTick, [&] { ++Fired; });
  EXPECT_EQ(W.advance(2 * kTick), 0u);
  EXPECT_EQ(Fired, 0);
  EXPECT_EQ(W.advance(3 * kTick), 1u);
  EXPECT_EQ(Fired, 1);
  EXPECT_EQ(W.pending(), 0u);
}

TEST(TimerWheel, FiresWithinTheCurrentTickOnALaterAdvance) {
  // Regression: the first advance lands early in the deadline's tick
  // (timer not yet due); the second lands past the deadline in the SAME
  // tick. The wheel must rescan that slot and fire now — the original
  // implementation marked the tick done and sat on the timer for a full
  // rotation (512 ticks = 5.12 s at server defaults).
  TimerWheel W(kTick, 512);
  int Fired = 0;
  W.schedule(/*NowNanos=*/1'000'000, /*DelayNanos=*/5'000'000,
             [&] { ++Fired; }); // deadline 6 ms, inside tick 0
  EXPECT_EQ(W.advance(2'000'000), 0u); // tick 0, before the deadline
  EXPECT_EQ(Fired, 0);
  EXPECT_EQ(W.advance(7'000'000), 1u); // tick 0 again, past it
  EXPECT_EQ(Fired, 1);
}

TEST(TimerWheel, CancelUnfilesAPendingTimer) {
  TimerWheel W(kTick, 512);
  int Fired = 0;
  uint64_t Id = W.schedule(0, 2 * kTick, [&] { ++Fired; });
  EXPECT_TRUE(W.cancel(Id));
  EXPECT_FALSE(W.cancel(Id)); // already gone
  EXPECT_EQ(W.advance(10 * kTick), 0u);
  EXPECT_EQ(Fired, 0);
  EXPECT_EQ(W.pending(), 0u);
}

TEST(TimerWheel, DeadlineBeyondOneRotationWaitsItsTurn) {
  TimerWheel W(kTick, /*Slots=*/8);
  int Fired = 0;
  // 20 ticks out with an 8-slot wheel: shares a slot with tick 4.
  W.schedule(0, 20 * kTick, [&] { ++Fired; });
  EXPECT_EQ(W.advance(4 * kTick), 0u); // slot scanned, deadline not due
  EXPECT_EQ(Fired, 0);
  EXPECT_EQ(W.advance(12 * kTick), 0u); // second visit, still early
  EXPECT_EQ(W.advance(20 * kTick), 1u);
  EXPECT_EQ(Fired, 1);
}

TEST(TimerWheel, CallbacksMayReschedule) {
  TimerWheel W(kTick, 512);
  int Fired = 0;
  W.schedule(0, kTick, [&] {
    ++Fired;
    W.schedule(1 * kTick, kTick, [&] { ++Fired; });
  });
  EXPECT_EQ(W.advance(1 * kTick), 1u);
  EXPECT_EQ(W.advance(2 * kTick), 1u);
  EXPECT_EQ(Fired, 2);
}

TEST(TimerWheel, PollTimeoutTracksPendingTimers) {
  TimerWheel W(kTick, 512);
  EXPECT_EQ(W.pollTimeoutMs(0), -1); // nothing filed: sleep forever
  uint64_t Id = W.schedule(0, 5 * kTick, [] {});
  int Ms = W.pollTimeoutMs(0);
  EXPECT_GE(Ms, 1);
  EXPECT_LE(Ms, 10); // never oversleeps a tick boundary
  W.cancel(Id);
  EXPECT_EQ(W.pollTimeoutMs(0), -1);
}

TEST(WakeupFd, NotifyMakesTheFdReadableUntilDrained) {
  WakeupFd W;
  ASSERT_GE(W.fd(), 0);
  W.notify();
  W.notify(); // coalesces; must not block or error

  std::unique_ptr<Poller> Io = Poller::create(false);
  ASSERT_TRUE(Io != nullptr);
  Io->add(W.fd(), EvIn);
  std::vector<PollEvent> Events;
  ASSERT_GT(Io->wait(Events, 1'000), 0);
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Fd, W.fd());

  W.drain();
  EXPECT_EQ(Io->wait(Events, 0), 0); // readable edge consumed
}

#ifdef SO_REUSEPORT
TEST(ListenTcp, ReusePortAllowsSharedBinding) {
  // Two reuseport listeners share one port (the multi-reactor server's
  // normal mode); a plain listener on the same port still fails.
  ErrorOr<int> A = listenTcp("127.0.0.1", 0, 16, /*ReusePort=*/true);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ErrorOr<uint16_t> Port = localPort(*A);
  ASSERT_TRUE(Port.hasValue()) << Port.message();

  ErrorOr<int> B = listenTcp("127.0.0.1", *Port, 16, /*ReusePort=*/true);
  EXPECT_TRUE(B.hasValue()) << B.message();
  ErrorOr<int> Plain = listenTcp("127.0.0.1", *Port, 16);
  EXPECT_FALSE(Plain.hasValue());

  if (A)
    ::close(*A);
  if (B)
    ::close(*B);
}
#endif

} // namespace
