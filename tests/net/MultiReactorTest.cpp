//===- tests/net/MultiReactorTest.cpp - N-reactor server lifecycle ---------===//
//
// net::Server with Reactors > 1 over real loopback sockets: requests
// served across four SO_REUSEPORT listeners, out-of-order pipelining
// with connections spread over reactors, graceful drain quiescing every
// reactor, the single-acceptor fd-handoff fallback, overload shedding by
// deadline class against the per-reactor pending watermark, and the
// slow-frame (slowloris) guard. TSan runs these too — the per-reactor
// completion queues and handoff paths are exactly what it watches.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Server.h"

#include "service/JobIO.h"
#include "support/Clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace cdvs;
using namespace cdvs::net;

namespace {

constexpr int kFrameWaitMs = 120'000; // MILP under TSan can be slow

ServerOptions reactorOptions(int Reactors) {
  ServerOptions O;
  O.Reactors = Reactors;
  O.Service.NumWorkers = 2;
  O.Service.QueueCapacity = 64;
  return O;
}

JobRequest gsmJob(const std::string &Id, double Tightness = 0.5) {
  JobRequest R;
  R.Id = Id;
  R.Workload = "gsm";
  R.DeadlineTightness = Tightness;
  return R;
}

void startOrDie(Server &S) {
  ErrorOr<bool> R = S.start();
  ASSERT_TRUE(R.hasValue()) << R.message();
}

Client connectOrDie(const Server &S) {
  ErrorOr<Client> C = Client::connect("127.0.0.1", S.port());
  EXPECT_TRUE(C.hasValue()) << C.message();
  return C ? std::move(*C) : Client();
}

bool eventually(double Seconds, const std::function<bool()> &Pred) {
  uint64_t Deadline =
      monotonicNanos() + static_cast<uint64_t>(Seconds * 1e9);
  while (monotonicNanos() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

TEST(MultiReactor, ServesAcrossFourReactors) {
  Server S(reactorOptions(4));
  startOrDie(S);
  EXPECT_EQ(S.reactors(), 4);

  const int kClients = 8;
  std::vector<Client> Clients;
  for (int I = 0; I < kClients; ++I)
    Clients.push_back(connectOrDie(S));
  for (int I = 0; I < kClients; ++I) {
    ErrorOr<JobResult> R =
        Clients[I].call(gsmJob("mr" + std::to_string(I)), kFrameWaitMs);
    ASSERT_TRUE(R.hasValue()) << R.message();
    EXPECT_EQ(R->Status, JobStatus::Done) << R->Reason;
    EXPECT_EQ(R->Id, "mr" + std::to_string(I));
  }

  ServerStats NS = S.stats();
  EXPECT_EQ(NS.ConnectionsAccepted, kClients);
  EXPECT_GE(NS.FramesIn, kClients);
  EXPECT_GE(NS.FramesOut, kClients);
}

TEST(MultiReactor, PipelinedResponsesSpreadAcrossReactors) {
  Server S(reactorOptions(4));
  startOrDie(S);

  // Warm the (service-wide) cache so pipelined requests answer in
  // microseconds and genuinely interleave across reactors.
  {
    Client Warm = connectOrDie(S);
    ErrorOr<JobResult> R = Warm.call(gsmJob("warm"), kFrameWaitMs);
    ASSERT_TRUE(R.hasValue()) << R.message();
  }

  const int kClients = 4;
  const int kPerClient = 8;
  std::vector<Client> Clients;
  std::vector<std::set<uint64_t>> Sent(kClients);
  for (int I = 0; I < kClients; ++I)
    Clients.push_back(connectOrDie(S));
  for (int I = 0; I < kClients; ++I)
    for (int J = 0; J < kPerClient; ++J) {
      ErrorOr<uint64_t> Corr = Clients[I].sendRequest(
          gsmJob("p" + std::to_string(I) + "." + std::to_string(J)));
      ASSERT_TRUE(Corr.hasValue()) << Corr.message();
      Sent[I].insert(*Corr);
    }

  // Every response arrives on the connection that asked, matched by
  // correlation id; cross-connection order is unconstrained.
  for (int I = 0; I < kClients; ++I) {
    std::set<uint64_t> Got;
    for (int J = 0; J < kPerClient; ++J) {
      ErrorOr<Frame> F = Clients[I].readFrame(kFrameWaitMs);
      ASSERT_TRUE(F.hasValue())
          << "client " << I << " response " << J << ": " << F.message();
      EXPECT_EQ(F->Type, FrameType::Response);
      Got.insert(F->Correlation);
    }
    EXPECT_EQ(Got, Sent[I]);
  }
}

TEST(MultiReactor, GracefulDrainQuiescesAllReactors) {
  ServerOptions O = reactorOptions(4);
  O.Service.StartPaused = true; // queue everything before the drain
  Server S(O);
  startOrDie(S);

  const int kClients = 4;
  std::vector<Client> Clients;
  std::vector<uint64_t> Corrs(kClients);
  for (int I = 0; I < kClients; ++I)
    Clients.push_back(connectOrDie(S));
  for (int I = 0; I < kClients; ++I) {
    ErrorOr<uint64_t> Corr =
        Clients[I].sendRequest(gsmJob("d" + std::to_string(I)));
    ASSERT_TRUE(Corr.hasValue());
    Corrs[I] = *Corr;
  }
  ASSERT_TRUE(eventually(120.0, [&] {
    return S.service().stats().Submitted == kClients;
  }));

  S.beginDrain();
  S.service().resume();

  // Every admitted job answers on its own connection, then EOF.
  for (int I = 0; I < kClients; ++I) {
    ErrorOr<Frame> F = Clients[I].readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << "client " << I << ": " << F.message();
    EXPECT_EQ(F->Type, FrameType::Response);
    EXPECT_EQ(F->Correlation, Corrs[I]);
    EXPECT_FALSE(Clients[I].readFrame(kFrameWaitMs).hasValue());
  }

  EXPECT_TRUE(S.waitDrained(120.0));
  EXPECT_FALSE(Client::connect("127.0.0.1", S.port()).hasValue());
  EXPECT_EQ(S.stats().OpenConnections, 0u);
}

TEST(MultiReactor, AcceptHandoffFallbackServes) {
  ServerOptions O = reactorOptions(2);
  O.ForceAcceptHandoff = true;
  Server S(O);
  startOrDie(S);
  EXPECT_FALSE(S.usingReusePort());
  EXPECT_EQ(S.reactors(), 2);

  // Reactor 0 accepts and round-robins; every other connection crosses
  // the handoff queue to reactor 1 and must still serve.
  const int kClients = 4;
  std::vector<Client> Clients;
  for (int I = 0; I < kClients; ++I)
    Clients.push_back(connectOrDie(S));
  for (int I = 0; I < kClients; ++I) {
    ErrorOr<uint64_t> Corr = Clients[I].ping(100 + I);
    ASSERT_TRUE(Corr.hasValue());
    ErrorOr<Frame> F = Clients[I].readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << F.message();
    EXPECT_EQ(F->Type, FrameType::Pong);
    EXPECT_EQ(F->Correlation, 100u + I);
  }

  ServerStats NS = S.stats();
  EXPECT_EQ(NS.ConnectionsAccepted, kClients);
  EXPECT_EQ(NS.HandoffAccepts, kClients / 2);
}

TEST(MultiReactor, ShedsLaxThenEverythingPastTheWatermarks) {
  ServerOptions O = reactorOptions(1);
  O.Service.StartPaused = true; // admitted jobs stay pending
  O.ShedHighWater = 2;          // hard water defaults to 4
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  // Two urgent jobs fill the reactor to the high-water mark.
  ASSERT_TRUE(C.sendRequest(gsmJob("u1", 0.2)).hasValue());
  ASSERT_TRUE(C.sendRequest(gsmJob("u2", 0.2)).hasValue());
  ASSERT_TRUE(eventually(
      120.0, [&] { return S.service().stats().Submitted == 2; }));

  // At the mark, a lax request sheds before it is parsed...
  ErrorOr<uint64_t> LaxCorr = C.sendRequest(gsmJob("lax", 0.8));
  ASSERT_TRUE(LaxCorr.hasValue());
  ErrorOr<Frame> Shed = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Shed.hasValue()) << Shed.message();
  EXPECT_EQ(Shed->Type, FrameType::Reject);
  EXPECT_EQ(Shed->Correlation, *LaxCorr);
  ErrorOr<RejectInfo> R1 = decodeReject(Shed->Payload);
  ASSERT_TRUE(R1.hasValue());
  EXPECT_EQ(R1->Code, "shed");

  // ...while urgent requests stay admitted up to the hard water mark.
  ASSERT_TRUE(C.sendRequest(gsmJob("u3", 0.2)).hasValue());
  ASSERT_TRUE(C.sendRequest(gsmJob("u4", 0.2)).hasValue());
  ASSERT_TRUE(eventually(
      120.0, [&] { return S.service().stats().Submitted == 4; }));

  // Past it, even urgent requests shed.
  ErrorOr<uint64_t> HardCorr = C.sendRequest(gsmJob("u5", 0.2));
  ASSERT_TRUE(HardCorr.hasValue());
  ErrorOr<Frame> Hard = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Hard.hasValue()) << Hard.message();
  EXPECT_EQ(Hard->Type, FrameType::Reject);
  EXPECT_EQ(Hard->Correlation, *HardCorr);
  ErrorOr<RejectInfo> R2 = decodeReject(Hard->Payload);
  ASSERT_TRUE(R2.hasValue());
  EXPECT_EQ(R2->Code, "shed");
  EXPECT_EQ(S.stats().LoadSheds, 2);

  // Release the backlog: every admitted job still answers.
  S.service().resume();
  std::set<std::string> Ids;
  for (int I = 0; I < 4; ++I) {
    ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << "response " << I << ": " << F.message();
    EXPECT_EQ(F->Type, FrameType::Response);
    ErrorOr<JobResult> JR = jobResultFromJsonText(F->Payload);
    ASSERT_TRUE(JR.hasValue()) << JR.message();
    Ids.insert(JR->Id);
  }
  EXPECT_EQ(Ids, (std::set<std::string>{"u1", "u2", "u3", "u4"}));
}

TEST(MultiReactor, SlowClientDrawsSlowFrameRejectThenClose) {
  ServerOptions O = reactorOptions(1);
  O.SlowFrameTimeoutMs = 60;
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  // Dribble half a header, then stall — classic slowloris.
  std::string F = encodeFrame(FrameType::Request, 9, "{\"x\":1}");
  ASSERT_TRUE(C.sendRaw(F.data(), 6).hasValue());

  ErrorOr<Frame> Got = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Got.hasValue()) << Got.message();
  EXPECT_EQ(Got->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(Got->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "slow_frame");
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
  EXPECT_EQ(S.stats().SlowFrameCloses, 1);
}

TEST(MultiReactor, SteadyDribbleAcrossFramesNeverTripsTheGuard) {
  ServerOptions O = reactorOptions(1);
  O.SlowFrameTimeoutMs = 120;
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  // Three pings, each delivered in two chunks with a pause well inside
  // the window: every complete frame restarts the clock, so a slow but
  // steady client is never punished.
  for (int I = 0; I < 3; ++I) {
    std::string F = encodeFrame(FrameType::Ping, 10 + I, "");
    ASSERT_TRUE(C.sendRaw(F.data(), 8).hasValue());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(C.sendRaw(F.data() + 8, F.size() - 8).hasValue());
    ErrorOr<Frame> Pong = C.readFrame(kFrameWaitMs);
    ASSERT_TRUE(Pong.hasValue()) << Pong.message();
    EXPECT_EQ(Pong->Type, FrameType::Pong);
    EXPECT_EQ(Pong->Correlation, 10u + I);
  }
  EXPECT_EQ(S.stats().SlowFrameCloses, 0);
}

} // namespace
