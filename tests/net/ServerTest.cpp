//===- tests/net/ServerTest.cpp - loopback server end to end ---------------===//
//
// net::Server over real loopback sockets: frame round trips onto the
// scheduling pipeline, out-of-order pipelining by correlation id, the
// reject-then-close protocol-error path, idle and request timeouts,
// write backpressure against a non-reading client, connection limits,
// and graceful drain. Deterministic sequencing leans on the embedded
// service's pause()/resume() (hold jobs in the admission queue) and on
// pre-warming the result cache so "fast" requests answer in
// microseconds while "slow" ones solve a MILP.
//
// Timeouts are generous (sanitizer builds run these too); tests assert
// on ordering and state, never on wall-clock speed.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Server.h"

#include "net/EventLoop.h"
#include "service/JobIO.h"
#include "support/Clock.h"
#include "taskgraph/Generator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace cdvs;
using namespace cdvs::net;

namespace {

constexpr int kFrameWaitMs = 120'000; // MILP under TSan can be slow

ServerOptions quickOptions() {
  ServerOptions O;
  O.Service.NumWorkers = 2;
  O.Service.QueueCapacity = 64;
  return O;
}

JobRequest gsmJob(const std::string &Id, double Tightness = 0.5) {
  JobRequest R;
  R.Id = Id;
  R.Workload = "gsm";
  R.DeadlineTightness = Tightness;
  return R;
}

/// start()s or fails the test.
void startOrDie(Server &S) {
  ErrorOr<bool> R = S.start();
  ASSERT_TRUE(R.hasValue()) << R.message();
}

Client connectOrDie(const Server &S) {
  ErrorOr<Client> C = Client::connect("127.0.0.1", S.port());
  EXPECT_TRUE(C.hasValue()) << C.message();
  return C ? std::move(*C) : Client();
}

/// Polls \p Pred for up to \p Seconds.
bool eventually(double Seconds, const std::function<bool()> &Pred) {
  uint64_t Deadline =
      monotonicNanos() + static_cast<uint64_t>(Seconds * 1e9);
  while (monotonicNanos() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

TEST(NetServer, SolvesARequestOverLoopback) {
  Server S(quickOptions());
  startOrDie(S);
  ASSERT_GT(S.port(), 0);
  Client C = connectOrDie(S);

  ErrorOr<JobResult> R = C.call(gsmJob("wire1"), kFrameWaitMs);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Status, JobStatus::Done) << R->Reason;
  EXPECT_EQ(R->Id, "wire1");
  EXPECT_FALSE(R->ScheduleText.empty());
  EXPECT_EQ(R->Fingerprint.size(), 32u);

  ServerStats NS = S.stats();
  EXPECT_EQ(NS.ConnectionsAccepted, 1);
  EXPECT_GE(NS.FramesIn, 1);
  EXPECT_GE(NS.FramesOut, 1);
  EXPECT_GT(NS.BytesIn, 0);
  EXPECT_GT(NS.BytesOut, 0);
}

TEST(NetServer, PingPongEchoesCorrelationWithClockStamp) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  ErrorOr<uint64_t> Corr = C.ping(42);
  ASSERT_TRUE(Corr.hasValue());
  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Pong);
  EXPECT_EQ(F->Correlation, 42u);
  // The payload carries the server's monotonic clock so scrapers can
  // align per-process timelines from the RTT midpoint.
  EXPECT_NE(F->Payload.find("\"now_ns\":"), std::string::npos);
}

TEST(NetServer, PipelinedResponsesReturnOutOfOrderByCorrelation) {
  // One worker + the service's deadline-urgency priority queue makes
  // response order deterministic: with both jobs admitted before the
  // worker runs, the stringent one dequeues (and answers) first even
  // though it was pipelined second.
  ServerOptions O = quickOptions();
  O.Service.NumWorkers = 1;
  O.Service.StartPaused = true;
  Server S(O);
  startOrDie(S);

  Client C = connectOrDie(S);
  ErrorOr<uint64_t> Lax = C.sendRequest(gsmJob("lax", 0.8));
  ErrorOr<uint64_t> Urgent = C.sendRequest(gsmJob("urgent", 0.31));
  ASSERT_TRUE(Lax.hasValue());
  ASSERT_TRUE(Urgent.hasValue());
  ASSERT_NE(*Lax, *Urgent);
  ASSERT_TRUE(eventually(
      120.0, [&] { return S.service().stats().Submitted == 2; }));
  S.service().resume();

  ErrorOr<Frame> First = C.readFrame(kFrameWaitMs);
  ErrorOr<Frame> Second = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(First.hasValue()) << First.message();
  ASSERT_TRUE(Second.hasValue()) << Second.message();

  // The urgent job answers first even though it was sent second.
  EXPECT_EQ(First->Correlation, *Urgent);
  EXPECT_EQ(Second->Correlation, *Lax);
  ErrorOr<JobResult> UrgentR = jobResultFromJsonText(First->Payload);
  ErrorOr<JobResult> LaxR = jobResultFromJsonText(Second->Payload);
  ASSERT_TRUE(UrgentR.hasValue()) << UrgentR.message();
  ASSERT_TRUE(LaxR.hasValue()) << LaxR.message();
  EXPECT_EQ(UrgentR->Id, "urgent");
  EXPECT_EQ(LaxR->Id, "lax");
}

TEST(NetServer, DuplicateInFlightCorrelationIdIsRejected) {
  ServerOptions O = quickOptions();
  O.Service.StartPaused = true; // hold the first request in flight
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  ASSERT_TRUE(C.sendRequest(gsmJob("a"), 77).hasValue());
  ASSERT_TRUE(C.sendRequest(gsmJob("b"), 77).hasValue());
  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  EXPECT_EQ(F->Correlation, 77u);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "bad_request");
  S.service().resume();
}

TEST(NetServer, BadMagicDrawsRejectThenClose) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  std::string Bad = encodeFrame(FrameType::Ping, 1, "");
  Bad[0] = 'Z';
  ASSERT_TRUE(C.sendRaw(Bad.data(), Bad.size()).hasValue());

  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "bad_magic");
  // ... then close.
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
  EXPECT_EQ(S.stats().ProtocolErrors, 1);
}

TEST(NetServer, OversizedFrameDrawsTooLargeRejectThenClose) {
  ServerOptions O = quickOptions();
  O.MaxFrameBytes = 1024;
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  // Announce a payload over the cap; never send it.
  FrameHeader H;
  H.Type = FrameType::Request;
  H.Correlation = 3;
  H.PayloadBytes = 4096;
  unsigned char Hdr[kFrameHeaderBytes];
  encodeFrameHeader(H, Hdr);
  ASSERT_TRUE(C.sendRaw(Hdr, sizeof(Hdr)).hasValue());

  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "too_large");
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
}

TEST(NetServer, TruncatedFrameAtEofDrawsRejectThenClose) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  std::string Partial = encodeFrame(FrameType::Request, 8, "{\"x\":1}");
  ASSERT_TRUE(C.sendRaw(Partial.data(), Partial.size() - 4).hasValue());
  C.shutdownWrite();

  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "bad_frame");
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
}

TEST(NetServer, ClientSentResponseFrameDrawsRejectThenClose) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  std::string F = encodeFrame(FrameType::Response, 4, "{}");
  ASSERT_TRUE(C.sendRaw(F.data(), F.size()).hasValue());
  ErrorOr<Frame> Got = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Got.hasValue()) << Got.message();
  EXPECT_EQ(Got->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(Got->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "bad_frame");
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
}

TEST(NetServer, MalformedRequestJsonRejectsButKeepsTheConnection) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  std::string F = encodeFrame(FrameType::Request, 5, "{\"nope\":true}");
  ASSERT_TRUE(C.sendRaw(F.data(), F.size()).hasValue());
  ErrorOr<Frame> Got = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Got.hasValue()) << Got.message();
  EXPECT_EQ(Got->Type, FrameType::Reject);
  EXPECT_EQ(Got->Correlation, 5u);
  ErrorOr<RejectInfo> R = decodeReject(Got->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "bad_request");

  // A bad request is the client's problem, not a framing error — the
  // connection still works.
  ErrorOr<uint64_t> Corr = C.ping();
  ASSERT_TRUE(Corr.hasValue());
  ErrorOr<Frame> Pong = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Pong.hasValue()) << Pong.message();
  EXPECT_EQ(Pong->Type, FrameType::Pong);
}

JobRequest cannedGraphJob(const std::string &Id) {
  ErrorOr<taskgraph::TaskGraph> G =
      taskgraph::cannedTaskGraph("pair2-early");
  EXPECT_TRUE(G.hasValue()) << G.message();
  JobRequest R;
  R.Id = Id;
  R.Graph = std::make_shared<const taskgraph::TaskGraph>(std::move(*G));
  return R;
}

TEST(NetServer, GraphJobsRoundTripOnGraphFrames) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  // call() picks the graph frame kind from the request and accepts the
  // graph response kind; the result carries the task-plan pairing.
  ErrorOr<JobResult> R = C.call(cannedGraphJob("g1"), kFrameWaitMs);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Status, JobStatus::Done) << R->Reason;
  EXPECT_GE(R->Replans, 1);
  EXPECT_EQ(R->ScheduleText.rfind("cdvs-taskplan v1\n", 0), 0u);
  EXPECT_LE(R->PredictedEnergyJoules, R->StaticEnergyJoules);

  // And the same job again is a cache hit across the wire.
  ErrorOr<JobResult> R2 = C.call(cannedGraphJob("g2"), kFrameWaitMs);
  ASSERT_TRUE(R2.hasValue()) << R2.message();
  EXPECT_TRUE(R2->CacheHit);
  EXPECT_EQ(R2->ScheduleText, R->ScheduleText);
}

TEST(NetServer, FrameKindMustMatchPayloadKind) {
  // A graph payload on a plain Request frame (and vice versa) is a
  // malformed request: routers key graph jobs off the frame type alone,
  // so a mismatch would silently shard-split the cache. Reject, keep
  // the connection.
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  std::string GraphPayload = jobRequestToJson(cannedGraphJob("m1"));
  std::string F = encodeFrame(FrameType::Request, 21, GraphPayload);
  ASSERT_TRUE(C.sendRaw(F.data(), F.size()).hasValue());
  ErrorOr<Frame> Got = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Got.hasValue()) << Got.message();
  EXPECT_EQ(Got->Type, FrameType::Reject);
  EXPECT_EQ(Got->Correlation, 21u);
  ErrorOr<RejectInfo> RI = decodeReject(Got->Payload);
  ASSERT_TRUE(RI.hasValue());
  EXPECT_EQ(RI->Code, "bad_request");

  std::string PlainPayload = jobRequestToJson(gsmJob("m2"));
  std::string F2 = encodeFrame(FrameType::GraphRequest, 22, PlainPayload);
  ASSERT_TRUE(C.sendRaw(F2.data(), F2.size()).hasValue());
  ErrorOr<Frame> Got2 = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Got2.hasValue()) << Got2.message();
  EXPECT_EQ(Got2->Type, FrameType::Reject);
  ErrorOr<RejectInfo> RI2 = decodeReject(Got2->Payload);
  ASSERT_TRUE(RI2.hasValue());
  EXPECT_EQ(RI2->Code, "bad_request");

  // The connection survived both rejects.
  ErrorOr<uint64_t> Corr = C.ping();
  ASSERT_TRUE(Corr.hasValue());
  ErrorOr<Frame> Pong = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(Pong.hasValue()) << Pong.message();
  EXPECT_EQ(Pong->Type, FrameType::Pong);
}

TEST(NetServer, IdleConnectionIsRejectedAndClosed) {
  ServerOptions O = quickOptions();
  O.IdleTimeoutMs = 60;
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  // Send nothing; the server should evict us.
  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "idle_timeout");
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
  EXPECT_EQ(S.stats().IdleCloses, 1);
}

TEST(NetServer, RequestTimeoutRejectsAndDropsTheLateResult) {
  ServerOptions O = quickOptions();
  O.RequestTimeoutMs = 60;
  O.Service.StartPaused = true; // guarantee the deadline hits first
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  ErrorOr<uint64_t> Corr = C.sendRequest(gsmJob("late"));
  ASSERT_TRUE(Corr.hasValue());
  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  EXPECT_EQ(F->Correlation, *Corr);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "timeout");
  EXPECT_EQ(S.stats().RequestTimeouts, 1);

  // Release the job; its result must be swallowed as an orphan, not
  // sent as a second answer for the same correlation id.
  S.service().resume();
  EXPECT_TRUE(eventually(
      120.0, [&] { return S.stats().OrphanCompletions == 1; }));

  // The connection survives and still serves fresh requests.
  ErrorOr<JobResult> Again = C.call(gsmJob("after"), kFrameWaitMs);
  ASSERT_TRUE(Again.hasValue()) << Again.message();
  EXPECT_EQ(Again->Status, JobStatus::Done) << Again->Reason;
}

TEST(NetServer, WriteBackpressurePausesReadingUntilTheClientDrains) {
  ServerOptions O = quickOptions();
  O.SocketSendBufferBytes = 4096; // keep kernel slack tiny
  O.WriteQueueHighWater = 16 * 1024;
  O.WriteQueueLowWater = 4 * 1024;
  Server S(O);
  startOrDie(S);

  {
    Client Warm = connectOrDie(S);
    ErrorOr<JobResult> R = Warm.call(gsmJob("warm"), kFrameWaitMs);
    ASSERT_TRUE(R.hasValue()) << R.message();
  }

  // Pipeline many cached requests without reading a byte back. Each
  // response carries the schedule (~1 KiB), so the write queue blows
  // through the high-water mark once the 4 KiB socket buffer fills.
  Client C = connectOrDie(S);
  const int N = 200;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(C.sendRequest(gsmJob("bp" + std::to_string(I)))
                    .hasValue());

  ASSERT_TRUE(
      eventually(120.0, [&] { return S.stats().ReadPauses >= 1; }))
      << "server never paused reading";

  // Now drain: every response must still arrive, in-order per
  // correlation id assignment (1..N).
  for (int I = 0; I < N; ++I) {
    ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << "response " << I << ": " << F.message();
    EXPECT_EQ(F->Type, FrameType::Response);
  }

  // Reading resumed; the connection is fully usable again.
  ErrorOr<JobResult> R = C.call(gsmJob("post-bp"), kFrameWaitMs);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Status, JobStatus::Done);
}

TEST(NetServer, ConnectionLimitDrawsOverloadedReject) {
  ServerOptions O = quickOptions();
  O.MaxConnections = 1;
  Server S(O);
  startOrDie(S);

  Client C1 = connectOrDie(S);
  ASSERT_TRUE(C1.ping().hasValue());
  ASSERT_TRUE(C1.readFrame(kFrameWaitMs).hasValue());

  Client C2 = connectOrDie(S);
  ErrorOr<Frame> F = C2.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Reject);
  ErrorOr<RejectInfo> R = decodeReject(F->Payload);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Code, "overloaded");
  EXPECT_FALSE(C2.readFrame(kFrameWaitMs).hasValue());
  EXPECT_EQ(S.stats().ConnectionsRejected, 1);
}

TEST(NetServer, GracefulDrainAnswersEveryAcceptedJobThenCloses) {
  ServerOptions O = quickOptions();
  O.Service.StartPaused = true; // queue everything before the drain
  Server S(O);
  startOrDie(S);
  Client C = connectOrDie(S);

  const int N = 5;
  std::vector<uint64_t> Corrs;
  for (int I = 0; I < N; ++I) {
    ErrorOr<uint64_t> Corr =
        C.sendRequest(gsmJob("drain" + std::to_string(I)));
    ASSERT_TRUE(Corr.hasValue());
    Corrs.push_back(*Corr);
  }
  // Let the loop admit all five before it stops reading.
  ASSERT_TRUE(eventually(
      120.0, [&] { return S.service().stats().Submitted == N; }));

  S.beginDrain();
  S.service().resume();

  // Every accepted job answers (out-of-order is fine), then EOF.
  std::set<uint64_t> Answered;
  for (int I = 0; I < N; ++I) {
    ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
    ASSERT_TRUE(F.hasValue()) << "response " << I << ": " << F.message();
    EXPECT_EQ(F->Type, FrameType::Response);
    Answered.insert(F->Correlation);
  }
  EXPECT_EQ(Answered.size(), Corrs.size());
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());

  EXPECT_TRUE(S.waitDrained(120.0));
  // The listener is gone: new connections are refused.
  EXPECT_FALSE(Client::connect("127.0.0.1", S.port()).hasValue());
  EXPECT_EQ(S.stats().OpenConnections, 0u);
}

TEST(NetServer, DrainingServerRejectsNewRequestsOnOpenConnections) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);
  ASSERT_TRUE(C.ping().hasValue());
  ASSERT_TRUE(C.readFrame(kFrameWaitMs).hasValue());

  S.beginDrain();
  EXPECT_TRUE(S.waitDrained(120.0));
  // The drained server closed this idle connection.
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
}

TEST(NetServer, HalfCloseAnswersInFlightThenCloses) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);

  ErrorOr<uint64_t> Corr = C.sendRequest(gsmJob("halfclose"));
  ASSERT_TRUE(Corr.hasValue());
  C.shutdownWrite();

  ErrorOr<Frame> F = C.readFrame(kFrameWaitMs);
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->Type, FrameType::Response);
  EXPECT_EQ(F->Correlation, *Corr);
  EXPECT_FALSE(C.readFrame(kFrameWaitMs).hasValue());
}

TEST(NetServer, PollBackendServesRequestsToo) {
  ServerOptions O = quickOptions();
  O.ForcePoll = true;
  Server S(O);
  startOrDie(S);
  EXPECT_STREQ(S.backendName(), "poll");
  Client C = connectOrDie(S);
  ErrorOr<JobResult> R = C.call(gsmJob("pollwire"), kFrameWaitMs);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Status, JobStatus::Done) << R->Reason;
}

TEST(NetServer, StopWithoutDrainShutsDownCleanly) {
  Server S(quickOptions());
  startOrDie(S);
  Client C = connectOrDie(S);
  ASSERT_TRUE(C.sendRequest(gsmJob("abandoned")).hasValue());
  // Destructor path: stop() with a request possibly in flight must not
  // hang or leak (ASan/TSan would flag it).
  S.stop();
}

} // namespace
