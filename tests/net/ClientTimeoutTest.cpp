//===- tests/net/ClientTimeoutTest.cpp - client-side deadline paths -------===//
//
// net::Client's defensive half: the request timeout against a peer that
// accepts and then goes silent (the failure mode a dead dvs-server or a
// wedged router presents), the default RequestTimeoutMs bound applied
// to negative timeouts, and connectWithRetry's bounded exponential
// backoff against a port nobody listens on.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "net/EventLoop.h"
#include "support/Clock.h"

#include <gtest/gtest.h>

#include <string>
#include <unistd.h>

using namespace cdvs;
using namespace cdvs::net;

namespace {

/// Accepts connections and never answers a byte — the stalled peer all
/// the timeout paths are aimed at. No accept loop is needed: the kernel
/// completes loopback handshakes from the listen backlog by itself.
struct StallListener {
  int Fd = -1;
  uint16_t Port = 0;

  StallListener() {
    ErrorOr<int> L = listenTcp("127.0.0.1", 0, 8);
    EXPECT_TRUE(L.hasValue()) << L.message();
    if (L) {
      Fd = *L;
      ErrorOr<uint16_t> P = localPort(Fd);
      EXPECT_TRUE(P.hasValue()) << P.message();
      Port = P ? *P : 0;
    }
  }
  ~StallListener() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

/// A port with nothing behind it: bind, read the number back, close.
uint16_t deadPort() {
  ErrorOr<int> L = listenTcp("127.0.0.1", 0, 1);
  EXPECT_TRUE(L.hasValue()) << L.message();
  ErrorOr<uint16_t> P = localPort(*L);
  EXPECT_TRUE(P.hasValue()) << P.message();
  ::close(*L);
  return P ? *P : 0;
}

double secondsSince(uint64_t StartNs) {
  return static_cast<double>(monotonicNanos() - StartNs) * 1e-9;
}

TEST(ClientTimeout, ReadFrameGivesUpOnAStalledPeer) {
  StallListener L;
  ASSERT_GT(L.Port, 0);
  ErrorOr<Client> C = Client::connect("127.0.0.1", L.Port);
  ASSERT_TRUE(C.hasValue()) << C.message();

  JobRequest R;
  R.Id = "stalled";
  R.Workload = "gsm";
  ASSERT_TRUE(C->sendRequest(R).hasValue());

  uint64_t Start = monotonicNanos();
  ErrorOr<Frame> F = C->readFrame(250);
  EXPECT_FALSE(F.hasValue());
  EXPECT_NE(F.message().find("timed out"), std::string::npos)
      << F.message();
  double Waited = secondsSince(Start);
  EXPECT_GE(Waited, 0.2) << "gave up before the deadline";
  EXPECT_LT(Waited, 30.0) << "deadline did not bound the wait";
}

TEST(ClientTimeout, NegativeTimeoutMeansTheConfiguredRequestBound) {
  StallListener L;
  ASSERT_GT(L.Port, 0);
  ClientOptions O;
  O.RequestTimeoutMs = 250;
  ErrorOr<Client> C = Client::connect("127.0.0.1", L.Port, O);
  ASSERT_TRUE(C.hasValue()) << C.message();

  // call() forwards its timeout to readFrame; a negative value must
  // fall back to RequestTimeoutMs, not wait forever.
  JobRequest R;
  R.Id = "bounded";
  R.Workload = "gsm";
  uint64_t Start = monotonicNanos();
  ErrorOr<JobResult> Res = C->call(R, -1);
  EXPECT_FALSE(Res.hasValue());
  EXPECT_NE(Res.message().find("timed out"), std::string::npos)
      << Res.message();
  EXPECT_GE(secondsSince(Start), 0.2);
  EXPECT_LT(secondsSince(Start), 30.0);
}

TEST(ClientTimeout, ConnectWithRetryNamesItsAttemptCount) {
  ClientOptions O;
  O.ConnectAttempts = 3;
  O.ReconnectBaseMs = 10;
  O.ReconnectMaxMs = 40;
  uint64_t Start = monotonicNanos();
  ErrorOr<Client> C =
      Client::connectWithRetry("127.0.0.1", deadPort(), O);
  EXPECT_FALSE(C.hasValue());
  EXPECT_NE(C.message().find("3 attempt"), std::string::npos)
      << C.message();
  // Backoff is 10ms then 20ms between the three refused connects —
  // bounded, not ConnectAttempts * ConnectTimeoutMs.
  EXPECT_LT(secondsSince(Start), 10.0);
}

TEST(ClientTimeout, SingleAttemptConnectStillRefusesCleanly) {
  ErrorOr<Client> C = Client::connect("127.0.0.1", deadPort());
  EXPECT_FALSE(C.hasValue());
  EXPECT_FALSE(C.message().empty());
}

TEST(ClientTimeout, RetrySucceedsWithoutBurningSpareAttempts) {
  // A reachable listener connects on the first attempt no matter how
  // much retry budget is configured — backoff only runs on failure.
  StallListener L;
  ASSERT_GT(L.Port, 0);
  ClientOptions O;
  O.ConnectAttempts = 5;
  O.ReconnectBaseMs = 10;
  ErrorOr<Client> C = Client::connectWithRetry("127.0.0.1", L.Port, O);
  EXPECT_TRUE(C.hasValue()) << C.message();
  EXPECT_TRUE(C->connected());
}

} // namespace
