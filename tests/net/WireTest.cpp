//===- tests/net/WireTest.cpp - cdvs-wire v1 framing -----------------------===//
//
// The framed protocol in isolation: header layout down to the byte,
// round trips at the size extremes (zero payload, exactly the cap),
// incremental reassembly from a dribbling stream, and the strict-decode
// error taxonomy (bad magic / version / type / reserved / oversized)
// with the parser poisoned afterwards.
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include <gtest/gtest.h>

#include <string>

using namespace cdvs;
using namespace cdvs::net;

namespace {

TEST(Wire, HeaderLayoutIsLittleEndianAndTwentyBytes) {
  FrameHeader H;
  H.Type = FrameType::Request;
  H.Correlation = 0x0102030405060708ull;
  H.PayloadBytes = 0xAABBCCDDu;
  unsigned char B[kFrameHeaderBytes];
  encodeFrameHeader(H, B);

  EXPECT_EQ(B[0], 'C');
  EXPECT_EQ(B[1], 'D');
  EXPECT_EQ(B[2], 'V');
  EXPECT_EQ(B[3], 'S');
  EXPECT_EQ(B[4], kWireVersion);
  EXPECT_EQ(B[5], static_cast<unsigned char>(FrameType::Request));
  EXPECT_EQ(B[6], 0u); // extension block length (none here)
  EXPECT_EQ(B[7], 0u); // reserved
  EXPECT_EQ(B[8], 0x08u); // correlation, little-endian
  EXPECT_EQ(B[15], 0x01u);
  EXPECT_EQ(B[16], 0xDDu); // payload length, little-endian
  EXPECT_EQ(B[19], 0xAAu);

  FrameHeader Out;
  ASSERT_EQ(decodeFrameHeader(B, sizeof(B), ~size_t{0}, Out),
            WireStatus::Ok);
  EXPECT_EQ(Out.Type, FrameType::Request);
  EXPECT_EQ(Out.Correlation, H.Correlation);
  EXPECT_EQ(Out.PayloadBytes, H.PayloadBytes);
}

TEST(Wire, RoundTripsZeroPayloadFrame) {
  std::string Bytes = encodeFrame(FrameType::Ping, 7, "");
  EXPECT_EQ(Bytes.size(), kFrameHeaderBytes);

  FrameParser Parser;
  Parser.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(Parser.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::Ping);
  EXPECT_EQ(F.Correlation, 7u);
  EXPECT_TRUE(F.Payload.empty());
  EXPECT_EQ(Parser.buffered(), 0u);
  EXPECT_EQ(Parser.next(F), FrameParser::Next::NeedMore);
}

TEST(Wire, RoundTripsMaxSizePayloadFrame) {
  const size_t Cap = 4096;
  std::string Payload(Cap, '\0');
  for (size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = static_cast<char>(I * 31 + 7);
  std::string Bytes =
      encodeFrame(FrameType::Response, ~uint64_t{0}, Payload);

  FrameParser Parser(Cap);
  Parser.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(Parser.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::Response);
  EXPECT_EQ(F.Correlation, ~uint64_t{0});
  EXPECT_EQ(F.Payload, Payload); // byte-exact at exactly the cap
}

TEST(Wire, ReassemblesFramesFedOneByteAtATime) {
  std::string Stream = encodeFrame(FrameType::Request, 1, "alpha") +
                       encodeFrame(FrameType::Request, 2, "") +
                       encodeFrame(FrameType::Ping, 3, "bb");
  FrameParser Parser;
  std::vector<Frame> Got;
  for (char C : Stream) {
    Parser.feed(&C, 1);
    Frame F;
    while (Parser.next(F) == FrameParser::Next::Frame)
      Got.push_back(F);
  }
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0].Correlation, 1u);
  EXPECT_EQ(Got[0].Payload, "alpha");
  EXPECT_EQ(Got[1].Correlation, 2u);
  EXPECT_TRUE(Got[1].Payload.empty());
  EXPECT_EQ(Got[2].Type, FrameType::Ping);
  EXPECT_EQ(Got[2].Payload, "bb");
}

TEST(Wire, TruncatedFrameStaysPendingAndIsVisibleAsBufferedBytes) {
  std::string Bytes = encodeFrame(FrameType::Request, 5, "payload");
  FrameParser Parser;
  Parser.feed(Bytes.data(), Bytes.size() - 3);
  Frame F;
  EXPECT_EQ(Parser.next(F), FrameParser::Next::NeedMore);
  // At stream EOF, buffered() > 0 is how the server detects the peer
  // hung up mid-frame.
  EXPECT_GT(Parser.buffered(), 0u);
}

TEST(Wire, RejectsBadMagic) {
  std::string Bytes = encodeFrame(FrameType::Ping, 1, "");
  Bytes[0] = 'X';
  FrameParser Parser;
  Parser.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(Parser.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Parser.error(), WireStatus::BadMagic);
  EXPECT_STREQ(wireStatusName(Parser.error()), "bad_magic");
}

TEST(Wire, RejectsGarbageBeforeAFullHeaderArrives) {
  // A peer that writes junk may never send 20 bytes; the first wrong
  // byte is enough to poison the stream.
  FrameParser Parser;
  Parser.feed("NOT A CDVS FRAME", 16);
  Frame F;
  ASSERT_EQ(Parser.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Parser.error(), WireStatus::BadMagic);

  FrameParser OneByte;
  OneByte.feed("X", 1);
  ASSERT_EQ(OneByte.next(F), FrameParser::Next::Error);
  EXPECT_EQ(OneByte.error(), WireStatus::BadMagic);

  // A short but valid prefix is still just "need more".
  FrameParser Prefix;
  Prefix.feed("CDV", 3);
  EXPECT_EQ(Prefix.next(F), FrameParser::Next::NeedMore);
  std::string Good = encodeFrame(FrameType::Ping, 3, "");
  Prefix.feed(Good.data() + 3, Good.size() - 3);
  ASSERT_EQ(Prefix.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Correlation, 3u);

  // Wrong version/type/reserved also fail as soon as their byte lands.
  FrameParser Version;
  Version.feed("CDVS\x09", 5);
  ASSERT_EQ(Version.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Version.error(), WireStatus::BadVersion);

  FrameParser Type;
  Type.feed("CDVS\x01\x7f", 6);
  ASSERT_EQ(Type.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Type.error(), WireStatus::BadType);

  // Byte 6 is the extension length now (any value is legal); byte 7 is
  // the one that must stay zero.
  FrameParser Reserved;
  Reserved.feed("CDVS\x01\x01\x00\x01", 8);
  ASSERT_EQ(Reserved.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Reserved.error(), WireStatus::BadReserved);
}

TEST(Wire, RejectsBadVersionTypeAndReserved) {
  {
    std::string B = encodeFrame(FrameType::Ping, 1, "");
    B[4] = 9;
    FrameParser P;
    P.feed(B.data(), B.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Error);
    EXPECT_EQ(P.error(), WireStatus::BadVersion);
  }
  {
    std::string B = encodeFrame(FrameType::Ping, 1, "");
    B[5] = 0x7f;
    FrameParser P;
    P.feed(B.data(), B.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Error);
    EXPECT_EQ(P.error(), WireStatus::BadType);
  }
  {
    std::string B = encodeFrame(FrameType::Ping, 1, "");
    B[7] = 1;
    FrameParser P;
    P.feed(B.data(), B.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Error);
    EXPECT_EQ(P.error(), WireStatus::BadReserved);
  }
}

TEST(Wire, RejectsOversizedPayloadFromHeaderAlone) {
  // One byte over the receiver's cap, announced in the header — the
  // payload itself never needs to arrive for the reject.
  FrameHeader H;
  H.Type = FrameType::Request;
  H.Correlation = 9;
  H.PayloadBytes = 1025;
  unsigned char B[kFrameHeaderBytes];
  encodeFrameHeader(H, B);

  FrameParser Parser(1024);
  Parser.feed(reinterpret_cast<const char *>(B), sizeof(B));
  Frame F;
  ASSERT_EQ(Parser.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Parser.error(), WireStatus::Oversized);
  EXPECT_STREQ(wireStatusName(Parser.error()), "too_large");
}

TEST(Wire, ParserIsPoisonedAfterAnError) {
  std::string Bad = encodeFrame(FrameType::Ping, 1, "");
  Bad[0] = 'X';
  std::string Good = encodeFrame(FrameType::Ping, 2, "");
  FrameParser Parser;
  Parser.feed(Bad.data(), Bad.size());
  Parser.feed(Good.data(), Good.size());
  Frame F;
  ASSERT_EQ(Parser.next(F), FrameParser::Next::Error);
  // The good frame behind the error is unreachable by design: the
  // stream cannot be resynchronized.
  EXPECT_EQ(Parser.next(F), FrameParser::Next::Error);
  EXPECT_EQ(Parser.error(), WireStatus::BadMagic);
}

TEST(Wire, RejectPayloadRoundTrips) {
  std::string Payload = encodeReject("too_large", "payload of 2 MiB");
  ErrorOr<RejectInfo> R = decodeReject(Payload);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Code, "too_large");
  EXPECT_EQ(R->Reason, "payload of 2 MiB");

  EXPECT_FALSE(decodeReject("not json").hasValue());
  EXPECT_FALSE(decodeReject("{}").hasValue());
}

TEST(Wire, FrameTypeNamesAreStable) {
  EXPECT_STREQ(frameTypeName(FrameType::Request), "request");
  EXPECT_STREQ(frameTypeName(FrameType::Response), "response");
  EXPECT_STREQ(frameTypeName(FrameType::Reject), "reject");
  EXPECT_STREQ(frameTypeName(FrameType::Ping), "ping");
  EXPECT_STREQ(frameTypeName(FrameType::Pong), "pong");
  EXPECT_STREQ(frameTypeName(FrameType::PeerFetch), "peer_fetch");
  EXPECT_STREQ(frameTypeName(FrameType::PeerData), "peer_data");
  EXPECT_STREQ(frameTypeName(FrameType::StatsFetch), "stats_fetch");
  EXPECT_STREQ(frameTypeName(FrameType::StatsData), "stats_data");
  EXPECT_STREQ(frameTypeName(FrameType::GraphRequest), "graph_request");
  EXPECT_STREQ(frameTypeName(FrameType::GraphResponse), "graph_response");
  EXPECT_TRUE(validFrameType(1));
  EXPECT_TRUE(validFrameType(5));
  EXPECT_TRUE(validFrameType(6));
  EXPECT_TRUE(validFrameType(7));
  EXPECT_TRUE(validFrameType(8));
  EXPECT_TRUE(validFrameType(9));
  EXPECT_TRUE(validFrameType(10));
  EXPECT_TRUE(validFrameType(11));
  EXPECT_FALSE(validFrameType(0));
  EXPECT_FALSE(validFrameType(12));
}

TEST(Wire, TraceContextRoundTripsThroughTheExtensionBlock) {
  TraceContext T;
  T.TraceHi = 0x0123456789abcdefull;
  T.TraceLo = 0xfedcba9876543210ull;
  T.ParentSpan = 0x1122334455667788ull;
  T.Sampled = true;
  std::string Bytes = encodeFrame(FrameType::Request, 11, "{}", &T);
  EXPECT_EQ(Bytes.size(),
            kFrameHeaderBytes + 2 + kExtTraceBytes + 2);

  FrameParser P;
  P.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::Request);
  EXPECT_EQ(F.Payload, "{}");
  ASSERT_TRUE(F.HasTrace);
  EXPECT_EQ(F.Trace.TraceHi, T.TraceHi);
  EXPECT_EQ(F.Trace.TraceLo, T.TraceLo);
  EXPECT_EQ(F.Trace.ParentSpan, T.ParentSpan);
  EXPECT_TRUE(F.Trace.Sampled);

  // The parser resets the trace fields between frames: a plain frame
  // after a traced one must not inherit the context.
  std::string Plain = encodeFrame(FrameType::Request, 12, "{}");
  P.feed(Plain.data(), Plain.size());
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  EXPECT_FALSE(F.HasTrace);
}

TEST(Wire, UntracedFramesAreByteIdenticalToTheOldEncoding) {
  // Backward compatibility both ways: a null or invalid (zero trace id)
  // context must not grow the frame, so old receivers keep parsing and
  // sampling-off traffic pays nothing.
  std::string Old = encodeFrame(FrameType::Request, 5, "abc");
  EXPECT_EQ(Old, encodeFrame(FrameType::Request, 5, "abc", nullptr));
  TraceContext Zero;
  EXPECT_EQ(Old, encodeFrame(FrameType::Request, 5, "abc", &Zero));
  EXPECT_EQ(Old.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(Old[6], 0); // no extension block
}

TEST(Wire, UnknownExtensionRecordsAreSkipped) {
  // A newer sender may emit extension types this build does not know;
  // the block walk skips them and still finds the trace record behind.
  TraceContext T;
  T.TraceHi = 1;
  std::string Traced = encodeFrame(FrameType::Ping, 9, "", &T);
  std::string TraceRecord =
      Traced.substr(kFrameHeaderBytes, 2 + kExtTraceBytes);

  std::string Ext;
  Ext += static_cast<char>(0x7f); // unknown type
  Ext += static_cast<char>(3);    // three opaque bytes
  Ext += "xyz";
  Ext += TraceRecord;

  FrameHeader H;
  H.Type = FrameType::Ping;
  H.Correlation = 9;
  H.ExtBytes = static_cast<uint8_t>(Ext.size());
  H.PayloadBytes = 0;
  unsigned char B[kFrameHeaderBytes];
  encodeFrameHeader(H, B);
  std::string Bytes(reinterpret_cast<const char *>(B), sizeof(B));
  Bytes += Ext;

  FrameParser P;
  P.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  ASSERT_TRUE(F.HasTrace);
  EXPECT_EQ(F.Trace.TraceHi, 1u);

  // An unknown record alone parses as an untraced frame.
  H.ExtBytes = 5;
  encodeFrameHeader(H, B);
  std::string OnlyUnknown(reinterpret_cast<const char *>(B), sizeof(B));
  OnlyUnknown += static_cast<char>(0x7f);
  OnlyUnknown += static_cast<char>(3);
  OnlyUnknown += "xyz";
  FrameParser P2;
  P2.feed(OnlyUnknown.data(), OnlyUnknown.size());
  ASSERT_EQ(P2.next(F), FrameParser::Next::Frame);
  EXPECT_FALSE(F.HasTrace);
}

TEST(Wire, MalformedExtensionBlocksFailStrictDecode) {
  // A record that promises more bytes than the block holds.
  {
    FrameHeader H;
    H.Type = FrameType::Ping;
    H.Correlation = 1;
    H.ExtBytes = 2;
    unsigned char B[kFrameHeaderBytes];
    encodeFrameHeader(H, B);
    std::string Bytes(reinterpret_cast<const char *>(B), sizeof(B));
    Bytes += static_cast<char>(kExtTrace);
    Bytes += static_cast<char>(25); // but zero data bytes follow
    FrameParser P;
    P.feed(Bytes.data(), Bytes.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Error);
    EXPECT_EQ(P.error(), WireStatus::BadExtension);
    EXPECT_STREQ(wireStatusName(P.error()), "bad_extension");
  }
  // A trace record with the wrong length for its known type.
  {
    FrameHeader H;
    H.Type = FrameType::Ping;
    H.Correlation = 1;
    H.ExtBytes = 4;
    unsigned char B[kFrameHeaderBytes];
    encodeFrameHeader(H, B);
    std::string Bytes(reinterpret_cast<const char *>(B), sizeof(B));
    Bytes += static_cast<char>(kExtTrace);
    Bytes += static_cast<char>(2);
    Bytes += "ab";
    FrameParser P;
    P.feed(Bytes.data(), Bytes.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Error);
    EXPECT_EQ(P.error(), WireStatus::BadExtension);
  }
  // A dangling type byte with no length.
  {
    FrameHeader H;
    H.Type = FrameType::Ping;
    H.Correlation = 1;
    H.ExtBytes = 1;
    unsigned char B[kFrameHeaderBytes];
    encodeFrameHeader(H, B);
    std::string Bytes(reinterpret_cast<const char *>(B), sizeof(B));
    Bytes += static_cast<char>(kExtTrace);
    FrameParser P;
    P.feed(Bytes.data(), Bytes.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Error);
    EXPECT_EQ(P.error(), WireStatus::BadExtension);
  }
}

TEST(Wire, StatsFrameRoundTrip) {
  std::string Bytes = encodeFrame(FrameType::StatsFetch, 77, "");
  FrameParser P;
  P.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::StatsFetch);
  Bytes = encodeFrame(FrameType::StatsData, 77, "{\"role\":\"server\"}");
  P.feed(Bytes.data(), Bytes.size());
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::StatsData);
  EXPECT_EQ(F.Payload, "{\"role\":\"server\"}");
}

TEST(Wire, PeerFrameRoundTrip) {
  std::string Bytes = encodeFrame(
      FrameType::PeerFetch, 42,
      "{\"fingerprint\":\"00112233445566778899aabbccddeeff\"}");
  FrameParser P;
  P.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::PeerFetch);
  EXPECT_EQ(F.Correlation, 42u);
  Bytes = encodeFrame(FrameType::PeerData, 42, "{\"found\":false}");
  P.feed(Bytes.data(), Bytes.size());
  ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
  EXPECT_EQ(F.Type, FrameType::PeerData);
  EXPECT_EQ(F.Payload, "{\"found\":false}");
}

TEST(Wire, GraphFrameTypesAreFirstClassCitizens) {
  // The task-graph pair extends the type space contiguously: 10 and 11
  // are valid, what follows is not (old peers reject graph frames as
  // BadType rather than misparsing them — that asymmetry is the
  // version-negotiation story, so pin the raw values).
  EXPECT_EQ(static_cast<uint8_t>(FrameType::GraphRequest), 10);
  EXPECT_EQ(static_cast<uint8_t>(FrameType::GraphResponse), 11);
  EXPECT_TRUE(validFrameType(10));
  EXPECT_TRUE(validFrameType(11));
  EXPECT_FALSE(validFrameType(12));
  EXPECT_STREQ(frameTypeName(FrameType::GraphRequest), "graph_request");
  EXPECT_STREQ(frameTypeName(FrameType::GraphResponse), "graph_response");
}

TEST(Wire, GraphFramesRoundTripLikeAnyOther) {
  for (FrameType T : {FrameType::GraphRequest, FrameType::GraphResponse}) {
    std::string B = encodeFrame(T, 77, "{\"graph\":{}}");
    FrameParser P;
    P.feed(B.data(), B.size());
    Frame F;
    ASSERT_EQ(P.next(F), FrameParser::Next::Frame);
    EXPECT_EQ(F.Type, T);
    EXPECT_EQ(F.Correlation, 77u);
    EXPECT_EQ(F.Payload, "{\"graph\":{}}");
    EXPECT_EQ(P.next(F), FrameParser::Next::NeedMore);
  }
}

} // namespace
