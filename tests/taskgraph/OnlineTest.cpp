//===- tests/taskgraph/OnlineTest.cpp - slack reclamation contracts --------===//
//
// runOnline against synthetic instances whose reclamation arithmetic is
// checkable by hand: early finishes turn into slower committed modes and
// never into more profiled energy than the static plan; overruns trip
// the forced-accept branch of the monotonicity guard; Replan=false is a
// faithful static execution. The determinism pin (same graph + same
// hidden actual times => byte-identical plan text and ReplanLog, even
// when many runs race on different threads) is the satellite-3 contract
// that the service's --reactors sweep relies on, and runs under TSan in
// the CI gate.
//
//===----------------------------------------------------------------------===//

#include "taskgraph/Online.h"

#include "taskgraph/PlanIO.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace cdvs;
using namespace cdvs::taskgraph;

namespace {

const std::vector<double> kTimes = {4.0, 2.0, 1.0};
const std::vector<double> kEnergies = {1.0, 2.0, 4.0};

TaskGraph chain2(double HeadFactor) {
  TaskGraph G;
  G.Name = "chain2";
  G.Nodes = {{"head", "gsm", "", HeadFactor}, {"tail", "gsm", "", 1.0}};
  G.Edges = {{0, 1}};
  return G;
}

TaskCosts uniformCosts(int NumTasks) {
  TaskCosts C;
  C.TimeAtMode.assign(NumTasks, kTimes);
  C.EnergyAtMode.assign(NumTasks, kEnergies);
  return C;
}

OnlineOptions deterministic(bool Replan = true) {
  OnlineOptions O;
  O.Replan = Replan;
  O.Planner.Milp.NumThreads = 1;
  return O;
}

TEST(OnlineReclaim, EarlyFinishReclaimsSlackIntoACheaperMode) {
  // Static plan at deadline 5 is modes (1,1): energy 4, head finishes
  // at 2. The head actually halves its time, finishing at 1 — the tail
  // now has 4 seconds and re-plans down to the slowest mode (energy 1),
  // committing 2 + 1 = 3 joules against the static 4.
  OnlineResult R =
      runOnline(chain2(0.5), uniformCosts(2), 5.0, deterministic());
  ASSERT_TRUE(R.Feasible);
  EXPECT_DOUBLE_EQ(R.StaticEnergyJoules, 4.0);
  EXPECT_EQ(R.Replans, 1);
  EXPECT_EQ(R.ReplansAccepted, 1);
  ASSERT_EQ(R.Tasks.size(), 2u);
  EXPECT_EQ(R.Tasks[0].Mode, 1);
  EXPECT_DOUBLE_EQ(R.Tasks[0].ActualSeconds, 1.0);
  EXPECT_EQ(R.Tasks[1].Mode, 0);
  EXPECT_DOUBLE_EQ(R.Tasks[1].Start, 1.0);
  EXPECT_DOUBLE_EQ(R.Tasks[1].Finish, 5.0);
  EXPECT_DOUBLE_EQ(R.PlannedEnergyJoules, 3.0);
  EXPECT_DOUBLE_EQ(R.MakespanSeconds, 5.0);
  EXPECT_TRUE(R.DeadlineMet);
  EXPECT_FALSE(R.ReplanLog.empty());
}

TEST(OnlineReclaim, OnlineNeverExceedsStaticWhenNoTaskOverruns) {
  // The headline inequality, over a factor sweep including exactly-on-
  // profile (where the guard must hold with equality at worst).
  for (double F : {1.0, 0.9, 0.75, 0.5, 0.25}) {
    OnlineResult R =
        runOnline(chain2(F), uniformCosts(2), 5.0, deterministic());
    ASSERT_TRUE(R.Feasible) << "factor " << F;
    EXPECT_LE(R.PlannedEnergyJoules, R.StaticEnergyJoules)
        << "factor " << F;
    EXPECT_TRUE(R.DeadlineMet) << "factor " << F;
  }
}

TEST(OnlineReclaim, OverrunTripsTheForcedAcceptBranch) {
  // Static modes at deadline 4 are (1,1), head planned to finish at 2.
  // A 1.5x overrun lands it at 3, leaving 1 second: the incumbent tail
  // mode (time 2) is now deadline-infeasible, so the guard must accept
  // the costlier fastest mode instead of keeping the incumbent.
  OnlineResult R =
      runOnline(chain2(1.5), uniformCosts(2), 4.0, deterministic());
  ASSERT_TRUE(R.Feasible);
  EXPECT_DOUBLE_EQ(R.StaticEnergyJoules, 4.0);
  EXPECT_EQ(R.Tasks[1].Mode, 2);
  EXPECT_DOUBLE_EQ(R.Tasks[1].Start, 3.0);
  EXPECT_DOUBLE_EQ(R.Tasks[1].Finish, 4.0);
  // Paying for lateness: committed energy exceeds static, deadline met.
  EXPECT_GT(R.PlannedEnergyJoules, R.StaticEnergyJoules);
  EXPECT_TRUE(R.DeadlineMet);
  EXPECT_EQ(R.ReplansAccepted, 1);
}

TEST(OnlineReclaim, ReplanOffExecutesTheStaticPlanVerbatim) {
  OnlineResult R =
      runOnline(chain2(0.5), uniformCosts(2), 5.0, deterministic(false));
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Replans, 0);
  EXPECT_EQ(R.ReplansAccepted, 0);
  EXPECT_TRUE(R.ReplanLog.empty());
  // Modes stay static; only the timeline reflects the early finish.
  EXPECT_EQ(R.Tasks[0].Mode, R.StaticPlan.Tasks[0].Mode);
  EXPECT_EQ(R.Tasks[1].Mode, R.StaticPlan.Tasks[1].Mode);
  EXPECT_DOUBLE_EQ(R.PlannedEnergyJoules, R.StaticEnergyJoules);
  EXPECT_DOUBLE_EQ(R.Tasks[1].Start, 1.0);
}

TEST(OnlineReclaim, InfeasibleDeadlineReportsCleanly) {
  OnlineResult R =
      runOnline(chain2(1.0), uniformCosts(2), 1.5, deterministic());
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.Replans, 0);
}

TEST(OnlineReclaim, RerunsAreByteIdenticalIncludingTheReplanLog) {
  // Satellite 3, single-threaded half: equal inputs give equal bytes.
  TaskGraph G = chain2(0.5);
  TaskCosts C = uniformCosts(2);
  OnlineResult First = runOnline(G, C, 5.0, deterministic());
  ASSERT_TRUE(First.Feasible);
  std::string FirstText = writeTaskPlan(G, First);
  for (int I = 0; I < 3; ++I) {
    OnlineResult Again = runOnline(G, C, 5.0, deterministic());
    EXPECT_EQ(writeTaskPlan(G, Again), FirstText);
    EXPECT_EQ(Again.ReplanLog, First.ReplanLog);
  }
}

TEST(OnlineReclaim, ConcurrentRunsCannotPerturbEachOther) {
  // Satellite 3, concurrent half: the service solves graph jobs from N
  // worker threads behind N reactors, so runOnline must be free of
  // hidden shared state — many simultaneous runs of the same instance
  // (this test's TSan target) and of different instances must each
  // produce the bytes their inputs dictate.
  TaskGraph Early = chain2(0.5);
  TaskGraph Late = chain2(1.5);
  TaskCosts C = uniformCosts(2);
  std::string EarlyText = writeTaskPlan(Early, runOnline(Early, C, 5.0,
                                                         deterministic()));
  std::string LateText = writeTaskPlan(Late, runOnline(Late, C, 4.0,
                                                       deterministic()));

  constexpr int kThreads = 8;
  std::vector<std::string> Got(kThreads);
  std::vector<std::thread> Pool;
  for (int T = 0; T < kThreads; ++T)
    Pool.emplace_back([&, T] {
      const TaskGraph &G = (T % 2 == 0) ? Early : Late;
      double Deadline = (T % 2 == 0) ? 5.0 : 4.0;
      Got[T] = writeTaskPlan(G, runOnline(G, C, Deadline, deterministic()));
    });
  for (std::thread &Th : Pool)
    Th.join();
  for (int T = 0; T < kThreads; ++T)
    EXPECT_EQ(Got[T], (T % 2 == 0) ? EarlyText : LateText) << "thread " << T;
}

} // namespace
