//===- tests/taskgraph/CheckerTest.cpp - task-plan legality audit ----------===//
//
// verify::checkTaskPlan as an adversary: clean online runs (replanning
// and static, reclaiming and overrunning) must audit green, and every
// tampered claim — mode index, precedence on the actual timeline,
// scaled duration, deadline flag, energy totals, replan bookkeeping —
// must draw an error naming the task or field, because the service
// trusts this pass to gate what it serves under --verify=strict.
//
//===----------------------------------------------------------------------===//

#include "verify/TaskGraphChecker.h"

#include "taskgraph/Online.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cdvs;
using namespace cdvs::taskgraph;

namespace {

TaskGraph chain2(double HeadFactor) {
  TaskGraph G;
  G.Name = "chain2";
  G.Nodes = {{"head", "gsm", "", HeadFactor}, {"tail", "gsm", "", 1.0}};
  G.Edges = {{0, 1}};
  return G;
}

TaskCosts uniformCosts(int NumTasks) {
  TaskCosts C;
  C.TimeAtMode.assign(NumTasks, {4.0, 2.0, 1.0});
  C.EnergyAtMode.assign(NumTasks, {1.0, 2.0, 4.0});
  return C;
}

OnlineResult solved(const TaskGraph &G, double Deadline, bool Replan = true) {
  OnlineOptions O;
  O.Replan = Replan;
  O.Planner.Milp.NumThreads = 1;
  return runOnline(G, uniformCosts(static_cast<int>(G.Nodes.size())),
                   Deadline, O);
}

TEST(TaskPlanChecker, CleanRunsAuditGreen) {
  struct Case {
    double Factor, Deadline;
    bool Replan;
  } Cases[] = {
      {0.5, 5.0, true},  // reclaiming
      {1.0, 5.0, true},  // exactly on profile
      {1.5, 4.0, true},  // overrun, forced accept
      {0.5, 5.0, false}, // static execution
  };
  for (const Case &C : Cases) {
    TaskGraph G = chain2(C.Factor);
    OnlineResult R = solved(G, C.Deadline, C.Replan);
    ASSERT_TRUE(R.Feasible);
    verify::TaskGraphCheck Facts;
    verify::Report Rep =
        verify::checkTaskPlan(G, uniformCosts(2), C.Deadline, R, 1e-6, &Facts);
    EXPECT_TRUE(Rep.ok()) << "factor " << C.Factor << ": " << Rep.render();
    EXPECT_EQ(Facts.TasksChecked, 2);
    EXPECT_NEAR(Facts.PlannedEnergyJoules, R.PlannedEnergyJoules, 1e-12);
    EXPECT_NEAR(Facts.MakespanSeconds, R.MakespanSeconds, 1e-12);
  }
}

TEST(TaskPlanChecker, CatchesAnIllegalModeIndex) {
  TaskGraph G = chain2(0.5);
  OnlineResult R = solved(G, 5.0);
  R.Tasks[1].Mode = 7;
  EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
  R.Tasks[1].Mode = -1;
  EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok())
      << "every node needs a committed mode in an executed plan";
}

TEST(TaskPlanChecker, CatchesAPrecedenceViolationOnTheActualTimeline) {
  TaskGraph G = chain2(0.5);
  OnlineResult R = solved(G, 5.0);
  // Claim the tail started before the head's actual finish.
  double Shift = R.Tasks[1].Start - R.Tasks[0].Finish + 0.5;
  R.Tasks[1].Start -= Shift;
  R.Tasks[1].Finish -= Shift;
  verify::Report Rep = verify::checkTaskPlan(G, uniformCosts(2), 5.0, R);
  ASSERT_FALSE(Rep.ok());
  EXPECT_NE(Rep.firstError().find("tail"), std::string::npos)
      << Rep.firstError();
}

TEST(TaskPlanChecker, CatchesAMisclaimedDuration) {
  TaskGraph G = chain2(0.5);
  OnlineResult R = solved(G, 5.0);
  // The head's actual duration must be profiled * 0.5; stretch the
  // claim without moving anything else.
  R.Tasks[0].ActualSeconds *= 1.01;
  EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
}

TEST(TaskPlanChecker, CatchesEnergyAndDeadlineMisclaims) {
  TaskGraph G = chain2(0.5);
  {
    OnlineResult R = solved(G, 5.0);
    R.PlannedEnergyJoules += 0.25;
    EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
  }
  {
    OnlineResult R = solved(G, 5.0);
    R.ActualEnergyJoules *= 0.5;
    EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
  }
  {
    OnlineResult R = solved(G, 5.0);
    R.DeadlineMet = false; // met in fact, misreported
    EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
  }
  {
    // Audit against a tighter deadline than the plan was solved for.
    OnlineResult R = solved(G, 5.0);
    EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 2.0, R).ok());
  }
}

TEST(TaskPlanChecker, CatchesReplanBookkeepingLies) {
  TaskGraph G = chain2(0.5);
  OnlineResult R = solved(G, 5.0);
  R.ReplansAccepted = R.Replans + 1;
  EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
}

TEST(TaskPlanChecker, RejectsAPlanForTheWrongGraphShape) {
  TaskGraph G = chain2(0.5);
  OnlineResult R = solved(G, 5.0);
  R.Tasks.pop_back();
  EXPECT_FALSE(verify::checkTaskPlan(G, uniformCosts(2), 5.0, R).ok());
}

} // namespace
