//===- tests/taskgraph/PlanIOTest.cpp - cdvs-taskplan v1 round trips -------===//
//
// The canonical text format: write(read(write(R))) == write(R) with
// every field surviving (%.17g exactness), task names recorded in node
// order, and parse errors that name the offending line. The service
// cache and the determinism gates compare plans as strings, so byte
// stability is the contract, not a nicety.
//
//===----------------------------------------------------------------------===//

#include "taskgraph/PlanIO.h"

#include "taskgraph/Online.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cdvs;
using namespace cdvs::taskgraph;

namespace {

TaskGraph chain2(double HeadFactor = 0.5) {
  TaskGraph G;
  G.Name = "chain2";
  G.Nodes = {{"head", "gsm", "", HeadFactor}, {"tail", "gsm", "", 1.0}};
  G.Edges = {{0, 1}};
  return G;
}

OnlineResult solvedChain() {
  TaskCosts C;
  C.TimeAtMode.assign(2, {4.0, 2.0, 1.0});
  C.EnergyAtMode.assign(2, {1.0, 2.0, 4.0});
  OnlineOptions O;
  O.Planner.Milp.NumThreads = 1;
  return runOnline(chain2(), C, 5.0, O);
}

TEST(TaskPlanIO, WriteReadWriteIsAFixedPoint) {
  TaskGraph G = chain2();
  OnlineResult R = solvedChain();
  ASSERT_TRUE(R.Feasible);
  std::string Text = writeTaskPlan(G, R);
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.rfind("cdvs-taskplan v1\n", 0), 0u);

  std::vector<std::string> Names;
  ErrorOr<OnlineResult> Back = readTaskPlan(Text, &Names);
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Names, (std::vector<std::string>{"head", "tail"}));
  EXPECT_EQ(writeTaskPlan(G, *Back), Text);
}

TEST(TaskPlanIO, EveryFieldSurvivesTheRoundTrip) {
  OnlineResult R = solvedChain();
  ErrorOr<OnlineResult> Back = readTaskPlan(writeTaskPlan(chain2(), R));
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Back->Feasible, R.Feasible);
  EXPECT_EQ(Back->DeadlineSeconds, R.DeadlineSeconds);
  EXPECT_EQ(Back->StaticEnergyJoules, R.StaticEnergyJoules);
  EXPECT_EQ(Back->PlannedEnergyJoules, R.PlannedEnergyJoules);
  EXPECT_EQ(Back->ActualEnergyJoules, R.ActualEnergyJoules);
  EXPECT_EQ(Back->MakespanSeconds, R.MakespanSeconds);
  EXPECT_EQ(Back->DeadlineMet, R.DeadlineMet);
  EXPECT_EQ(Back->Replans, R.Replans);
  EXPECT_EQ(Back->ReplansAccepted, R.ReplansAccepted);
  EXPECT_EQ(Back->ReplanLog, R.ReplanLog);
  ASSERT_EQ(Back->Tasks.size(), R.Tasks.size());
  for (size_t I = 0; I < R.Tasks.size(); ++I) {
    EXPECT_EQ(Back->Tasks[I].Mode, R.Tasks[I].Mode) << I;
    EXPECT_EQ(Back->Tasks[I].Start, R.Tasks[I].Start) << I;
    EXPECT_EQ(Back->Tasks[I].Finish, R.Tasks[I].Finish) << I;
    EXPECT_EQ(Back->Tasks[I].ActualSeconds, R.Tasks[I].ActualSeconds) << I;
    EXPECT_EQ(Back->Tasks[I].PlannedEnergyJoules,
              R.Tasks[I].PlannedEnergyJoules)
        << I;
  }
}

TEST(TaskPlanIO, ParseErrorsNameTheOffense) {
  EXPECT_FALSE(readTaskPlan("").hasValue());
  EXPECT_FALSE(readTaskPlan("cdvs-schedule v1\n").hasValue())
      << "the single-program format must not pass as a task plan";

  std::string Text = writeTaskPlan(chain2(), solvedChain());
  { // truncation loses the trailer
    ErrorOr<OnlineResult> R = readTaskPlan(Text.substr(0, Text.size() / 2));
    EXPECT_FALSE(R.hasValue());
  }
  { // corrupting a numeric field is caught, not absorbed
    std::string Bad = Text;
    size_t Pos = Bad.find("deadline ");
    ASSERT_NE(Pos, std::string::npos);
    Bad.replace(Pos, 9, "deadline x");
    EXPECT_FALSE(readTaskPlan(Bad).hasValue());
  }
}

TEST(TaskPlanIO, FileWriterPersistsVerbatim) {
  TaskGraph G = chain2();
  OnlineResult R = solvedChain();
  std::string Text = writeTaskPlan(G, R);
  std::string Path = testing::TempDir() + "planio_roundtrip.taskplan";
  ErrorOr<bool> W = writeTaskPlanFile(Path, G, R);
  ASSERT_TRUE(W.hasValue()) << W.message();
  FILE *F = fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string OnDisk(Text.size() + 64, '\0');
  size_t N = fread(&OnDisk[0], 1, OnDisk.size(), F);
  fclose(F);
  remove(Path.c_str());
  OnDisk.resize(N);
  EXPECT_EQ(OnDisk, Text);

  EXPECT_FALSE(
      writeTaskPlanFile("/nonexistent-dir/x.taskplan", G, R).hasValue());
}

} // namespace
