//===- tests/taskgraph/PlannerTest.cpp - interval MILP contracts -----------===//
//
// planTaskGraph on small synthetic instances where the optimal discrete
// assignment can be enumerated by hand: precedence and deadline rows
// bind, energy is the exact argmin over mode combinations, left-shifted
// starts never idle, and the Plannable/Release contract the online loop
// builds on holds. Synthetic costs (no workload profiling) keep every
// case sub-millisecond.
//
//===----------------------------------------------------------------------===//

#include "taskgraph/Planner.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cdvs;
using namespace cdvs::taskgraph;

namespace {

/// Shared 3-mode table: mode 0 slowest/cheapest, mode 2 fastest/dearest
/// (the Profile::TotalTimeAtMode orientation).
const std::vector<double> kTimes = {4.0, 2.0, 1.0};
const std::vector<double> kEnergies = {1.0, 2.0, 4.0};

TaskGraph chain2() {
  TaskGraph G;
  G.Name = "chain2";
  G.Nodes = {{"head", "gsm", "", 1.0}, {"tail", "gsm", "", 1.0}};
  G.Edges = {{0, 1}};
  return G;
}

TaskCosts uniformCosts(int NumTasks) {
  TaskCosts C;
  C.TimeAtMode.assign(NumTasks, kTimes);
  C.EnergyAtMode.assign(NumTasks, kEnergies);
  return C;
}

PlannerOptions deterministic() {
  PlannerOptions O;
  O.Milp.NumThreads = 1;
  return O;
}

TEST(TaskPlanner, LooseDeadlineRunsEverythingSlowest) {
  TaskGraph G = chain2();
  TaskPlan P = planTaskGraph(G, uniformCosts(2), 8.0, deterministic());
  ASSERT_TRUE(P.Feasible);
  EXPECT_EQ(P.Status, MilpStatus::Optimal);
  ASSERT_EQ(P.Tasks.size(), 2u);
  EXPECT_EQ(P.Tasks[0].Mode, 0);
  EXPECT_EQ(P.Tasks[1].Mode, 0);
  EXPECT_DOUBLE_EQ(P.PlannedEnergyJoules, 2.0);
  // Left-shift: head starts at 0, tail starts the instant head ends.
  EXPECT_DOUBLE_EQ(P.Tasks[0].Start, 0.0);
  EXPECT_DOUBLE_EQ(P.Tasks[0].Finish, 4.0);
  EXPECT_DOUBLE_EQ(P.Tasks[1].Start, 4.0);
  EXPECT_DOUBLE_EQ(P.Tasks[1].Finish, 8.0);
  EXPECT_DOUBLE_EQ(P.MakespanSeconds, 8.0);
}

TEST(TaskPlanner, TightDeadlinePicksTheExactArgmin) {
  // Deadline 5 over {4,2,1}x{4,2,1}: feasible sums are (4,1),(2,2),
  // (2,1),(1,4),(1,2),(1,1) with energies 5,4,6,5,6,8 — argmin is
  // mode (1,1) at energy 4.
  TaskGraph G = chain2();
  TaskPlan P = planTaskGraph(G, uniformCosts(2), 5.0, deterministic());
  ASSERT_TRUE(P.Feasible);
  EXPECT_EQ(P.Tasks[0].Mode, 1);
  EXPECT_EQ(P.Tasks[1].Mode, 1);
  EXPECT_DOUBLE_EQ(P.PlannedEnergyJoules, 4.0);
  EXPECT_DOUBLE_EQ(P.MakespanSeconds, 4.0);
}

TEST(TaskPlanner, SubFastestDeadlineIsInfeasible) {
  TaskGraph G = chain2();
  TaskPlan P = planTaskGraph(G, uniformCosts(2), 1.9, deterministic());
  EXPECT_FALSE(P.Feasible);
  EXPECT_EQ(P.Status, MilpStatus::Infeasible);
}

TEST(TaskPlanner, EnergyIsMonotoneInTheDeadline) {
  TaskGraph G = chain2();
  TaskCosts C = uniformCosts(2);
  double Last = -1.0;
  for (double D : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0}) {
    TaskPlan P = planTaskGraph(G, C, D, deterministic());
    ASSERT_TRUE(P.Feasible) << "deadline " << D;
    if (Last >= 0.0)
      EXPECT_LE(P.PlannedEnergyJoules, Last) << "deadline " << D;
    Last = P.PlannedEnergyJoules;
  }
}

TEST(TaskPlanner, ParallelBranchesScaleIndependently) {
  // fork: a -> {b, c}; deadline 8. The chain through either branch is
  // 2 tasks, so both branches behave like chain2 at deadline 8 — all
  // slowest — while the sibling does not consume the other's time.
  TaskGraph G;
  G.Name = "fork3";
  G.Nodes = {{"a", "gsm", "", 1.0},
             {"b", "gsm", "", 1.0},
             {"c", "gsm", "", 1.0}};
  G.Edges = {{0, 1}, {0, 2}};
  TaskPlan P = planTaskGraph(G, uniformCosts(3), 8.0, deterministic());
  ASSERT_TRUE(P.Feasible);
  EXPECT_EQ(P.Tasks[0].Mode, 0);
  EXPECT_EQ(P.Tasks[1].Mode, 0);
  EXPECT_EQ(P.Tasks[2].Mode, 0);
  EXPECT_DOUBLE_EQ(P.PlannedEnergyJoules, 3.0);
  // Both children start the instant the parent finishes.
  EXPECT_DOUBLE_EQ(P.Tasks[1].Start, 4.0);
  EXPECT_DOUBLE_EQ(P.Tasks[2].Start, 4.0);
  EXPECT_DOUBLE_EQ(P.MakespanSeconds, 8.0);
}

TEST(TaskPlanner, PlannableSubsetHonorsReleases) {
  // Re-plan shape: head already ran (not plannable) and released the
  // tail at t=5 with deadline 9 — exactly 4 seconds of room, so the
  // tail may now take the slowest mode.
  TaskGraph G = chain2();
  std::vector<char> Plannable = {0, 1};
  std::vector<double> Release = {0.0, 5.0};
  TaskPlan P = planTaskGraph(G, uniformCosts(2), 9.0, deterministic(),
                             Plannable, Release);
  ASSERT_TRUE(P.Feasible);
  EXPECT_EQ(P.Tasks[0].Mode, -1) << "unplanned tasks keep the -1 sentinel";
  EXPECT_EQ(P.Tasks[1].Mode, 0);
  EXPECT_DOUBLE_EQ(P.Tasks[1].Start, 5.0);
  EXPECT_DOUBLE_EQ(P.Tasks[1].Finish, 9.0);
  // Only planned tasks count toward the plan's energy.
  EXPECT_DOUBLE_EQ(P.PlannedEnergyJoules, 1.0);

  // One second less room and the slowest mode no longer fits.
  TaskPlan Q = planTaskGraph(G, uniformCosts(2), 8.0, deterministic(),
                             Plannable, Release);
  ASSERT_TRUE(Q.Feasible);
  EXPECT_EQ(Q.Tasks[1].Mode, 1);
}

TEST(TaskPlanner, CriticalPathBoundsMatchHandComputation) {
  TaskGraph G = chain2();
  TaskCosts C = uniformCosts(2);
  EXPECT_DOUBLE_EQ(criticalPathSeconds(G, C, -1), 2.0); // all-fastest
  EXPECT_DOUBLE_EQ(criticalPathSeconds(G, C, 0), 8.0);  // all-slowest
  // The all-fastest critical path is the feasibility frontier.
  EXPECT_TRUE(planTaskGraph(G, C, 2.0, deterministic()).Feasible);
  EXPECT_FALSE(planTaskGraph(G, C, 1.99, deterministic()).Feasible);
}

} // namespace
