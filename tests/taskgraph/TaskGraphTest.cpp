//===- tests/taskgraph/TaskGraphTest.cpp - DAG model contracts -------------===//
//
// The TaskGraph value type: structural validation catches every malformed
// shape with a named diagnostic, topoOrder is the one canonical tie-break
// every consumer shares, and the content fingerprint moves exactly when
// the instance changes. The canned generator set is pinned here too since
// tests, dvsd, dvs-loadgen, and bench all consume it.
//
//===----------------------------------------------------------------------===//

#include "taskgraph/TaskGraph.h"

#include "taskgraph/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace cdvs;
using namespace cdvs::taskgraph;

namespace {

/// diamond: a -> {b, c} -> d
TaskGraph diamond() {
  TaskGraph G;
  G.Name = "diamond";
  G.Nodes = {{"a", "gsm", "", 1.0},
             {"b", "adpcm", "", 1.0},
             {"c", "gsm", "", 1.0},
             {"d", "adpcm", "", 1.0}};
  G.Edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  G.DeadlineSeconds = 1.0;
  return G;
}

TEST(TaskGraphModel, ValidGraphValidates) {
  ErrorOr<bool> R = validateGraph(diamond());
  EXPECT_TRUE(R.hasValue()) << R.message();
}

TEST(TaskGraphModel, RejectsStructuralViolations) {
  { // empty node list
    TaskGraph G;
    G.Name = "empty";
    EXPECT_FALSE(validateGraph(G).hasValue());
  }
  { // duplicate names
    TaskGraph G = diamond();
    G.Nodes[2].Name = "a";
    ErrorOr<bool> R = validateGraph(G);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.message().find("a"), std::string::npos) << R.message();
  }
  { // empty name
    TaskGraph G = diamond();
    G.Nodes[1].Name = "";
    EXPECT_FALSE(validateGraph(G).hasValue());
  }
  { // out-of-range edge endpoint
    TaskGraph G = diamond();
    G.Edges.push_back({3, 4});
    EXPECT_FALSE(validateGraph(G).hasValue());
  }
  { // self edge
    TaskGraph G = diamond();
    G.Edges.push_back({2, 2});
    EXPECT_FALSE(validateGraph(G).hasValue());
  }
  { // duplicate edge
    TaskGraph G = diamond();
    G.Edges.push_back({0, 1});
    EXPECT_FALSE(validateGraph(G).hasValue());
  }
  { // non-positive actual factor
    TaskGraph G = diamond();
    G.Nodes[0].ActualFactor = 0.0;
    EXPECT_FALSE(validateGraph(G).hasValue());
  }
  { // cycle
    TaskGraph G = diamond();
    G.Edges.push_back({3, 0});
    ErrorOr<bool> R = validateGraph(G);
    ASSERT_FALSE(R.hasValue());
    EXPECT_NE(R.message().find("cycle"), std::string::npos) << R.message();
  }
}

TEST(TaskGraphModel, TopoOrderIsCanonicalSmallestIndexFirst) {
  // Two sources (2 and 0 by construction order) must come out 0 first:
  // Kahn's queue takes the smallest ready index.
  TaskGraph G;
  G.Name = "two-sources";
  G.Nodes = {{"s0", "gsm", "", 1.0},
             {"mid", "gsm", "", 1.0},
             {"s1", "gsm", "", 1.0},
             {"sink", "gsm", "", 1.0}};
  G.Edges = {{2, 1}, {0, 1}, {1, 3}};
  ErrorOr<std::vector<int>> R = topoOrder(G);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(*R, (std::vector<int>{0, 2, 1, 3}));

  // Edge declaration order is presentation, not content.
  TaskGraph H = G;
  std::swap(H.Edges[0], H.Edges[1]);
  EXPECT_EQ(*topoOrder(H), *R);
}

TEST(TaskGraphModel, TopoOrderErrorsOnCycles) {
  TaskGraph G = diamond();
  G.Edges.push_back({3, 0});
  EXPECT_FALSE(topoOrder(G).hasValue());
}

TEST(TaskGraphModel, PredecessorAndSuccessorListsAreSortedAndDual) {
  TaskGraph G = diamond();
  std::vector<std::vector<int>> P = predecessorsOf(G);
  std::vector<std::vector<int>> S = successorsOf(G);
  ASSERT_EQ(P.size(), 4u);
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(P[0], (std::vector<int>{}));
  EXPECT_EQ(P[3], (std::vector<int>{1, 2}));
  EXPECT_EQ(S[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(S[3], (std::vector<int>{}));
  for (int N = 0; N < 4; ++N)
    for (int Pred : P[N])
      EXPECT_TRUE(std::find(S[Pred].begin(), S[Pred].end(), N) !=
                  S[Pred].end());
}

TEST(TaskGraphModel, FingerprintIsContentNotPresentation) {
  TaskGraph A = diamond();
  TaskGraph B = diamond();
  EXPECT_EQ(fingerprintTaskGraph(A).toHex(), fingerprintTaskGraph(B).toHex());

  // Edge order is normalized away...
  std::swap(B.Edges[0], B.Edges[3]);
  EXPECT_EQ(fingerprintTaskGraph(A).toHex(), fingerprintTaskGraph(B).toHex());

  // ...but every semantic field moves the digest.
  TaskGraph C = diamond();
  C.Nodes[1].ActualFactor = 0.75;
  EXPECT_NE(fingerprintTaskGraph(A).toHex(), fingerprintTaskGraph(C).toHex());
  TaskGraph D = diamond();
  D.DeadlineSeconds = 2.0;
  EXPECT_NE(fingerprintTaskGraph(A).toHex(), fingerprintTaskGraph(D).toHex());
  TaskGraph E = diamond();
  E.Nodes[0].Workload = "adpcm";
  EXPECT_NE(fingerprintTaskGraph(A).toHex(), fingerprintTaskGraph(E).toHex());
  TaskGraph F = diamond();
  F.Edges.pop_back();
  EXPECT_NE(fingerprintTaskGraph(A).toHex(), fingerprintTaskGraph(F).toHex());
}

TEST(TaskGraphModel, CannedGraphsAllValidateAndAreDistinct) {
  std::vector<TaskGraph> All = cannedTaskGraphs();
  ASSERT_GE(All.size(), 6u);
  std::set<std::string> Names;
  std::set<std::string> Digests;
  for (const TaskGraph &G : All) {
    ErrorOr<bool> V = validateGraph(G);
    EXPECT_TRUE(V.hasValue()) << G.Name << ": " << V.message();
    Names.insert(G.Name);
    Digests.insert(fingerprintTaskGraph(G).toHex());
  }
  EXPECT_EQ(Names.size(), All.size());
  EXPECT_EQ(Digests.size(), All.size());

  // The corpus deliberately keeps one overrunning instance for the
  // forced-accept path and makes every other instance pure-reclamation.
  for (const TaskGraph &G : All) {
    bool Overruns = false;
    for (const TaskNode &N : G.Nodes)
      Overruns = Overruns || N.ActualFactor > 1.0;
    EXPECT_EQ(Overruns, G.Name == "chain4-late") << G.Name;
  }
}

TEST(TaskGraphModel, CannedLookupByNameMatchesAndErrorsHelpfully) {
  ErrorOr<TaskGraph> G = cannedTaskGraph("diamond4-early");
  ASSERT_TRUE(G.hasValue()) << G.message();
  EXPECT_EQ(G->Name, "diamond4-early");

  ErrorOr<TaskGraph> Miss = cannedTaskGraph("no-such-graph");
  ASSERT_FALSE(Miss.hasValue());
  // The error names the known set so CLI typos are self-correcting.
  EXPECT_NE(Miss.message().find("pair2-early"), std::string::npos)
      << Miss.message();
}

} // namespace
