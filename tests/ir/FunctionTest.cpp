//===- tests/ir/FunctionTest.cpp - IR structure and verifier --------------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

Function makeDiamond() {
  Function F("diamond", 8, 64);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int Left = B.createBlock("left");
  int Right = B.createBlock("right");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 5);
  B.condBr(1, Left, Right);
  B.setInsertPoint(Left);
  B.add(2, 1, 1);
  B.jump(Exit);
  B.setInsertPoint(Right);
  B.sub(2, 1, 1);
  B.jump(Exit);
  B.setInsertPoint(Exit);
  B.ret();
  return F;
}

TEST(Function, DiamondVerifies) {
  Function F = makeDiamond();
  ErrorOr<bool> Ok = F.verify();
  EXPECT_TRUE(Ok.hasValue()) << (Ok ? "" : Ok.message());
}

TEST(Function, EdgesEnumerated) {
  Function F = makeDiamond();
  std::vector<CfgEdge> E = F.edges();
  ASSERT_EQ(E.size(), 4u);
  EXPECT_TRUE((E[0] == CfgEdge{0, 1}));
  EXPECT_TRUE((E[1] == CfgEdge{0, 2}));
  EXPECT_TRUE((E[2] == CfgEdge{1, 3}));
  EXPECT_TRUE((E[3] == CfgEdge{2, 3}));
}

TEST(Function, Predecessors) {
  Function F = makeDiamond();
  auto Preds = F.predecessors();
  EXPECT_TRUE(Preds[0].empty());
  ASSERT_EQ(Preds[3].size(), 2u);
  EXPECT_EQ(Preds[3][0], 1);
  EXPECT_EQ(Preds[3][1], 2);
}

TEST(Function, VerifyRejectsEmptyFunction) {
  Function F("empty", 4, 64);
  EXPECT_FALSE(F.verify().hasValue());
}

TEST(Function, VerifyRejectsBadRegister) {
  Function F("badreg", 2, 64);
  IRBuilder B(F);
  int E = B.createBlock("entry");
  B.setInsertPoint(E);
  B.add(5, 0, 0); // register 5 out of range
  B.ret();
  ErrorOr<bool> Ok = F.verify();
  ASSERT_FALSE(Ok.hasValue());
  EXPECT_NE(Ok.message().find("register"), std::string::npos);
}

TEST(Function, VerifyRejectsCondBrWithEqualSuccessors) {
  Function F("dup", 4, 64);
  IRBuilder B(F);
  int E = B.createBlock("entry");
  int X = B.createBlock("exit");
  B.setInsertPoint(E);
  B.condBr(0, X, X); // duplicate edge
  B.setInsertPoint(X);
  B.ret();
  EXPECT_FALSE(F.verify().hasValue());
}

TEST(Function, VerifyRejectsMissingRet) {
  Function F("loop", 4, 64);
  IRBuilder B(F);
  int A = B.createBlock("a");
  int C = B.createBlock("b");
  B.setInsertPoint(A);
  B.jump(C);
  B.setInsertPoint(C);
  B.jump(A);
  EXPECT_FALSE(F.verify().hasValue());
}

TEST(Function, VerifyRejectsUnreachableRet) {
  Function F("unreach", 4, 64);
  IRBuilder B(F);
  int A = B.createBlock("spin_a");
  int C = B.createBlock("spin_b");
  int R = B.createBlock("island_ret");
  B.setInsertPoint(A);
  B.jump(C);
  B.setInsertPoint(C);
  B.jump(A);
  B.setInsertPoint(R);
  B.ret();
  ErrorOr<bool> Ok = F.verify();
  ASSERT_FALSE(Ok.hasValue());
  EXPECT_NE(Ok.message().find("reachable"), std::string::npos);
}

TEST(Function, VerifyRejectsSuccessorOutOfRange) {
  Function F("badsucc", 4, 64);
  IRBuilder B(F);
  int E = B.createBlock("entry");
  B.setInsertPoint(E);
  B.jump(7); // no such block
  EXPECT_FALSE(F.verify().hasValue());
}

TEST(Function, PrintContainsBlocksAndOpcodes) {
  Function F = makeDiamond();
  std::string S = F.print();
  EXPECT_NE(S.find("entry"), std::string::npos);
  EXPECT_NE(S.find("condbr"), std::string::npos);
  EXPECT_NE(S.find("movimm"), std::string::npos);
  EXPECT_NE(S.find("ret"), std::string::npos);
}

TEST(Function, DotOutputWellFormed) {
  Function F = makeDiamond();
  std::string S = F.printDot();
  EXPECT_EQ(S.rfind("digraph", 0), 0u);
  EXPECT_NE(S.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(S.find("}"), std::string::npos);
}

TEST(Opcode, NamesAndClasses) {
  EXPECT_STREQ(opcodeName(Opcode::Add), "add");
  EXPECT_STREQ(opcodeName(Opcode::FDiv), "fdiv");
  EXPECT_EQ(opClass(Opcode::Add), OpClass::IntAlu);
  EXPECT_EQ(opClass(Opcode::Mul), OpClass::IntMul);
  EXPECT_EQ(opClass(Opcode::Rem), OpClass::IntDiv);
  EXPECT_EQ(opClass(Opcode::FMul), OpClass::FpMul);
  EXPECT_EQ(opClass(Opcode::Load), OpClass::MemLoad);
  EXPECT_EQ(opClass(Opcode::Store), OpClass::MemStore);
  EXPECT_TRUE(isMemoryOp(Opcode::Load));
  EXPECT_TRUE(isMemoryOp(Opcode::Store));
  EXPECT_FALSE(isMemoryOp(Opcode::Xor));
}

TEST(IRBuilder, EmitsIntoSelectedBlock) {
  Function F("sel", 4, 64);
  IRBuilder B(F);
  int A = B.createBlock("a");
  int C = B.createBlock("b");
  B.setInsertPoint(A);
  B.movImm(0, 1);
  B.jump(C);
  B.setInsertPoint(C);
  B.movImm(1, 2);
  B.ret();
  EXPECT_EQ(F.block(A).Insts.size(), 1u);
  EXPECT_EQ(F.block(C).Insts.size(), 1u);
  EXPECT_EQ(F.block(C).Insts[0].Imm, 2);
}

} // namespace
