//===- tests/ir/PassesTest.cpp - CFG cleanup passes -----------------------===//

#include "ir/Passes.h"

#include "ir/IRBuilder.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

const VoltageLevel Fast{1.65, 800e6};

TEST(Passes, RemovesUnreachableBlocks) {
  Function F("dead", 4, 64);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int Dead = B.createBlock("dead");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.jump(Exit);
  B.setInsertPoint(Dead);
  B.movImm(1, 9);
  B.jump(Exit);
  B.setInsertPoint(Exit);
  B.ret();

  PassStats S = removeUnreachableBlocks(F);
  EXPECT_EQ(S.BlocksRemoved, 1);
  EXPECT_EQ(F.numBlocks(), 2);
  ASSERT_TRUE(F.verify().hasValue());
  // Successor ids were remapped: entry now jumps to block 1.
  EXPECT_EQ(F.block(0).Succs[0], 1);
}

TEST(Passes, RemoveUnreachableIsNoOpOnCleanCfg) {
  Workload W = workloadByName("gsm");
  Function F = *W.Fn;
  PassStats S = removeUnreachableBlocks(F);
  EXPECT_EQ(S.BlocksRemoved, 0);
  EXPECT_EQ(F.numBlocks(), W.Fn->numBlocks());
}

TEST(Passes, MergesStraightLineChain) {
  // entry -> a -> b -> exit, all unconditional: collapses into one
  // block chain (entry absorbs a, b; exit has multiple preds? no: one).
  Function F("chain", 4, 64);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int A = B.createBlock("a");
  int C = B.createBlock("b");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 1);
  B.jump(A);
  B.setInsertPoint(A);
  B.movImm(2, 2);
  B.jump(C);
  B.setInsertPoint(C);
  B.movImm(3, 3);
  B.jump(Exit);
  B.setInsertPoint(Exit);
  B.ret();

  PassStats S = simplifyCfg(F);
  EXPECT_EQ(S.BlocksMerged, 3);
  EXPECT_EQ(F.numBlocks(), 1);
  EXPECT_EQ(F.block(0).Insts.size(), 3u);
  ASSERT_TRUE(F.verify().hasValue());
}

TEST(Passes, DoesNotMergeAcrossJoinPoints) {
  // Diamond: the join block has two predecessors and must survive.
  Function F("diamond", 4, 64);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int L = B.createBlock("l");
  int R = B.createBlock("r");
  int Join = B.createBlock("join");
  B.setInsertPoint(Entry);
  B.movImm(1, 1);
  B.condBr(1, L, R);
  B.setInsertPoint(L);
  B.jump(Join);
  B.setInsertPoint(R);
  B.jump(Join);
  B.setInsertPoint(Join);
  B.ret();

  PassStats S = simplifyCfg(F);
  EXPECT_EQ(S.BlocksMerged, 0);
  EXPECT_EQ(F.numBlocks(), 4);
}

TEST(Passes, DoesNotMergeLoopLatchIntoHeader) {
  // body jumps to head, but head has two preds (entry + body): no merge.
  Function F("loop", 8, 64);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int Head = B.createBlock("head");
  int Body = B.createBlock("body");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 0);
  B.movImm(2, 3);
  B.movImm(3, 1);
  B.jump(Head);
  B.setInsertPoint(Head);
  B.cmpLt(4, 1, 2);
  B.condBr(4, Body, Exit);
  B.setInsertPoint(Body);
  B.add(1, 1, 3);
  B.jump(Head);
  B.setInsertPoint(Exit);
  B.ret();

  PassStats S = simplifyCfg(F);
  EXPECT_EQ(S.BlocksMerged, 0);
  ASSERT_TRUE(F.verify().hasValue());
}

TEST(Passes, SimplifyPreservesSemantics) {
  // A program with a mergeable preamble chain: final register state
  // must be identical before and after simplification.
  Function F("sem", 8, 256);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int Mid = B.createBlock("mid");
  int Head = B.createBlock("head");
  int Body = B.createBlock("body");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 0);
  B.movImm(2, 8);
  B.movImm(3, 1);
  B.jump(Mid);
  B.setInsertPoint(Mid);
  B.movImm(5, 100);
  B.jump(Head);
  B.setInsertPoint(Head);
  B.cmpLt(4, 1, 2);
  B.condBr(4, Body, Exit);
  B.setInsertPoint(Body);
  B.add(5, 5, 1);
  B.add(1, 1, 3);
  B.jump(Head);
  B.setInsertPoint(Exit);
  B.ret();

  Simulator Before(F);
  RunStats SB = Before.runAtLevel(Fast);

  Function G = F;
  PassStats St = simplifyCfg(G);
  EXPECT_GT(St.BlocksMerged, 0);
  Simulator After(G);
  RunStats SA = After.runAtLevel(Fast);
  EXPECT_EQ(SB.FinalRegs, SA.FinalRegs);
  // Fewer blocks, same instruction count.
  EXPECT_LT(G.numBlocks(), F.numBlocks());
  EXPECT_EQ(countStaticInstructions(F), countStaticInstructions(G));
}

TEST(Passes, CountStaticInstructions) {
  Workload W = workloadByName("adpcm");
  EXPECT_GT(countStaticInstructions(*W.Fn), 20);
}

TEST(Passes, WorkloadsAreAlreadyMinimal) {
  // The handwritten workloads should not contain dead or trivially
  // mergeable blocks (loop headers all have >= 2 preds).
  for (const Workload &W : allWorkloads()) {
    Function F = *W.Fn;
    PassStats S = simplifyCfg(F);
    EXPECT_EQ(S.BlocksRemoved, 0) << W.Name;
    EXPECT_EQ(S.BlocksMerged, 0) << W.Name;
  }
}

} // namespace
