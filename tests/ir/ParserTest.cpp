//===- tests/ir/ParserTest.cpp - text-format parser round trips -----------===//

#include "ir/Parser.h"

#include "ir/IRBuilder.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

/// Structural equality via the printer (stable, canonical).
void expectRoundTrip(const Function &F) {
  std::string Printed = F.print();
  ErrorOr<Function> Parsed = parseFunction(Printed);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.message();
  EXPECT_EQ(Parsed->print(), Printed);
}

TEST(Parser, MinimalFunction) {
  ErrorOr<Function> F = parseFunction("function tiny (regs=4, mem=64)\n"
                                      "0: entry\n"
                                      "  ret\n");
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->name(), "tiny");
  EXPECT_EQ(F->numRegs(), 4);
  EXPECT_EQ(F->memBytes(), 64u);
  EXPECT_EQ(F->numBlocks(), 1);
}

TEST(Parser, InstructionFields) {
  ErrorOr<Function> F = parseFunction(
      "function k (regs=8, mem=64)\n"
      "0: entry\n"
      "  movimm  d=r1  s1=r0  s2=r0  imm=42\n"
      "  add     d=r2  s1=r1  s2=r1  imm=0\n"
      "  load    d=r3  s1=r2  s2=r0  imm=-8\n"
      "  ret\n");
  ASSERT_TRUE(F.hasValue()) << F.message();
  const BasicBlock &BB = F->block(0);
  ASSERT_EQ(BB.Insts.size(), 3u);
  EXPECT_EQ(BB.Insts[0].Op, Opcode::MovImm);
  EXPECT_EQ(BB.Insts[0].Imm, 42);
  EXPECT_EQ(BB.Insts[2].Op, Opcode::Load);
  EXPECT_EQ(BB.Insts[2].Imm, -8);
}

TEST(Parser, ControlFlowAndComments) {
  ErrorOr<Function> F = parseFunction(
      "# a loop\n"
      "function loop (regs=8, mem=64)\n"
      "0: entry\n"
      "  movimm d=r1 s1=r0 s2=r0 imm=0\n"
      "  jump -> 1\n"
      "1: head   # header\n"
      "  cmplt d=r2 s1=r1 s2=r3 imm=0\n"
      "  condbr r2 -> 2, 3\n"
      "2: body\n"
      "  add d=r1 s1=r1 s2=r4 imm=0\n"
      "  jump -> 1\n"
      "3: exit\n"
      "  ret\n");
  ASSERT_TRUE(F.hasValue()) << F.message();
  EXPECT_EQ(F->numBlocks(), 4);
  EXPECT_EQ(F->block(1).Term, TermKind::CondBr);
  EXPECT_EQ(F->block(1).Succs[0], 2);
  EXPECT_EQ(F->block(1).Succs[1], 3);
}

TEST(Parser, RejectsUnknownOpcode) {
  ErrorOr<Function> F = parseFunction("function f (regs=4, mem=64)\n"
                                      "0: entry\n"
                                      "  frobnicate d=r1 s1=r0 s2=r0 "
                                      "imm=0\n"
                                      "  ret\n");
  ASSERT_FALSE(F.hasValue());
  EXPECT_NE(F.message().find("unknown opcode"), std::string::npos);
}

TEST(Parser, RejectsOutOfOrderBlockIds) {
  ErrorOr<Function> F = parseFunction("function f (regs=4, mem=64)\n"
                                      "1: entry\n"
                                      "  ret\n");
  ASSERT_FALSE(F.hasValue());
  EXPECT_NE(F.message().find("dense"), std::string::npos);
}

TEST(Parser, RejectsUnverifiableProgram) {
  // Jump to a nonexistent block.
  ErrorOr<Function> F = parseFunction("function f (regs=4, mem=64)\n"
                                      "0: entry\n"
                                      "  jump -> 7\n");
  ASSERT_FALSE(F.hasValue());
  EXPECT_NE(F.message().find("verification"), std::string::npos);
}

TEST(Parser, RejectsGarbageHeader) {
  EXPECT_FALSE(parseFunction("garbage\n").hasValue());
  EXPECT_FALSE(parseFunction("").hasValue());
}

TEST(Parser, OpcodeTableCoversEveryMnemonic) {
  // Every opcode's printed name parses back to itself.
  for (int Raw = 0; Raw <= static_cast<int>(Opcode::Store); ++Raw) {
    Opcode Op = static_cast<Opcode>(Raw);
    ErrorOr<Opcode> Back = opcodeByName(opcodeName(Op));
    ASSERT_TRUE(Back.hasValue()) << opcodeName(Op);
    EXPECT_EQ(*Back, Op);
  }
}

TEST(Parser, RoundTripsEveryWorkload) {
  for (const Workload &W : allWorkloads())
    expectRoundTrip(*W.Fn);
}

} // namespace
