//===- tests/dvs/PresolveParityTest.cpp - presolve on/off byte identity ---===//

#include "dvs/DvsScheduler.h"

#include "dvs/ScheduleIO.h"
#include "ir/IRBuilder.h"
#include "verify/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

/// Branchy program with an unreachable block and a cold arm, so the
/// presolve has both structurally-dead and unprofiled groups to chew on.
std::shared_ptr<Function> makeBranchy() {
  auto Fn = std::make_shared<Function>("branchy", 16, 4096);
  IRBuilder B(*Fn);
  int Entry = B.createBlock("entry");
  int Head = B.createBlock("head");
  int Hot = B.createBlock("hot");
  int Cold = B.createBlock("cold");
  int Tail = B.createBlock("tail");
  int Exit = B.createBlock("exit");
  int Orphan = B.createBlock("orphan"); // never reached

  B.setInsertPoint(Entry);
  B.movImm(1, 0);    // i
  B.movImm(2, 400);  // trips
  B.movImm(3, 1);
  B.movImm(4, 0);    // acc
  B.jump(Head);

  B.setInsertPoint(Head);
  B.cmpLt(5, 1, 2);
  B.condBr(5, Hot, Exit);

  B.setInsertPoint(Hot);
  B.mul(4, 4, 3);
  B.add(4, 4, 1);
  // acc is never negative here, so the cold arm never runs.
  B.cmpLt(6, 4, 0);
  B.condBr(6, Cold, Tail);

  B.setInsertPoint(Cold);
  B.movImm(4, 0);
  B.jump(Tail);

  B.setInsertPoint(Tail);
  B.add(1, 1, 3);
  B.jump(Head);

  B.setInsertPoint(Exit);
  B.ret();

  B.setInsertPoint(Orphan);
  B.jump(Exit);
  return Fn;
}

struct SolveRun {
  ScheduleResult SR;
  std::string Text;
};

SolveRun scheduleWith(bool Presolve) {
  auto Fn = makeBranchy();
  Simulator Sim(*Fn);
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(Sim, Modes);
  DvsOptions O;
  O.Presolve = Presolve;
  O.KeepArtifacts = true;
  DvsScheduler S(*Fn, Prof, Modes, Reg, O);
  // Lax deadline: feasible from the slow initial mode; the program is
  // tiny, so mid-range deadlines drown in transition penalties.
  double Deadline = Prof.TotalTimeAtMode[0] * 1.05;
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  EXPECT_TRUE(R.hasValue()) << R.message();
  SolveRun Out;
  Out.SR = *R;
  Out.Text = writeSchedule(R->Assignment);
  return Out;
}

TEST(PresolveParity, SchedulesAreByteIdentical) {
  SolveRun On = scheduleWith(true);
  SolveRun Off = scheduleWith(false);
  EXPECT_EQ(On.Text, Off.Text);
  // The objective is summed in a different order with presolve on, so
  // only the schedule bytes are promised identical; the predicted
  // energy agrees to roundoff.
  EXPECT_NEAR(On.SR.PredictedEnergyJoules, Off.SR.PredictedEnergyJoules,
              1e-12 * Off.SR.PredictedEnergyJoules);
  EXPECT_EQ(On.SR.Status, Off.SR.Status);
}

TEST(PresolveParity, PresolveActuallyShrinksTheMilp) {
  SolveRun On = scheduleWith(true);
  EXPECT_GT(On.SR.NumVars, 0);
  EXPECT_GT(On.SR.PresolveVarsFixed, 0);
  EXPECT_LT(On.SR.SolvedVars, On.SR.NumVars);
  EXPECT_EQ(On.SR.SolvedVars,
            On.SR.NumVars - On.SR.PresolveVarsFixed);
  EXPECT_GT(On.SR.PresolveRowsDropped, 0);
  EXPECT_EQ(On.SR.SolvedRows, On.SR.NumRows - On.SR.PresolveRowsDropped);
  // The orphan block's group is structurally dead, not just unprofiled.
  EXPECT_GT(On.SR.PresolveDeadGroups, 0);
  ASSERT_TRUE(On.SR.Artifacts);
  EXPECT_TRUE(On.SR.Artifacts->Presolved);
  EXPECT_EQ(On.SR.Artifacts->Reduction.varsFixed(),
            On.SR.PresolveVarsFixed);
}

TEST(PresolveParity, OffLeavesTheInstanceUntouched) {
  SolveRun Off = scheduleWith(false);
  EXPECT_EQ(Off.SR.PresolveVarsFixed, 0);
  EXPECT_EQ(Off.SR.PresolveRowsDropped, 0);
  EXPECT_EQ(Off.SR.SolvedVars, Off.SR.NumVars);
  EXPECT_EQ(Off.SR.SolvedRows, Off.SR.NumRows);
  ASSERT_TRUE(Off.SR.Artifacts);
  EXPECT_FALSE(Off.SR.Artifacts->Presolved);
}

TEST(PresolveParity, AuditRepliesTheReductionCertificate) {
  auto Fn = makeBranchy();
  Simulator Sim(*Fn);
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(Sim, Modes);
  DvsOptions O;
  O.KeepArtifacts = true;
  DvsScheduler S(*Fn, Prof, Modes, Reg, O);
  double Deadline = Prof.TotalTimeAtMode[0] * 1.05;
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();
  ASSERT_TRUE(R->Artifacts && R->Artifacts->Presolved);

  std::vector<CategoryProfile> Cats;
  Cats.push_back(CategoryProfile{Prof, 1.0});
  verify::Audit A = verify::auditScheduleResult(
      *Fn, Cats, Modes, Reg, *R, {Deadline});
  EXPECT_TRUE(A.Reduction.Checked) << A.Reduction.R.render();
  EXPECT_TRUE(A.Reduction.ok())
      << A.Reduction.R.render() << A.Reduction.Expanded.R.render();
}

} // namespace
