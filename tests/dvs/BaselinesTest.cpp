//===- tests/dvs/BaselinesTest.cpp - prior-work baselines -----------------===//

#include "dvs/Baselines.h"

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

struct Harness {
  Workload W;
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof;
  double Deadline = 0.0;

  explicit Harness(const std::string &Name) : W(workloadByName(Name)) {
    Sim = std::make_unique<Simulator>(*W.Fn);
    W.defaultInput().Setup(*Sim);
    Prof = collectProfile(*Sim, Modes);
    Deadline = 0.5 * (Prof.TotalTimeAtMode.front() +
                      Prof.TotalTimeAtMode.back());
  }
};

TEST(HsuKremer, MeetsDeadlineOnProfiledInput) {
  Harness S("gsm");
  ErrorOr<ScheduleResult> R = scheduleHsuKremer(
      *S.W.Fn, S.Prof, S.Modes, S.Reg, S.Deadline, 2);
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats Run = S.Sim->run(S.Modes, R->Assignment, S.Reg);
  EXPECT_LE(Run.TimeSeconds, S.Deadline * 1.02);
}

TEST(HsuKremer, SlowsMemoryBoundRegionsFirst) {
  // With generous slack, the heuristic must downshift at least the
  // most memory-bound hot block.
  Harness S("epic");
  double Lax = S.Prof.TotalTimeAtMode.front() * 0.9;
  ErrorOr<ScheduleResult> R = scheduleHsuKremer(
      *S.W.Fn, S.Prof, S.Modes, S.Reg, Lax, 2);
  ASSERT_TRUE(R.hasValue()) << R.message();
  int SlowEdges = 0;
  for (const auto &[E, M] : R->Assignment.EdgeMode)
    SlowEdges += (M == 0);
  EXPECT_GT(SlowEdges, 0);
  RunStats Run = S.Sim->run(S.Modes, R->Assignment, S.Reg);
  // Cheaper than the all-fastest run.
  EXPECT_LT(Run.EnergyJoules, S.Prof.TotalEnergyAtMode.back());
}

TEST(HsuKremer, InfeasibleDeadlineErrs) {
  Harness S("ghostscript");
  ErrorOr<ScheduleResult> R = scheduleHsuKremer(
      *S.W.Fn, S.Prof, S.Modes, S.Reg,
      S.Prof.TotalTimeAtMode.back() * 0.5, 2);
  EXPECT_FALSE(R.hasValue());
}

TEST(Saputra, PredictsNoTransitionEnergy) {
  // The no-cost MILP's *prediction* excludes switch energy entirely, so
  // it can only be <= the transition-aware MILP's prediction.
  Harness S("mpeg_decode");
  DvsOptions O;
  O.InitialMode = 2;
  ErrorOr<ScheduleResult> Sap = scheduleIgnoringTransitionCosts(
      *S.W.Fn, S.Prof, S.Modes, S.Deadline, O);
  ASSERT_TRUE(Sap.hasValue()) << Sap.message();
  DvsScheduler Full(*S.W.Fn, S.Prof, S.Modes, S.Reg, O);
  ErrorOr<ScheduleResult> Milp = Full.schedule(S.Deadline);
  ASSERT_TRUE(Milp.hasValue()) << Milp.message();
  EXPECT_LE(Sap->PredictedEnergyJoules,
            Milp->PredictedEnergyJoules * (1.0 + 1e-9));
}

TEST(Saputra, RealizedRunPaysUnmodeledCosts) {
  // Executed under a heavy regulator, the cost-blind schedule's real
  // energy exceeds its own prediction (the gap the paper closes).
  Harness S("mpeg_decode");
  TransitionModel Heavy = TransitionModel::withCapacitance(40e-6);
  DvsOptions O;
  O.InitialMode = 2;
  ErrorOr<ScheduleResult> Sap = scheduleIgnoringTransitionCosts(
      *S.W.Fn, S.Prof, S.Modes, S.Deadline, O);
  ASSERT_TRUE(Sap.hasValue()) << Sap.message();
  RunStats Run = S.Sim->run(S.Modes, Sap->Assignment, Heavy);
  if (Run.Transitions > 100) {
    EXPECT_GT(Run.EnergyJoules,
              Sap->PredictedEnergyJoules * 1.05);
  }
  // The transition-aware MILP, by contrast, stays close to its
  // prediction when run under the model it optimized for.
  DvsScheduler Full(*S.W.Fn, S.Prof, S.Modes, Heavy, O);
  ErrorOr<ScheduleResult> Milp = Full.schedule(S.Deadline);
  ASSERT_TRUE(Milp.hasValue()) << Milp.message();
  RunStats MilpRun = S.Sim->run(S.Modes, Milp->Assignment, Heavy);
  EXPECT_NEAR(MilpRun.EnergyJoules, Milp->PredictedEnergyJoules,
              0.05 * MilpRun.EnergyJoules);
  EXPECT_LE(MilpRun.TimeSeconds, S.Deadline * 1.0001);
}

TEST(Baselines, MilpNeverLosesToHeuristicOnPredictions) {
  for (const char *Name : {"gsm", "adpcm"}) {
    Harness S(Name);
    DvsOptions O;
    O.InitialMode = 2;
    ErrorOr<ScheduleResult> HK = scheduleHsuKremer(
        *S.W.Fn, S.Prof, S.Modes, S.Reg, S.Deadline, 2);
    DvsScheduler Full(*S.W.Fn, S.Prof, S.Modes, S.Reg, O);
    ErrorOr<ScheduleResult> Milp = Full.schedule(S.Deadline);
    ASSERT_TRUE(HK.hasValue() && Milp.hasValue()) << Name;
    RunStats HKRun = S.Sim->run(S.Modes, HK->Assignment, S.Reg);
    RunStats MilpRun = S.Sim->run(S.Modes, Milp->Assignment, S.Reg);
    // Both meet the deadline; the exact optimizer wins on energy
    // (small tolerance for profile-vs-run skew).
    EXPECT_LE(MilpRun.TimeSeconds, S.Deadline * 1.0001) << Name;
    EXPECT_LE(HKRun.TimeSeconds, S.Deadline * 1.02) << Name;
    EXPECT_LE(MilpRun.EnergyJoules, HKRun.EnergyJoules * 1.05) << Name;
  }
}

} // namespace
