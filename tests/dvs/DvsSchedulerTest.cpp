//===- tests/dvs/DvsSchedulerTest.cpp - MILP DVS scheduling ---------------===//

#include "dvs/DvsScheduler.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

/// Two-phase program: a compute-bound loop followed by a memory-bound
/// loop streaming a large buffer. The classic compile-time DVS win is to
/// run the memory phase slow and the compute phase fast.
std::shared_ptr<Function> makeTwoPhase() {
  auto Fn = std::make_shared<Function>("two_phase", 16, 1024 * 1024);
  IRBuilder B(*Fn);
  int Entry = B.createBlock("entry");
  int CHead = B.createBlock("compute_head");
  int CBody = B.createBlock("compute_body");
  int MHead = B.createBlock("mem_head");
  int MBody = B.createBlock("mem_body");
  int Exit = B.createBlock("exit");

  B.setInsertPoint(Entry);
  B.movImm(1, 0);     // i
  B.movImm(2, 6000);  // compute trips
  B.movImm(3, 1);
  B.movImm(4, 0);     // acc
  B.movImm(10, 12000);// memory trips
  B.movImm(11, 0);    // membase
  B.movImm(12, 2);
  B.jump(CHead);

  B.setInsertPoint(CHead);
  B.cmpLt(5, 1, 2);
  B.condBr(5, CBody, MHead);

  B.setInsertPoint(CBody);
  B.mul(4, 4, 3);
  B.add(4, 4, 1);
  B.mul(6, 4, 4);
  B.shr(4, 6, 3);
  B.add(1, 1, 3);
  B.jump(CHead);

  B.setInsertPoint(MHead);
  B.movImm(1, 0);
  B.cmpLt(5, 1, 10);
  B.condBr(5, MBody, Exit);

  B.setInsertPoint(MBody);
  // Streaming loads over ~768 KB: addr = i * 16 words * 4 B = i * 64.
  B.movImm(7, 16);
  B.mul(6, 1, 7);
  B.shl(6, 6, 12); // reg 12 holds 2: words -> bytes
  B.add(6, 6, 11);
  B.load(8, 6, 0);
  B.add(4, 4, 8);
  B.add(1, 1, 3);
  B.cmpLt(5, 1, 10);
  B.condBr(5, MBody, Exit);

  B.setInsertPoint(Exit);
  B.ret();
  return Fn;
}

struct Pipeline {
  std::shared_ptr<Function> Fn;
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();
  Profile Prof;

  explicit Pipeline(std::shared_ptr<Function> F)
      : Fn(std::move(F)), Sim(std::make_unique<Simulator>(*Fn)) {
    Prof = collectProfile(*Sim, Modes);
  }
};

TEST(DvsScheduler, LaxDeadlineRunsEverythingSlow) {
  Pipeline P(makeTwoPhase());
  double Deadline = P.Prof.TotalTimeAtMode[0] * 1.05;
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, P.Regulator);
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats Run = P.Sim->run(P.Modes, R->Assignment, P.Regulator);
  EXPECT_LE(Run.TimeSeconds, Deadline * 1.0001);
  // Energy near the all-slow run (one initial transition allowed).
  EXPECT_LT(Run.EnergyJoules, P.Prof.TotalEnergyAtMode[0] * 1.05 +
                                  2e-6);
}

TEST(DvsScheduler, TightDeadlineRunsFast) {
  Pipeline P(makeTwoPhase());
  double Deadline = P.Prof.TotalTimeAtMode[2] * 1.01;
  DvsOptions O;
  O.InitialMode = 2;
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, P.Regulator, O);
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats Run = P.Sim->run(P.Modes, R->Assignment, P.Regulator);
  EXPECT_LE(Run.TimeSeconds, Deadline * 1.0001);
}

TEST(DvsScheduler, InfeasibleDeadlineReportsError) {
  Pipeline P(makeTwoPhase());
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, P.Regulator);
  ErrorOr<ScheduleResult> R =
      S.schedule(P.Prof.TotalTimeAtMode[2] * 0.5);
  EXPECT_FALSE(R.hasValue());
}

TEST(DvsScheduler, MidDeadlineMixesModesAndBeatsSingleFrequency) {
  Pipeline P(makeTwoPhase());
  // Cheap regulator so phase-boundary switches are clearly worthwhile.
  TransitionModel Cheap = TransitionModel::withCapacitance(0.01e-6);
  double Deadline =
      0.5 * (P.Prof.TotalTimeAtMode[0] + P.Prof.TotalTimeAtMode[2]);
  DvsOptions O;
  O.InitialMode = 2;
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, Cheap, O);
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats Run = P.Sim->run(P.Modes, R->Assignment, Cheap);
  EXPECT_LE(Run.TimeSeconds, Deadline * 1.0001);

  // Best single mode meeting the deadline.
  double BestSingle = -1.0;
  for (size_t M = 0; M < P.Modes.size(); ++M)
    if (P.Prof.TotalTimeAtMode[M] <= Deadline &&
        (BestSingle < 0.0 ||
         P.Prof.TotalEnergyAtMode[M] < BestSingle))
      BestSingle = P.Prof.TotalEnergyAtMode[M];
  ASSERT_GT(BestSingle, 0.0);
  EXPECT_LT(Run.EnergyJoules, BestSingle);
  EXPECT_GE(Run.Transitions, 1u); // really mixed modes
}

TEST(DvsScheduler, PredictionMatchesRealizedRun) {
  // Profile input == run input, so the MILP's objective must equal the
  // realized energy almost exactly.
  Pipeline P(makeTwoPhase());
  double Deadline =
      0.6 * P.Prof.TotalTimeAtMode[0] + 0.4 * P.Prof.TotalTimeAtMode[2];
  DvsOptions O;
  O.InitialMode = 2;
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, P.Regulator, O);
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats Run = P.Sim->run(P.Modes, R->Assignment, P.Regulator);
  EXPECT_NEAR(Run.EnergyJoules, R->PredictedEnergyJoules,
              0.02 * Run.EnergyJoules);
}

TEST(DvsScheduler, FilteringShrinksGroupsWithoutBreakingDeadline) {
  Pipeline P(makeTwoPhase());
  double Deadline =
      0.5 * (P.Prof.TotalTimeAtMode[0] + P.Prof.TotalTimeAtMode[2]);

  DvsOptions NoFilter;
  NoFilter.FilterThreshold = 0.0;
  NoFilter.InitialMode = 2;
  DvsScheduler S1(*P.Fn, P.Prof, P.Modes, P.Regulator, NoFilter);
  ErrorOr<ScheduleResult> R1 = S1.schedule(Deadline);
  ASSERT_TRUE(R1.hasValue()) << R1.message();

  DvsOptions Filter;
  Filter.FilterThreshold = 0.02;
  Filter.InitialMode = 2;
  DvsScheduler S2(*P.Fn, P.Prof, P.Modes, P.Regulator, Filter);
  ErrorOr<ScheduleResult> R2 = S2.schedule(Deadline);
  ASSERT_TRUE(R2.hasValue()) << R2.message();

  EXPECT_LT(R2->NumIndependentGroups, R1->NumIndependentGroups);
  RunStats Run1 = P.Sim->run(P.Modes, R1->Assignment, P.Regulator);
  RunStats Run2 = P.Sim->run(P.Modes, R2->Assignment, P.Regulator);
  EXPECT_LE(Run1.TimeSeconds, Deadline * 1.0001);
  EXPECT_LE(Run2.TimeSeconds, Deadline * 1.0001);
  // The sound ordering is on the MILP objective: filtering restricts
  // the feasible set, so the unfiltered optimum predicts no more
  // energy. Realized energies may deviate slightly in either direction
  // (per-mode profiles average out cross-mode stall interactions) but
  // must stay close (paper Table 3).
  EXPECT_LE(R1->PredictedEnergyJoules,
            R2->PredictedEnergyJoules * (1.0 + 1e-6));
  EXPECT_LE(Run1.EnergyJoules, Run2.EnergyJoules * 1.06);
  EXPECT_LE(Run2.EnergyJoules, Run1.EnergyJoules * 1.10);
}

TEST(DvsScheduler, SilentModeSetsOnBackEdgesAreFree) {
  // A loop edge whose assigned mode equals the loop's mode must cost no
  // transitions at run time.
  Pipeline P(makeTwoPhase());
  double Deadline = P.Prof.TotalTimeAtMode[0] * 1.05;
  DvsOptions O;
  O.InitialMode = 0;
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, P.Regulator, O);
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats Run = P.Sim->run(P.Modes, R->Assignment, P.Regulator);
  // All-slow schedule starting slow: zero transitions despite ~36000
  // traversed mode-set edges.
  EXPECT_EQ(Run.Transitions, 0u);
}

TEST(DvsScheduler, MultiCategoryRespectsBothDeadlines) {
  auto Fn = makeTwoPhase();
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();

  // Two "input categories" from the same program but different inputs:
  // vary the streamed buffer contents (control flow identical, timings
  // identical here — the point is the formulation's plumbing).
  Simulator SimA(*Fn);
  Profile PA = collectProfile(SimA, Modes);
  Simulator SimB(*Fn);
  for (uint64_t A = 0; A < 1024; A += 4)
    SimB.setInitialMem32(A, 7);
  Profile PB = collectProfile(SimB, Modes);

  std::vector<CategoryProfile> Cats = {{PA, 0.5}, {PB, 0.5}};
  DvsOptions O;
  O.InitialMode = 2;
  DvsScheduler S(*Fn, Cats, Modes, Reg, O);
  double DeadA = 0.5 * (PA.TotalTimeAtMode[0] + PA.TotalTimeAtMode[2]);
  double DeadB = PB.TotalTimeAtMode[2] * 1.2;
  ErrorOr<ScheduleResult> R = S.schedule({DeadA, DeadB});
  ASSERT_TRUE(R.hasValue()) << R.message();
  RunStats RunA = SimA.run(Modes, R->Assignment, Reg);
  RunStats RunB = SimB.run(Modes, R->Assignment, Reg);
  EXPECT_LE(RunA.TimeSeconds, DeadA * 1.0001);
  EXPECT_LE(RunB.TimeSeconds, DeadB * 1.0001);
}

TEST(DvsScheduler, MismatchedDeadlineCountFails) {
  Pipeline P(makeTwoPhase());
  DvsScheduler S(*P.Fn, P.Prof, P.Modes, P.Regulator);
  ErrorOr<ScheduleResult> R = S.schedule(std::vector<double>{1.0, 2.0});
  EXPECT_FALSE(R.hasValue());
}

} // namespace
