//===- tests/dvs/PathSchedulerTest.cpp - path-context scheduling ----------===//

#include "dvs/PathScheduler.h"

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

struct Rig {
  Workload W;
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof;
  double Deadline = 0.0;

  explicit Rig(const std::string &Name) : W(workloadByName(Name)) {
    Sim = std::make_unique<Simulator>(*W.Fn);
    W.defaultInput().Setup(*Sim);
    Prof = collectProfile(*Sim, Modes);
    Deadline = 0.5 * (Prof.TotalTimeAtMode.front() +
                      Prof.TotalTimeAtMode.back());
  }
};

TEST(PathScheduler, MeetsDeadlineAndMatchesPrediction) {
  Rig R("gsm");
  DvsOptions O;
  O.InitialMode = 2;
  ErrorOr<ScheduleResult> S = schedulePathContext(
      *R.W.Fn, R.Prof, R.Modes, R.Reg, R.Deadline, O);
  ASSERT_TRUE(S.hasValue()) << S.message();
  RunStats Run = R.Sim->run(R.Modes, S->Assignment, R.Reg);
  EXPECT_LE(Run.TimeSeconds, R.Deadline * 1.0001);
  EXPECT_NEAR(Run.EnergyJoules, S->PredictedEnergyJoules,
              0.03 * Run.EnergyJoules);
}

TEST(PathScheduler, GeneralizesEdgeScheduling) {
  // Every edge-based schedule is expressible with path context, so the
  // path optimum's *prediction* can never be worse than the unfiltered
  // edge optimum's.
  for (const char *Name : {"mpeg_decode", "ghostscript"}) {
    Rig R(Name);
    DvsOptions O;
    O.InitialMode = 2;
    O.FilterThreshold = 0.0; // unfiltered edge baseline
    DvsScheduler Edge(*R.W.Fn, R.Prof, R.Modes, R.Reg, O);
    ErrorOr<ScheduleResult> ER = Edge.schedule(R.Deadline);
    ASSERT_TRUE(ER.hasValue()) << Name << ": " << ER.message();
    ErrorOr<ScheduleResult> PR = schedulePathContext(
        *R.W.Fn, R.Prof, R.Modes, R.Reg, R.Deadline, O);
    ASSERT_TRUE(PR.hasValue()) << Name << ": " << PR.message();
    EXPECT_LE(PR->PredictedEnergyJoules,
              ER->PredictedEnergyJoules * (1.0 + 1e-6))
        << Name;
    // More context, more variables.
    EXPECT_GE(PR->NumIndependentGroups, ER->NumIndependentGroups)
        << Name;
  }
}

TEST(PathScheduler, InfeasibleDeadlineErrs) {
  Rig R("ghostscript");
  DvsOptions O;
  O.InitialMode = 2;
  ErrorOr<ScheduleResult> S = schedulePathContext(
      *R.W.Fn, R.Prof, R.Modes, R.Reg,
      R.Prof.TotalTimeAtMode.back() * 0.5, O);
  EXPECT_FALSE(S.hasValue());
}

TEST(PathScheduler, AssignmentCarriesPathAndEdgeFallback) {
  Rig R("mpeg_decode");
  DvsOptions O;
  O.InitialMode = 2;
  ErrorOr<ScheduleResult> S = schedulePathContext(
      *R.W.Fn, R.Prof, R.Modes, R.Reg, R.Deadline, O);
  ASSERT_TRUE(S.hasValue()) << S.message();
  EXPECT_FALSE(S->Assignment.PathMode.empty());
  // Every CFG edge has a fallback mode (profiled majority or slowest).
  EXPECT_EQ(S->Assignment.EdgeMode.size(), R.W.Fn->edges().size());
  // The fallback agrees with path decisions where the edge has a single
  // profiled context.
  for (const auto &[Path, Mode] : S->Assignment.PathMode) {
    auto [H, I, J] = Path;
    (void)H;
    int Fallback = S->Assignment.EdgeMode.at({I, J});
    EXPECT_GE(Fallback, 0);
    EXPECT_LT(Fallback, static_cast<int>(R.Modes.size()));
    (void)Mode;
  }
}

TEST(PathScheduler, CrossInputRunStillCompletes) {
  // Apply a path schedule from one mpeg input to another: unprofiled
  // contexts fall back to the per-edge majority, so execution is sane.
  Workload W = workloadByName("mpeg_decode");
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Simulator SimA(*W.Fn);
  W.input("100b").Setup(SimA);
  Profile ProfA = collectProfile(SimA, Modes);
  DvsOptions O;
  O.InitialMode = 2;
  double Deadline = 0.5 * (ProfA.TotalTimeAtMode.front() +
                           ProfA.TotalTimeAtMode.back());
  ErrorOr<ScheduleResult> S =
      schedulePathContext(*W.Fn, ProfA, Modes, Reg, Deadline, O);
  ASSERT_TRUE(S.hasValue()) << S.message();

  Simulator SimB(*W.Fn);
  W.input("bbc").Setup(SimB);
  RunStats Run = SimB.run(Modes, S->Assignment, Reg);
  EXPECT_TRUE(Run.Completed);
}

} // namespace
