//===- tests/dvs/LpDumpTest.cpp - scheduler LP-format dump -----------------===//

#include "dvs/DvsScheduler.h"

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(LpDump, SchedulerEmitsWellFormedLpText) {
  Workload W = workloadByName("ghostscript");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(Sim, Modes);

  DvsOptions O;
  O.InitialMode = 2;
  O.DumpLp = true;
  DvsScheduler S(*W.Fn, Prof, Modes, Reg, O);
  double Deadline =
      0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());
  ErrorOr<ScheduleResult> R = S.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();

  const std::string &LP = R->LpText;
  ASSERT_FALSE(LP.empty());
  EXPECT_NE(LP.find("Minimize"), std::string::npos);
  EXPECT_NE(LP.find("Subject To"), std::string::npos);
  EXPECT_NE(LP.find("Binaries"), std::string::npos);
  EXPECT_NE(LP.find("k_g"), std::string::npos); // mode variables
  EXPECT_NE(LP.find("End"), std::string::npos);
  // Every mode binary appears somewhere in the dump. (The pinned
  // entry-group variables are emitted under Bounds/Generals because
  // branching fixed their bounds away from [0,1].)
  int Count = 0;
  for (size_t Pos = LP.find("k_g"); Pos != std::string::npos;
       Pos = LP.find("k_g", Pos + 1))
    ++Count;
  EXPECT_GE(Count, R->NumBinaries);

  // Off by default.
  DvsOptions NoDump;
  NoDump.InitialMode = 2;
  DvsScheduler S2(*W.Fn, Prof, Modes, Reg, NoDump);
  ErrorOr<ScheduleResult> R2 = S2.schedule(Deadline);
  ASSERT_TRUE(R2.hasValue());
  EXPECT_TRUE(R2->LpText.empty());
}

} // namespace
