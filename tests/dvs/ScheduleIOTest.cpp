//===- tests/dvs/ScheduleIOTest.cpp - mode-set listing output -------------===//

#include "dvs/ScheduleIO.h"

#include "dvs/DvsScheduler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace cdvs;

namespace {

struct Fixture {
  Workload W = workloadByName("gsm");
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof;
  ModeAssignment Assignment;

  Fixture() {
    Sim = std::make_unique<Simulator>(*W.Fn);
    W.defaultInput().Setup(*Sim);
    Prof = collectProfile(*Sim, Modes);
    DvsOptions O;
    O.InitialMode = 2;
    DvsScheduler S(*W.Fn, Prof, Modes, Reg, O);
    double Deadline = 0.5 * (Prof.TotalTimeAtMode.front() +
                             Prof.TotalTimeAtMode.back());
    ErrorOr<ScheduleResult> R = S.schedule(Deadline);
    assert(R.hasValue());
    Assignment = R->Assignment;
  }
};

TEST(ScheduleIO, ListingHasOneLinePerEdge) {
  Fixture F;
  std::string Out = printAssignment(*F.W.Fn, F.Assignment, F.Modes);
  size_t Lines = 0;
  for (char C : Out)
    Lines += (C == '\n');
  // Header + one line per assigned edge.
  EXPECT_EQ(Lines, 1 + F.Assignment.EdgeMode.size());
  EXPECT_NE(Out.find("initial mode 2"), std::string::npos);
  EXPECT_NE(Out.find("set-mode"), std::string::npos);
}

TEST(ScheduleIO, ProfiledListingMarksLoopBackEdgesSilent) {
  Fixture F;
  std::string Out =
      printAssignment(*F.W.Fn, F.Assignment, F.Modes, &F.Prof);
  // The hot LTP loop's back edge stays in its own mode: silent.
  EXPECT_NE(Out.find("silent"), std::string::npos);
  EXPECT_NE(Out.find("count"), std::string::npos);
}

TEST(ScheduleIO, SummaryCountsEveryEdgeOnce) {
  Fixture F;
  std::string S = summarizeAssignment(F.Assignment, F.Modes);
  // Parse back the counts and compare with the edge total.
  int Total = 0;
  size_t Pos = 0;
  while ((Pos = S.find(':', Pos)) != std::string::npos) {
    Total += std::atoi(S.c_str() + Pos + 1);
    ++Pos;
  }
  EXPECT_EQ(Total, static_cast<int>(F.Assignment.EdgeMode.size()));
}

TEST(ScheduleIO, UniformAssignmentListsNothing) {
  Fixture F;
  ModeAssignment Uniform = ModeAssignment::uniform(1);
  std::string Out = printAssignment(*F.W.Fn, Uniform, F.Modes);
  EXPECT_NE(Out.find("initial mode 1"), std::string::npos);
  EXPECT_EQ(Out.find("set-mode"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// cdvs-schedule v1 serialization
//===----------------------------------------------------------------------===//

/// write -> read -> write must be byte-identical (the service cache
/// compares schedules by string equality, so this is a hard invariant).
void expectByteExactRoundTrip(const ModeAssignment &A, int NumModes) {
  std::string Text = writeSchedule(A);
  ErrorOr<ModeAssignment> Back = readSchedule(Text, NumModes);
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Back->InitialMode, A.InitialMode);
  EXPECT_EQ(Back->EdgeMode, A.EdgeMode);
  EXPECT_EQ(Back->PathMode, A.PathMode);
  EXPECT_EQ(writeSchedule(*Back), Text);
}

TEST(ScheduleIO, RoundTripsEveryWorkloadSchedule) {
  // Real schedules from every workload in the registry, solved at a
  // mid-range deadline.
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  for (const Workload &W : allWorkloads()) {
    Simulator Sim(*W.Fn);
    W.defaultInput().Setup(Sim);
    Profile Prof = collectProfile(Sim, Modes);
    DvsOptions O;
    O.InitialMode = 2;
    DvsScheduler S(*W.Fn, Prof, Modes, Reg, O);
    double Deadline = 0.5 * (Prof.TotalTimeAtMode.front() +
                             Prof.TotalTimeAtMode.back());
    ErrorOr<ScheduleResult> R = S.schedule(Deadline);
    ASSERT_TRUE(R.hasValue()) << W.Name << ": " << R.message();
    SCOPED_TRACE(W.Name);
    expectByteExactRoundTrip(R->Assignment,
                             static_cast<int>(Modes.size()));
  }
}

TEST(ScheduleIO, RoundTripsPathModeEntries) {
  // PathMode (and a launch edge from block -1) exercises the `paths`
  // section, which MILP edge schedules never populate.
  ModeAssignment A;
  A.InitialMode = 1;
  A.EdgeMode[{-1, 0}] = 2;
  A.EdgeMode[{0, 3}] = 0;
  A.EdgeMode[{3, 0}] = 1;
  A.PathMode[{0, 3, 0}] = 2;
  A.PathMode[{3, 0, 3}] = 0;
  expectByteExactRoundTrip(A, 3);
}

TEST(ScheduleIO, RoundTripsEmptyAssignment) {
  expectByteExactRoundTrip(ModeAssignment::uniform(0), 3);
}

TEST(ScheduleIO, ReaderRejectsBadMagic) {
  ErrorOr<ModeAssignment> R = readSchedule("not-a-schedule\n");
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("cdvs-schedule"), std::string::npos);
}

TEST(ScheduleIO, ReaderRejectsTruncation) {
  std::string Full = writeSchedule([] {
    ModeAssignment A;
    A.InitialMode = 1;
    A.EdgeMode[{0, 1}] = 2;
    A.PathMode[{0, 1, 0}] = 1;
    return A;
  }());
  // Every proper prefix that drops at least one line must fail cleanly.
  for (size_t Pos = Full.find('\n'); Pos + 1 < Full.size();
       Pos = Full.find('\n', Pos + 1)) {
    ErrorOr<ModeAssignment> R = readSchedule(Full.substr(0, Pos + 1));
    EXPECT_FALSE(R.hasValue()) << "prefix of " << Pos + 1 << " bytes";
  }
}

TEST(ScheduleIO, ReaderRejectsUnknownModeIndex) {
  ModeAssignment A;
  A.InitialMode = 0;
  A.EdgeMode[{0, 1}] = 7;
  std::string Text = writeSchedule(A);
  // Without a mode table the index is accepted...
  EXPECT_TRUE(readSchedule(Text).hasValue());
  // ...with one, it is named in the error.
  ErrorOr<ModeAssignment> R = readSchedule(Text, 3);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("unknown mode index 7"), std::string::npos);
  EXPECT_NE(R.message().find("3 modes"), std::string::npos);
}

TEST(ScheduleIO, ReaderRejectsNegativeModeAndBadEndpoints) {
  EXPECT_FALSE(readSchedule("cdvs-schedule v1\ninitial -1\nedges 0\n"
                            "paths 0\nend\n")
                   .hasValue());
  EXPECT_FALSE(readSchedule("cdvs-schedule v1\ninitial 0\nedges 1\n"
                            "-2 0 1\npaths 0\nend\n")
                   .hasValue());
}

TEST(ScheduleIO, ReaderRejectsDuplicatesAndTrailingData) {
  EXPECT_FALSE(readSchedule("cdvs-schedule v1\ninitial 0\nedges 2\n"
                            "0 1 1\n0 1 2\npaths 0\nend\n")
                   .hasValue());
  ModeAssignment A;
  A.EdgeMode[{0, 1}] = 1;
  EXPECT_FALSE(readSchedule(writeSchedule(A) + "junk\n").hasValue());
}

TEST(ScheduleIO, ReaderRejectsDuplicatePathEntries) {
  ErrorOr<ModeAssignment> R =
      readSchedule("cdvs-schedule v1\ninitial 0\nedges 0\npaths 2\n"
                   "0 1 2 1\n0 1 2 0\nend\n");
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("duplicate path"), std::string::npos);
}

TEST(ScheduleIO, ReaderRejectsOutOfRangePathMode) {
  // Accepted without a table, named in the error with one.
  std::string Text = "cdvs-schedule v1\ninitial 0\nedges 0\npaths 1\n"
                     "0 1 2 5\nend\n";
  EXPECT_TRUE(readSchedule(Text).hasValue());
  ErrorOr<ModeAssignment> R = readSchedule(Text, 3);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("unknown mode index 5"), std::string::npos);
  // Negative path modes are rejected even without a table.
  EXPECT_FALSE(readSchedule("cdvs-schedule v1\ninitial 0\nedges 0\n"
                            "paths 1\n0 1 2 -1\nend\n")
                   .hasValue());
  // Bad path endpoints (interior blocks cannot be negative).
  EXPECT_FALSE(readSchedule("cdvs-schedule v1\ninitial 0\nedges 0\n"
                            "paths 1\n0 -1 2 1\nend\n")
                   .hasValue());
}

TEST(ScheduleIO, FileRoundTripAndErrors) {
  ModeAssignment A;
  A.InitialMode = 2;
  A.EdgeMode[{-1, 0}] = 1;
  A.EdgeMode[{1, 4}] = 0;
  A.PathMode[{1, 4, 1}] = 2;
  std::string Path =
      testing::TempDir() + "/cdvs_schedule_io_test.cdvs";
  ErrorOr<bool> W = writeScheduleFile(Path, A);
  ASSERT_TRUE(W.hasValue()) << W.message();
  ErrorOr<ModeAssignment> Back = readScheduleFile(Path, 3);
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(writeSchedule(*Back), writeSchedule(A));

  // Missing file: an error naming the path, not a crash.
  ErrorOr<ModeAssignment> Missing =
      readScheduleFile(Path + ".does-not-exist");
  ASSERT_FALSE(Missing.hasValue());
  EXPECT_NE(Missing.message().find("does-not-exist"), std::string::npos);

  // A file truncated on disk fails like truncated text.
  std::string Text = writeSchedule(A);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fwrite(Text.data(), 1, Text.size() / 2, F);
  std::fclose(F);
  EXPECT_FALSE(readScheduleFile(Path).hasValue());
  std::remove(Path.c_str());
}

} // namespace
