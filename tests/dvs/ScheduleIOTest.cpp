//===- tests/dvs/ScheduleIOTest.cpp - mode-set listing output -------------===//

#include "dvs/ScheduleIO.h"

#include "dvs/DvsScheduler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

struct Fixture {
  Workload W = workloadByName("gsm");
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof;
  ModeAssignment Assignment;

  Fixture() {
    Sim = std::make_unique<Simulator>(*W.Fn);
    W.defaultInput().Setup(*Sim);
    Prof = collectProfile(*Sim, Modes);
    DvsOptions O;
    O.InitialMode = 2;
    DvsScheduler S(*W.Fn, Prof, Modes, Reg, O);
    double Deadline = 0.5 * (Prof.TotalTimeAtMode.front() +
                             Prof.TotalTimeAtMode.back());
    ErrorOr<ScheduleResult> R = S.schedule(Deadline);
    assert(R.hasValue());
    Assignment = R->Assignment;
  }
};

TEST(ScheduleIO, ListingHasOneLinePerEdge) {
  Fixture F;
  std::string Out = printAssignment(*F.W.Fn, F.Assignment, F.Modes);
  size_t Lines = 0;
  for (char C : Out)
    Lines += (C == '\n');
  // Header + one line per assigned edge.
  EXPECT_EQ(Lines, 1 + F.Assignment.EdgeMode.size());
  EXPECT_NE(Out.find("initial mode 2"), std::string::npos);
  EXPECT_NE(Out.find("set-mode"), std::string::npos);
}

TEST(ScheduleIO, ProfiledListingMarksLoopBackEdgesSilent) {
  Fixture F;
  std::string Out =
      printAssignment(*F.W.Fn, F.Assignment, F.Modes, &F.Prof);
  // The hot LTP loop's back edge stays in its own mode: silent.
  EXPECT_NE(Out.find("silent"), std::string::npos);
  EXPECT_NE(Out.find("count"), std::string::npos);
}

TEST(ScheduleIO, SummaryCountsEveryEdgeOnce) {
  Fixture F;
  std::string S = summarizeAssignment(F.Assignment, F.Modes);
  // Parse back the counts and compare with the edge total.
  int Total = 0;
  size_t Pos = 0;
  while ((Pos = S.find(':', Pos)) != std::string::npos) {
    Total += std::atoi(S.c_str() + Pos + 1);
    ++Pos;
  }
  EXPECT_EQ(Total, static_cast<int>(F.Assignment.EdgeMode.size()));
}

TEST(ScheduleIO, UniformAssignmentListsNothing) {
  Fixture F;
  ModeAssignment Uniform = ModeAssignment::uniform(1);
  std::string Out = printAssignment(*F.W.Fn, Uniform, F.Modes);
  EXPECT_NE(Out.find("initial mode 1"), std::string::npos);
  EXPECT_EQ(Out.find("set-mode"), std::string::npos);
}

} // namespace
