//===- tests/analytic/SingleSettingTest.cpp - inter-program by-product ----===//

#include "analytic/AnalyticModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;

namespace {

TEST(SingleSetting, MeetsDeadlineExactlyOrAtRangeEdge) {
  AnalyticModel M(VfModel::paperDefault(), 0.6, 1.65);
  AnalyticParams P;
  P.NoverlapCycles = 4e6;
  P.NcacheCycles = 0.3e6;
  P.NdependentCycles = 5.8e6;
  P.TinvariantSeconds = 20e-3;
  P.TdeadlineSeconds = 30e-3;
  VoltageLevel L = M.optimalSingleSetting(P);
  ASSERT_GT(L.Hertz, 0.0);
  // Interior solution: running at the chosen frequency exactly consumes
  // the deadline.
  EXPECT_NEAR(M.totalTimeAt(P, L.Hertz), P.TdeadlineSeconds,
              1e-6 * P.TdeadlineSeconds);
  // Consistent with the energy function: E_single uses the same V.
  double Cycles = std::max(P.NoverlapCycles, P.NcacheCycles) +
                  P.NdependentCycles;
  EXPECT_NEAR(M.singleFrequencyEnergy(P), Cycles * L.Volts * L.Volts,
              1e-6 * M.singleFrequencyEnergy(P));
}

TEST(SingleSetting, ClampsToSlowestWhenDeadlineIsVeryLax) {
  AnalyticModel M(VfModel::paperDefault(), 0.6, 1.65);
  AnalyticParams P;
  P.NoverlapCycles = 1e6;
  P.NcacheCycles = 0.5e6;
  P.NdependentCycles = 1e6;
  P.TinvariantSeconds = 1e-3;
  P.TdeadlineSeconds = 10.0; // ten seconds: anything works
  VoltageLevel L = M.optimalSingleSetting(P);
  EXPECT_NEAR(L.Volts, 0.6, 1e-9);
}

TEST(SingleSetting, InfeasibleReportsZero) {
  AnalyticModel M(VfModel::paperDefault(), 0.6, 1.65);
  AnalyticParams P;
  P.NoverlapCycles = 1e9;
  P.NdependentCycles = 1e9;
  P.NcacheCycles = 1e8;
  P.TinvariantSeconds = 1e-3;
  P.TdeadlineSeconds = 1e-3;
  VoltageLevel L = M.optimalSingleSetting(P);
  EXPECT_DOUBLE_EQ(L.Volts, 0.0);
  EXPECT_DOUBLE_EQ(L.Hertz, 0.0);
}

TEST(SingleSetting, MonotoneInDeadline) {
  AnalyticModel M(VfModel::paperDefault(), 0.6, 1.65);
  AnalyticParams P;
  P.NoverlapCycles = 4e6;
  P.NcacheCycles = 2e6;
  P.NdependentCycles = 8e6;
  P.TinvariantSeconds = 3e-3;
  double Prev = 1e18;
  for (double Tdl : {20e-3, 30e-3, 50e-3, 90e-3}) {
    P.TdeadlineSeconds = Tdl;
    VoltageLevel L = M.optimalSingleSetting(P);
    ASSERT_GT(L.Hertz, 0.0);
    EXPECT_LE(L.Hertz, Prev * (1 + 1e-12));
    Prev = L.Hertz;
  }
}

} // namespace
