//===- tests/analytic/AnalyticModelTest.cpp - Section 3 model -------------===//

#include "analytic/AnalyticModel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;

namespace {

AnalyticModel paperModel() {
  return AnalyticModel(VfModel::paperDefault(), 0.6, 1.65);
}

/// A memory-dominated parameter point: Noverlap > Ncache, generous miss
/// window, moderately lax deadline.
AnalyticParams memoryDominatedParams() {
  AnalyticParams P;
  P.NoverlapCycles = 4e6;
  P.NcacheCycles = 0.3e6;
  P.NdependentCycles = 5.8e6;
  P.TinvariantSeconds = 20e-3;
  P.TdeadlineSeconds = 30e-3;
  return P;
}

TEST(Analytic, FinvariantDefinition) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  EXPECT_NEAR(M.finvariant(P), (4e6 - 0.3e6) / 20e-3, 1.0);
  P.NcacheCycles = P.NoverlapCycles;
  EXPECT_DOUBLE_EQ(M.finvariant(P), 0.0);
}

TEST(Analytic, TotalTimeMatchesRegions) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  double F = 500e6;
  double Region1 = std::max(P.TinvariantSeconds + P.NcacheCycles / F,
                            P.NoverlapCycles / F);
  EXPECT_NEAR(M.totalTimeAt(P, F), Region1 + P.NdependentCycles / F,
              1e-12);
}

TEST(Analytic, ClassifyRegimes) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  EXPECT_EQ(M.classify(P), AnalyticCase::MemoryDominated);

  // Slack: cache-hit stream at least as big as the overlap stream
  // (shorter miss window keeps the point feasible).
  AnalyticParams Slack = P;
  Slack.NcacheCycles = Slack.NoverlapCycles + 1;
  Slack.TinvariantSeconds = 10e-3;
  EXPECT_EQ(M.classify(Slack), AnalyticCase::MemoryDominatedSlack);

  // Computation dominated: negligible miss window.
  AnalyticParams Comp = P;
  Comp.TinvariantSeconds = 1e-6;
  EXPECT_EQ(M.classify(Comp), AnalyticCase::ComputationDominated);

  // Infeasible: deadline below the fastest possible execution.
  AnalyticParams Bad = P;
  Bad.TdeadlineSeconds = 1e-6;
  EXPECT_EQ(M.classify(Bad), AnalyticCase::Infeasible);
}

TEST(Analytic, SingleFrequencyMeetsDeadlineExactly) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  double E = M.singleFrequencyEnergy(P);
  ASSERT_TRUE(std::isfinite(E));
  // Invert: the chosen frequency satisfies T(f*) == deadline (memory
  // exposed at f*, so f* = (Ncache + Ndep) / (tdl - tinv)).
  double FStar = (P.NcacheCycles + P.NdependentCycles) /
                 (P.TdeadlineSeconds - P.TinvariantSeconds);
  double V = M.vfModel().voltageFor(FStar);
  double Cycles =
      std::max(P.NoverlapCycles, P.NcacheCycles) + P.NdependentCycles;
  EXPECT_NEAR(E, Cycles * V * V, 1e-6 * E);
}

TEST(Analytic, ComputationDominatedHasNoSavings) {
  AnalyticModel M = paperModel();
  AnalyticParams P;
  P.NoverlapCycles = 5e6;
  P.NcacheCycles = 1e6;
  P.NdependentCycles = 5e6;
  P.TinvariantSeconds = 1e-6; // negligible window
  P.TdeadlineSeconds = 25e-3;
  ASSERT_EQ(M.classify(P), AnalyticCase::ComputationDominated);
  ContinuousSolution S = M.solveContinuous(P);
  EXPECT_LT(S.SavingRatio, 1e-3);
  EXPECT_NEAR(S.V1, S.V2, 1e-3); // single voltage
}

TEST(Analytic, SlackCaseHasNoContinuousSavings) {
  AnalyticModel M = paperModel();
  AnalyticParams P;
  P.NoverlapCycles = 1e6;
  P.NcacheCycles = 4e6; // Ncache >= Noverlap
  P.NdependentCycles = 5e6;
  P.TinvariantSeconds = 5e-3;
  P.TdeadlineSeconds = 40e-3;
  ASSERT_EQ(M.classify(P), AnalyticCase::MemoryDominatedSlack);
  ContinuousSolution S = M.solveContinuous(P);
  EXPECT_LT(S.SavingRatio, 1e-3);
}

TEST(Analytic, MemoryDominatedTwoFrequencySavings) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  ContinuousSolution S = M.solveContinuous(P);
  ASSERT_EQ(S.Kind, AnalyticCase::MemoryDominated);
  EXPECT_GT(S.SavingRatio, 0.01);
  // Two-frequency structure: slow overlap, fast dependent phase.
  EXPECT_LT(S.V1, S.V2);
  EXPECT_LE(S.EnergyMulti, S.EnergySingle + 1e-9);
}

TEST(Analytic, EnergyAtV1CurveIsFiniteNearOptimumAndInfeasibleAtEdges) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  ContinuousSolution S = M.solveContinuous(P);
  double AtOpt = M.energyAtV1(P, S.V1);
  EXPECT_TRUE(std::isfinite(AtOpt));
  EXPECT_NEAR(AtOpt, S.EnergyMulti, 1e-6 * AtOpt);
  // A too-slow overlap region leaves no time for the dependent phase.
  AnalyticParams Tight = P;
  Tight.TdeadlineSeconds = M.totalTimeAt(P, M.vfModel().frequencyAt(1.65))
                           * 1.001;
  EXPECT_FALSE(std::isfinite(M.energyAtV1(Tight, 0.6)));
}

TEST(Analytic, InfeasibleDeadline) {
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  P.TdeadlineSeconds = 1e-6;
  EXPECT_FALSE(std::isfinite(M.singleFrequencyEnergy(P)));
  ContinuousSolution S = M.solveContinuous(P);
  EXPECT_EQ(S.Kind, AnalyticCase::Infeasible);
  DiscreteSolution D = M.solveDiscrete(P, ModeTable::xscale3());
  EXPECT_EQ(D.Kind, AnalyticCase::Infeasible);
}

TEST(Analytic, DiscreteSingleBestPicksSlowestFeasibleLevel) {
  AnalyticModel M = paperModel();
  ModeTable T = ModeTable::xscale3();
  AnalyticParams P = memoryDominatedParams();
  // Very lax: even 200 MHz meets it.
  P.TdeadlineSeconds = M.totalTimeAt(P, 200e6) * 1.01;
  double E = M.discreteSingleBest(P, T);
  double Cycles =
      std::max(P.NoverlapCycles, P.NcacheCycles) + P.NdependentCycles;
  EXPECT_NEAR(E, Cycles * 0.7 * 0.7, 1e-6 * E);
}

TEST(Analytic, DiscreteBeatsOrMatchesSingleLevel) {
  AnalyticModel M = paperModel();
  VfModel Vf = VfModel::paperDefault();
  for (int Levels : {3, 7, 13}) {
    ModeTable T = ModeTable::evenVoltageLevels(Levels, 0.7, 1.65, Vf);
    AnalyticParams P = memoryDominatedParams();
    DiscreteSolution D = M.solveDiscrete(P, T);
    ASSERT_NE(D.Kind, AnalyticCase::Infeasible);
    EXPECT_LE(D.EnergyMulti, D.EnergySingle + 1e-9) << Levels;
    EXPECT_GE(D.SavingRatio, 0.0);
  }
}

TEST(Analytic, MoreLevelsShrinkDiscreteSavings) {
  // The paper's headline discrete result: finer mode tables leave less
  // for intra-program DVS. Compare the average saving over a parameter
  // spread for 3 vs 13 levels.
  AnalyticModel M = paperModel();
  VfModel Vf = VfModel::paperDefault();
  ModeTable T3 = ModeTable::evenVoltageLevels(3, 0.7, 1.65, Vf);
  ModeTable T13 = ModeTable::evenVoltageLevels(13, 0.7, 1.65, Vf);
  double Sum3 = 0.0, Sum13 = 0.0;
  int Count = 0;
  for (double DlScale : {1.2, 1.5, 2.0, 3.0}) {
    AnalyticParams P = memoryDominatedParams();
    P.TdeadlineSeconds =
        M.totalTimeAt(P, M.vfModel().frequencyAt(1.65)) * DlScale;
    DiscreteSolution D3 = M.solveDiscrete(P, T3);
    DiscreteSolution D13 = M.solveDiscrete(P, T13);
    if (D3.Kind == AnalyticCase::Infeasible)
      continue;
    Sum3 += D3.SavingRatio;
    Sum13 += D13.SavingRatio;
    ++Count;
  }
  ASSERT_GT(Count, 0);
  EXPECT_GE(Sum3, Sum13);
}

TEST(Analytic, NestedTablesOnlyImprove) {
  // Refining a mode table by *adding* levels (supersets) can only widen
  // the discrete schedule space, so optimal energy weakly decreases.
  //
  // Note the continuous 2-voltage optimum is NOT a strict lower bound on
  // the discrete construction: the memory-dominated y-sweep (after the
  // paper, Section 3.4) may run the miss-window compute at a different
  // speed than the hit-paced stream — two speeds inside region 1, which
  // the single-v1 continuous analysis forbids itself. So we also only
  // check the discrete result lands in the same ballpark as the
  // continuous one, not above it.
  AnalyticModel M = paperModel();
  VfModel Vf = VfModel::paperDefault();
  AnalyticParams P = memoryDominatedParams();

  auto level = [&](double V) { return VoltageLevel{V, Vf.frequencyAt(V)}; };
  ModeTable T2({level(0.7), level(1.65)});
  ModeTable T3({level(0.7), level(1.175), level(1.65)});
  ModeTable T5({level(0.7), level(0.94), level(1.175), level(1.41),
                level(1.65)});
  DiscreteSolution D2 = M.solveDiscrete(P, T2);
  DiscreteSolution D3 = M.solveDiscrete(P, T3);
  DiscreteSolution D5 = M.solveDiscrete(P, T5);
  ASSERT_NE(D2.Kind, AnalyticCase::Infeasible);
  EXPECT_LE(D3.EnergyMulti, D2.EnergyMulti * (1.0 + 1e-9));
  EXPECT_LE(D5.EnergyMulti, D3.EnergyMulti * (1.0 + 1e-9));

  ContinuousSolution C = M.solveContinuous(P);
  EXPECT_GT(D5.EnergyMulti, 0.8 * C.EnergyMulti);
  EXPECT_LT(D5.EnergyMulti, 1.5 * C.EnergyMulti);
}

TEST(Analytic, DiscreteEminYCurveHasFiniteMinimum) {
  AnalyticModel M = paperModel();
  ModeTable T = ModeTable::evenVoltageLevels(7, 0.7, 1.65,
                                             VfModel::paperDefault());
  AnalyticParams P = memoryDominatedParams();
  DiscreteSolution D = M.solveDiscrete(P, T);
  ASSERT_EQ(D.Kind, AnalyticCase::MemoryDominated);
  double EAtBest = M.discreteEminAtY(P, T, D.BestY);
  EXPECT_TRUE(std::isfinite(EAtBest));
  // Scanning y must never find anything below the solver's choice.
  double YLo = P.NcacheCycles / T.maxFrequency();
  double YHi = P.TdeadlineSeconds - P.TinvariantSeconds -
               P.NdependentCycles / T.maxFrequency();
  for (int I = 1; I < 60; ++I) {
    double Y = YLo + (YHi - YLo) * I / 60.0;
    double E = M.discreteEminAtY(P, T, Y);
    if (std::isfinite(E)) {
      EXPECT_GE(E, EAtBest - 1e-6 * EAtBest) << "y=" << Y;
    }
  }
}

TEST(Analytic, SavingsRequirePaperConditions) {
  // Section 3.3.3: savings require Noverlap > Ncache AND
  // fideal > finvariant. Violate each and check zero savings.
  AnalyticModel M = paperModel();
  AnalyticParams P = memoryDominatedParams();
  ContinuousSolution Good = M.solveContinuous(P);
  EXPECT_GT(Good.SavingRatio, 0.0);

  AnalyticParams NoOverlap = P;
  NoOverlap.NoverlapCycles = NoOverlap.NcacheCycles / 2.0;
  ContinuousSolution S1 = M.solveContinuous(NoOverlap);
  EXPECT_LT(S1.SavingRatio, 1e-3);

  AnalyticParams FastInv = P;
  FastInv.TinvariantSeconds = 1e-7;
  ContinuousSolution S2 = M.solveContinuous(FastInv);
  EXPECT_LT(S2.SavingRatio, 1e-3);
}

} // namespace
