//===- tests/analytic/AnalyticPropertyTest.cpp - randomized model checks ---===//
//
// Property tests over random program-parameter points: invariants the
// Section 3 model must satisfy everywhere, regardless of regime.
//
//===----------------------------------------------------------------------===//

#include "analytic/AnalyticModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;

namespace {

AnalyticParams randomParams(Rng &R) {
  AnalyticParams P;
  P.NoverlapCycles = 1e5 + R.nextDouble() * 2e7;
  P.NdependentCycles = 1e5 + R.nextDouble() * 5e7;
  P.NcacheCycles = 1e4 + R.nextDouble() * 2e7;
  P.TinvariantSeconds = R.nextDouble() * 30e-3;
  P.TdeadlineSeconds = 1e-3 + R.nextDouble() * 200e-3;
  return P;
}

class AnalyticRandom : public ::testing::TestWithParam<int> {
protected:
  AnalyticModel Model{VfModel::paperDefault(), 0.6, 1.65};
  ModeTable Levels =
      ModeTable::evenVoltageLevels(7, 0.7, 1.65, VfModel::paperDefault());
};

TEST_P(AnalyticRandom, SolutionsAreInternallyConsistent) {
  Rng R(4200 + GetParam());
  for (int Trial = 0; Trial < 60; ++Trial) {
    AnalyticParams P = randomParams(R);
    AnalyticCase Kind = Model.classify(P);
    ContinuousSolution C = Model.solveContinuous(P);
    DiscreteSolution D = Model.solveDiscrete(P, Levels);

    if (Kind == AnalyticCase::Infeasible) {
      EXPECT_EQ(C.Kind, AnalyticCase::Infeasible);
      // Discrete can only be infeasible too (the fastest level equals
      // the continuous range's top).
      EXPECT_EQ(D.Kind, AnalyticCase::Infeasible);
      continue;
    }

    // Savings ratios live in [0, 1).
    EXPECT_GE(C.SavingRatio, 0.0);
    EXPECT_LT(C.SavingRatio, 1.0);
    EXPECT_GE(D.SavingRatio, 0.0);
    EXPECT_LT(D.SavingRatio, 1.0);

    // Multi <= single for both models.
    EXPECT_LE(C.EnergyMulti, C.EnergySingle * (1 + 1e-9));
    EXPECT_LE(D.EnergyMulti, D.EnergySingle * (1 + 1e-9));

    // Voltages inside the range; memory-dominated orders v1 <= v2.
    EXPECT_GE(C.V1, 0.6 - 1e-9);
    EXPECT_LE(C.V1, 1.65 + 1e-9);
    if (C.Kind == AnalyticCase::MemoryDominated) {
      EXPECT_LE(C.V1, C.V2 + 1e-6);
    }

    // The chosen operating points satisfy the deadline in the lumped
    // model: region1(v1) + dependent(v2) <= tdl.
    if (std::isfinite(C.EnergyMulti) && C.F1 > 0.0 && C.F2 > 0.0) {
      double Region1 =
          std::max(P.TinvariantSeconds + P.NcacheCycles / C.F1,
                   P.NoverlapCycles / C.F1);
      double T = Region1 + P.NdependentCycles / C.F2;
      EXPECT_LE(T, P.TdeadlineSeconds * (1.0 + 1e-6));
    }

    // Only the no-savings conditions of Section 3.3.3 may zero out the
    // continuous saving when memory dominated... and conversely,
    // regimes without the conditions never save.
    if (Kind != AnalyticCase::MemoryDominated) {
      EXPECT_LT(C.SavingRatio, 1e-6);
    }
  }
}

TEST_P(AnalyticRandom, SingleFrequencyEnergyIsTightAtItsDeadline) {
  // Tightening the deadline can only raise the single-frequency energy.
  Rng R(9300 + GetParam());
  for (int Trial = 0; Trial < 40; ++Trial) {
    AnalyticParams P = randomParams(R);
    double E1 = Model.singleFrequencyEnergy(P);
    AnalyticParams Tighter = P;
    Tighter.TdeadlineSeconds *= 0.7;
    double E2 = Model.singleFrequencyEnergy(Tighter);
    if (std::isfinite(E2)) {
      EXPECT_GE(E2, E1 * (1.0 - 1e-9));
    }
    AnalyticParams Laxer = P;
    Laxer.TdeadlineSeconds *= 1.5;
    double E3 = Model.singleFrequencyEnergy(Laxer);
    if (std::isfinite(E1)) {
      ASSERT_TRUE(std::isfinite(E3));
      EXPECT_LE(E3, E1 * (1.0 + 1e-9));
    }
  }
}

TEST_P(AnalyticRandom, DiscreteSavingsShrinkWithRefinementOnAverage) {
  // Aggregate trend across random points: a 13-level table saves no
  // more than a 3-level one on average (the paper's headline).
  Rng R(7700 + GetParam());
  VfModel Vf = VfModel::paperDefault();
  ModeTable T3 = ModeTable::evenVoltageLevels(3, 0.7, 1.65, Vf);
  ModeTable T13 = ModeTable::evenVoltageLevels(13, 0.7, 1.65, Vf);
  double Sum3 = 0.0, Sum13 = 0.0;
  int Count = 0;
  for (int Trial = 0; Trial < 60; ++Trial) {
    AnalyticParams P = randomParams(R);
    DiscreteSolution D3 = Model.solveDiscrete(P, T3);
    if (D3.Kind == AnalyticCase::Infeasible)
      continue;
    DiscreteSolution D13 = Model.solveDiscrete(P, T13);
    Sum3 += D3.SavingRatio;
    Sum13 += D13.SavingRatio;
    ++Count;
  }
  if (Count >= 10) {
    EXPECT_GE(Sum3, Sum13 * 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticRandom, ::testing::Range(0, 6));

} // namespace
