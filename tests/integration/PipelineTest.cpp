//===- tests/integration/PipelineTest.cpp - cross-module pipeline ---------===//
//
// Integration tests across the whole stack: workload -> simulator ->
// profile -> MILP scheduler -> DVS-aware re-execution, plus agreement
// between the analytic bound and the realized MILP results (the paper's
// Section 6.5 comparison).
//
//===----------------------------------------------------------------------===//

#include "analytic/AnalyticModel.h"
#include "dvs/DvsScheduler.h"
#include "profile/Profile.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

struct Stack {
  Workload W;
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();
  Profile Prof;

  explicit Stack(const std::string &Name) : W(workloadByName(Name)) {
    Sim = std::make_unique<Simulator>(*W.Fn);
    W.defaultInput().Setup(*Sim);
    Prof = collectProfile(*Sim, Modes);
  }

  double deadlineBetween(double Alpha) const {
    return (1.0 - Alpha) * Prof.TotalTimeAtMode.back() +
           Alpha * Prof.TotalTimeAtMode.front();
  }
};

TEST(Pipeline, GsmScheduleMeetsEveryDeadline) {
  Stack S("gsm");
  DvsOptions O;
  O.InitialMode = 2;
  for (double Alpha : {0.1, 0.5, 0.9}) {
    double Deadline = S.deadlineBetween(Alpha);
    DvsScheduler Sched(*S.W.Fn, S.Prof, S.Modes, S.Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    ASSERT_TRUE(R.hasValue()) << R.message();
    RunStats Run = S.Sim->run(S.Modes, R->Assignment, S.Regulator);
    EXPECT_LE(Run.TimeSeconds, Deadline * 1.0001) << "alpha " << Alpha;
  }
}

TEST(Pipeline, EnergyDecreasesAsDeadlineRelaxes) {
  Stack S("mpeg_decode");
  DvsOptions O;
  O.InitialMode = 2;
  double Prev = -1.0;
  for (double Alpha : {0.05, 0.3, 0.6, 0.95}) {
    double Deadline = S.deadlineBetween(Alpha);
    DvsScheduler Sched(*S.W.Fn, S.Prof, S.Modes, S.Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    ASSERT_TRUE(R.hasValue()) << R.message();
    RunStats Run = S.Sim->run(S.Modes, R->Assignment, S.Regulator);
    if (Prev > 0.0) {
      EXPECT_LE(Run.EnergyJoules, Prev * 1.001) << "alpha " << Alpha;
    }
    Prev = Run.EnergyJoules;
  }
}

TEST(Pipeline, ScheduledEnergyNeverWorseThanBestSingleMode) {
  // The MILP always has every all-one-mode schedule in its feasible set
  // (modulo the pinned initial transition), so it can only improve.
  for (const char *Name : {"adpcm", "ghostscript"}) {
    Stack S(Name);
    DvsOptions O;
    O.InitialMode = 2;
    double Deadline = S.deadlineBetween(0.5);
    DvsScheduler Sched(*S.W.Fn, S.Prof, S.Modes, S.Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    ASSERT_TRUE(R.hasValue()) << Name << ": " << R.message();
    RunStats Run = S.Sim->run(S.Modes, R->Assignment, S.Regulator);

    double BestSingle = -1.0;
    for (size_t M = 0; M < S.Modes.size(); ++M) {
      if (S.Prof.TotalTimeAtMode[M] > Deadline)
        continue;
      // Charge the pinned-entry transition the MILP also pays.
      double E = S.Prof.TotalEnergyAtMode[M] +
                 S.Regulator.switchEnergy(S.Modes.level(2).Volts,
                                          S.Modes.level(M).Volts);
      if (BestSingle < 0.0 || E < BestSingle)
        BestSingle = E;
    }
    ASSERT_GT(BestSingle, 0.0);
    EXPECT_LE(Run.EnergyJoules, BestSingle * 1.001) << Name;
  }
}

TEST(Pipeline, AnalyticBoundDominatesMilpSavings) {
  // Section 6.5: the analytic model (free switching, continuous split)
  // is an optimistic bound on what the MILP extracts in practice.
  Stack S("adpcm");
  AnalyticModel Model(VfModel::paperDefault(), 0.6, 1.65);
  DvsOptions O;
  O.InitialMode = 2;
  for (double Alpha : {0.4, 0.8}) {
    double Deadline = S.deadlineBetween(Alpha);
    DvsScheduler Sched(*S.W.Fn, S.Prof, S.Modes, S.Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    ASSERT_TRUE(R.hasValue()) << R.message();
    RunStats Run = S.Sim->run(S.Modes, R->Assignment, S.Regulator);

    double BestSingle = -1.0;
    size_t BestSingleMode = 0;
    for (size_t M = 0; M < S.Modes.size(); ++M)
      if (S.Prof.TotalTimeAtMode[M] <= Deadline &&
          (BestSingle < 0.0 ||
           S.Prof.TotalEnergyAtMode[M] < BestSingle)) {
        BestSingle = S.Prof.TotalEnergyAtMode[M];
        BestSingleMode = M;
      }
    double MilpSaving =
        std::max(0.0, 1.0 - Run.EnergyJoules / BestSingle);

    AnalyticParams P;
    P.NoverlapCycles =
        static_cast<double>(S.Prof.Reference.NoverlapCycles);
    P.NdependentCycles =
        static_cast<double>(S.Prof.Reference.NdependentCycles);
    P.NcacheCycles = static_cast<double>(S.Prof.Reference.NcacheCycles);
    P.TinvariantSeconds = S.Prof.Reference.TinvariantSeconds;
    P.TdeadlineSeconds = Deadline;
    DiscreteSolution D = Model.solveDiscrete(P, S.Modes);
    ASSERT_NE(D.Kind, AnalyticCase::Infeasible);
    // Align the baselines: the lumped model and the simulator can
    // disagree about whether the *slowest* level meets a lax deadline
    // (overlap parameters are measured at the fastest point), which
    // would compare savings against different single-mode references.
    // Recompute the analytic saving against the mode the simulator
    // found to be the best feasible single setting.
    double Vb = S.Modes.level(BestSingleMode).Volts;
    double Cycles = std::max(P.NoverlapCycles, P.NcacheCycles) +
                    P.NdependentCycles;
    double AnalyticSingleAtBaseline = Cycles * Vb * Vb;
    double AnalyticSaving = std::max(
        0.0, 1.0 - D.EnergyMulti / AnalyticSingleAtBaseline);
    EXPECT_GE(AnalyticSaving + 0.05, MilpSaving)
        << "alpha " << Alpha << ": analytic bound violated";
  }
}

TEST(Pipeline, CrossInputScheduleStillMeetsPaddedDeadline) {
  // Schedule from one mpeg input, run another of the same category:
  // times shift but the schedule stays sane (paper Figure 19 regime).
  Workload W = workloadByName("mpeg_decode");
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();

  Simulator SimProfile(*W.Fn);
  W.input("100b").Setup(SimProfile);
  Profile P = collectProfile(SimProfile, Modes);

  DvsOptions O;
  O.InitialMode = 2;
  double Deadline = 0.5 * (P.TotalTimeAtMode[0] + P.TotalTimeAtMode[2]);
  DvsScheduler Sched(*W.Fn, P, Modes, Reg, O);
  ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
  ASSERT_TRUE(R.hasValue()) << R.message();

  Simulator SimRun(*W.Fn);
  W.input("bbc").Setup(SimRun);
  RunStats Run = SimRun.run(Modes, R->Assignment, Reg);
  EXPECT_TRUE(Run.Completed);
  // Same-category input: runtime within 2x of the deadline target.
  EXPECT_LT(Run.TimeSeconds, 2.0 * Deadline);
}

} // namespace
