//===- tests/integration/SensitivityTest.cpp - profile-input sensitivity --===//
//
// The paper's Section 6.4 closing observation: schedules are fairly
// robust to which (same-category) input was profiled — energy results
// vary only modestly across profile inputs. These tests quantify that
// on every workload with multiple inputs.
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

class CrossInput : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossInput, SameCategoryScheduleTransfersWell) {
  Workload W = workloadByName(GetParam());
  // First two inputs of the same workload (mpeg's first two are both
  // noB; the others' pairs share a category by construction).
  ASSERT_GE(W.Inputs.size(), 2u);
  const WorkloadInput &InA = W.Inputs[0];
  const WorkloadInput &InB = W.Inputs[1];

  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();

  Simulator SimA(*W.Fn);
  InA.Setup(SimA);
  Profile ProfA = collectProfile(SimA, Modes);
  Simulator SimB(*W.Fn);
  InB.Setup(SimB);
  Profile ProfB = collectProfile(SimB, Modes);

  // Schedule on A at a lax-ish target; apply to B with B's own target.
  auto deadlineOf = [](const Profile &P) {
    return 0.3 * P.TotalTimeAtMode.back() +
           0.7 * P.TotalTimeAtMode.front();
  };
  DvsOptions O;
  O.InitialMode = 2;
  DvsScheduler SchedA(*W.Fn, ProfA, Modes, Reg, O);
  ErrorOr<ScheduleResult> RA = SchedA.schedule(deadlineOf(ProfA));
  ASSERT_TRUE(RA.hasValue()) << RA.message();

  DvsScheduler SchedB(*W.Fn, ProfB, Modes, Reg, O);
  ErrorOr<ScheduleResult> RB = SchedB.schedule(deadlineOf(ProfB));
  ASSERT_TRUE(RB.hasValue()) << RB.message();

  RunStats BSelf = SimB.run(Modes, RB->Assignment, Reg);
  RunStats BCross = SimB.run(Modes, RA->Assignment, Reg);

  EXPECT_TRUE(BCross.Completed);
  // Cross-profiled energy within 25% of self-profiled (paper: "fairly
  // modest" sensitivity), and runtime within 40% of the self-profiled
  // one (the deadline itself shifts with input size).
  EXPECT_LT(BCross.EnergyJoules,
            BSelf.EnergyJoules * 1.25 + 2e-6)
      << GetParam();
  EXPECT_LT(BCross.TimeSeconds, BSelf.TimeSeconds * 1.4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, CrossInput,
                         ::testing::Values("adpcm", "epic", "gsm",
                                           "mpg123", "mpeg_decode"));

} // namespace
