//===- tests/integration/RandomProgramTest.cpp - fuzz the whole stack -----===//
//
// Property tests over randomly generated structured programs: every
// layer of the stack must hold its invariants on programs nobody
// hand-tuned — verifier, parser round trip, passes-preserve-semantics,
// simulator physics, and the end-to-end MILP pipeline's deadline
// guarantee.
//
//===----------------------------------------------------------------------===//

#include "../common/RandomProgram.h"

#include "dvs/DvsScheduler.h"
#include "ir/Parser.h"
#include "ir/Passes.h"
#include "profile/Profile.h"

#include <gtest/gtest.h>

using namespace cdvs;
using namespace cdvs::testutil;

namespace {

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, AlwaysVerifyAndTerminate) {
  Rng R(11000 + GetParam());
  for (int Trial = 0; Trial < 8; ++Trial) {
    Function F = makeRandomProgram(R);
    ErrorOr<bool> Ok = F.verify();
    ASSERT_TRUE(Ok.hasValue()) << Ok.message() << "\n" << F.print();
    Simulator Sim(F);
    RunStats S = Sim.runAtLevel({1.65, 800e6});
    EXPECT_TRUE(S.Completed) << F.print();
    EXPECT_GT(S.Instructions, 10u);
  }
}

TEST_P(RandomPrograms, ParserRoundTrips) {
  Rng R(12000 + GetParam());
  for (int Trial = 0; Trial < 8; ++Trial) {
    Function F = makeRandomProgram(R);
    std::string Printed = F.print();
    ErrorOr<Function> Back = parseFunction(Printed);
    ASSERT_TRUE(Back.hasValue()) << Back.message();
    EXPECT_EQ(Back->print(), Printed);
  }
}

TEST_P(RandomPrograms, PassesPreserveSemanticsAndInstructionCount) {
  Rng R(13000 + GetParam());
  for (int Trial = 0; Trial < 8; ++Trial) {
    Function F = makeRandomProgram(R);
    Simulator Before(F);
    RunStats SB = Before.runAtLevel({1.65, 800e6});

    Function G = F;
    simplifyCfg(G);
    ASSERT_TRUE(G.verify().hasValue());
    Simulator After(G);
    RunStats SA = After.runAtLevel({1.65, 800e6});
    EXPECT_EQ(SB.FinalRegs, SA.FinalRegs) << F.print();
    EXPECT_EQ(countStaticInstructions(F), countStaticInstructions(G));
    // Merging can only reduce terminator executions, never grow work.
    EXPECT_LE(SA.Instructions, SB.Instructions);
  }
}

TEST_P(RandomPrograms, SimulatorPhysicsHold) {
  Rng R(14000 + GetParam());
  ModeTable Modes = ModeTable::xscale3();
  for (int Trial = 0; Trial < 5; ++Trial) {
    Function F = makeRandomProgram(R);
    Simulator Sim(F);
    RunStats Slow = Sim.runAtLevel(Modes.level(0));
    RunStats Fast = Sim.runAtLevel(Modes.level(2));
    EXPECT_EQ(Slow.Instructions, Fast.Instructions);
    EXPECT_GE(Slow.TimeSeconds, Fast.TimeSeconds);
    EXPECT_LE(Slow.EnergyJoules, Fast.EnergyJoules);
    EXPECT_NEAR(Slow.TinvariantSeconds, Fast.TinvariantSeconds, 1e-12);
  }
}

TEST_P(RandomPrograms, EndToEndScheduleMeetsDeadline) {
  Rng R(15000 + GetParam());
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  for (int Trial = 0; Trial < 3; ++Trial) {
    Function F = makeRandomProgram(R, /*Regions=*/6);
    Simulator Sim(F);
    Profile Prof = collectProfile(Sim, Modes);
    for (double Alpha : {0.2, 0.7}) {
      double Deadline = (1.0 - Alpha) * Prof.TotalTimeAtMode.back() +
                        Alpha * Prof.TotalTimeAtMode.front();
      DvsOptions O;
      O.InitialMode = 2;
      DvsScheduler Sched(F, Prof, Modes, Reg, O);
      ErrorOr<ScheduleResult> Res = Sched.schedule(Deadline);
      ASSERT_TRUE(Res.hasValue())
          << Res.message() << " alpha=" << Alpha;
      RunStats Run = Sim.run(Modes, Res->Assignment, Reg);
      EXPECT_LE(Run.TimeSeconds, Deadline * 1.0001)
          << "alpha=" << Alpha << "\n" << F.print();
      // Never worse than the all-fastest run plus one switch.
      EXPECT_LE(Run.EnergyJoules,
                Prof.TotalEnergyAtMode.back() * 1.001 +
                    Reg.switchEnergy(Modes.maxVoltage(),
                                     Modes.minVoltage()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0, 10));

} // namespace
