//===- tests/sim/CacheTest.cpp - set-associative LRU cache ----------------===//

#include "sim/Cache.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(Cache, ColdMissThenHit) {
  Cache C({1024, 2, 32});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(31)); // same block
  EXPECT_FALSE(C.access(32)); // next block
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(Cache, GeometryDerivedCorrectly) {
  Cache C({64 * 1024, 4, 32});
  EXPECT_EQ(C.numSets(), 64u * 1024 / (4 * 32));
}

TEST(Cache, LruEvictionOrder) {
  // Direct-capacity set: 2 ways, addresses mapping to the same set.
  Cache C({128, 2, 32}); // 2 sets
  uint64_t SetStride = 64; // two sets * 32B blocks
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(SetStride));     // same set, second way
  EXPECT_TRUE(C.access(0));              // 0 is now MRU
  EXPECT_FALSE(C.access(2 * SetStride)); // evicts LRU (SetStride)
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(SetStride)); // was evicted
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache C({128, 2, 32}); // 2 sets
  EXPECT_FALSE(C.access(0));  // set 0
  EXPECT_FALSE(C.access(32)); // set 1
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(32));
}

TEST(Cache, ResetClearsContentsAndStats) {
  Cache C({1024, 2, 32});
  C.access(0);
  C.access(0);
  C.reset();
  EXPECT_EQ(C.hits(), 0u);
  EXPECT_EQ(C.misses(), 0u);
  EXPECT_FALSE(C.access(0)); // cold again
}

TEST(Cache, FullyAssociativeLikeSingleSet) {
  Cache C({128, 4, 32}); // 1 set, 4 ways
  for (uint64_t B = 0; B < 4; ++B)
    EXPECT_FALSE(C.access(B * 32));
  for (uint64_t B = 0; B < 4; ++B)
    EXPECT_TRUE(C.access(B * 32));
  // The re-touch loop went 0..3, so block 0 is now LRU; a fifth block
  // evicts it.
  EXPECT_FALSE(C.access(4 * 32));
  EXPECT_FALSE(C.access(0 * 32)); // evicted
  EXPECT_TRUE(C.access(2 * 32));
}

TEST(Cache, StreamingNeverHits) {
  Cache C({1024, 4, 32});
  for (uint64_t A = 0; A < 64 * 1024; A += 32)
    C.access(A);
  EXPECT_EQ(C.hits(), 0u);
  EXPECT_EQ(C.misses(), 64u * 1024 / 32);
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache C({4096, 4, 32});
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t A = 0; A < 2048; A += 32)
      C.access(A);
  EXPECT_EQ(C.misses(), 2048u / 32); // only the cold round misses
}

} // namespace
