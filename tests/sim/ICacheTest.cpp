//===- tests/sim/ICacheTest.cpp - optional instruction-cache model --------===//

#include "workloads/Workloads.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

const VoltageLevel Fast{1.65, 800e6};

TEST(ICache, OffByDefaultAndInvisible) {
  Workload W = workloadByName("gsm");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.L1IMisses, 0u);
}

TEST(ICache, ColdMissesOnlyForResidentCode) {
  // A small hot loop: with I-cache modeling on, only the cold fetches
  // miss; steady state hits. Functional results are identical.
  Workload W = workloadByName("adpcm");
  SimConfig On;
  On.ModelICache = true;
  Simulator SimOn(*W.Fn, On);
  W.defaultInput().Setup(SimOn);
  RunStats SOn = SimOn.runAtLevel(Fast);

  Simulator SimOff(*W.Fn);
  W.defaultInput().Setup(SimOff);
  RunStats SOff = SimOff.runAtLevel(Fast);

  EXPECT_GT(SOn.L1IMisses, 0u);
  // The whole program is a few hundred bytes of code: a handful of cold
  // block fetches, vanishing against millions of executed instructions.
  EXPECT_LT(SOn.L1IMisses, 64u);
  EXPECT_EQ(SOn.Instructions, SOff.Instructions);
  EXPECT_EQ(SOn.FinalRegs, SOff.FinalRegs);
  // Fetch misses add (a little) time and energy.
  EXPECT_GE(SOn.TimeSeconds, SOff.TimeSeconds);
  EXPECT_GE(SOn.EnergyJoules, SOff.EnergyJoules);
}

TEST(ICache, ThrashingWhenCodeExceedsCapacity) {
  // A giant straight-line block larger than a tiny I-cache: every
  // revisit re-misses (capacity), unlike the resident-code case.
  Function F("bigcode", 8, 1024);
  IRBuilder B(F);
  int Entry = B.createBlock("entry");
  int Loop = B.createBlock("huge");
  int Exit = B.createBlock("exit");
  B.setInsertPoint(Entry);
  B.movImm(1, 0);
  B.movImm(2, 8); // trips
  B.movImm(3, 1);
  B.jump(Loop);
  B.setInsertPoint(Loop);
  for (int I = 0; I < 600; ++I) // 2400 B of code
    B.add(4, 4, 3);
  B.add(1, 1, 3);
  B.cmpLt(5, 1, 2);
  B.condBr(5, Loop, Exit);
  B.setInsertPoint(Exit);
  B.ret();

  SimConfig Tiny;
  Tiny.ModelICache = true;
  Tiny.L1I = {1024, 2, 32}; // 1 KB I-cache < 2.4 KB of loop code
  Simulator Sim(F, Tiny);
  RunStats S = Sim.runAtLevel(Fast);
  // Each of the 8 trips re-fetches most of the loop's ~75 blocks' worth
  // of lines: misses scale with trips, not just cold lines.
  EXPECT_GT(S.L1IMisses, 8u * 30u);
}

} // namespace
