//===- tests/sim/SimPropertyTest.cpp - cross-workload sim invariants ------===//
//
// Parameterized invariants that must hold for every workload at every
// operating point — the physics of the simulator's model:
//  * energy scales exactly quadratically with voltage (same op stream);
//  * wall time decreases monotonically with frequency;
//  * the frequency-invariant DRAM time is identical at every frequency;
//  * compute cycle counts (overlap + dependent) conserve across modes;
//  * DVS-aware execution with a uniform assignment equals runAtLevel.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

class SimInvariants : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    W = workloadByName(GetParam());
    Sim = std::make_unique<Simulator>(*W.Fn);
    W.defaultInput().Setup(*Sim);
  }

  Workload W;
  std::unique_ptr<Simulator> Sim;
  ModeTable Modes = ModeTable::xscale3();
};

TEST_P(SimInvariants, EnergyIsExactlyQuadraticInVoltage) {
  RunStats A = Sim->runAtLevel(Modes.level(0));
  RunStats B = Sim->runAtLevel(Modes.level(2));
  double V0 = Modes.level(0).Volts, V2 = Modes.level(2).Volts;
  // Identical instruction streams, per-op energy = Ceff * V^2.
  EXPECT_NEAR(A.EnergyJoules / B.EnergyJoules, (V0 * V0) / (V2 * V2),
              1e-9);
}

TEST_P(SimInvariants, TimeMonotoneInFrequency) {
  double Prev = 1e18;
  for (size_t M = 0; M < Modes.size(); ++M) {
    RunStats S = Sim->runAtLevel(Modes.level(M));
    EXPECT_LT(S.TimeSeconds, Prev) << "mode " << M;
    Prev = S.TimeSeconds;
  }
}

TEST_P(SimInvariants, InvariantMemoryTimeIsFrequencyIndependent) {
  RunStats A = Sim->runAtLevel(Modes.level(0));
  RunStats B = Sim->runAtLevel(Modes.level(2));
  EXPECT_NEAR(A.TinvariantSeconds, B.TinvariantSeconds,
              1e-12 + 1e-9 * A.TinvariantSeconds);
  EXPECT_EQ(A.L2Misses, B.L2Misses);
  EXPECT_EQ(A.L1DMisses, B.L1DMisses);
}

TEST_P(SimInvariants, CycleAccountingConservesAcrossModes) {
  // Overlap vs dependent classification shifts with frequency (shorter
  // windows at lower clocks), but their sum — total compute/memory
  // cycles issued — is an instruction-stream property.
  RunStats A = Sim->runAtLevel(Modes.level(0));
  RunStats B = Sim->runAtLevel(Modes.level(2));
  EXPECT_EQ(A.NoverlapCycles + A.NdependentCycles + A.NcacheCycles,
            B.NoverlapCycles + B.NdependentCycles + B.NcacheCycles);
}

TEST_P(SimInvariants, UniformAssignmentMatchesRunAtLevel) {
  TransitionModel Free(0.0, 0.0, 1.0);
  RunStats Direct = Sim->runAtLevel(Modes.level(1));
  RunStats ViaDvs = Sim->run(Modes, ModeAssignment::uniform(1), Free);
  EXPECT_DOUBLE_EQ(Direct.TimeSeconds, ViaDvs.TimeSeconds);
  EXPECT_DOUBLE_EQ(Direct.EnergyJoules, ViaDvs.EnergyJoules);
  EXPECT_EQ(ViaDvs.Transitions, 0u);
}

TEST_P(SimInvariants, TimeLowerBoundedByComputeAndMemory) {
  // Wall time can never beat either pure-compute time or the invariant
  // memory time.
  for (size_t M = 0; M < Modes.size(); ++M) {
    RunStats S = Sim->runAtLevel(Modes.level(M));
    double CycleTime = 1.0 / Modes.level(M).Hertz;
    double ComputeFloor =
        static_cast<double>(S.NoverlapCycles + S.NdependentCycles +
                            S.NcacheCycles) *
        CycleTime;
    EXPECT_GE(S.TimeSeconds * (1 + 1e-9), ComputeFloor) << "mode " << M;
    EXPECT_GE(S.TimeSeconds * (1 + 1e-9), S.TinvariantSeconds)
        << "mode " << M;
  }
}

TEST_P(SimInvariants, GatedTimePlusBusyTimeIsConsistent) {
  // Gated (zero-energy) stall time never exceeds total time.
  RunStats S = Sim->runAtLevel(Modes.level(2));
  EXPECT_GE(S.GatedSeconds, 0.0);
  EXPECT_LE(S.GatedSeconds, S.TimeSeconds);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SimInvariants,
                         ::testing::Values("adpcm", "epic", "gsm",
                                           "mpeg_decode", "mpg123",
                                           "ghostscript"));

} // namespace
