//===- tests/sim/SimulatorTest.cpp - interpreter semantics + timing -------===//

#include "sim/Simulator.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

const VoltageLevel Fast{1.65, 800e6};
const VoltageLevel Slow{0.70, 200e6};

/// Straight-line function: entry computes with \p Emit then rets.
Function straightLine(int NumRegs, size_t Mem,
                      const std::function<void(IRBuilder &)> &Emit) {
  Function F("straight", NumRegs, Mem);
  IRBuilder B(F);
  int E = B.createBlock("entry");
  B.setInsertPoint(E);
  Emit(B);
  B.ret();
  return F;
}

TEST(SimulatorFunctional, IntegerArithmetic) {
  Function F = straightLine(8, 64, [](IRBuilder &B) {
    B.movImm(1, 20);
    B.movImm(2, 3);
    B.add(3, 1, 2);  // 23
    B.sub(4, 1, 2);  // 17
    B.mul(5, 1, 2);  // 60
    B.div(6, 1, 2);  // 6
    B.rem(7, 1, 2);  // 2
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  ASSERT_TRUE(S.Completed);
  EXPECT_EQ(S.FinalRegs[3], 23);
  EXPECT_EQ(S.FinalRegs[4], 17);
  EXPECT_EQ(S.FinalRegs[5], 60);
  EXPECT_EQ(S.FinalRegs[6], 6);
  EXPECT_EQ(S.FinalRegs[7], 2);
}

TEST(SimulatorFunctional, BitwiseAndShifts) {
  Function F = straightLine(8, 64, [](IRBuilder &B) {
    B.movImm(1, 0b1100);
    B.movImm(2, 0b1010);
    B.and_(3, 1, 2);
    B.or_(4, 1, 2);
    B.xor_(5, 1, 2);
    B.movImm(6, 2);
    B.shl(7, 1, 6);
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[3], 0b1000);
  EXPECT_EQ(S.FinalRegs[4], 0b1110);
  EXPECT_EQ(S.FinalRegs[5], 0b0110);
  EXPECT_EQ(S.FinalRegs[7], 0b110000);
}

TEST(SimulatorFunctional, DivideByZeroIsTotal) {
  Function F = straightLine(8, 64, [](IRBuilder &B) {
    B.movImm(1, 7);
    B.movImm(2, 0);
    B.div(3, 1, 2);
    B.rem(4, 1, 2);
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  ASSERT_TRUE(S.Completed);
  EXPECT_EQ(S.FinalRegs[3], 0);
  EXPECT_EQ(S.FinalRegs[4], 0);
}

TEST(SimulatorFunctional, Comparisons) {
  Function F = straightLine(8, 64, [](IRBuilder &B) {
    B.movImm(1, 4);
    B.movImm(2, 9);
    B.cmpEq(3, 1, 1);
    B.cmpNe(4, 1, 2);
    B.cmpLt(5, 2, 1);
    B.cmpLe(6, 1, 1);
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[3], 1);
  EXPECT_EQ(S.FinalRegs[4], 1);
  EXPECT_EQ(S.FinalRegs[5], 0);
  EXPECT_EQ(S.FinalRegs[6], 1);
}

TEST(SimulatorFunctional, LoadStoreRoundTrip) {
  Function F = straightLine(8, 256, [](IRBuilder &B) {
    B.movImm(1, 64);     // address
    B.movImm(2, 0xBEEF);
    B.store(2, 1, 0);
    B.load(3, 1, 0);
    B.load(4, 1, 4); // untouched word = 0
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[3], 0xBEEF);
  EXPECT_EQ(S.FinalRegs[4], 0);
  EXPECT_EQ(S.Loads, 2u);
  EXPECT_EQ(S.Stores, 1u);
}

TEST(SimulatorFunctional, InitialMemoryVisible) {
  Function F = straightLine(8, 256, [](IRBuilder &B) {
    B.movImm(1, 128);
    B.load(2, 1, 0);
  });
  Simulator Sim(F);
  Sim.setInitialMem32(128, 777);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[2], 777);
}

TEST(SimulatorFunctional, InitialRegistersVisible) {
  Function F = straightLine(8, 64, [](IRBuilder &B) { B.add(2, 1, 1); });
  Simulator Sim(F);
  Sim.setInitialReg(1, 21);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[2], 42);
}

TEST(SimulatorFunctional, UnalignedAndOutOfRangeAddressesWrap) {
  Function F = straightLine(8, 256, [](IRBuilder &B) {
    B.movImm(1, 66); // unaligned -> 64
    B.movImm(2, 11);
    B.store(2, 1, 0);
    B.movImm(3, 64);
    B.load(4, 3, 0);
    B.movImm(5, 256 + 64); // wraps to 64
    B.load(6, 5, 0);
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[4], 11);
  EXPECT_EQ(S.FinalRegs[6], 11);
}

TEST(SimulatorTiming, ComputeOnlyTimeScalesWithFrequency) {
  // 10 IntAlu ops + 1 branch-equivalent (ret has no cost) = exact count.
  Function F = straightLine(8, 64, [](IRBuilder &B) {
    for (int I = 0; I < 10; ++I)
      B.movImm(1, I);
  });
  Simulator Sim(F);
  RunStats SFast = Sim.runAtLevel(Fast);
  RunStats SSlow = Sim.runAtLevel(Slow);
  EXPECT_NEAR(SFast.TimeSeconds, 10.0 / 800e6, 1e-15);
  EXPECT_NEAR(SSlow.TimeSeconds, 10.0 / 200e6, 1e-15);
  EXPECT_NEAR(SSlow.TimeSeconds / SFast.TimeSeconds, 4.0, 1e-9);
}

TEST(SimulatorTiming, EnergyQuadraticInVoltage) {
  Function F = straightLine(8, 64, [](IRBuilder &B) {
    for (int I = 0; I < 100; ++I)
      B.movImm(1, I);
  });
  Simulator Sim(F);
  RunStats SFast = Sim.runAtLevel(Fast);
  RunStats SSlow = Sim.runAtLevel(Slow);
  SimConfig C;
  EXPECT_NEAR(SFast.EnergyJoules, 100 * C.CeffIntAlu * 1.65 * 1.65,
              1e-15);
  EXPECT_NEAR(SSlow.EnergyJoules / SFast.EnergyJoules,
              (0.7 * 0.7) / (1.65 * 1.65), 1e-9);
}

TEST(SimulatorTiming, MissLatencyIsFrequencyInvariant) {
  // One load (cold miss) immediately consumed: the DRAM wait appears in
  // full at every frequency.
  Function F = straightLine(8, 4096, [](IRBuilder &B) {
    B.movImm(1, 0);
    B.load(2, 1, 0);
    B.add(3, 2, 2); // dependent use forces the stall
  });
  SimConfig C;
  Simulator Sim(F, C);
  RunStats SFast = Sim.runAtLevel(Fast);
  RunStats SSlow = Sim.runAtLevel(Slow);
  // Compute-side difference scales by 4; the 80 ns DRAM time does not.
  EXPECT_GT(SFast.TimeSeconds, C.DramSeconds);
  double CompFast = SFast.TimeSeconds - C.DramSeconds;
  double CompSlow = SSlow.TimeSeconds - C.DramSeconds;
  EXPECT_NEAR(CompSlow / CompFast, 4.0, 1e-6);
  EXPECT_NEAR(SFast.TinvariantSeconds, C.DramSeconds, 1e-15);
  EXPECT_NEAR(SSlow.TinvariantSeconds, C.DramSeconds, 1e-15);
}

TEST(SimulatorTiming, GatedStallConsumesNoEnergy) {
  // Identical op counts; one version stalls on a miss, the other does
  // not (hit): energies must match even though times differ.
  auto Build = [](bool Warm) {
    return [Warm](IRBuilder &B) {
      B.movImm(1, 0);
      if (Warm) {
        B.load(5, 1, 0); // warms the block
        B.add(6, 5, 5);  // keep op counts equal? no — see note
      }
      B.load(2, 1, 0);
      B.add(3, 2, 2);
    };
  };
  Function FCold = straightLine(8, 4096, Build(false));
  Simulator SimCold(FCold);
  RunStats Cold = SimCold.runAtLevel(Fast);
  EXPECT_GT(Cold.GatedSeconds, 0.0);
  // The stall time itself added no energy: energy equals the sum of op
  // energies, independent of the wait.
  SimConfig C;
  double ExpectedEnergy = (2 * C.CeffIntAlu + C.CeffLoad) * 1.65 * 1.65;
  EXPECT_NEAR(Cold.EnergyJoules, ExpectedEnergy, 1e-15);
}

TEST(SimulatorTiming, OverlapClassification) {
  // load (miss) then independent compute -> Noverlap; dependent compute
  // after the stall -> Ndependent.
  Function F = straightLine(12, 4096, [](IRBuilder &B) {
    B.movImm(1, 0);
    B.load(2, 1, 0); // miss, non-blocking
    for (int I = 0; I < 5; ++I)
      B.add(4, 1, 1); // independent: overlaps the miss
    B.add(5, 2, 2);   // dependent: waits, then runs after the miss
    B.add(6, 5, 5);
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  // movImm(1) issues before the load; 5 adds overlap; 2 adds after.
  EXPECT_EQ(S.NoverlapCycles, 5u);
  EXPECT_EQ(S.NdependentCycles, 1u + 2u); // movImm + the two tail adds
  EXPECT_GT(S.GatedSeconds, 0.0);
}

TEST(SimulatorTiming, MovRenamingDoesNotStall) {
  // A mov of a still-in-flight load result must not stall; the consumer
  // of the mov'd register stalls instead.
  Function F = straightLine(12, 4096, [](IRBuilder &B) {
    B.movImm(1, 0);
    B.load(2, 1, 0);
    B.mov(3, 2);    // renaming: no stall here
    for (int I = 0; I < 5; ++I)
      B.add(4, 1, 1); // these still overlap the miss
    B.add(5, 3, 3);   // stall lands here
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.NoverlapCycles, 6u); // mov + 5 adds
  EXPECT_GT(S.GatedSeconds, 0.0);
}

TEST(SimulatorTiming, StoresDoNotStallOnMiss) {
  Function F = straightLine(8, 64 * 1024, [](IRBuilder &B) {
    B.movImm(1, 0);
    B.movImm(2, 42);
    for (int I = 0; I < 8; ++I)
      B.store(2, 1, 32 * I); // 8 distinct cold blocks
  });
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.L1DMisses, 8u);
  EXPECT_DOUBLE_EQ(S.TinvariantSeconds, 0.0); // write buffer hides them
  EXPECT_DOUBLE_EQ(S.GatedSeconds, 0.0);
}

TEST(SimulatorTiming, SerializedMisses) {
  // Two back-to-back missing loads: the second DRAM access queues behind
  // the first (one outstanding miss), so the dependent stall sees ~2x
  // DramSeconds.
  Function F = straightLine(8, 64 * 1024, [](IRBuilder &B) {
    B.movImm(1, 0);
    B.load(2, 1, 0);
    B.load(3, 1, 4096);
    B.add(4, 2, 3);
  });
  SimConfig C;
  Simulator Sim(F, C);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_NEAR(S.TinvariantSeconds, 2 * C.DramSeconds, 1e-15);
  EXPECT_GT(S.TimeSeconds, 2 * C.DramSeconds);
}

TEST(SimulatorControl, LoopExecutesExactTripCount) {
  Function F("loop", 8, 64);
  {
    IRBuilder B(F);
    int Entry = B.createBlock("entry");
    int Head = B.createBlock("head");
    int Body = B.createBlock("body");
    int Exit = B.createBlock("exit");
    B.setInsertPoint(Entry);
    B.movImm(1, 0);  // i
    B.movImm(2, 10); // n
    B.movImm(3, 1);
    B.movImm(5, 0); // sum
    B.jump(Head);
    B.setInsertPoint(Head);
    B.cmpLt(4, 1, 2);
    B.condBr(4, Body, Exit);
    B.setInsertPoint(Body);
    B.add(5, 5, 1);
    B.add(1, 1, 3);
    B.jump(Head);
    B.setInsertPoint(Exit);
    B.ret();
  }
  Simulator Sim(F);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_EQ(S.FinalRegs[5], 45); // 0+1+...+9
  EXPECT_EQ(S.BlockExecs[2], 10u);
  EXPECT_EQ(S.BlockExecs[1], 11u);
  EXPECT_EQ(S.EdgeCounts.at({1, 2}), 10u);
  EXPECT_EQ(S.EdgeCounts.at({2, 1}), 10u);
  EXPECT_EQ(S.EdgeCounts.at({1, 3}), 1u);
  // Local paths: block 1 entered from 2 and left to 2 nine times.
  EXPECT_EQ(S.PathCounts.at({2, 1, 2}), 9u);
  EXPECT_EQ(S.PathCounts.at({2, 1, 3}), 1u);
  EXPECT_EQ(S.PathCounts.at({-1, 0, 1}), 1u);
}

TEST(SimulatorControl, InstructionCapStopsRunaways) {
  Function F("spin", 4, 64);
  {
    IRBuilder B(F);
    int A = B.createBlock("a");
    int R = B.createBlock("r");
    B.setInsertPoint(A);
    B.movImm(1, 1);
    B.condBr(1, A, R); // always loops
    B.setInsertPoint(R);
    B.ret();
  }
  SimConfig C;
  C.MaxInstructions = 1000;
  Simulator Sim(F, C);
  RunStats S = Sim.runAtLevel(Fast);
  EXPECT_FALSE(S.Completed);
  EXPECT_GE(S.Instructions, 1000u);
}

} // namespace
