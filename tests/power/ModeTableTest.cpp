//===- tests/power/ModeTableTest.cpp - discrete operating points ---------===//

#include "power/ModeTable.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(ModeTable, XScale3Levels) {
  ModeTable T = ModeTable::xscale3();
  ASSERT_EQ(T.size(), 3u);
  EXPECT_DOUBLE_EQ(T.level(0).Volts, 0.70);
  EXPECT_DOUBLE_EQ(T.level(0).Hertz, 200e6);
  EXPECT_DOUBLE_EQ(T.level(1).Volts, 1.30);
  EXPECT_DOUBLE_EQ(T.level(1).Hertz, 600e6);
  EXPECT_DOUBLE_EQ(T.level(2).Volts, 1.65);
  EXPECT_DOUBLE_EQ(T.level(2).Hertz, 800e6);
}

TEST(ModeTable, SortsByFrequency) {
  ModeTable T({{1.65, 800e6}, {0.70, 200e6}});
  EXPECT_DOUBLE_EQ(T.minFrequency(), 200e6);
  EXPECT_DOUBLE_EQ(T.maxFrequency(), 800e6);
  EXPECT_DOUBLE_EQ(T.minVoltage(), 0.70);
  EXPECT_DOUBLE_EQ(T.maxVoltage(), 1.65);
}

TEST(ModeTable, EvenVoltageLevelsCountAndMonotonicity) {
  VfModel M = VfModel::paperDefault();
  for (int N : {3, 7, 13}) {
    ModeTable T = ModeTable::evenVoltageLevels(N, 0.7, 1.65, M);
    ASSERT_EQ(T.size(), static_cast<size_t>(N));
    EXPECT_DOUBLE_EQ(T.minVoltage(), 0.7);
    EXPECT_DOUBLE_EQ(T.maxVoltage(), 1.65);
    for (size_t I = 1; I < T.size(); ++I) {
      EXPECT_LT(T.level(I - 1).Volts, T.level(I).Volts);
      EXPECT_LT(T.level(I - 1).Hertz, T.level(I).Hertz);
    }
  }
}

TEST(ModeTable, NeighborsOfVoltageInterior) {
  ModeTable T = ModeTable::xscale3();
  auto [Lo, Hi] = T.neighborsOfVoltage(1.0);
  EXPECT_EQ(Lo, 0u);
  EXPECT_EQ(Hi, 1u);
}

TEST(ModeTable, NeighborsOfVoltageClampsAtEnds) {
  ModeTable T = ModeTable::xscale3();
  auto [Lo1, Hi1] = T.neighborsOfVoltage(0.1);
  EXPECT_EQ(Lo1, 0u);
  EXPECT_EQ(Hi1, 0u);
  auto [Lo2, Hi2] = T.neighborsOfVoltage(5.0);
  EXPECT_EQ(Lo2, 2u);
  EXPECT_EQ(Hi2, 2u);
}

TEST(ModeTable, NeighborsOfVoltageExactLevel) {
  ModeTable T = ModeTable::xscale3();
  auto [Lo, Hi] = T.neighborsOfVoltage(1.30);
  // Exact hits bracket with the level itself on one side.
  EXPECT_TRUE((Lo == 0 && Hi == 1) || (Lo == 1 && Hi == 1) ||
              (Lo == 1 && Hi == 2));
}

TEST(ModeTable, NeighborsOfFrequency) {
  ModeTable T = ModeTable::xscale3();
  auto [Lo, Hi] = T.neighborsOfFrequency(400e6);
  EXPECT_EQ(Lo, 0u);
  EXPECT_EQ(Hi, 1u);
}

TEST(ModeTable, SlowestLevelAtLeast) {
  ModeTable T = ModeTable::xscale3();
  EXPECT_EQ(T.slowestLevelAtLeast(100e6), 0u);
  EXPECT_EQ(T.slowestLevelAtLeast(200e6), 0u);
  EXPECT_EQ(T.slowestLevelAtLeast(201e6), 1u);
  EXPECT_EQ(T.slowestLevelAtLeast(700e6), 2u);
  // Infeasible demand clamps to the fastest level.
  EXPECT_EQ(T.slowestLevelAtLeast(900e6), 2u);
}

} // namespace
