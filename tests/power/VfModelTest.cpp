//===- tests/power/VfModelTest.cpp - alpha-power-law model ---------------===//

#include "power/VfModel.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(VfModel, CalibrationHitsReferencePoint) {
  VfModel M = VfModel::calibrated(0.45, 1.5, 1.65, 800e6);
  EXPECT_NEAR(M.frequencyAt(1.65), 800e6, 1.0);
}

TEST(VfModel, PaperDefaultMatchesXScaleTop) {
  VfModel M = VfModel::paperDefault();
  EXPECT_NEAR(M.frequencyAt(1.65), 800e6, 1.0);
  EXPECT_DOUBLE_EQ(M.thresholdVoltage(), 0.45);
  EXPECT_DOUBLE_EQ(M.alpha(), 1.5);
}

TEST(VfModel, FrequencyZeroAtOrBelowThreshold) {
  VfModel M = VfModel::paperDefault();
  EXPECT_DOUBLE_EQ(M.frequencyAt(0.45), 0.0);
  EXPECT_DOUBLE_EQ(M.frequencyAt(0.1), 0.0);
}

TEST(VfModel, FrequencyStrictlyIncreasing) {
  VfModel M = VfModel::paperDefault();
  double Prev = 0.0;
  for (double V = 0.5; V <= 3.0; V += 0.05) {
    double F = M.frequencyAt(V);
    EXPECT_GT(F, Prev) << "at V=" << V;
    Prev = F;
  }
}

TEST(VfModel, InverseRoundTrip) {
  VfModel M = VfModel::paperDefault();
  for (double V : {0.6, 0.9, 1.3, 1.65, 2.2}) {
    double F = M.frequencyAt(V);
    EXPECT_NEAR(M.voltageFor(F), V, 1e-8) << "V=" << V;
  }
}

TEST(VfModel, VoltageForZeroIsThreshold) {
  VfModel M = VfModel::paperDefault();
  EXPECT_DOUBLE_EQ(M.voltageFor(0.0), 0.45);
}

TEST(VfModel, CycleEnergyQuadratic) {
  EXPECT_DOUBLE_EQ(VfModel::cycleEnergy(2.0), 4.0);
  EXPECT_DOUBLE_EQ(VfModel::cycleEnergy(0.0), 0.0);
}

TEST(VfModel, LowerVoltageMuchSlowerNearThreshold) {
  // The alpha-power law collapses frequency near threshold: check the
  // qualitative shape the paper's DVS savings rely on.
  VfModel M = VfModel::paperDefault();
  double F07 = M.frequencyAt(0.7);
  double F13 = M.frequencyAt(1.3);
  EXPECT_LT(F07, F13 / 2.0);
}

} // namespace
