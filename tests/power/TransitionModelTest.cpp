//===- tests/power/TransitionModelTest.cpp - regulator switch costs ------===//

#include "power/TransitionModel.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(TransitionModel, PaperTypicalMatchesPublishedXScaleCosts) {
  // The paper: c = 10 uF gives a 12 us / 1.2 uJ cost for the
  // 600 MHz @ 1.3 V -> 200 MHz @ 0.7 V transition.
  TransitionModel M = TransitionModel::paperTypical();
  EXPECT_NEAR(M.switchTime(1.3, 0.7), 12e-6, 1e-12);
  EXPECT_NEAR(M.switchEnergy(1.3, 0.7), 1.2e-6, 1e-12);
}

TEST(TransitionModel, Symmetric) {
  TransitionModel M = TransitionModel::paperTypical();
  EXPECT_DOUBLE_EQ(M.switchEnergy(0.7, 1.3), M.switchEnergy(1.3, 0.7));
  EXPECT_DOUBLE_EQ(M.switchTime(0.7, 1.3), M.switchTime(1.3, 0.7));
}

TEST(TransitionModel, SameVoltageIsFree) {
  TransitionModel M = TransitionModel::paperTypical();
  EXPECT_DOUBLE_EQ(M.switchEnergy(1.3, 1.3), 0.0);
  EXPECT_DOUBLE_EQ(M.switchTime(1.3, 1.3), 0.0);
}

TEST(TransitionModel, ScalesLinearlyWithCapacitance) {
  TransitionModel Small = TransitionModel::withCapacitance(1e-6);
  TransitionModel Big = TransitionModel::withCapacitance(100e-6);
  EXPECT_NEAR(Big.switchEnergy(1.3, 0.7) / Small.switchEnergy(1.3, 0.7),
              100.0, 1e-9);
  EXPECT_NEAR(Big.switchTime(1.3, 0.7) / Small.switchTime(1.3, 0.7),
              100.0, 1e-9);
}

TEST(TransitionModel, Constants) {
  TransitionModel M = TransitionModel::paperTypical();
  EXPECT_NEAR(M.energyConstant(), 0.1 * 10e-6, 1e-15);
  EXPECT_NEAR(M.timeConstant(), 2.0 * 10e-6 / 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(M.capacitance(), 10e-6);
  EXPECT_DOUBLE_EQ(M.efficiency(), 0.9);
  EXPECT_DOUBLE_EQ(M.maxCurrent(), 1.0);
}

TEST(TransitionModel, EnergyUsesSquaredVoltages) {
  TransitionModel M = TransitionModel::withCapacitance(1.0);
  // (1-u)*c = 0.1; |2^2 - 1^2| = 3.
  EXPECT_NEAR(M.switchEnergy(2.0, 1.0), 0.1 * 3.0, 1e-12);
}

} // namespace
