//===- tests/support/ThreadPoolTest.cpp - TaskPool lifecycle --------------===//
//
// The persistent TaskPool's documented lifecycle rules: tasks run,
// shutdown drains and is idempotent from any thread, submit after
// shutdown is a well-defined refusal, and the destructor shuts down.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>

using namespace cdvs;

namespace {

TEST(TaskPool, RunsSubmittedTasks) {
  TaskPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(Pool.submit([&Ran] { Ran.fetch_add(1); }));
  Pool.shutdown();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(TaskPool, ShutdownDrainsQueuedTasks) {
  // One worker and a slow first task guarantee the rest are still queued
  // when shutdown starts; drain semantics require them to run anyway.
  TaskPool Pool(1);
  std::atomic<int> Ran{0};
  Pool.submit([&Ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Ran.fetch_add(1);
  });
  for (int I = 0; I < 20; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.shutdown();
  EXPECT_EQ(Ran.load(), 21);
}

TEST(TaskPool, SubmitAfterShutdownReturnsFalse) {
  TaskPool Pool(2);
  Pool.shutdown();
  EXPECT_TRUE(Pool.stopped());
  std::atomic<bool> Ran{false};
  EXPECT_FALSE(Pool.submit([&Ran] { Ran.store(true); }));
  // The refused task must have been dropped, not deferred.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Ran.load());
}

TEST(TaskPool, DoubleShutdownIsNoOp) {
  TaskPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.shutdown();
  Pool.shutdown(); // second call: documented no-op
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_TRUE(Pool.stopped());
}

TEST(TaskPool, ConcurrentShutdownIsSafe) {
  // Many threads race shutdown(); exactly one joins the workers, the
  // rest are no-ops. TSan (scripts/check.sh) watches this closely.
  for (int Round = 0; Round < 20; ++Round) {
    TaskPool Pool(4);
    std::atomic<int> Ran{0};
    for (int I = 0; I < 32; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    std::vector<std::future<void>> Racers;
    for (int I = 0; I < 4; ++I)
      Racers.push_back(
          std::async(std::launch::async, [&Pool] { Pool.shutdown(); }));
    for (auto &F : Racers)
      F.get();
    EXPECT_EQ(Ran.load(), 32);
  }
}

TEST(TaskPool, DestructorShutsDown) {
  std::atomic<int> Ran{0};
  {
    TaskPool Pool(2);
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    // No explicit shutdown: the destructor must drain and join.
  }
  EXPECT_EQ(Ran.load(), 10);
}

TEST(TaskPool, TasksMaySubmitTasks) {
  TaskPool Pool(2);
  std::promise<bool> Nested;
  Pool.submit([&] {
    bool Ok = Pool.submit([&Nested] { Nested.set_value(true); });
    if (!Ok) // racing shutdown is allowed to drop it; report that
      Nested.set_value(false);
  });
  EXPECT_TRUE(Nested.get_future().get());
  Pool.shutdown();
}

TEST(TaskPool, ZeroMeansOnePerCore) {
  TaskPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), hardwareThreads());
  EXPECT_GE(Pool.numThreads(), 1);
}

TEST(TaskPool, StatsCountSubmissionsAndExecutions) {
  TaskPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 50; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.shutdown();
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.TasksSubmitted, 50);
  EXPECT_EQ(S.TasksExecuted, 50);
  EXPECT_GE(S.TotalWaitSeconds, 0.0);
}

TEST(TaskPool, PeakQueueDepthSeesBackedUpWork) {
  // One worker pinned on a slow task; 20 more submissions must drive
  // the recorded peak to the full backlog.
  TaskPool Pool(1);
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  Pool.submit([Gate] { Gate.wait(); });
  std::promise<void> FirstRunning;
  Pool.submit([&FirstRunning] { FirstRunning.set_value(); });
  for (int I = 0; I < 19; ++I)
    Pool.submit([] {});
  // 20 tasks are queued behind the gated one right now.
  EXPECT_GE(Pool.stats().PeakQueueDepth, 20u);
  Release.set_value();
  FirstRunning.get_future().wait();
  Pool.shutdown();
  EXPECT_EQ(Pool.stats().TasksExecuted, 21);
}

TEST(WorkStealingDeques, OwnPopIsLifo) {
  WorkStealingDeques<int> D(2);
  D.push(0, 1);
  D.push(0, 2);
  D.push(0, 3);
  int Out = 0;
  ASSERT_TRUE(D.tryPop(0, Out));
  EXPECT_EQ(Out, 3); // newest first: depth-first traversal
  ASSERT_TRUE(D.tryPop(0, Out));
  EXPECT_EQ(Out, 2);
  EXPECT_EQ(D.steals(), 0); // own pops are not steals
}

TEST(WorkStealingDeques, StealsTakeTheVictimsOldest) {
  WorkStealingDeques<int> D(2);
  D.push(0, 1);
  D.push(0, 2);
  D.push(0, 3);
  int Out = 0;
  // Worker 1 has nothing; it must steal worker 0's OLDEST item (the
  // shallowest, largest subtree in B&B terms).
  ASSERT_TRUE(D.tryPop(1, Out));
  EXPECT_EQ(Out, 1);
  EXPECT_EQ(D.steals(), 1);
  ASSERT_TRUE(D.tryPop(1, Out));
  EXPECT_EQ(Out, 2);
  EXPECT_EQ(D.steals(), 2);
  // Owner still holds its newest.
  ASSERT_TRUE(D.tryPop(0, Out));
  EXPECT_EQ(Out, 3);
  EXPECT_EQ(D.steals(), 2);
  EXPECT_FALSE(D.tryPop(0, Out));
  EXPECT_FALSE(D.tryPop(1, Out));
}

TEST(WorkStealingDeques, PeakDepthTracksTheDeepestDeque) {
  WorkStealingDeques<int> D(3);
  for (int I = 0; I < 5; ++I)
    D.push(1, I);
  D.push(0, 99);
  EXPECT_EQ(D.peakDepth(), 5u);
  int Out = 0;
  while (D.tryPop(1, Out))
    ;
  EXPECT_EQ(D.peakDepth(), 5u); // peak is monotone
}

TEST(WorkStealingDeques, ConcurrentProducersAndThievesLoseNothing) {
  // Regression for the steal counter: total items popped across all
  // workers must equal items pushed, and steals must be counted exactly
  // for pops from foreign deques.
  constexpr int Workers = 4, PerWorker = 2000;
  WorkStealingDeques<int> D(Workers);
  std::atomic<long> Popped{0};
  std::vector<std::thread> Ts;
  for (int W = 0; W < Workers; ++W)
    Ts.emplace_back([&D, &Popped, W] {
      for (int I = 0; I < PerWorker; ++I)
        D.push(W, I);
      int Out = 0;
      while (D.tryPop(W, Out))
        Popped.fetch_add(1);
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Popped.load(), long(Workers) * PerWorker);
  EXPECT_GE(D.steals(), 0);
  EXPECT_LE(D.steals(), long(Workers) * PerWorker);
  EXPECT_GE(D.peakDepth(), 1u);
}

} // namespace
