//===- tests/support/ThreadPoolTest.cpp - TaskPool lifecycle --------------===//
//
// The persistent TaskPool's documented lifecycle rules: tasks run,
// shutdown drains and is idempotent from any thread, submit after
// shutdown is a well-defined refusal, and the destructor shuts down.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>

using namespace cdvs;

namespace {

TEST(TaskPool, RunsSubmittedTasks) {
  TaskPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(Pool.submit([&Ran] { Ran.fetch_add(1); }));
  Pool.shutdown();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(TaskPool, ShutdownDrainsQueuedTasks) {
  // One worker and a slow first task guarantee the rest are still queued
  // when shutdown starts; drain semantics require them to run anyway.
  TaskPool Pool(1);
  std::atomic<int> Ran{0};
  Pool.submit([&Ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Ran.fetch_add(1);
  });
  for (int I = 0; I < 20; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.shutdown();
  EXPECT_EQ(Ran.load(), 21);
}

TEST(TaskPool, SubmitAfterShutdownReturnsFalse) {
  TaskPool Pool(2);
  Pool.shutdown();
  EXPECT_TRUE(Pool.stopped());
  std::atomic<bool> Ran{false};
  EXPECT_FALSE(Pool.submit([&Ran] { Ran.store(true); }));
  // The refused task must have been dropped, not deferred.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Ran.load());
}

TEST(TaskPool, DoubleShutdownIsNoOp) {
  TaskPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.shutdown();
  Pool.shutdown(); // second call: documented no-op
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_TRUE(Pool.stopped());
}

TEST(TaskPool, ConcurrentShutdownIsSafe) {
  // Many threads race shutdown(); exactly one joins the workers, the
  // rest are no-ops. TSan (scripts/check.sh) watches this closely.
  for (int Round = 0; Round < 20; ++Round) {
    TaskPool Pool(4);
    std::atomic<int> Ran{0};
    for (int I = 0; I < 32; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    std::vector<std::future<void>> Racers;
    for (int I = 0; I < 4; ++I)
      Racers.push_back(
          std::async(std::launch::async, [&Pool] { Pool.shutdown(); }));
    for (auto &F : Racers)
      F.get();
    EXPECT_EQ(Ran.load(), 32);
  }
}

TEST(TaskPool, DestructorShutsDown) {
  std::atomic<int> Ran{0};
  {
    TaskPool Pool(2);
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    // No explicit shutdown: the destructor must drain and join.
  }
  EXPECT_EQ(Ran.load(), 10);
}

TEST(TaskPool, TasksMaySubmitTasks) {
  TaskPool Pool(2);
  std::promise<bool> Nested;
  Pool.submit([&] {
    bool Ok = Pool.submit([&Nested] { Nested.set_value(true); });
    if (!Ok) // racing shutdown is allowed to drop it; report that
      Nested.set_value(false);
  });
  EXPECT_TRUE(Nested.get_future().get());
  Pool.shutdown();
}

TEST(TaskPool, ZeroMeansOnePerCore) {
  TaskPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), hardwareThreads());
  EXPECT_GE(Pool.numThreads(), 1);
}

} // namespace
