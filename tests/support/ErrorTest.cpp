//===- tests/support/ErrorTest.cpp - ErrorOr behaviour -------------------===//

#include "support/Error.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace cdvs;

namespace {

ErrorOr<int> parsePositive(int X) {
  if (X <= 0)
    return makeError("not positive");
  return X;
}

TEST(ErrorOr, HoldsValue) {
  ErrorOr<int> R = parsePositive(42);
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(*R, 42);
  EXPECT_EQ(R.get(), 42);
}

TEST(ErrorOr, HoldsError) {
  ErrorOr<int> R = parsePositive(-1);
  ASSERT_FALSE(R.hasValue());
  EXPECT_EQ(R.message(), "not positive");
}

TEST(ErrorOr, MoveOnlyPayload) {
  ErrorOr<std::unique_ptr<int>> R = std::make_unique<int>(7);
  ASSERT_TRUE(R.hasValue());
  std::unique_ptr<int> P = std::move(*R);
  EXPECT_EQ(*P, 7);
}

TEST(ErrorOr, ArrowOperator) {
  ErrorOr<std::string> R = std::string("abc");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->size(), 3u);
}

TEST(ErrorOr, CopyableResult) {
  ErrorOr<std::string> R = std::string("xyz");
  ErrorOr<std::string> Copy = R;
  ASSERT_TRUE(Copy.hasValue());
  EXPECT_EQ(*Copy, "xyz");
}

} // namespace
