//===- tests/support/TableTest.cpp - text table emission -----------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

std::string renderCsv(const Table &T) {
  char *Buf = nullptr;
  size_t Size = 0;
  std::FILE *Mem = open_memstream(&Buf, &Size);
  T.printCsv(Mem);
  std::fclose(Mem);
  std::string Out(Buf, Size);
  free(Buf);
  return Out;
}

std::string renderText(const Table &T) {
  char *Buf = nullptr;
  size_t Size = 0;
  std::FILE *Mem = open_memstream(&Buf, &Size);
  T.print(Mem);
  std::fclose(Mem);
  std::string Out(Buf, Size);
  free(Buf);
  return Out;
}

TEST(Table, CsvRoundTrip) {
  Table T({"a", "b"});
  T.addRow({"1", "2"});
  T.addRow({"x", "y"});
  EXPECT_EQ(renderCsv(T), "a,b\n1,2\nx,y\n");
}

TEST(Table, TextAlignsColumns) {
  Table T({"name", "v"});
  T.addRow({"long-name-here", "1"});
  std::string Out = renderText(T);
  EXPECT_NE(Out.find("| name"), std::string::npos);
  EXPECT_NE(Out.find("long-name-here"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("|---"), std::string::npos);
}

TEST(Table, RowAccess) {
  Table T({"x"});
  T.addRow({"7"});
  ASSERT_EQ(T.numRows(), 1u);
  EXPECT_EQ(T.row(0)[0], "7");
}

TEST(FormatHelpers, Doubles) {
  EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(formatDouble(-0.5, 3), "-0.500");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatHelpers, Ints) {
  EXPECT_EQ(formatInt(0), "0");
  EXPECT_EQ(formatInt(-12345678901LL), "-12345678901");
}

} // namespace
