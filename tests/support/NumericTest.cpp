//===- tests/support/NumericTest.cpp - 1-D numeric routines --------------===//

#include "support/Numeric.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;

namespace {

TEST(GoldenSection, QuadraticMinimum) {
  auto F = [](double X) { return (X - 3.0) * (X - 3.0) + 2.0; };
  MinResult R = goldenSectionMinimize(F, -10.0, 10.0);
  EXPECT_NEAR(R.X, 3.0, 1e-6);
  EXPECT_NEAR(R.Fx, 2.0, 1e-10);
}

TEST(GoldenSection, MinimumAtBoundary) {
  auto F = [](double X) { return X; };
  MinResult R = goldenSectionMinimize(F, 1.0, 5.0);
  EXPECT_NEAR(R.X, 1.0, 1e-6);
}

TEST(GoldenSection, DegenerateBracket) {
  auto F = [](double X) { return X * X; };
  MinResult R = goldenSectionMinimize(F, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(R.X, 2.0);
  EXPECT_DOUBLE_EQ(R.Fx, 4.0);
}

TEST(BisectRoot, FindsSqrtTwo) {
  auto F = [](double X) { return X * X - 2.0; };
  double Root = bisectRoot(F, 0.0, 2.0);
  EXPECT_NEAR(Root, std::sqrt(2.0), 1e-9);
}

TEST(BisectRoot, EndpointRoot) {
  auto F = [](double X) { return X - 1.0; };
  EXPECT_DOUBLE_EQ(bisectRoot(F, 1.0, 3.0), 1.0);
}

TEST(GridRefine, FindsGlobalAmongLocalMinima) {
  // Two local minima: x = -2 (f = 1) and x = 2.5 (f = 0.2).
  auto F = [](double X) {
    double A = (X + 2.0) * (X + 2.0) + 1.0;
    double B = (X - 2.5) * (X - 2.5) + 0.2;
    return std::min(A, B);
  };
  MinResult R = gridRefineMinimize(F, -5.0, 5.0, 256);
  EXPECT_NEAR(R.X, 2.5, 1e-5);
  EXPECT_NEAR(R.Fx, 0.2, 1e-8);
}

TEST(GridRefine, StaircaseObjective) {
  // Piecewise-constant steps with the lowest step in the middle.
  auto F = [](double X) { return std::floor(std::fabs(X - 0.4) * 3.0); };
  MinResult R = gridRefineMinimize(F, -2.0, 2.0, 512);
  EXPECT_NEAR(R.Fx, 0.0, 1e-12);
  EXPECT_NEAR(R.X, 0.4, 0.34); // anywhere on the zero step
}

TEST(Simpson, IntegratesPolynomialExactly) {
  // Simpson is exact for cubics.
  auto F = [](double X) { return X * X * X - X + 1.0; };
  double I = simpson(F, 0.0, 2.0, 2);
  EXPECT_NEAR(I, 4.0 - 2.0 + 2.0, 1e-12);
}

TEST(Simpson, EmptyInterval) {
  auto F = [](double X) { return X; };
  EXPECT_DOUBLE_EQ(simpson(F, 1.0, 1.0), 0.0);
}

TEST(Simpson, SineIntegral) {
  double I = simpson([](double X) { return std::sin(X); }, 0.0, M_PI, 512);
  EXPECT_NEAR(I, 2.0, 1e-8);
}

TEST(KahanSum, BeatsNaiveSumOnSmallAddends) {
  // 1 + 1e7 * 1e-9: each tiny addend loses bits against the running
  // total in a naive sum; the compensated sum stays exact to 1 ulp.
  KahanSum K(1.0);
  double Naive = 1.0;
  for (int I = 0; I < 10000000; ++I) {
    K += 1e-9;
    Naive += 1e-9;
  }
  double Exact = 1.0 + 1e7 * 1e-9;
  EXPECT_NEAR(K.value(), Exact, 1e-15);
  // The naive sum drifts by orders of magnitude more than Kahan.
  EXPECT_GT(std::fabs(Naive - Exact),
            100.0 * std::fabs(K.value() - Exact));
}

TEST(KahanSum, CarriesLowOrderBitsThroughALargeTerm) {
  // 1e16 + (1.0 x 8) - 1e16: each 1.0 is below ulp(1e16)/2, so the
  // naive sum drops them all and returns 0; compensation keeps them.
  KahanSum K;
  K.add(1e16);
  double Naive = 1e16;
  for (int I = 0; I < 8; ++I) {
    K.add(1.0);
    Naive += 1.0;
  }
  K.add(-1e16);
  Naive += -1e16;
  EXPECT_DOUBLE_EQ(K.value(), 8.0);
  EXPECT_DOUBLE_EQ(Naive, 0.0);
}

TEST(KahanSum, InitialValueAndOperatorChaining) {
  KahanSum K(2.5);
  K += 0.5;
  K += -1.0;
  EXPECT_DOUBLE_EQ(K.value(), 2.0);
  EXPECT_DOUBLE_EQ(KahanSum().value(), 0.0);
}

} // namespace
