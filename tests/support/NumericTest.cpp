//===- tests/support/NumericTest.cpp - 1-D numeric routines --------------===//

#include "support/Numeric.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;

namespace {

TEST(GoldenSection, QuadraticMinimum) {
  auto F = [](double X) { return (X - 3.0) * (X - 3.0) + 2.0; };
  MinResult R = goldenSectionMinimize(F, -10.0, 10.0);
  EXPECT_NEAR(R.X, 3.0, 1e-6);
  EXPECT_NEAR(R.Fx, 2.0, 1e-10);
}

TEST(GoldenSection, MinimumAtBoundary) {
  auto F = [](double X) { return X; };
  MinResult R = goldenSectionMinimize(F, 1.0, 5.0);
  EXPECT_NEAR(R.X, 1.0, 1e-6);
}

TEST(GoldenSection, DegenerateBracket) {
  auto F = [](double X) { return X * X; };
  MinResult R = goldenSectionMinimize(F, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(R.X, 2.0);
  EXPECT_DOUBLE_EQ(R.Fx, 4.0);
}

TEST(BisectRoot, FindsSqrtTwo) {
  auto F = [](double X) { return X * X - 2.0; };
  double Root = bisectRoot(F, 0.0, 2.0);
  EXPECT_NEAR(Root, std::sqrt(2.0), 1e-9);
}

TEST(BisectRoot, EndpointRoot) {
  auto F = [](double X) { return X - 1.0; };
  EXPECT_DOUBLE_EQ(bisectRoot(F, 1.0, 3.0), 1.0);
}

TEST(GridRefine, FindsGlobalAmongLocalMinima) {
  // Two local minima: x = -2 (f = 1) and x = 2.5 (f = 0.2).
  auto F = [](double X) {
    double A = (X + 2.0) * (X + 2.0) + 1.0;
    double B = (X - 2.5) * (X - 2.5) + 0.2;
    return std::min(A, B);
  };
  MinResult R = gridRefineMinimize(F, -5.0, 5.0, 256);
  EXPECT_NEAR(R.X, 2.5, 1e-5);
  EXPECT_NEAR(R.Fx, 0.2, 1e-8);
}

TEST(GridRefine, StaircaseObjective) {
  // Piecewise-constant steps with the lowest step in the middle.
  auto F = [](double X) { return std::floor(std::fabs(X - 0.4) * 3.0); };
  MinResult R = gridRefineMinimize(F, -2.0, 2.0, 512);
  EXPECT_NEAR(R.Fx, 0.0, 1e-12);
  EXPECT_NEAR(R.X, 0.4, 0.34); // anywhere on the zero step
}

TEST(Simpson, IntegratesPolynomialExactly) {
  // Simpson is exact for cubics.
  auto F = [](double X) { return X * X * X - X + 1.0; };
  double I = simpson(F, 0.0, 2.0, 2);
  EXPECT_NEAR(I, 4.0 - 2.0 + 2.0, 1e-12);
}

TEST(Simpson, EmptyInterval) {
  auto F = [](double X) { return X; };
  EXPECT_DOUBLE_EQ(simpson(F, 1.0, 1.0), 0.0);
}

TEST(Simpson, SineIntegral) {
  double I = simpson([](double X) { return std::sin(X); }, 0.0, M_PI, 512);
  EXPECT_NEAR(I, 2.0, 1e-8);
}

} // namespace
