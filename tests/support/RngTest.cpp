//===- tests/support/RngTest.cpp - deterministic RNG ---------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace cdvs;

namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(12345), B(12345);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng A(777);
  uint64_t First = A.next();
  A.next();
  A.reseed(777);
  EXPECT_EQ(A.next(), First);
}

TEST(Rng, NextBelowInRange) {
  Rng R(9);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng R(9);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(5);
  std::set<int64_t> Seen;
  for (int I = 0; I < 5000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(11);
  double Sum = 0.0;
  for (int I = 0; I < 20000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 20000.0, 0.5, 0.02); // rough uniformity
}

TEST(Rng, NextBoolProbability) {
  Rng R(13);
  int Hits = 0;
  for (int I = 0; I < 20000; ++I)
    Hits += R.nextBool(0.25);
  EXPECT_NEAR(Hits / 20000.0, 0.25, 0.02);
}

} // namespace
