//===- tests/support/ArgParseTest.cpp - option parser behavior ------------===//

#include "support/ArgParse.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cdvs;

namespace {

/// Runs parse() over a brace-list of arguments (argv[0] included).
ErrorOr<bool> parseArgs(ArgParser &P, std::vector<const char *> Args) {
  return P.parse(static_cast<int>(Args.size()),
                 const_cast<char **>(Args.data()));
}

TEST(ArgParse, ParsesEveryKindAndKeepsDefaults) {
  ArgParser P("prog");
  int &N = P.addInt("n", 7, "an int");
  double &X = P.addDouble("x", 1.5, "a double");
  std::string &S = P.addString("s", "dflt", "a string");
  bool &F = P.addFlag("f", "a flag");
  int &Untouched = P.addInt("untouched", 42, "left alone");

  ErrorOr<bool> R =
      parseArgs(P, {"prog", "--n=3", "--x=2.25", "--s=hello", "--f"});
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(N, 3);
  EXPECT_DOUBLE_EQ(X, 2.25);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(F);
  EXPECT_EQ(Untouched, 42);
  EXPECT_TRUE(P.wasSet("n"));
  EXPECT_FALSE(P.wasSet("untouched"));
  EXPECT_FALSE(P.helpRequested());
}

TEST(ArgParse, CollectsPositionalArguments) {
  ArgParser P("prog");
  P.addInt("n", 0, "");
  ErrorOr<bool> R = parseArgs(P, {"prog", "one", "--n=2", "three"});
  ASSERT_TRUE(R.hasValue());
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "one");
  EXPECT_EQ(P.positional()[1], "three");
}

TEST(ArgParse, RejectsMalformedNumbers) {
  ArgParser P("prog");
  P.addInt("n", 0, "");
  ErrorOr<bool> R = parseArgs(P, {"prog", "--n=3x"});
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("n"), std::string::npos);

  ArgParser P2("prog");
  P2.addDouble("x", 0.0, "");
  EXPECT_FALSE(parseArgs(P2, {"prog", "--x=abc"}).hasValue());
}

TEST(ArgParse, UnknownOptionIsAnErrorByDefault) {
  ArgParser P("prog");
  P.addInt("n", 0, "");
  ErrorOr<bool> R = parseArgs(P, {"prog", "--bogus=1"});
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("bogus"), std::string::npos);
}

TEST(ArgParse, AllowUnknownCollectsPassThrough) {
  ArgParser P("prog");
  int &N = P.addInt("n", 0, "");
  P.allowUnknown(true);
  ErrorOr<bool> R =
      parseArgs(P, {"prog", "--n=5", "--benchmark_filter=Simplex"});
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(N, 5);
  ASSERT_EQ(P.unparsed().size(), 1u);
  EXPECT_EQ(P.unparsed()[0], "--benchmark_filter=Simplex");
}

TEST(ArgParse, FlagRejectsValueAndValueOptionRequiresOne) {
  ArgParser P("prog");
  P.addFlag("f", "");
  EXPECT_FALSE(parseArgs(P, {"prog", "--f=1"}).hasValue());

  ArgParser P2("prog");
  P2.addInt("n", 0, "");
  EXPECT_FALSE(parseArgs(P2, {"prog", "--n"}).hasValue());
}

TEST(ArgParse, HelpIsReportedNotParsedPast) {
  ArgParser P("prog", "what prog does");
  P.addInt("n", 1, "count of things");
  ErrorOr<bool> R = parseArgs(P, {"prog", "--help"});
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(P.helpRequested());

  std::string U = P.usage();
  EXPECT_NE(U.find("prog"), std::string::npos);
  EXPECT_NE(U.find("what prog does"), std::string::npos);
  EXPECT_NE(U.find("--n=<int>"), std::string::npos);
  EXPECT_NE(U.find("count of things"), std::string::npos);
  EXPECT_NE(U.find("--help"), std::string::npos);
}

TEST(ArgParse, SpaceSeparatedValuesParseLikeEqualsForm) {
  ArgParser P("prog");
  int &N = P.addInt("n", 7, "an int");
  double &X = P.addDouble("x", 1.5, "a double");
  std::string &S = P.addString("s", "dflt", "a string");
  bool &F = P.addFlag("f", "a flag");

  ErrorOr<bool> R = parseArgs(
      P, {"prog", "--n", "3", "--x", "2.25", "--f", "--s", "hello"});
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(N, 3);
  EXPECT_DOUBLE_EQ(X, 2.25);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(F);
}

TEST(ArgParse, SpaceFormNeverSwallowsAnotherOption) {
  // "--s --x=1" must not bind "--x=1" as the value of --s: values that
  // look like options only pass through the = form.
  ArgParser P("prog");
  P.addString("s", "", "");
  P.addDouble("x", 0.0, "");
  ErrorOr<bool> R = parseArgs(P, {"prog", "--s", "--x=1"});
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("requires a value"), std::string::npos);

  // The = form takes such values verbatim.
  ArgParser P2("prog");
  std::string &S = P2.addString("s", "", "");
  ASSERT_TRUE(parseArgs(P2, {"prog", "--s=--x=1"}).hasValue());
  EXPECT_EQ(S, "--x=1");
}

TEST(ArgParse, FlagsDoNotConsumeTheNextArgument) {
  ArgParser P("prog");
  bool &F = P.addFlag("f", "");
  ErrorOr<bool> R = parseArgs(P, {"prog", "--f", "positional"});
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(F);
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "positional");
}

TEST(ArgParse, TrailingValuelessOptionStillErrors) {
  ArgParser P("prog");
  P.addInt("n", 0, "");
  ErrorOr<bool> R = parseArgs(P, {"prog", "--n"});
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("requires a value"), std::string::npos);
}

TEST(ArgParse, UnknownOptionSuggestsTheNearestName) {
  ArgParser P("prog");
  P.addInt("connections", 1, "");
  P.addInt("rate", 0, "");

  ErrorOr<bool> R = parseArgs(P, {"prog", "--conections=2"});
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("did you mean --connections?"),
            std::string::npos)
      << R.message();

  // Nothing close: no guess, just the generic pointer to --help.
  ErrorOr<bool> R2 = parseArgs(P, {"prog", "--zzzzqqqq=2"});
  ASSERT_FALSE(R2.hasValue());
  EXPECT_EQ(R2.message().find("did you mean"), std::string::npos);
  EXPECT_NE(R2.message().find("try --help"), std::string::npos);

  // "--hlep" is nearest to the built-in --help.
  ErrorOr<bool> R3 = parseArgs(P, {"prog", "--hlep"});
  ASSERT_FALSE(R3.hasValue());
  EXPECT_NE(R3.message().find("did you mean --help?"), std::string::npos)
      << R3.message();
}

TEST(ArgParse, StringListCollectsRepeatsInOrderInBothForms) {
  // dvsd's --graph/--actual options repeat; each occurrence appends,
  // and `--name=value` and `--name value` are interchangeable per
  // occurrence.
  ArgParser P("prog");
  std::vector<std::string> &Graphs = P.addStringList("graph", "");
  EXPECT_TRUE(Graphs.empty()) << "the list default is empty";
  ErrorOr<bool> R = parseArgs(
      P, {"prog", "--graph=pair2-early", "--graph", "chain4-early",
          "--graph=diamond4-early"});
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(Graphs, (std::vector<std::string>{
                        "pair2-early", "chain4-early", "diamond4-early"}));
  EXPECT_TRUE(P.wasSet("graph"));
}

TEST(ArgParse, StringListKeepsDuplicatesAndEqualsInValues) {
  // Values are verbatim: duplicates stay, and only the first '=' splits
  // name from value (TASK=FACTOR payloads contain their own '=').
  ArgParser P("prog");
  std::vector<std::string> &Actual = P.addStringList("actual", "");
  ErrorOr<bool> R = parseArgs(
      P, {"prog", "--actual=encode=0.5", "--actual=encode=0.5"});
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(Actual,
            (std::vector<std::string>{"encode=0.5", "encode=0.5"}));
}

TEST(ArgParse, StringListMissingValueIsAnError) {
  // The space form must not swallow a following option, and a trailing
  // bare occurrence is an error, not an empty element.
  ArgParser P("prog");
  std::vector<std::string> &L = P.addStringList("graph", "");
  bool &Flag = P.addFlag("verbose", "");
  ErrorOr<bool> R1 = parseArgs(P, {"prog", "--graph", "--verbose"});
  ASSERT_FALSE(R1.hasValue());
  EXPECT_NE(R1.message().find("--graph"), std::string::npos);
  EXPECT_FALSE(Flag);

  ArgParser Q("prog");
  std::vector<std::string> &M = Q.addStringList("graph", "");
  EXPECT_FALSE(parseArgs(Q, {"prog", "--graph"}).hasValue());
  EXPECT_TRUE(M.empty());
  (void)L;
}

TEST(ArgParse, StringListUsageMarksRepetition) {
  ArgParser P("prog");
  P.addStringList("graph", "canned graph name");
  std::string U = P.usage();
  EXPECT_NE(U.find("--graph=<str>..."), std::string::npos) << U;
  EXPECT_NE(U.find("(default: none)"), std::string::npos) << U;
}

TEST(ArgParse, ReferencesStayValidAcrossManyRegistrations) {
  // Options live behind stable storage; registering more must not move
  // earlier bindings (this is what lets mains hold plain references).
  ArgParser P("prog");
  int &First = P.addInt("first", 1, "");
  std::vector<int *> Later;
  for (int I = 0; I < 50; ++I)
    Later.push_back(&P.addInt("opt" + std::to_string(I), I, ""));
  ErrorOr<bool> R = parseArgs(P, {"prog", "--first=99", "--opt7=70"});
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(First, 99);
  EXPECT_EQ(*Later[7], 70);
  EXPECT_EQ(*Later[49], 49);
}

} // namespace
