//===- tests/obs/TraceTest.cpp - Trace recorder tests ----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Metrics.h"
#include "service/JsonLite.h"

#include <thread>

#include "gtest/gtest.h"

using namespace cdvs;

namespace {

/// The recorder is process-global; every test starts disabled and empty
/// and leaves it that way.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::trace().setEnabled(false);
    obs::trace().reset(1024);
  }
  void TearDown() override {
    obs::trace().setEnabled(false);
    obs::trace().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    obs::TraceSpan S("quiet", "test");
    EXPECT_FALSE(S.active());
    S.arg("ignored", 1.0);
  }
  obs::traceInstant("also_quiet");
  EXPECT_EQ(obs::trace().size(), 0u);
}

TEST_F(TraceTest, SpansStampDurations) {
  obs::trace().setEnabled(true);
  {
    obs::TraceSpan S("outer", "test");
    EXPECT_TRUE(S.active());
  }
  EXPECT_EQ(obs::trace().size(), 1u);
}

TEST_F(TraceTest, EndIsIdempotentAndEarly) {
  obs::trace().setEnabled(true);
  obs::TraceSpan S("early", "test");
  S.end();
  S.end(); // second end must not double-record
  EXPECT_EQ(obs::trace().size(), 1u);
  EXPECT_FALSE(S.active());
}

TEST_F(TraceTest, RingDropsOldestBeyondCapacity) {
  obs::trace().reset(8);
  obs::trace().setEnabled(true);
  for (int I = 0; I < 20; ++I)
    obs::traceInstant("tick", "test");
  EXPECT_EQ(obs::trace().size(), 8u);
  EXPECT_EQ(obs::trace().dropped(), 12u);
  obs::trace().clear();
  EXPECT_EQ(obs::trace().size(), 0u);
  EXPECT_EQ(obs::trace().dropped(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  obs::trace().setEnabled(true);
  {
    obs::TraceSpan Job("job", "service");
    Job.arg("dequeue_seq", 7.0);
    {
      obs::TraceSpan Child("profile", "service");
    }
    obs::traceInstant("incumbent", "milp", "objective", 42.5);
  }
  obs::trace().setEnabled(false);

  ErrorOr<JsonValue> V = parseJson(obs::trace().renderChromeTrace());
  ASSERT_TRUE(bool(V)) << V.message();
  ASSERT_TRUE(V->isObject());
  EXPECT_EQ(V->find("displayTimeUnit")->Str, "ms");

  const JsonValue *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->Arr.size(), 3u);

  // Destructor order: child closes first, then the instant rides inside,
  // then the outer span.
  const JsonValue &Child = Events->Arr[0];
  EXPECT_EQ(Child.find("name")->Str, "profile");
  EXPECT_EQ(Child.find("ph")->Str, "X");
  EXPECT_GE(Child.find("dur")->Num, 0.0);

  const JsonValue &Instant = Events->Arr[1];
  EXPECT_EQ(Instant.find("name")->Str, "incumbent");
  EXPECT_EQ(Instant.find("ph")->Str, "i");
  EXPECT_EQ(Instant.find("s")->Str, "t");
  EXPECT_DOUBLE_EQ(Instant.find("args")->find("objective")->Num, 42.5);

  const JsonValue &Job = Events->Arr[2];
  EXPECT_EQ(Job.find("name")->Str, "job");
  EXPECT_EQ(Job.find("cat")->Str, "service");
  EXPECT_DOUBLE_EQ(Job.find("args")->find("dequeue_seq")->Num, 7.0);

  // Nesting is by time containment per thread: the child's interval
  // must sit inside the parent's.
  double ChildTs = Child.find("ts")->Num;
  double ChildEnd = ChildTs + Child.find("dur")->Num;
  double JobTs = Job.find("ts")->Num;
  double JobEnd = JobTs + Job.find("dur")->Num;
  EXPECT_GE(ChildTs, JobTs);
  EXPECT_LE(ChildEnd, JobEnd);
  EXPECT_EQ(Child.find("tid")->Num, Job.find("tid")->Num);
}

TEST_F(TraceTest, SpanContextPropagatesAndRestores) {
  obs::trace().setEnabled(true);
  EXPECT_FALSE(obs::currentSpanContext().valid());

  obs::SpanContext Wire;
  Wire.TraceHi = 0xAAAA;
  Wire.TraceLo = 0xBBBB;
  Wire.Span = 42;
  Wire.Sampled = true;
  uint64_t OuterId = 0;
  {
    obs::ScopedSpanContext Guard(Wire);
    EXPECT_EQ(obs::currentSpanContext().Span, 42u);
    {
      obs::TraceSpan Outer("outer", "test");
      OuterId = Outer.spanId();
      EXPECT_NE(OuterId, 0u);
      // The open span is now the thread's parent-to-be.
      EXPECT_EQ(obs::currentSpanContext().Span, OuterId);
      EXPECT_EQ(obs::currentSpanContext().TraceHi, 0xAAAAu);
      {
        obs::TraceSpan Inner("inner", "test");
        EXPECT_NE(Inner.spanId(), OuterId);
        EXPECT_EQ(obs::currentSpanContext().Span, Inner.spanId());
      }
      // Closing the inner span restores the outer as parent.
      EXPECT_EQ(obs::currentSpanContext().Span, OuterId);
    }
    EXPECT_EQ(obs::currentSpanContext().Span, 42u);
  }
  EXPECT_FALSE(obs::currentSpanContext().valid());

  // The recorded events carry the distributed identity, innermost
  // first (destructor order).
  ErrorOr<JsonValue> V =
      parseJson(obs::trace().renderChromeTrace(7, "test-proc"));
  ASSERT_TRUE(bool(V)) << V.message();
  const JsonValue *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->Arr.size(), 3u); // process_name metadata + 2 spans
  EXPECT_EQ(Events->Arr[0].find("ph")->Str, "M");
  EXPECT_EQ(Events->Arr[0].find("name")->Str, "process_name");
  EXPECT_EQ(Events->Arr[0].find("args")->find("name")->Str, "test-proc");
  const JsonValue &Inner = Events->Arr[1];
  const JsonValue &Outer = Events->Arr[2];
  EXPECT_EQ(Inner.find("trace_id")->Str,
            "000000000000aaaa000000000000bbbb");
  EXPECT_EQ(Inner.find("parent_span_id")->Str,
            Outer.find("span_id")->Str);
  EXPECT_EQ(Outer.find("parent_span_id")->Str, "000000000000002a");
  EXPECT_EQ(Outer.find("pid")->Num, 7.0);
}

TEST_F(TraceTest, SpansOutsideAContextCarryNoTraceIds) {
  obs::trace().setEnabled(true);
  { obs::TraceSpan S("local", "test"); }
  ErrorOr<JsonValue> V = parseJson(obs::trace().renderChromeTrace());
  ASSERT_TRUE(bool(V)) << V.message();
  const JsonValue *Events = V->find("traceEvents");
  ASSERT_EQ(Events->Arr.size(), 1u);
  EXPECT_EQ(Events->Arr[0].find("trace_id"), nullptr);
  EXPECT_EQ(Events->Arr[0].find("span_id"), nullptr);
}

TEST_F(TraceTest, ContextFlowsEvenWhenRecordingIsDisabled) {
  // A relay (the router with tracing off) must still forward the
  // context it received; only event recording is gated on enabled().
  obs::SpanContext Wire;
  Wire.TraceHi = 1;
  Wire.Span = 5;
  obs::ScopedSpanContext Guard(Wire);
  {
    obs::TraceSpan S("quiet", "test");
    EXPECT_FALSE(S.active());
    // A disabled span allocates no id and must not disturb the context.
    EXPECT_EQ(obs::currentSpanContext().Span, 5u);
  }
  EXPECT_EQ(obs::trace().size(), 0u);
  EXPECT_EQ(obs::currentSpanContext().TraceHi, 1u);
}

TEST_F(TraceTest, OverwritesBumpTheDroppedCounter) {
  obs::Counter &Dropped =
      obs::metrics().counter("cdvs_trace_dropped_total",
                             "Trace events lost to ring-buffer "
                             "overwrite since process start.");
  double Before = Dropped.value();
  obs::trace().reset(4);
  obs::trace().setEnabled(true);
  for (int I = 0; I < 10; ++I)
    obs::traceInstant("tick", "test");
  EXPECT_EQ(obs::trace().dropped(), 6u);
  // The process-lifetime counter keeps counting across clears (the ring
  // state resets; the exported total must not go backwards).
  EXPECT_DOUBLE_EQ(Dropped.value(), Before + 6.0);
  obs::trace().clear();
  EXPECT_EQ(obs::trace().dropped(), 0u);
  EXPECT_DOUBLE_EQ(Dropped.value(), Before + 6.0);
}

TEST_F(TraceTest, ThreadsGetDistinctDenseIds) {
  uint32_t Main = obs::traceThreadId();
  EXPECT_EQ(Main, obs::traceThreadId()); // stable per thread
  uint32_t Other = Main;
  std::thread T([&Other] { Other = obs::traceThreadId(); });
  T.join();
  EXPECT_NE(Main, Other);
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  obs::trace().reset(4096);
  obs::trace().setEnabled(true);
  constexpr int Threads = 4, PerThread = 100;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (int I = 0; I < PerThread; ++I)
        obs::TraceSpan S("work", "test");
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(obs::trace().size(), size_t(Threads) * PerThread);
  EXPECT_EQ(obs::trace().dropped(), 0u);
}

} // namespace
