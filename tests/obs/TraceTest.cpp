//===- tests/obs/TraceTest.cpp - Trace recorder tests ----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "service/JsonLite.h"

#include <thread>

#include "gtest/gtest.h"

using namespace cdvs;

namespace {

/// The recorder is process-global; every test starts disabled and empty
/// and leaves it that way.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::trace().setEnabled(false);
    obs::trace().reset(1024);
  }
  void TearDown() override {
    obs::trace().setEnabled(false);
    obs::trace().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    obs::TraceSpan S("quiet", "test");
    EXPECT_FALSE(S.active());
    S.arg("ignored", 1.0);
  }
  obs::traceInstant("also_quiet");
  EXPECT_EQ(obs::trace().size(), 0u);
}

TEST_F(TraceTest, SpansStampDurations) {
  obs::trace().setEnabled(true);
  {
    obs::TraceSpan S("outer", "test");
    EXPECT_TRUE(S.active());
  }
  EXPECT_EQ(obs::trace().size(), 1u);
}

TEST_F(TraceTest, EndIsIdempotentAndEarly) {
  obs::trace().setEnabled(true);
  obs::TraceSpan S("early", "test");
  S.end();
  S.end(); // second end must not double-record
  EXPECT_EQ(obs::trace().size(), 1u);
  EXPECT_FALSE(S.active());
}

TEST_F(TraceTest, RingDropsOldestBeyondCapacity) {
  obs::trace().reset(8);
  obs::trace().setEnabled(true);
  for (int I = 0; I < 20; ++I)
    obs::traceInstant("tick", "test");
  EXPECT_EQ(obs::trace().size(), 8u);
  EXPECT_EQ(obs::trace().dropped(), 12u);
  obs::trace().clear();
  EXPECT_EQ(obs::trace().size(), 0u);
  EXPECT_EQ(obs::trace().dropped(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  obs::trace().setEnabled(true);
  {
    obs::TraceSpan Job("job", "service");
    Job.arg("dequeue_seq", 7.0);
    {
      obs::TraceSpan Child("profile", "service");
    }
    obs::traceInstant("incumbent", "milp", "objective", 42.5);
  }
  obs::trace().setEnabled(false);

  ErrorOr<JsonValue> V = parseJson(obs::trace().renderChromeTrace());
  ASSERT_TRUE(bool(V)) << V.message();
  ASSERT_TRUE(V->isObject());
  EXPECT_EQ(V->find("displayTimeUnit")->Str, "ms");

  const JsonValue *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->Arr.size(), 3u);

  // Destructor order: child closes first, then the instant rides inside,
  // then the outer span.
  const JsonValue &Child = Events->Arr[0];
  EXPECT_EQ(Child.find("name")->Str, "profile");
  EXPECT_EQ(Child.find("ph")->Str, "X");
  EXPECT_GE(Child.find("dur")->Num, 0.0);

  const JsonValue &Instant = Events->Arr[1];
  EXPECT_EQ(Instant.find("name")->Str, "incumbent");
  EXPECT_EQ(Instant.find("ph")->Str, "i");
  EXPECT_EQ(Instant.find("s")->Str, "t");
  EXPECT_DOUBLE_EQ(Instant.find("args")->find("objective")->Num, 42.5);

  const JsonValue &Job = Events->Arr[2];
  EXPECT_EQ(Job.find("name")->Str, "job");
  EXPECT_EQ(Job.find("cat")->Str, "service");
  EXPECT_DOUBLE_EQ(Job.find("args")->find("dequeue_seq")->Num, 7.0);

  // Nesting is by time containment per thread: the child's interval
  // must sit inside the parent's.
  double ChildTs = Child.find("ts")->Num;
  double ChildEnd = ChildTs + Child.find("dur")->Num;
  double JobTs = Job.find("ts")->Num;
  double JobEnd = JobTs + Job.find("dur")->Num;
  EXPECT_GE(ChildTs, JobTs);
  EXPECT_LE(ChildEnd, JobEnd);
  EXPECT_EQ(Child.find("tid")->Num, Job.find("tid")->Num);
}

TEST_F(TraceTest, ThreadsGetDistinctDenseIds) {
  uint32_t Main = obs::traceThreadId();
  EXPECT_EQ(Main, obs::traceThreadId()); // stable per thread
  uint32_t Other = Main;
  std::thread T([&Other] { Other = obs::traceThreadId(); });
  T.join();
  EXPECT_NE(Main, Other);
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  obs::trace().reset(4096);
  obs::trace().setEnabled(true);
  constexpr int Threads = 4, PerThread = 100;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (int I = 0; I < PerThread; ++I)
        obs::TraceSpan S("work", "test");
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(obs::trace().size(), size_t(Threads) * PerThread);
  EXPECT_EQ(obs::trace().dropped(), 0u);
}

} // namespace
