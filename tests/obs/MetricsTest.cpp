//===- tests/obs/MetricsTest.cpp - Metrics registry tests ------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "service/JsonLite.h"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace cdvs;

namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter C;
  EXPECT_EQ(C.value(), 0.0);
  C.inc();
  C.inc(2.5);
  EXPECT_DOUBLE_EQ(C.value(), 3.5);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  // Exercised under TSan by the tsan preset: relaxed fetch_add must be
  // data-race free and lose no increments.
  obs::Counter C;
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_DOUBLE_EQ(C.value(), double(Threads) * PerThread);
}

TEST(Gauge, SetAddMax) {
  obs::Gauge G;
  G.set(5.0);
  EXPECT_DOUBLE_EQ(G.value(), 5.0);
  G.add(-2.0);
  EXPECT_DOUBLE_EQ(G.value(), 3.0);
  G.max(10.0);
  EXPECT_DOUBLE_EQ(G.value(), 10.0);
  G.max(7.0); // smaller: no effect
  EXPECT_DOUBLE_EQ(G.value(), 10.0);
}

TEST(Gauge, ConcurrentMaxKeepsTheLargest) {
  obs::Gauge G;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 8; ++T)
    Ts.emplace_back([&G, T] {
      for (int I = 0; I < 5000; ++I)
        G.max(double(T * 5000 + I));
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_DOUBLE_EQ(G.value(), 7.0 * 5000 + 4999);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  // Prometheus le semantics: V lands in the first bucket with V <= le.
  obs::Histogram H({1.0, 2.0, 4.0});
  H.observe(0.5); // bucket 0
  H.observe(1.0); // bucket 0: boundary is inclusive
  H.observe(1.5); // bucket 1
  H.observe(2.0); // bucket 1
  H.observe(4.0); // bucket 2
  H.observe(4.1); // +Inf bucket
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u); // +Inf
  EXPECT_EQ(H.count(), 6u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);
}

TEST(Histogram, ConcurrentObservationsAllCounted) {
  obs::Histogram H(obs::linearBuckets(0.0, 1.0, 8));
  constexpr int Threads = 4, PerThread = 20000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&H, T] {
      for (int I = 0; I < PerThread; ++I)
        H.observe(double(T));
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), uint64_t(Threads) * PerThread);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(H.bucketCount(T), uint64_t(PerThread)) << "bucket " << T;
}

TEST(Buckets, LinearAndExponentialLadders) {
  std::vector<double> Lin = obs::linearBuckets(1.0, 0.5, 4);
  ASSERT_EQ(Lin.size(), 4u);
  EXPECT_DOUBLE_EQ(Lin[0], 1.0);
  EXPECT_DOUBLE_EQ(Lin[3], 2.5);

  std::vector<double> Exp = obs::exponentialBuckets(1e-6, 4.0, 12);
  ASSERT_EQ(Exp.size(), 12u);
  EXPECT_DOUBLE_EQ(Exp[0], 1e-6);
  EXPECT_DOUBLE_EQ(Exp[1], 4e-6);
  // Strictly ascending — required by Histogram.
  for (size_t I = 1; I < Exp.size(); ++I)
    EXPECT_LT(Exp[I - 1], Exp[I]);
  EXPECT_EQ(obs::latencyBucketsSeconds().size(), 12u);
}

TEST(BucketQuantile, InterpolatesInsidePopulatedBuckets) {
  // 100 observations: 50 in (0, 0.1], 40 in (0.1, 0.2], 10 in
  // (0.2, +Inf]. Cumulative counts, Prometheus-style.
  std::vector<std::pair<double, double>> B = {
      {0.1, 50.0},
      {0.2, 90.0},
      {std::numeric_limits<double>::infinity(), 100.0}};
  // p50 lands exactly on the first bucket's upper bound (rank 50 of
  // 50 in [0, 0.1]).
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, 0.5), 0.1);
  // p75: rank 75 is the 25th of 40 in (0.1, 0.2].
  EXPECT_NEAR(obs::bucketQuantile(B, 0.75), 0.1 + 0.1 * 25.0 / 40.0,
              1e-12);
  // p99 falls in the +Inf bucket, which has no finite upper bound: the
  // estimate clamps to the last finite boundary instead of inventing a
  // number beyond it.
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, 0.99), 0.2);
}

TEST(BucketQuantile, EdgeQuantilesReturnBucketBoundsNotNaN) {
  std::vector<std::pair<double, double>> B = {
      {0.1, 0.0},
      {0.2, 7.0},
      {0.4, 7.0},
      {std::numeric_limits<double>::infinity(), 7.0}};
  // Every observation sits in (0.1, 0.2]. q=0 anchors to the populated
  // bucket's lower bound, q=1 to its upper bound; interior quantiles of
  // a single populated bucket also pin to the upper bound rather than
  // overshooting into empty buckets.
  double P0 = obs::bucketQuantile(B, 0.0);
  double P50 = obs::bucketQuantile(B, 0.5);
  double P99 = obs::bucketQuantile(B, 0.99);
  double P100 = obs::bucketQuantile(B, 1.0);
  EXPECT_FALSE(std::isnan(P0));
  EXPECT_FALSE(std::isnan(P100));
  EXPECT_DOUBLE_EQ(P0, 0.1);
  EXPECT_DOUBLE_EQ(P50, 0.2);
  EXPECT_DOUBLE_EQ(P99, 0.2);
  EXPECT_DOUBLE_EQ(P100, 0.2);

  // Out-of-range quantiles clamp instead of extrapolating.
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, -1.0), 0.1);
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, 2.0), 0.2);

  // Empty input and an all-zero histogram answer 0, not NaN.
  EXPECT_DOUBLE_EQ(obs::bucketQuantile({}, 0.5), 0.0);
  std::vector<std::pair<double, double>> Zero = {
      {0.1, 0.0}, {std::numeric_limits<double>::infinity(), 0.0}};
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(Zero, 0.5), 0.0);
}

TEST(BucketQuantile, AllMassInTheOverflowBucketUsesItsLowerBound) {
  std::vector<std::pair<double, double>> B = {
      {0.1, 0.0},
      {0.2, 0.0},
      {std::numeric_limits<double>::infinity(), 4.0}};
  // +Inf has no finite upper bound to return; the last finite boundary
  // is the only honest answer at every quantile.
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, 0.5), 0.2);
  EXPECT_DOUBLE_EQ(obs::bucketQuantile(B, 1.0), 0.2);
}

TEST(MetricsRegistry, GetOrCreateIsIdempotent) {
  obs::MetricsRegistry R;
  obs::Counter &A = R.counter("cdvs_test_total", "help");
  A.inc(3.0);
  obs::Counter &B = R.counter("cdvs_test_total", "help");
  EXPECT_EQ(&A, &B);
  EXPECT_DOUBLE_EQ(B.value(), 3.0);

  // Distinct labels are distinct series in the same family.
  obs::Counter &L0 =
      R.counter("cdvs_test_labeled_total", "help", {{"shard", "0"}});
  obs::Counter &L1 =
      R.counter("cdvs_test_labeled_total", "help", {{"shard", "1"}});
  EXPECT_NE(&L0, &L1);
  EXPECT_EQ(&L0, &R.counter("cdvs_test_labeled_total", "help",
                            {{"shard", "0"}}));
}

TEST(MetricsRegistry, PrometheusExposition) {
  obs::MetricsRegistry R;
  R.counter("cdvs_a_total", "counts things").inc(2.0);
  R.gauge("cdvs_b", "measures things").set(1.5);
  obs::Histogram &H =
      R.histogram("cdvs_lat_seconds", "latency", {0.1, 1.0});
  H.observe(0.05);
  H.observe(0.5);
  H.observe(5.0);

  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# HELP cdvs_a_total counts things\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE cdvs_a_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cdvs_a_total 2\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE cdvs_b gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("cdvs_b 1.5\n"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(Text.find("cdvs_lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cdvs_lat_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cdvs_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("cdvs_lat_seconds_count 3\n"), std::string::npos);
}

TEST(MetricsRegistry, LabelsRenderInPrometheusSeries) {
  obs::MetricsRegistry R;
  R.counter("cdvs_sharded_total", "per shard", {{"shard", "3"}})
      .inc(7.0);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("cdvs_sharded_total{shard=\"3\"} 7\n"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonDumpParsesBack) {
  obs::MetricsRegistry R;
  R.counter("cdvs_a_total", "counts").inc(2.0);
  R.gauge("cdvs_b", "level", {{"stage", "solve"}}).set(0.25);
  obs::Histogram &H = R.histogram("cdvs_h_seconds", "lat", {1.0, 2.0});
  H.observe(0.5);
  H.observe(3.0);

  ErrorOr<JsonValue> V = parseJson(R.renderJson());
  ASSERT_TRUE(bool(V)) << V.message();
  ASSERT_TRUE(V->isObject());

  const JsonValue *A = V->find("cdvs_a_total");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->find("type")->Str, "counter");
  ASSERT_EQ(A->find("series")->Arr.size(), 1u);
  EXPECT_DOUBLE_EQ(A->find("series")->Arr[0].find("value")->Num, 2.0);

  const JsonValue *B = V->find("cdvs_b");
  ASSERT_NE(B, nullptr);
  const JsonValue &Series = B->find("series")->Arr[0];
  EXPECT_EQ(Series.find("labels")->find("stage")->Str, "solve");
  EXPECT_DOUBLE_EQ(Series.find("value")->Num, 0.25);

  const JsonValue *HJ = V->find("cdvs_h_seconds");
  ASSERT_NE(HJ, nullptr);
  EXPECT_EQ(HJ->find("type")->Str, "histogram");
  const JsonValue &HS = HJ->find("series")->Arr[0];
  EXPECT_DOUBLE_EQ(HS.find("count")->Num, 2.0);
  EXPECT_DOUBLE_EQ(HS.find("sum")->Num, 3.5);
  const std::vector<JsonValue> &Buckets = HS.find("buckets")->Arr;
  ASSERT_EQ(Buckets.size(), 3u); // two finite + +Inf
  EXPECT_DOUBLE_EQ(Buckets[0].find("count")->Num, 1.0); // cumulative
  EXPECT_DOUBLE_EQ(Buckets[1].find("count")->Num, 1.0);
  EXPECT_DOUBLE_EQ(Buckets[2].find("count")->Num, 2.0);
}

TEST(MetricsRegistry, FamilyNamesAreSorted) {
  obs::MetricsRegistry R;
  R.counter("cdvs_z_total", "z");
  R.counter("cdvs_a_total", "a");
  std::vector<std::string> Names = R.familyNames();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "cdvs_a_total");
  EXPECT_EQ(Names[1], "cdvs_z_total");
}

TEST(MetricsRegistry, ProcessSingletonIsStable) {
  EXPECT_EQ(&obs::metrics(), &obs::metrics());
}

} // namespace
