//===- tests/lp/LpWriterTest.cpp - LP-format export ------------------------===//

#include "lp/LpWriter.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(LpWriter, MinimalProblem) {
  LpProblem P;
  int X = P.addVariable(0.0, 4.0, 2.0, "x");
  int Y = P.addVariable(0.0, lpInf(), -1.0, "y");
  P.addRow(RowSense::LE, 10.0, {{X, 1.0}, {Y, 3.0}});
  P.addRow(RowSense::EQ, 2.0, {{X, 1.0}});
  std::string S = writeLpFormat(P);
  EXPECT_NE(S.find("Minimize"), std::string::npos);
  EXPECT_NE(S.find("obj: 2 x - 1 y"), std::string::npos);
  EXPECT_NE(S.find("c0: 1 x + 3 y <= 10"), std::string::npos);
  EXPECT_NE(S.find("c1: 1 x = 2"), std::string::npos);
  EXPECT_NE(S.find("0 <= x <= 4"), std::string::npos);
  // Infinite upper bound leaves the right side open.
  EXPECT_NE(S.find("0 <= y\n"), std::string::npos);
  EXPECT_NE(S.find("End"), std::string::npos);
}

TEST(LpWriter, BinaryAndGeneralSections) {
  LpProblem P;
  int B = P.addVariable(0.0, 1.0, 1.0, "b");
  int G = P.addVariable(0.0, 9.0, 1.0, "g");
  P.addRow(RowSense::GE, 1.0, {{B, 1.0}, {G, 1.0}});
  std::string S = writeLpFormat(P, {B, G});
  EXPECT_NE(S.find("Binaries\n b"), std::string::npos);
  EXPECT_NE(S.find("Generals\n g"), std::string::npos);
  EXPECT_NE(S.find(">= 1"), std::string::npos);
}

TEST(LpWriter, UnnamedVariablesGetIndexNames) {
  LpProblem P;
  P.addVariable(0.0, 1.0, 1.0);
  P.addVariable(0.0, 1.0, 1.0);
  P.addRow(RowSense::LE, 1.0, {{0, 1.0}, {1, 1.0}});
  std::string S = writeLpFormat(P);
  EXPECT_NE(S.find("x0"), std::string::npos);
  EXPECT_NE(S.find("x1"), std::string::npos);
}

TEST(LpWriter, EmptyObjectiveStillWellFormed) {
  LpProblem P;
  P.addVariable(0.0, 1.0, 0.0, "z");
  P.addRow(RowSense::LE, 1.0, {{0, 1.0}});
  std::string S = writeLpFormat(P);
  // Zero-cost objective falls back to an explicit 0-coefficient term.
  EXPECT_NE(S.find("obj: 0 z"), std::string::npos);
}

} // namespace
