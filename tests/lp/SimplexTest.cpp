//===- tests/lp/SimplexTest.cpp - known-answer simplex tests --------------===//

#include "lp/SimplexSolver.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(Simplex, TwoVarMaximizationClassic) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  // As minimization of -(3x + 5y).
  LpProblem P;
  int X = P.addVariable(0.0, lpInf(), -3.0);
  int Y = P.addVariable(0.0, lpInf(), -5.0);
  P.addRow(RowSense::LE, 4.0, {{X, 1.0}});
  P.addRow(RowSense::LE, 12.0, {{Y, 2.0}});
  P.addRow(RowSense::LE, 18.0, {{X, 3.0}, {Y, 2.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, -36.0, 1e-7);
  EXPECT_NEAR(S.X[X], 2.0, 1e-7);
  EXPECT_NEAR(S.X[Y], 6.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y == 10, x <= 4 -> x=4, y=6, obj 16.
  LpProblem P;
  int X = P.addVariable(0.0, 4.0, 1.0);
  int Y = P.addVariable(0.0, lpInf(), 2.0);
  P.addRow(RowSense::EQ, 10.0, {{X, 1.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 16.0, 1e-7);
  EXPECT_NEAR(S.X[X], 4.0, 1e-7);
  EXPECT_NEAR(S.X[Y], 6.0, 1e-7);
}

TEST(Simplex, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> x=3, y=1, obj 9.
  LpProblem P;
  int X = P.addVariable(0.0, lpInf(), 2.0);
  int Y = P.addVariable(0.0, lpInf(), 3.0);
  P.addRow(RowSense::GE, 4.0, {{X, 1.0}, {Y, 1.0}});
  P.addRow(RowSense::GE, 6.0, {{X, 1.0}, {Y, 3.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 9.0, 1e-7);
  EXPECT_NEAR(S.X[X], 3.0, 1e-7);
  EXPECT_NEAR(S.X[Y], 1.0, 1e-7);
}

TEST(Simplex, Infeasible) {
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 1.0);
  P.addRow(RowSense::GE, 5.0, {{X, 1.0}});
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, LpStatus::Infeasible);
}

TEST(Simplex, InfeasibleEqualitySystem) {
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 1.0);
  int Y = P.addVariable(0.0, 10.0, 1.0);
  P.addRow(RowSense::EQ, 3.0, {{X, 1.0}, {Y, 1.0}});
  P.addRow(RowSense::EQ, 7.0, {{X, 1.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, LpStatus::Infeasible);
}

TEST(Simplex, Unbounded) {
  // min -x with x unbounded above.
  LpProblem P;
  int X = P.addVariable(0.0, lpInf(), -1.0);
  P.addRow(RowSense::GE, 0.0, {{X, 1.0}});
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, LpStatus::Unbounded);
}

TEST(Simplex, BoundedVariableOptimumAtUpperBound) {
  // min -x - y with x in [0, 2], y in [0, 3], x + y <= 10: both at upper.
  LpProblem P;
  int X = P.addVariable(0.0, 2.0, -1.0);
  int Y = P.addVariable(0.0, 3.0, -1.0);
  P.addRow(RowSense::LE, 10.0, {{X, 1.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[X], 2.0, 1e-8);
  EXPECT_NEAR(S.X[Y], 3.0, 1e-8);
  EXPECT_NEAR(S.Objective, -5.0, 1e-8);
}

TEST(Simplex, NonzeroLowerBounds) {
  // min x + y with x >= 2, y >= 3, x + y >= 7 -> obj 7.
  LpProblem P;
  int X = P.addVariable(2.0, lpInf(), 1.0);
  int Y = P.addVariable(3.0, lpInf(), 1.0);
  P.addRow(RowSense::GE, 7.0, {{X, 1.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 7.0, 1e-7);
}

TEST(Simplex, FixedVariable) {
  // x fixed at 2; min y s.t. y >= x -> y = 2.
  LpProblem P;
  int X = P.addVariable(2.0, 2.0, 0.0);
  int Y = P.addVariable(0.0, lpInf(), 1.0);
  P.addRow(RowSense::GE, 0.0, {{Y, 1.0}, {X, -1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[X], 2.0, 1e-9);
  EXPECT_NEAR(S.X[Y], 2.0, 1e-7);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Classic degeneracy: several constraints meet at the optimum.
  LpProblem P;
  int X = P.addVariable(0.0, lpInf(), -1.0);
  int Y = P.addVariable(0.0, lpInf(), -1.0);
  P.addRow(RowSense::LE, 1.0, {{X, 1.0}});
  P.addRow(RowSense::LE, 1.0, {{Y, 1.0}});
  P.addRow(RowSense::LE, 2.0, {{X, 1.0}, {Y, 1.0}});
  P.addRow(RowSense::LE, 2.0, {{X, 2.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  // Optimum: 2x + y <= 2 and y <= 1 give x = 0.5, y = 1, obj -1.5.
  EXPECT_NEAR(S.Objective, -1.5, 1e-7);
}

TEST(Simplex, NegativeRhsLeRowNeedsPhase1) {
  // x + y <= -1 cannot hold with x,y >= 0 unless coefficients negative:
  // use -x <= -2, i.e. x >= 2 in LE form.
  LpProblem P;
  int X = P.addVariable(0.0, lpInf(), 1.0);
  P.addRow(RowSense::LE, -2.0, {{X, -1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[X], 2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // Two identical equality rows: phase 1 must cope with the redundancy.
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 1.0);
  int Y = P.addVariable(0.0, 10.0, 1.0);
  P.addRow(RowSense::EQ, 4.0, {{X, 1.0}, {Y, 1.0}});
  P.addRow(RowSense::EQ, 4.0, {{X, 1.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 4.0, 1e-7);
}

TEST(Simplex, ObjectiveWithAllZeroCosts) {
  LpProblem P;
  int X = P.addVariable(0.0, 5.0, 0.0);
  P.addRow(RowSense::GE, 1.0, {{X, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(S.Objective, 0.0);
  EXPECT_GE(S.X[X], 1.0 - 1e-7);
}

TEST(Simplex, AssignmentLikeEqualityStructure) {
  // Mimics the DVS structure: k0 + k1 + k2 == 1, minimize costs.
  LpProblem P;
  int K0 = P.addVariable(0.0, 1.0, 5.0);
  int K1 = P.addVariable(0.0, 1.0, 2.0);
  int K2 = P.addVariable(0.0, 1.0, 7.0);
  P.addRow(RowSense::EQ, 1.0, {{K0, 1.0}, {K1, 1.0}, {K2, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.0, 1e-8);
  EXPECT_NEAR(S.X[K1], 1.0, 1e-8);
}

TEST(Simplex, LargerDiet) {
  // A small diet problem with a known optimum.
  // min 1.2a + 1.0b  s.t. 10a + 4b >= 20, 5a + 5b >= 20, a,b >= 0.
  // Vertices: (4,0) obj 4.8; (0,5) obj 5; intersection a=2/3, b=10/3
  // obj 1.2*2/3 + 10/3 = 4.133... -> interior vertex wins.
  LpProblem P;
  int A = P.addVariable(0.0, lpInf(), 1.2);
  int B = P.addVariable(0.0, lpInf(), 1.0);
  P.addRow(RowSense::GE, 20.0, {{A, 10.0}, {B, 4.0}});
  P.addRow(RowSense::GE, 20.0, {{A, 5.0}, {B, 5.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[A], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(S.X[B], 10.0 / 3.0, 1e-6);
  EXPECT_NEAR(S.Objective, 1.2 * 2.0 / 3.0 + 10.0 / 3.0, 1e-6);
}

} // namespace
