//===- tests/lp/SimplexPropertyTest.cpp - randomized LP cross-checks ------===//
//
// Property test: random bounded LPs, constructed to be feasible, are
// solved by the simplex and cross-checked against an independent exact
// optimum computed by brute-force vertex enumeration (every vertex of a
// bounded polytope is the intersection of n tight constraints).
//
//===----------------------------------------------------------------------===//

#include "lp/SimplexSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

using namespace cdvs;

namespace {

/// One linear condition a^T x (<=|>=) b used by the brute-force checker.
struct Condition {
  std::vector<double> A;
  double B;
  bool IsGe; // a^T x >= b if true, else <=
};

/// Solves the n-by-n system M x = R by Gaussian elimination with partial
/// pivoting; returns nullopt if singular.
std::optional<std::vector<double>>
solveSquare(std::vector<std::vector<double>> M, std::vector<double> R) {
  const int N = static_cast<int>(R.size());
  for (int Col = 0; Col < N; ++Col) {
    int Piv = Col;
    for (int I = Col + 1; I < N; ++I)
      if (std::fabs(M[I][Col]) > std::fabs(M[Piv][Col]))
        Piv = I;
    if (std::fabs(M[Piv][Col]) < 1e-10)
      return std::nullopt;
    std::swap(M[Piv], M[Col]);
    std::swap(R[Piv], R[Col]);
    for (int I = 0; I < N; ++I) {
      if (I == Col)
        continue;
      double F = M[I][Col] / M[Col][Col];
      for (int J = Col; J < N; ++J)
        M[I][J] -= F * M[Col][J];
      R[I] -= F * R[Col];
    }
  }
  std::vector<double> X(N);
  for (int I = 0; I < N; ++I)
    X[I] = R[I] / M[I][I];
  return X;
}

/// Exact optimum of a bounded feasible LP by vertex enumeration.
double bruteForceOptimum(const LpProblem &P,
                         const std::vector<Condition> &Conds) {
  const int N = P.numVariables();
  double Best = std::numeric_limits<double>::infinity();
  const int Total = static_cast<int>(Conds.size());
  std::vector<int> Pick(N, 0);

  // Enumerate all N-subsets of conditions.
  std::function<void(int, int)> Rec = [&](int Start, int Chosen) {
    if (Chosen == N) {
      std::vector<std::vector<double>> M;
      std::vector<double> R;
      for (int I = 0; I < N; ++I) {
        M.push_back(Conds[Pick[I]].A);
        R.push_back(Conds[Pick[I]].B);
      }
      auto X = solveSquare(M, R);
      if (!X)
        return;
      // Feasibility of the candidate vertex.
      for (const Condition &C : Conds) {
        double Act = 0.0;
        for (int J = 0; J < N; ++J)
          Act += C.A[J] * (*X)[J];
        if (C.IsGe ? Act < C.B - 1e-6 : Act > C.B + 1e-6)
          return;
      }
      Best = std::min(Best, P.objectiveAt(*X));
      return;
    }
    for (int I = Start; I <= Total - (N - Chosen); ++I) {
      Pick[Chosen] = I;
      Rec(I + 1, Chosen + 1);
    }
  };
  Rec(0, 0);
  return Best;
}

struct RandomLpCase {
  LpProblem P;
  std::vector<Condition> Conds;
  std::vector<double> FeasiblePoint;
};

RandomLpCase makeRandomLp(Rng &R, int NumVars, int NumRows) {
  RandomLpCase Case;
  std::vector<double> Ub(NumVars);
  std::vector<double> X0(NumVars);
  for (int J = 0; J < NumVars; ++J) {
    Ub[J] = 1.0 + R.nextDouble() * 4.0;
    X0[J] = R.nextDouble() * Ub[J];
    double Cost = R.nextDouble() * 10.0 - 5.0;
    Case.P.addVariable(0.0, Ub[J], Cost);
    // Bound conditions for the brute-force checker.
    Condition LoC, HiC;
    LoC.A.assign(NumVars, 0.0);
    LoC.A[J] = 1.0;
    LoC.B = 0.0;
    LoC.IsGe = true;
    HiC.A.assign(NumVars, 0.0);
    HiC.A[J] = 1.0;
    HiC.B = Ub[J];
    HiC.IsGe = false;
    Case.Conds.push_back(LoC);
    Case.Conds.push_back(HiC);
  }
  for (int I = 0; I < NumRows; ++I) {
    std::vector<double> A(NumVars);
    double Act = 0.0;
    for (int J = 0; J < NumVars; ++J) {
      A[J] = R.nextDouble() * 6.0 - 3.0;
      Act += A[J] * X0[J];
    }
    bool IsGe = R.nextBool(0.5);
    double Slack = R.nextDouble() * 2.0;
    double B = IsGe ? Act - Slack : Act + Slack;
    std::vector<LpTerm> Terms;
    for (int J = 0; J < NumVars; ++J)
      Terms.push_back({J, A[J]});
    Case.P.addRow(IsGe ? RowSense::GE : RowSense::LE, B, Terms);
    Case.Conds.push_back({A, B, IsGe});
  }
  Case.FeasiblePoint = X0;
  return Case;
}

class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, MatchesBruteForceVertexEnumeration) {
  Rng R(1000 + GetParam());
  for (int Trial = 0; Trial < 40; ++Trial) {
    int NumVars = 2 + static_cast<int>(R.nextBelow(2)); // 2 or 3
    int NumRows = 1 + static_cast<int>(R.nextBelow(4)); // 1..4
    RandomLpCase C = makeRandomLp(R, NumVars, NumRows);

    LpSolution S = solveLp(C.P);
    ASSERT_EQ(S.Status, LpStatus::Optimal)
        << "seed " << GetParam() << " trial " << Trial;
    EXPECT_TRUE(C.P.isFeasible(S.X, 1e-5))
        << "seed " << GetParam() << " trial " << Trial;
    // Cannot be worse than the known feasible point.
    EXPECT_LE(S.Objective, C.P.objectiveAt(C.FeasiblePoint) + 1e-6);

    double Exact = bruteForceOptimum(C.P, C.Conds);
    ASSERT_TRUE(std::isfinite(Exact));
    EXPECT_NEAR(S.Objective, Exact, 1e-5 * (1.0 + std::fabs(Exact)))
        << "seed " << GetParam() << " trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp,
                         ::testing::Range(0, 10));

TEST(SimplexStress, ManySmallDenseLps) {
  // Bigger random instances: only feasibility and improvement over the
  // seed point are checked (vertex enumeration would be too slow).
  Rng R(42);
  for (int Trial = 0; Trial < 25; ++Trial) {
    int NumVars = 5 + static_cast<int>(R.nextBelow(10));
    int NumRows = 3 + static_cast<int>(R.nextBelow(10));
    RandomLpCase C = makeRandomLp(R, NumVars, NumRows);
    LpSolution S = solveLp(C.P);
    ASSERT_EQ(S.Status, LpStatus::Optimal) << "trial " << Trial;
    EXPECT_TRUE(C.P.isFeasible(S.X, 1e-5)) << "trial " << Trial;
    EXPECT_LE(S.Objective, C.P.objectiveAt(C.FeasiblePoint) + 1e-6);
  }
}

} // namespace
