//===- tests/lp/SimplexWarmStartTest.cpp - warm-start cross-checks --------===//
//
// Property tests for SimplexEngine: a warm re-solve after bound changes
// must agree with a cold solve of the same problem — same status, same
// objective — on randomized instances and bound-change sequences. Also
// covers the basis export/import roundtrip and warm infeasibility
// detection.
//
//===----------------------------------------------------------------------===//

#include "../common/RandomMilp.h"
#include "lp/SimplexSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cdvs;
using testutil::makeModeAssignment;
using testutil::makeRandomLp;

namespace {

/// Solves P cold and compares against the engine's (usually warm) view.
void expectMatchesCold(SimplexEngine &Engine) {
  LpSolution Warm = Engine.solve();
  LpSolution Cold = solveLp(Engine.problem());
  ASSERT_EQ(Warm.Status, Cold.Status)
      << "warm " << lpStatusName(Warm.Status) << " vs cold "
      << lpStatusName(Cold.Status);
  if (Warm.Status == LpStatus::Optimal) {
    EXPECT_NEAR(Warm.Objective, Cold.Objective,
                1e-6 * (1.0 + std::fabs(Cold.Objective)));
    EXPECT_TRUE(Engine.problem().isFeasible(Warm.X, 1e-5));
  }
}

TEST(SimplexWarmStart, RandomBoundChangesMatchColdSolve) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    Rng R(1000 + Seed);
    int Vars = 6 + static_cast<int>(R.nextBelow(20));
    int Rows = 3 + static_cast<int>(R.nextBelow(12));
    LpProblem P = makeRandomLp(Vars, Rows, 77 * Seed + 3);
    SimplexEngine Engine(P);
    expectMatchesCold(Engine);
    for (int Step = 0; Step < 12; ++Step) {
      int V = static_cast<int>(R.nextBelow(Vars));
      double Ub = P.upperBound(V);
      switch (R.nextBelow(3)) {
      case 0: // tighten the upper bound
        Engine.setBounds(V, 0.0, R.nextDouble() * Ub);
        break;
      case 1: // fix to a point
        Engine.setBounds(V, 0.5 * Ub, 0.5 * Ub);
        break;
      default: // restore the original box
        Engine.setBounds(V, 0.0, Ub);
        break;
      }
      expectMatchesCold(Engine);
    }
    EXPECT_GT(Engine.warmSolves(), 0) << "warm path never exercised";
  }
}

TEST(SimplexWarmStart, BranchingStyleFixingsMatchColdSolve) {
  // The branch-and-bound's access pattern: fix SOS1 binaries to 0/1,
  // solve, relax, fix others.
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    auto C = makeModeAssignment(8, 0.15, 500 + Seed);
    Rng R(Seed);
    SimplexEngine Engine(C.P);
    expectMatchesCold(Engine);
    for (int Step = 0; Step < 16; ++Step) {
      int V = C.Integers[R.nextBelow(C.Integers.size())];
      switch (R.nextBelow(3)) {
      case 0:
        Engine.setBounds(V, 0.0, 0.0);
        break;
      case 1:
        Engine.setBounds(V, 1.0, 1.0);
        break;
      default:
        Engine.setBounds(V, 0.0, 1.0);
        break;
      }
      expectMatchesCold(Engine);
    }
  }
}

TEST(SimplexWarmStart, DetectsInfeasibilityWarm) {
  // x0 + x1 = 1 with both variables fixed at zero is infeasible; the
  // warm dual simplex must report it just like the cold phase 1 does.
  LpProblem P;
  int X0 = P.addVariable(0.0, 1.0, 1.0);
  int X1 = P.addVariable(0.0, 1.0, 2.0);
  P.addRow(RowSense::EQ, 1.0, {{X0, 1.0}, {X1, 1.0}});
  SimplexEngine Engine(P);
  ASSERT_EQ(Engine.solve().Status, LpStatus::Optimal);
  Engine.setBounds(X0, 0.0, 0.0);
  Engine.setBounds(X1, 0.0, 0.0);
  EXPECT_EQ(Engine.solve().Status, LpStatus::Infeasible);
  // Relaxing again must recover.
  Engine.setBounds(X0, 0.0, 1.0);
  LpSolution S = Engine.solve();
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 1.0, 1e-9);
}

TEST(SimplexWarmStart, BasisRoundTripSeedsAnotherEngine) {
  LpProblem P = makeRandomLp(12, 6, 99);
  SimplexEngine A(P);
  LpSolution SA = A.solve();
  ASSERT_EQ(SA.Status, LpStatus::Optimal);
  SimplexBasis B;
  A.exportBasis(B);
  ASSERT_FALSE(B.empty());

  SimplexEngine C(P);
  ASSERT_TRUE(C.loadBasis(B));
  LpSolution SC = C.solve();
  ASSERT_EQ(SC.Status, LpStatus::Optimal);
  EXPECT_NEAR(SC.Objective, SA.Objective,
              1e-8 * (1.0 + std::fabs(SA.Objective)));
  // The loaded basis is already optimal: the warm solve needs no cold
  // fallback.
  EXPECT_EQ(C.coldSolves(), 0);
  EXPECT_EQ(C.warmSolves(), 1);
}

TEST(SimplexWarmStart, SolverExportsBasisThatReenters) {
  LpProblem P = makeRandomLp(10, 5, 123);
  SimplexBasis B;
  SimplexSolver S(P);
  LpSolution Sol = S.solve(B);
  ASSERT_EQ(Sol.Status, LpStatus::Optimal);
  ASSERT_FALSE(B.empty());
  SimplexEngine E(P);
  ASSERT_TRUE(E.loadBasis(B));
  LpSolution Warm = E.solve();
  ASSERT_EQ(Warm.Status, LpStatus::Optimal);
  EXPECT_NEAR(Warm.Objective, Sol.Objective,
              1e-8 * (1.0 + std::fabs(Sol.Objective)));
}

} // namespace
