//===- tests/lp/SimplexRegressionTest.cpp - classic hard instances --------===//
//
// Known-nasty LP instances: Beale's cycling example (degenerate pivots
// that defeat naive Dantzig pricing without anti-cycling), redundant
// equality systems, and scaling extremes like the DVS formulation's
// microsecond-vs-joule coefficient mix.
//
//===----------------------------------------------------------------------===//

#include "lp/SimplexSolver.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(SimplexRegression, BealeCyclingExample) {
  // min -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
  // s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 <= 0
  //      1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 <= 0
  //      x3 <= 1
  // Optimal objective -1/20 at x = (1/25, 0, 1, 0) (degenerate vertex
  // sequence famously cycles under naive pivoting).
  LpProblem P;
  int X1 = P.addVariable(0.0, lpInf(), -0.75);
  int X2 = P.addVariable(0.0, lpInf(), 150.0);
  int X3 = P.addVariable(0.0, lpInf(), -0.02);
  int X4 = P.addVariable(0.0, lpInf(), 6.0);
  P.addRow(RowSense::LE, 0.0,
           {{X1, 0.25}, {X2, -60.0}, {X3, -1.0 / 25.0}, {X4, 9.0}});
  P.addRow(RowSense::LE, 0.0,
           {{X1, 0.5}, {X2, -90.0}, {X3, -1.0 / 50.0}, {X4, 3.0}});
  P.addRow(RowSense::LE, 1.0, {{X3, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, -0.05, 1e-9);
}

TEST(SimplexRegression, FullyDeterminedEqualitySystem) {
  // Three equalities pin all three variables; any objective returns the
  // unique feasible point.
  LpProblem P;
  int X = P.addVariable(0.0, 100.0, 5.0);
  int Y = P.addVariable(0.0, 100.0, -3.0);
  int Z = P.addVariable(0.0, 100.0, 1.0);
  P.addRow(RowSense::EQ, 6.0, {{X, 1.0}, {Y, 1.0}, {Z, 1.0}});
  P.addRow(RowSense::EQ, 1.0, {{X, 1.0}, {Y, -1.0}});
  P.addRow(RowSense::EQ, 5.0, {{X, 1.0}, {Z, 1.0}});
  // Solve: x - y = 1, x + z = 5, x + y + z = 6 -> y = 1? Check:
  // x + y + z = (x + z) + y = 5 + y = 6 -> y = 1 -> x = 2 -> z = 3.
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[X], 2.0, 1e-8);
  EXPECT_NEAR(S.X[Y], 1.0, 1e-8);
  EXPECT_NEAR(S.X[Z], 3.0, 1e-8);
}

TEST(SimplexRegression, WildCoefficientScales) {
  // The DVS MILP mixes joules (~1e-4) and microsecond times (~1e-6)
  // with counts (~1e5): coefficients spanning ~10 orders of magnitude.
  LpProblem P;
  int A = P.addVariable(0.0, 1.0, 1e-4);
  int B = P.addVariable(0.0, 1.0, 3e-4);
  int T = P.addVariable(0.0, lpInf(), 1e-6);
  P.addRow(RowSense::EQ, 1.0, {{A, 1.0}, {B, 1.0}});
  P.addRow(RowSense::LE, 5e-3, {{A, 9e-3}, {B, 2e-3}, {T, 1e-9}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  // A alone violates the time row (9e-3 > 5e-3): a mix is forced.
  // a + b = 1 and 9e-3 a + 2e-3 b <= 5e-3 -> a <= 3/7.
  EXPECT_NEAR(S.X[A], 3.0 / 7.0, 1e-6);
  EXPECT_TRUE(P.isFeasible(S.X, 1e-9));
}

TEST(SimplexRegression, ManyRedundantRows) {
  // The same constraint repeated 50 times plus its scaled variants:
  // phase 1 must cope with massive redundancy.
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, -1.0);
  int Y = P.addVariable(0.0, 10.0, -2.0);
  for (int I = 1; I <= 50; ++I)
    P.addRow(RowSense::LE, 8.0 * I, {{X, 1.0 * I}, {Y, 1.0 * I}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, -16.0, 1e-7); // y=8, x=0
}

TEST(SimplexRegression, ZeroRowAndZeroRhs) {
  LpProblem P;
  int X = P.addVariable(0.0, 5.0, -1.0);
  P.addRow(RowSense::LE, 0.0, {{X, 0.0}}); // vacuous
  P.addRow(RowSense::GE, 0.0, {{X, 1.0}}); // x >= 0 (redundant)
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.X[X], 5.0, 1e-8);
}

TEST(SimplexRegression, EqualityWithAllVariablesFixed) {
  LpProblem P;
  int X = P.addVariable(2.0, 2.0, 1.0);
  int Y = P.addVariable(3.0, 3.0, 1.0);
  P.addRow(RowSense::EQ, 5.0, {{X, 1.0}, {Y, 1.0}});
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Objective, 5.0, 1e-9);

  // And the inconsistent variant is infeasible.
  LpProblem Q;
  int A = Q.addVariable(2.0, 2.0, 1.0);
  Q.addRow(RowSense::EQ, 7.0, {{A, 1.0}});
  EXPECT_EQ(solveLp(Q).Status, LpStatus::Infeasible);
}

} // namespace
