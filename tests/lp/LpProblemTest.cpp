//===- tests/lp/LpProblemTest.cpp - LP model builder ----------------------===//

#include "lp/LpProblem.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(LpProblem, AddVariablesAndRows) {
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 1.0, "x");
  int Y = P.addVariable(0.0, lpInf(), 2.0, "y");
  EXPECT_EQ(X, 0);
  EXPECT_EQ(Y, 1);
  EXPECT_EQ(P.numVariables(), 2);
  int R = P.addRow(RowSense::LE, 5.0, {{X, 1.0}, {Y, 1.0}});
  EXPECT_EQ(R, 0);
  EXPECT_EQ(P.numRows(), 1);
  EXPECT_EQ(P.name(X), "x");
  EXPECT_DOUBLE_EQ(P.cost(Y), 2.0);
  EXPECT_DOUBLE_EQ(P.rhs(0), 5.0);
}

TEST(LpProblem, ObjectiveAndActivity) {
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 3.0);
  int Y = P.addVariable(0.0, 10.0, -1.0);
  P.addRow(RowSense::LE, 4.0, {{X, 2.0}, {Y, 1.0}});
  std::vector<double> Point = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(P.objectiveAt(Point), 3.0 * 1.0 - 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(P.rowActivityAt(0, Point), 2.0 + 2.0);
}

TEST(LpProblem, FeasibilityCheck) {
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 1.0);
  P.addRow(RowSense::GE, 0.5, {{X, 1.0}});
  EXPECT_TRUE(P.isFeasible({0.7}));
  EXPECT_FALSE(P.isFeasible({0.2}));  // row violated
  EXPECT_FALSE(P.isFeasible({1.5}));  // bound violated
  EXPECT_FALSE(P.isFeasible({}));     // wrong arity
}

TEST(LpProblem, EqualityFeasibility) {
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 0.0);
  int Y = P.addVariable(0.0, 10.0, 0.0);
  P.addRow(RowSense::EQ, 3.0, {{X, 1.0}, {Y, 1.0}});
  EXPECT_TRUE(P.isFeasible({1.0, 2.0}));
  EXPECT_FALSE(P.isFeasible({1.0, 2.5}));
}

TEST(LpProblem, SetCostAndBounds) {
  LpProblem P;
  int X = P.addVariable(0.0, 1.0, 1.0);
  P.setCost(X, 5.0);
  EXPECT_DOUBLE_EQ(P.cost(X), 5.0);
  P.setBounds(X, 0.25, 0.75);
  EXPECT_DOUBLE_EQ(P.lowerBound(X), 0.25);
  EXPECT_DOUBLE_EQ(P.upperBound(X), 0.75);
}

TEST(LpProblem, RepeatedTermsAccumulateInActivity) {
  LpProblem P;
  int X = P.addVariable(0.0, 10.0, 0.0);
  P.addRow(RowSense::LE, 5.0, {{X, 1.0}, {X, 2.0}});
  EXPECT_DOUBLE_EQ(P.rowActivityAt(0, {1.0}), 3.0);
}

} // namespace
