//===- tests/service/CacheTest.cpp - sharded LRU + single-flight ----------===//

#include "service/ResultCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

using namespace cdvs;

namespace {

std::shared_ptr<const CachedSchedule> makeValue(const std::string &Text) {
  auto V = std::make_shared<CachedSchedule>();
  V->ScheduleText = Text;
  return V;
}

TEST(ResultCache, ComputesOnceThenHits) {
  ResultCache Cache(8, 1);
  int Computes = 0;
  auto Compute = [&] {
    ++Computes;
    return makeValue("sched");
  };
  ResultCache::Lookup First = Cache.getOrCompute("k", Compute);
  EXPECT_FALSE(First.Hit);
  EXPECT_FALSE(First.Shared);
  ASSERT_NE(First.Value, nullptr);
  EXPECT_EQ(First.Value->ScheduleText, "sched");

  ResultCache::Lookup Second = Cache.getOrCompute("k", Compute);
  EXPECT_TRUE(Second.Hit);
  EXPECT_EQ(Second.Value, First.Value); // same immutable object
  EXPECT_EQ(Computes, 1);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1);
  EXPECT_EQ(S.Misses, 1);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ResultCache, PeekDoesNotComputeOrCount) {
  ResultCache Cache(8, 1);
  EXPECT_EQ(Cache.peek("absent"), nullptr);
  Cache.getOrCompute("k", [] { return makeValue("v"); });
  EXPECT_NE(Cache.peek("k"), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0);
  EXPECT_EQ(S.Misses, 1);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  // Single shard, capacity 2: touching "a" makes "b" the LRU victim.
  ResultCache Cache(2, 1);
  EXPECT_EQ(Cache.capacity(), 2u);
  auto Fill = [&](const std::string &K) {
    Cache.getOrCompute(K, [&K] { return makeValue(K); });
  };
  Fill("a");
  Fill("b");
  Cache.getOrCompute("a", [] { return makeValue("recompute!"); });
  Fill("c"); // evicts b, the least recently used
  EXPECT_NE(Cache.peek("a"), nullptr);
  EXPECT_EQ(Cache.peek("b"), nullptr);
  EXPECT_NE(Cache.peek("c"), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(ResultCache, CapacitySplitsAcrossShardsWithFloorOne) {
  EXPECT_EQ(ResultCache(16, 4).capacity(), 16u);
  // Fewer entries than shards: every shard still holds one.
  EXPECT_EQ(ResultCache(2, 8).capacity(), 8u);
}

TEST(ResultCache, ConcurrentSameKeyCollapsesToOneCompute) {
  ResultCache Cache(8, 4);
  std::atomic<int> Computes{0};
  std::atomic<int> Waiting{0};
  const int NumThreads = 8;

  auto Compute = [&]() -> std::shared_ptr<const CachedSchedule> {
    Computes.fetch_add(1);
    // Hold the flight open until every thread has called in, plus a
    // beat for stragglers to reach the flight wait, so followers
    // genuinely wait instead of hitting the stored entry.
    while (Waiting.load() < NumThreads)
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return makeValue("once");
  };

  std::vector<std::future<ResultCache::Lookup>> Futures;
  for (int I = 0; I < NumThreads; ++I)
    Futures.push_back(std::async(std::launch::async, [&] {
      Waiting.fetch_add(1);
      return Cache.getOrCompute("hot", Compute);
    }));

  int Leaders = 0, Shared = 0, Hits = 0;
  for (auto &F : Futures) {
    ResultCache::Lookup L = F.get();
    ASSERT_NE(L.Value, nullptr);
    EXPECT_EQ(L.Value->ScheduleText, "once");
    Leaders += (!L.Hit && !L.Shared);
    Shared += L.Shared;
    Hits += L.Hit;
  }
  // Exactly one solve; everyone else either joined the flight or (in
  // the narrow window between install and their shard lookup) hit the
  // freshly stored entry. The latch guarantees at least one follower
  // was already waiting when the leader finished.
  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Leaders, 1);
  EXPECT_EQ(Shared + Hits, NumThreads - 1);
  EXPECT_GE(Shared, 1);
  EXPECT_EQ(Cache.stats().SharedFlights, Shared);
}

TEST(ResultCache, NullComputeIsHandedToWaitersButNotCached) {
  ResultCache Cache(8, 1);
  int Computes = 0;
  auto Failing = [&]() -> std::shared_ptr<const CachedSchedule> {
    ++Computes;
    return nullptr;
  };
  ResultCache::Lookup L = Cache.getOrCompute("k", Failing);
  EXPECT_EQ(L.Value, nullptr);
  EXPECT_EQ(Cache.peek("k"), nullptr);
  // The failure was not stored: the next call retries the compute.
  ResultCache::Lookup Retry =
      Cache.getOrCompute("k", [] { return makeValue("recovered"); });
  EXPECT_FALSE(Retry.Hit);
  ASSERT_NE(Retry.Value, nullptr);
  EXPECT_EQ(Retry.Value->ScheduleText, "recovered");
  EXPECT_EQ(Computes, 1);
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

TEST(ResultCache, DistinctKeysComputeIndependentlyUnderLoad) {
  ResultCache Cache(64, 4);
  std::atomic<int> Computes{0};
  std::vector<std::future<void>> Futures;
  for (int T = 0; T < 4; ++T)
    Futures.push_back(std::async(std::launch::async, [&Cache, &Computes] {
      for (int I = 0; I < 32; ++I) {
        std::string Key = "k" + std::to_string(I);
        ResultCache::Lookup L = Cache.getOrCompute(Key, [&] {
          Computes.fetch_add(1);
          return makeValue(Key);
        });
        ASSERT_NE(L.Value, nullptr);
        EXPECT_EQ(L.Value->ScheduleText, Key);
      }
    }));
  for (auto &F : Futures)
    F.get();
  // Each of the 32 keys computed at least once and was never computed
  // after being stored; flights may collapse racing first-computes.
  EXPECT_GE(Computes.load(), 32);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, Computes.load());
  EXPECT_EQ(S.Hits + S.SharedFlights + S.Misses, 4 * 32);
}

} // namespace
