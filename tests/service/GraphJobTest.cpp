//===- tests/service/GraphJobTest.cpp - graph jobs through the service -----===//
//
// The graph job kind end to end: canned DAGs submitted like any other
// request come back as cdvs-taskplan text with the online/static energy
// pairing intact, cache by graph fingerprint (so resubmission is
// byte-identical and profile collection is shared), survive strict
// verification, and fail with named reasons when the request is
// malformed. Satellite 3's service-level half lives here too: worker
// count must not move a single byte of the emitted plan.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "taskgraph/Generator.h"
#include "taskgraph/PlanIO.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace cdvs;

namespace {

JobRequest graphJob(const std::string &Id, const std::string &Name,
                    bool Replan = true) {
  ErrorOr<taskgraph::TaskGraph> G = taskgraph::cannedTaskGraph(Name);
  EXPECT_TRUE(G.hasValue()) << G.message();
  JobRequest R;
  R.Id = Id;
  R.GraphReplan = Replan;
  R.Graph = std::make_shared<const taskgraph::TaskGraph>(std::move(*G));
  return R;
}

TEST(GraphJob, SolvesACannedGraphEndToEnd) {
  SchedulerService Service;
  JobResult R = Service.submit(graphJob("g1", "pair2-early")).get();
  ASSERT_EQ(R.Status, JobStatus::Done) << R.Reason;
  EXPECT_EQ(R.Id, "g1");
  EXPECT_EQ(R.Fingerprint.size(), 32u);
  EXPECT_FALSE(R.CacheHit);

  // Graph-kind marker and the reclamation pairing: every pair2-early
  // factor is < 1, so the online plan must replan at least once and
  // never exceed the static energy.
  EXPECT_GE(R.Replans, 1);
  EXPECT_GE(R.ReplansAccepted, 0);
  EXPECT_LE(R.ReplansAccepted, R.Replans);
  EXPECT_GT(R.StaticEnergyJoules, 0.0);
  EXPECT_GT(R.PredictedEnergyJoules, 0.0);
  EXPECT_LE(R.PredictedEnergyJoules, R.StaticEnergyJoules);
  EXPECT_GT(R.MakespanSeconds, 0.0);
  EXPECT_GT(R.DeadlineSeconds, 0.0);
  EXPECT_LE(R.MakespanSeconds, R.DeadlineSeconds * (1.0 + 1e-9));

  // The schedule text is a parseable task plan that re-reads to the
  // same executed result.
  ASSERT_EQ(R.ScheduleText.rfind("cdvs-taskplan v1\n", 0), 0u);
  std::vector<std::string> Names;
  ErrorOr<taskgraph::OnlineResult> Plan =
      taskgraph::readTaskPlan(R.ScheduleText, &Names);
  ASSERT_TRUE(Plan.hasValue()) << Plan.message();
  EXPECT_EQ(Names.size(), 2u);
  EXPECT_EQ(Plan->Replans, R.Replans);
  EXPECT_EQ(Plan->PlannedEnergyJoules, R.PredictedEnergyJoules);
}

TEST(GraphJob, ResubmissionHitsTheCacheByGraphFingerprint) {
  SchedulerService Service;
  JobResult First = Service.submit(graphJob("cold", "pair2-early")).get();
  ASSERT_EQ(First.Status, JobStatus::Done) << First.Reason;
  JobResult Second = Service.submit(graphJob("warm", "pair2-early")).get();
  ASSERT_EQ(Second.Status, JobStatus::Done) << Second.Reason;
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.Fingerprint, First.Fingerprint);
  EXPECT_EQ(Second.ScheduleText, First.ScheduleText);
  EXPECT_EQ(Second.Replans, First.Replans);
  EXPECT_EQ(Second.StaticEnergyJoules, First.StaticEnergyJoules);
  EXPECT_EQ(Service.cacheStats().Hits, 1);

  // Replan on/off is a different instance, not a cache collision.
  JobResult Static =
      Service.submit(graphJob("static", "pair2-early", false)).get();
  ASSERT_EQ(Static.Status, JobStatus::Done) << Static.Reason;
  EXPECT_FALSE(Static.CacheHit);
  EXPECT_NE(Static.Fingerprint, First.Fingerprint);
  EXPECT_EQ(Static.Replans, 0);
}

TEST(GraphJob, WorkerCountDoesNotMoveTheBytes) {
  // Satellite 3 at the service layer: the same graph solved by a
  // 1-worker and a 4-worker service (MILP threads pinned per job)
  // must emit identical plans.
  ServiceOptions One;
  One.NumWorkers = 1;
  ServiceOptions Four;
  Four.NumWorkers = 4;
  SchedulerService A(One), B(Four);
  JobResult RA = A.submit(graphJob("a", "diamond4-early")).get();
  JobResult RB = B.submit(graphJob("b", "diamond4-early")).get();
  ASSERT_EQ(RA.Status, JobStatus::Done) << RA.Reason;
  ASSERT_EQ(RB.Status, JobStatus::Done) << RB.Reason;
  EXPECT_EQ(RA.Fingerprint, RB.Fingerprint);
  EXPECT_EQ(RA.ScheduleText, RB.ScheduleText);
}

TEST(GraphJob, StrictVerifyPassesCleanGraphSolves) {
  ServiceOptions O;
  O.Verify = VerifyMode::Strict;
  SchedulerService Service(O);
  // chain4-late exercises the forced-accept branch; the checker must
  // still find the executed plan legal.
  for (const char *Name : {"pair2-early", "chain4-late"}) {
    JobResult R = Service.submit(graphJob(Name, Name)).get();
    EXPECT_EQ(R.Status, JobStatus::Done) << Name << ": " << R.Reason;
  }
}

TEST(GraphJob, RejectsMalformedGraphRequests) {
  SchedulerService Service;
  { // both a workload and a graph: ambiguous kind
    JobRequest R = graphJob("both", "pair2-early");
    R.Workload = "gsm";
    JobResult Res = Service.submit(R).get();
    EXPECT_EQ(Res.Status, JobStatus::Failed);
    EXPECT_FALSE(Res.Reason.empty());
  }
  { // structurally invalid graph
    JobRequest R = graphJob("cyclic", "pair2-early");
    auto G = std::make_shared<taskgraph::TaskGraph>(*R.Graph);
    G->Edges.push_back({1, 0});
    R.Graph = G;
    JobResult Res = Service.submit(R).get();
    EXPECT_EQ(Res.Status, JobStatus::Failed);
  }
  { // unknown workload inside a node
    JobRequest R = graphJob("badwl", "pair2-early");
    auto G = std::make_shared<taskgraph::TaskGraph>(*R.Graph);
    G->Nodes[0].Workload = "no-such-workload";
    R.Graph = G;
    JobResult Res = Service.submit(R).get();
    EXPECT_EQ(Res.Status, JobStatus::Failed);
  }
}

TEST(GraphJob, ImpossibleDeadlineIsInfeasibleNotFailed) {
  JobRequest R = graphJob("tight", "pair2-early");
  auto G = std::make_shared<taskgraph::TaskGraph>(*R.Graph);
  G->DeadlineSeconds = 1e-9; // below any critical path
  R.Graph = G;
  SchedulerService Service;
  JobResult Res = Service.submit(R).get();
  EXPECT_EQ(Res.Status, JobStatus::Infeasible) << Res.Reason;
}

TEST(GraphJob, SingleProgramResultsKeepTheSentinel) {
  // Single-program jobs must be bit-for-bit unaffected by the graph
  // extension: Replans stays -1 and the text stays a cdvs-schedule.
  SchedulerService Service;
  JobRequest R;
  R.Id = "plain";
  R.Workload = "gsm";
  JobResult Res = Service.submit(R).get();
  ASSERT_EQ(Res.Status, JobStatus::Done) << Res.Reason;
  EXPECT_EQ(Res.Replans, -1);
  EXPECT_EQ(Res.ScheduleText.rfind("cdvs-schedule v1", 0), 0u);
}

} // namespace
