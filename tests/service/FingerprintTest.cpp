//===- tests/service/FingerprintTest.cpp - instance content address -------===//
//
// The fingerprint is the cache key for solved MILP instances, so two
// properties carry all the weight: *stability* (equal instances hash
// equal, across category order, voltage-level order, and independent
// profile collections) and *sensitivity* (any input that changes the
// MILP must change the hash).
//
//===----------------------------------------------------------------------===//

#include "milp/Fingerprint.h"

#include "power/TransitionModel.h"
#include "profile/Profile.h"
#include "sim/Simulator.h"
#include "support/Hash.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>

using namespace cdvs;

namespace {

struct Fixture {
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  std::vector<CategoryProfile> Cats;

  Fixture() {
    Workload W = workloadByName("gsm");
    for (const WorkloadInput &In : W.Inputs) {
      Simulator Sim(*W.Fn);
      In.Setup(Sim);
      Cats.push_back({collectProfile(Sim, Modes), 0.0});
    }
    assert(Cats.size() >= 2 && "need two categories for order tests");
    Cats.resize(2);
    Cats[0].Probability = 0.25;
    Cats[1].Probability = 0.75;
  }

  std::string fp(const std::vector<CategoryProfile> &Categories,
                 const std::vector<double> &Deadlines,
                 double Filter = 0.02, int Initial = 2) const {
    return fingerprintDvsInstance(Categories, Deadlines, Modes, Reg,
                                  Filter, Initial);
  }
};

TEST(Fingerprint, IsDeterministic) {
  Fixture F;
  std::string A = F.fp(F.Cats, {0.01, 0.02});
  EXPECT_EQ(A, F.fp(F.Cats, {0.01, 0.02}));
  EXPECT_EQ(A.size(), 32u);
  EXPECT_EQ(A.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Fingerprint, CategoryOrderDoesNotMatter) {
  // The weighted MILP objective is a sum over categories, so category
  // order is presentation, not content.
  Fixture F;
  std::vector<CategoryProfile> Rev = {F.Cats[1], F.Cats[0]};
  EXPECT_EQ(F.fp(F.Cats, {0.01, 0.02}), F.fp(Rev, {0.02, 0.01}));
}

TEST(Fingerprint, DeadlinePairingSurvivesReordering) {
  // Per-category deadlines travel with their category when the list is
  // permuted; swapping deadlines *without* swapping categories is a
  // different instance.
  Fixture F;
  EXPECT_NE(F.fp(F.Cats, {0.01, 0.02}), F.fp(F.Cats, {0.02, 0.01}));
}

TEST(Fingerprint, ModeOrderIsCanonicalized) {
  // The same physical mode set listed in any order is the same machine.
  Fixture F;
  std::vector<VoltageLevel> Levels;
  for (size_t M = 0; M < F.Modes.size(); ++M)
    Levels.push_back(F.Modes.level(M));
  std::reverse(Levels.begin(), Levels.end());
  // ModeTable itself canonicalizes (sorts by frequency at construction),
  // so a shuffled level list is the same machine — and must fingerprint
  // identically.
  ModeTable Shuffled(Levels);
  std::string A = fingerprintDvsInstance(F.Cats, {0.01, 0.02}, F.Modes,
                                         F.Reg, 0.02, 2);
  EXPECT_EQ(A, fingerprintDvsInstance(F.Cats, {0.01, 0.02}, Shuffled,
                                      F.Reg, 0.02, 2));
}

TEST(Fingerprint, SensitiveToEveryKnob) {
  Fixture F;
  std::string Base = F.fp(F.Cats, {0.01, 0.02});
  // Deadline, filter threshold, initial mode, regulator, probability.
  EXPECT_NE(Base, F.fp(F.Cats, {0.010001, 0.02}));
  EXPECT_NE(Base, F.fp(F.Cats, {0.01, 0.02}, 0.05));
  EXPECT_NE(Base, F.fp(F.Cats, {0.01, 0.02}, 0.02, 0));
  TransitionModel OtherReg(2e-5, 0.9, 1.0);
  EXPECT_NE(Base, fingerprintDvsInstance(F.Cats, {0.01, 0.02}, F.Modes,
                                         OtherReg, 0.02, 2));
  std::vector<CategoryProfile> Reweighted = F.Cats;
  Reweighted[0].Probability = 0.5;
  Reweighted[1].Probability = 0.5;
  EXPECT_NE(Base, F.fp(Reweighted, {0.01, 0.02}));
  // Dropping a category changes the instance.
  EXPECT_NE(Base, F.fp({F.Cats[0]}, {0.01}));
}

TEST(Fingerprint, SharedDeadlineBroadcasts) {
  // One deadline for N categories means the same instance as that
  // deadline repeated per category.
  Fixture F;
  EXPECT_EQ(F.fp(F.Cats, {0.015}), F.fp(F.Cats, {0.015, 0.015}));
}

TEST(Fingerprint, StableAcrossIndependentProfileCollections) {
  // Re-simulating the same deterministic workload must reproduce the
  // profile bit for bit — otherwise the cache could never hit across
  // service restarts.
  Fixture F;
  Workload W = workloadByName("gsm");
  std::vector<CategoryProfile> Fresh;
  for (const WorkloadInput &In : W.Inputs) {
    Simulator Sim(*W.Fn);
    In.Setup(Sim);
    Fresh.push_back({collectProfile(Sim, F.Modes), 0.0});
  }
  Fresh.resize(2);
  Fresh[0].Probability = 0.25;
  Fresh[1].Probability = 0.75;
  EXPECT_EQ(F.fp(F.Cats, {0.01, 0.02}), F.fp(Fresh, {0.01, 0.02}));
}

TEST(Fingerprint, ProfileDigestSeparatesInputs) {
  Fixture F;
  EXPECT_NE(fingerprintProfile(F.Cats[0].Data),
            fingerprintProfile(F.Cats[1].Data));
  EXPECT_EQ(fingerprintProfile(F.Cats[0].Data),
            fingerprintProfile(F.Cats[0].Data));
}

//===----------------------------------------------------------------------===//
// HashBuilder
//===----------------------------------------------------------------------===//

TEST(HashBuilder, CanonicalizesTrickyDoubles) {
  auto H = [](double V) {
    HashBuilder B;
    B.add(V);
    return B.digest();
  };
  EXPECT_EQ(H(0.0), H(-0.0));
  EXPECT_EQ(H(std::nan("1")), H(std::nan("2")));
  EXPECT_NE(H(1.0), H(2.0));
}

TEST(HashBuilder, LengthPrefixPreventsConcatenationCollisions) {
  HashBuilder A, B;
  A.add(std::string("ab"));
  A.add(std::string("c"));
  B.add(std::string("a"));
  B.add(std::string("bc"));
  EXPECT_NE(A.digest(), B.digest());
}

//===----------------------------------------------------------------------===//
// Fingerprint128
//===----------------------------------------------------------------------===//

TEST(Fingerprint128, HexRoundTrip) {
  Fingerprint128 F;
  F.Hi = 0x0123456789abcdefULL;
  F.Lo = 0xfedcba9876543210ULL;
  std::string Hex = F.toHex();
  EXPECT_EQ(Hex.size(), 32u);
  ErrorOr<Fingerprint128> Back = Fingerprint128::parseHex(Hex);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(*Back, F);
  // Case-insensitive on the way in, lower-case on the way out.
  std::string Upper = Hex;
  for (char &C : Upper)
    C = static_cast<char>(std::toupper(C));
  ErrorOr<Fingerprint128> FromUpper = Fingerprint128::parseHex(Upper);
  ASSERT_TRUE(static_cast<bool>(FromUpper));
  EXPECT_EQ(FromUpper->toHex(), Hex);
}

TEST(Fingerprint128, MatchesHashBuilderDigestRendering) {
  // toHex must render digestRaw's halves exactly as HashBuilder::digest
  // renders them — the wire carries the hex form, the ring the halves.
  HashBuilder A;
  A.add(std::string("some instance content"));
  HashBuilder B;
  B.add(std::string("some instance content"));
  Fingerprint128 F;
  B.digestRaw(F.Hi, F.Lo);
  EXPECT_EQ(F.toHex(), A.digest());
}

TEST(Fingerprint128, ParseHexRejectsMalformedInput) {
  EXPECT_FALSE(static_cast<bool>(Fingerprint128::parseHex("")));
  EXPECT_FALSE(
      static_cast<bool>(Fingerprint128::parseHex(std::string(31, 'a'))));
  EXPECT_FALSE(
      static_cast<bool>(Fingerprint128::parseHex(std::string(33, 'a'))));
  std::string Bad(32, 'a');
  Bad[7] = 'g';
  EXPECT_FALSE(static_cast<bool>(Fingerprint128::parseHex(Bad)));
}

} // namespace
