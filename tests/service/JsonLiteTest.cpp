//===- tests/service/JsonLiteTest.cpp - request-line JSON parser ----------===//

#include "service/JsonLite.h"

#include <gtest/gtest.h>

using namespace cdvs;

namespace {

TEST(JsonLite, ParsesARequestLine) {
  ErrorOr<JsonValue> V = parseJson(
      R"({"id":"j1","workload":"gsm","tightness":0.5,"levels":8,)"
      R"("categories":[{"input":"speech1","weight":2}],"quiet":true,)"
      R"("note":null})");
  ASSERT_TRUE(V.hasValue()) << V.message();
  ASSERT_TRUE(V->isObject());
  EXPECT_EQ(V->find("id")->Str, "j1");
  EXPECT_DOUBLE_EQ(V->find("tightness")->Num, 0.5);
  EXPECT_DOUBLE_EQ(V->find("levels")->Num, 8.0);
  ASSERT_TRUE(V->find("categories")->isArray());
  const JsonValue &Cat = V->find("categories")->Arr[0];
  EXPECT_EQ(Cat.find("input")->Str, "speech1");
  EXPECT_DOUBLE_EQ(Cat.find("weight")->Num, 2.0);
  EXPECT_TRUE(V->find("quiet")->isBool());
  EXPECT_TRUE(V->find("quiet")->B);
  EXPECT_TRUE(V->find("note")->isNull());
  EXPECT_EQ(V->find("absent"), nullptr);
}

TEST(JsonLite, ParsesNumbersAndNesting) {
  ErrorOr<JsonValue> V =
      parseJson(R"([-1, 2.5e-3, 0, [true, false], {"k": [1]}])");
  ASSERT_TRUE(V.hasValue()) << V.message();
  ASSERT_TRUE(V->isArray());
  EXPECT_DOUBLE_EQ(V->Arr[0].Num, -1.0);
  EXPECT_DOUBLE_EQ(V->Arr[1].Num, 2.5e-3);
  EXPECT_DOUBLE_EQ(V->Arr[4].find("k")->Arr[0].Num, 1.0);
}

TEST(JsonLite, DecodesEscapes) {
  ErrorOr<JsonValue> V = parseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(V.hasValue()) << V.message();
  EXPECT_EQ(V->Str, "a\"b\\c\n\tA");
}

TEST(JsonLite, RejectsMalformedDocuments) {
  for (const char *Bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1}extra", "nul"}) {
    EXPECT_FALSE(parseJson(Bad).hasValue()) << "accepted: " << Bad;
  }
}

TEST(JsonLite, RejectsDuplicateObjectKeys) {
  // Duplicate keys would make one of the two values win silently —
  // reject them so a malformed network payload fails loudly instead.
  ErrorOr<JsonValue> V = parseJson(R"({"id":"a","id":"b"})");
  ASSERT_FALSE(V.hasValue());
  EXPECT_NE(V.message().find("duplicate object key 'id'"),
            std::string::npos)
      << V.message();

  // Nested objects are checked too; sibling objects may share names.
  EXPECT_FALSE(
      parseJson(R"({"o":{"k":1,"k":2}})").hasValue());
  EXPECT_TRUE(
      parseJson(R"([{"k":1},{"k":2}])").hasValue());
}

TEST(JsonLite, DecodesUnicodeEscapes) {
  // BMP code points expand to UTF-8.
  ErrorOr<JsonValue> V = parseJson(R"("Aé中")");
  ASSERT_TRUE(V.hasValue()) << V.message();
  EXPECT_EQ(V->Str, "A\xc3\xa9\xe4\xb8\xad");

  // A surrogate pair combines into one 4-byte code point (U+1F600).
  ErrorOr<JsonValue> P = parseJson(R"("😀")");
  ASSERT_TRUE(P.hasValue()) << P.message();
  EXPECT_EQ(P->Str, "\xf0\x9f\x98\x80");
}

TEST(JsonLite, RejectsBrokenUnicodeEscapes) {
  struct Case {
    const char *Doc;
    const char *Expect;
  } Cases[] = {
      {R"("\u12")", "unterminated \\u escape"},
      {R"("\u12zz")", "bad \\u escape digit"},
      {R"("\ud800")", "unpaired high surrogate"},
      {R"("\ud800x")", "unpaired high surrogate"},
      {R"("\ud800\n")", "unpaired high surrogate"},
      {R"("\ud800\u0041")", "bad low surrogate"},
      {R"("\ude00")", "unpaired low surrogate"},
  };
  for (const Case &C : Cases) {
    ErrorOr<JsonValue> V = parseJson(C.Doc);
    ASSERT_FALSE(V.hasValue()) << "accepted: " << C.Doc;
    EXPECT_NE(V.message().find(C.Expect), std::string::npos)
        << C.Doc << " -> " << V.message();
  }
}

TEST(JsonLite, EscapeRoundTripsThroughParse) {
  std::string Nasty = "quote\" slash\\ newline\n tab\t bell\x07";
  std::string Doc = "\"";
  Doc += jsonEscape(Nasty);
  Doc += '"';
  ErrorOr<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.hasValue()) << V.message();
  EXPECT_EQ(V->Str, Nasty);
}

} // namespace
