//===- tests/service/ServiceTest.cpp - scheduling service end to end ------===//
//
// The SchedulerService through its public surface: jobs in, schedules
// out, plus the admission-control, priority, caching, and lifecycle
// behavior the tentpole promises. gsm/adpcm keep the pipeline runs
// cheap; pause()/resume() and DequeueSeq make the queue-order tests
// deterministic.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "dvs/ScheduleIO.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>

using namespace cdvs;

namespace {

JobRequest gsmJob(const std::string &Id, double Tightness = 0.5) {
  JobRequest R;
  R.Id = Id;
  R.Workload = "gsm";
  R.DeadlineTightness = Tightness;
  return R;
}

TEST(Service, SolvesAJobEndToEnd) {
  SchedulerService Service;
  JobResult R = Service.submit(gsmJob("one")).get();
  ASSERT_EQ(R.Status, JobStatus::Done) << R.Reason;
  EXPECT_EQ(R.Id, "one");
  EXPECT_EQ(R.Reason, "");
  EXPECT_EQ(R.Fingerprint.size(), 32u);
  EXPECT_FALSE(R.CacheHit);
  EXPECT_GT(R.DeadlineSeconds, 0.0);
  EXPECT_GT(R.PredictedEnergyJoules, 0.0);
  // The analytic bound is a true lower bound on the MILP optimum.
  EXPECT_LE(R.LowerBoundJoules, R.PredictedEnergyJoules);
  EXPECT_GT(R.LowerBoundJoules, 0.0);

  // The schedule text parses and re-serializes byte-identically.
  ErrorOr<ModeAssignment> A = readSchedule(R.ScheduleText, 3);
  ASSERT_TRUE(A.hasValue()) << A.message();
  EXPECT_EQ(writeSchedule(*A), R.ScheduleText);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, 1);
  EXPECT_EQ(S.Completed, 1);
  EXPECT_EQ(S.Rejected, 0);
}

TEST(Service, ResubmissionHitsTheCacheByteIdentically) {
  SchedulerService Service;
  JobResult First = Service.submit(gsmJob("cold")).get();
  ASSERT_EQ(First.Status, JobStatus::Done) << First.Reason;
  JobResult Second = Service.submit(gsmJob("warm")).get();
  ASSERT_EQ(Second.Status, JobStatus::Done) << Second.Reason;
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.Fingerprint, First.Fingerprint);
  EXPECT_EQ(Second.ScheduleText, First.ScheduleText);
  EXPECT_EQ(Second.PredictedEnergyJoules, First.PredictedEnergyJoules);
  EXPECT_EQ(Service.cacheStats().Hits, 1);
  // Profiles were memoized too: one collection served both jobs.
  EXPECT_EQ(Service.stats().ProfileCacheMisses, 1);
  EXPECT_EQ(Service.stats().ProfileCacheHits, 1);
}

TEST(Service, DifferentKnobsMissTheCache) {
  SchedulerService Service;
  ASSERT_EQ(Service.submit(gsmJob("a", 0.4)).get().Status,
            JobStatus::Done);
  JobResult B = Service.submit(gsmJob("b", 0.6)).get();
  ASSERT_EQ(B.Status, JobStatus::Done);
  EXPECT_FALSE(B.CacheHit);
  EXPECT_EQ(Service.cacheStats().Misses, 2);
}

TEST(Service, RejectsWhenTheQueueIsFull) {
  // Paused workers + capacity 2: the third submission must be bounced
  // immediately with an explanation, not queued without bound.
  ServiceOptions O;
  O.NumWorkers = 1;
  O.QueueCapacity = 2;
  O.StartPaused = true;
  SchedulerService Service(O);
  std::future<JobResult> A = Service.submit(gsmJob("a"));
  std::future<JobResult> B = Service.submit(gsmJob("b"));
  std::future<JobResult> Rejected = Service.submit(gsmJob("c"));
  // The rejection is synchronous: the future is already resolved.
  ASSERT_EQ(Rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  JobResult R = Rejected.get();
  EXPECT_EQ(R.Status, JobStatus::Rejected);
  EXPECT_NE(R.Reason.find("queue full"), std::string::npos);
  EXPECT_NE(R.Reason.find("capacity 2"), std::string::npos);

  // Draining the queue re-opens admission.
  Service.resume();
  EXPECT_EQ(A.get().Status, JobStatus::Done);
  EXPECT_EQ(B.get().Status, JobStatus::Done);
  EXPECT_EQ(Service.submit(gsmJob("d")).get().Status, JobStatus::Done);
  EXPECT_EQ(Service.stats().Rejected, 1);
}

TEST(Service, DequeuesByDeadlineUrgency) {
  // Four jobs queued while paused, one worker: pickup order must follow
  // deadline tightness (most stringent first), not submission order.
  ServiceOptions O;
  O.NumWorkers = 1;
  O.StartPaused = true;
  SchedulerService Service(O);
  std::future<JobResult> Lax = Service.submit(gsmJob("lax", 0.9));
  std::future<JobResult> Mid = Service.submit(gsmJob("mid", 0.5));
  std::future<JobResult> Tight = Service.submit(gsmJob("tight", 0.1));
  std::future<JobResult> Mid2 = Service.submit(gsmJob("mid2", 0.5));
  Service.resume();
  JobResult RL = Lax.get(), RM = Mid.get(), RT = Tight.get(),
            RM2 = Mid2.get();
  EXPECT_LT(RT.DequeueSeq, RM.DequeueSeq);
  EXPECT_LT(RM.DequeueSeq, RL.DequeueSeq);
  // FIFO within a tie.
  EXPECT_LT(RM.DequeueSeq, RM2.DequeueSeq);
  EXPECT_LT(RM2.DequeueSeq, RL.DequeueSeq);
}

TEST(Service, AbsoluteDeadlinesOutrankTightness) {
  // An absolute deadline in seconds is far smaller than any tightness
  // fraction >= it competes with... so express both jobs in absolute
  // terms to compare like with like.
  ServiceOptions O;
  O.NumWorkers = 1;
  O.StartPaused = true;
  SchedulerService Service(O);
  JobRequest Loose = gsmJob("loose");
  Loose.DeadlineSeconds = 0.5; // half a second: very lax
  JobRequest Tight = gsmJob("tight");
  Tight.DeadlineSeconds = 0.02;
  std::future<JobResult> FL = Service.submit(Loose);
  std::future<JobResult> FT = Service.submit(Tight);
  Service.resume();
  EXPECT_LT(FT.get().DequeueSeq, FL.get().DequeueSeq);
}

TEST(Service, ReportsInfeasibleDeadlines) {
  SchedulerService Service;
  JobRequest R = gsmJob("impossible");
  R.DeadlineSeconds = 1e-9; // below the fastest single-mode time
  JobResult Res = Service.submit(R).get();
  EXPECT_EQ(Res.Status, JobStatus::Infeasible);
  EXPECT_NE(Res.Reason.find("deadline"), std::string::npos);
  EXPECT_EQ(Service.stats().Infeasible, 1);
}

TEST(Service, FailsUnknownWorkloadAndInput) {
  SchedulerService Service;
  JobRequest Bad = gsmJob("bad");
  Bad.Workload = "quake3";
  JobResult R = Service.submit(Bad).get();
  EXPECT_EQ(R.Status, JobStatus::Failed);
  EXPECT_NE(R.Reason.find("quake3"), std::string::npos);
  EXPECT_NE(R.Reason.find("gsm"), std::string::npos) // names the options
      << R.Reason;

  JobRequest BadInput = gsmJob("badinput");
  BadInput.Categories.push_back({"no-such-input", 1.0});
  JobResult R2 = Service.submit(BadInput).get();
  EXPECT_EQ(R2.Status, JobStatus::Failed);
  EXPECT_NE(R2.Reason.find("no-such-input"), std::string::npos);
}

TEST(Service, ValidatesKnobsBeforeProfiling) {
  SchedulerService Service;
  JobRequest R = gsmJob("badfilter");
  R.FilterThreshold = 1.5;
  EXPECT_EQ(Service.submit(R).get().Status, JobStatus::Failed);

  JobRequest R2 = gsmJob("badlevels");
  R2.NumLevels = 1;
  EXPECT_EQ(Service.submit(R2).get().Status, JobStatus::Failed);

  JobRequest R3 = gsmJob("badmode");
  R3.InitialMode = 7; // xscale3 has modes 0..2
  EXPECT_EQ(Service.submit(R3).get().Status, JobStatus::Failed);

  JobRequest R4 = gsmJob("badweight");
  R4.Categories.push_back({"speech1", 0.0});
  EXPECT_EQ(Service.submit(R4).get().Status, JobStatus::Failed);
}

TEST(Service, WeightedCategoriesSolveAndReport) {
  SchedulerService Service;
  JobRequest R;
  R.Id = "multi";
  R.Workload = "adpcm";
  Workload W = workloadByName("adpcm");
  ASSERT_GE(W.Inputs.size(), 2u);
  R.Categories.push_back({W.Inputs[0].Name, 3.0});
  R.Categories.push_back({W.Inputs[1].Name, 1.0});
  JobResult Res = Service.submit(R).get();
  ASSERT_EQ(Res.Status, JobStatus::Done) << Res.Reason;
  EXPECT_LE(Res.LowerBoundJoules, Res.PredictedEnergyJoules);
  // Two categories, one workload: two profile collections.
  EXPECT_EQ(Service.stats().ProfileCacheMisses, 2);
}

TEST(Service, RunBatchPreservesRequestOrder) {
  SchedulerService Service;
  std::vector<JobRequest> Batch = {gsmJob("x", 0.3), gsmJob("y", 0.6),
                                   gsmJob("z", 0.9)};
  std::vector<JobResult> Results = Service.runBatch(Batch);
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_EQ(Results[0].Id, "x");
  EXPECT_EQ(Results[1].Id, "y");
  EXPECT_EQ(Results[2].Id, "z");
  for (const JobResult &R : Results)
    EXPECT_EQ(R.Status, JobStatus::Done) << R.Id << ": " << R.Reason;
}

TEST(Service, ReportsStageLatenciesAndPoolStats) {
  SchedulerService Service;
  JobResult Cold = Service.submit(gsmJob("cold")).get();
  ASSERT_EQ(Cold.Status, JobStatus::Done) << Cold.Reason;
  // A cold job exercises every stage; each must report nonzero wall
  // time, and the stages can only account for part of the total.
  EXPECT_GT(Cold.ProfileSeconds, 0.0);
  EXPECT_GT(Cold.BoundSeconds, 0.0);
  EXPECT_GT(Cold.SolveSeconds, 0.0);
  EXPECT_GT(Cold.SerializeSeconds, 0.0);
  EXPECT_GE(Cold.QueueSeconds, 0.0);
  EXPECT_LE(Cold.SolveSeconds + Cold.SerializeSeconds,
            Cold.TotalSeconds);

  // A warm job reuses the cached solve but reports the ORIGINAL solve
  // and serialize cost (the cache's provenance contract).
  JobResult Warm = Service.submit(gsmJob("warm")).get();
  ASSERT_EQ(Warm.Status, JobStatus::Done) << Warm.Reason;
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.SolveSeconds, Cold.SolveSeconds);
  EXPECT_EQ(Warm.SerializeSeconds, Cold.SerializeSeconds);

  PoolStats PS = Service.poolStats();
  // The workers are long-lived pool tasks: one submission per worker.
  EXPECT_EQ(PS.TasksSubmitted, Service.poolStats().TasksSubmitted);
  EXPECT_GE(PS.TasksSubmitted, 1);
}

TEST(Service, TracksPeakQueueDepth) {
  ServiceOptions O;
  O.NumWorkers = 1;
  O.StartPaused = true;
  SchedulerService Service(O);
  std::vector<std::future<JobResult>> Fs;
  for (int I = 0; I < 3; ++I)
    Fs.push_back(Service.submit(gsmJob("q" + std::to_string(I))));
  EXPECT_EQ(Service.stats().PeakQueueDepth, 3u);
  Service.resume();
  for (auto &F : Fs)
    EXPECT_EQ(F.get().Status, JobStatus::Done);
  // Peak is monotone: draining must not lower it.
  EXPECT_EQ(Service.stats().PeakQueueDepth, 3u);
}

TEST(Service, VerifyModesParseAndRoundTrip) {
  VerifyMode M;
  EXPECT_TRUE(parseVerifyMode("off", M));
  EXPECT_EQ(M, VerifyMode::Off);
  EXPECT_TRUE(parseVerifyMode("warn", M));
  EXPECT_EQ(M, VerifyMode::Warn);
  EXPECT_TRUE(parseVerifyMode("strict", M));
  EXPECT_EQ(M, VerifyMode::Strict);
  EXPECT_FALSE(parseVerifyMode("paranoid", M));
  EXPECT_STREQ(verifyModeName(VerifyMode::Warn), "warn");
  EXPECT_STREQ(verifyModeName(VerifyMode::Strict), "strict");
}

TEST(Service, VerifyOffLeavesResultsUnaudited) {
  SchedulerService Service; // Verify defaults to Off
  JobResult R = Service.submit(gsmJob("plain")).get();
  ASSERT_EQ(R.Status, JobStatus::Done) << R.Reason;
  EXPECT_EQ(R.VerifyErrors, -1);
  EXPECT_EQ(R.VerifyDetail, "");
  EXPECT_EQ(Service.stats().VerifyFailures, 0);
}

TEST(Service, StrictVerifyPassesCleanSolvesAndCachesTheVerdict) {
  ServiceOptions O;
  O.Verify = VerifyMode::Strict;
  SchedulerService Service(O);
  JobResult Cold = Service.submit(gsmJob("cold")).get();
  ASSERT_EQ(Cold.Status, JobStatus::Done) << Cold.Reason;
  EXPECT_EQ(Cold.VerifyErrors, 0) << Cold.VerifyDetail;
  EXPECT_GT(Cold.VerifySeconds, 0.0);

  // A cache hit reuses the stored verdict instead of re-auditing.
  JobResult Warm = Service.submit(gsmJob("warm")).get();
  ASSERT_EQ(Warm.Status, JobStatus::Done) << Warm.Reason;
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.VerifyErrors, 0);
  EXPECT_EQ(Warm.VerifySeconds, Cold.VerifySeconds);
  EXPECT_EQ(Service.stats().VerifyFailures, 0);
}

TEST(Service, WarnVerifyAuditsABatch) {
  // bench_service's shape in miniature: a mixed batch under --verify=warn
  // completes with every solve audited clean.
  ServiceOptions O;
  O.Verify = VerifyMode::Warn;
  SchedulerService Service(O);
  std::vector<JobRequest> Batch = {gsmJob("g1", 0.3), gsmJob("g2", 0.7)};
  JobRequest A;
  A.Id = "a1";
  A.Workload = "adpcm";
  A.DeadlineTightness = 0.5;
  Batch.push_back(A);
  for (const JobResult &R : Service.runBatch(Batch)) {
    ASSERT_EQ(R.Status, JobStatus::Done) << R.Id << ": " << R.Reason;
    EXPECT_EQ(R.VerifyErrors, 0) << R.Id << ": " << R.VerifyDetail;
  }
  EXPECT_EQ(Service.stats().VerifyFailures, 0);
}

TEST(Service, ShutdownDrainsThenRejects) {
  ServiceOptions O;
  O.NumWorkers = 2;
  SchedulerService Service(O);
  std::vector<std::future<JobResult>> Accepted;
  for (int I = 0; I < 4; ++I) {
    std::string Name = "j";
    Name += std::to_string(I);
    Accepted.push_back(Service.submit(gsmJob(Name)));
  }
  Service.shutdown();
  // Every job accepted before shutdown completed.
  for (auto &F : Accepted)
    EXPECT_EQ(F.get().Status, JobStatus::Done);
  // New work is refused, and a second shutdown is a no-op.
  JobResult Late = Service.submit(gsmJob("late")).get();
  EXPECT_EQ(Late.Status, JobStatus::Rejected);
  EXPECT_NE(Late.Reason.find("shutting down"), std::string::npos);
  Service.shutdown();
}

TEST(Service, ShutdownWithUncollectedFuturesNeitherLeaksNorDeadlocks) {
  // A caller that submits and walks away (drops or never gets() its
  // futures) must not wedge shutdown: the promises are fulfilled into
  // abandoned shared states and freed. TSan/ASan runs make the "no
  // leak, no deadlock" claim real.
  ServiceOptions O;
  O.NumWorkers = 2;
  O.StartPaused = true; // everything still queued when shutdown starts
  auto Service = std::make_unique<SchedulerService>(O);
  for (int I = 0; I < 6; ++I)
    (void)Service->submit(gsmJob("orphan" + std::to_string(I)));
  ASSERT_EQ(Service->stats().Submitted, 6);
  Service->resume();
  Service->shutdown(); // drains all six with nobody waiting
  EXPECT_EQ(Service->stats().Completed, 6);
  Service.reset(); // destructor after explicit shutdown is a no-op
}

TEST(Service, SubmitAsyncRunsTheCallbackExactlyOnce) {
  SchedulerService Service;
  std::promise<JobResult> Done;
  bool Admitted = Service.submitAsync(gsmJob("cb"), [&](JobResult R) {
    Done.set_value(std::move(R)); // a second call would throw here
  });
  EXPECT_TRUE(Admitted);
  JobResult R = Done.get_future().get();
  EXPECT_EQ(R.Status, JobStatus::Done) << R.Reason;
  EXPECT_EQ(R.Id, "cb");
}

TEST(Service, SubmitAsyncRejectionRunsInline) {
  ServiceOptions O;
  O.NumWorkers = 1;
  O.QueueCapacity = 1;
  O.StartPaused = true;
  SchedulerService Service(O);
  ASSERT_TRUE(Service.submitAsync(gsmJob("fills"), [](JobResult) {}));

  // The queue is full: the callback fires before submitAsync returns,
  // on this thread, with the rejection.
  bool SawInline = false;
  bool Admitted = Service.submitAsync(gsmJob("over"), [&](JobResult R) {
    SawInline = true;
    EXPECT_EQ(R.Status, JobStatus::Rejected);
    EXPECT_EQ(R.Id, "over");
    EXPECT_NE(R.Reason.find("queue full"), std::string::npos) << R.Reason;
  });
  EXPECT_FALSE(Admitted);
  EXPECT_TRUE(SawInline);
  Service.resume();
}

TEST(Service, ShutdownFiresEveryAdmittedAsyncCallback) {
  ServiceOptions O;
  O.NumWorkers = 2;
  O.StartPaused = true;
  SchedulerService Service(O);
  std::atomic<int> Fired{0};
  const int N = 5;
  for (int I = 0; I < N; ++I)
    ASSERT_TRUE(Service.submitAsync(gsmJob("d" + std::to_string(I)),
                                    [&](JobResult R) {
                                      EXPECT_EQ(R.Status, JobStatus::Done);
                                      ++Fired;
                                    }));
  Service.resume();
  Service.shutdown(); // returns only after every callback ran
  EXPECT_EQ(Fired.load(), N);
}

} // namespace
