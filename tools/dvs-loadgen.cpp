//===- tools/dvs-loadgen.cpp - Open-loop load generator for dvs-server -----===//
//
// Drives a running dvs-server with an open-loop request schedule: sends
// at a fixed aggregate rate across N connections regardless of how fast
// responses come back (so server-side queueing shows up as latency, not
// as a slowed-down generator), pipelining on each connection and
// matching responses by correlation id. Reports throughput and latency
// quantiles as one JSON record (default BENCH_net.json).
//
// The default workload is one request repeated, which after the first
// solve is a pure result-cache hit — the sustained-throughput number
// measures the wire + event loop + cache path, not the MILP. Pass
// --distinct=K to spread requests over K deadline variants instead.
// Repeated --graph=NAME options switch to graph mode: requests become
// task-graph jobs (GraphRequest frames) cycling over the named canned
// instances (taskgraph/Generator.h), and returned plans land under
// --schedules=DIR as <fingerprint>.taskplan.
//
// --schedules=DIR writes each distinct returned schedule to
// DIR/<fingerprint>.cdvs (the same canonical form dvsd --schedules
// writes), which is what the byte-identity gate diffs.
//
// --churn=N and --slowloris=N add adversarial side traffic (connect/
// drop storms, byte-dribbling partial frames) while the measured load
// runs, for overload probes: the healthy connections' quantiles tell
// whether the server sheds attackers without stalling everyone else.
// Attack-thread outcomes are reported under "attack" but never fail
// the exit code — being rejected is the expected result.
//
// --trace-sample-pct=N stamps every Nth-percentile request with a
// fresh 128-bit trace id over the cdvs-wire extension block, so the
// server (and router) rings record attributable spans that dvs-stat
// --scrape can assemble into one cross-process timeline. The "trace"
// block in the JSON output compares end-to-end latency against the
// backend's own TotalSeconds accounting — the gap is pure wire +
// event-loop + router overhead.
//
//===----------------------------------------------------------------------===//

#include "dvs/ScheduleIO.h"
#include "net/Client.h"
#include "obs/Trace.h"
#include "service/JobIO.h"
#include "support/ArgParse.h"
#include "support/Clock.h"
#include "taskgraph/Generator.h"
#include "taskgraph/PlanIO.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/types.h>

using namespace cdvs;

namespace {

struct SharedTally {
  std::mutex Mu;
  std::vector<double> LatenciesSec;
  long Sent = 0;
  long TracedSent = 0; ///< requests stamped with a trace context
  long Done = 0;       ///< status "done"
  long OtherStatus = 0; ///< completed, but rejected/infeasible/failed
  long WireRejects = 0; ///< Reject frames
  long Errors = 0;      ///< transport errors
  long Unanswered = 0;  ///< outstanding at drain timeout
  long CacheHits = 0;
  std::map<std::string, std::string> Schedules; ///< fingerprint -> text
  /// Latencies keyed by the router's "backend" response annotation
  /// (empty single-node): the per-backend breakdown of a cluster run.
  std::map<std::string, std::vector<double>> BackendLat;
  /// The server's own admission-to-completion accounting
  /// (JobResult.TotalSeconds), paired with the end-to-end quantiles:
  /// the gap between the two is wire + event loop + router overhead.
  std::vector<double> BackendReportedSec;
  std::vector<double> OverheadSec; ///< end-to-end minus backend-reported
};

constexpr const char *kTimeoutMsg = "timed out waiting for a frame";

struct WorkerConfig {
  std::string Host;
  uint16_t Port = 0;
  long Quota = 0;
  uint64_t IntervalNs = 0;
  uint64_t StartNs = 0;
  int Distinct = 1;
  /// Percent of requests pinned to deadline variant 0 (the hot key);
  /// the rest spread over the remaining variants.
  int HotKeyPct = 0;
  /// Percent of requests stamped with a fresh 128-bit trace id and the
  /// sampled bit set (deterministic: every request with
  /// Sent % 100 < pct is traced).
  int TraceSamplePct = 0;
  int DrainTimeoutMs = 10'000;
  JobRequest Base;
  /// Graph mode: requests cycle over these canned graphs instead of
  /// deadline variants (empty = single-program mode).
  std::vector<std::shared_ptr<const taskgraph::TaskGraph>> Graphs;
};

void runWorker(int Index, const WorkerConfig &Cfg, SharedTally &Tally) {
  ErrorOr<net::Client> C = net::Client::connect(Cfg.Host, Cfg.Port);
  if (!C) {
    std::lock_guard<std::mutex> L(Tally.Mu);
    ++Tally.Errors;
    return;
  }
  std::map<uint64_t, uint64_t> PendingNs; // correlation -> send time
  std::vector<double> Latencies;
  long Sent = 0, Traced = 0, Done = 0, Other = 0, Rejects = 0,
       Errors = 0, Hits = 0;
  std::map<std::string, std::string> Schedules;
  std::map<std::string, std::vector<double>> BackendLat;
  std::vector<double> BackendReported, Overhead;

  // Stagger workers across one send interval so the aggregate stream
  // is evenly spaced, not N-bursty.
  uint64_t NextSend = Cfg.StartNs + static_cast<uint64_t>(Index) *
                                        (Cfg.IntervalNs / 4 + 1);
  uint64_t DrainDeadline = 0;

  auto handleFrame = [&](const net::Frame &F) {
    double Lat = -1.0;
    auto It = PendingNs.find(F.Correlation);
    if (It != PendingNs.end()) {
      Lat = static_cast<double>(monotonicNanos() - It->second) * 1e-9;
      Latencies.push_back(Lat);
      PendingNs.erase(It);
    }
    if (F.Type == net::FrameType::Reject) {
      ++Rejects;
      return;
    }
    if (F.Type != net::FrameType::Response &&
        F.Type != net::FrameType::GraphResponse)
      return;
    ErrorOr<JobResult> R = jobResultFromJsonText(F.Payload);
    if (!R) {
      ++Errors;
      return;
    }
    if (!R->Backend.empty() && Lat >= 0.0)
      BackendLat[R->Backend].push_back(Lat);
    if (R->TotalSeconds > 0.0 && Lat >= 0.0) {
      BackendReported.push_back(R->TotalSeconds);
      Overhead.push_back(Lat - R->TotalSeconds);
    }
    if (R->Status == JobStatus::Done) {
      ++Done;
      if (R->CacheHit)
        ++Hits;
      if (!R->Fingerprint.empty() && !R->ScheduleText.empty())
        Schedules.emplace(R->Fingerprint, R->ScheduleText);
    } else {
      ++Other;
    }
  };

  bool Alive = true;
  while (Alive) {
    uint64_t Now = monotonicNanos();
    if (Sent < Cfg.Quota && Now >= NextSend) {
      JobRequest R = Cfg.Base;
      R.Id = "c" + std::to_string(Index) + "-" + std::to_string(Sent);
      if (!Cfg.Graphs.empty())
        R.Graph = Cfg.Graphs[static_cast<size_t>(Sent) %
                             Cfg.Graphs.size()];
      else if (Cfg.Distinct > 1) {
        long Variant = Sent % Cfg.Distinct;
        // Hot-key skew: the configured share of sends collapses onto
        // variant 0, so one ring owner sees concentrated load.
        if (Cfg.HotKeyPct > 0 && Sent % 100 < Cfg.HotKeyPct)
          Variant = 0;
        R.DeadlineTightness =
            0.2 + 0.6 * static_cast<double>(Variant) /
                      static_cast<double>(Cfg.Distinct);
      }
      net::TraceContext TC;
      bool Sample = Cfg.TraceSamplePct > 0 &&
                    Sent % 100 < Cfg.TraceSamplePct;
      if (Sample) {
        // A fresh 128-bit trace id per sampled request; span ids from
        // the same generator, so they are unique but not guessable.
        TC.TraceHi = obs::nextSpanId();
        TC.TraceLo = obs::nextSpanId();
        TC.ParentSpan = obs::nextSpanId();
        TC.Sampled = true;
      }
      ErrorOr<uint64_t> Corr =
          C->sendRequest(R, 0, Sample ? &TC : nullptr);
      if (!Corr) {
        ++Errors;
        break;
      }
      if (Sample)
        ++Traced;
      PendingNs[*Corr] = Now;
      ++Sent;
      // Open loop: the schedule marches on even when we fall behind.
      NextSend += Cfg.IntervalNs;
      continue;
    }
    if (Sent >= Cfg.Quota) {
      if (PendingNs.empty())
        break;
      if (DrainDeadline == 0)
        DrainDeadline =
            Now + static_cast<uint64_t>(Cfg.DrainTimeoutMs) * 1'000'000;
      if (Now >= DrainDeadline)
        break;
    }
    int TimeoutMs;
    if (Sent < Cfg.Quota) {
      uint64_t Until = NextSend > Now ? NextSend - Now : 0;
      TimeoutMs = static_cast<int>(Until / 1'000'000);
      if (TimeoutMs < 1)
        TimeoutMs = PendingNs.empty() ? 1 : 0;
    } else {
      TimeoutMs = 50;
    }
    ErrorOr<net::Frame> F = C->readFrame(TimeoutMs);
    if (F) {
      handleFrame(*F);
      continue;
    }
    if (F.message() == kTimeoutMsg)
      continue;
    ++Errors;
    Alive = false;
  }

  std::lock_guard<std::mutex> L(Tally.Mu);
  Tally.Sent += Sent;
  Tally.TracedSent += Traced;
  Tally.Done += Done;
  Tally.OtherStatus += Other;
  Tally.WireRejects += Rejects;
  Tally.Errors += Errors;
  Tally.Unanswered += static_cast<long>(PendingNs.size());
  Tally.CacheHits += Hits;
  Tally.LatenciesSec.insert(Tally.LatenciesSec.end(), Latencies.begin(),
                            Latencies.end());
  for (auto &[Fp, Text] : Schedules)
    Tally.Schedules.emplace(Fp, std::move(Text));
  for (auto &[Name, Lats] : BackendLat) {
    std::vector<double> &Dst = Tally.BackendLat[Name];
    Dst.insert(Dst.end(), Lats.begin(), Lats.end());
  }
  Tally.BackendReportedSec.insert(Tally.BackendReportedSec.end(),
                                  BackendReported.begin(),
                                  BackendReported.end());
  Tally.OverheadSec.insert(Tally.OverheadSec.end(), Overhead.begin(),
                           Overhead.end());
}

double quantile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t I = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (I >= Sorted.size())
    I = Sorted.size() - 1;
  return Sorted[I];
}

/// Attack-traffic counters (churn + slowloris). Attack threads are
/// best-effort adversaries: their connect/send errors are expected
/// (that is the server defending itself) and never fail the run.
struct AttackTally {
  std::atomic<long> ChurnConns{0};
  std::atomic<long> SlowConns{0};
  std::atomic<long> AttackRejects{0}; ///< Reject frames drawn by attacks
};

/// Connection-churn storm: connect and immediately drop, as fast as the
/// server lets us, until \p Stop.
void runChurn(const std::string &Host, uint16_t Port,
              std::atomic<bool> &Stop, AttackTally &T) {
  while (!Stop.load(std::memory_order_relaxed)) {
    ErrorOr<net::Client> C = net::Client::connect(Host, Port);
    if (!C) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    T.ChurnConns.fetch_add(1, std::memory_order_relaxed);
    // Scope end closes the socket with data possibly in flight — the
    // nastiest polite thing a client can do.
  }
}

/// Slowloris: park on a partial frame, dribbling one byte per interval
/// and never completing it, reconnecting each time the server evicts
/// us. Rejects the server answers with (slow_frame, shed, overloaded)
/// are counted as AttackRejects.
void runSlowloris(const std::string &Host, uint16_t Port, int IntervalMs,
                  std::atomic<bool> &Stop, AttackTally &T) {
  std::string F =
      net::encodeFrame(net::FrameType::Request, 1, "{\"workload\":\"gsm\"}");
  while (!Stop.load(std::memory_order_relaxed)) {
    ErrorOr<net::Client> C = net::Client::connect(Host, Port);
    if (!C) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    T.SlowConns.fetch_add(1, std::memory_order_relaxed);
    size_t Off = 0;
    while (!Stop.load(std::memory_order_relaxed) && Off + 1 < F.size()) {
      size_t Chunk = Off == 0 ? 4 : 1; // header prefix, then a dribble
      if (!C->sendRaw(F.data() + Off, Chunk))
        break; // server closed on us — reconnect
      Off += Chunk;
      // readFrame doubles as the dribble pacing and catches the
      // eviction Reject when the guard fires.
      ErrorOr<net::Frame> Got = C->readFrame(IntervalMs);
      if (Got) {
        if (Got->Type == net::FrameType::Reject)
          T.AttackRejects.fetch_add(1, std::memory_order_relaxed);
      } else if (Got.message() != kTimeoutMsg) {
        break; // EOF: evicted
      }
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-loadgen",
              "open-loop load generator for dvs-server: fixed-rate "
              "cdvs-wire requests, latency quantiles out");
  std::string &Host = P.addString("host", "127.0.0.1", "server address");
  int &Port = P.addInt("port", 0, "server port (required)");
  int &Connections = P.addInt("connections", 4, "parallel connections");
  double &Rate = P.addDouble(
      "rate", 2000.0, "aggregate requests/second across connections");
  int &Requests =
      P.addInt("requests", 10000, "total requests to send");
  int &Distinct = P.addInt(
      "distinct", 1,
      "spread requests over this many deadline variants (1 = pure "
      "cache-hit load)");
  std::string &WorkloadName =
      P.addString("workload", "gsm", "workload to schedule");
  std::vector<std::string> &GraphNames = P.addStringList(
      "graph", "graph mode: cycle task-graph jobs over this canned "
               "instance (repeat for several; overrides --workload/"
               "--distinct)");
  double &Tightness =
      P.addDouble("tightness", 0.5, "relative deadline tightness");
  int &Warmup = P.addInt(
      "warmup", 1,
      "synchronous priming calls before the timed run (fills the "
      "result cache); 0 measures cold");
  int &DrainTimeoutMs = P.addInt(
      "drain-timeout-ms", 10000,
      "how long to wait for outstanding responses after the last send");
  std::string &SchedulesDir = P.addString(
      "schedules", "",
      "directory for <fingerprint>.cdvs files (byte-identity checks)");
  std::string &OutPath = P.addString("benchmark_out", "BENCH_net.json",
                                     "JSON results file ('' = none)");
  int &Churn = P.addInt(
      "churn", 0,
      "connection-churn attack threads (connect/drop storms) running "
      "alongside the measured load");
  int &Slowloris = P.addInt(
      "slowloris", 0,
      "slowloris attack threads (byte-dribbling partial frames) "
      "running alongside the measured load");
  int &DribbleMs = P.addInt(
      "dribble-interval-ms", 50,
      "ms between slowloris bytes (should exceed the server's "
      "slow-frame budget divided by frame size)");
  int &MetaReactors = P.addInt(
      "meta-reactors", 0,
      "recorded in the JSON output as the server's --reactors value "
      "(bench bookkeeping only)");
  int &MetaBackends = P.addInt(
      "meta-backends", 0,
      "recorded in the JSON output as the cluster's backend count "
      "(bench bookkeeping only)");
  int &HotKeyPct = P.addInt(
      "hot-key-pct", 0,
      "percent of requests pinned to deadline variant 0 (hot-key skew "
      "for cluster runs); 0 = uniform");
  int &TraceSamplePct = P.addInt(
      "trace-sample-pct", 0,
      "percent of requests stamped with a fresh 128-bit trace id "
      "(sampled bit set); the server/router rings record their spans "
      "for dvs-stat --scrape to assemble");
  int &KillPid = P.addInt(
      "kill-backend-pid", 0,
      "SIGKILL this pid mid-run (cluster failover drills); 0 = off");
  int &KillAfterMs = P.addInt(
      "kill-backend-after-ms", 500,
      "when --kill-backend-pid is set: ms after the timed run starts "
      "to fire the kill");
  if (!P.parseOrExit(argc, argv))
    return 0;
  if (Port <= 0 || Port > 65535) {
    std::fprintf(stderr, "dvs-loadgen: --port is required\n");
    return 1;
  }
  if (Connections < 1)
    Connections = 1;
  if (Rate <= 0.0)
    Rate = 1.0;

  std::vector<std::shared_ptr<const taskgraph::TaskGraph>> Graphs;
  for (const std::string &Name : GraphNames) {
    ErrorOr<taskgraph::TaskGraph> G = taskgraph::cannedTaskGraph(Name);
    if (!G) {
      std::fprintf(stderr, "dvs-loadgen: %s\n", G.message().c_str());
      return 1;
    }
    Graphs.push_back(
        std::make_shared<const taskgraph::TaskGraph>(std::move(*G)));
  }

  JobRequest Base;
  if (Graphs.empty()) {
    Base.Workload = WorkloadName;
    Base.DeadlineTightness = Tightness;
  }

  // Prime the cache (and fail fast on a bad port/workload) before the
  // clock starts.
  for (int I = 0; I < (Warmup < 0 ? 0 : Warmup); ++I) {
    ErrorOr<net::Client> C =
        net::Client::connect(Host, static_cast<uint16_t>(Port));
    if (!C) {
      std::fprintf(stderr, "dvs-loadgen: connect failed: %s\n",
                   C.message().c_str());
      return 1;
    }
    JobRequest W = Base;
    W.Id = "warmup-" + std::to_string(I);
    if (!Graphs.empty())
      W.Graph = Graphs[static_cast<size_t>(I) % Graphs.size()];
    // Trace the warmup too when sampling is on: it is the one request
    // guaranteed to pay every cold-start cost, so it reliably lands in
    // the router's slow log with a trace id attached. Not counted in
    // traced_sent (warmups are outside the measured window).
    net::TraceContext WTC;
    WTC.TraceHi = obs::nextSpanId();
    WTC.TraceLo = obs::nextSpanId();
    WTC.ParentSpan = obs::nextSpanId();
    WTC.Sampled = true;
    ErrorOr<JobResult> R =
        C->call(W, 120'000, TraceSamplePct > 0 ? &WTC : nullptr);
    if (!R) {
      std::fprintf(stderr, "dvs-loadgen: warmup call failed: %s\n",
                   R.message().c_str());
      return 1;
    }
  }

  SharedTally Tally;
  WorkerConfig Cfg;
  Cfg.Host = Host;
  Cfg.Port = static_cast<uint16_t>(Port);
  Cfg.IntervalNs = static_cast<uint64_t>(
      1e9 * static_cast<double>(Connections) / Rate);
  Cfg.Distinct = Distinct < 1 ? 1 : Distinct;
  Cfg.HotKeyPct = HotKeyPct < 0 ? 0 : (HotKeyPct > 100 ? 100 : HotKeyPct);
  Cfg.TraceSamplePct =
      TraceSamplePct < 0 ? 0
                         : (TraceSamplePct > 100 ? 100 : TraceSamplePct);
  Cfg.DrainTimeoutMs = DrainTimeoutMs < 0 ? 0 : DrainTimeoutMs;
  Cfg.Base = Base;
  Cfg.Graphs = Graphs;

  long PerConn = Requests / Connections;
  uint64_t T0 = monotonicNanos();
  Cfg.StartNs = T0;

  // Failover drill: SIGKILL a backend partway into the timed run. The
  // router must answer every admitted request anyway.
  std::atomic<bool> KillFired{false};
  std::atomic<bool> StopKill{false};
  std::thread KillThread;
  if (KillPid > 0) {
    KillThread = std::thread([&] {
      uint64_t Deadline =
          T0 + static_cast<uint64_t>(KillAfterMs < 0 ? 0 : KillAfterMs) *
                   1'000'000ull;
      while (!StopKill.load(std::memory_order_relaxed) &&
             monotonicNanos() < Deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (StopKill.load(std::memory_order_relaxed))
        return;
      if (::kill(static_cast<pid_t>(KillPid), SIGKILL) == 0)
        KillFired.store(true, std::memory_order_relaxed);
    });
  }

  // Attack traffic starts first so the measured (healthy) load runs
  // entirely inside the storm.
  AttackTally Attacks;
  std::atomic<bool> StopAttacks{false};
  std::vector<std::thread> AttackThreads;
  for (int I = 0; I < (Churn < 0 ? 0 : Churn); ++I)
    AttackThreads.emplace_back([&] {
      runChurn(Host, static_cast<uint16_t>(Port), StopAttacks, Attacks);
    });
  for (int I = 0; I < (Slowloris < 0 ? 0 : Slowloris); ++I)
    AttackThreads.emplace_back([&] {
      runSlowloris(Host, static_cast<uint16_t>(Port),
                   DribbleMs < 1 ? 1 : DribbleMs, StopAttacks, Attacks);
    });

  std::vector<std::thread> Threads;
  for (int I = 0; I < Connections; ++I) {
    WorkerConfig C = Cfg;
    C.Quota = PerConn + (I < Requests % Connections ? 1 : 0);
    Threads.emplace_back(
        [I, C, &Tally] { runWorker(I, C, Tally); });
  }
  for (std::thread &T : Threads)
    T.join();
  double Elapsed = static_cast<double>(monotonicNanos() - T0) * 1e-9;
  StopAttacks.store(true, std::memory_order_relaxed);
  for (std::thread &T : AttackThreads)
    T.join();
  StopKill.store(true, std::memory_order_relaxed);
  if (KillThread.joinable())
    KillThread.join();

  long Completed = Tally.Done + Tally.OtherStatus + Tally.WireRejects;
  std::sort(Tally.LatenciesSec.begin(), Tally.LatenciesSec.end());
  std::sort(Tally.BackendReportedSec.begin(),
            Tally.BackendReportedSec.end());
  std::sort(Tally.OverheadSec.begin(), Tally.OverheadSec.end());
  double P50 = quantile(Tally.LatenciesSec, 0.50);
  double P90 = quantile(Tally.LatenciesSec, 0.90);
  double P95 = quantile(Tally.LatenciesSec, 0.95);
  double P99 = quantile(Tally.LatenciesSec, 0.99);
  double Max = Tally.LatenciesSec.empty() ? 0.0
                                          : Tally.LatenciesSec.back();
  double Throughput = Elapsed > 0.0
                          ? static_cast<double>(Completed) / Elapsed
                          : 0.0;
  // Served throughput: only status-done answers count, so admission
  // rejects under overload cannot inflate the number.
  double DoneRps =
      Elapsed > 0.0 ? static_cast<double>(Tally.Done) / Elapsed : 0.0;

  int ScheduleWriteErrors = 0;
  if (!SchedulesDir.empty()) {
    for (const auto &[Fp, Text] : Tally.Schedules) {
      if (Text.rfind("cdvs-taskplan", 0) == 0) {
        // Graph plans: parse round trip, then the bytes land verbatim
        // (the byte-identity gate diffs the text itself).
        ErrorOr<taskgraph::OnlineResult> Plan =
            taskgraph::readTaskPlan(Text);
        bool Wrote = false;
        std::string Path = SchedulesDir + "/" + Fp + ".taskplan";
        if (Plan) {
          if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
            Wrote = std::fwrite(Text.data(), 1, Text.size(), F) ==
                    Text.size();
            std::fclose(F);
          }
          if (!Wrote)
            std::fprintf(stderr, "dvs-loadgen: cannot write '%s'\n",
                         Path.c_str());
        } else {
          std::fprintf(stderr, "dvs-loadgen: %s\n",
                       Plan.message().c_str());
        }
        if (!Wrote)
          ++ScheduleWriteErrors;
        continue;
      }
      ErrorOr<ModeAssignment> A = readSchedule(Text);
      ErrorOr<bool> Wrote =
          A ? writeScheduleFile(SchedulesDir + "/" + Fp + ".cdvs", *A)
            : ErrorOr<bool>(Err(A.message()));
      if (!Wrote) {
        std::fprintf(stderr, "dvs-loadgen: %s\n",
                     Wrote.message().c_str());
        ++ScheduleWriteErrors;
      }
    }
  }

  char Buf[2048];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"tool\":\"dvs-loadgen\",\"connections\":%d,\"reactors\":%d,"
      "\"rate_target_rps\":%.1f,\"requests\":%d,\"sent\":%ld,"
      "\"completed\":%ld,\"done\":%ld,\"other_status\":%ld,"
      "\"wire_rejects\":%ld,\"errors\":%ld,\"unanswered\":%ld,"
      "\"cache_hits\":%ld,\"elapsed_s\":%.3f,"
      "\"throughput_rps\":%.1f,\"done_rps\":%.1f,"
      "\"latency_s\":{\"p50\":%.6f,"
      "\"p90\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f},"
      "\"trace\":{\"sample_pct\":%d,\"traced_sent\":%ld,"
      "\"backend_reported_s\":{\"p50\":%.6f,\"p99\":%.6f},"
      "\"net_overhead_s\":{\"p50\":%.6f,\"p99\":%.6f}},"
      "\"attack\":{\"churn_threads\":%d,\"slowloris_threads\":%d,"
      "\"churn_conns\":%ld,\"slowloris_conns\":%ld,"
      "\"attack_rejects\":%ld},"
      "\"cluster\":{\"backends\":%d,\"hot_key_pct\":%d,"
      "\"kill_pid\":%d,\"kill_fired\":%s},"
      "\"distinct_schedules\":%zu}",
      Connections, MetaReactors, Rate, Requests, Tally.Sent, Completed,
      Tally.Done, Tally.OtherStatus, Tally.WireRejects, Tally.Errors,
      Tally.Unanswered, Tally.CacheHits, Elapsed, Throughput, DoneRps,
      P50, P90, P95, P99, Max, Cfg.TraceSamplePct, Tally.TracedSent,
      quantile(Tally.BackendReportedSec, 0.50),
      quantile(Tally.BackendReportedSec, 0.99),
      quantile(Tally.OverheadSec, 0.50),
      quantile(Tally.OverheadSec, 0.99), Churn < 0 ? 0 : Churn,
      Slowloris < 0 ? 0 : Slowloris,
      Attacks.ChurnConns.load(), Attacks.SlowConns.load(),
      Attacks.AttackRejects.load(), MetaBackends, Cfg.HotKeyPct,
      KillPid < 0 ? 0 : KillPid, KillFired.load() ? "true" : "false",
      Tally.Schedules.size());

  // Per-backend breakdown (cluster runs only): keyed by the router's
  // response annotation, so it shows how load and latency spread over
  // the ring — and shifts when a backend dies.
  std::string Out(Buf);
  if (!Tally.BackendLat.empty()) {
    std::string B = ",\"backends\":{";
    bool First = true;
    for (auto &[Name, Lats] : Tally.BackendLat) {
      std::sort(Lats.begin(), Lats.end());
      char Ent[256];
      std::snprintf(Ent, sizeof(Ent),
                    "%s\"%s\":{\"answered\":%zu,\"p50\":%.6f,"
                    "\"p99\":%.6f,\"max\":%.6f}",
                    First ? "" : ",", Name.c_str(), Lats.size(),
                    quantile(Lats, 0.50), quantile(Lats, 0.99),
                    Lats.empty() ? 0.0 : Lats.back());
      B += Ent;
      First = false;
    }
    B += "}";
    Out.insert(Out.rfind('}'), B);
  }

  std::printf("%s\n", Out.c_str());
  if (!OutPath.empty()) {
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "dvs-loadgen: cannot write '%s'\n",
                   OutPath.c_str());
      return 1;
    }
    std::fprintf(F, "%s\n", Out.c_str());
    std::fclose(F);
  }

  if (Tally.Errors > 0 || Tally.Unanswered > 0 ||
      ScheduleWriteErrors > 0)
    return 1;
  return Completed > 0 ? 0 : 1;
}
