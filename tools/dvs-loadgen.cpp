//===- tools/dvs-loadgen.cpp - Open-loop load generator for dvs-server -----===//
//
// Drives a running dvs-server with an open-loop request schedule: sends
// at a fixed aggregate rate across N connections regardless of how fast
// responses come back (so server-side queueing shows up as latency, not
// as a slowed-down generator), pipelining on each connection and
// matching responses by correlation id. Reports throughput and latency
// quantiles as one JSON record (default BENCH_net.json).
//
// The default workload is one request repeated, which after the first
// solve is a pure result-cache hit — the sustained-throughput number
// measures the wire + event loop + cache path, not the MILP. Pass
// --distinct=K to spread requests over K deadline variants instead.
//
// --schedules=DIR writes each distinct returned schedule to
// DIR/<fingerprint>.cdvs (the same canonical form dvsd --schedules
// writes), which is what the byte-identity gate diffs.
//
//===----------------------------------------------------------------------===//

#include "dvs/ScheduleIO.h"
#include "net/Client.h"
#include "service/JobIO.h"
#include "support/ArgParse.h"
#include "support/Clock.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace cdvs;

namespace {

struct SharedTally {
  std::mutex Mu;
  std::vector<double> LatenciesSec;
  long Sent = 0;
  long Done = 0;       ///< status "done"
  long OtherStatus = 0; ///< completed, but rejected/infeasible/failed
  long WireRejects = 0; ///< Reject frames
  long Errors = 0;      ///< transport errors
  long Unanswered = 0;  ///< outstanding at drain timeout
  long CacheHits = 0;
  std::map<std::string, std::string> Schedules; ///< fingerprint -> text
};

constexpr const char *kTimeoutMsg = "timed out waiting for a frame";

struct WorkerConfig {
  std::string Host;
  uint16_t Port = 0;
  long Quota = 0;
  uint64_t IntervalNs = 0;
  uint64_t StartNs = 0;
  int Distinct = 1;
  int DrainTimeoutMs = 10'000;
  JobRequest Base;
};

void runWorker(int Index, const WorkerConfig &Cfg, SharedTally &Tally) {
  ErrorOr<net::Client> C = net::Client::connect(Cfg.Host, Cfg.Port);
  if (!C) {
    std::lock_guard<std::mutex> L(Tally.Mu);
    ++Tally.Errors;
    return;
  }
  std::map<uint64_t, uint64_t> PendingNs; // correlation -> send time
  std::vector<double> Latencies;
  long Sent = 0, Done = 0, Other = 0, Rejects = 0, Errors = 0,
       Hits = 0;
  std::map<std::string, std::string> Schedules;

  // Stagger workers across one send interval so the aggregate stream
  // is evenly spaced, not N-bursty.
  uint64_t NextSend = Cfg.StartNs + static_cast<uint64_t>(Index) *
                                        (Cfg.IntervalNs / 4 + 1);
  uint64_t DrainDeadline = 0;

  auto handleFrame = [&](const net::Frame &F) {
    auto It = PendingNs.find(F.Correlation);
    if (It != PendingNs.end()) {
      Latencies.push_back(
          static_cast<double>(monotonicNanos() - It->second) * 1e-9);
      PendingNs.erase(It);
    }
    if (F.Type == net::FrameType::Reject) {
      ++Rejects;
      return;
    }
    if (F.Type != net::FrameType::Response)
      return;
    ErrorOr<JobResult> R = jobResultFromJsonText(F.Payload);
    if (!R) {
      ++Errors;
      return;
    }
    if (R->Status == JobStatus::Done) {
      ++Done;
      if (R->CacheHit)
        ++Hits;
      if (!R->Fingerprint.empty() && !R->ScheduleText.empty())
        Schedules.emplace(R->Fingerprint, R->ScheduleText);
    } else {
      ++Other;
    }
  };

  bool Alive = true;
  while (Alive) {
    uint64_t Now = monotonicNanos();
    if (Sent < Cfg.Quota && Now >= NextSend) {
      JobRequest R = Cfg.Base;
      R.Id = "c" + std::to_string(Index) + "-" + std::to_string(Sent);
      if (Cfg.Distinct > 1)
        R.DeadlineTightness =
            0.2 + 0.6 * static_cast<double>(Sent % Cfg.Distinct) /
                      static_cast<double>(Cfg.Distinct);
      ErrorOr<uint64_t> Corr = C->sendRequest(R);
      if (!Corr) {
        ++Errors;
        break;
      }
      PendingNs[*Corr] = Now;
      ++Sent;
      // Open loop: the schedule marches on even when we fall behind.
      NextSend += Cfg.IntervalNs;
      continue;
    }
    if (Sent >= Cfg.Quota) {
      if (PendingNs.empty())
        break;
      if (DrainDeadline == 0)
        DrainDeadline =
            Now + static_cast<uint64_t>(Cfg.DrainTimeoutMs) * 1'000'000;
      if (Now >= DrainDeadline)
        break;
    }
    int TimeoutMs;
    if (Sent < Cfg.Quota) {
      uint64_t Until = NextSend > Now ? NextSend - Now : 0;
      TimeoutMs = static_cast<int>(Until / 1'000'000);
      if (TimeoutMs < 1)
        TimeoutMs = PendingNs.empty() ? 1 : 0;
    } else {
      TimeoutMs = 50;
    }
    ErrorOr<net::Frame> F = C->readFrame(TimeoutMs);
    if (F) {
      handleFrame(*F);
      continue;
    }
    if (F.message() == kTimeoutMsg)
      continue;
    ++Errors;
    Alive = false;
  }

  std::lock_guard<std::mutex> L(Tally.Mu);
  Tally.Sent += Sent;
  Tally.Done += Done;
  Tally.OtherStatus += Other;
  Tally.WireRejects += Rejects;
  Tally.Errors += Errors;
  Tally.Unanswered += static_cast<long>(PendingNs.size());
  Tally.CacheHits += Hits;
  Tally.LatenciesSec.insert(Tally.LatenciesSec.end(), Latencies.begin(),
                            Latencies.end());
  for (auto &[Fp, Text] : Schedules)
    Tally.Schedules.emplace(Fp, std::move(Text));
}

double quantile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t I = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (I >= Sorted.size())
    I = Sorted.size() - 1;
  return Sorted[I];
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-loadgen",
              "open-loop load generator for dvs-server: fixed-rate "
              "cdvs-wire requests, latency quantiles out");
  std::string &Host = P.addString("host", "127.0.0.1", "server address");
  int &Port = P.addInt("port", 0, "server port (required)");
  int &Connections = P.addInt("connections", 4, "parallel connections");
  double &Rate = P.addDouble(
      "rate", 2000.0, "aggregate requests/second across connections");
  int &Requests =
      P.addInt("requests", 10000, "total requests to send");
  int &Distinct = P.addInt(
      "distinct", 1,
      "spread requests over this many deadline variants (1 = pure "
      "cache-hit load)");
  std::string &WorkloadName =
      P.addString("workload", "gsm", "workload to schedule");
  double &Tightness =
      P.addDouble("tightness", 0.5, "relative deadline tightness");
  int &Warmup = P.addInt(
      "warmup", 1,
      "synchronous priming calls before the timed run (fills the "
      "result cache); 0 measures cold");
  int &DrainTimeoutMs = P.addInt(
      "drain-timeout-ms", 10000,
      "how long to wait for outstanding responses after the last send");
  std::string &SchedulesDir = P.addString(
      "schedules", "",
      "directory for <fingerprint>.cdvs files (byte-identity checks)");
  std::string &OutPath = P.addString("benchmark_out", "BENCH_net.json",
                                     "JSON results file ('' = none)");
  if (!P.parseOrExit(argc, argv))
    return 0;
  if (Port <= 0 || Port > 65535) {
    std::fprintf(stderr, "dvs-loadgen: --port is required\n");
    return 1;
  }
  if (Connections < 1)
    Connections = 1;
  if (Rate <= 0.0)
    Rate = 1.0;

  JobRequest Base;
  Base.Workload = WorkloadName;
  Base.DeadlineTightness = Tightness;

  // Prime the cache (and fail fast on a bad port/workload) before the
  // clock starts.
  for (int I = 0; I < (Warmup < 0 ? 0 : Warmup); ++I) {
    ErrorOr<net::Client> C =
        net::Client::connect(Host, static_cast<uint16_t>(Port));
    if (!C) {
      std::fprintf(stderr, "dvs-loadgen: connect failed: %s\n",
                   C.message().c_str());
      return 1;
    }
    JobRequest W = Base;
    W.Id = "warmup-" + std::to_string(I);
    ErrorOr<JobResult> R = C->call(W, 120'000);
    if (!R) {
      std::fprintf(stderr, "dvs-loadgen: warmup call failed: %s\n",
                   R.message().c_str());
      return 1;
    }
  }

  SharedTally Tally;
  WorkerConfig Cfg;
  Cfg.Host = Host;
  Cfg.Port = static_cast<uint16_t>(Port);
  Cfg.IntervalNs = static_cast<uint64_t>(
      1e9 * static_cast<double>(Connections) / Rate);
  Cfg.Distinct = Distinct < 1 ? 1 : Distinct;
  Cfg.DrainTimeoutMs = DrainTimeoutMs < 0 ? 0 : DrainTimeoutMs;
  Cfg.Base = Base;

  long PerConn = Requests / Connections;
  uint64_t T0 = monotonicNanos();
  Cfg.StartNs = T0;
  std::vector<std::thread> Threads;
  for (int I = 0; I < Connections; ++I) {
    WorkerConfig C = Cfg;
    C.Quota = PerConn + (I < Requests % Connections ? 1 : 0);
    Threads.emplace_back(
        [I, C, &Tally] { runWorker(I, C, Tally); });
  }
  for (std::thread &T : Threads)
    T.join();
  double Elapsed = static_cast<double>(monotonicNanos() - T0) * 1e-9;

  long Completed = Tally.Done + Tally.OtherStatus + Tally.WireRejects;
  std::sort(Tally.LatenciesSec.begin(), Tally.LatenciesSec.end());
  double P50 = quantile(Tally.LatenciesSec, 0.50);
  double P90 = quantile(Tally.LatenciesSec, 0.90);
  double P99 = quantile(Tally.LatenciesSec, 0.99);
  double Max = Tally.LatenciesSec.empty() ? 0.0
                                          : Tally.LatenciesSec.back();
  double Throughput = Elapsed > 0.0
                          ? static_cast<double>(Completed) / Elapsed
                          : 0.0;

  int ScheduleWriteErrors = 0;
  if (!SchedulesDir.empty()) {
    for (const auto &[Fp, Text] : Tally.Schedules) {
      ErrorOr<ModeAssignment> A = readSchedule(Text);
      ErrorOr<bool> Wrote =
          A ? writeScheduleFile(SchedulesDir + "/" + Fp + ".cdvs", *A)
            : ErrorOr<bool>(Err(A.message()));
      if (!Wrote) {
        std::fprintf(stderr, "dvs-loadgen: %s\n",
                     Wrote.message().c_str());
        ++ScheduleWriteErrors;
      }
    }
  }

  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"tool\":\"dvs-loadgen\",\"connections\":%d,"
      "\"rate_target_rps\":%.1f,\"requests\":%d,\"sent\":%ld,"
      "\"completed\":%ld,\"done\":%ld,\"other_status\":%ld,"
      "\"wire_rejects\":%ld,\"errors\":%ld,\"unanswered\":%ld,"
      "\"cache_hits\":%ld,\"elapsed_s\":%.3f,"
      "\"throughput_rps\":%.1f,\"latency_s\":{\"p50\":%.6f,"
      "\"p90\":%.6f,\"p99\":%.6f,\"max\":%.6f},"
      "\"distinct_schedules\":%zu}",
      Connections, Rate, Requests, Tally.Sent, Completed, Tally.Done,
      Tally.OtherStatus, Tally.WireRejects, Tally.Errors,
      Tally.Unanswered, Tally.CacheHits, Elapsed, Throughput, P50, P90,
      P99, Max, Tally.Schedules.size());

  std::printf("%s\n", Buf);
  if (!OutPath.empty()) {
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "dvs-loadgen: cannot write '%s'\n",
                   OutPath.c_str());
      return 1;
    }
    std::fprintf(F, "%s\n", Buf);
    std::fclose(F);
  }

  if (Tally.Errors > 0 || Tally.Unanswered > 0 ||
      ScheduleWriteErrors > 0)
    return 1;
  return Completed > 0 ? 0 : 1;
}
