//===- tools/dvs-router.cpp - cluster sharding front end -------------------===//
//
// Shards cdvs-wire v1 requests across dvs-server backends on a
// consistent-hash ring (cluster::Router). Clients speak to the router
// exactly as they would to one dvs-server; the router keys each request
// (cluster/Key.h), proxies it to the ring owner, health-checks backends
// on a timer (evicting after --fail-threshold consecutive transport
// failures, reinstating on an answered probe), and fails idempotent
// solves over to the next ring owner within --retry-budget. Relayed
// Responses carry a "backend":"host:port" annotation for dvs-loadgen's
// per-backend latency breakdown (--no-annotate turns it off).
//
// Lifecycle mirrors dvs-server: one {"type":"listening",...} JSON line
// on stdout once bound (or --port-file), SIGTERM/SIGINT begin a
// graceful drain, and the process exits with one {"type":"stats",...}
// line. --metrics-out snapshots the cdvs_cluster_* families after the
// drain; a live view needs no files at all — dvs-stat --scrape sends a
// StatsFetch frame and gets metrics, the trace ring, and the flight
// recorder (the last --flight-capacity request records) back over the
// wire. --slow-log-ms dumps slow or failed requests as JSON lines.
//
//===----------------------------------------------------------------------===//

#include "cluster/Router.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ArgParse.h"
#include "support/Clock.h"

#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

using namespace cdvs;

namespace {

cluster::Router *GRouter = nullptr;

void onSignal(int) {
  if (GRouter)
    GRouter->beginDrain();
}

bool writeTextFile(const std::string &Path, const std::string &Text,
                   const char *What) {
  std::FILE *F = Path == "-" ? stderr : std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "dvs-router: cannot write %s file '%s'\n", What,
                 Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  if (F != stderr)
    std::fclose(F);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-router",
              "consistent-hash sharding front end over dvs-server "
              "backends: one wire endpoint, N solvers");
  std::string &Bind =
      P.addString("bind", "127.0.0.1", "address to listen on");
  int &Port = P.addInt("port", 0, "TCP port; 0 picks an ephemeral one");
  std::string &BackendsArg = P.addString(
      "backends", "",
      "comma-separated dvs-server addresses (host:port,...); required");
  int &VNodes = P.addInt(
      "vnodes", 64,
      "consistent-ring virtual nodes per backend; must match the "
      "backends' --vnodes");
  int &MaxConns =
      P.addInt("max-conns", 256, "client connection limit");
  int &MaxFrameKb =
      P.addInt("max-frame-kb", 1024, "per-frame payload cap in KiB");
  int &HealthMs = P.addInt(
      "health-interval-ms", 500,
      "backend probe cadence; also the ping-answer deadline");
  int &FailThreshold = P.addInt(
      "fail-threshold", 3,
      "consecutive transport failures that evict a backend");
  int &ConnectMs =
      P.addInt("connect-timeout-ms", 1000, "backend connect deadline");
  int &UpstreamMs = P.addInt(
      "upstream-timeout-ms", 0,
      "re-route a request unanswered this long; 0 = off (backends own "
      "solve timeouts)");
  int &RetryBudget = P.addInt(
      "retry-budget", 2,
      "failover retries per request after its first routing");
  bool &NoAnnotate = P.addFlag(
      "no-annotate",
      "do not splice \"backend\":\"host:port\" into relayed Responses");
  bool &ForcePoll =
      P.addFlag("poll", "use the portable poll(2) backend, not epoll");
  double &MaxSeconds = P.addDouble(
      "max-seconds", 0.0, "drain and exit after this long; 0 = forever");
  std::string &PortFile = P.addString(
      "port-file", "", "write the bound port here once listening");
  std::string &MetricsOut = P.addString(
      "metrics-out", "",
      "write Prometheus text metrics here after the drain ('-' = "
      "stderr)");
  std::string &MetricsJson = P.addString(
      "metrics-json", "", "write the metrics registry as JSON here");
  int &FlightCap = P.addInt(
      "flight-capacity", 256,
      "flight-recorder depth: recent request records kept for "
      "StatsFetch scrapes; 0 = off");
  int &SlowLogMs = P.addInt(
      "slow-log-ms", 0,
      "dump requests slower than this (or failed) as JSON lines to "
      "--slow-log; 0 = off");
  std::string &SlowLogPath = P.addString(
      "slow-log", "",
      "slow-log destination ('' or '-' = stderr)");
  std::string &TraceOut = P.addString(
      "trace-out", "",
      "enable span tracing; write Chrome trace_event JSON here on "
      "exit");
  bool &TraceOn = P.addFlag(
      "trace",
      "enable span tracing into the in-memory ring without writing a "
      "file (scrape it live with dvs-stat --scrape)");
  if (!P.parseOrExit(argc, argv))
    return 0;

  if (BackendsArg.empty()) {
    std::fprintf(stderr, "dvs-router: --backends is required\n");
    return 1;
  }
  ErrorOr<std::vector<cluster::Address>> List =
      cluster::parseAddressList(BackendsArg);
  if (!List) {
    std::fprintf(stderr, "dvs-router: --backends: %s\n",
                 List.message().c_str());
    return 1;
  }

  cluster::RouterOptions O;
  O.BindAddress = Bind;
  O.Port = static_cast<uint16_t>(Port);
  for (const cluster::Address &A : *List)
    O.Backends.push_back(A.name());
  O.VirtualNodes = VNodes < 1 ? 1 : VNodes;
  O.MaxConnections = static_cast<size_t>(MaxConns < 1 ? 1 : MaxConns);
  O.MaxFrameBytes =
      static_cast<size_t>(MaxFrameKb < 1 ? 1 : MaxFrameKb) * 1024;
  O.HealthIntervalMs =
      static_cast<uint64_t>(HealthMs < 1 ? 1 : HealthMs);
  O.FailThreshold = FailThreshold < 1 ? 1 : FailThreshold;
  O.ConnectTimeoutMs =
      static_cast<uint64_t>(ConnectMs < 1 ? 1 : ConnectMs);
  O.UpstreamTimeoutMs =
      static_cast<uint64_t>(UpstreamMs < 0 ? 0 : UpstreamMs);
  O.RetryBudget = RetryBudget < 0 ? 0 : RetryBudget;
  O.AnnotateBackend = !NoAnnotate;
  O.FlightCapacity = static_cast<size_t>(FlightCap < 0 ? 0 : FlightCap);
  O.SlowLogMs = static_cast<uint64_t>(SlowLogMs < 0 ? 0 : SlowLogMs);
  O.SlowLogPath = SlowLogPath;
  O.ForcePoll = ForcePoll;

  std::signal(SIGPIPE, SIG_IGN);
  if (!TraceOut.empty() || TraceOn)
    obs::trace().setEnabled(true);

  cluster::Router Router(O);
  ErrorOr<bool> Started = Router.start();
  if (!Started) {
    std::fprintf(stderr, "dvs-router: %s\n", Started.message().c_str());
    return 1;
  }

  std::printf("{\"type\":\"listening\",\"port\":%u,\"backend\":\"%s\","
              "\"backends\":%zu}\n",
              Router.port(), Router.backendName(), O.Backends.size());
  std::fflush(stdout);
  if (!PortFile.empty())
    writeTextFile(PortFile, std::to_string(Router.port()) + "\n",
                  "port");

  GRouter = &Router;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  uint64_t StartNs = monotonicNanos();
  for (;;) {
    if (Router.waitDrained(0.2))
      break;
    if (MaxSeconds > 0.0 &&
        static_cast<double>(monotonicNanos() - StartNs) * 1e-9 >=
            MaxSeconds)
      Router.beginDrain();
  }
  GRouter = nullptr;
  cluster::RouterStats S = Router.stats();
  Router.stop();

  std::printf(
      "{\"type\":\"stats\",\"accepted\":%ld,\"conn_rejected\":%ld,"
      "\"closed\":%ld,\"frames_in\":%ld,\"frames_out\":%ld,"
      "\"routed\":%ld,\"responses\":%ld,\"rejects_relayed\":%ld,"
      "\"rejects_sent\":%ld,\"retries\":%ld,\"evictions\":%ld,"
      "\"reinstatements\":%ld,\"upstream_timeouts\":%ld,"
      "\"orphans\":%ld,\"protocol_errors\":%ld,"
      "\"healthy_backends\":%zu}\n",
      S.ConnectionsAccepted, S.ConnectionsRejected, S.ConnectionsClosed,
      S.FramesIn, S.FramesOut, S.RequestsRouted, S.ResponsesRelayed,
      S.RejectsRelayed, S.RejectsSent, S.Retries, S.BackendEvictions,
      S.BackendReinstatements, S.UpstreamTimeouts, S.OrphanResponses,
      S.ProtocolErrors, S.HealthyBackends);
  std::fflush(stdout);

  if (!MetricsOut.empty())
    writeTextFile(MetricsOut, obs::metrics().renderPrometheus(),
                  "metrics");
  if (!MetricsJson.empty())
    writeTextFile(MetricsJson, obs::metrics().renderJson(),
                  "metrics JSON");
  if (!TraceOut.empty())
    writeTextFile(TraceOut,
                  obs::trace().renderChromeTrace(
                      static_cast<int>(getpid()), "dvs-router"),
                  "trace");
  return 0;
}
