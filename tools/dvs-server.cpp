//===- tools/dvs-server.cpp - cdvs-wire network scheduling server ----------===//
//
// Serves the batch DVS-scheduling pipeline over TCP: net::Server
// (src/net) accepts cdvs-wire v1 frames, runs each Request through the
// same SchedulerService dvsd drives, and streams Response frames back
// out of order as jobs finish. --reactors N spreads socket work over N
// event-loop threads (each with its own SO_REUSEPORT listener; handoff
// fallback via --no-reuseport); MILP solving stays on the service's
// worker pool. --shed-high/--shed-hard arm per-reactor overload
// shedding by deadline class, --slow-frame-timeout-ms the slowloris
// guard.
//
// Lifecycle: on start the server prints one JSON line to stdout —
//   {"type":"listening","port":12345,"backend":"epoll",
//    "reactors":4,"reuseport":true}
// — so scripts can scrape the ephemeral port (or use --port-file).
// SIGTERM and SIGINT begin a graceful drain: the listener closes,
// in-flight jobs complete and flush, connections close, and the process
// exits with a final stats record. --max-seconds bounds the lifetime for
// CI runs the same way.
//
// Observability matches dvsd: --metrics-out/--metrics-json snapshot the
// process registry (now including the cdvs_net_* families) after the
// drain; --trace-out captures conn/frame spans as Chrome trace JSON.
//
//===----------------------------------------------------------------------===//

#include "cluster/PeerFill.h"
#include "net/Server.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ArgParse.h"
#include "support/Clock.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include <unistd.h>

using namespace cdvs;

namespace {

net::Server *GServer = nullptr;

void onSignal(int) {
  if (GServer)
    GServer->beginDrain(); // one atomic store + one write(2)
}

bool writeTextFile(const std::string &Path, const std::string &Text,
                   const char *What) {
  std::FILE *F = Path == "-" ? stderr : std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "dvs-server: cannot write %s file '%s'\n", What,
                 Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  if (F != stderr)
    std::fclose(F);
  return true;
}

/// Mirrors the TaskPool's counters into registry gauges (same families
/// dvsd exports) so the metrics snapshot carries queue-pressure data.
void exportPoolStats(const PoolStats &PS) {
  obs::metrics()
      .gauge("cdvs_pool_tasks_submitted", "Tasks handed to the pool")
      .set(static_cast<double>(PS.TasksSubmitted));
  obs::metrics()
      .gauge("cdvs_pool_tasks_executed", "Tasks the pool finished")
      .set(static_cast<double>(PS.TasksExecuted));
  obs::metrics()
      .gauge("cdvs_pool_peak_queue_depth",
             "Deepest the pool's task queue has been")
      .set(static_cast<double>(PS.PeakQueueDepth));
  obs::metrics()
      .gauge("cdvs_pool_task_wait_seconds",
             "Total seconds tasks sat queued before a worker picked "
             "them up")
      .set(PS.TotalWaitSeconds);
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-server",
              "network front end of the DVS-scheduling service: "
              "cdvs-wire v1 requests in, schedules out");
  std::string &Bind =
      P.addString("bind", "127.0.0.1", "address to listen on");
  int &Port = P.addInt("port", 0, "TCP port; 0 picks an ephemeral one");
  int &Reactors = P.addInt(
      "reactors", 1,
      "event-loop (reactor) threads, each with its own SO_REUSEPORT "
      "listener; 0 = one per core");
  bool &NoReusePort = P.addFlag(
      "no-reuseport",
      "use the single-acceptor fd-handoff path even where SO_REUSEPORT "
      "exists");
  int &Threads =
      P.addInt("threads", 0, "pipeline workers; 0 = one per core");
  int &QueueCap = P.addInt("queue", 128, "admission queue capacity");
  int &CacheCap = P.addInt("cache", 512, "result cache entries");
  int &MaxConns =
      P.addInt("max-conns", 256, "connection limit (over it: reject)");
  int &MaxFrameKb =
      P.addInt("max-frame-kb", 1024, "per-frame payload cap in KiB");
  int &IdleMs = P.addInt("idle-timeout-ms", 60000,
                         "close silent connections after this; 0 = off");
  int &ReqMs = P.addInt("request-timeout-ms", 0,
                        "reject requests in flight longer than this; "
                        "0 = off");
  int &SlowMs = P.addInt(
      "slow-frame-timeout-ms", 10000,
      "close connections that sit on a partial frame this long "
      "(slowloris guard); 0 = off");
  int &ShedHigh = P.addInt(
      "shed-high", 0,
      "per-reactor pending-job watermark: at it, lax requests answer "
      "Reject{\"shed\"}; 0 = off");
  int &ShedHard = P.addInt(
      "shed-hard", 0,
      "pending-job watermark past which every request sheds; 0 = "
      "2 * shed-high");
  double &ShedLax = P.addDouble(
      "shed-lax-tightness", 0.5,
      "deadline-tightness boundary of the sheddable (lax) class");
  bool &ForcePoll =
      P.addFlag("poll", "use the portable poll(2) backend, not epoll");
  double &MaxSeconds = P.addDouble(
      "max-seconds", 0.0, "drain and exit after this long; 0 = forever");
  std::string &PortFile = P.addString(
      "port-file", "", "write the bound port here once listening");
  std::string &VerifyArg = P.addString(
      "verify", "off",
      "post-solve static verification: off, warn, or strict");
  std::string &Self = P.addString(
      "self", "",
      "this backend's advertised host:port on the cluster ring");
  std::string &Peers = P.addString(
      "peers", "",
      "comma-separated cluster membership (host:port,...); enables "
      "peer cache fill on local misses (requires --self)");
  int &VNodes = P.addInt(
      "vnodes", 64,
      "consistent-ring virtual nodes per member; must match the "
      "router's --vnodes");
  std::string &MetricsOut = P.addString(
      "metrics-out", "",
      "write Prometheus text metrics here after the drain ('-' = "
      "stderr)");
  std::string &MetricsJson = P.addString(
      "metrics-json", "", "write the metrics registry as JSON here");
  std::string &TraceOut = P.addString(
      "trace-out", "",
      "enable span tracing; write Chrome trace_event JSON here");
  bool &TraceOn = P.addFlag(
      "trace",
      "enable span tracing into the in-memory ring without writing a "
      "file (scrape it live with dvs-stat --scrape)");
  if (!P.parseOrExit(argc, argv))
    return 0;

  net::ServerOptions O;
  O.BindAddress = Bind;
  O.Port = static_cast<uint16_t>(Port);
  O.MaxConnections = static_cast<size_t>(MaxConns < 1 ? 1 : MaxConns);
  O.MaxFrameBytes =
      static_cast<size_t>(MaxFrameKb < 1 ? 1 : MaxFrameKb) * 1024;
  O.IdleTimeoutMs = static_cast<uint64_t>(IdleMs < 0 ? 0 : IdleMs);
  O.RequestTimeoutMs = static_cast<uint64_t>(ReqMs < 0 ? 0 : ReqMs);
  O.SlowFrameTimeoutMs = static_cast<uint64_t>(SlowMs < 0 ? 0 : SlowMs);
  O.Reactors = Reactors;
  O.ForceAcceptHandoff = NoReusePort;
  O.ShedHighWater = static_cast<size_t>(ShedHigh < 0 ? 0 : ShedHigh);
  O.ShedHardWater = static_cast<size_t>(ShedHard < 0 ? 0 : ShedHard);
  O.ShedLaxTightness = ShedLax;
  O.ForcePoll = ForcePoll;
  O.Service.NumWorkers = Threads;
  O.Service.QueueCapacity =
      static_cast<size_t>(QueueCap < 1 ? 1 : QueueCap);
  O.Service.CacheCapacity =
      static_cast<size_t>(CacheCap < 1 ? 1 : CacheCap);
  if (!parseVerifyMode(VerifyArg, O.Service.Verify)) {
    std::fprintf(stderr,
                 "dvs-server: --verify must be off, warn, or strict "
                 "(got '%s')\n",
                 VerifyArg.c_str());
    return 1;
  }

  std::unique_ptr<cluster::PeerFiller> Filler;
  if (!Peers.empty()) {
    if (Self.empty()) {
      std::fprintf(stderr, "dvs-server: --peers requires --self\n");
      return 1;
    }
    ErrorOr<std::vector<cluster::Address>> List =
        cluster::parseAddressList(Peers);
    if (!List) {
      std::fprintf(stderr, "dvs-server: --peers: %s\n",
                   List.message().c_str());
      return 1;
    }
    cluster::PeerFillOptions FO;
    FO.Self = Self;
    for (const cluster::Address &A : *List)
      FO.Peers.push_back(A.name());
    FO.VirtualNodes = VNodes < 1 ? 1 : VNodes;
    Filler = std::make_unique<cluster::PeerFiller>(std::move(FO));
    O.Service.PeerFill = Filler->asFn();
  }

  std::signal(SIGPIPE, SIG_IGN);
  if (!TraceOut.empty() || TraceOn)
    obs::trace().setEnabled(true);
  // Pre-registered so the family exists (at zero) in every scrape even
  // before the trace ring first overwrites.
  obs::metrics().counter(
      "cdvs_trace_dropped_total",
      "Trace events lost to ring-buffer overwrite since process start.");

  net::Server Server(O);
  ErrorOr<bool> Started = Server.start();
  if (!Started) {
    std::fprintf(stderr, "dvs-server: %s\n", Started.message().c_str());
    return 1;
  }

  std::printf("{\"type\":\"listening\",\"port\":%u,\"backend\":\"%s\","
              "\"reactors\":%d,\"reuseport\":%s}\n",
              Server.port(), Server.backendName(), Server.reactors(),
              Server.usingReusePort() ? "true" : "false");
  std::fflush(stdout);
  if (!PortFile.empty())
    writeTextFile(PortFile, std::to_string(Server.port()) + "\n",
                  "port");

  GServer = &Server;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  uint64_t StartNs = monotonicNanos();
  for (;;) {
    if (Server.waitDrained(0.2))
      break;
    if (MaxSeconds > 0.0 &&
        static_cast<double>(monotonicNanos() - StartNs) * 1e-9 >=
            MaxSeconds)
      Server.beginDrain();
  }
  GServer = nullptr;
  net::ServerStats NS = Server.stats();
  ServiceStats SS = Server.service().stats();
  CacheStats CS = Server.service().cacheStats();
  exportPoolStats(Server.service().poolStats());
  Server.stop();

  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"type\":\"stats\",\"accepted\":%ld,\"conn_rejected\":%ld,"
      "\"closed\":%ld,\"frames_in\":%ld,\"frames_out\":%ld,"
      "\"bytes_in\":%lld,\"bytes_out\":%lld,\"rejects\":%ld,"
      "\"protocol_errors\":%ld,\"idle_closes\":%ld,"
      "\"request_timeouts\":%ld,\"read_pauses\":%ld,"
      "\"orphan_completions\":%ld,\"load_sheds\":%ld,"
      "\"slow_frame_closes\":%ld,\"handoff_accepts\":%ld,"
      "\"jobs\":{\"submitted\":%ld,\"completed\":%ld,\"rejected\":%ld,"
      "\"infeasible\":%ld,\"failed\":%ld},"
      "\"cache\":{\"hits\":%ld,\"misses\":%ld},"
      "\"peer\":{\"fills\":%ld,\"fetches\":%ld,\"served\":%ld}}",
      NS.ConnectionsAccepted, NS.ConnectionsRejected,
      NS.ConnectionsClosed, NS.FramesIn, NS.FramesOut, NS.BytesIn,
      NS.BytesOut, NS.RejectsSent, NS.ProtocolErrors, NS.IdleCloses,
      NS.RequestTimeouts, NS.ReadPauses, NS.OrphanCompletions,
      NS.LoadSheds, NS.SlowFrameCloses, NS.HandoffAccepts,
      SS.Submitted, SS.Completed, SS.Rejected, SS.Infeasible, SS.Failed,
      CS.Hits, CS.Misses, SS.PeerFills,
      Filler ? Filler->stats().Fetches : 0L, NS.PeerFetches);
  std::printf("%s\n", Buf);
  std::fflush(stdout);

  if (!MetricsOut.empty())
    writeTextFile(MetricsOut, obs::metrics().renderPrometheus(),
                  "metrics");
  if (!MetricsJson.empty())
    writeTextFile(MetricsJson, obs::metrics().renderJson(),
                  "metrics JSON");
  if (!TraceOut.empty())
    writeTextFile(TraceOut,
                  obs::trace().renderChromeTrace(
                      static_cast<int>(getpid()), "dvs-server"),
                  "trace");
  return 0;
}
