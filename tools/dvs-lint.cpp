//===- tools/dvs-lint.cpp - Static analysis CLI for DVS artifacts ----------===//
//
// Front end of the src/verify static-analysis library. Three ways to run:
//
//   dvs-lint                      lint every bundled workload: collect
//                                 per-mode profiles for every input and
//                                 run the CFG/profile structural pass
//                                 (reachability, flow conservation,
//                                 path/edge consistency, dead edges);
//   dvs-lint --solve              additionally schedule each input and
//                                 run the schedule-legality and MILP
//                                 certificate passes over the result
//                                 (deadline from --tightness, filter
//                                 from --filter);
//   dvs-lint --schedule=FILE --workload=NAME [--input=NAME]
//                                 check one serialized schedule
//                                 (dvs/ScheduleIO format) against the
//                                 named workload's profile;
//   dvs-lint --static             run the static CFG audit (src/analysis:
//                                 reachability, dominators, loop forest,
//                                 irreducibility, frequency intervals,
//                                 scaling-point legality) over every
//                                 workload, cross-checked against each
//                                 input's profile counts;
//   dvs-lint --static --ir=FILE   parse FILE as text IR (ir/Parser
//                                 grammar) and audit that CFG instead;
//                                 parse failures become structured
//                                 diagnostics, never crashes.
//
// --workload=NAME restricts the first two modes to one workload. Every
// diagnostic prints as one `severity: [pass] location: message` line;
// --quiet drops warnings and notes. Exit code: 0 when no errors, 1 when
// any pass drew an error, 2 on usage/input problems.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "dvs/DvsScheduler.h"
#include "dvs/ScheduleIO.h"
#include "ir/Parser.h"
#include "power/VfModel.h"
#include "support/ArgParse.h"
#include "verify/StaticChecker.h"
#include "verify/Verify.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cdvs;

namespace {

struct LintConfig {
  int NumLevels = 0; // 0 = XScale-like 3-mode table
  double Tightness = 0.5;
  double Filter = 0.02;
  double CapacitanceF = 10e-6;
  bool Solve = false;
  bool Quiet = false;
};

ModeTable makeModes(const LintConfig &Cfg) {
  return Cfg.NumLevels == 0
             ? ModeTable::xscale3()
             : ModeTable::evenVoltageLevels(Cfg.NumLevels, 0.7, 1.65,
                                            VfModel::paperDefault());
}

/// Prints \p R under the "workload/input" banner; \returns its error
/// count.
int emitReport(const verify::Report &R, const std::string &Where,
               bool Quiet) {
  for (const verify::Diagnostic &D : R.diagnostics()) {
    if (Quiet && D.Sev != verify::Severity::Error)
      continue;
    std::printf("%s: %s\n", Where.c_str(), D.render().c_str());
  }
  return R.errorCount();
}

/// Lints one workload input: the structural pass, plus schedule +
/// certificate passes with --solve. \returns the error count.
int lintInput(const Workload &W, const WorkloadInput &Input,
              const LintConfig &Cfg) {
  std::string Where = W.Name + "/" + Input.Name;
  ModeTable Modes = makeModes(Cfg);
  Simulator Sim(*W.Fn);
  Input.Setup(Sim);
  Profile P = collectProfile(Sim, Modes);

  int Errors =
      emitReport(verify::checkCfgProfile(*W.Fn, P), Where, Cfg.Quiet);
  if (!Cfg.Solve)
    return Errors;

  std::vector<CategoryProfile> Categories{{P, 1.0}};
  double TFast = P.TotalTimeAtMode.back();
  double TSlow = P.TotalTimeAtMode.front();
  double Deadline = TFast + Cfg.Tightness * (TSlow - TFast);
  TransitionModel Transitions(Cfg.CapacitanceF, 0.9, 1.0);

  DvsOptions O;
  O.FilterThreshold = Cfg.Filter;
  O.InitialMode = static_cast<int>(Modes.size()) - 1;
  O.KeepArtifacts = true;
  DvsScheduler Scheduler(*W.Fn, Categories, Modes, Transitions, O);
  ErrorOr<ScheduleResult> SR = Scheduler.schedule(Deadline);
  if (!SR) {
    std::printf("%s: error: [schedule] solve failed: %s\n",
                Where.c_str(), SR.message().c_str());
    return Errors + 1;
  }

  verify::AuditOptions AOpts;
  AOpts.FilterThreshold = Cfg.Filter;
  AOpts.CheckProfiles = false; // pass 1 already ran above
  verify::Audit A = verify::auditScheduleResult(
      *W.Fn, Categories, Modes, Transitions, *SR, {Deadline}, AOpts);
  Errors += emitReport(A.R, Where, Cfg.Quiet);
  if (!Cfg.Quiet)
    std::printf("%s: note: [certificate] max row violation %.3g, "
                "objective mismatch %.3g J\n",
                Where.c_str(), A.Cert.MaxRowViolation,
                A.Cert.ObjectiveMismatch);
  return Errors;
}

/// Runs the static CFG audit over one workload: analysis once, then a
/// profile cross-check per input. \returns the error count.
int lintStaticWorkload(const Workload &W, const LintConfig &Cfg) {
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(*W.Fn);
  ModeTable Modes = makeModes(Cfg);
  int Errors = 0;
  for (const WorkloadInput &In : W.Inputs) {
    std::string Where = W.Name + "/" + In.Name;
    Simulator Sim(*W.Fn);
    In.Setup(Sim);
    Profile P = collectProfile(Sim, Modes);
    Errors += emitReport(verify::checkStatic(*W.Fn, FA, &P), Where,
                         Cfg.Quiet);
  }
  return Errors;
}

/// Audits a text-IR file: parse errors become diagnostics, a parsed
/// function gets the full static audit without profile data. The
/// caller (main) has already rejected unreadable paths, but the file
/// can still vanish between the probe and here — same structured error.
int lintStaticIrFile(const std::string &Path, const LintConfig &Cfg) {
  std::ifstream In(Path);
  if (!In) {
    std::printf("%s: error: [static] cannot open file\n", Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  ErrorOr<Function> Fn = parseFunction(Buf.str());
  if (!Fn) {
    std::printf("%s: error: [static] parse failed: %s\n", Path.c_str(),
                Fn.message().c_str());
    return 1;
  }
  analysis::FunctionAnalysis FA = analysis::analyzeFunction(*Fn);
  return emitReport(verify::checkStatic(*Fn, FA), Path, Cfg.Quiet);
}

/// Checks one serialized schedule file against a workload input.
int lintScheduleFile(const std::string &Path, const Workload &W,
                     const WorkloadInput &Input, const LintConfig &Cfg) {
  std::string Where = Path + " vs " + W.Name + "/" + Input.Name;
  ModeTable Modes = makeModes(Cfg);
  ErrorOr<ModeAssignment> A =
      readScheduleFile(Path, static_cast<int>(Modes.size()));
  if (!A) {
    std::printf("%s: error: [schedule] %s\n", Where.c_str(),
                A.message().c_str());
    return 1;
  }
  Simulator Sim(*W.Fn);
  Input.Setup(Sim);
  Profile P = collectProfile(Sim, Modes);
  std::vector<CategoryProfile> Categories{{P, 1.0}};
  double TFast = P.TotalTimeAtMode.back();
  double TSlow = P.TotalTimeAtMode.front();
  double Deadline = TFast + Cfg.Tightness * (TSlow - TFast);
  TransitionModel Transitions(Cfg.CapacitanceF, 0.9, 1.0);

  int Errors =
      emitReport(verify::checkCfgProfile(*W.Fn, P), Where, Cfg.Quiet);
  verify::ScheduleCheckOptions SOpts;
  SOpts.FilterThreshold = Cfg.Filter;
  verify::ScheduleCheck SC = verify::checkSchedule(
      *W.Fn, Categories, Modes, Transitions, *A, {Deadline}, SOpts);
  Errors += emitReport(SC.R, Where, Cfg.Quiet);
  if (!Cfg.Quiet && !SC.CategoryTimeSeconds.empty())
    std::printf("%s: note: [schedule] recomputed time %.4f ms, energy "
                "%.3f uJ (deadline %.4f ms)\n",
                Where.c_str(), SC.CategoryTimeSeconds.front() * 1e3,
                SC.EnergyJoules * 1e6, Deadline * 1e3);
  return Errors;
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-lint",
              "static analysis over DVS profiles, schedules, and MILP "
              "solutions");
  std::string &WorkloadName = P.addString(
      "workload", "", "restrict to one workload (default: all)");
  std::string &InputName = P.addString(
      "input", "", "input name for --schedule (default: first input)");
  std::string &SchedulePath = P.addString(
      "schedule", "", "check this serialized schedule file");
  int &Levels = P.addInt(
      "levels", 0, "voltage levels; 0 = the XScale-like 3-mode table");
  double &Tightness = P.addDouble(
      "tightness", 0.5, "deadline between fastest (0) and slowest (1)");
  double &Filter =
      P.addDouble("filter", 0.02, "Section 5.2 edge-filter threshold");
  double &Capacitance = P.addDouble(
      "capacitance", 10e-6, "regulator capacitance in farads");
  bool &Solve = P.addFlag(
      "solve", "schedule each input and certify the MILP solution");
  bool &Static = P.addFlag(
      "static", "run the static CFG audit (reachability, loops, "
                "irreducibility, frequency intervals, scaling points)");
  std::string &IrPath = P.addString(
      "ir", "", "with --static: audit this text-IR file instead of the "
                "bundled workloads");
  bool &Quiet = P.addFlag("quiet", "print errors only");
  if (!P.parseOrExit(argc, argv))
    return 0;

  LintConfig Cfg;
  Cfg.NumLevels = Levels;
  Cfg.Tightness = Tightness;
  Cfg.Filter = Filter;
  Cfg.CapacitanceF = Capacitance;
  Cfg.Solve = Solve;
  Cfg.Quiet = Quiet;
  if (Cfg.Filter < 0.0 || Cfg.Filter >= 1.0) {
    std::fprintf(stderr, "dvs-lint: --filter must be in [0, 1)\n");
    return 2;
  }

  std::vector<Workload> All = allWorkloads();
  const Workload *Selected = nullptr;
  if (!WorkloadName.empty()) {
    for (const Workload &W : All)
      if (W.Name == WorkloadName)
        Selected = &W;
    if (!Selected) {
      std::fprintf(stderr, "dvs-lint: unknown workload '%s'\n",
                   WorkloadName.c_str());
      return 2;
    }
  }

  if (!IrPath.empty() && !Static) {
    std::fprintf(stderr, "dvs-lint: --ir needs --static\n");
    return 2;
  }
  // An unusable --ir path is a usage/input problem (exit 2), caught up
  // front: an empty value (say, an unset shell variable expanding to
  // `--ir=`) used to fall through to the bundled-workload audit and
  // exit 0, and a nonexistent path must never look like a clean audit.
  if (P.wasSet("ir")) {
    if (IrPath.empty()) {
      std::printf("<empty>: error: [static] --ir requires a file path; "
                  "got an empty value\n");
      return 2;
    }
    std::ifstream Probe(IrPath);
    if (!Probe) {
      std::printf("%s: error: [static] cannot open file\n",
                  IrPath.c_str());
      return 2;
    }
  }

  int Errors = 0;
  if (Static) {
    if (!IrPath.empty()) {
      Errors = lintStaticIrFile(IrPath, Cfg);
    } else {
      int Checked = 0;
      for (const Workload &W : All) {
        if (Selected && &W != Selected)
          continue;
        Errors += lintStaticWorkload(W, Cfg);
        ++Checked;
      }
      if (!Cfg.Quiet)
        std::printf("dvs-lint: %d workload(s) statically audited, "
                    "%d error(s)\n",
                    Checked, Errors);
    }
  } else if (!SchedulePath.empty()) {
    if (!Selected) {
      std::fprintf(stderr,
                   "dvs-lint: --schedule needs --workload=NAME\n");
      return 2;
    }
    const WorkloadInput *Input = &Selected->defaultInput();
    if (!InputName.empty()) {
      Input = nullptr;
      for (const WorkloadInput &In : Selected->Inputs)
        if (In.Name == InputName)
          Input = &In;
      if (!Input) {
        std::fprintf(stderr, "dvs-lint: unknown input '%s'\n",
                     InputName.c_str());
        return 2;
      }
    }
    Errors = lintScheduleFile(SchedulePath, *Selected, *Input, Cfg);
  } else {
    int Inputs = 0;
    for (const Workload &W : All) {
      if (Selected && &W != Selected)
        continue;
      for (const WorkloadInput &In : W.Inputs) {
        Errors += lintInput(W, In, Cfg);
        ++Inputs;
      }
    }
    if (!Cfg.Quiet)
      std::printf("dvs-lint: %d input(s) checked, %d error(s)\n", Inputs,
                  Errors);
  }
  return Errors == 0 ? 0 : 1;
}
