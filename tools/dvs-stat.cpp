//===- tools/dvs-stat.cpp - Metrics snapshot pretty-printer ----------------===//
//
// Reads a Prometheus text-exposition snapshot (as written by
// `dvsd --metrics-out=FILE`, or any scrape) and renders it for humans:
// counters and gauges as one aligned table, histograms as another with
// count/sum/mean and interpolated p50/p90/p99.
//
//   dvs-stat metrics.prom            # pretty tables
//   dvs-stat --check metrics.prom    # strict format validation, exit 1
//                                    # on any violation
//   dvs-stat --check --names=scripts/metric_names.txt metrics.prom
//                                    # ...plus: every canonical family
//                                    # name must be present
//
// The checker enforces the parts of the exposition format a scraper
// trips over: metric/label name grammar, TYPE-before-samples, duplicate
// series, histogram bucket cumulativity, the +Inf bucket, and
// _count/+Inf agreement. check.sh gate 4 runs it over a live dvsd
// snapshot so a format regression fails CI, not the dashboard.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace cdvs;

namespace {

/// One parsed sample line: full sample name (with _bucket/_sum/_count
/// suffix intact), sorted label text, and the value.
struct Sample {
  std::string Name;
  std::string Labels; ///< canonical `k="v",...` text, sorted by key
  double Le = 0.0;    ///< `le` bound for _bucket samples
  bool HasLe = false;
  double Value = 0.0;
  int LineNo = 0;
};

/// A metric family: TYPE/HELP metadata plus its samples.
struct Family {
  std::string Type; ///< "counter", "gauge", "histogram", ... ("" = none)
  std::string Help;
  int TypeLine = 0;
  std::vector<Sample> Samples;
};

struct ParseResult {
  /// Family name -> family. Histogram samples are filed under the base
  /// name (without _bucket/_sum/_count).
  std::map<std::string, Family> Families;
  std::vector<std::string> Errors;
  int Lines = 0;
};

bool validMetricName(const std::string &N) {
  if (N.empty())
    return false;
  auto head = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
           C == ':';
  };
  if (!head(N[0]))
    return false;
  for (char C : N)
    if (!head(C) && !std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

bool validLabelName(const std::string &N) {
  if (N.empty() || N[0] == ':')
    return false;
  return validMetricName(N);
}

bool parseValue(const std::string &S, double *Out) {
  if (S == "+Inf" || S == "Inf") {
    *Out = HUGE_VAL;
    return true;
  }
  if (S == "-Inf") {
    *Out = -HUGE_VAL;
    return true;
  }
  if (S == "NaN") {
    *Out = NAN;
    return true;
  }
  char *End = nullptr;
  *Out = std::strtod(S.c_str(), &End);
  return End && *End == '\0' && End != S.c_str();
}

/// Strips a histogram sample suffix; \returns the base family name and
/// sets \p Part to "bucket"/"sum"/"count" (empty for plain samples).
std::string histogramBase(const std::string &Name, std::string *Part) {
  auto ends = [&](const char *Suffix) {
    size_t L = std::strlen(Suffix);
    return Name.size() > L &&
           Name.compare(Name.size() - L, L, Suffix) == 0;
  };
  if (ends("_bucket")) {
    *Part = "bucket";
    return Name.substr(0, Name.size() - 7);
  }
  if (ends("_sum")) {
    *Part = "sum";
    return Name.substr(0, Name.size() - 4);
  }
  if (ends("_count")) {
    *Part = "count";
    return Name.substr(0, Name.size() - 6);
  }
  Part->clear();
  return Name;
}

/// Parses one `{k="v",...}` block into sorted canonical label text.
/// \returns false (with \p Err set) on malformed labels.
bool parseLabels(const std::string &Block, int LineNo, Sample *S,
                 std::string *Err) {
  std::vector<std::pair<std::string, std::string>> Labels;
  size_t I = 0;
  while (I < Block.size()) {
    size_t Eq = Block.find('=', I);
    if (Eq == std::string::npos) {
      *Err = "line " + std::to_string(LineNo) +
             ": label without '=' in {" + Block + "}";
      return false;
    }
    std::string Key = Block.substr(I, Eq - I);
    if (!validLabelName(Key)) {
      *Err = "line " + std::to_string(LineNo) + ": bad label name '" +
             Key + "'";
      return false;
    }
    if (Eq + 1 >= Block.size() || Block[Eq + 1] != '"') {
      *Err = "line " + std::to_string(LineNo) + ": label '" + Key +
             "' value is not quoted";
      return false;
    }
    std::string Value;
    size_t J = Eq + 2;
    for (; J < Block.size() && Block[J] != '"'; ++J) {
      if (Block[J] == '\\' && J + 1 < Block.size())
        ++J; // \" \\ \n escapes: keep the escaped char
      Value += Block[J];
    }
    if (J >= Block.size()) {
      *Err = "line " + std::to_string(LineNo) + ": unterminated label "
             "value for '" + Key + "'";
      return false;
    }
    Labels.emplace_back(Key, Value);
    I = J + 1;
    if (I < Block.size()) {
      if (Block[I] != ',') {
        *Err = "line " + std::to_string(LineNo) +
               ": expected ',' between labels";
        return false;
      }
      ++I;
    }
  }
  std::sort(Labels.begin(), Labels.end());
  std::string Canon;
  for (const auto &[K, V] : Labels) {
    if (K == "le") {
      S->HasLe = true;
      if (!parseValue(V, &S->Le)) {
        *Err = "line " + std::to_string(LineNo) +
               ": unparsable le bound '" + V + "'";
        return false;
      }
      continue; // bucket bound is positional, not identity
    }
    Canon += (Canon.empty() ? "" : ",") + K + "=\"" + V + "\"";
  }
  S->Labels = Canon;
  return true;
}

ParseResult parseExposition(std::FILE *In) {
  ParseResult R;
  char Buf[65536];
  int LineNo = 0;
  std::set<std::string> SeenSeries;
  while (std::fgets(Buf, sizeof(Buf), In)) {
    ++LineNo;
    ++R.Lines;
    std::string Line(Buf);
    while (!Line.empty() &&
           (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    if (Line.empty())
      continue;

    if (Line[0] == '#') {
      // `# HELP <name> <text>` / `# TYPE <name> <type>`; other
      // comments are free-form.
      if (Line.rfind("# HELP ", 0) == 0 ||
          Line.rfind("# TYPE ", 0) == 0) {
        bool IsType = Line[2] == 'T';
        std::string Rest = Line.substr(7);
        size_t Sp = Rest.find(' ');
        std::string Name = Rest.substr(0, Sp);
        std::string Text =
            Sp == std::string::npos ? "" : Rest.substr(Sp + 1);
        if (!validMetricName(Name)) {
          R.Errors.push_back("line " + std::to_string(LineNo) +
                             ": bad metric name '" + Name +
                             "' in metadata");
          continue;
        }
        Family &F = R.Families[Name];
        if (IsType) {
          if (!F.Type.empty())
            R.Errors.push_back("line " + std::to_string(LineNo) +
                               ": duplicate TYPE for '" + Name + "'");
          if (!F.Samples.empty())
            R.Errors.push_back("line " + std::to_string(LineNo) +
                               ": TYPE for '" + Name +
                               "' appears after its samples");
          F.Type = Text;
          F.TypeLine = LineNo;
        } else {
          F.Help = Text;
        }
      }
      continue;
    }

    // Sample: name[{labels}] value
    size_t NameEnd = Line.find_first_of("{ ");
    if (NameEnd == std::string::npos) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": sample has no value");
      continue;
    }
    Sample S;
    S.LineNo = LineNo;
    S.Name = Line.substr(0, NameEnd);
    if (!validMetricName(S.Name)) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": bad metric name '" + S.Name + "'");
      continue;
    }
    size_t ValStart = NameEnd;
    if (Line[NameEnd] == '{') {
      size_t Close = Line.find('}', NameEnd);
      if (Close == std::string::npos) {
        R.Errors.push_back("line " + std::to_string(LineNo) +
                           ": unterminated label block");
        continue;
      }
      std::string Err;
      if (!parseLabels(
              Line.substr(NameEnd + 1, Close - NameEnd - 1), LineNo,
              &S, &Err)) {
        R.Errors.push_back(Err);
        continue;
      }
      ValStart = Close + 1;
    }
    size_t VS = Line.find_first_not_of(' ', ValStart);
    if (VS == std::string::npos) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": sample has no value");
      continue;
    }
    std::string ValText = Line.substr(VS);
    // Trailing timestamp (optional in the format) — split it off.
    size_t Sp = ValText.find(' ');
    if (Sp != std::string::npos)
      ValText = ValText.substr(0, Sp);
    if (!parseValue(ValText, &S.Value)) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": unparsable value '" + ValText + "'");
      continue;
    }

    std::string Part;
    std::string Base = histogramBase(S.Name, &Part);
    bool IsHistPart =
        !Part.empty() && R.Families.count(Base) &&
        R.Families[Base].Type == "histogram";
    std::string FamilyName = IsHistPart ? Base : S.Name;

    std::string SeriesKey = S.Name + "{" + S.Labels + "}";
    if (S.HasLe) {
      char LeKey[32];
      std::snprintf(LeKey, sizeof(LeKey), "|le=%.17g", S.Le);
      SeriesKey += LeKey;
    }
    if (!SeenSeries.insert(SeriesKey).second)
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": duplicate series " + SeriesKey);
    R.Families[FamilyName].Samples.push_back(std::move(S));
  }
  return R;
}

/// Cross-sample histogram checks: per label set, buckets must be
/// cumulative and non-decreasing, end in +Inf, and agree with _count.
void checkHistograms(ParseResult &R) {
  for (auto &[Name, F] : R.Families) {
    if (F.Type != "histogram")
      continue;
    // Group this family's samples by label set.
    std::map<std::string,
             std::vector<const Sample *>> ByLabels;
    for (const Sample &S : F.Samples)
      ByLabels[S.Labels].push_back(&S);
    for (auto &[Labels, Samples] : ByLabels) {
      std::vector<std::pair<double, double>> Buckets; // (le, count)
      double Count = -1.0;
      bool HaveSum = false;
      for (const Sample *S : Samples) {
        std::string Part;
        histogramBase(S->Name, &Part);
        if (Part == "bucket") {
          if (!S->HasLe)
            R.Errors.push_back("line " + std::to_string(S->LineNo) +
                               ": " + Name +
                               "_bucket sample without an le label");
          else
            Buckets.emplace_back(S->Le, S->Value);
        } else if (Part == "count") {
          Count = S->Value;
        } else if (Part == "sum") {
          HaveSum = true;
        }
      }
      std::string Where =
          Name + (Labels.empty() ? "" : "{" + Labels + "}");
      std::sort(Buckets.begin(), Buckets.end());
      for (size_t I = 1; I < Buckets.size(); ++I)
        if (Buckets[I].second < Buckets[I - 1].second)
          R.Errors.push_back(Where + ": bucket counts not cumulative "
                             "(le=" +
                             std::to_string(Buckets[I].first) + ")");
      if (Buckets.empty() || !std::isinf(Buckets.back().first))
        R.Errors.push_back(Where + ": missing +Inf bucket");
      else if (Count >= 0.0 && Buckets.back().second != Count)
        R.Errors.push_back(Where +
                           ": +Inf bucket disagrees with _count");
      if (Count < 0.0)
        R.Errors.push_back(Where + ": missing _count sample");
      if (!HaveSum)
        R.Errors.push_back(Where + ": missing _sum sample");
    }
  }
}

/// Interpolated quantile from cumulative buckets, Prometheus
/// histogram_quantile style. \p Buckets must be (le, cumulative) sorted
/// ascending and end with +Inf.
double bucketQuantile(const std::vector<std::pair<double, double>> &Buckets,
                      double Q) {
  if (Buckets.empty())
    return 0.0;
  double Total = Buckets.back().second;
  if (Total <= 0.0)
    return 0.0;
  double Rank = Q * Total;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    if (Buckets[I].second >= Rank) {
      double Lo = I == 0 ? 0.0 : Buckets[I - 1].first;
      double LoCount = I == 0 ? 0.0 : Buckets[I - 1].second;
      double Hi = Buckets[I].first;
      if (std::isinf(Hi))
        return Lo; // best knowable bound
      double Span = Buckets[I].second - LoCount;
      double Frac = Span > 0.0 ? (Rank - LoCount) / Span : 0.0;
      return Lo + Frac * (Hi - Lo);
    }
  }
  return Buckets.back().first;
}

void prettyPrint(const ParseResult &R) {
  Table Scalars({"metric", "labels", "type", "value"});
  Table Hists({"histogram", "labels", "count", "sum", "mean", "p50",
               "p90", "p99"});
  for (const auto &[Name, F] : R.Families) {
    if (F.Type == "histogram") {
      std::map<std::string,
               std::vector<std::pair<double, double>>> Buckets;
      std::map<std::string, double> Sums;
      for (const Sample &S : F.Samples) {
        std::string Part;
        histogramBase(S.Name, &Part);
        if (Part == "bucket" && S.HasLe)
          Buckets[S.Labels].emplace_back(S.Le, S.Value);
        else if (Part == "sum")
          Sums[S.Labels] = S.Value;
      }
      for (auto &[Labels, B] : Buckets) {
        std::sort(B.begin(), B.end());
        double Count = B.empty() ? 0.0 : B.back().second;
        double Sum = Sums.count(Labels) ? Sums[Labels] : 0.0;
        Hists.addRow(
            {Name, Labels.empty() ? "-" : Labels,
             formatInt(static_cast<long long>(Count)),
             formatDouble(Sum, 6),
             formatDouble(Count > 0.0 ? Sum / Count : 0.0, 6),
             formatDouble(bucketQuantile(B, 0.5), 6),
             formatDouble(bucketQuantile(B, 0.9), 6),
             formatDouble(bucketQuantile(B, 0.99), 6)});
      }
    } else {
      for (const Sample &S : F.Samples)
        Scalars.addRow({Name, S.Labels.empty() ? "-" : S.Labels,
                        F.Type.empty() ? "untyped" : F.Type,
                        formatDouble(S.Value, 6)});
    }
  }
  if (Scalars.numRows()) {
    std::printf("counters and gauges:\n");
    Scalars.print();
  }
  if (Hists.numRows()) {
    std::printf("%shistograms (seconds where latency):\n",
                Scalars.numRows() ? "\n" : "");
    Hists.print();
  }
  if (!Scalars.numRows() && !Hists.numRows())
    std::printf("no metrics found\n");
}

/// Reads the canonical-names file: one family name per line, '#'
/// comments and blanks skipped.
std::vector<std::string> readNamesFile(const std::string &Path,
                                       bool *Ok) {
  std::vector<std::string> Names;
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    std::fprintf(stderr, "dvs-stat: cannot open names file '%s'\n",
                 Path.c_str());
    *Ok = false;
    return Names;
  }
  *Ok = true;
  char Buf[512];
  while (std::fgets(Buf, sizeof(Buf), F)) {
    std::string Line(Buf);
    while (!Line.empty() && std::isspace(static_cast<unsigned char>(
                                Line.back())))
      Line.pop_back();
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    Names.push_back(Line.substr(First));
  }
  std::fclose(F);
  return Names;
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-stat",
              "pretty-print and validate Prometheus metrics snapshots "
              "written by dvsd --metrics-out");
  bool &Check = P.addFlag(
      "check", "validate the exposition format; exit 1 on violations");
  std::string &NamesPath = P.addString(
      "names", "",
      "canonical family-name list; with --check, every listed name "
      "must be present");
  if (!P.parseOrExit(argc, argv))
    return 0;

  std::string Path =
      P.positional().empty() ? "-" : P.positional().front();
  std::FILE *In = stdin;
  if (Path != "-") {
    In = std::fopen(Path.c_str(), "r");
    if (!In) {
      std::fprintf(stderr, "dvs-stat: cannot open '%s'\n",
                   Path.c_str());
      return 1;
    }
  }
  ParseResult R = parseExposition(In);
  if (In != stdin)
    std::fclose(In);

  checkHistograms(R);

  int Missing = 0;
  if (!NamesPath.empty()) {
    bool Ok = true;
    std::vector<std::string> Canonical = readNamesFile(NamesPath, &Ok);
    if (!Ok)
      return 1;
    for (const std::string &Name : Canonical) {
      if (!R.Families.count(Name) ||
          R.Families[Name].Samples.empty()) {
        std::fprintf(stderr,
                     "dvs-stat: canonical metric '%s' is missing\n",
                     Name.c_str());
        ++Missing;
      }
    }
    std::set<std::string> Want(Canonical.begin(), Canonical.end());
    for (const auto &[Name, F] : R.Families)
      if (!F.Samples.empty() && !Want.count(Name))
        std::fprintf(stderr,
                     "dvs-stat: note: metric '%s' is not in '%s'\n",
                     Name.c_str(), NamesPath.c_str());
  }

  if (Check) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "dvs-stat: %s\n", E.c_str());
    size_t Series = 0;
    for (const auto &[Name, F] : R.Families)
      Series += F.Samples.size();
    std::printf("%d lines, %zu families, %zu samples, %zu format "
                "errors, %d missing canonical names\n",
                R.Lines, R.Families.size(), Series, R.Errors.size(),
                Missing);
    return R.Errors.empty() && Missing == 0 ? 0 : 1;
  }

  for (const std::string &E : R.Errors)
    std::fprintf(stderr, "dvs-stat: warning: %s\n", E.c_str());
  prettyPrint(R);
  return 0;
}
