//===- tools/dvs-stat.cpp - Metrics snapshot pretty-printer ----------------===//
//
// Reads a Prometheus text-exposition snapshot (as written by
// `dvsd --metrics-out=FILE`, or any scrape) and renders it for humans:
// counters and gauges as one aligned table, histograms as another with
// count/sum/mean and interpolated p50/p90/p99.
//
//   dvs-stat metrics.prom            # pretty tables
//   dvs-stat --check metrics.prom    # strict format validation, exit 1
//                                    # on any violation
//   dvs-stat --check --names=scripts/metric_names.txt metrics.prom
//                                    # ...plus: every canonical family
//                                    # name must be present
//   dvs-stat --scrape host:p,host:p  # live scrape over cdvs-wire
//   dvs-stat --check a.prom b.prom   # multiple snapshots merge first
//                                    # (identical series sum), then
//                                    # validate as one cluster view
//
// The checker enforces the parts of the exposition format a scraper
// trips over: metric/label name grammar, TYPE-before-samples, duplicate
// series, histogram bucket cumulativity, the +Inf bucket, and
// _count/+Inf agreement. check.sh gate 4 runs it over a live dvsd
// snapshot so a format regression fails CI, not the dashboard.
//
// --scrape sends each endpoint a StatsFetch frame (dvs-server and
// dvs-router both answer with StatsData: metrics, the span-trace ring,
// the router's flight recorder) and merges the answers into one cluster
// view: identical series summed, histograms bucket-wise. --check and
// --names then validate the merged exposition exactly as they would a
// file. A Ping round trip per endpoint measures clock offset (the RTT
// midpoint against the peer's monotonic now_ns), so --merge-trace=FILE
// can assemble every process's spans into a single Chrome trace on one
// timeline — pids and process_name metadata keep the rows attributed.
// The scrape summary JSON line reports per-trace-id span/process counts
// and ring saturation (trace_dropped) for CI gates.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "obs/Metrics.h"
#include "service/JsonLite.h"
#include "support/ArgParse.h"
#include "support/Clock.h"
#include "support/Table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace cdvs;

namespace {

/// One parsed sample line: full sample name (with _bucket/_sum/_count
/// suffix intact), sorted label text, and the value.
struct Sample {
  std::string Name;
  std::string Labels; ///< canonical `k="v",...` text, sorted by key
  double Le = 0.0;    ///< `le` bound for _bucket samples
  bool HasLe = false;
  double Value = 0.0;
  int LineNo = 0;
};

/// A metric family: TYPE/HELP metadata plus its samples.
struct Family {
  std::string Type; ///< "counter", "gauge", "histogram", ... ("" = none)
  std::string Help;
  int TypeLine = 0;
  std::vector<Sample> Samples;
};

struct ParseResult {
  /// Family name -> family. Histogram samples are filed under the base
  /// name (without _bucket/_sum/_count).
  std::map<std::string, Family> Families;
  std::vector<std::string> Errors;
  int Lines = 0;
};

bool validMetricName(const std::string &N) {
  if (N.empty())
    return false;
  auto head = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
           C == ':';
  };
  if (!head(N[0]))
    return false;
  for (char C : N)
    if (!head(C) && !std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

bool validLabelName(const std::string &N) {
  if (N.empty() || N[0] == ':')
    return false;
  return validMetricName(N);
}

bool parseValue(const std::string &S, double *Out) {
  if (S == "+Inf" || S == "Inf") {
    *Out = HUGE_VAL;
    return true;
  }
  if (S == "-Inf") {
    *Out = -HUGE_VAL;
    return true;
  }
  if (S == "NaN") {
    *Out = NAN;
    return true;
  }
  char *End = nullptr;
  *Out = std::strtod(S.c_str(), &End);
  return End && *End == '\0' && End != S.c_str();
}

/// Strips a histogram sample suffix; \returns the base family name and
/// sets \p Part to "bucket"/"sum"/"count" (empty for plain samples).
std::string histogramBase(const std::string &Name, std::string *Part) {
  auto ends = [&](const char *Suffix) {
    size_t L = std::strlen(Suffix);
    return Name.size() > L &&
           Name.compare(Name.size() - L, L, Suffix) == 0;
  };
  if (ends("_bucket")) {
    *Part = "bucket";
    return Name.substr(0, Name.size() - 7);
  }
  if (ends("_sum")) {
    *Part = "sum";
    return Name.substr(0, Name.size() - 4);
  }
  if (ends("_count")) {
    *Part = "count";
    return Name.substr(0, Name.size() - 6);
  }
  Part->clear();
  return Name;
}

/// Parses one `{k="v",...}` block into sorted canonical label text.
/// \returns false (with \p Err set) on malformed labels.
bool parseLabels(const std::string &Block, int LineNo, Sample *S,
                 std::string *Err) {
  std::vector<std::pair<std::string, std::string>> Labels;
  size_t I = 0;
  while (I < Block.size()) {
    size_t Eq = Block.find('=', I);
    if (Eq == std::string::npos) {
      *Err = "line " + std::to_string(LineNo) +
             ": label without '=' in {" + Block + "}";
      return false;
    }
    std::string Key = Block.substr(I, Eq - I);
    if (!validLabelName(Key)) {
      *Err = "line " + std::to_string(LineNo) + ": bad label name '" +
             Key + "'";
      return false;
    }
    if (Eq + 1 >= Block.size() || Block[Eq + 1] != '"') {
      *Err = "line " + std::to_string(LineNo) + ": label '" + Key +
             "' value is not quoted";
      return false;
    }
    std::string Value;
    size_t J = Eq + 2;
    for (; J < Block.size() && Block[J] != '"'; ++J) {
      if (Block[J] == '\\' && J + 1 < Block.size())
        ++J; // \" \\ \n escapes: keep the escaped char
      Value += Block[J];
    }
    if (J >= Block.size()) {
      *Err = "line " + std::to_string(LineNo) + ": unterminated label "
             "value for '" + Key + "'";
      return false;
    }
    Labels.emplace_back(Key, Value);
    I = J + 1;
    if (I < Block.size()) {
      if (Block[I] != ',') {
        *Err = "line " + std::to_string(LineNo) +
               ": expected ',' between labels";
        return false;
      }
      ++I;
    }
  }
  std::sort(Labels.begin(), Labels.end());
  std::string Canon;
  for (const auto &[K, V] : Labels) {
    if (K == "le") {
      S->HasLe = true;
      if (!parseValue(V, &S->Le)) {
        *Err = "line " + std::to_string(LineNo) +
               ": unparsable le bound '" + V + "'";
        return false;
      }
      continue; // bucket bound is positional, not identity
    }
    Canon += (Canon.empty() ? "" : ",") + K + "=\"" + V + "\"";
  }
  S->Labels = Canon;
  return true;
}

ParseResult parseExposition(std::FILE *In) {
  ParseResult R;
  char Buf[65536];
  int LineNo = 0;
  std::set<std::string> SeenSeries;
  while (std::fgets(Buf, sizeof(Buf), In)) {
    ++LineNo;
    ++R.Lines;
    std::string Line(Buf);
    while (!Line.empty() &&
           (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    if (Line.empty())
      continue;

    if (Line[0] == '#') {
      // `# HELP <name> <text>` / `# TYPE <name> <type>`; other
      // comments are free-form.
      if (Line.rfind("# HELP ", 0) == 0 ||
          Line.rfind("# TYPE ", 0) == 0) {
        bool IsType = Line[2] == 'T';
        std::string Rest = Line.substr(7);
        size_t Sp = Rest.find(' ');
        std::string Name = Rest.substr(0, Sp);
        std::string Text =
            Sp == std::string::npos ? "" : Rest.substr(Sp + 1);
        if (!validMetricName(Name)) {
          R.Errors.push_back("line " + std::to_string(LineNo) +
                             ": bad metric name '" + Name +
                             "' in metadata");
          continue;
        }
        Family &F = R.Families[Name];
        if (IsType) {
          if (!F.Type.empty())
            R.Errors.push_back("line " + std::to_string(LineNo) +
                               ": duplicate TYPE for '" + Name + "'");
          if (!F.Samples.empty())
            R.Errors.push_back("line " + std::to_string(LineNo) +
                               ": TYPE for '" + Name +
                               "' appears after its samples");
          F.Type = Text;
          F.TypeLine = LineNo;
        } else {
          F.Help = Text;
        }
      }
      continue;
    }

    // Sample: name[{labels}] value
    size_t NameEnd = Line.find_first_of("{ ");
    if (NameEnd == std::string::npos) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": sample has no value");
      continue;
    }
    Sample S;
    S.LineNo = LineNo;
    S.Name = Line.substr(0, NameEnd);
    if (!validMetricName(S.Name)) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": bad metric name '" + S.Name + "'");
      continue;
    }
    size_t ValStart = NameEnd;
    if (Line[NameEnd] == '{') {
      size_t Close = Line.find('}', NameEnd);
      if (Close == std::string::npos) {
        R.Errors.push_back("line " + std::to_string(LineNo) +
                           ": unterminated label block");
        continue;
      }
      std::string Err;
      if (!parseLabels(
              Line.substr(NameEnd + 1, Close - NameEnd - 1), LineNo,
              &S, &Err)) {
        R.Errors.push_back(Err);
        continue;
      }
      ValStart = Close + 1;
    }
    size_t VS = Line.find_first_not_of(' ', ValStart);
    if (VS == std::string::npos) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": sample has no value");
      continue;
    }
    std::string ValText = Line.substr(VS);
    // Trailing timestamp (optional in the format) — split it off.
    size_t Sp = ValText.find(' ');
    if (Sp != std::string::npos)
      ValText = ValText.substr(0, Sp);
    if (!parseValue(ValText, &S.Value)) {
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": unparsable value '" + ValText + "'");
      continue;
    }

    std::string Part;
    std::string Base = histogramBase(S.Name, &Part);
    bool IsHistPart =
        !Part.empty() && R.Families.count(Base) &&
        R.Families[Base].Type == "histogram";
    std::string FamilyName = IsHistPart ? Base : S.Name;

    std::string SeriesKey = S.Name + "{" + S.Labels + "}";
    if (S.HasLe) {
      char LeKey[32];
      std::snprintf(LeKey, sizeof(LeKey), "|le=%.17g", S.Le);
      SeriesKey += LeKey;
    }
    if (!SeenSeries.insert(SeriesKey).second)
      R.Errors.push_back("line " + std::to_string(LineNo) +
                         ": duplicate series " + SeriesKey);
    R.Families[FamilyName].Samples.push_back(std::move(S));
  }
  return R;
}

/// Cross-sample histogram checks: per label set, buckets must be
/// cumulative and non-decreasing, end in +Inf, and agree with _count.
void checkHistograms(ParseResult &R) {
  for (auto &[Name, F] : R.Families) {
    if (F.Type != "histogram")
      continue;
    // Group this family's samples by label set.
    std::map<std::string,
             std::vector<const Sample *>> ByLabels;
    for (const Sample &S : F.Samples)
      ByLabels[S.Labels].push_back(&S);
    for (auto &[Labels, Samples] : ByLabels) {
      std::vector<std::pair<double, double>> Buckets; // (le, count)
      double Count = -1.0;
      bool HaveSum = false;
      for (const Sample *S : Samples) {
        std::string Part;
        histogramBase(S->Name, &Part);
        if (Part == "bucket") {
          if (!S->HasLe)
            R.Errors.push_back("line " + std::to_string(S->LineNo) +
                               ": " + Name +
                               "_bucket sample without an le label");
          else
            Buckets.emplace_back(S->Le, S->Value);
        } else if (Part == "count") {
          Count = S->Value;
        } else if (Part == "sum") {
          HaveSum = true;
        }
      }
      std::string Where =
          Name + (Labels.empty() ? "" : "{" + Labels + "}");
      std::sort(Buckets.begin(), Buckets.end());
      for (size_t I = 1; I < Buckets.size(); ++I)
        if (Buckets[I].second < Buckets[I - 1].second)
          R.Errors.push_back(Where + ": bucket counts not cumulative "
                             "(le=" +
                             std::to_string(Buckets[I].first) + ")");
      if (Buckets.empty() || !std::isinf(Buckets.back().first))
        R.Errors.push_back(Where + ": missing +Inf bucket");
      else if (Count >= 0.0 && Buckets.back().second != Count)
        R.Errors.push_back(Where +
                           ": +Inf bucket disagrees with _count");
      if (Count < 0.0)
        R.Errors.push_back(Where + ": missing _count sample");
      if (!HaveSum)
        R.Errors.push_back(Where + ": missing _sum sample");
    }
  }
}

void prettyPrint(const ParseResult &R) {
  Table Scalars({"metric", "labels", "type", "value"});
  Table Hists({"histogram", "labels", "count", "sum", "mean", "p50",
               "p90", "p99"});
  for (const auto &[Name, F] : R.Families) {
    if (F.Type == "histogram") {
      std::map<std::string,
               std::vector<std::pair<double, double>>> Buckets;
      std::map<std::string, double> Sums;
      for (const Sample &S : F.Samples) {
        std::string Part;
        histogramBase(S.Name, &Part);
        if (Part == "bucket" && S.HasLe)
          Buckets[S.Labels].emplace_back(S.Le, S.Value);
        else if (Part == "sum")
          Sums[S.Labels] = S.Value;
      }
      for (auto &[Labels, B] : Buckets) {
        std::sort(B.begin(), B.end());
        double Count = B.empty() ? 0.0 : B.back().second;
        double Sum = Sums.count(Labels) ? Sums[Labels] : 0.0;
        Hists.addRow(
            {Name, Labels.empty() ? "-" : Labels,
             formatInt(static_cast<long long>(Count)),
             formatDouble(Sum, 6),
             formatDouble(Count > 0.0 ? Sum / Count : 0.0, 6),
             formatDouble(obs::bucketQuantile(B, 0.5), 6),
             formatDouble(obs::bucketQuantile(B, 0.9), 6),
             formatDouble(obs::bucketQuantile(B, 0.99), 6)});
      }
    } else {
      for (const Sample &S : F.Samples)
        Scalars.addRow({Name, S.Labels.empty() ? "-" : S.Labels,
                        F.Type.empty() ? "untyped" : F.Type,
                        formatDouble(S.Value, 6)});
    }
  }
  if (Scalars.numRows()) {
    std::printf("counters and gauges:\n");
    Scalars.print();
  }
  if (Hists.numRows()) {
    std::printf("%shistograms (seconds where latency):\n",
                Scalars.numRows() ? "\n" : "");
    Hists.print();
  }
  if (!Scalars.numRows() && !Hists.numRows())
    std::printf("no metrics found\n");
}

/// Reads the canonical-names file: one family name per line, '#'
/// comments and blanks skipped.
std::vector<std::string> readNamesFile(const std::string &Path,
                                       bool *Ok) {
  std::vector<std::string> Names;
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    std::fprintf(stderr, "dvs-stat: cannot open names file '%s'\n",
                 Path.c_str());
    *Ok = false;
    return Names;
  }
  *Ok = true;
  char Buf[512];
  while (std::fgets(Buf, sizeof(Buf), F)) {
    std::string Line(Buf);
    while (!Line.empty() && std::isspace(static_cast<unsigned char>(
                                Line.back())))
      Line.pop_back();
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    Names.push_back(Line.substr(First));
  }
  std::fclose(F);
  return Names;
}

//===----------------------------------------------------------------------===//
// Live scraping over cdvs-wire (--scrape)
//===----------------------------------------------------------------------===//

/// Compact re-serialization of a parsed JsonValue (member order is
/// preserved by the parser), used to re-emit trace events after their
/// timestamps are shifted onto the scraper's timeline.
std::string renderJson(const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    return "null";
  case JsonValue::Kind::Bool:
    return V.B ? "true" : "false";
  case JsonValue::Kind::Number: {
    char Buf[40];
    if (V.Num == static_cast<double>(static_cast<long long>(V.Num)))
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(V.Num));
    else
      std::snprintf(Buf, sizeof(Buf), "%.17g", V.Num);
    return Buf;
  }
  case JsonValue::Kind::String:
    return "\"" + jsonEscape(V.Str) + "\"";
  case JsonValue::Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < V.Arr.size(); ++I)
      Out += (I ? "," : "") + renderJson(V.Arr[I]);
    return Out + "]";
  }
  case JsonValue::Kind::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &[Key, Member] : V.Obj) {
      Out += std::string(First ? "" : ",") + "\"" + jsonEscape(Key) +
             "\":" + renderJson(Member);
      First = false;
    }
    return Out + "}";
  }
  }
  return "null";
}

/// Folds \p Src into \p Dst: identical series (same sample name, label
/// set, and bucket bound) sum — counters, bucket counts, and _sums all
/// add, which keeps merged histograms cumulative.
void mergeExposition(ParseResult *Dst, ParseResult &&Src) {
  for (std::string &E : Src.Errors)
    Dst->Errors.push_back(std::move(E));
  Dst->Lines += Src.Lines;
  for (auto &[Name, F] : Src.Families) {
    Family &D = Dst->Families[Name];
    if (D.Type.empty()) {
      D.Type = F.Type;
      D.Help = F.Help;
    }
    for (Sample &S : F.Samples) {
      bool Found = false;
      for (Sample &E : D.Samples) {
        if (E.Name == S.Name && E.Labels == S.Labels &&
            E.HasLe == S.HasLe && (!S.HasLe || E.Le == S.Le)) {
          E.Value += S.Value;
          Found = true;
          break;
        }
      }
      if (!Found)
        D.Samples.push_back(std::move(S));
    }
  }
}

/// One endpoint's StatsData answer, clock-aligned.
struct Scraped {
  std::string Endpoint;
  std::string Role;  ///< "server" or "router"
  double Pid = 0.0;
  /// Added to the endpoint's span timestamps to land them on the
  /// scraper's monotonic timeline: Ping RTT midpoint minus the peer's
  /// Pong now_ns. Zero when the peer predates clock-stamped Pongs.
  double OffsetUs = 0.0;
  double RttUs = 0.0;
  double TraceDropped = 0.0; ///< span-ring saturation
  size_t FlightRecords = 0;  ///< router flight-recorder depth answered
  std::vector<JsonValue> Events; ///< trace events, pid-attributed
};

/// Scrapes one endpoint: a Ping round trip for the clock offset, then
/// StatsFetch. The embedded metrics exposition is parsed and folded
/// into \p Merged; span events ride back in the result.
ErrorOr<Scraped> scrapeEndpoint(const std::string &Endpoint,
                                int TimeoutMs, ParseResult *Merged) {
  size_t Colon = Endpoint.rfind(':');
  if (Colon == std::string::npos || Colon + 1 >= Endpoint.size())
    return Err("bad endpoint '" + Endpoint + "' (want host:port)");
  std::string Host = Endpoint.substr(0, Colon);
  int Port = std::atoi(Endpoint.c_str() + Colon + 1);
  if (Port <= 0 || Port > 65535)
    return Err("bad port in '" + Endpoint + "'");

  net::ClientOptions CO;
  CO.RequestTimeoutMs = TimeoutMs;
  // StatsData carries the whole metrics registry plus two rings — far
  // larger than the default request-frame cap.
  CO.MaxFrameBytes = 64ull * 1024 * 1024;
  ErrorOr<net::Client> C =
      net::Client::connect(Host, static_cast<uint16_t>(Port), CO);
  if (!C)
    return Err(Endpoint + ": " + C.message());

  Scraped S;
  S.Endpoint = Endpoint;

  uint64_t T0 = monotonicNanos();
  ErrorOr<uint64_t> PingCorr = C->ping();
  if (!PingCorr)
    return Err(Endpoint + ": " + PingCorr.message());
  double RemoteNowNs = 0.0;
  for (;;) {
    ErrorOr<net::Frame> F = C->readFrame(TimeoutMs);
    if (!F)
      return Err(Endpoint + ": ping: " + F.message());
    if (F->Type != net::FrameType::Pong ||
        F->Correlation != *PingCorr)
      continue;
    ErrorOr<JsonValue> V = parseJson(F->Payload);
    if (V) {
      const JsonValue *Now = V->find("now_ns");
      if (Now && Now->isNumber())
        RemoteNowNs = Now->Num;
    }
    break;
  }
  uint64_t T1 = monotonicNanos();
  S.RttUs = static_cast<double>(T1 - T0) / 1000.0;
  if (RemoteNowNs > 0.0) {
    double MidNs = static_cast<double>(T0) +
                   static_cast<double>(T1 - T0) / 2.0;
    S.OffsetUs = (MidNs - RemoteNowNs) / 1000.0;
  }

  ErrorOr<uint64_t> Corr = C->sendStatsFetch();
  if (!Corr)
    return Err(Endpoint + ": " + Corr.message());
  for (;;) {
    ErrorOr<net::Frame> F = C->readFrame(TimeoutMs);
    if (!F)
      return Err(Endpoint + ": stats_fetch: " + F.message());
    if (F->Type == net::FrameType::Reject && F->Correlation == *Corr)
      return Err(Endpoint + ": rejected: " + F->Payload);
    if (F->Type != net::FrameType::StatsData ||
        F->Correlation != *Corr)
      continue;
    ErrorOr<JsonValue> V = parseJson(F->Payload);
    if (!V)
      return Err(Endpoint + ": bad StatsData payload: " + V.message());
    if (const JsonValue *Role = V->find("role"))
      S.Role = Role->Str;
    if (const JsonValue *Pid = V->find("pid"))
      S.Pid = Pid->Num;
    if (const JsonValue *D = V->find("trace_dropped"))
      S.TraceDropped = D->Num;
    if (const JsonValue *Fl = V->find("flight"))
      S.FlightRecords = Fl->Arr.size();
    if (const JsonValue *M = V->find("metrics")) {
      if (!M->Str.empty()) {
        std::FILE *Mem = fmemopen(const_cast<char *>(M->Str.data()),
                                  M->Str.size(), "r");
        if (Mem) {
          ParseResult One = parseExposition(Mem);
          std::fclose(Mem);
          for (std::string &E : One.Errors)
            E = Endpoint + ": " + E;
          mergeExposition(Merged, std::move(One));
        }
      }
    }
    if (const JsonValue *T = V->find("trace"))
      if (const JsonValue *Ev = T->find("traceEvents"))
        S.Events = Ev->Arr;
    break;
  }
  return S;
}

/// Writes every endpoint's spans as one Chrome trace, each event's ts
/// shifted by its endpoint's clock offset so the rows share a timeline.
/// The per-process metadata events pass through untouched — that keeps
/// the pid rows named after their roles.
bool writeMergedTrace(const std::string &Path,
                      std::vector<Scraped> &Scrapes) {
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (Scraped &S : Scrapes) {
    for (JsonValue &E : S.Events) {
      const JsonValue *Ph = E.find("ph");
      bool Meta = Ph && Ph->isString() && Ph->Str == "M";
      if (!Meta && E.isObject())
        for (auto &[Key, Member] : E.Obj)
          if (Key == "ts" && Member.isNumber())
            Member.Num += S.OffsetUs;
      Out += (First ? "" : ",") + renderJson(E);
      First = false;
    }
  }
  Out += "]}\n";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "dvs-stat: cannot write trace file '%s'\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  return true;
}

/// One machine-readable summary line for CI gates: total spans, the
/// per-trace-id winner (the trace seen by the most processes), ring
/// saturation, and the per-endpoint breakdown.
void printScrapeSummary(const std::vector<Scraped> &Scrapes) {
  std::map<std::string, std::set<long long>> TracePids;
  std::map<std::string, long> TraceSpans;
  size_t TotalSpans = 0;
  double DroppedTotal = 0.0;
  size_t FlightTotal = 0;
  for (const Scraped &S : Scrapes) {
    DroppedTotal += S.TraceDropped;
    FlightTotal += S.FlightRecords;
    for (const JsonValue &E : S.Events) {
      const JsonValue *Ph = E.find("ph");
      if (Ph && Ph->isString() && Ph->Str == "M")
        continue;
      ++TotalSpans;
      const JsonValue *Tid = E.find("trace_id");
      if (!Tid || !Tid->isString())
        continue;
      const JsonValue *Pid = E.find("pid");
      TracePids[Tid->Str].insert(
          Pid ? static_cast<long long>(Pid->Num) : 0);
      ++TraceSpans[Tid->Str];
    }
  }
  std::string TopId;
  long TopSpans = 0;
  size_t TopProcs = 0;
  for (const auto &[Id, Pids] : TracePids) {
    long Spans = TraceSpans[Id];
    if (Pids.size() > TopProcs ||
        (Pids.size() == TopProcs && Spans > TopSpans)) {
      TopId = Id;
      TopProcs = Pids.size();
      TopSpans = Spans;
    }
  }
  std::printf("{\"tool\":\"dvs-stat\",\"scrape\":{\"endpoints\":%zu,"
              "\"spans\":%zu,\"trace_ids\":%zu,"
              "\"trace_dropped_total\":%.0f,\"flight_records\":%zu,"
              "\"top_trace\":{\"id\":\"%s\",\"spans\":%ld,"
              "\"procs\":%zu}},\"endpoints\":[",
              Scrapes.size(), TotalSpans, TracePids.size(),
              DroppedTotal, FlightTotal, TopId.c_str(), TopSpans,
              TopProcs);
  for (size_t I = 0; I < Scrapes.size(); ++I) {
    const Scraped &S = Scrapes[I];
    size_t Spans = 0;
    for (const JsonValue &E : S.Events) {
      const JsonValue *Ph = E.find("ph");
      if (!(Ph && Ph->isString() && Ph->Str == "M"))
        ++Spans;
    }
    std::printf("%s{\"endpoint\":\"%s\",\"role\":\"%s\",\"pid\":%.0f,"
                "\"offset_us\":%.1f,\"rtt_us\":%.1f,"
                "\"trace_dropped\":%.0f,\"spans\":%zu,\"flight\":%zu}",
                I ? "," : "", S.Endpoint.c_str(), S.Role.c_str(),
                S.Pid, S.OffsetUs, S.RttUs, S.TraceDropped, Spans,
                S.FlightRecords);
  }
  std::printf("]}\n");
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvs-stat",
              "pretty-print and validate Prometheus metrics snapshots "
              "written by dvsd --metrics-out");
  bool &Check = P.addFlag(
      "check", "validate the exposition format; exit 1 on violations");
  std::string &NamesPath = P.addString(
      "names", "",
      "canonical family-name list; with --check, every listed name "
      "must be present");
  std::string &ScrapeArg = P.addString(
      "scrape", "",
      "comma-separated host:port endpoints (dvs-server/dvs-router) to "
      "scrape live over cdvs-wire instead of reading a file; answers "
      "merge into one cluster view");
  std::string &MergeTracePath = P.addString(
      "merge-trace", "",
      "with --scrape: write every endpoint's spans as one "
      "clock-aligned Chrome trace_event JSON file");
  int &ScrapeTimeoutMs = P.addInt(
      "scrape-timeout-ms", 5000,
      "per-frame deadline for --scrape round trips");
  if (!P.parseOrExit(argc, argv))
    return 0;

  ParseResult R;
  std::vector<Scraped> Scrapes;
  if (!ScrapeArg.empty()) {
    size_t Start = 0;
    while (Start <= ScrapeArg.size()) {
      size_t Comma = ScrapeArg.find(',', Start);
      std::string Ep =
          Comma == std::string::npos
              ? ScrapeArg.substr(Start)
              : ScrapeArg.substr(Start, Comma - Start);
      if (!Ep.empty()) {
        ErrorOr<Scraped> S = scrapeEndpoint(
            Ep, ScrapeTimeoutMs < 1 ? 1 : ScrapeTimeoutMs, &R);
        if (!S) {
          std::fprintf(stderr, "dvs-stat: scrape: %s\n",
                       S.message().c_str());
          return 1;
        }
        Scrapes.push_back(std::move(*S));
      }
      if (Comma == std::string::npos)
        break;
      Start = Comma + 1;
    }
    if (Scrapes.empty()) {
      std::fprintf(stderr, "dvs-stat: --scrape lists no endpoints\n");
      return 1;
    }
  } else {
    // Each positional is its own snapshot: parse independently, then
    // merge like --scrape does. Families shared across processes
    // (cdvs_trace_dropped_total lives in every role) would be
    // duplicate-series format errors if the files were concatenated
    // into one exposition instead.
    std::vector<std::string> Paths = P.positional();
    if (Paths.empty())
      Paths.push_back("-");
    for (const std::string &Path : Paths) {
      std::FILE *In = stdin;
      if (Path != "-") {
        In = std::fopen(Path.c_str(), "r");
        if (!In) {
          std::fprintf(stderr, "dvs-stat: cannot open '%s'\n",
                       Path.c_str());
          return 1;
        }
      }
      ParseResult One = parseExposition(In);
      if (In != stdin)
        std::fclose(In);
      if (Paths.size() > 1)
        for (std::string &E : One.Errors)
          E = Path + ": " + E;
      mergeExposition(&R, std::move(One));
    }
  }

  checkHistograms(R);

  int Missing = 0;
  if (!NamesPath.empty()) {
    bool Ok = true;
    std::vector<std::string> Canonical = readNamesFile(NamesPath, &Ok);
    if (!Ok)
      return 1;
    for (const std::string &Name : Canonical) {
      if (!R.Families.count(Name) ||
          R.Families[Name].Samples.empty()) {
        std::fprintf(stderr,
                     "dvs-stat: canonical metric '%s' is missing\n",
                     Name.c_str());
        ++Missing;
      }
    }
    std::set<std::string> Want(Canonical.begin(), Canonical.end());
    for (const auto &[Name, F] : R.Families)
      if (!F.Samples.empty() && !Want.count(Name))
        std::fprintf(stderr,
                     "dvs-stat: note: metric '%s' is not in '%s'\n",
                     Name.c_str(), NamesPath.c_str());
  }

  if (!Scrapes.empty()) {
    if (!MergeTracePath.empty() &&
        !writeMergedTrace(MergeTracePath, Scrapes))
      return 1;
    printScrapeSummary(Scrapes);
  }

  if (Check) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "dvs-stat: %s\n", E.c_str());
    size_t Series = 0;
    for (const auto &[Name, F] : R.Families)
      Series += F.Samples.size();
    std::printf("%d lines, %zu families, %zu samples, %zu format "
                "errors, %d missing canonical names\n",
                R.Lines, R.Families.size(), Series, R.Errors.size(),
                Missing);
    return R.Errors.empty() && Missing == 0 ? 0 : 1;
  }

  for (const std::string &E : R.Errors)
    std::fprintf(stderr, "dvs-stat: warning: %s\n", E.c_str());
  prettyPrint(R);
  return 0;
}
