//===- tools/dvsd.cpp - Batch DVS-scheduling service CLI -------------------===//
//
// Front end of the scheduling service (service/Service.h): reads one
// JSON job request per line from a file or stdin, runs the batch through
// a SchedulerService, and emits one JSON result per line plus a final
// stats record. Request fields (all but "workload" optional):
//
//   {"id": "j1", "workload": "gsm", "input": "speech1",
//    "categories": [{"input": "speech2", "weight": 0.5}, ...],
//    "deadline": 0.0012,        // absolute seconds; wins over tightness
//    "tightness": 0.5,          // 0 = stringent ... 1 = lax
//    "filter": 0.02, "initial_mode": -1, "levels": 0,
//    "capacitance": 1e-5}
//
// Responses carry status, cache provenance (hit / single-flight), the
// instance fingerprint, per-stage latency, and predicted energy; with
// --schedules=DIR each solved schedule is also written to
// DIR/<fingerprint>.cdvs in the ScheduleIO text format. Lines starting
// with '#' and blank lines are skipped. --repeat=N replays the whole
// batch N times (a quick cache demonstration: pass 2+ and watch
// cache_hit flip to true at microsecond latencies).
//
// --verify={off,warn,strict} runs the src/verify static passes over
// every fresh schedule: warn records verify_errors/verify_detail on the
// result line, strict additionally fails jobs whose schedule draws any
// error-severity diagnostic.
//
// --taskgraph switches to the task-graph pipeline: the batch is the
// canned graph instances (taskgraph/Generator.h) instead of request
// lines — narrow it with repeated --graph=NAME options, override
// per-task actual/profiled time factors with repeated
// --actual=TASK=FACTOR options (both repeatable options accept the
// `--opt value` form too), and disable online slack reclamation with
// --static-plan. Result lines are the graph result vocabulary
// (replans, static/actual energy, makespan); with --schedules=DIR each
// plan is written to DIR/<fingerprint>.taskplan in the
// `cdvs-taskplan v1` text format after a parse round trip.
//
// Observability: --metrics-out=FILE writes the process metrics registry
// in Prometheus text exposition format after the batch ('-' = stderr);
// --metrics-json=FILE writes the same registry as JSON; --trace-out=FILE
// enables span tracing for the run and writes Chrome trace_event JSON
// loadable in Perfetto / about:tracing.
//
//===----------------------------------------------------------------------===//

#include "dvs/ScheduleIO.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "service/JobIO.h"
#include "service/Service.h"
#include "support/ArgParse.h"
#include "taskgraph/Generator.h"
#include "taskgraph/PlanIO.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace cdvs;

namespace {

/// Set once a stdout write fails — the consumer closed the pipe (e.g.
/// `dvsd | head`). Result lines stop, but the batch still completes and
/// the final stats record falls back to stderr.
bool StdoutBroken = false;

void emitLine(const std::string &Line) {
  if (StdoutBroken)
    return;
  if (std::printf("%s\n", Line.c_str()) < 0 ||
      std::fflush(stdout) == EOF)
    StdoutBroken = true;
}

/// Writes \p Text to \p Path ('-' = stderr). \returns false (after a
/// diagnostic) when the file cannot be opened.
bool writeTextFile(const std::string &Path, const std::string &Text,
                   const char *What) {
  std::FILE *F = Path == "-" ? stderr : std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "dvsd: cannot write %s file '%s'\n", What,
                 Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  if (F != stderr)
    std::fclose(F);
  return true;
}

/// Mirrors the TaskPool's counters into registry gauges so an exported
/// snapshot carries queue-pressure data without support/ depending on
/// obs/.
void exportPoolStats(const PoolStats &PS) {
  obs::metrics()
      .gauge("cdvs_pool_tasks_submitted", "Tasks handed to the pool")
      .set(static_cast<double>(PS.TasksSubmitted));
  obs::metrics()
      .gauge("cdvs_pool_tasks_executed", "Tasks the pool finished")
      .set(static_cast<double>(PS.TasksExecuted));
  obs::metrics()
      .gauge("cdvs_pool_peak_queue_depth",
             "Deepest the pool's task queue has been")
      .set(static_cast<double>(PS.PeakQueueDepth));
  obs::metrics()
      .gauge("cdvs_pool_task_wait_seconds",
             "Total seconds tasks sat queued before a worker picked "
             "them up")
      .set(PS.TotalWaitSeconds);
}

} // namespace

int main(int argc, char **argv) {
  ArgParser P("dvsd",
              "batch DVS-scheduling service: JSON-lines requests in, "
              "JSON-lines schedules out");
  std::string &RequestsPath = P.addString(
      "requests", "-", "request file; '-' reads stdin");
  int &Threads =
      P.addInt("threads", 0, "pipeline workers; 0 = one per core");
  int &QueueCap = P.addInt("queue", 128, "admission queue capacity");
  int &CacheCap = P.addInt("cache", 512, "result cache entries");
  int &Repeat =
      P.addInt("repeat", 1, "times to replay the whole batch");
  std::string &SchedulesDir = P.addString(
      "schedules", "", "directory for <fingerprint>.cdvs schedule files");
  bool &Quiet =
      P.addFlag("quiet", "suppress per-job lines; print only stats");
  std::string &MetricsOut = P.addString(
      "metrics-out", "",
      "write Prometheus text metrics here after the batch ('-' = "
      "stderr)");
  std::string &MetricsJson = P.addString(
      "metrics-json", "", "write the metrics registry as JSON here");
  std::string &TraceOut = P.addString(
      "trace-out", "",
      "enable span tracing; write Chrome trace_event JSON here (load "
      "in Perfetto)");
  std::string &VerifyArg = P.addString(
      "verify", "off",
      "post-solve static verification: off, warn (record findings), or "
      "strict (fail jobs with errors)");
  std::string &PresolveArg = P.addString(
      "presolve", "on",
      "certified MILP presolve: on (analyze + reduce, schedules stay "
      "byte-identical) or off (solve the full instance)");
  bool &TaskGraphMode = P.addFlag(
      "taskgraph",
      "run the canned task-graph batch instead of request lines");
  std::vector<std::string> &GraphNames = P.addStringList(
      "graph", "with --taskgraph: run only this canned graph (repeat "
               "for several)");
  std::vector<std::string> &ActualOverrides = P.addStringList(
      "actual", "with --taskgraph: override a task's actual/profiled "
                "time factor as TASK=FACTOR (repeatable)");
  bool &StaticPlanOnly = P.addFlag(
      "static-plan",
      "with --taskgraph: disable online slack reclamation (no re-plans)");
  if (!P.parseOrExit(argc, argv))
    return 0;
  VerifyMode Verify = VerifyMode::Off;
  if (!parseVerifyMode(VerifyArg, Verify)) {
    std::fprintf(stderr,
                 "dvsd: --verify must be off, warn, or strict (got "
                 "'%s')\n",
                 VerifyArg.c_str());
    return 1;
  }
  if (PresolveArg != "on" && PresolveArg != "off") {
    std::fprintf(stderr,
                 "dvsd: --presolve must be on or off (got '%s')\n",
                 PresolveArg.c_str());
    return 1;
  }
  if (!P.positional().empty())
    RequestsPath = P.positional().front();

  // A consumer that stops reading (head, a closed socket) must not kill
  // the batch mid-flight; writes fail with EPIPE instead and emitLine
  // degrades gracefully.
  std::signal(SIGPIPE, SIG_IGN);

  if (!TraceOut.empty())
    obs::trace().setEnabled(true);

  std::vector<JobRequest> Batch;
  int ParseErrors = 0;
  if (TaskGraphMode) {
    // The batch is canned graph instances, not request lines.
    std::vector<taskgraph::TaskGraph> Graphs;
    if (GraphNames.empty()) {
      Graphs = taskgraph::cannedTaskGraphs();
    } else {
      for (const std::string &Name : GraphNames) {
        ErrorOr<taskgraph::TaskGraph> G = taskgraph::cannedTaskGraph(Name);
        if (!G) {
          std::fprintf(stderr, "dvsd: %s\n", G.message().c_str());
          return 1;
        }
        Graphs.push_back(std::move(*G));
      }
    }
    for (const std::string &Ov : ActualOverrides) {
      size_t Eq = Ov.find('=');
      char *End = nullptr;
      double Factor =
          Eq == std::string::npos
              ? 0.0
              : std::strtod(Ov.c_str() + Eq + 1, &End);
      if (Eq == std::string::npos || Eq == 0 || End == nullptr ||
          *End != '\0' || !(Factor > 0.0)) {
        std::fprintf(stderr,
                     "dvsd: --actual wants TASK=FACTOR with a positive "
                     "factor (got '%s')\n",
                     Ov.c_str());
        return 1;
      }
      std::string Task = Ov.substr(0, Eq);
      bool Matched = false;
      for (taskgraph::TaskGraph &G : Graphs)
        for (taskgraph::TaskNode &N : G.Nodes)
          if (N.Name == Task) {
            N.ActualFactor = Factor;
            Matched = true;
          }
      if (!Matched) {
        std::fprintf(stderr,
                     "dvsd: --actual=%s matches no task in the selected "
                     "graphs\n",
                     Ov.c_str());
        return 1;
      }
    }
    for (taskgraph::TaskGraph &G : Graphs) {
      JobRequest R;
      R.Id = G.Name;
      R.GraphReplan = !StaticPlanOnly;
      R.Graph =
          std::make_shared<const taskgraph::TaskGraph>(std::move(G));
      Batch.push_back(std::move(R));
    }
  } else {
  std::FILE *In = stdin;
  if (RequestsPath != "-") {
    In = std::fopen(RequestsPath.c_str(), "r");
    if (!In) {
      std::fprintf(stderr, "dvsd: cannot open '%s'\n",
                   RequestsPath.c_str());
      return 1;
    }
  }

  // Parse the whole request batch up front; malformed lines become
  // immediate per-line error records, not fatal errors.
  std::string Line;
  int LineNo = 0;
  char Buf[16384];
  while (std::fgets(Buf, sizeof(Buf), In)) {
    ++LineNo;
    Line = Buf;
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    ErrorOr<JsonValue> V = parseJson(Line);
    ErrorOr<JobRequest> R =
        V ? jobRequestFromJson(*V) : ErrorOr<JobRequest>(Err(V.message()));
    if (!R) {
      emitLine("{\"line\":" + std::to_string(LineNo) +
               ",\"status\":\"parse_error\",\"reason\":\"" +
               jsonEscape(R.message()) + "\"}");
      ++ParseErrors;
      continue;
    }
    if (R->Id.empty())
      R->Id = "line" + std::to_string(LineNo);
    Batch.push_back(std::move(*R));
  }
  if (In != stdin)
    std::fclose(In);
  }

  ServiceOptions O;
  O.NumWorkers = Threads;
  O.QueueCapacity = static_cast<size_t>(QueueCap < 1 ? 1 : QueueCap);
  O.CacheCapacity = static_cast<size_t>(CacheCap < 1 ? 1 : CacheCap);
  O.Verify = Verify;
  O.Presolve = PresolveArg == "on";
  SchedulerService Service(O);

  long Done = 0, NotDone = ParseErrors;
  for (int Round = 0; Round < (Repeat < 1 ? 1 : Repeat); ++Round) {
    std::vector<JobResult> Results = Service.runBatch(Batch);
    for (const JobResult &R : Results) {
      std::string ScheduleFile;
      if (!SchedulesDir.empty() && R.Status == JobStatus::Done &&
          R.Replans >= 0) {
        // Graph plans round-trip through the taskplan parser (so a
        // malformed emission fails loudly here) and land verbatim.
        ScheduleFile = SchedulesDir + "/" + R.Fingerprint + ".taskplan";
        ErrorOr<taskgraph::OnlineResult> Plan =
            taskgraph::readTaskPlan(R.ScheduleText);
        bool Wrote = false;
        if (Plan) {
          if (std::FILE *F = std::fopen(ScheduleFile.c_str(), "w")) {
            Wrote = std::fwrite(R.ScheduleText.data(), 1,
                                R.ScheduleText.size(), F) ==
                    R.ScheduleText.size();
            std::fclose(F);
          }
          if (!Wrote)
            std::fprintf(stderr, "dvsd: cannot write '%s'\n",
                         ScheduleFile.c_str());
        } else {
          std::fprintf(stderr, "dvsd: %s\n", Plan.message().c_str());
        }
        if (!Wrote)
          ScheduleFile.clear();
      } else if (!SchedulesDir.empty() && R.Status == JobStatus::Done) {
        ScheduleFile = SchedulesDir + "/" + R.Fingerprint + ".cdvs";
        ErrorOr<ModeAssignment> A = readSchedule(R.ScheduleText);
        ErrorOr<bool> Wrote =
            A ? writeScheduleFile(ScheduleFile, *A)
              : ErrorOr<bool>(Err(A.message()));
        if (!Wrote) {
          std::fprintf(stderr, "dvsd: %s\n", Wrote.message().c_str());
          ScheduleFile.clear();
        }
      }
      (R.Status == JobStatus::Done ? Done : NotDone) += 1;
      if (!Quiet)
        emitLine(jobResultToJson(R, /*IncludeSchedule=*/false,
                                 ScheduleFile));
    }
  }

  ServiceStats S = Service.stats();
  CacheStats C = Service.cacheStats();
  exportPoolStats(Service.poolStats());

  char StatsBuf[1024];
  std::snprintf(
      StatsBuf, sizeof(StatsBuf),
      "{\"type\":\"stats\",\"submitted\":%ld,\"completed\":%ld,"
      "\"rejected\":%ld,\"infeasible\":%ld,\"failed\":%ld,"
      "\"parse_errors\":%d,\"peak_queue_depth\":%zu,"
      "\"verify_failures\":%ld,"
      "\"cache\":{\"hits\":%ld,\"misses\":%ld,"
      "\"shared_flights\":%ld,\"evictions\":%ld,\"entries\":%zu},"
      "\"profile_cache\":{\"hits\":%ld,\"misses\":%ld}}",
      S.Submitted, S.Completed, S.Rejected, S.Infeasible, S.Failed,
      ParseErrors, S.PeakQueueDepth, S.VerifyFailures, C.Hits, C.Misses,
      C.SharedFlights, C.Evictions, C.Entries, S.ProfileCacheHits,
      S.ProfileCacheMisses);
  // The aggregate record is the batch's receipt; when the consumer hung
  // up early it still lands on stderr instead of vanishing.
  emitLine(StatsBuf);
  if (StdoutBroken)
    std::fprintf(stderr, "%s\n", StatsBuf);

  if (!MetricsOut.empty())
    writeTextFile(MetricsOut, obs::metrics().renderPrometheus(),
                  "metrics");
  if (!MetricsJson.empty())
    writeTextFile(MetricsJson, obs::metrics().renderJson(),
                  "metrics JSON");
  if (!TraceOut.empty())
    writeTextFile(TraceOut, obs::trace().renderChromeTrace(), "trace");

  // Any rejected job means the batch was not fully served — surface
  // that in the exit code so scripted callers notice backpressure. A
  // verification failure is never tolerated: an audited-bad schedule
  // must fail the batch even when other jobs completed.
  if (S.Rejected > 0 || S.VerifyFailures > 0)
    return 1;
  return NotDone == 0 ? 0 : (Done > 0 ? 0 : 1);
}
