# Empty dependencies file for bench_fig8_fig9_fig10_fig11.
# This may be replaced when dependencies are built.
