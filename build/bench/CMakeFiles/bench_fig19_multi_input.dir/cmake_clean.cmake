file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_multi_input.dir/bench_fig19_multi_input.cpp.o"
  "CMakeFiles/bench_fig19_multi_input.dir/bench_fig19_multi_input.cpp.o.d"
  "bench_fig19_multi_input"
  "bench_fig19_multi_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_multi_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
