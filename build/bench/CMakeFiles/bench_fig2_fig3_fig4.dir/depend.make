# Empty dependencies file for bench_fig2_fig3_fig4.
# This may be replaced when dependencies are built.
