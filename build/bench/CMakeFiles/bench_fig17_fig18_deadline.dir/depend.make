# Empty dependencies file for bench_fig17_fig18_deadline.
# This may be replaced when dependencies are built.
