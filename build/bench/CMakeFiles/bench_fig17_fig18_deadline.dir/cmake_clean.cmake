file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_fig18_deadline.dir/bench_fig17_fig18_deadline.cpp.o"
  "CMakeFiles/bench_fig17_fig18_deadline.dir/bench_fig17_fig18_deadline.cpp.o.d"
  "bench_fig17_fig18_deadline"
  "bench_fig17_fig18_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_fig18_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
