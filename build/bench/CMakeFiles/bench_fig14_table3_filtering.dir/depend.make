# Empty dependencies file for bench_fig14_table3_filtering.
# This may be replaced when dependencies are built.
