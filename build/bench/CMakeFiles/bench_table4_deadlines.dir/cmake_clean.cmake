file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_deadlines.dir/bench_table4_deadlines.cpp.o"
  "CMakeFiles/bench_table4_deadlines.dir/bench_table4_deadlines.cpp.o.d"
  "bench_table4_deadlines"
  "bench_table4_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
