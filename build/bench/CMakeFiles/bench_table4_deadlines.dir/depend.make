# Empty dependencies file for bench_table4_deadlines.
# This may be replaced when dependencies are built.
