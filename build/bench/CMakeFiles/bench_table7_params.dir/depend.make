# Empty dependencies file for bench_table7_params.
# This may be replaced when dependencies are built.
