file(REMOVE_RECURSE
  "CMakeFiles/bench_path_context.dir/bench_path_context.cpp.o"
  "CMakeFiles/bench_path_context.dir/bench_path_context.cpp.o.d"
  "bench_path_context"
  "bench_path_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
