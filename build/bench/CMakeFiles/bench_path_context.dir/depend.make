# Empty dependencies file for bench_path_context.
# This may be replaced when dependencies are built.
