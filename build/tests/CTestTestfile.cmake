# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/dvs_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
