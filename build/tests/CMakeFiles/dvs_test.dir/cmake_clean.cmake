file(REMOVE_RECURSE
  "CMakeFiles/dvs_test.dir/dvs/BaselinesTest.cpp.o"
  "CMakeFiles/dvs_test.dir/dvs/BaselinesTest.cpp.o.d"
  "CMakeFiles/dvs_test.dir/dvs/DvsSchedulerTest.cpp.o"
  "CMakeFiles/dvs_test.dir/dvs/DvsSchedulerTest.cpp.o.d"
  "CMakeFiles/dvs_test.dir/dvs/LpDumpTest.cpp.o"
  "CMakeFiles/dvs_test.dir/dvs/LpDumpTest.cpp.o.d"
  "CMakeFiles/dvs_test.dir/dvs/PathSchedulerTest.cpp.o"
  "CMakeFiles/dvs_test.dir/dvs/PathSchedulerTest.cpp.o.d"
  "CMakeFiles/dvs_test.dir/dvs/ScheduleIOTest.cpp.o"
  "CMakeFiles/dvs_test.dir/dvs/ScheduleIOTest.cpp.o.d"
  "dvs_test"
  "dvs_test.pdb"
  "dvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
