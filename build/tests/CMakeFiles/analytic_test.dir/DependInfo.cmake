
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytic/AnalyticModelTest.cpp" "tests/CMakeFiles/analytic_test.dir/analytic/AnalyticModelTest.cpp.o" "gcc" "tests/CMakeFiles/analytic_test.dir/analytic/AnalyticModelTest.cpp.o.d"
  "/root/repo/tests/analytic/AnalyticPropertyTest.cpp" "tests/CMakeFiles/analytic_test.dir/analytic/AnalyticPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/analytic_test.dir/analytic/AnalyticPropertyTest.cpp.o.d"
  "/root/repo/tests/analytic/SingleSettingTest.cpp" "tests/CMakeFiles/analytic_test.dir/analytic/SingleSettingTest.cpp.o" "gcc" "tests/CMakeFiles/analytic_test.dir/analytic/SingleSettingTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytic/CMakeFiles/cdvs_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cdvs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
