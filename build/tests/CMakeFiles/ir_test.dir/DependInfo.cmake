
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/FunctionTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/FunctionTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/FunctionTest.cpp.o.d"
  "/root/repo/tests/ir/ParserTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ParserTest.cpp.o.d"
  "/root/repo/tests/ir/PassesTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/PassesTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/PassesTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cdvs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cdvs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cdvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cdvs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
