
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lp/LpProblemTest.cpp" "tests/CMakeFiles/lp_test.dir/lp/LpProblemTest.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/LpProblemTest.cpp.o.d"
  "/root/repo/tests/lp/LpWriterTest.cpp" "tests/CMakeFiles/lp_test.dir/lp/LpWriterTest.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/LpWriterTest.cpp.o.d"
  "/root/repo/tests/lp/SimplexPropertyTest.cpp" "tests/CMakeFiles/lp_test.dir/lp/SimplexPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/SimplexPropertyTest.cpp.o.d"
  "/root/repo/tests/lp/SimplexRegressionTest.cpp" "tests/CMakeFiles/lp_test.dir/lp/SimplexRegressionTest.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/SimplexRegressionTest.cpp.o.d"
  "/root/repo/tests/lp/SimplexTest.cpp" "tests/CMakeFiles/lp_test.dir/lp/SimplexTest.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/SimplexTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/cdvs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
