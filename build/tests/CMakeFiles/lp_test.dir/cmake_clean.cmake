file(REMOVE_RECURSE
  "CMakeFiles/lp_test.dir/lp/LpProblemTest.cpp.o"
  "CMakeFiles/lp_test.dir/lp/LpProblemTest.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/LpWriterTest.cpp.o"
  "CMakeFiles/lp_test.dir/lp/LpWriterTest.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/SimplexPropertyTest.cpp.o"
  "CMakeFiles/lp_test.dir/lp/SimplexPropertyTest.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/SimplexRegressionTest.cpp.o"
  "CMakeFiles/lp_test.dir/lp/SimplexRegressionTest.cpp.o.d"
  "CMakeFiles/lp_test.dir/lp/SimplexTest.cpp.o"
  "CMakeFiles/lp_test.dir/lp/SimplexTest.cpp.o.d"
  "lp_test"
  "lp_test.pdb"
  "lp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
