file(REMOVE_RECURSE
  "CMakeFiles/milp_test.dir/milp/MilpPropertyTest.cpp.o"
  "CMakeFiles/milp_test.dir/milp/MilpPropertyTest.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/MilpTest.cpp.o"
  "CMakeFiles/milp_test.dir/milp/MilpTest.cpp.o.d"
  "milp_test"
  "milp_test.pdb"
  "milp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
