
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/PipelineTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/PipelineTest.cpp.o.d"
  "/root/repo/tests/integration/RandomProgramTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/RandomProgramTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/RandomProgramTest.cpp.o.d"
  "/root/repo/tests/integration/SensitivityTest.cpp" "tests/CMakeFiles/integration_test.dir/integration/SensitivityTest.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/SensitivityTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dvs/CMakeFiles/cdvs_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/cdvs_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cdvs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/cdvs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cdvs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/cdvs_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cdvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cdvs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdvs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
