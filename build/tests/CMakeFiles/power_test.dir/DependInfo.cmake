
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power/ModeTableTest.cpp" "tests/CMakeFiles/power_test.dir/power/ModeTableTest.cpp.o" "gcc" "tests/CMakeFiles/power_test.dir/power/ModeTableTest.cpp.o.d"
  "/root/repo/tests/power/TransitionModelTest.cpp" "tests/CMakeFiles/power_test.dir/power/TransitionModelTest.cpp.o" "gcc" "tests/CMakeFiles/power_test.dir/power/TransitionModelTest.cpp.o.d"
  "/root/repo/tests/power/VfModelTest.cpp" "tests/CMakeFiles/power_test.dir/power/VfModelTest.cpp.o" "gcc" "tests/CMakeFiles/power_test.dir/power/VfModelTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/cdvs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
