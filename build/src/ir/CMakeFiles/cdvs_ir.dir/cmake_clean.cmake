file(REMOVE_RECURSE
  "CMakeFiles/cdvs_ir.dir/Function.cpp.o"
  "CMakeFiles/cdvs_ir.dir/Function.cpp.o.d"
  "CMakeFiles/cdvs_ir.dir/Parser.cpp.o"
  "CMakeFiles/cdvs_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/cdvs_ir.dir/Passes.cpp.o"
  "CMakeFiles/cdvs_ir.dir/Passes.cpp.o.d"
  "libcdvs_ir.a"
  "libcdvs_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
