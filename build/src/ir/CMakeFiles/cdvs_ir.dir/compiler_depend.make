# Empty compiler generated dependencies file for cdvs_ir.
# This may be replaced when dependencies are built.
