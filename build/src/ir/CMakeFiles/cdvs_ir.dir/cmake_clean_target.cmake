file(REMOVE_RECURSE
  "libcdvs_ir.a"
)
