file(REMOVE_RECURSE
  "CMakeFiles/cdvs_sim.dir/Cache.cpp.o"
  "CMakeFiles/cdvs_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/cdvs_sim.dir/Simulator.cpp.o"
  "CMakeFiles/cdvs_sim.dir/Simulator.cpp.o.d"
  "libcdvs_sim.a"
  "libcdvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
