file(REMOVE_RECURSE
  "libcdvs_sim.a"
)
