# Empty dependencies file for cdvs_sim.
# This may be replaced when dependencies are built.
