file(REMOVE_RECURSE
  "CMakeFiles/cdvs_profile.dir/Profile.cpp.o"
  "CMakeFiles/cdvs_profile.dir/Profile.cpp.o.d"
  "libcdvs_profile.a"
  "libcdvs_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
