file(REMOVE_RECURSE
  "libcdvs_profile.a"
)
