# Empty compiler generated dependencies file for cdvs_profile.
# This may be replaced when dependencies are built.
