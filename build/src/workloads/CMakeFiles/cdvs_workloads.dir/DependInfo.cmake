
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Adpcm.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/Adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/Adpcm.cpp.o.d"
  "/root/repo/src/workloads/AllWorkloads.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/AllWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/AllWorkloads.cpp.o.d"
  "/root/repo/src/workloads/Epic.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/Epic.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/Epic.cpp.o.d"
  "/root/repo/src/workloads/Ghostscript.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/Ghostscript.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/Ghostscript.cpp.o.d"
  "/root/repo/src/workloads/Gsm.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/Gsm.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/Gsm.cpp.o.d"
  "/root/repo/src/workloads/MpegDecode.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/MpegDecode.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/MpegDecode.cpp.o.d"
  "/root/repo/src/workloads/Mpg123.cpp" "src/workloads/CMakeFiles/cdvs_workloads.dir/Mpg123.cpp.o" "gcc" "src/workloads/CMakeFiles/cdvs_workloads.dir/Mpg123.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cdvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdvs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cdvs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
