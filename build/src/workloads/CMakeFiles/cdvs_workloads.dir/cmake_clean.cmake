file(REMOVE_RECURSE
  "CMakeFiles/cdvs_workloads.dir/Adpcm.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/Adpcm.cpp.o.d"
  "CMakeFiles/cdvs_workloads.dir/AllWorkloads.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/AllWorkloads.cpp.o.d"
  "CMakeFiles/cdvs_workloads.dir/Epic.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/Epic.cpp.o.d"
  "CMakeFiles/cdvs_workloads.dir/Ghostscript.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/Ghostscript.cpp.o.d"
  "CMakeFiles/cdvs_workloads.dir/Gsm.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/Gsm.cpp.o.d"
  "CMakeFiles/cdvs_workloads.dir/MpegDecode.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/MpegDecode.cpp.o.d"
  "CMakeFiles/cdvs_workloads.dir/Mpg123.cpp.o"
  "CMakeFiles/cdvs_workloads.dir/Mpg123.cpp.o.d"
  "libcdvs_workloads.a"
  "libcdvs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
