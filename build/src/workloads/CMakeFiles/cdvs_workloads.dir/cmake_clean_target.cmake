file(REMOVE_RECURSE
  "libcdvs_workloads.a"
)
