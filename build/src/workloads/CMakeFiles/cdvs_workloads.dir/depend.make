# Empty dependencies file for cdvs_workloads.
# This may be replaced when dependencies are built.
