file(REMOVE_RECURSE
  "libcdvs_support.a"
)
