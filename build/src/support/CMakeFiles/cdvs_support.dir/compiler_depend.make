# Empty compiler generated dependencies file for cdvs_support.
# This may be replaced when dependencies are built.
