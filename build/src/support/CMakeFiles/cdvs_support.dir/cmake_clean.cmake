file(REMOVE_RECURSE
  "CMakeFiles/cdvs_support.dir/Numeric.cpp.o"
  "CMakeFiles/cdvs_support.dir/Numeric.cpp.o.d"
  "CMakeFiles/cdvs_support.dir/Table.cpp.o"
  "CMakeFiles/cdvs_support.dir/Table.cpp.o.d"
  "libcdvs_support.a"
  "libcdvs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
