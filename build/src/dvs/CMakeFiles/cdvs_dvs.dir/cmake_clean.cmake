file(REMOVE_RECURSE
  "CMakeFiles/cdvs_dvs.dir/Baselines.cpp.o"
  "CMakeFiles/cdvs_dvs.dir/Baselines.cpp.o.d"
  "CMakeFiles/cdvs_dvs.dir/DvsScheduler.cpp.o"
  "CMakeFiles/cdvs_dvs.dir/DvsScheduler.cpp.o.d"
  "CMakeFiles/cdvs_dvs.dir/PathScheduler.cpp.o"
  "CMakeFiles/cdvs_dvs.dir/PathScheduler.cpp.o.d"
  "CMakeFiles/cdvs_dvs.dir/ScheduleIO.cpp.o"
  "CMakeFiles/cdvs_dvs.dir/ScheduleIO.cpp.o.d"
  "libcdvs_dvs.a"
  "libcdvs_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
