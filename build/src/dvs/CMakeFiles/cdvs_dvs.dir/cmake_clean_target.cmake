file(REMOVE_RECURSE
  "libcdvs_dvs.a"
)
