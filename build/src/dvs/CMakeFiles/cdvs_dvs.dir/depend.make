# Empty dependencies file for cdvs_dvs.
# This may be replaced when dependencies are built.
