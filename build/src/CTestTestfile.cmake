# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("power")
subdirs("lp")
subdirs("milp")
subdirs("ir")
subdirs("sim")
subdirs("profile")
subdirs("analytic")
subdirs("dvs")
subdirs("workloads")
