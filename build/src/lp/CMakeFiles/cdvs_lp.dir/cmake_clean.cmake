file(REMOVE_RECURSE
  "CMakeFiles/cdvs_lp.dir/LpProblem.cpp.o"
  "CMakeFiles/cdvs_lp.dir/LpProblem.cpp.o.d"
  "CMakeFiles/cdvs_lp.dir/LpWriter.cpp.o"
  "CMakeFiles/cdvs_lp.dir/LpWriter.cpp.o.d"
  "CMakeFiles/cdvs_lp.dir/SimplexSolver.cpp.o"
  "CMakeFiles/cdvs_lp.dir/SimplexSolver.cpp.o.d"
  "libcdvs_lp.a"
  "libcdvs_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
