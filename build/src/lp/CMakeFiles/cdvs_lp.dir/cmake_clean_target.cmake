file(REMOVE_RECURSE
  "libcdvs_lp.a"
)
