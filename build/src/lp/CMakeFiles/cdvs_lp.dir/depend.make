# Empty dependencies file for cdvs_lp.
# This may be replaced when dependencies are built.
