
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/LpProblem.cpp" "src/lp/CMakeFiles/cdvs_lp.dir/LpProblem.cpp.o" "gcc" "src/lp/CMakeFiles/cdvs_lp.dir/LpProblem.cpp.o.d"
  "/root/repo/src/lp/LpWriter.cpp" "src/lp/CMakeFiles/cdvs_lp.dir/LpWriter.cpp.o" "gcc" "src/lp/CMakeFiles/cdvs_lp.dir/LpWriter.cpp.o.d"
  "/root/repo/src/lp/SimplexSolver.cpp" "src/lp/CMakeFiles/cdvs_lp.dir/SimplexSolver.cpp.o" "gcc" "src/lp/CMakeFiles/cdvs_lp.dir/SimplexSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
