file(REMOVE_RECURSE
  "libcdvs_analytic.a"
)
