file(REMOVE_RECURSE
  "CMakeFiles/cdvs_analytic.dir/AnalyticModel.cpp.o"
  "CMakeFiles/cdvs_analytic.dir/AnalyticModel.cpp.o.d"
  "libcdvs_analytic.a"
  "libcdvs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
