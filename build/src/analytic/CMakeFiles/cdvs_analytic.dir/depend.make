# Empty dependencies file for cdvs_analytic.
# This may be replaced when dependencies are built.
