# Empty dependencies file for cdvs_milp.
# This may be replaced when dependencies are built.
