
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/MilpSolver.cpp" "src/milp/CMakeFiles/cdvs_milp.dir/MilpSolver.cpp.o" "gcc" "src/milp/CMakeFiles/cdvs_milp.dir/MilpSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/cdvs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdvs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
