file(REMOVE_RECURSE
  "libcdvs_milp.a"
)
