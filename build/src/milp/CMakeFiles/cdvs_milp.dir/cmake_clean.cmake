file(REMOVE_RECURSE
  "CMakeFiles/cdvs_milp.dir/MilpSolver.cpp.o"
  "CMakeFiles/cdvs_milp.dir/MilpSolver.cpp.o.d"
  "libcdvs_milp.a"
  "libcdvs_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
