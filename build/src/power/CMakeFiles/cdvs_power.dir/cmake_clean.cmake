file(REMOVE_RECURSE
  "CMakeFiles/cdvs_power.dir/ModeTable.cpp.o"
  "CMakeFiles/cdvs_power.dir/ModeTable.cpp.o.d"
  "CMakeFiles/cdvs_power.dir/VfModel.cpp.o"
  "CMakeFiles/cdvs_power.dir/VfModel.cpp.o.d"
  "libcdvs_power.a"
  "libcdvs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
