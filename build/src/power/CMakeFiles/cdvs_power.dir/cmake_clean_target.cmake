file(REMOVE_RECURSE
  "libcdvs_power.a"
)
