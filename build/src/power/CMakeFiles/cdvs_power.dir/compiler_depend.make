# Empty compiler generated dependencies file for cdvs_power.
# This may be replaced when dependencies are built.
