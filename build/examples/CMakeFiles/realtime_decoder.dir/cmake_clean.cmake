file(REMOVE_RECURSE
  "CMakeFiles/realtime_decoder.dir/realtime_decoder.cpp.o"
  "CMakeFiles/realtime_decoder.dir/realtime_decoder.cpp.o.d"
  "realtime_decoder"
  "realtime_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
