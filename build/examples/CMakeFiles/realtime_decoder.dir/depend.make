# Empty dependencies file for realtime_decoder.
# This may be replaced when dependencies are built.
