# Empty dependencies file for dvs_tool.
# This may be replaced when dependencies are built.
