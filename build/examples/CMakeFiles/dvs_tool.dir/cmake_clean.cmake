file(REMOVE_RECURSE
  "CMakeFiles/dvs_tool.dir/dvs_tool.cpp.o"
  "CMakeFiles/dvs_tool.dir/dvs_tool.cpp.o.d"
  "dvs_tool"
  "dvs_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
