file(REMOVE_RECURSE
  "CMakeFiles/energy_explorer.dir/energy_explorer.cpp.o"
  "CMakeFiles/energy_explorer.dir/energy_explorer.cpp.o.d"
  "energy_explorer"
  "energy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
