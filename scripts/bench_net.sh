#!/usr/bin/env bash
#===- scripts/bench_net.sh - reactor-count scaling rows for BENCH_net ----===#
#
# Measures dvs-server's warm-cache serving capacity at 1, 2, and 4
# reactors on loopback, plus one cluster row (dvs-router sharding over
# three single-reactor backends), and merges the rows into one
# BENCH_net.json:
#
#   {"tool":"bench_net","host_cores":N,"rows":[<dvs-loadgen row>, ...]}
#
# Each row is one dvs-loadgen record (its "reactors" field carries the
# server's --reactors value; the cluster row instead carries
# "cluster":{"backends":3,...}). The load is open-loop at a rate well above
# capacity with an admission queue deeper than the request count, so
# every request completes "done" and done_rps measures the end-to-end
# serving rate — rejects cannot inflate it.
#
# host_cores is recorded because reactor scaling is physical: on a
# single-core host the rows collapse to ~1x and scripts/check.sh skips
# its multi-reactor speedup floor (the single-reactor rps floor always
# applies).
#
# Usage: scripts/bench_net.sh [out.json] [schedules_dir]
#   out.json       merged results (default BENCH_net.json)
#   schedules_dir  when set, the reactors=1 row also writes
#                  <fingerprint>.cdvs files there (byte-identity diffs)
#
# Env: BENCH_NET_REQUESTS (default 18000), BENCH_NET_RATE (default
# 40000), BENCH_NET_DISTINCT (default 16).
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_net.json}"
SCHED="${2:-}"
REQS="${BENCH_NET_REQUESTS:-18000}"
RATE="${BENCH_NET_RATE:-40000}"
DISTINCT="${BENCH_NET_DISTINCT:-16}"
CORES="$(nproc)"

TMP="$(mktemp -d)"
SRV=""
CLUSTER_PIDS=()
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
  for P in "${CLUSTER_PIDS[@]}"; do
    kill "$P" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

for R in 1 2 4; do
  rm -f "$TMP/port"
  ./build/tools/dvs-server --port=0 --reactors="$R" --threads=0 \
    --queue=$((REQS + 64)) --cache=64 \
    --port-file="$TMP/port" > "$TMP/server_$R.log" 2>&1 &
  SRV=$!
  for _ in $(seq 1 100); do
    [ -s "$TMP/port" ] && break
    sleep 0.1
  done
  [ -s "$TMP/port" ] || { echo "dvs-server (reactors=$R) never listened"; exit 1; }

  EXTRA=()
  if [ "$R" = 1 ] && [ -n "$SCHED" ]; then
    mkdir -p "$SCHED"
    EXTRA+=("--schedules=$SCHED")
  fi
  ./build/tools/dvs-loadgen --port="$(cat "$TMP/port")" \
    --connections=8 --rate="$RATE" --requests="$REQS" \
    --distinct="$DISTINCT" --drain-timeout-ms=120000 \
    --meta-reactors="$R" --benchmark_out="$TMP/row_$R.json" \
    "${EXTRA[@]}" > /dev/null

  kill -TERM "$SRV" 2>/dev/null || true
  wait "$SRV" 2>/dev/null || true
  SRV=""
done

# Cluster row: the same load through dvs-router sharding across three
# single-reactor backends — what one routing hop plus the ring's cache
# partitioning costs (or saves) against the single-node rows above.
BPORTS=()
for B in 1 2 3; do
  rm -f "$TMP/bport_$B"
  ./build/tools/dvs-server --port=0 --reactors=1 --threads=0 \
    --queue=$((REQS + 64)) --cache=64 \
    --port-file="$TMP/bport_$B" > "$TMP/backend_$B.log" 2>&1 &
  CLUSTER_PIDS+=($!)
done
for B in 1 2 3; do
  for _ in $(seq 1 100); do
    [ -s "$TMP/bport_$B" ] && break
    sleep 0.1
  done
  [ -s "$TMP/bport_$B" ] || { echo "cluster backend $B never listened"; exit 1; }
  BPORTS+=("127.0.0.1:$(cat "$TMP/bport_$B")")
done
rm -f "$TMP/rport"
./build/tools/dvs-router --port=0 \
  --backends="$(IFS=,; echo "${BPORTS[*]}")" \
  --port-file="$TMP/rport" > "$TMP/router.log" 2>&1 &
CLUSTER_PIDS+=($!)
for _ in $(seq 1 100); do
  [ -s "$TMP/rport" ] && break
  sleep 0.1
done
[ -s "$TMP/rport" ] || { echo "dvs-router never listened"; exit 1; }
./build/tools/dvs-loadgen --port="$(cat "$TMP/rport")" \
  --connections=8 --rate="$RATE" --requests="$REQS" \
  --distinct="$DISTINCT" --drain-timeout-ms=120000 \
  --meta-backends=3 --benchmark_out="$TMP/row_cluster.json" > /dev/null
for P in "${CLUSTER_PIDS[@]}"; do
  kill -TERM "$P" 2>/dev/null || true
done
for P in "${CLUSTER_PIDS[@]}"; do
  wait "$P" 2>/dev/null || true
done
CLUSTER_PIDS=()

printf '{"tool":"bench_net","host_cores":%s,"rows":[%s,%s,%s,%s]}\n' \
  "$CORES" "$(cat "$TMP/row_1.json")" "$(cat "$TMP/row_2.json")" \
  "$(cat "$TMP/row_4.json")" "$(cat "$TMP/row_cluster.json")" > "$OUT"

echo "bench_net: wrote $OUT"
for R in 1 2 4; do
  awk -F'"done_rps":' -v r="$R" \
    '{split($2,a,","); printf "  reactors=%s  done_rps=%s\n", r, a[1]}' \
    "$TMP/row_$R.json"
done
awk -F'"done_rps":' \
  '{split($2,a,","); printf "  cluster(1 router + 3 backends)  done_rps=%s\n", a[1]}' \
  "$TMP/row_cluster.json"
