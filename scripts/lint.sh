#!/usr/bin/env bash
#===- scripts/lint.sh - clang-tidy over the library and tool sources -----===#
#
# Runs clang-tidy (configuration: .clang-tidy at the repo root — the
# bugprone/performance/concurrency families) across src/, tools/, and
# bench/ using the compile_commands.json of the default build.
#
# The gate is advisory: check.sh runs it non-fatally, so a finding is a
# report to read, not a red build. The script itself exits nonzero only
# on infrastructure problems (no compile database), never on findings,
# and exits 0 with a notice when clang-tidy is not installed — the
# toolchain image ships gcc only, so most CI runs take that path.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
#
#===----------------------------------------------------------------------===#

set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "lint.sh: clang-tidy not installed; skipping static analysis."
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json not found." >&2
  echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

# Library and tool translation units; tests are excluded (gtest macros
# trip bugprone checks by design).
mapfile -t SOURCES < <(find src tools bench examples -name '*.cpp' | sort)

echo "lint.sh: clang-tidy over ${#SOURCES[@]} files ($TIDY)"
FINDINGS=0
for f in "${SOURCES[@]}"; do
  OUT="$("$TIDY" -p "$BUILD_DIR" --quiet "$f" 2>/dev/null)"
  if [[ -n "$OUT" ]]; then
    echo "$OUT"
    FINDINGS=$((FINDINGS + 1))
  fi
done

if [[ "$FINDINGS" -eq 0 ]]; then
  echo "lint.sh: clean."
else
  echo "lint.sh: findings in $FINDINGS file(s) (advisory)."
fi
exit 0
