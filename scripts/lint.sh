#!/usr/bin/env bash
#===- scripts/lint.sh - clang-tidy over the library and tool sources -----===#
#
# Runs clang-tidy (configuration: .clang-tidy at the repo root — the
# bugprone/performance/concurrency families) across src/, tools/, and
# bench/ using the compile_commands.json of the default build, then
# diffs the findings against the committed baseline
# (scripts/clang-tidy-baseline.txt).
#
# The gate is enforced: any finding NOT in the baseline fails the run
# (check.sh treats a nonzero exit as a red build). Findings are keyed
# as "<file>: [<check>]" — no line numbers, so unrelated edits that
# shift code do not churn the baseline. Baseline entries that no longer
# fire are reported as stale (informational); refresh the file with
#   scripts/lint.sh --update-baseline
# after fixing warnings or after deliberately accepting new ones.
#
# The script still exits 0 with a notice when clang-tidy is not
# installed — the toolchain image ships gcc only, so most CI runs take
# that path — and exits nonzero on infrastructure problems (no compile
# database).
#
# Usage: scripts/lint.sh [--update-baseline] [build-dir]  (default: build)
#
#===----------------------------------------------------------------------===#

set -uo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

BASELINE="scripts/clang-tidy-baseline.txt"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "lint.sh: clang-tidy not installed; skipping static analysis."
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json not found." >&2
  echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

# Library and tool translation units; tests are excluded (gtest macros
# trip bugprone checks by design).
mapfile -t SOURCES < <(find src tools bench examples -name '*.cpp' | sort)

echo "lint.sh: clang-tidy over ${#SOURCES[@]} files ($TIDY)"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
for f in "${SOURCES[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" 2>/dev/null
done > "$RAW"

# Normalize "path:line:col: warning: msg [check]" to "path: [check]",
# dropping line/column so the baseline survives unrelated edits.
CURRENT="$(sed -nE \
  's|^([^:]+):[0-9]+:[0-9]+: (warning\|error): .* (\[[a-z0-9.,-]+\])$|\1: \3|p' \
  "$RAW" | sed "s|^$PWD/||" | sort -u)"

if [[ "$UPDATE" -eq 1 ]]; then
  {
    echo "# clang-tidy findings accepted as baseline; one '<file>: [<check>]'"
    echo "# per line. Regenerate with: scripts/lint.sh --update-baseline"
    printf '%s\n' "$CURRENT" | sed '/^$/d'
  } > "$BASELINE"
  echo "lint.sh: baseline rewritten ($(printf '%s\n' "$CURRENT" | sed '/^$/d' | wc -l) entries)."
  exit 0
fi

ACCEPTED="$( [[ -f "$BASELINE" ]] && grep -v '^#' "$BASELINE" | sed '/^$/d' | sort -u || true)"

NEW="$(comm -23 <(printf '%s\n' "$CURRENT" | sed '/^$/d') \
                <(printf '%s\n' "$ACCEPTED") )"
STALE="$(comm -13 <(printf '%s\n' "$CURRENT" | sed '/^$/d') \
                  <(printf '%s\n' "$ACCEPTED") )"

if [[ -n "$STALE" ]]; then
  echo "lint.sh: stale baseline entries (fixed findings; run --update-baseline):"
  printf '  %s\n' $STALE
fi

if [[ -n "$NEW" ]]; then
  echo "lint.sh: NEW findings not in $BASELINE:" >&2
  printf '  %s\n' $NEW >&2
  echo "lint.sh: full clang-tidy output for the new findings:" >&2
  while IFS= read -r key; do
    file="${key%%:*}"
    check="$(printf '%s' "$key" | sed -nE 's|.*\[(.*)\]$|\1|p')"
    grep -F "$file" "$RAW" | grep -F "[$check]" >&2 || true
  done <<< "$NEW"
  echo "lint.sh: fix them or accept them with scripts/lint.sh --update-baseline." >&2
  exit 1
fi

echo "lint.sh: clean against the baseline."
exit 0
