#!/usr/bin/env bash
#===- scripts/check.sh - tier-1 tests + TSan solver pass ------------------===#
#
# The repo's verification gate:
#   1. default build + full ctest suite (the tier-1 command of ROADMAP.md);
#   2. ThreadSanitizer build of the solver stack, running the LP and MILP
#      test binaries (the concurrent pieces: work-stealing branch-and-
#      bound, shared incumbent, warm-start engines);
#   3. ThreadSanitizer pass over the scheduling service (TaskPool,
#      sharded single-flight cache, admission queue) and the metrics/
#      trace instruments (obs_test's concurrent-increment tests), plus
#      bench_service, whose asserts prove cache-hit schedules
#      byte-identical to fresh solves and 16 concurrent duplicates
#      collapse to one MILP;
#   4. observability smoke: a dvsd batch with tracing enabled must emit
#      a Prometheus snapshot that dvs-stat --check validates (format +
#      every canonical family from scripts/metric_names.txt present)
#      and a Chrome trace with the per-job pipeline spans;
#   5. static analysis: dvs-lint audits every bundled workload's CFG and
#      profile (and, with --solve, certifies one MILP solution), and
#      scripts/lint.sh diffs clang-tidy findings against the committed
#      baseline (scripts/clang-tidy-baseline.txt) — any NEW finding
#      fails the gate (skipped when clang-tidy is not installed);
#   6. verification round trip: dvsd re-runs the observability batch
#      under --verify=strict, so every schedule the service emits is
#      independently audited (legality + MILP certificate) and any
#      verification error fails the job, and therefore this gate;
#   7. ASan+UBSan build of the full test suite (memory errors and UB in
#      the solver arithmetic and the service lifecycle);
#   8. network round trip: dvs-server (--reactors=2) + dvs-loadgen over
#      loopback under TSan, then scripts/bench_net.sh rows at 1/2/4
#      reactors (BENCH_net.json) with a 5k req/s single-reactor floor
#      and, on hosts with >= 4 cores, a >= 2x-of-single-reactor floor
#      for the 4-reactor row; the reactors=1 row's schedules must be
#      byte-identical to dvsd's for the same jobs; a malformed-frame +
#      slow-client probe the server must survive; an overload probe
#      (connection churn + slowloris alongside healthy traffic) in
#      which healthy p99 stays near the unloaded baseline and the
#      attacks draw structured Rejects visible in cdvs_net_sheds_total;
#      and dvs-stat --check over the server's metrics snapshot
#      (scripts/metric_names_net.txt);
#   9. cluster failover: the cluster test binary under TSan, then a
#      kill-a-backend drill — dvs-router over three TSan dvs-servers,
#      dvs-loadgen SIGKILLs one backend mid-run and every admitted
#      request must still answer (zero unanswered) with at least one
#      eviction in the router's metrics; the dead backend then restarts
#      with --peers/--self and a hot-key rerun must warm its cache over
#      PeerFetch (cdvs_cluster_peer_fills_total >= 1), its schedules
#      byte-identical to dvsd's for the same jobs; dvs-stat --check
#      validates the router + peer-fill metric families
#      (scripts/metric_names_cluster.txt).
#  10. distributed observability: dvs-router + two traced backends in a
#      forced peer-fetch topology, dvs-loadgen stamping every request
#      with a trace id (--trace-sample-pct=100); dvs-stat --scrape then
#      pulls metrics + span rings + the flight recorder from all three
#      processes over the wire (StatsFetch), validates the merged
#      exposition against scripts/metric_names_obs.txt, assembles one
#      clock-aligned Chrome trace, and the summary must show a single
#      trace id spanning router -> backend -> peer (>= 3 processes,
#      >= 4 spans); the router's --slow-log-ms JSON lines must carry
#      verdicts and trace ids.
#  11. certified presolve: dvs-lint --static sweeps every bundled
#      workload's CFG (reachability, loop forest, irreducibility,
#      frequency intervals) under TSan, then dvsd solves the full
#      workload x tightness grid twice — --presolve=on vs
#      --presolve=off — and every emitted schedule must be
#      byte-identical across the two runs (diff -r), with the presolve
#      runs re-audited under --verify=strict so the reduction
#      certificates replay clean.
#  12. task graphs: the taskgraph test binary (including the
#      slack-reclamation determinism suite's 8-thread race) under TSan;
#      dvsd --taskgraph over the full canned DAG corpus under
#      --verify=strict at two worker counts with byte-identical
#      .taskplan files (diff -r); an end-to-end dvs-server +
#      dvs-loadgen graph-job run whose live scrape must validate every
#      canonical cdvs_taskgraph_* family
#      (scripts/metric_names_taskgraph.txt) and show
#      cdvs_taskgraph_replans_total >= 1 — online slack reclamation
#      actually re-planned on the server; and the dvs-lint --ir
#      regression — an unknown or empty --ir path in --static mode is
#      a structured usage error (exit 2), never a silent exit 0.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: default build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo
echo "== TSan: solver stack (lp_test, milp_test) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$JOBS" --target lp_test milp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/milp_test

echo
echo "== TSan: scheduling service (support_test, service_test, obs_test) =="
cmake --build build-tsan -j"$JOBS" --target support_test service_test obs_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/support_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test

echo
echo "== bench_service: cached == fresh, duplicates collapse =="
cmake --build build -j"$JOBS" --target bench_service
(cd build/bench && ./bench_service)

echo
echo "== observability: dvsd metrics + trace round trip =="
cmake --build build -j"$JOBS" --target dvsd dvs-stat
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
printf '%s\n' \
  '{"id":"a","workload":"gsm","tightness":0.5}' \
  '{"id":"b","workload":"gsm","tightness":0.5}' \
  '{"id":"c","workload":"adpcm","tightness":0.3}' \
  > "$OBS_TMP/jobs.jsonl"
./build/tools/dvsd --threads=2 --repeat=2 --quiet \
  --metrics-out="$OBS_TMP/metrics.prom" \
  --metrics-json="$OBS_TMP/metrics.json" \
  --trace-out="$OBS_TMP/trace.json" \
  "$OBS_TMP/jobs.jsonl"
# Prometheus format + every canonical family present.
./build/tools/dvs-stat --check --names=scripts/metric_names.txt \
  "$OBS_TMP/metrics.prom"
# The trace must carry the per-job pipeline spans.
for span in '"job"' '"profile"' '"bound"' '"solve"' '"milp_solve"'; do
  grep -q "$span" "$OBS_TMP/trace.json" \
    || { echo "trace is missing span $span"; exit 1; }
done
# The registry's JSON dump must stay parseable (obs_test proves this
# in-process; this catches drift in the dvsd wiring).
grep -q '"cdvs_stage_latency_seconds"' "$OBS_TMP/metrics.json" \
  || { echo "metrics JSON dump is missing stage latencies"; exit 1; }

echo
echo "== static analysis: dvs-lint over the bundled workloads =="
cmake --build build -j"$JOBS" --target dvs-lint
# Every workload x input: CFG structure + profile conservation laws.
./build/tools/dvs-lint
# One solved instance end to end: schedule legality + MILP certificate.
./build/tools/dvs-lint --solve --workload=gsm --quiet

echo
echo "== static analysis: clang-tidy vs the committed baseline =="
scripts/lint.sh build

echo
echo "== dvsd --verify=strict: every emitted schedule audits clean =="
# bench_service's job set: every bundled workload at three deadline
# tightnesses, run twice (cold solve + cached verdict). Any audit error
# fails the job under strict mode, and dvsd's exit code fails the gate.
: > "$OBS_TMP/verify_jobs.jsonl"
for w in adpcm epic gsm mpeg_decode mpg123 ghostscript; do
  for t in 0.15 0.5 0.85; do
    echo "{\"id\":\"$w@$t\",\"workload\":\"$w\",\"tightness\":$t}" \
      >> "$OBS_TMP/verify_jobs.jsonl"
  done
done
./build/tools/dvsd --threads="$JOBS" --repeat=2 --quiet --verify=strict \
  "$OBS_TMP/verify_jobs.jsonl"

echo
echo "== ASan+UBSan: full test suite =="
cmake --preset asan-ubsan >/dev/null
cmake --build build-asan-ubsan -j"$JOBS"
(cd build-asan-ubsan && ctest --output-on-failure -j"$JOBS")

echo
echo "== net: TSan loopback round trip (net_test, dvs-server + dvs-loadgen) =="
cmake --build build-tsan -j"$JOBS" --target net_test dvs-server dvs-loadgen
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_test
NET_TMP="$OBS_TMP/net"
mkdir -p "$NET_TMP"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-server \
  --port=0 --threads=2 --reactors=2 --port-file="$NET_TMP/tsan_port" \
  > "$NET_TMP/tsan_server.log" &
TSAN_SRV=$!
for _ in $(seq 1 100); do
  [ -s "$NET_TMP/tsan_port" ] && break
  sleep 0.1
done
[ -s "$NET_TMP/tsan_port" ] || { echo "TSan dvs-server never listened"; exit 1; }
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-loadgen \
  --port="$(cat "$NET_TMP/tsan_port")" --connections=4 --rate=1000 \
  --requests=2000 --distinct=8 \
  --benchmark_out="$NET_TMP/tsan_bench.json"
kill -TERM "$TSAN_SRV"
wait "$TSAN_SRV"

echo
echo "== net: reactor-count scaling rows (BENCH_net.json) =="
cmake --build build -j"$JOBS" --target dvs-server dvs-loadgen
DISTINCT=16
BENCH_NET_DISTINCT="$DISTINCT" \
  scripts/bench_net.sh BENCH_net.json "$NET_TMP/netsched"
# The cached steady state must sustain at least 5k served req/s end to
# end on one reactor.
DONE1="$(awk -F'"done_rps":' '{split($2,a,","); printf "%s", a[1]}' \
  BENCH_net.json)"
DONE4="$(awk -F'"done_rps":' '{split($4,a,","); printf "%s", a[1]}' \
  BENCH_net.json)"
CORES="$(awk -F'"host_cores":' '{split($2,a,","); printf "%s", a[1]}' \
  BENCH_net.json)"
awk -v d="$DONE1" 'BEGIN { if (d + 0 < 5000.0) {
  printf "single-reactor rate %.0f rps is below the 5000 rps floor\n", d;
  exit 1 } }'
# Reactor scaling is physical — the speedup floor only means something
# with cores to scale onto.
if [ "$CORES" -ge 4 ]; then
  awk -v d1="$DONE1" -v d4="$DONE4" 'BEGIN {
    if (d4 + 0 < 2.0 * d1) {
      printf "4-reactor rate %.0f rps is below 2x the single-reactor %.0f\n",
             d4, d1;
      exit 1 } }'
else
  echo "  ($CORES-core host: skipping the 4-reactor >= 2x floor)"
fi

echo
echo "== net: malformed-frame + slow-client probes =="
./build/tools/dvs-server --port=0 --threads="$JOBS" --reactors=2 \
  --idle-timeout-ms=500 --port-file="$NET_TMP/port" \
  --metrics-out="$NET_TMP/net_metrics.prom" \
  > "$NET_TMP/server.log" &
NET_SRV=$!
for _ in $(seq 1 100); do
  [ -s "$NET_TMP/port" ] && break
  sleep 0.1
done
[ -s "$NET_TMP/port" ] || { echo "dvs-server never listened"; exit 1; }
NET_PORT="$(cat "$NET_TMP/port")"

# A garbage frame draws a reject, then a close — and must not take the
# server down.
exec 3<>"/dev/tcp/127.0.0.1/$NET_PORT"
printf 'NOT A CDVS FRAME' >&3
timeout 5 head -c 1 <&3 >/dev/null
exec 3<&- 3>&-
# A silent client is evicted by the idle timeout, nothing more.
exec 4<>"/dev/tcp/127.0.0.1/$NET_PORT"
sleep 1
exec 4<&- 4>&-
# The server still serves after both probes.
./build/tools/dvs-loadgen --port="$NET_PORT" --connections=2 \
  --rate=1000 --requests=500 --distinct=4 \
  --benchmark_out="$NET_TMP/probe_bench.json"
kill -TERM "$NET_SRV"
wait "$NET_SRV"
grep -q '"protocol_errors":1,' "$NET_TMP/server.log" \
  || { echo "garbage frame was not counted as a protocol error"; exit 1; }
grep -q '"idle_closes":1,' "$NET_TMP/server.log" \
  || { echo "silent client was not evicted by the idle timeout"; exit 1; }

echo
echo "== net: overload probe (churn + slowloris vs healthy traffic) =="
./build/tools/dvs-server --port=0 --threads="$JOBS" --reactors=2 \
  --queue=4096 --slow-frame-timeout-ms=200 --shed-high=256 \
  --port-file="$NET_TMP/ol_port" \
  --metrics-out="$NET_TMP/ol_metrics.prom" \
  > "$NET_TMP/ol_server.log" &
OL_SRV=$!
for _ in $(seq 1 100); do
  [ -s "$NET_TMP/ol_port" ] && break
  sleep 0.1
done
[ -s "$NET_TMP/ol_port" ] || { echo "overload dvs-server never listened"; exit 1; }
OL_PORT="$(cat "$NET_TMP/ol_port")"
# Unloaded baseline: healthy traffic alone. Stringent deadlines keep
# the healthy class out of the lax shed band.
./build/tools/dvs-loadgen --port="$OL_PORT" --connections=2 \
  --rate=1000 --requests=3000 --tightness=0.3 \
  --benchmark_out="$NET_TMP/ol_base.json" > /dev/null
# The same healthy load inside a churn + slowloris storm.
./build/tools/dvs-loadgen --port="$OL_PORT" --connections=2 \
  --rate=1000 --requests=3000 --tightness=0.3 \
  --churn=2 --slowloris=4 --dribble-interval-ms=100 \
  --benchmark_out="$NET_TMP/ol_load.json" > /dev/null
kill -TERM "$OL_SRV"
wait "$OL_SRV"
# The attacks drew structured Rejects...
awk -F'"attack_rejects":' '{split($2,a,"}"); if (a[1] + 0 < 1) {
  print "slowloris clients were never rejected"; exit 1 } }' \
  "$NET_TMP/ol_load.json"
# ...the sheds are visible in the metrics snapshot...
awk '/^cdvs_net_sheds_total\{/ { total += $NF }
  END { if (total + 0 < 1) {
    print "cdvs_net_sheds_total recorded no sheds"; exit 1 } }' \
  "$NET_TMP/ol_metrics.prom"
# ...and healthy-connection p99 stayed within 2x of the unloaded
# baseline (with an absolute 20 ms guard against micro-baseline noise).
BASE_P99="$(awk -F'"p99":' '{split($2,a,","); printf "%s", a[1]}' \
  "$NET_TMP/ol_base.json")"
LOAD_P99="$(awk -F'"p99":' '{split($2,a,","); printf "%s", a[1]}' \
  "$NET_TMP/ol_load.json")"
awk -v b="$BASE_P99" -v l="$LOAD_P99" 'BEGIN {
  lim = 2.0 * b; if (lim < 0.020) lim = 0.020;
  if (l + 0 > lim) {
    printf "healthy p99 %.6fs under attack vs %.6fs unloaded (limit %.6fs)\n",
           l, b, lim;
    exit 1 } }'

# The wire serves bit-for-bit what dvsd serves: solve the same distinct
# jobs through the CLI and diff the schedule files.
: > "$NET_TMP/net_jobs.jsonl"
for k in $(seq 0 $((DISTINCT - 1))); do
  awk -v k="$k" -v n="$DISTINCT" 'BEGIN {
    printf "{\"id\":\"k%d\",\"workload\":\"gsm\",\"tightness\":%.17g}\n",
           k, 0.2 + 0.6 * k / n }' >> "$NET_TMP/net_jobs.jsonl"
done
mkdir -p "$NET_TMP/dsched"
./build/tools/dvsd --threads="$JOBS" --quiet \
  --schedules="$NET_TMP/dsched" "$NET_TMP/net_jobs.jsonl"
diff -r "$NET_TMP/netsched" "$NET_TMP/dsched" \
  || { echo "wire schedules differ from dvsd schedules"; exit 1; }

# Every canonical net metric family made it into the snapshot.
./build/tools/dvs-stat --check --names=scripts/metric_names_net.txt \
  "$NET_TMP/net_metrics.prom"

echo
echo "== cluster: TSan cluster tests + kill-a-backend failover drill =="
cmake --build build-tsan -j"$JOBS" \
  --target cluster_test dvs-router dvs-server dvs-loadgen
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/cluster_test

CL_TMP="$OBS_TMP/cluster"
mkdir -p "$CL_TMP"
CL_DISTINCT=32
CL_PIDS=()
for B in 1 2 3; do
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-server \
    --port=0 --threads=2 --queue=4096 \
    --port-file="$CL_TMP/b$B.port" > "$CL_TMP/b$B.log" &
  CL_PIDS+=($!)
done
BACKENDS=""
for B in 1 2 3; do
  for _ in $(seq 1 100); do
    [ -s "$CL_TMP/b$B.port" ] && break
    sleep 0.1
  done
  [ -s "$CL_TMP/b$B.port" ] \
    || { echo "cluster backend $B never listened"; exit 1; }
  BACKENDS="$BACKENDS${BACKENDS:+,}127.0.0.1:$(cat "$CL_TMP/b$B.port")"
done
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-router \
  --port=0 --backends="$BACKENDS" \
  --health-interval-ms=100 --fail-threshold=1 \
  --port-file="$CL_TMP/router.port" \
  --metrics-out="$CL_TMP/router.prom" > "$CL_TMP/router.log" &
CL_RTR=$!
for _ in $(seq 1 100); do
  [ -s "$CL_TMP/router.port" ] && break
  sleep 0.1
done
[ -s "$CL_TMP/router.port" ] || { echo "dvs-router never listened"; exit 1; }
CL_PORT="$(cat "$CL_TMP/router.port")"

# Kill backend 1 mid-run: its in-flight requests fail over to the next
# ring owner, and the survivors absorb its key share — zero lost
# responses is the whole point of the retry machinery.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-loadgen \
  --port="$CL_PORT" --connections=4 --rate=1000 --requests=2000 \
  --distinct="$CL_DISTINCT" --drain-timeout-ms=120000 \
  --kill-backend-pid="${CL_PIDS[0]}" --kill-backend-after-ms=400 \
  --benchmark_out="$CL_TMP/kill_bench.json"
grep -q '"kill_fired":true' "$CL_TMP/kill_bench.json" \
  || { echo "loadgen never killed the backend"; exit 1; }
grep -q '"unanswered":0,' "$CL_TMP/kill_bench.json" \
  || { echo "responses were lost across the backend kill"; exit 1; }

# The dead backend returns on its old port, peer-fill wired to the full
# membership; a hot-key rerun routes its keys home and the cold cache
# must fill from the interim owners over PeerFetch, not re-solve.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-server \
  --port="$(cat "$CL_TMP/b1.port")" --threads=2 --queue=4096 \
  --self="127.0.0.1:$(cat "$CL_TMP/b1.port")" --peers="$BACKENDS" \
  --metrics-out="$CL_TMP/b1.prom" > "$CL_TMP/b1_reborn.log" &
CL_PIDS[0]=$!
# A TSan server can take seconds to reach listen() on one CPU; wait for
# it before counting health intervals, or the hot-key replay races the
# router's reinstatement probe and no peer fill ever happens.
for _ in $(seq 1 200); do
  grep -q '"type":"listening"' "$CL_TMP/b1_reborn.log" 2>/dev/null && break
  sleep 0.1
done
grep -q '"type":"listening"' "$CL_TMP/b1_reborn.log" \
  || { echo "restarted backend never listened"; exit 1; }
sleep 1 # one health-interval round trip reinstates it
mkdir -p "$CL_TMP/rsched"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-loadgen \
  --port="$CL_PORT" --connections=4 --rate=1000 --requests=2000 \
  --distinct="$CL_DISTINCT" --hot-key-pct=25 --drain-timeout-ms=120000 \
  --schedules="$CL_TMP/rsched" \
  --benchmark_out="$CL_TMP/warm_bench.json"
grep -q '"unanswered":0,' "$CL_TMP/warm_bench.json" \
  || { echo "responses were lost after the backend restart"; exit 1; }

kill -TERM "$CL_RTR" 2>/dev/null || true
wait "$CL_RTR" 2>/dev/null || true
for P in "${CL_PIDS[@]}"; do
  kill -TERM "$P" 2>/dev/null || true
done
for P in "${CL_PIDS[@]}"; do
  wait "$P" 2>/dev/null || true
done

awk '/^cdvs_cluster_backend_evictions_total/ { total += $NF }
  END { if (total + 0 < 1) {
    print "the killed backend was never evicted"; exit 1 } }' \
  "$CL_TMP/router.prom"
awk '/^cdvs_cluster_peer_fills_total/ { total += $NF }
  END { if (total + 0 < 1) {
    print "the restarted backend never peer-filled its cache"; exit 1 } }' \
  "$CL_TMP/b1.prom"

# Routed schedules are bit-for-bit what dvsd emits for the same jobs.
mkdir -p "$CL_TMP/dsched"
: > "$CL_TMP/cl_jobs.jsonl"
for k in $(seq 0 $((CL_DISTINCT - 1))); do
  awk -v k="$k" -v n="$CL_DISTINCT" 'BEGIN {
    printf "{\"id\":\"k%d\",\"workload\":\"gsm\",\"tightness\":%.17g}\n",
           k, 0.2 + 0.6 * k / n }' >> "$CL_TMP/cl_jobs.jsonl"
done
./build/tools/dvsd --threads="$JOBS" --quiet \
  --schedules="$CL_TMP/dsched" "$CL_TMP/cl_jobs.jsonl"
diff -r "$CL_TMP/rsched" "$CL_TMP/dsched" \
  || { echo "cluster schedules differ from dvsd schedules"; exit 1; }

# Every canonical cluster family, across both processes' snapshots.
# Passed as separate files (not concatenated): dvs-stat parses each and
# merges like --scrape, since families shared across roles — e.g.
# cdvs_trace_dropped_total — would be duplicate series in one file.
./build/tools/dvs-stat --check --names=scripts/metric_names_cluster.txt \
  "$CL_TMP/router.prom" "$CL_TMP/b1.prom"

echo
echo "== observability: live scrape + cross-process trace (dvs-stat --scrape) =="
cmake --build build -j"$JOBS" \
  --target dvs-server dvs-router dvs-loadgen dvs-stat
TR_TMP="$OBS_TMP/tracing"
mkdir -p "$TR_TMP"
# Backend A: a plain traced solver. Backend B: traced, peer-filling
# from A. The router shards over B alone, so every key A owns reaches B
# as a non-owner and B must peer-fetch — that forces the
# router -> backend -> peer span chain the merged trace must show under
# one trace id. B needs its own address in --self before it starts, so
# grab an ephemeral port first and reuse it (the gate-9 restart idiom).
./build/tools/dvs-server --port=0 --threads=2 --trace \
  --port-file="$TR_TMP/a.port" > "$TR_TMP/a.log" &
TR_A=$!
./build/tools/dvs-server --port=0 \
  --port-file="$TR_TMP/b0.port" > /dev/null &
TR_B0=$!
for f in a.port b0.port; do
  for _ in $(seq 1 100); do
    [ -s "$TR_TMP/$f" ] && break
    sleep 0.1
  done
  [ -s "$TR_TMP/$f" ] \
    || { echo "traced backend ($f) never listened"; exit 1; }
done
TR_PA="$(cat "$TR_TMP/a.port")"
TR_PB="$(cat "$TR_TMP/b0.port")"
kill -TERM "$TR_B0"
wait "$TR_B0"
./build/tools/dvs-server --port="$TR_PB" --threads=2 --trace \
  --self="127.0.0.1:$TR_PB" \
  --peers="127.0.0.1:$TR_PA,127.0.0.1:$TR_PB" \
  --port-file="$TR_TMP/b.port" > "$TR_TMP/b.log" &
TR_B=$!
./build/tools/dvs-router --port=0 --backends="127.0.0.1:$TR_PB" \
  --trace --slow-log-ms=1 --slow-log="$TR_TMP/slow.jsonl" \
  --port-file="$TR_TMP/r.port" > "$TR_TMP/r.log" &
TR_R=$!
for f in b.port r.port; do
  for _ in $(seq 1 100); do
    [ -s "$TR_TMP/$f" ] && break
    sleep 0.1
  done
  [ -s "$TR_TMP/$f" ] \
    || { echo "traced cluster ($f) never listened"; exit 1; }
done
TR_PORT="$(cat "$TR_TMP/r.port")"

# Every request carries a fresh trace id; zero lost answers.
./build/tools/dvs-loadgen --port="$TR_PORT" --connections=4 \
  --rate=500 --requests=200 --distinct=16 --trace-sample-pct=100 \
  --drain-timeout-ms=120000 \
  --benchmark_out="$TR_TMP/trace_bench.json"
grep -q '"unanswered":0,' "$TR_TMP/trace_bench.json" \
  || { echo "responses were lost in the traced run"; exit 1; }
grep -q '"traced_sent":200' "$TR_TMP/trace_bench.json" \
  || { echo "loadgen did not stamp every request with a trace id"; exit 1; }

# Scrape all three live processes over the wire and merge.
# stderr holds the (expected) notes about families outside the obs
# list — merged scrapes see every family of every role; surfaced only
# on failure.
./build/tools/dvs-stat \
  --scrape "127.0.0.1:$TR_PORT,127.0.0.1:$TR_PA,127.0.0.1:$TR_PB" \
  --check --names=scripts/metric_names_obs.txt \
  --merge-trace="$TR_TMP/merged_trace.json" > "$TR_TMP/scrape.out" \
  2> "$TR_TMP/scrape.err" \
  || { cat "$TR_TMP/scrape.out" "$TR_TMP/scrape.err"
       echo "scrape --check failed"; exit 1; }

kill -TERM "$TR_R" 2>/dev/null || true
wait "$TR_R" 2>/dev/null || true
for PROC in "$TR_A" "$TR_B"; do
  kill -TERM "$PROC" 2>/dev/null || true
done
for PROC in "$TR_A" "$TR_B"; do
  wait "$PROC" 2>/dev/null || true
done

# One trace id must span the whole chain: the router's route span, the
# backend's frame/job spans, and the peer's peer_serve — >= 3 processes
# and >= 4 spans on the best trace, with a real 128-bit id.
grep -Eq '"top_trace":\{"id":"[0-9a-f]{32}"' "$TR_TMP/scrape.out" \
  || { echo "scrape summary has no 128-bit top trace id"; exit 1; }
awk -F'"top_trace":' 'NR==1 {
  split($2, s, "\"spans\":"); split(s[2], sv, ",");
  split($2, p, "\"procs\":"); split(p[2], pv, "}");
  if (sv[1] + 0 < 4 || pv[1] + 0 < 3) {
    printf "top trace spans=%s procs=%s (need >= 4 spans, >= 3 procs)\n",
           sv[1], pv[1];
    exit 1 } }' "$TR_TMP/scrape.out"
# Ring saturation is surfaced even when zero.
grep -q '"trace_dropped_total":' "$TR_TMP/scrape.out" \
  || { echo "scrape summary does not surface trace_dropped"; exit 1; }
# The merged Chrome trace names all three processes and carries the
# cross-process chain's spans on one timeline.
for span in '"route"' '"frame"' '"peer_fill"' '"peer_serve"' \
            '"dvs-router"' '"dvs-server"'; do
  grep -q "$span" "$TR_TMP/merged_trace.json" \
    || { echo "merged trace is missing $span"; exit 1; }
done
# The router's slow log dumped structured records with verdicts.
[ -s "$TR_TMP/slow.jsonl" ] \
  || { echo "the router slow log is empty"; exit 1; }
grep -q '"verdict":"response"' "$TR_TMP/slow.jsonl" \
  || { echo "the slow log has no response verdicts"; exit 1; }
grep -Eq '"trace_id":"[0-9a-f]{32}"' "$TR_TMP/slow.jsonl" \
  || { echo "the slow log records carry no trace ids"; exit 1; }

echo
echo "== presolve: static CFG sweep + on/off byte-identity (TSan) =="
cmake --build build-tsan -j"$JOBS" --target dvs-lint dvsd
# Every bundled workload's CFG through the full static audit: dominator
# trees, loop forest, irreducibility, dead blocks, frequency intervals.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-lint --static
PS_TMP="$OBS_TMP/presolve"
mkdir -p "$PS_TMP/on" "$PS_TMP/off"
# The gate-6 grid again: every workload at three tightnesses. The
# presolve may only remove structurally-irrelevant MILP columns, so the
# schedules it emits must be byte-for-byte those of the full instance.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvsd \
  --threads="$JOBS" --quiet --presolve=on --verify=strict \
  --schedules="$PS_TMP/on" "$OBS_TMP/verify_jobs.jsonl"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvsd \
  --threads="$JOBS" --quiet --presolve=off \
  --schedules="$PS_TMP/off" "$OBS_TMP/verify_jobs.jsonl"
diff -r "$PS_TMP/on" "$PS_TMP/off" \
  || { echo "presolve changed an emitted schedule"; exit 1; }

echo
echo "== task graphs: TSan suite + strict round trip + live replan metrics =="
cmake --build build-tsan -j"$JOBS" --target taskgraph_test
# The slack-reclamation determinism suite — including the 8-thread race
# on runOnline — under ThreadSanitizer.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/taskgraph_test
TG_TMP="$OBS_TMP/taskgraph"
mkdir -p "$TG_TMP/t1" "$TG_TMP/tN" "$TG_TMP/wire"
cmake --build build -j"$JOBS" \
  --target dvsd dvs-server dvs-loadgen dvs-stat dvs-lint
# The full canned DAG corpus, strictly verified, at two worker counts:
# every emitted .taskplan must audit clean and be byte-identical across
# the counts (the determinism contract at the CLI layer).
./build/tools/dvsd --taskgraph --verify=strict --quiet --threads=1 \
  --schedules="$TG_TMP/t1"
./build/tools/dvsd --taskgraph --verify=strict --quiet --threads="$JOBS" \
  --schedules="$TG_TMP/tN"
diff -r "$TG_TMP/t1" "$TG_TMP/tN" \
  || { echo "task plans differ across dvsd worker counts"; exit 1; }
# End to end over the wire: graph jobs through dvs-server, then a live
# scrape that must validate every canonical cdvs_taskgraph_* family and
# show that online slack reclamation actually re-planned.
./build/tools/dvs-server --port=0 --threads=2 --reactors=2 \
  --verify=strict --port-file="$TG_TMP/port" > "$TG_TMP/server.log" &
TG_SRV=$!
for _ in $(seq 1 100); do
  [ -s "$TG_TMP/port" ] && break
  sleep 0.1
done
[ -s "$TG_TMP/port" ] \
  || { echo "taskgraph dvs-server never listened"; exit 1; }
TG_PORT="$(cat "$TG_TMP/port")"
./build/tools/dvs-loadgen --port="$TG_PORT" --connections=2 --rate=500 \
  --requests=8 --graph=pair2-early --graph=chain4-early \
  --schedules="$TG_TMP/wire" \
  --benchmark_out="$TG_TMP/taskgraph_bench.json"
./build/tools/dvs-stat --scrape="127.0.0.1:$TG_PORT" --check \
  --names=scripts/metric_names_taskgraph.txt > "$TG_TMP/scrape.out" \
  2> "$TG_TMP/scrape.err" \
  || { cat "$TG_TMP/scrape.out" "$TG_TMP/scrape.err"
       echo "taskgraph scrape --check failed"; exit 1; }
# A second scrape without --check renders the family table; the replan
# counter must show the online loop actually re-solved on the server.
./build/tools/dvs-stat --scrape="127.0.0.1:$TG_PORT" \
  > "$TG_TMP/table.out" 2> /dev/null
awk -F'|' '/cdvs_taskgraph_replans_total/ {
    gsub(/ /, "", $5); found = 1
    if ($5 + 0 < 1) {
      printf "expected cdvs_taskgraph_replans_total >= 1, got %s\n", $5
      exit 1 } }
  END { if (!found) {
    print "scrape shows no cdvs_taskgraph_replans_total"; exit 1 } }' \
  "$TG_TMP/table.out"
kill -TERM "$TG_SRV"
wait "$TG_SRV"
# The wire plans are the same bytes dvsd emitted for the same graphs.
for f in "$TG_TMP/wire"/*.taskplan; do
  cmp "$f" "$TG_TMP/t1/$(basename "$f")" \
    || { echo "wire task plan differs from dvsd's"; exit 1; }
done
# dvs-lint regression: a bad --ir in --static mode is a structured
# usage error (exit 2) naming the path — never a silent exit 0 that
# falls through to the bundled-workload audit.
for BAD_IR in /nonexistent/probe.ir ""; do
  set +e
  ./build/tools/dvs-lint --static --ir="$BAD_IR" > "$TG_TMP/lint.out" 2>&1
  LINT_RC=$?
  set -e
  [ "$LINT_RC" -eq 2 ] \
    || { cat "$TG_TMP/lint.out"
         echo "dvs-lint --ir='$BAD_IR' exited $LINT_RC, want 2"; exit 1; }
  grep -q "error:" "$TG_TMP/lint.out" \
    || { echo "dvs-lint --ir='$BAD_IR' printed no structured error"
         exit 1; }
done

echo
echo "All checks passed."
