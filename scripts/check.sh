#!/usr/bin/env bash
#===- scripts/check.sh - tier-1 tests + TSan solver pass ------------------===#
#
# The repo's verification gate:
#   1. default build + full ctest suite (the tier-1 command of ROADMAP.md);
#   2. ThreadSanitizer build of the solver stack, running the LP and MILP
#      test binaries (the concurrent pieces: work-stealing branch-and-
#      bound, shared incumbent, warm-start engines);
#   3. ThreadSanitizer pass over the scheduling service (TaskPool,
#      sharded single-flight cache, admission queue) and the metrics/
#      trace instruments (obs_test's concurrent-increment tests), plus
#      bench_service, whose asserts prove cache-hit schedules
#      byte-identical to fresh solves and 16 concurrent duplicates
#      collapse to one MILP;
#   4. observability smoke: a dvsd batch with tracing enabled must emit
#      a Prometheus snapshot that dvs-stat --check validates (format +
#      every canonical family from scripts/metric_names.txt present)
#      and a Chrome trace with the per-job pipeline spans;
#   5. static analysis: dvs-lint audits every bundled workload's CFG and
#      profile (and, with --solve, certifies one MILP solution), and
#      scripts/lint.sh reports clang-tidy findings (advisory — skipped
#      when clang-tidy is not installed);
#   6. verification round trip: dvsd re-runs the observability batch
#      under --verify=strict, so every schedule the service emits is
#      independently audited (legality + MILP certificate) and any
#      verification error fails the job, and therefore this gate;
#   7. ASan+UBSan build of the full test suite (memory errors and UB in
#      the solver arithmetic and the service lifecycle).
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: default build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo
echo "== TSan: solver stack (lp_test, milp_test) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$JOBS" --target lp_test milp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/milp_test

echo
echo "== TSan: scheduling service (support_test, service_test, obs_test) =="
cmake --build build-tsan -j"$JOBS" --target support_test service_test obs_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/support_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test

echo
echo "== bench_service: cached == fresh, duplicates collapse =="
cmake --build build -j"$JOBS" --target bench_service
(cd build/bench && ./bench_service)

echo
echo "== observability: dvsd metrics + trace round trip =="
cmake --build build -j"$JOBS" --target dvsd dvs-stat
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
printf '%s\n' \
  '{"id":"a","workload":"gsm","tightness":0.5}' \
  '{"id":"b","workload":"gsm","tightness":0.5}' \
  '{"id":"c","workload":"adpcm","tightness":0.3}' \
  > "$OBS_TMP/jobs.jsonl"
./build/tools/dvsd --threads=2 --repeat=2 --quiet \
  --metrics-out="$OBS_TMP/metrics.prom" \
  --metrics-json="$OBS_TMP/metrics.json" \
  --trace-out="$OBS_TMP/trace.json" \
  "$OBS_TMP/jobs.jsonl"
# Prometheus format + every canonical family present.
./build/tools/dvs-stat --check --names=scripts/metric_names.txt \
  "$OBS_TMP/metrics.prom"
# The trace must carry the per-job pipeline spans.
for span in '"job"' '"profile"' '"bound"' '"solve"' '"milp_solve"'; do
  grep -q "$span" "$OBS_TMP/trace.json" \
    || { echo "trace is missing span $span"; exit 1; }
done
# The registry's JSON dump must stay parseable (obs_test proves this
# in-process; this catches drift in the dvsd wiring).
grep -q '"cdvs_stage_latency_seconds"' "$OBS_TMP/metrics.json" \
  || { echo "metrics JSON dump is missing stage latencies"; exit 1; }

echo
echo "== static analysis: dvs-lint over the bundled workloads =="
cmake --build build -j"$JOBS" --target dvs-lint
# Every workload x input: CFG structure + profile conservation laws.
./build/tools/dvs-lint
# One solved instance end to end: schedule legality + MILP certificate.
./build/tools/dvs-lint --solve --workload=gsm --quiet

echo
echo "== static analysis: clang-tidy (advisory) =="
scripts/lint.sh build || true

echo
echo "== dvsd --verify=strict: every emitted schedule audits clean =="
# bench_service's job set: every bundled workload at three deadline
# tightnesses, run twice (cold solve + cached verdict). Any audit error
# fails the job under strict mode, and dvsd's exit code fails the gate.
: > "$OBS_TMP/verify_jobs.jsonl"
for w in adpcm epic gsm mpeg_decode mpg123 ghostscript; do
  for t in 0.15 0.5 0.85; do
    echo "{\"id\":\"$w@$t\",\"workload\":\"$w\",\"tightness\":$t}" \
      >> "$OBS_TMP/verify_jobs.jsonl"
  done
done
./build/tools/dvsd --threads="$JOBS" --repeat=2 --quiet --verify=strict \
  "$OBS_TMP/verify_jobs.jsonl"

echo
echo "== ASan+UBSan: full test suite =="
cmake --preset asan-ubsan >/dev/null
cmake --build build-asan-ubsan -j"$JOBS"
(cd build-asan-ubsan && ctest --output-on-failure -j"$JOBS")

echo
echo "All checks passed."
