#!/usr/bin/env bash
#===- scripts/check.sh - tier-1 tests + TSan solver pass ------------------===#
#
# The repo's verification gate:
#   1. default build + full ctest suite (the tier-1 command of ROADMAP.md);
#   2. ThreadSanitizer build of the solver stack, running the LP and MILP
#      test binaries (the concurrent pieces: work-stealing branch-and-
#      bound, shared incumbent, warm-start engines);
#   3. ThreadSanitizer pass over the scheduling service (TaskPool,
#      sharded single-flight cache, admission queue) plus bench_service,
#      whose asserts prove cache-hit schedules byte-identical to fresh
#      solves and 16 concurrent duplicates collapse to one MILP.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: default build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo
echo "== TSan: solver stack (lp_test, milp_test) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$JOBS" --target lp_test milp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/milp_test

echo
echo "== TSan: scheduling service (support_test, service_test) =="
cmake --build build-tsan -j"$JOBS" --target support_test service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/support_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test

echo
echo "== bench_service: cached == fresh, duplicates collapse =="
cmake --build build -j"$JOBS" --target bench_service
(cd build/bench && ./bench_service)

echo
echo "All checks passed."
