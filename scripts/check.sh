#!/usr/bin/env bash
#===- scripts/check.sh - tier-1 tests + TSan solver pass ------------------===#
#
# The repo's verification gate:
#   1. default build + full ctest suite (the tier-1 command of ROADMAP.md);
#   2. ThreadSanitizer build of the solver stack, running the LP and MILP
#      test binaries (the concurrent pieces: work-stealing branch-and-
#      bound, shared incumbent, warm-start engines);
#   3. ThreadSanitizer pass over the scheduling service (TaskPool,
#      sharded single-flight cache, admission queue) and the metrics/
#      trace instruments (obs_test's concurrent-increment tests), plus
#      bench_service, whose asserts prove cache-hit schedules
#      byte-identical to fresh solves and 16 concurrent duplicates
#      collapse to one MILP;
#   4. observability smoke: a dvsd batch with tracing enabled must emit
#      a Prometheus snapshot that dvs-stat --check validates (format +
#      every canonical family from scripts/metric_names.txt present)
#      and a Chrome trace with the per-job pipeline spans;
#   5. static analysis: dvs-lint audits every bundled workload's CFG and
#      profile (and, with --solve, certifies one MILP solution), and
#      scripts/lint.sh reports clang-tidy findings (advisory — skipped
#      when clang-tidy is not installed);
#   6. verification round trip: dvsd re-runs the observability batch
#      under --verify=strict, so every schedule the service emits is
#      independently audited (legality + MILP certificate) and any
#      verification error fails the job, and therefore this gate;
#   7. ASan+UBSan build of the full test suite (memory errors and UB in
#      the solver arithmetic and the service lifecycle);
#   8. network round trip: dvs-server + dvs-loadgen over loopback under
#      TSan, then a default-build load run whose schedules must be
#      byte-identical to dvsd's for the same jobs (BENCH_net.json is
#      this run's record), a malformed-frame + slow-client probe the
#      server must survive, and dvs-stat --check over the server's
#      metrics snapshot (scripts/metric_names_net.txt).
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: default build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo
echo "== TSan: solver stack (lp_test, milp_test) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$JOBS" --target lp_test milp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lp_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/milp_test

echo
echo "== TSan: scheduling service (support_test, service_test, obs_test) =="
cmake --build build-tsan -j"$JOBS" --target support_test service_test obs_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/support_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/service_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test

echo
echo "== bench_service: cached == fresh, duplicates collapse =="
cmake --build build -j"$JOBS" --target bench_service
(cd build/bench && ./bench_service)

echo
echo "== observability: dvsd metrics + trace round trip =="
cmake --build build -j"$JOBS" --target dvsd dvs-stat
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
printf '%s\n' \
  '{"id":"a","workload":"gsm","tightness":0.5}' \
  '{"id":"b","workload":"gsm","tightness":0.5}' \
  '{"id":"c","workload":"adpcm","tightness":0.3}' \
  > "$OBS_TMP/jobs.jsonl"
./build/tools/dvsd --threads=2 --repeat=2 --quiet \
  --metrics-out="$OBS_TMP/metrics.prom" \
  --metrics-json="$OBS_TMP/metrics.json" \
  --trace-out="$OBS_TMP/trace.json" \
  "$OBS_TMP/jobs.jsonl"
# Prometheus format + every canonical family present.
./build/tools/dvs-stat --check --names=scripts/metric_names.txt \
  "$OBS_TMP/metrics.prom"
# The trace must carry the per-job pipeline spans.
for span in '"job"' '"profile"' '"bound"' '"solve"' '"milp_solve"'; do
  grep -q "$span" "$OBS_TMP/trace.json" \
    || { echo "trace is missing span $span"; exit 1; }
done
# The registry's JSON dump must stay parseable (obs_test proves this
# in-process; this catches drift in the dvsd wiring).
grep -q '"cdvs_stage_latency_seconds"' "$OBS_TMP/metrics.json" \
  || { echo "metrics JSON dump is missing stage latencies"; exit 1; }

echo
echo "== static analysis: dvs-lint over the bundled workloads =="
cmake --build build -j"$JOBS" --target dvs-lint
# Every workload x input: CFG structure + profile conservation laws.
./build/tools/dvs-lint
# One solved instance end to end: schedule legality + MILP certificate.
./build/tools/dvs-lint --solve --workload=gsm --quiet

echo
echo "== static analysis: clang-tidy (advisory) =="
scripts/lint.sh build || true

echo
echo "== dvsd --verify=strict: every emitted schedule audits clean =="
# bench_service's job set: every bundled workload at three deadline
# tightnesses, run twice (cold solve + cached verdict). Any audit error
# fails the job under strict mode, and dvsd's exit code fails the gate.
: > "$OBS_TMP/verify_jobs.jsonl"
for w in adpcm epic gsm mpeg_decode mpg123 ghostscript; do
  for t in 0.15 0.5 0.85; do
    echo "{\"id\":\"$w@$t\",\"workload\":\"$w\",\"tightness\":$t}" \
      >> "$OBS_TMP/verify_jobs.jsonl"
  done
done
./build/tools/dvsd --threads="$JOBS" --repeat=2 --quiet --verify=strict \
  "$OBS_TMP/verify_jobs.jsonl"

echo
echo "== ASan+UBSan: full test suite =="
cmake --preset asan-ubsan >/dev/null
cmake --build build-asan-ubsan -j"$JOBS"
(cd build-asan-ubsan && ctest --output-on-failure -j"$JOBS")

echo
echo "== net: TSan loopback round trip (net_test, dvs-server + dvs-loadgen) =="
cmake --build build-tsan -j"$JOBS" --target net_test dvs-server dvs-loadgen
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/net_test
NET_TMP="$OBS_TMP/net"
mkdir -p "$NET_TMP"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-server \
  --port=0 --threads=2 --port-file="$NET_TMP/tsan_port" \
  > "$NET_TMP/tsan_server.log" &
TSAN_SRV=$!
for _ in $(seq 1 100); do
  [ -s "$NET_TMP/tsan_port" ] && break
  sleep 0.1
done
[ -s "$NET_TMP/tsan_port" ] || { echo "TSan dvs-server never listened"; exit 1; }
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/dvs-loadgen \
  --port="$(cat "$NET_TMP/tsan_port")" --connections=4 --rate=1000 \
  --requests=2000 --distinct=8 \
  --benchmark_out="$NET_TMP/tsan_bench.json"
kill -TERM "$TSAN_SRV"
wait "$TSAN_SRV"

echo
echo "== net: throughput + schedules byte-identical to dvsd =="
cmake --build build -j"$JOBS" --target dvs-server dvs-loadgen
DISTINCT=16
./build/tools/dvs-server --port=0 --threads="$JOBS" \
  --idle-timeout-ms=500 --port-file="$NET_TMP/port" \
  --metrics-out="$NET_TMP/net_metrics.prom" \
  > "$NET_TMP/server.log" &
NET_SRV=$!
for _ in $(seq 1 100); do
  [ -s "$NET_TMP/port" ] && break
  sleep 0.1
done
[ -s "$NET_TMP/port" ] || { echo "dvs-server never listened"; exit 1; }
NET_PORT="$(cat "$NET_TMP/port")"
mkdir -p "$NET_TMP/netsched"
./build/tools/dvs-loadgen --port="$NET_PORT" --connections=8 \
  --rate=6000 --requests=18000 --distinct="$DISTINCT" \
  --schedules="$NET_TMP/netsched" --benchmark_out=BENCH_net.json
# The cached steady state must sustain at least 5k req/s end to end.
awk -F'"throughput_rps":' '{split($2,a,","); if (a[1] < 5000.0) {
  printf "throughput %.0f rps is below the 5000 rps floor\n", a[1];
  exit 1 } }' BENCH_net.json

# A garbage frame draws a reject, then a close — and must not take the
# server down.
exec 3<>"/dev/tcp/127.0.0.1/$NET_PORT"
printf 'NOT A CDVS FRAME' >&3
timeout 5 head -c 1 <&3 >/dev/null
exec 3<&- 3>&-
# A silent client is evicted by the idle timeout, nothing more.
exec 4<>"/dev/tcp/127.0.0.1/$NET_PORT"
sleep 1
exec 4<&- 4>&-
# The server still serves after both probes.
./build/tools/dvs-loadgen --port="$NET_PORT" --connections=2 \
  --rate=1000 --requests=500 --distinct=4 \
  --benchmark_out="$NET_TMP/probe_bench.json"
kill -TERM "$NET_SRV"
wait "$NET_SRV"
grep -q '"protocol_errors":1,' "$NET_TMP/server.log" \
  || { echo "garbage frame was not counted as a protocol error"; exit 1; }
grep -q '"idle_closes":1,' "$NET_TMP/server.log" \
  || { echo "silent client was not evicted by the idle timeout"; exit 1; }

# The wire serves bit-for-bit what dvsd serves: solve the same distinct
# jobs through the CLI and diff the schedule files.
: > "$NET_TMP/net_jobs.jsonl"
for k in $(seq 0 $((DISTINCT - 1))); do
  awk -v k="$k" -v n="$DISTINCT" 'BEGIN {
    printf "{\"id\":\"k%d\",\"workload\":\"gsm\",\"tightness\":%.17g}\n",
           k, 0.2 + 0.6 * k / n }' >> "$NET_TMP/net_jobs.jsonl"
done
mkdir -p "$NET_TMP/dsched"
./build/tools/dvsd --threads="$JOBS" --quiet \
  --schedules="$NET_TMP/dsched" "$NET_TMP/net_jobs.jsonl"
diff -r "$NET_TMP/netsched" "$NET_TMP/dsched" \
  || { echo "wire schedules differ from dvsd schedules"; exit 1; }

# Every canonical net metric family made it into the snapshot.
./build/tools/dvs-stat --check --names=scripts/metric_names_net.txt \
  "$NET_TMP/net_metrics.prom"

echo
echo "All checks passed."
