//===- examples/realtime_decoder.cpp - multi-input video playback ---------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating scenario: a video player must hit a playback
// deadline, and any speed beyond real time is wasted — energy is what
// matters. A shipped binary cannot be re-optimized per input, so the
// vendor profiles *representative inputs per category* (here: streams
// with and without B frames) and bakes ONE schedule that
//  * minimizes the probability-weighted average energy, and
//  * meets the playback deadline for every profiled category.
// This example builds that schedule with the multi-category MILP and
// then plays all four test streams under it, comparing against fixed
// 600 MHz operation.
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"
#include "profile/Profile.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace cdvs;

int main() {
  Workload W = workloadByName("mpeg_decode");
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  // Profile one representative input per category.
  auto profileOf = [&](const char *Input) {
    Simulator Sim(*W.Fn);
    W.input(Input).Setup(Sim);
    return collectProfile(Sim, Modes);
  };
  Profile NoB = profileOf("bbc");  // no B frames
  Profile B2 = profileOf("flwr");  // 2 B frames between anchors

  // Playback deadline per category: the stream's real-time rate is far
  // below peak decode speed (2.4x the 600 MHz time, still faster than
  // all-200 MHz can deliver), so the scheduler has real slack to spend.
  double DeadNoB = 2.4 * NoB.TotalTimeAtMode[1];
  double DeadB2 = 2.4 * B2.TotalTimeAtMode[1];
  std::printf("playback deadlines: noB %.2f ms, B2 %.2f ms\n",
              DeadNoB * 1e3, DeadB2 * 1e3);

  // One schedule for the shipped binary: average-energy objective over
  // both categories, each category's deadline enforced.
  std::vector<CategoryProfile> Cats = {{NoB, 0.5}, {B2, 0.5}};
  DvsOptions O;
  O.InitialMode = static_cast<int>(Modes.size()) - 1;
  DvsScheduler Sched(*W.Fn, Cats, Modes, Regulator, O);
  ErrorOr<ScheduleResult> R = Sched.schedule({DeadNoB, DeadB2});
  if (!R) {
    std::printf("scheduling failed: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("schedule: %d edges in %d independent groups, solved in "
              "%.2f ms\n",
              R->NumEdges, R->NumIndependentGroups,
              R->SolveSeconds * 1e3);

  // Play every stream under the shipped schedule.
  std::printf("\n%-6s %-4s %12s %12s %12s %10s\n", "input", "cat",
              "time (ms)", "deadline", "energy (uJ)", "vs 600MHz");
  for (const WorkloadInput &In : W.Inputs) {
    Simulator Sim(*W.Fn);
    In.Setup(Sim);
    Profile P = collectProfile(Sim, Modes);
    RunStats Run = Sim.run(Modes, R->Assignment, Regulator);
    double Deadline = 2.4 * P.TotalTimeAtMode[1]; // per-stream target
    std::printf("%-6s %-4s %12.2f %12.2f %12.1f %9.1f%%\n",
                In.Name.c_str(), In.Category.c_str(),
                Run.TimeSeconds * 1e3, Deadline * 1e3,
                Run.EnergyJoules * 1e6,
                100.0 * (1.0 - Run.EnergyJoules /
                                   P.TotalEnergyAtMode[1]));
  }
  std::printf("\n(negative %% = the schedule spent more than fixed "
              "600 MHz; positive = saved)\n");
  return 0;
}
