//===- examples/quickstart.cpp - End-to-end compile-time DVS --------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// The whole toolchain on one program, start to finish:
//  1. build a program in the register-machine IR (here: the mpeg_decode
//     workload, but any Function works);
//  2. profile it per mode on the cycle-level simulator;
//  3. pick a deadline between the fastest and slowest single-mode runs;
//  4. let the MILP scheduler place mode-set instructions on CFG edges;
//  5. re-execute with the schedule and compare energy against the best
//     single-frequency run that meets the same deadline.
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"
#include "power/ModeTable.h"
#include "power/TransitionModel.h"
#include "profile/Profile.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace cdvs;

int main() {
  // 1. A program. (See src/workloads for building your own Function
  //    with IRBuilder.)
  Workload W = workloadByName("mpeg_decode");
  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);

  // 2. The XScale-like mode table and regulator of the paper, and a
  //    per-mode profile.
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();
  Profile Prof = collectProfile(Sim, Modes);

  std::printf("profiled %s: %d blocks, %zu edges\n", W.Name.c_str(),
              Prof.NumBlocks, Prof.EdgeCounts.size());
  for (size_t M = 0; M < Modes.size(); ++M)
    std::printf("  at %3.0f MHz / %.2f V: time %8.3f ms, energy %7.3f mJ\n",
                Modes.level(M).Hertz / 1e6, Modes.level(M).Volts,
                Prof.TotalTimeAtMode[M] * 1e3,
                Prof.TotalEnergyAtMode[M] * 1e3);

  // 3. A mid-range deadline: halfway between the fastest and slowest.
  double Deadline =
      0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());
  std::printf("deadline: %.3f ms\n", Deadline * 1e3);

  // 4. MILP scheduling (initial mode = fastest, like a freshly woken
  //    processor).
  DvsOptions Opts;
  Opts.InitialMode = static_cast<int>(Modes.size()) - 1;
  DvsScheduler Scheduler(*W.Fn, Prof, Modes, Regulator, Opts);
  ErrorOr<ScheduleResult> R = Scheduler.schedule(Deadline);
  if (!R) {
    std::printf("scheduling failed: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("MILP: %d edges, %d independent groups, %d binaries, "
              "%ld nodes, %.3f s solve\n",
              R->NumEdges, R->NumIndependentGroups, R->NumBinaries,
              R->Nodes, R->SolveSeconds);

  // 5. Execute with the schedule.
  RunStats Dvs = Sim.run(Modes, R->Assignment, Regulator);
  std::printf("DVS run:  time %.3f ms (deadline %.3f), energy %.3f mJ, "
              "%llu transitions\n",
              Dvs.TimeSeconds * 1e3, Deadline * 1e3,
              Dvs.EnergyJoules * 1e3,
              static_cast<unsigned long long>(Dvs.Transitions));

  // Best single mode that meets the deadline, for comparison.
  double BestSingle = -1.0;
  for (size_t M = 0; M < Modes.size(); ++M)
    if (Prof.TotalTimeAtMode[M] <= Deadline)
      if (BestSingle < 0.0 || Prof.TotalEnergyAtMode[M] < BestSingle)
        BestSingle = Prof.TotalEnergyAtMode[M];
  if (BestSingle > 0.0)
    std::printf("best single mode meeting deadline: %.3f mJ -> DVS saves "
                "%.1f%%\n",
                BestSingle * 1e3,
                100.0 * (1.0 - Dvs.EnergyJoules / BestSingle));
  return 0;
}
