//===- examples/custom_kernel.cpp - bring your own program -----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// How to use the library on your own code: build a program with
// IRBuilder (here, a matrix-vector kernel that streams a large matrix,
// followed by a compute-only normalization loop), then
//  1. extract the analytic model's program parameters from one run,
//  2. ask the Section 3 model where the savings ceiling is, and
//  3. compare with what the MILP scheduler actually extracts.
//
//===----------------------------------------------------------------------===//

#include "analytic/AnalyticModel.h"
#include "dvs/DvsScheduler.h"
#include "ir/IRBuilder.h"
#include "profile/Profile.h"

#include <cstdio>
#include <memory>

using namespace cdvs;

namespace {

/// y = A*x over a Rows x 64 matrix (streams DRAM), then an iterative
/// multiply-heavy normalization over an L1-resident window — a clean
/// memory-phase / compute-phase split.
std::shared_ptr<Function> buildMatVec() {
  const int64_t MatOff = 64 * 1024, VecOff = 0, OutOff = 16 * 1024;
  auto Fn = std::make_shared<Function>("matvec", 20, 2 * 1024 * 1024);
  IRBuilder B(*Fn);
  int Entry = B.createBlock("entry");
  int RowHead = B.createBlock("row_head");
  int ColHead = B.createBlock("col_head");
  int ColBody = B.createBlock("col_body");
  int RowLatch = B.createBlock("row_latch");
  int NormHead = B.createBlock("norm_head");
  int NormBody = B.createBlock("norm_body");
  int Exit = B.createBlock("exit");

  // r1 = rows (parameter), r2..: temps.
  B.setInsertPoint(Entry);
  B.movImm(2, 1);        // const 1
  B.movImm(3, 2);        // const 2
  B.movImm(4, 0);        // row
  B.movImm(5, MatOff);   // matrix base
  B.movImm(6, VecOff);   // vector base
  B.movImm(7, OutOff);   // output base
  B.movImm(14, 64);      // columns
  B.movImm(17, 32);      // normalization sweeps per row
  B.movImm(18, 2047);    // normalization window mask (L1 resident)
  B.jump(RowHead);

  B.setInsertPoint(RowHead);
  B.cmpLt(8, 4, 1);
  B.condBr(8, ColHead, NormHead);

  B.setInsertPoint(ColHead);
  B.movImm(9, 0);  // col
  B.movImm(10, 0); // acc
  B.jump(ColBody);

  B.setInsertPoint(ColBody);
  // a = mat[row*64 + col] (streams), v = vec[col] (L1 hit)
  B.mul(11, 4, 14);
  B.add(11, 11, 9);
  B.shl(11, 11, 3); // x8: pad rows so the stream exceeds the caches
  B.add(11, 11, 5);
  B.load(12, 11, 0);
  B.shl(13, 9, 3);
  B.and_(13, 13, 14); // small vector window
  B.add(13, 13, 6);
  B.load(15, 13, 0);
  B.mul(16, 12, 15);
  B.add(10, 10, 16);
  B.add(9, 9, 2);
  B.cmpLt(8, 9, 14);
  B.condBr(8, ColBody, RowLatch);

  B.setInsertPoint(RowLatch);
  B.shl(11, 4, 3);
  B.add(11, 11, 7);
  B.store(10, 11, 0);
  B.add(4, 4, 2);
  B.jump(RowHead);

  // Normalization: iterative compute over the output (L1 resident).
  B.setInsertPoint(NormHead);
  B.movImm(4, 0);
  B.jump(NormBody);

  B.setInsertPoint(NormBody);
  B.and_(11, 4, 18); // stay inside a 16 KB window: L1 resident
  B.shl(11, 11, 3);
  B.add(11, 11, 7);
  B.load(12, 11, 0);
  B.mul(12, 12, 12);
  B.shr(12, 12, 3);
  B.mul(12, 12, 3);
  B.shr(12, 12, 2);
  B.store(12, 11, 0);
  B.add(4, 4, 2);
  B.mul(16, 1, 17); // rows * 32 normalization iterations
  B.cmpLt(8, 4, 16);
  B.condBr(8, NormBody, Exit);

  B.setInsertPoint(Exit);
  B.ret();
  return Fn;
}

} // namespace

int main() {
  auto Fn = buildMatVec();
  ErrorOr<bool> Ok = Fn->verify();
  if (!Ok) {
    std::printf("verification failed: %s\n", Ok.message().c_str());
    return 1;
  }

  Simulator Sim(*Fn);
  Sim.setInitialReg(1, 2600); // rows
  for (uint64_t A = 0; A < 2 * 1024 * 1024; A += 4096)
    Sim.setInitialMem32(A, static_cast<uint32_t>(A % 251));

  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();
  Profile Prof = collectProfile(Sim, Modes);

  const RunStats &Ref = Prof.Reference;
  std::printf("program parameters at 800 MHz:\n"
              "  Noverlap   = %8.1f Kcycles\n"
              "  Ndependent = %8.1f Kcycles\n"
              "  Ncache     = %8.1f Kcycles\n"
              "  tinvariant = %8.1f us\n",
              Ref.NoverlapCycles / 1e3, Ref.NdependentCycles / 1e3,
              Ref.NcacheCycles / 1e3, Ref.TinvariantSeconds * 1e6);

  AnalyticModel Model(VfModel::paperDefault(), 0.6, 1.65);
  double Deadline =
      0.5 * (Prof.TotalTimeAtMode.front() + Prof.TotalTimeAtMode.back());

  AnalyticParams P;
  P.NoverlapCycles = static_cast<double>(Ref.NoverlapCycles);
  P.NdependentCycles = static_cast<double>(Ref.NdependentCycles);
  P.NcacheCycles = static_cast<double>(Ref.NcacheCycles);
  P.TinvariantSeconds = Ref.TinvariantSeconds;
  P.TdeadlineSeconds = Deadline;

  std::printf("regime: %s; deadline %.2f ms\n",
              analyticCaseName(Model.classify(P)), Deadline * 1e3);
  VoltageLevel Single = Model.optimalSingleSetting(P);
  std::printf("inter-program (OS-level) single setting: %.0f MHz @ "
              "%.3f V\n",
              Single.Hertz / 1e6, Single.Volts);
  DiscreteSolution D = Model.solveDiscrete(P, Modes);
  std::printf("analytic ceiling (free switching): %.1f%% saving over "
              "the best single level\n",
              100.0 * D.SavingRatio);

  DvsOptions O;
  O.InitialMode = 2;
  DvsScheduler Sched(*Fn, Prof, Modes, Regulator, O);
  ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
  if (!R) {
    std::printf("scheduling failed: %s\n", R.message().c_str());
    return 1;
  }
  RunStats Run = Sim.run(Modes, R->Assignment, Regulator);
  double BestSingle = -1.0;
  for (size_t M = 0; M < Modes.size(); ++M)
    if (Prof.TotalTimeAtMode[M] <= Deadline &&
        (BestSingle < 0.0 || Prof.TotalEnergyAtMode[M] < BestSingle))
      BestSingle = Prof.TotalEnergyAtMode[M];
  std::printf("MILP schedule: %.1f%% realized saving (time %.2f ms, "
              "%llu transitions)\n",
              100.0 * (1.0 - Run.EnergyJoules / BestSingle),
              Run.TimeSeconds * 1e3,
              static_cast<unsigned long long>(Run.Transitions));
  return 0;
}
