//===- examples/energy_explorer.cpp - deadline/energy trade-off curve -----===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Sweeps the deadline of one workload from stringent to lax and prints
// the realized energy/time/transition curve of the MILP schedule next
// to the best single-frequency alternative — the picture an engineer
// wants before deciding whether intra-program DVS is worth deploying
// for their kernel (the paper's Section 6.3 question). Pass a workload
// name as argv[1] (default: epic).
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"
#include "profile/Profile.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace cdvs;

int main(int Argc, char **Argv) {
  std::string Name = Argc > 1 ? Argv[1] : "epic";
  Workload W = workloadByName(Name);
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Regulator = TransitionModel::paperTypical();

  Simulator Sim(*W.Fn);
  W.defaultInput().Setup(Sim);
  Profile Prof = collectProfile(Sim, Modes);

  double TFast = Prof.TotalTimeAtMode.back();
  double TSlow = Prof.TotalTimeAtMode.front();
  std::printf("%s: %.2f ms at 800 MHz ... %.2f ms at 200 MHz\n",
              Name.c_str(), TFast * 1e3, TSlow * 1e3);

  Table T({"deadline (ms)", "DVS energy (uJ)", "DVS time (ms)",
           "transitions", "best-single (uJ)", "DVS/single"});
  for (int I = 0; I <= 12; ++I) {
    double Alpha = static_cast<double>(I) / 12.0;
    double Deadline = (1.0 - Alpha) * (1.02 * TFast) +
                      Alpha * (0.99 * TSlow);
    DvsOptions O;
    O.InitialMode = static_cast<int>(Modes.size()) - 1;
    DvsScheduler Sched(*W.Fn, Prof, Modes, Regulator, O);
    ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
    if (!R) {
      T.addRow({formatDouble(Deadline * 1e3, 2), "infeasible", "-", "-",
                "-", "-"});
      continue;
    }
    RunStats Run = Sim.run(Modes, R->Assignment, Regulator);
    double BestSingle = -1.0;
    for (size_t M = 0; M < Modes.size(); ++M)
      if (Prof.TotalTimeAtMode[M] <= Deadline &&
          (BestSingle < 0.0 || Prof.TotalEnergyAtMode[M] < BestSingle))
        BestSingle = Prof.TotalEnergyAtMode[M];
    T.addRow({formatDouble(Deadline * 1e3, 2),
              formatDouble(Run.EnergyJoules * 1e6, 1),
              formatDouble(Run.TimeSeconds * 1e3, 2),
              formatInt(static_cast<long long>(Run.Transitions)),
              BestSingle > 0.0 ? formatDouble(BestSingle * 1e6, 1)
                               : "n/a",
              BestSingle > 0.0
                  ? formatDouble(Run.EnergyJoules / BestSingle, 3)
                  : "-"});
  }
  T.print();
  return 0;
}
