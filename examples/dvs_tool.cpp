//===- examples/dvs_tool.cpp - textual-IR scheduling driver ----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// A compiler-driver-shaped front end: read a program in the textual IR
// format (see ir/Parser.h), profile it on the simulator, run the MILP
// scheduler, and print the resulting mode-set instruction listing.
//
//   dvs_tool [file.cdvs] [deadline-fraction]
//
// With no file, an embedded two-phase sample is used. The deadline is
// given as a fraction in (0,1]: 0 = fastest single-mode time, 1 =
// slowest (default 0.5). Programs must be self-initializing (set up
// their own registers/memory with movimm/store).
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"
#include "dvs/ScheduleIO.h"
#include "ir/Parser.h"
#include "profile/Profile.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cdvs;

namespace {

const char *SampleProgram = R"(# two-phase sample: streaming scan, then a multiply loop
function sample (regs=12, mem=1048576)
0: entry
  movimm  d=r1  s1=r0 s2=r0 imm=0       # i
  movimm  d=r2  s1=r0 s2=r0 imm=12000   # scan trips
  movimm  d=r3  s1=r0 s2=r0 imm=1
  movimm  d=r4  s1=r0 s2=r0 imm=0       # acc
  movimm  d=r5  s1=r0 s2=r0 imm=64      # stride
  jump -> 1
1: scan_head
  cmplt   d=r6  s1=r1 s2=r2  imm=0
  condbr r6 -> 2, 3
2: scan_body
  mul     d=r7  s1=r1 s2=r5  imm=0
  load    d=r8  s1=r7 s2=r0  imm=0
  add     d=r4  s1=r4 s2=r8  imm=0
  add     d=r1  s1=r1 s2=r3  imm=0
  jump -> 1
3: crunch_init
  movimm  d=r1  s1=r0 s2=r0 imm=0
  movimm  d=r2  s1=r0 s2=r0 imm=9000
  jump -> 4
4: crunch_head
  cmplt   d=r6  s1=r1 s2=r2  imm=0
  condbr r6 -> 5, 6
5: crunch_body
  mul     d=r4  s1=r4 s2=r3  imm=0
  add     d=r4  s1=r4 s2=r1  imm=0
  mul     d=r7  s1=r4 s2=r4  imm=0
  shr     d=r4  s1=r7 s2=r3  imm=0
  add     d=r1  s1=r1 s2=r3  imm=0
  jump -> 4
6: exit
  ret
)";

} // namespace

int main(int Argc, char **Argv) {
  std::string Text = SampleProgram;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }
  double Fraction = Argc > 2 ? std::atof(Argv[2]) : 0.5;

  ErrorOr<Function> F = parseFunction(Text);
  if (!F) {
    std::fprintf(stderr, "parse error: %s\n", F.message().c_str());
    return 1;
  }
  std::printf("parsed %s: %d blocks, %zu edges\n", F->name().c_str(),
              F->numBlocks(), F->edges().size());

  Simulator Sim(*F);
  ModeTable Modes = ModeTable::xscale3();
  TransitionModel Reg = TransitionModel::paperTypical();
  Profile Prof = collectProfile(Sim, Modes);

  double Deadline = (1.0 - Fraction) * Prof.TotalTimeAtMode.back() +
                    Fraction * Prof.TotalTimeAtMode.front();
  std::printf("deadline: %.3f ms (fraction %.2f of the %0.3f..%0.3f ms "
              "envelope)\n",
              Deadline * 1e3, Fraction,
              Prof.TotalTimeAtMode.back() * 1e3,
              Prof.TotalTimeAtMode.front() * 1e3);

  DvsOptions O;
  O.InitialMode = static_cast<int>(Modes.size()) - 1;
  DvsScheduler Sched(*F, Prof, Modes, Reg, O);
  ErrorOr<ScheduleResult> R = Sched.schedule(Deadline);
  if (!R) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 R.message().c_str());
    return 1;
  }

  std::printf("\n%s\n", printAssignment(*F, R->Assignment, Modes,
                                        &Prof)
                            .c_str());
  std::printf("edge modes: %s\n",
              summarizeAssignment(R->Assignment, Modes).c_str());

  RunStats Run = Sim.run(Modes, R->Assignment, Reg);
  std::printf("executed: %.3f ms, %.1f uJ, %llu transitions\n",
              Run.TimeSeconds * 1e3, Run.EnergyJoules * 1e6,
              static_cast<unsigned long long>(Run.Transitions));
  return 0;
}
