//===- dvs/PathScheduler.cpp - Path-context MILP DVS scheduling -----------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/PathScheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

using namespace cdvs;

ErrorOr<ScheduleResult> cdvs::schedulePathContext(
    const Function &Fn, const Profile &Prof, const ModeTable &Modes,
    const TransitionModel &Transitions, double DeadlineSeconds,
    DvsOptions Opts) {
  const int NumModes = static_cast<int>(Modes.size());
  assert(Prof.NumModes == NumModes && "profile does not match modes");
  assert(Prof.NumBlocks == Fn.numBlocks() &&
         "profile does not match function");

  // Units: the virtual pre-entry path first, then every profiled path.
  const LocalPath VirtualPath{-2, -1, 0};
  std::vector<LocalPath> Units = {VirtualPath};
  std::map<LocalPath, int> UnitOf = {{VirtualPath, 0}};
  for (const auto &[Path, D] : Prof.PathCounts) {
    if (D == 0)
      continue;
    UnitOf[Path] = static_cast<int>(Units.size());
    Units.push_back(Path);
  }
  const int NumUnits = static_cast<int>(Units.size());

  LpProblem P;
  std::vector<std::vector<int>> K(NumUnits, std::vector<int>(NumModes));
  for (int U = 0; U < NumUnits; ++U)
    for (int M = 0; M < NumModes; ++M)
      K[U][M] = P.addVariable(0.0, 1.0, 0.0,
                              "p_u" + std::to_string(U) + "_m" +
                                  std::to_string(M));

  // Execution costs. The virtual unit covers the entry block's first
  // invocation; every other unit (h,i,j) covers Dhij invocations of
  // block j.
  std::vector<LpTerm> DeadlineRow;
  for (int U = 0; U < NumUnits; ++U) {
    auto [H, I, J] = Units[U];
    double Count =
        U == 0 ? 1.0
               : static_cast<double>(Prof.PathCounts.at(Units[U]));
    int Block = U == 0 ? 0 : J;
    (void)H;
    (void)I;
    for (int M = 0; M < NumModes; ++M) {
      P.setCost(K[U][M],
                Count * Prof.EnergyPerInvocation[Block][M]);
      double T = Count * Prof.TimePerInvocation[Block][M];
      if (T != 0.0)
        DeadlineRow.push_back({K[U][M], T});
    }
  }

  // Transition terms between consecutive units, weighted by quads.
  struct PairData {
    int EVar = -1;
    int TVar = -1;
    double Count = 0.0;
  };
  std::map<std::pair<int, int>, PairData> Pairs;
  auto noteQuad = [&](int U1, int U2, double Q) {
    if (U1 == U2)
      return;
    auto Key = std::minmax(U1, U2);
    Pairs[{Key.first, Key.second}].Count += Q;
  };
  for (const auto &[Quad, Q] : Prof.Reference.QuadCounts) {
    auto [A, B, C, D] = Quad;
    LocalPath From{A, B, C};
    LocalPath To{B, C, D};
    auto ItF = UnitOf.find(From);
    auto ItT = UnitOf.find(To);
    // Both units must be profiled (counts > 0 guarantee existence).
    if (ItF == UnitOf.end() || ItT == UnitOf.end())
      continue;
    noteQuad(ItF->second, ItT->second, static_cast<double>(Q));
  }

  const double CE = Transitions.energyConstant();
  const double CT = Transitions.timeConstant();
  for (auto &[Key, PD] : Pairs) {
    PD.EVar = P.addVariable(0.0, lpInf(), PD.Count * CE);
    PD.TVar = P.addVariable(0.0, lpInf(), 0.0);
    std::vector<LpTerm> SqMinus, SqPlus, VMinus, VPlus;
    for (int M = 0; M < NumModes; ++M) {
      double V = Modes.level(M).Volts;
      SqMinus.push_back({K[Key.first][M], V * V});
      SqMinus.push_back({K[Key.second][M], -V * V});
      VMinus.push_back({K[Key.first][M], V});
      VMinus.push_back({K[Key.second][M], -V});
    }
    SqPlus = SqMinus;
    VPlus = VMinus;
    SqMinus.push_back({PD.EVar, -1.0});
    P.addRow(RowSense::LE, 0.0, SqMinus);
    SqPlus.push_back({PD.EVar, 1.0});
    P.addRow(RowSense::GE, 0.0, SqPlus);
    VMinus.push_back({PD.TVar, -1.0});
    P.addRow(RowSense::LE, 0.0, VMinus);
    VPlus.push_back({PD.TVar, 1.0});
    P.addRow(RowSense::GE, 0.0, VPlus);
    DeadlineRow.push_back({PD.TVar, PD.Count * CT});
  }

  // SOS1 rows and the deadline.
  for (int U = 0; U < NumUnits; ++U) {
    std::vector<LpTerm> Sum;
    for (int M = 0; M < NumModes; ++M)
      Sum.push_back({K[U][M], 1.0});
    P.addRow(RowSense::EQ, 1.0, Sum);
  }
  for (int M = 0; M < NumModes; ++M) {
    double Fix = M == Opts.InitialMode ? 1.0 : 0.0;
    P.setBounds(K[0][M], Fix, Fix);
  }
  P.addRow(RowSense::LE, DeadlineSeconds, DeadlineRow);

  std::vector<int> Integers;
  for (auto &Group : K)
    Integers.insert(Integers.end(), Group.begin(), Group.end());
  MilpSolver Solver(P, Integers, Opts.Milp);
  for (auto &Group : K)
    Solver.addSos1Group(Group);

  auto T0 = std::chrono::steady_clock::now();
  MilpSolution Sol = Solver.solve();
  auto T1 = std::chrono::steady_clock::now();

  ScheduleResult R;
  R.Status = Sol.Status;
  R.SolveSeconds = std::chrono::duration<double>(T1 - T0).count();
  R.Nodes = Sol.Nodes;
  R.LpIterations = Sol.LpIterations;
  R.NumEdges = static_cast<int>(Fn.edges().size());
  R.NumIndependentGroups = NumUnits;
  R.NumBinaries = static_cast<int>(Integers.size());

  if (Sol.Status == MilpStatus::Infeasible)
    return makeError("deadline is infeasible for this program");
  if (Sol.Status == MilpStatus::Unbounded ||
      Sol.Status == MilpStatus::Limit)
    return makeError("MILP search failed: " +
                     std::string(milpStatusName(Sol.Status)));
  R.PredictedEnergyJoules = Sol.Objective;

  auto modeOfUnit = [&](int U) {
    int Best = 0;
    double BestVal = -1.0;
    for (int M = 0; M < NumModes; ++M)
      if (Sol.X[K[U][M]] > BestVal) {
        BestVal = Sol.X[K[U][M]];
        Best = M;
      }
    return Best;
  };

  R.Assignment.InitialMode = Opts.InitialMode;
  // Path-context decisions plus a majority-vote per-edge fallback for
  // contexts the profile never saw.
  std::map<CfgEdge, std::map<int, uint64_t>> Votes;
  for (int U = 1; U < NumUnits; ++U) {
    auto [H, I, J] = Units[U];
    int Mode = modeOfUnit(U);
    R.Assignment.PathMode[{H, I, J}] = Mode;
    Votes[{I, J}][Mode] += Prof.PathCounts.at(Units[U]);
  }
  for (const CfgEdge &E : Fn.edges()) {
    auto It = Votes.find(E);
    if (It == Votes.end()) {
      R.Assignment.EdgeMode[E] = 0; // unprofiled: slowest
      continue;
    }
    int Best = 0;
    uint64_t BestCount = 0;
    for (const auto &[Mode, Count] : It->second)
      if (Count > BestCount) {
        BestCount = Count;
        Best = Mode;
      }
    R.Assignment.EdgeMode[E] = Best;
  }
  return R;
}
