//===- dvs/EdgeGroups.cpp - Edge-filtering group computation --------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/EdgeGroups.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

using namespace cdvs;

namespace {

/// Plain union-find over edge indices.
class UnionFind {
public:
  explicit UnionFind(int N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void unite(int A, int B) { Parent[find(A)] = find(B); }

private:
  std::vector<int> Parent;
};

} // namespace

EdgeGroups
cdvs::computeEdgeGroups(const Function &Fn,
                        const std::vector<CategoryProfile> &Categories,
                        double FilterThreshold) {
  EdgeGroups G;
  // Edge 0 is the virtual entry edge (-1 -> 0) carrying the initial mode.
  G.Edges.push_back({-1, 0});
  for (const CfgEdge &E : Fn.edges())
    G.Edges.push_back(E);
  const int NumEdges = static_cast<int>(G.Edges.size());

  std::map<CfgEdge, int> EdgeIndex;
  for (int I = 0; I < NumEdges; ++I)
    EdgeIndex[G.Edges[I]] = I;

  // Probability-weighted execution count and destination energy (at the
  // reference mode: fastest) per edge.
  const int RefMode =
      Categories.empty() ? 0 : Categories.front().Data.NumModes - 1;
  G.Count.assign(NumEdges, 0.0);
  std::vector<double> DestEnergy(NumEdges, 0.0);
  G.Count[0] = 1.0;
  for (const CategoryProfile &C : Categories) {
    DestEnergy[0] += C.Probability * C.Data.EnergyPerInvocation[0][RefMode];
    for (const auto &[E, Cnt] : C.Data.EdgeCounts) {
      auto It = EdgeIndex.find(E);
      assert(It != EdgeIndex.end() && "profiled edge missing from CFG");
      G.Count[It->second] += C.Probability * static_cast<double>(Cnt);
      DestEnergy[It->second] +=
          C.Probability * static_cast<double>(Cnt) *
          C.Data.EnergyPerInvocation[E.To][RefMode];
    }
  }

  UnionFind UF(NumEdges);
  if (FilterThreshold > 0.0 && NumEdges > 1) {
    double Total =
        std::accumulate(DestEnergy.begin(), DestEnergy.end(), 0.0);
    // Real edges sorted by ascending destination energy.
    std::vector<int> Order;
    for (int I = 1; I < NumEdges; ++I)
      Order.push_back(I);
    std::sort(Order.begin(), Order.end(), [&](int A, int B) {
      return DestEnergy[A] < DestEnergy[B];
    });

    double Cum = 0.0;
    for (int E : Order) {
      if (Cum + DestEnergy[E] > FilterThreshold * Total)
        break;
      Cum += DestEnergy[E];
      // Edges the profile never saw stay independent: they must keep
      // their "unprofiled" status so decoding can pin them to the
      // slowest mode instead of inheriting a hot group's speed.
      if (G.Count[E] == 0.0)
        continue;
      // Tie this edge to the dominant incoming edge of its source block.
      int Src = G.Edges[E].From;
      assert(Src >= 0 && "virtual edge cannot be filtered");
      int Best = -1;
      double BestCount = -1.0;
      for (int Other = 0; Other < NumEdges; ++Other) {
        if (G.Edges[Other].To != Src)
          continue;
        if (G.Count[Other] > BestCount) {
          BestCount = G.Count[Other];
          Best = Other;
        }
      }
      if (Best >= 0)
        UF.unite(E, Best);
    }
  }

  G.GroupOf.assign(NumEdges, -1);
  std::map<int, int> RepToGroup;
  for (int I = 0; I < NumEdges; ++I) {
    int Rep = UF.find(I);
    auto [It, Inserted] =
        RepToGroup.insert({Rep, static_cast<int>(RepToGroup.size())});
    (void)Inserted;
    G.GroupOf[I] = It->second;
  }
  G.NumGroups = static_cast<int>(RepToGroup.size());
  return G;
}
