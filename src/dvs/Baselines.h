//===- dvs/Baselines.h - Prior-work DVS scheduling baselines ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two prior compile-time DVS approaches the paper positions itself
/// against, implemented over the same Profile/ModeAssignment machinery
/// so they are directly comparable to the MILP scheduler:
///
///  * Saputra et al. (LCTES'02): the same per-region MILP but with NO
///    transition energy/time accounting. Its schedules look better on
///    paper and then pay unmodeled switch costs at run time — the gap
///    the paper's Section 4.2 extension closes.
///
///  * Hsu & Kremer (PACS'02 heuristic): slow down the most memory-bound
///    region(s) to the lowest frequency whose dilation still meets the
///    deadline, keep everything else at full speed. Greedy, no solver.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_DVS_BASELINES_H
#define CDVS_DVS_BASELINES_H

#include "dvs/DvsScheduler.h"

namespace cdvs {

/// Saputra-style scheduling: the paper's MILP with transition costs
/// zeroed during optimization. The returned assignment should be
/// *evaluated* under the real TransitionModel to expose the unmodeled
/// cost (deadline overshoot / energy misprediction).
ErrorOr<ScheduleResult>
scheduleIgnoringTransitionCosts(const Function &Fn, const Profile &Prof,
                                const ModeTable &Modes,
                                double DeadlineSeconds,
                                DvsOptions Opts = DvsOptions());

/// Hsu–Kremer-style greedy: rank blocks by memory-boundedness — the
/// ratio of per-invocation time that does NOT scale when the clock
/// drops (stall under asynchronous memory) — then walk the ranking,
/// moving whole blocks (all their incoming edges) to the slowest mode
/// while the profiled deadline still holds, charging transition time
/// for mode boundaries conservatively.
///
/// \returns the assignment plus the predicted time; errs if even the
/// all-fastest schedule misses the deadline.
ErrorOr<ScheduleResult>
scheduleHsuKremer(const Function &Fn, const Profile &Prof,
                  const ModeTable &Modes,
                  const TransitionModel &Transitions,
                  double DeadlineSeconds, int InitialMode = -1);

} // namespace cdvs

#endif // CDVS_DVS_BASELINES_H
