//===- dvs/Baselines.cpp - Prior-work DVS scheduling baselines ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/Baselines.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace cdvs;

ErrorOr<ScheduleResult> cdvs::scheduleIgnoringTransitionCosts(
    const Function &Fn, const Profile &Prof, const ModeTable &Modes,
    double DeadlineSeconds, DvsOptions Opts) {
  // Saputra et al.: identical formulation, free mode switches.
  TransitionModel Free(0.0, 0.0, 1.0);
  DvsScheduler Scheduler(Fn, Prof, Modes, Free, Opts);
  return Scheduler.schedule(DeadlineSeconds);
}

ErrorOr<ScheduleResult> cdvs::scheduleHsuKremer(
    const Function &Fn, const Profile &Prof, const ModeTable &Modes,
    const TransitionModel &Transitions, double DeadlineSeconds,
    int InitialMode) {
  auto T0 = std::chrono::steady_clock::now();
  const int NumModes = static_cast<int>(Modes.size());
  const int Fast = NumModes - 1;
  const int Slow = 0;
  if (InitialMode < 0)
    InitialMode = Fast;

  const int NumBlocks = Fn.numBlocks();
  std::vector<int> BlockMode(NumBlocks, Fast);

  // Memory-boundedness score per executed block: how little its time
  // dilates when the clock drops. Fully CPU-bound blocks dilate by
  // ffast/fslow; fully memory-bound blocks do not dilate at all.
  double SpeedRatio = Modes.level(Fast).Hertz / Modes.level(Slow).Hertz;
  struct Candidate {
    int Block;
    double Score;
  };
  std::vector<Candidate> Ranked;
  for (int B = 0; B < NumBlocks; ++B) {
    if (Prof.BlockExecs[B] == 0) {
      BlockMode[B] = Slow; // never runs: harmless to leave slow
      continue;
    }
    double TFast = Prof.TimePerInvocation[B][Fast];
    double TSlow = Prof.TimePerInvocation[B][Slow];
    if (TFast <= 0.0)
      continue;
    double Dilation = TSlow / TFast; // in [1, SpeedRatio]
    double Score =
        1.0 - (Dilation - 1.0) / std::max(SpeedRatio - 1.0, 1e-9);
    Ranked.push_back({B, std::max(0.0, std::min(1.0, Score))});
  }
  std::sort(Ranked.begin(), Ranked.end(),
            [](const Candidate &A, const Candidate &B) {
              return A.Score > B.Score;
            });

  // Predicted schedule time: block times at their modes plus a switch
  // penalty for every dynamic crossing of a mode boundary.
  auto predictTime = [&]() {
    double Time = 0.0;
    for (int B = 0; B < NumBlocks; ++B)
      Time += Prof.TimePerInvocation[B][BlockMode[B]] *
              static_cast<double>(Prof.BlockExecs[B]);
    for (const auto &[E, Count] : Prof.EdgeCounts) {
      int MFrom = BlockMode[E.From];
      int MTo = BlockMode[E.To];
      if (MFrom != MTo)
        Time += static_cast<double>(Count) *
                Transitions.switchTime(Modes.level(MFrom).Volts,
                                       Modes.level(MTo).Volts);
    }
    return Time;
  };
  auto predictEnergy = [&]() {
    double Energy = 0.0;
    for (int B = 0; B < NumBlocks; ++B)
      Energy += Prof.EnergyPerInvocation[B][BlockMode[B]] *
                static_cast<double>(Prof.BlockExecs[B]);
    for (const auto &[E, Count] : Prof.EdgeCounts) {
      int MFrom = BlockMode[E.From];
      int MTo = BlockMode[E.To];
      if (MFrom != MTo)
        Energy += static_cast<double>(Count) *
                  Transitions.switchEnergy(Modes.level(MFrom).Volts,
                                           Modes.level(MTo).Volts);
    }
    return Energy;
  };

  if (predictTime() > DeadlineSeconds)
    return makeError("deadline infeasible even at the fastest mode");

  // Greedy over *regions*: Hsu & Kremer slow whole loops, not single
  // blocks (a lone loop body at a different speed than its header
  // would switch modes every iteration). Grow a unit from the seed
  // block along edges whose traversal count is comparable to the
  // seed's execution count, then accept the unit move only if the
  // deadline still holds and predicted energy improves.
  auto growUnit = [&](int Seed) {
    std::vector<int> Unit = {Seed};
    std::vector<bool> In(NumBlocks, false);
    In[Seed] = true;
    double Threshold =
        0.5 * static_cast<double>(Prof.BlockExecs[Seed]);
    bool Grew = true;
    while (Grew) {
      Grew = false;
      for (const auto &[E, Count] : Prof.EdgeCounts) {
        if (static_cast<double>(Count) < Threshold)
          continue;
        int Add = -1;
        if (In[E.From] && !In[E.To] && BlockMode[E.To] == Fast)
          Add = E.To;
        else if (In[E.To] && !In[E.From] && BlockMode[E.From] == Fast)
          Add = E.From;
        if (Add >= 0) {
          In[Add] = true;
          Unit.push_back(Add);
          Grew = true;
        }
      }
    }
    return Unit;
  };

  for (const Candidate &C : Ranked) {
    if (BlockMode[C.Block] != Fast)
      continue; // already absorbed into an earlier unit
    double TimeBefore = predictTime();
    double EnergyBefore = predictEnergy();
    (void)TimeBefore;
    std::vector<int> Unit = growUnit(C.Block);
    for (int B : Unit)
      BlockMode[B] = Slow;
    if (predictTime() > DeadlineSeconds ||
        predictEnergy() >= EnergyBefore) {
      for (int B : Unit)
        BlockMode[B] = Fast;
    }
  }

  ScheduleResult R;
  R.Status = MilpStatus::Feasible; // heuristic: no optimality claim
  R.Assignment.InitialMode = InitialMode;
  for (const CfgEdge &E : Fn.edges())
    R.Assignment.EdgeMode[E] = BlockMode[E.To];
  R.PredictedEnergyJoules = predictEnergy();
  R.NumEdges = static_cast<int>(Fn.edges().size());
  R.NumIndependentGroups = NumBlocks;
  auto T1 = std::chrono::steady_clock::now();
  R.SolveSeconds = std::chrono::duration<double>(T1 - T0).count();
  return R;
}
