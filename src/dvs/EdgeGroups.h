//===- dvs/EdgeGroups.h - Edge-filtering group computation ------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.2 edge-filtering partition, factored out of the
/// scheduler so the static verifier (src/verify) can recompute exactly
/// the groups the MILP used and check placements against them. Edges in
/// the cumulative low-energy tail are tied to the dominant incoming edge
/// of their source block; each resulting group shares one set of mode
/// binaries, so a legal schedule must assign every edge of a group the
/// same mode.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_DVS_EDGEGROUPS_H
#define CDVS_DVS_EDGEGROUPS_H

#include "ir/Function.h"
#include "profile/Profile.h"

#include <vector>

namespace cdvs {

/// The edge-filtering partition of a function's CFG edges.
struct EdgeGroups {
  /// All edges; index 0 is the virtual entry edge (-1 -> 0) that carries
  /// the initial mode, followed by Function::edges() order.
  std::vector<CfgEdge> Edges;
  /// Group id per edge (index into [0, NumGroups)).
  std::vector<int> GroupOf;
  int NumGroups = 0;
  /// Probability-weighted execution count per edge (reference data for
  /// diagnostics; Count[0] == 1 for the virtual entry edge).
  std::vector<double> Count;
};

/// Computes the paper's Section 5.2 edge-filtering groups: edges whose
/// destination energy falls in the cumulative \p FilterThreshold tail
/// are united with the dominant incoming edge of their source block.
/// \p FilterThreshold <= 0 leaves every edge in its own group. Edges the
/// profiles never saw always stay independent (decoding pins them to
/// the slowest mode). Deterministic for fixed inputs.
EdgeGroups computeEdgeGroups(const Function &Fn,
                             const std::vector<CategoryProfile> &Categories,
                             double FilterThreshold);

} // namespace cdvs

#endif // CDVS_DVS_EDGEGROUPS_H
