//===- dvs/PathScheduler.h - Path-context MILP DVS scheduling ---*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 7 "future work" direction, implemented: attach
/// mode variables to *local paths* (H, I, J) — the mode set on edge
/// (I, J) may depend on which block H the program entered I from —
/// instead of to bare edges. Edge-based scheduling is the special case
/// where all contexts of an edge share one variable, so path context
/// strictly generalizes it: more program context in exchange for a
/// larger MILP.
///
/// Formulation mirrors the edge scheduler:
///  * one SOS1 group k[(h,i,j)][m] per profiled local path (plus the
///    virtual pre-entry path (-2, -1, 0) pinned to the initial mode);
///  * execution cost of block j under path (h,i,j) weighted by Dhij;
///  * transition costs between consecutive paths weighted by the
///    4-gram counts Q(h,i,j,k) the simulator collects;
///  * one deadline row.
///
/// The decoded ModeAssignment carries PathMode entries, with a
/// majority-vote EdgeMode fallback for run-time contexts the profile
/// never observed.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_DVS_PATHSCHEDULER_H
#define CDVS_DVS_PATHSCHEDULER_H

#include "dvs/DvsScheduler.h"

namespace cdvs {

/// Path-context scheduling over a single profile.
///
/// \p Opts: FilterThreshold is ignored (path instances are already
/// profile-pruned); InitialMode and Milp apply as in DvsScheduler.
ErrorOr<ScheduleResult>
schedulePathContext(const Function &Fn, const Profile &Prof,
                    const ModeTable &Modes,
                    const TransitionModel &Transitions,
                    double DeadlineSeconds,
                    DvsOptions Opts = DvsOptions());

} // namespace cdvs

#endif // CDVS_DVS_PATHSCHEDULER_H
