//===- dvs/DvsScheduler.h - Profile-driven MILP DVS scheduling --*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (Sections 4–5): choose a DVS mode for
/// every CFG edge so that total program energy is minimized subject to a
/// deadline, accounting exactly for the regulator's transition energy and
/// time.
///
/// For each independent edge e and mode m there is a binary k[e][m] with
/// sum_m k[e][m] = 1. Using profiled per-mode block costs (Tjm, Ejm),
/// edge counts Gij and local-path counts Dhij, the MILP is
///
///   min  sum_e sum_m G[e]·k[e][m]·E[to(e)][m]
///        + sum_(h,i,j) D[hij] · CE · e_hij
///   s.t. sum_e sum_m G[e]·k[e][m]·T[to(e)][m]
///        + sum_(h,i,j) D[hij] · CT · t_hij  <=  deadline
///        -e_hij <= sum_m (k[hi][m] − k[ij][m])·Vm² <= e_hij
///        -t_hij <= sum_m (k[hi][m] − k[ij][m])·Vm  <= t_hij
///
/// which linearizes SE = CE·|Vi²−Vj²| and ST = CT·|Vi−Vj| exactly
/// (Section 4.2). A virtual entry edge (-1 -> 0) carries the initial mode
/// the OS programs before launch; the first real transition out of it is
/// costed through the path counts like any other.
///
/// Edge filtering (Section 5.2): edges whose destination energy falls in
/// the cumulative low-energy tail (default 2%) are tied to the dominant
/// incoming edge of their source block, shrinking the number of
/// independent mode variables; deadlines remain exact, only energy
/// optimality may be (negligibly) affected.
///
/// Multiple input categories (Section 4.3): the objective becomes the
/// probability-weighted sum of category energies and each category gets
/// its own deadline row, over shared mode variables.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_DVS_DVSSCHEDULER_H
#define CDVS_DVS_DVSSCHEDULER_H

#include "analysis/Analysis.h"
#include "milp/MilpSolver.h"
#include "milp/Presolve.h"
#include "power/TransitionModel.h"
#include "profile/Profile.h"
#include "sim/ModeAssignment.h"
#include "support/Error.h"

#include <memory>
#include <vector>

namespace cdvs {

/// Knobs for the scheduler.
struct DvsOptions {
  /// Cumulative destination-energy fraction below which edges lose their
  /// independent mode variable (paper default 2%). Zero disables
  /// filtering.
  double FilterThreshold = 0.02;
  /// Mode the processor is in before the program starts.
  int InitialMode = 0;
  /// When set, ScheduleResult::LpText carries the full MILP in CPLEX
  /// LP format (the AMPL/CPLEX escape hatch; see lp/LpWriter.h).
  bool DumpLp = false;
  /// When set, ScheduleResult::Artifacts carries the exact LpProblem
  /// handed to the solver plus the raw solution, so an independent
  /// certificate check (verify/CertificateChecker.h) can re-evaluate
  /// every constraint row instead of trusting the solver's objective.
  bool KeepArtifacts = false;
  /// Certified structural presolve: eliminate mode binaries of edge
  /// groups that carry no objective, deadline, or transition weight
  /// (structurally dead edges always qualify — the §5.2 filter keeps
  /// them as independent groups) plus the bound-pinned entry group, and
  /// drop the rows they fully determine, before handing the MILP to
  /// branch-and-bound. The reduction is recorded in a
  /// ReductionCertificate (Artifacts) that verify::
  /// checkReductionCertificate replays against the original problem;
  /// decoded schedules are byte-identical with presolve on or off.
  bool Presolve = true;
  /// Optional precomputed static CFG analysis for Fn (borrowed, not
  /// owned; must outlive the scheduler). When null and a caller asks
  /// for presolve stats, the scheduler computes its own. Used to split
  /// the fixed groups into structurally-dead vs merely-unprofiled in
  /// ScheduleResult.
  const analysis::FunctionAnalysis *Analysis = nullptr;
  MilpOptions Milp;
};

/// The solver-facing instance and its raw answer, retained for
/// independent verification (DvsOptions::KeepArtifacts).
struct SolverArtifacts {
  LpProblem Problem;            ///< bounds include the entry-mode pin
  std::vector<int> IntegerVars; ///< the mode binaries, group-major
  /// Solution in ORIGINAL variable space: with presolve on this is the
  /// reduced optimum expanded through the reduction certificate, so
  /// existing checkCertificate call sites keep working unchanged.
  MilpSolution Solution;
  /// Presolve audit trail (Presolved == false leaves the rest empty).
  bool Presolved = false;
  LpProblem ReducedProblem;
  std::vector<int> ReducedIntegerVars;
  MilpSolution ReducedSolution; ///< raw reduced-space optimum
  ReductionCertificate Reduction;
};

/// Outcome of scheduling: the per-edge assignment plus solver metrics.
struct ScheduleResult {
  ModeAssignment Assignment;
  MilpStatus Status = MilpStatus::Limit;
  double PredictedEnergyJoules = 0.0; ///< MILP objective value
  double SolveSeconds = 0.0;
  long Nodes = 0;
  long LpIterations = 0;
  int NumEdges = 0;
  int NumIndependentGroups = 0;
  int NumBinaries = 0;
  /// MILP size before presolve.
  int NumVars = 0;
  int NumRows = 0;
  /// MILP size actually handed to branch-and-bound (== NumVars/NumRows
  /// when presolve is off).
  int SolvedVars = 0;
  int SolvedRows = 0;
  /// Presolve effect: eliminated columns / dropped rows, how many of
  /// the fixed edge groups were analysis-certified structurally dead
  /// (vs merely unprofiled by these inputs), and the time spent.
  int PresolveVarsFixed = 0;
  int PresolveRowsDropped = 0;
  int PresolveDeadGroups = 0;
  double PresolveSeconds = 0.0;
  /// CPLEX LP-format dump of the solved MILP (only with DvsOptions::
  /// DumpLp).
  std::string LpText;
  /// Problem + raw solution for certificate checking (only with
  /// DvsOptions::KeepArtifacts; shared so results stay cheap to copy).
  std::shared_ptr<const SolverArtifacts> Artifacts;
};

/// Profile-driven MILP DVS scheduler.
class DvsScheduler {
public:
  /// Single-input scheduling. \p Fn must be the function \p Prof was
  /// collected from.
  DvsScheduler(const Function &Fn, const Profile &Prof,
               const ModeTable &Modes, const TransitionModel &Transitions,
               DvsOptions Opts = DvsOptions());

  /// Multi-category scheduling (weighted-average energy objective, one
  /// deadline row per category).
  DvsScheduler(const Function &Fn,
               const std::vector<CategoryProfile> &Categories,
               const ModeTable &Modes, const TransitionModel &Transitions,
               DvsOptions Opts = DvsOptions());

  /// Solves with one common deadline applied to every category.
  ErrorOr<ScheduleResult> schedule(double DeadlineSeconds);

  /// Solves with a per-category deadline (size must match categories).
  ErrorOr<ScheduleResult>
  schedule(const std::vector<double> &DeadlineSeconds);

  /// The number of edges that kept an independent mode variable after
  /// filtering (diagnostics for Figure 14 / Table 3).
  int numIndependentGroups() const;

private:
  void buildGroups();

  const Function &Fn;
  std::vector<CategoryProfile> Categories;
  const ModeTable &Modes;
  const TransitionModel &Transitions;
  DvsOptions Opts;

  /// All edges incl. the virtual entry edge at index 0.
  std::vector<CfgEdge> Edges;
  /// Group representative index per edge (into Edges).
  std::vector<int> GroupOf;
  int NumGroups = 0;
};

} // namespace cdvs

#endif // CDVS_DVS_DVSSCHEDULER_H
