//===- dvs/ScheduleIO.h - Mode-set listing output ----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ModeAssignment the way a compiler back end would emit it: a
/// per-edge listing of mode-set instructions with the operating point
/// each one programs, annotated with which sets are silent on the hot
/// path (same mode as the dominant predecessor — the paper's "silent
/// mode-set on the back edge" observation).
///
/// Also the schedule serialization used by the scheduling service and
/// the dvsd CLI: a canonical line-based text format,
///
///   cdvs-schedule v1
///   initial <mode>
///   edges <n>
///   <from> <to> <mode>     x n   (ascending (from, to); from may be -1)
///   paths <k>
///   <h> <i> <j> <mode>     x k   (ascending (h, i, j))
///   end
///
/// The format is canonical — the maps' sorted iteration order fixes the
/// bytes — so write(read(write(A))) == write(A) byte for byte, which is
/// what lets the service cache compare cached and fresh schedules by
/// string equality. Readers return errors (never crash) on truncated
/// input, malformed lines, duplicate edges, and out-of-range mode
/// indices.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_DVS_SCHEDULEIO_H
#define CDVS_DVS_SCHEDULEIO_H

#include "power/ModeTable.h"
#include "profile/Profile.h"
#include "sim/ModeAssignment.h"
#include "support/Error.h"

#include <string>

namespace cdvs {

/// Textual mode-set listing for \p Assignment over \p Fn.
///
/// If \p Prof is non-null, each line is annotated with the edge's
/// execution count and whether the set is dynamically silent (the mode
/// matches every profiled predecessor context).
std::string printAssignment(const Function &Fn,
                            const ModeAssignment &Assignment,
                            const ModeTable &Modes,
                            const Profile *Prof = nullptr);

/// One-line summary: modes used and how many edges select each.
std::string summarizeAssignment(const ModeAssignment &Assignment,
                                const ModeTable &Modes);

/// Serializes \p Assignment in the canonical `cdvs-schedule v1` format
/// (see the file comment). Byte-deterministic for equal assignments.
std::string writeSchedule(const ModeAssignment &Assignment);

/// Parses a `cdvs-schedule v1` document. With \p NumModes >= 0, any mode
/// index outside [0, NumModes) is rejected as unknown; negative modes
/// are always rejected. Errors name the offending line.
ErrorOr<ModeAssignment> readSchedule(const std::string &Text,
                                     int NumModes = -1);

/// writeSchedule straight to \p Path; errors on I/O failure.
ErrorOr<bool> writeScheduleFile(const std::string &Path,
                                const ModeAssignment &Assignment);

/// readSchedule from \p Path; errors on unreadable files.
ErrorOr<ModeAssignment> readScheduleFile(const std::string &Path,
                                         int NumModes = -1);

} // namespace cdvs

#endif // CDVS_DVS_SCHEDULEIO_H
