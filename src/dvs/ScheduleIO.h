//===- dvs/ScheduleIO.h - Mode-set listing output ----------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ModeAssignment the way a compiler back end would emit it: a
/// per-edge listing of mode-set instructions with the operating point
/// each one programs, annotated with which sets are silent on the hot
/// path (same mode as the dominant predecessor — the paper's "silent
/// mode-set on the back edge" observation).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_DVS_SCHEDULEIO_H
#define CDVS_DVS_SCHEDULEIO_H

#include "power/ModeTable.h"
#include "profile/Profile.h"
#include "sim/ModeAssignment.h"

#include <string>

namespace cdvs {

/// Textual mode-set listing for \p Assignment over \p Fn.
///
/// If \p Prof is non-null, each line is annotated with the edge's
/// execution count and whether the set is dynamically silent (the mode
/// matches every profiled predecessor context).
std::string printAssignment(const Function &Fn,
                            const ModeAssignment &Assignment,
                            const ModeTable &Modes,
                            const Profile *Prof = nullptr);

/// One-line summary: modes used and how many edges select each.
std::string summarizeAssignment(const ModeAssignment &Assignment,
                                const ModeTable &Modes);

} // namespace cdvs

#endif // CDVS_DVS_SCHEDULEIO_H
