//===- dvs/DvsScheduler.cpp - Profile-driven MILP DVS scheduling ----------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"

#include "lp/LpWriter.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>

using namespace cdvs;

namespace {

/// Plain union-find over edge indices.
class UnionFind {
public:
  explicit UnionFind(int N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void unite(int A, int B) { Parent[find(A)] = find(B); }

private:
  std::vector<int> Parent;
};

} // namespace

DvsScheduler::DvsScheduler(const Function &Fn, const Profile &Prof,
                           const ModeTable &Modes,
                           const TransitionModel &Transitions,
                           DvsOptions Opts)
    : DvsScheduler(Fn, std::vector<CategoryProfile>{{Prof, 1.0}}, Modes,
                   Transitions, Opts) {}

DvsScheduler::DvsScheduler(const Function &Fn,
                           const std::vector<CategoryProfile> &InCategories,
                           const ModeTable &Modes,
                           const TransitionModel &Transitions,
                           DvsOptions Opts)
    : Fn(Fn), Categories(InCategories), Modes(Modes),
      Transitions(Transitions), Opts(Opts) {
  assert(!Categories.empty() && "need at least one input category");
  for (const CategoryProfile &C : Categories) {
    assert(C.Data.NumBlocks == Fn.numBlocks() &&
           "profile does not match function");
    assert(C.Data.NumModes == static_cast<int>(Modes.size()) &&
           "profile does not match mode table");
    (void)C;
  }
  assert(Opts.InitialMode >= 0 &&
         Opts.InitialMode < static_cast<int>(Modes.size()) &&
         "initial mode out of range");
  buildGroups();
}

void DvsScheduler::buildGroups() {
  // Edge 0 is the virtual entry edge (-1 -> 0) carrying the initial mode.
  Edges.clear();
  Edges.push_back({-1, 0});
  for (const CfgEdge &E : Fn.edges())
    Edges.push_back(E);
  const int NumEdges = static_cast<int>(Edges.size());

  std::map<CfgEdge, int> EdgeIndex;
  for (int I = 0; I < NumEdges; ++I)
    EdgeIndex[Edges[I]] = I;

  // Probability-weighted execution count and destination energy (at the
  // reference mode: fastest) per edge.
  const int RefMode = static_cast<int>(Modes.size()) - 1;
  std::vector<double> Count(NumEdges, 0.0);
  std::vector<double> DestEnergy(NumEdges, 0.0);
  Count[0] = 1.0;
  for (const CategoryProfile &C : Categories) {
    DestEnergy[0] +=
        C.Probability * C.Data.EnergyPerInvocation[0][RefMode];
    for (const auto &[E, G] : C.Data.EdgeCounts) {
      auto It = EdgeIndex.find(E);
      assert(It != EdgeIndex.end() && "profiled edge missing from CFG");
      Count[It->second] += C.Probability * static_cast<double>(G);
      DestEnergy[It->second] +=
          C.Probability * static_cast<double>(G) *
          C.Data.EnergyPerInvocation[E.To][RefMode];
    }
  }

  UnionFind UF(NumEdges);
  if (Opts.FilterThreshold > 0.0 && NumEdges > 1) {
    double Total = std::accumulate(DestEnergy.begin(), DestEnergy.end(),
                                   0.0);
    // Real edges sorted by ascending destination energy.
    std::vector<int> Order;
    for (int I = 1; I < NumEdges; ++I)
      Order.push_back(I);
    std::sort(Order.begin(), Order.end(), [&](int A, int B) {
      return DestEnergy[A] < DestEnergy[B];
    });

    double Cum = 0.0;
    for (int E : Order) {
      if (Cum + DestEnergy[E] > Opts.FilterThreshold * Total)
        break;
      Cum += DestEnergy[E];
      // Edges the profile never saw stay independent: they must keep
      // their "unprofiled" status so decoding can pin them to the
      // slowest mode instead of inheriting a hot group's speed.
      if (Count[E] == 0.0)
        continue;
      // Tie this edge to the dominant incoming edge of its source block.
      int Src = Edges[E].From;
      assert(Src >= 0 && "virtual edge cannot be filtered");
      int Best = -1;
      double BestCount = -1.0;
      for (int Other = 0; Other < NumEdges; ++Other) {
        if (Edges[Other].To != Src)
          continue;
        if (Count[Other] > BestCount) {
          BestCount = Count[Other];
          Best = Other;
        }
      }
      if (Best >= 0)
        UF.unite(E, Best);
    }
  }

  GroupOf.assign(NumEdges, -1);
  std::map<int, int> RepToGroup;
  for (int I = 0; I < NumEdges; ++I) {
    int Rep = UF.find(I);
    auto [It, Inserted] =
        RepToGroup.insert({Rep, static_cast<int>(RepToGroup.size())});
    (void)Inserted;
    GroupOf[I] = It->second;
  }
  NumGroups = static_cast<int>(RepToGroup.size());
}

int DvsScheduler::numIndependentGroups() const { return NumGroups; }

ErrorOr<ScheduleResult> DvsScheduler::schedule(double DeadlineSeconds) {
  return schedule(
      std::vector<double>(Categories.size(), DeadlineSeconds));
}

ErrorOr<ScheduleResult>
DvsScheduler::schedule(const std::vector<double> &DeadlineSeconds) {
  if (DeadlineSeconds.size() != Categories.size())
    return makeError("deadline count does not match category count");

  const int NumModes = static_cast<int>(Modes.size());
  const int NumEdges = static_cast<int>(Edges.size());
  const int NumCats = static_cast<int>(Categories.size());

  LpProblem P;

  // Mode binaries per independent group.
  std::vector<std::vector<int>> K(NumGroups, std::vector<int>(NumModes));
  for (int G = 0; G < NumGroups; ++G)
    for (int M = 0; M < NumModes; ++M)
      K[G][M] = P.addVariable(0.0, 1.0, 0.0,
                              "k_g" + std::to_string(G) + "_m" +
                                  std::to_string(M));

  // Objective: execution energy. Gather coefficients first.
  std::vector<std::vector<double>> EnergyCoeff(
      NumGroups, std::vector<double>(NumModes, 0.0));
  // Per-category deadline-row coefficients on the k variables.
  std::vector<std::vector<std::vector<double>>> TimeCoeff(
      NumCats, std::vector<std::vector<double>>(
                   NumGroups, std::vector<double>(NumModes, 0.0)));

  for (int C = 0; C < NumCats; ++C) {
    const CategoryProfile &Cat = Categories[C];
    for (int E = 0; E < NumEdges; ++E) {
      double G = E == 0 ? 1.0 : 0.0;
      if (E != 0) {
        auto It = Cat.Data.EdgeCounts.find(Edges[E]);
        if (It != Cat.Data.EdgeCounts.end())
          G = static_cast<double>(It->second);
      }
      if (G == 0.0)
        continue;
      int To = Edges[E].To;
      int Grp = GroupOf[E];
      for (int M = 0; M < NumModes; ++M) {
        EnergyCoeff[Grp][M] += Cat.Probability * G *
                               Cat.Data.EnergyPerInvocation[To][M];
        TimeCoeff[C][Grp][M] +=
            G * Cat.Data.TimePerInvocation[To][M];
      }
    }
  }
  for (int G = 0; G < NumGroups; ++G)
    for (int M = 0; M < NumModes; ++M)
      P.setCost(K[G][M], EnergyCoeff[G][M]);

  // Transition variables: one (e, t) pair per unordered group pair that
  // appears in some local path. Weights: objective gets CE * sum_g
  // p_g * D_g; each category's deadline row gets CT * D_g.
  struct PairData {
    int EVar = -1;
    int TVar = -1;
    std::vector<double> CatCount; // per category D sum
  };
  std::map<std::pair<int, int>, PairData> Pairs;

  std::map<CfgEdge, int> EdgeIndex;
  for (int I = 0; I < NumEdges; ++I)
    EdgeIndex[Edges[I]] = I;

  for (int C = 0; C < NumCats; ++C) {
    for (const auto &[Path, D] : Categories[C].Data.PathCounts) {
      auto [H, I, J] = Path;
      auto ItIn = EdgeIndex.find({H, I});
      auto ItOut = EdgeIndex.find({I, J});
      assert(ItIn != EdgeIndex.end() && ItOut != EdgeIndex.end() &&
             "profiled path not in CFG");
      int G1 = GroupOf[ItIn->second];
      int G2 = GroupOf[ItOut->second];
      if (G1 == G2)
        continue; // same group -> same mode -> silent mode-set
      auto Key = std::minmax(G1, G2);
      PairData &PD = Pairs[{Key.first, Key.second}];
      if (PD.CatCount.empty())
        PD.CatCount.assign(NumCats, 0.0);
      PD.CatCount[C] += static_cast<double>(D);
    }
  }

  const double CE = Transitions.energyConstant();
  const double CT = Transitions.timeConstant();
  for (auto &[Key, PD] : Pairs) {
    double ObjWeight = 0.0;
    for (int C = 0; C < NumCats; ++C)
      ObjWeight += Categories[C].Probability * PD.CatCount[C] * CE;
    PD.EVar = P.addVariable(0.0, lpInf(), ObjWeight,
                            "e_" + std::to_string(Key.first) + "_" +
                                std::to_string(Key.second));
    PD.TVar = P.addVariable(0.0, lpInf(), 0.0,
                            "t_" + std::to_string(Key.first) + "_" +
                                std::to_string(Key.second));
    // |sum_m (k1m - k2m) Vm^2| <= e ; |sum_m (k1m - k2m) Vm| <= t.
    std::vector<LpTerm> SqTermsMinus, SqTermsPlus, VTermsMinus, VTermsPlus;
    for (int M = 0; M < NumModes; ++M) {
      double V = Modes.level(M).Volts;
      double V2 = V * V;
      SqTermsMinus.push_back({K[Key.first][M], V2});
      SqTermsMinus.push_back({K[Key.second][M], -V2});
      VTermsMinus.push_back({K[Key.first][M], V});
      VTermsMinus.push_back({K[Key.second][M], -V});
    }
    SqTermsPlus = SqTermsMinus;
    VTermsPlus = VTermsMinus;
    SqTermsMinus.push_back({PD.EVar, -1.0});
    P.addRow(RowSense::LE, 0.0, SqTermsMinus); // diff - e <= 0
    SqTermsPlus.push_back({PD.EVar, 1.0});
    P.addRow(RowSense::GE, 0.0, SqTermsPlus); // diff + e >= 0
    VTermsMinus.push_back({PD.TVar, -1.0});
    P.addRow(RowSense::LE, 0.0, VTermsMinus);
    VTermsPlus.push_back({PD.TVar, 1.0});
    P.addRow(RowSense::GE, 0.0, VTermsPlus);
  }

  // SOS1 rows: each group picks exactly one mode.
  for (int G = 0; G < NumGroups; ++G) {
    std::vector<LpTerm> Sum;
    for (int M = 0; M < NumModes; ++M)
      Sum.push_back({K[G][M], 1.0});
    P.addRow(RowSense::EQ, 1.0, Sum);
  }

  // The virtual entry edge is pinned to the machine's initial mode: the
  // OS sets the voltage before launch, and the paper does not let the
  // program choose its entry operating point for free.
  for (int M = 0; M < NumModes; ++M) {
    int Var = K[GroupOf[0]][M];
    double Fix = M == Opts.InitialMode ? 1.0 : 0.0;
    P.setBounds(Var, Fix, Fix);
  }

  // Deadline row per category.
  for (int C = 0; C < NumCats; ++C) {
    std::vector<LpTerm> Row;
    for (int G = 0; G < NumGroups; ++G)
      for (int M = 0; M < NumModes; ++M)
        if (TimeCoeff[C][G][M] != 0.0)
          Row.push_back({K[G][M], TimeCoeff[C][G][M]});
    for (const auto &[Key, PD] : Pairs)
      if (PD.CatCount[C] > 0.0)
        Row.push_back({PD.TVar, CT * PD.CatCount[C]});
    P.addRow(RowSense::LE, DeadlineSeconds[C], Row);
  }

  // Solve.
  std::vector<int> Integers;
  for (auto &Group : K)
    Integers.insert(Integers.end(), Group.begin(), Group.end());
  std::string LpText;
  if (Opts.DumpLp)
    LpText = writeLpFormat(P, Integers);
  MilpSolver Solver(P, Integers, Opts.Milp);
  for (auto &Group : K)
    Solver.addSos1Group(Group);

  auto T0 = std::chrono::steady_clock::now();
  MilpSolution Sol = Solver.solve();
  auto T1 = std::chrono::steady_clock::now();

  ScheduleResult R;
  R.Status = Sol.Status;
  R.SolveSeconds = std::chrono::duration<double>(T1 - T0).count();
  R.Nodes = Sol.Nodes;
  R.LpIterations = Sol.LpIterations;
  R.NumEdges = NumEdges - 1;
  R.NumIndependentGroups = NumGroups;
  R.NumBinaries = static_cast<int>(Integers.size());
  R.LpText = std::move(LpText);

  if (Sol.Status == MilpStatus::Infeasible)
    return makeError("deadline is infeasible for this program");
  if (Sol.Status == MilpStatus::Unbounded ||
      Sol.Status == MilpStatus::Limit)
    return makeError("MILP search failed: " +
                     std::string(milpStatusName(Sol.Status)));

  R.PredictedEnergyJoules = Sol.Objective;

  // Decode modes. Groups that never executed in any profile carry no
  // objective or deadline weight, so the solver's choice for them is
  // arbitrary; pin them to the slowest mode (no profile evidence ->
  // assume not time-critical). This is what makes cross-category
  // profile mismatch observable, exactly as in the paper's Section 6.4:
  // a no-B-frames profile leaves the B-frame paths at the lowest speed.
  std::vector<bool> GroupProfiled(NumGroups, false);
  for (int G = 0; G < NumGroups; ++G)
    for (int M = 0; M < NumModes && !GroupProfiled[G]; ++M)
      if (EnergyCoeff[G][M] != 0.0)
        GroupProfiled[G] = true;
  auto modeOfGroup = [&](int G) {
    if (!GroupProfiled[G])
      return 0;
    int Best = 0;
    double BestVal = -1.0;
    for (int M = 0; M < NumModes; ++M) {
      if (Sol.X[K[G][M]] > BestVal) {
        BestVal = Sol.X[K[G][M]];
        Best = M;
      }
    }
    return Best;
  };
  R.Assignment.InitialMode = modeOfGroup(GroupOf[0]);
  assert(R.Assignment.InitialMode == Opts.InitialMode &&
         "entry mode must honor the pin");
  for (int E = 1; E < NumEdges; ++E)
    R.Assignment.EdgeMode[Edges[E]] = modeOfGroup(GroupOf[E]);
  return R;
}
