//===- dvs/DvsScheduler.cpp - Profile-driven MILP DVS scheduling ----------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/DvsScheduler.h"

#include "dvs/EdgeGroups.h"
#include "lp/LpWriter.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>

using namespace cdvs;

DvsScheduler::DvsScheduler(const Function &Fn, const Profile &Prof,
                           const ModeTable &Modes,
                           const TransitionModel &Transitions,
                           DvsOptions Opts)
    : DvsScheduler(Fn, std::vector<CategoryProfile>{{Prof, 1.0}}, Modes,
                   Transitions, Opts) {}

DvsScheduler::DvsScheduler(const Function &Fn,
                           const std::vector<CategoryProfile> &InCategories,
                           const ModeTable &Modes,
                           const TransitionModel &Transitions,
                           DvsOptions Opts)
    : Fn(Fn), Categories(InCategories), Modes(Modes),
      Transitions(Transitions), Opts(Opts) {
  assert(!Categories.empty() && "need at least one input category");
  for (const CategoryProfile &C : Categories) {
    assert(C.Data.NumBlocks == Fn.numBlocks() &&
           "profile does not match function");
    assert(C.Data.NumModes == static_cast<int>(Modes.size()) &&
           "profile does not match mode table");
    (void)C;
  }
  assert(Opts.InitialMode >= 0 &&
         Opts.InitialMode < static_cast<int>(Modes.size()) &&
         "initial mode out of range");
  buildGroups();
}

void DvsScheduler::buildGroups() {
  // Shared with the static verifier (verify/ScheduleChecker), which must
  // recompute exactly this partition to audit filtered placements.
  EdgeGroups G = computeEdgeGroups(Fn, Categories, Opts.FilterThreshold);
  Edges = std::move(G.Edges);
  GroupOf = std::move(G.GroupOf);
  NumGroups = G.NumGroups;
}

int DvsScheduler::numIndependentGroups() const { return NumGroups; }

ErrorOr<ScheduleResult> DvsScheduler::schedule(double DeadlineSeconds) {
  return schedule(
      std::vector<double>(Categories.size(), DeadlineSeconds));
}

ErrorOr<ScheduleResult>
DvsScheduler::schedule(const std::vector<double> &DeadlineSeconds) {
  if (DeadlineSeconds.size() != Categories.size())
    return makeError("deadline count does not match category count");

  const int NumModes = static_cast<int>(Modes.size());
  const int NumEdges = static_cast<int>(Edges.size());
  const int NumCats = static_cast<int>(Categories.size());

  LpProblem P;

  // Mode binaries per independent group.
  std::vector<std::vector<int>> K(NumGroups, std::vector<int>(NumModes));
  for (int G = 0; G < NumGroups; ++G)
    for (int M = 0; M < NumModes; ++M)
      K[G][M] = P.addVariable(0.0, 1.0, 0.0,
                              "k_g" + std::to_string(G) + "_m" +
                                  std::to_string(M));

  // Objective: execution energy. Gather coefficients first.
  std::vector<std::vector<double>> EnergyCoeff(
      NumGroups, std::vector<double>(NumModes, 0.0));
  // Per-category deadline-row coefficients on the k variables.
  std::vector<std::vector<std::vector<double>>> TimeCoeff(
      NumCats, std::vector<std::vector<double>>(
                   NumGroups, std::vector<double>(NumModes, 0.0)));

  for (int C = 0; C < NumCats; ++C) {
    const CategoryProfile &Cat = Categories[C];
    for (int E = 0; E < NumEdges; ++E) {
      double G = E == 0 ? 1.0 : 0.0;
      if (E != 0) {
        auto It = Cat.Data.EdgeCounts.find(Edges[E]);
        if (It != Cat.Data.EdgeCounts.end())
          G = static_cast<double>(It->second);
      }
      if (G == 0.0)
        continue;
      int To = Edges[E].To;
      int Grp = GroupOf[E];
      for (int M = 0; M < NumModes; ++M) {
        EnergyCoeff[Grp][M] += Cat.Probability * G *
                               Cat.Data.EnergyPerInvocation[To][M];
        TimeCoeff[C][Grp][M] +=
            G * Cat.Data.TimePerInvocation[To][M];
      }
    }
  }
  for (int G = 0; G < NumGroups; ++G)
    for (int M = 0; M < NumModes; ++M)
      P.setCost(K[G][M], EnergyCoeff[G][M]);

  // Transition variables: one (e, t) pair per unordered group pair that
  // appears in some local path. Weights: objective gets CE * sum_g
  // p_g * D_g; each category's deadline row gets CT * D_g.
  struct PairData {
    int EVar = -1;
    int TVar = -1;
    std::vector<double> CatCount; // per category D sum
  };
  std::map<std::pair<int, int>, PairData> Pairs;

  std::map<CfgEdge, int> EdgeIndex;
  for (int I = 0; I < NumEdges; ++I)
    EdgeIndex[Edges[I]] = I;

  for (int C = 0; C < NumCats; ++C) {
    for (const auto &[Path, D] : Categories[C].Data.PathCounts) {
      auto [H, I, J] = Path;
      auto ItIn = EdgeIndex.find({H, I});
      auto ItOut = EdgeIndex.find({I, J});
      assert(ItIn != EdgeIndex.end() && ItOut != EdgeIndex.end() &&
             "profiled path not in CFG");
      int G1 = GroupOf[ItIn->second];
      int G2 = GroupOf[ItOut->second];
      if (G1 == G2)
        continue; // same group -> same mode -> silent mode-set
      auto Key = std::minmax(G1, G2);
      PairData &PD = Pairs[{Key.first, Key.second}];
      if (PD.CatCount.empty())
        PD.CatCount.assign(NumCats, 0.0);
      PD.CatCount[C] += static_cast<double>(D);
    }
  }

  const double CE = Transitions.energyConstant();
  const double CT = Transitions.timeConstant();
  for (auto &[Key, PD] : Pairs) {
    double ObjWeight = 0.0;
    for (int C = 0; C < NumCats; ++C)
      ObjWeight += Categories[C].Probability * PD.CatCount[C] * CE;
    PD.EVar = P.addVariable(0.0, lpInf(), ObjWeight,
                            "e_" + std::to_string(Key.first) + "_" +
                                std::to_string(Key.second));
    PD.TVar = P.addVariable(0.0, lpInf(), 0.0,
                            "t_" + std::to_string(Key.first) + "_" +
                                std::to_string(Key.second));
    // |sum_m (k1m - k2m) Vm^2| <= e ; |sum_m (k1m - k2m) Vm| <= t.
    std::vector<LpTerm> SqTermsMinus, SqTermsPlus, VTermsMinus, VTermsPlus;
    for (int M = 0; M < NumModes; ++M) {
      double V = Modes.level(M).Volts;
      double V2 = V * V;
      SqTermsMinus.push_back({K[Key.first][M], V2});
      SqTermsMinus.push_back({K[Key.second][M], -V2});
      VTermsMinus.push_back({K[Key.first][M], V});
      VTermsMinus.push_back({K[Key.second][M], -V});
    }
    SqTermsPlus = SqTermsMinus;
    VTermsPlus = VTermsMinus;
    SqTermsMinus.push_back({PD.EVar, -1.0});
    P.addRow(RowSense::LE, 0.0, SqTermsMinus); // diff - e <= 0
    SqTermsPlus.push_back({PD.EVar, 1.0});
    P.addRow(RowSense::GE, 0.0, SqTermsPlus); // diff + e >= 0
    VTermsMinus.push_back({PD.TVar, -1.0});
    P.addRow(RowSense::LE, 0.0, VTermsMinus);
    VTermsPlus.push_back({PD.TVar, 1.0});
    P.addRow(RowSense::GE, 0.0, VTermsPlus);
  }

  // SOS1 rows: each group picks exactly one mode.
  for (int G = 0; G < NumGroups; ++G) {
    std::vector<LpTerm> Sum;
    for (int M = 0; M < NumModes; ++M)
      Sum.push_back({K[G][M], 1.0});
    P.addRow(RowSense::EQ, 1.0, Sum);
  }

  // The virtual entry edge is pinned to the machine's initial mode: the
  // OS sets the voltage before launch, and the paper does not let the
  // program choose its entry operating point for free.
  for (int M = 0; M < NumModes; ++M) {
    int Var = K[GroupOf[0]][M];
    double Fix = M == Opts.InitialMode ? 1.0 : 0.0;
    P.setBounds(Var, Fix, Fix);
  }

  // Deadline row per category.
  for (int C = 0; C < NumCats; ++C) {
    std::vector<LpTerm> Row;
    for (int G = 0; G < NumGroups; ++G)
      for (int M = 0; M < NumModes; ++M)
        if (TimeCoeff[C][G][M] != 0.0)
          Row.push_back({K[G][M], TimeCoeff[C][G][M]});
    for (const auto &[Key, PD] : Pairs)
      if (PD.CatCount[C] > 0.0)
        Row.push_back({PD.TVar, CT * PD.CatCount[C]});
    P.addRow(RowSense::LE, DeadlineSeconds[C], Row);
  }

  // Solve.
  std::vector<int> Integers;
  for (auto &Group : K)
    Integers.insert(Integers.end(), Group.begin(), Group.end());
  std::string LpText;
  if (Opts.DumpLp)
    LpText = writeLpFormat(P, Integers);
  // Copy (problem, integer vars) before the solve: the solver owns its
  // own copy and mutates bounds while branching, so this snapshot is the
  // instance the certificate is checked against.
  std::shared_ptr<SolverArtifacts> Artifacts;
  if (Opts.KeepArtifacts) {
    Artifacts = std::make_shared<SolverArtifacts>();
    Artifacts->Problem = P;
    Artifacts->IntegerVars = Integers;
  }

  ScheduleResult R;
  R.NumVars = P.numVariables();
  R.NumRows = P.numRows();

  // Certified presolve: groups whose mode choice carries no objective,
  // deadline, or transition weight appear only in their own SOS1 row,
  // so any unit assignment is optimal; pin them to mode 0, matching the
  // decode rule below (unprofiled groups always decode to the slowest
  // mode). Structurally dead edges — which the §5.2 filter always
  // leaves as independent single-edge groups — are the canonical case;
  // the static analysis tells the two apart for reporting.
  MilpSolution Sol;
  PresolveResult PR;
  if (Opts.Presolve) {
    auto TP0 = std::chrono::steady_clock::now();
    std::vector<char> InPair(NumGroups, 0);
    for (const auto &[Key, PD] : Pairs) {
      InPair[Key.first] = 1;
      InPair[Key.second] = 1;
    }
    std::vector<int> FixedVars;
    std::vector<double> FixedVals;
    std::vector<char> GroupFixed(NumGroups, 0);
    for (int G = 0; G < NumGroups; ++G) {
      if (G == GroupOf[0] || InPair[G])
        continue;
      bool Weightless = true;
      for (int M = 0; M < NumModes && Weightless; ++M)
        if (EnergyCoeff[G][M] != 0.0)
          Weightless = false;
      for (int C = 0; C < NumCats && Weightless; ++C)
        for (int M = 0; M < NumModes && Weightless; ++M)
          if (TimeCoeff[C][G][M] != 0.0)
            Weightless = false;
      if (!Weightless)
        continue;
      GroupFixed[G] = 1;
      for (int M = 0; M < NumModes; ++M) {
        FixedVars.push_back(K[G][M]);
        FixedVals.push_back(M == 0 ? 1.0 : 0.0);
      }
    }
    // Split the fixed groups into analysis-certified dead vs merely
    // unprofiled, for the presolve statistics.
    {
      std::unique_ptr<analysis::FunctionAnalysis> Own;
      const analysis::FunctionAnalysis *FA = Opts.Analysis;
      if (!FA) {
        Own = std::make_unique<analysis::FunctionAnalysis>(
            analysis::analyzeFunction(Fn));
        FA = Own.get();
      }
      std::vector<char> GroupDead(NumGroups, 1);
      for (int E = 1; E < NumEdges; ++E)
        if (FA->Reach.live(Edges[E]))
          GroupDead[GroupOf[E]] = 0;
      GroupDead[GroupOf[0]] = 0; // virtual entry edge is always live
      for (int G = 0; G < NumGroups; ++G)
        if (GroupFixed[G] && GroupDead[G])
          ++R.PresolveDeadGroups;
    }

    PR = presolve(P, Integers, FixedVars, FixedVals);
    auto TP1 = std::chrono::steady_clock::now();
    R.PresolveSeconds = std::chrono::duration<double>(TP1 - TP0).count();
    if (PR.Infeasible)
      return makeError("presolve found the instance infeasible: " +
                       PR.InfeasibleReason);
    R.PresolveVarsFixed = PR.Cert.varsFixed();
    R.PresolveRowsDropped = PR.Cert.rowsDropped();
    R.SolvedVars = PR.Cert.ReducedVars;
    R.SolvedRows = PR.Cert.ReducedRows;

    MilpSolver Solver(PR.Reduced, PR.IntegerVars, Opts.Milp);
    for (auto &Group : K) {
      std::vector<int> Mapped;
      for (int Var : Group)
        if (PR.Cert.VarMap[Var] >= 0)
          Mapped.push_back(PR.Cert.VarMap[Var]);
      if (Mapped.size() > 1)
        Solver.addSos1Group(Mapped);
    }
    auto T0 = std::chrono::steady_clock::now();
    MilpSolution ReducedSol = Solver.solve();
    auto T1 = std::chrono::steady_clock::now();
    R.SolveSeconds = std::chrono::duration<double>(T1 - T0).count();

    Sol = ReducedSol;
    if (ReducedSol.Status == MilpStatus::Optimal ||
        ReducedSol.Status == MilpStatus::Feasible) {
      Sol.X = PR.Cert.expandSolution(ReducedSol.X);
      Sol.Objective = ReducedSol.Objective + PR.Cert.ObjectiveOffset;
    }
    if (Artifacts) {
      Artifacts->Presolved = true;
      Artifacts->ReducedProblem = PR.Reduced;
      Artifacts->ReducedIntegerVars = PR.IntegerVars;
      Artifacts->ReducedSolution = std::move(ReducedSol);
      Artifacts->Reduction = PR.Cert;
    }
  } else {
    R.SolvedVars = R.NumVars;
    R.SolvedRows = R.NumRows;
    MilpSolver Solver(P, Integers, Opts.Milp);
    for (auto &Group : K)
      Solver.addSos1Group(Group);
    auto T0 = std::chrono::steady_clock::now();
    Sol = Solver.solve();
    auto T1 = std::chrono::steady_clock::now();
    R.SolveSeconds = std::chrono::duration<double>(T1 - T0).count();
  }

  R.Status = Sol.Status;
  R.Nodes = Sol.Nodes;
  R.LpIterations = Sol.LpIterations;
  R.NumEdges = NumEdges - 1;
  R.NumIndependentGroups = NumGroups;
  R.NumBinaries = static_cast<int>(Integers.size());
  R.LpText = std::move(LpText);
  if (Artifacts) {
    Artifacts->Solution = Sol;
    R.Artifacts = Artifacts;
  }

  if (Sol.Status == MilpStatus::Infeasible)
    return makeError("deadline is infeasible for this program");
  if (Sol.Status == MilpStatus::Unbounded ||
      Sol.Status == MilpStatus::Limit)
    return makeError("MILP search failed: " +
                     std::string(milpStatusName(Sol.Status)));

  R.PredictedEnergyJoules = Sol.Objective;

  // Decode modes. Groups that never executed in any profile carry no
  // objective or deadline weight, so the solver's choice for them is
  // arbitrary; pin them to the slowest mode (no profile evidence ->
  // assume not time-critical). This is what makes cross-category
  // profile mismatch observable, exactly as in the paper's Section 6.4:
  // a no-B-frames profile leaves the B-frame paths at the lowest speed.
  std::vector<bool> GroupProfiled(NumGroups, false);
  for (int G = 0; G < NumGroups; ++G)
    for (int M = 0; M < NumModes && !GroupProfiled[G]; ++M)
      if (EnergyCoeff[G][M] != 0.0)
        GroupProfiled[G] = true;
  auto modeOfGroup = [&](int G) {
    if (!GroupProfiled[G])
      return 0;
    int Best = 0;
    double BestVal = -1.0;
    for (int M = 0; M < NumModes; ++M) {
      if (Sol.X[K[G][M]] > BestVal) {
        BestVal = Sol.X[K[G][M]];
        Best = M;
      }
    }
    return Best;
  };
  R.Assignment.InitialMode = modeOfGroup(GroupOf[0]);
  assert(R.Assignment.InitialMode == Opts.InitialMode &&
         "entry mode must honor the pin");
  for (int E = 1; E < NumEdges; ++E)
    R.Assignment.EdgeMode[Edges[E]] = modeOfGroup(GroupOf[E]);
  return R;
}
