//===- dvs/ScheduleIO.cpp - Mode-set listing output ------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/ScheduleIO.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace cdvs;

std::string cdvs::printAssignment(const Function &Fn,
                                  const ModeAssignment &Assignment,
                                  const ModeTable &Modes,
                                  const Profile *Prof) {
  std::string Out;
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "dvs schedule for %s: initial mode %d (%.0f MHz @ "
                "%.2f V)\n",
                Fn.name().c_str(), Assignment.InitialMode,
                Modes.level(Assignment.InitialMode).Hertz / 1e6,
                Modes.level(Assignment.InitialMode).Volts);
  Out += Buf;

  // Mode reaching each block along its most frequent incoming edge, to
  // flag dynamically silent sets.
  for (const CfgEdge &E : Fn.edges()) {
    auto It = Assignment.EdgeMode.find(E);
    if (It == Assignment.EdgeMode.end())
      continue;
    int Mode = It->second;
    uint64_t Count = 0;
    bool Silent = false;
    if (Prof) {
      auto CIt = Prof->EdgeCounts.find(E);
      Count = CIt == Prof->EdgeCounts.end() ? 0 : CIt->second;
      // Silent if every profiled predecessor context of the source
      // block already arrives in this mode.
      Silent = true;
      bool AnyPred = false;
      for (const auto &[Path, D] : Prof->PathCounts) {
        auto [H, I, J] = Path;
        if (I != E.From || J != E.To || D == 0)
          continue;
        AnyPred = true;
        int PredMode = Assignment.InitialMode;
        if (H >= 0) {
          auto PIt = Assignment.EdgeMode.find({H, I});
          if (PIt != Assignment.EdgeMode.end())
            PredMode = PIt->second;
          else
            PredMode = -1; // unknown context
        }
        if (PredMode != Mode)
          Silent = false;
      }
      Silent = Silent && AnyPred;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "  set-mode %d (%.0f MHz) on %s -> %s%s%s\n", Mode,
                  Modes.level(Mode).Hertz / 1e6,
                  Fn.block(E.From).Name.c_str(),
                  Fn.block(E.To).Name.c_str(),
                  Prof ? (" ; count " + std::to_string(Count)).c_str()
                       : "",
                  Silent ? " ; silent" : "");
    Out += Buf;
  }
  return Out;
}

std::string cdvs::summarizeAssignment(const ModeAssignment &Assignment,
                                      const ModeTable &Modes) {
  std::vector<int> PerMode(Modes.size(), 0);
  for (const auto &[E, M] : Assignment.EdgeMode)
    ++PerMode[M];
  std::string Out;
  char Buf[64];
  for (size_t M = 0; M < Modes.size(); ++M) {
    std::snprintf(Buf, sizeof(Buf), "%s%.0fMHz:%d", M ? " " : "",
                  Modes.level(M).Hertz / 1e6, PerMode[M]);
    Out += Buf;
  }
  return Out;
}
