//===- dvs/ScheduleIO.cpp - Mode-set listing output ------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "dvs/ScheduleIO.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

using namespace cdvs;

std::string cdvs::printAssignment(const Function &Fn,
                                  const ModeAssignment &Assignment,
                                  const ModeTable &Modes,
                                  const Profile *Prof) {
  std::string Out;
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "dvs schedule for %s: initial mode %d (%.0f MHz @ "
                "%.2f V)\n",
                Fn.name().c_str(), Assignment.InitialMode,
                Modes.level(Assignment.InitialMode).Hertz / 1e6,
                Modes.level(Assignment.InitialMode).Volts);
  Out += Buf;

  // Mode reaching each block along its most frequent incoming edge, to
  // flag dynamically silent sets.
  for (const CfgEdge &E : Fn.edges()) {
    auto It = Assignment.EdgeMode.find(E);
    if (It == Assignment.EdgeMode.end())
      continue;
    int Mode = It->second;
    uint64_t Count = 0;
    bool Silent = false;
    if (Prof) {
      auto CIt = Prof->EdgeCounts.find(E);
      Count = CIt == Prof->EdgeCounts.end() ? 0 : CIt->second;
      // Silent if every profiled predecessor context of the source
      // block already arrives in this mode.
      Silent = true;
      bool AnyPred = false;
      for (const auto &[Path, D] : Prof->PathCounts) {
        auto [H, I, J] = Path;
        if (I != E.From || J != E.To || D == 0)
          continue;
        AnyPred = true;
        int PredMode = Assignment.InitialMode;
        if (H >= 0) {
          auto PIt = Assignment.EdgeMode.find({H, I});
          if (PIt != Assignment.EdgeMode.end())
            PredMode = PIt->second;
          else
            PredMode = -1; // unknown context
        }
        if (PredMode != Mode)
          Silent = false;
      }
      Silent = Silent && AnyPred;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "  set-mode %d (%.0f MHz) on %s -> %s%s%s\n", Mode,
                  Modes.level(Mode).Hertz / 1e6,
                  Fn.block(E.From).Name.c_str(),
                  Fn.block(E.To).Name.c_str(),
                  Prof ? (" ; count " + std::to_string(Count)).c_str()
                       : "",
                  Silent ? " ; silent" : "");
    Out += Buf;
  }
  return Out;
}

std::string cdvs::summarizeAssignment(const ModeAssignment &Assignment,
                                      const ModeTable &Modes) {
  std::vector<int> PerMode(Modes.size(), 0);
  for (const auto &[E, M] : Assignment.EdgeMode)
    ++PerMode[M];
  std::string Out;
  char Buf[64];
  for (size_t M = 0; M < Modes.size(); ++M) {
    std::snprintf(Buf, sizeof(Buf), "%s%.0fMHz:%d", M ? " " : "",
                  Modes.level(M).Hertz / 1e6, PerMode[M]);
    Out += Buf;
  }
  return Out;
}

std::string cdvs::writeSchedule(const ModeAssignment &Assignment) {
  std::string Out = "cdvs-schedule v1\n";
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "initial %d\n", Assignment.InitialMode);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "edges %zu\n",
                Assignment.EdgeMode.size());
  Out += Buf;
  for (const auto &[E, M] : Assignment.EdgeMode) {
    std::snprintf(Buf, sizeof(Buf), "%d %d %d\n", E.From, E.To, M);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "paths %zu\n",
                Assignment.PathMode.size());
  Out += Buf;
  for (const auto &[P, M] : Assignment.PathMode) {
    auto [H, I, J] = P;
    std::snprintf(Buf, sizeof(Buf), "%d %d %d %d\n", H, I, J, M);
    Out += Buf;
  }
  Out += "end\n";
  return Out;
}

namespace {

/// Sequential line scanner that remembers the 1-based number of the line
/// it last produced, for error messages.
struct LineReader {
  const std::string &Text;
  size_t Pos = 0;
  int LineNo = 0;

  explicit LineReader(const std::string &Text) : Text(Text) {}

  /// \returns the next line without its terminator, or false at EOF.
  bool next(std::string &Line) {
    if (Pos >= Text.size())
      return false;
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos) {
      Line = Text.substr(Pos);
      Pos = Text.size();
    } else {
      Line = Text.substr(Pos, Nl - Pos);
      Pos = Nl + 1;
    }
    ++LineNo;
    return true;
  }
};

Err truncated(const char *What) {
  return makeError(std::string("schedule: truncated input (missing ") +
                   What + ")");
}

Err badLine(int LineNo, const std::string &Line) {
  return makeError("schedule: malformed line " + std::to_string(LineNo) +
                   ": '" + Line + "'");
}

/// Validates a parsed mode index against the optional table size.
bool modeOk(int Mode, int NumModes) {
  return Mode >= 0 && (NumModes < 0 || Mode < NumModes);
}

Err badMode(int Mode, int NumModes, int LineNo) {
  std::string Msg = "schedule: unknown mode index " +
                    std::to_string(Mode) + " on line " +
                    std::to_string(LineNo);
  if (NumModes >= 0)
    Msg += " (mode table has " + std::to_string(NumModes) + " modes)";
  return makeError(Msg);
}

/// sscanf wrapper that also rejects trailing junk on the line. \p Fmt
/// must end in %n (bound to the consumed-character counter) and carry
/// exactly \p N int conversions before it.
bool scanInts(const std::string &Line, const char *Fmt, int N, int *A,
              int *B = nullptr, int *C = nullptr, int *D = nullptr) {
  int Consumed = -1;
  switch (N) {
  case 1:
    std::sscanf(Line.c_str(), Fmt, A, &Consumed);
    break;
  case 3:
    std::sscanf(Line.c_str(), Fmt, A, B, C, &Consumed);
    break;
  case 4:
    std::sscanf(Line.c_str(), Fmt, A, B, C, D, &Consumed);
    break;
  default:
    cdvsUnreachable("scanInts arity");
  }
  if (Consumed < 0)
    return false;
  // Only whitespace may follow the matched prefix.
  for (size_t I = static_cast<size_t>(Consumed); I < Line.size(); ++I)
    if (!std::isspace(static_cast<unsigned char>(Line[I])))
      return false;
  return true;
}

} // namespace

ErrorOr<ModeAssignment> cdvs::readSchedule(const std::string &Text,
                                           int NumModes) {
  LineReader R(Text);
  std::string Line;

  if (!R.next(Line))
    return truncated("header");
  if (Line != "cdvs-schedule v1")
    return makeError("schedule: bad magic line '" + Line +
                     "' (expected 'cdvs-schedule v1')");

  ModeAssignment A;
  if (!R.next(Line))
    return truncated("initial mode");
  if (!scanInts(Line, "initial %d%n", 1, &A.InitialMode))
    return badLine(R.LineNo, Line);
  if (!modeOk(A.InitialMode, NumModes))
    return badMode(A.InitialMode, NumModes, R.LineNo);

  int NumEdges = 0;
  if (!R.next(Line))
    return truncated("edge count");
  if (!scanInts(Line, "edges %d%n", 1, &NumEdges) || NumEdges < 0)
    return badLine(R.LineNo, Line);
  for (int I = 0; I < NumEdges; ++I) {
    if (!R.next(Line))
      return truncated("edge lines");
    int From, To, Mode;
    if (!scanInts(Line, "%d %d %d%n", 3, &From, &To, &Mode))
      return badLine(R.LineNo, Line);
    if (From < -1 || To < 0)
      return makeError("schedule: invalid edge " + std::to_string(From) +
                       " -> " + std::to_string(To) + " on line " +
                       std::to_string(R.LineNo));
    if (!modeOk(Mode, NumModes))
      return badMode(Mode, NumModes, R.LineNo);
    if (!A.EdgeMode.emplace(CfgEdge{From, To}, Mode).second)
      return makeError("schedule: duplicate edge " + std::to_string(From) +
                       " -> " + std::to_string(To) + " on line " +
                       std::to_string(R.LineNo));
  }

  int NumPaths = 0;
  if (!R.next(Line))
    return truncated("path count");
  if (!scanInts(Line, "paths %d%n", 1, &NumPaths) || NumPaths < 0)
    return badLine(R.LineNo, Line);
  for (int I = 0; I < NumPaths; ++I) {
    if (!R.next(Line))
      return truncated("path lines");
    int H, From, To, Mode;
    if (!scanInts(Line, "%d %d %d %d%n", 4, &H, &From, &To, &Mode))
      return badLine(R.LineNo, Line);
    if (H < -1 || From < 0 || To < 0)
      return makeError("schedule: invalid path on line " +
                       std::to_string(R.LineNo));
    if (!modeOk(Mode, NumModes))
      return badMode(Mode, NumModes, R.LineNo);
    if (!A.PathMode.emplace(std::make_tuple(H, From, To), Mode).second)
      return makeError("schedule: duplicate path on line " +
                       std::to_string(R.LineNo));
  }

  if (!R.next(Line))
    return truncated("'end' marker");
  if (Line != "end")
    return badLine(R.LineNo, Line);
  while (R.next(Line))
    for (char C : Line)
      if (!std::isspace(static_cast<unsigned char>(C)))
        return makeError("schedule: trailing data on line " +
                         std::to_string(R.LineNo));
  return A;
}

ErrorOr<bool> cdvs::writeScheduleFile(const std::string &Path,
                                      const ModeAssignment &Assignment) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("schedule: cannot open '" + Path + "' for writing: " +
                     std::strerror(errno));
  std::string Text = writeSchedule(Assignment);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok)
    return makeError("schedule: short write to '" + Path + "'");
  return true;
}

ErrorOr<ModeAssignment> cdvs::readScheduleFile(const std::string &Path,
                                               int NumModes) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("schedule: cannot open '" + Path + "': " +
                     std::strerror(errno));
  std::string Text;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Got);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr)
    return makeError("schedule: read error on '" + Path + "'");
  return readSchedule(Text, NumModes);
}
