//===- analysis/Placement.cpp - Mode scaling-point legality -----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Placement.h"

namespace cdvs {
namespace analysis {

const char *scalingPointKindName(ScalingPointKind K) {
  switch (K) {
  case ScalingPointKind::Normal:
    return "normal";
  case ScalingPointKind::LoopEntry:
    return "loop-entry";
  case ScalingPointKind::LoopExit:
    return "loop-exit";
  case ScalingPointKind::LoopBack:
    return "loop-back";
  case ScalingPointKind::SelfLoop:
    return "self-loop";
  case ScalingPointKind::IrreducibleEntry:
    return "irreducible-entry";
  case ScalingPointKind::Dead:
    return "dead";
  }
  return "unknown";
}

std::vector<ScalingPoint> classifyScalingPoints(const Function &Fn,
                                                const Reachability &Reach,
                                                const LoopForest &Loops) {
  std::vector<ScalingPoint> Points;
  for (const CfgEdge &E : Fn.edges()) {
    ScalingPoint P;
    P.Edge = E;
    int FromScc = Loops.SccOf[E.From];
    int ToScc = Loops.SccOf[E.To];
    bool SameCycle = FromScc == ToScc && Loops.Sccs[FromScc].Nontrivial;
    if (!Reach.live(E)) {
      P.Kind = ScalingPointKind::Dead;
    } else if (E.From == E.To) {
      P.Kind = ScalingPointKind::SelfLoop;
    } else if (!SameCycle && Loops.Sccs[ToScc].Irreducible) {
      P.Kind = ScalingPointKind::IrreducibleEntry;
    } else if (SameCycle) {
      // Inside one cycle: a dominance back edge is the loop latch.
      bool IsBack = false;
      for (const Loop &L : Loops.Loops)
        for (const CfgEdge &BE : L.BackEdges)
          if (BE == E)
            IsBack = true;
      P.Kind = IsBack ? ScalingPointKind::LoopBack : ScalingPointKind::Normal;
    } else if (Loops.Sccs[ToScc].Nontrivial) {
      P.Kind = ScalingPointKind::LoopEntry;
    } else if (Loops.Sccs[FromScc].Nontrivial) {
      P.Kind = ScalingPointKind::LoopExit;
    } else {
      P.Kind = ScalingPointKind::Normal;
    }
    Points.push_back(P);
  }
  return Points;
}

} // namespace analysis
} // namespace cdvs
