//===- analysis/Intervals.cpp - Static execution-frequency intervals --------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Intervals.h"

namespace cdvs {
namespace analysis {

namespace {

/// \returns true when some Ret block is reachable from the entry while
/// never crossing the edge \p Skip. If not, every complete execution
/// must cross \p Skip at least once.
bool exitReachableAvoiding(const Function &Fn, const CfgEdge &Skip) {
  std::vector<char> Seen(Fn.numBlocks(), 0);
  std::vector<int> Work;
  Seen[0] = 1;
  Work.push_back(0);
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    if (Fn.block(B).Term == TermKind::Ret)
      return true;
    for (int S : Fn.block(B).Succs) {
      if (B == Skip.From && S == Skip.To)
        continue;
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
    }
  }
  return false;
}

} // namespace

FrequencyIntervals computeFrequencyIntervals(const Function &Fn,
                                             const Reachability &Reach,
                                             const DomTree &PostDom,
                                             const LoopForest &Loops) {
  const int N = Fn.numBlocks();
  FrequencyIntervals FI;
  FI.Blocks.assign(N, ExecInterval{});
  if (N == 0)
    return FI;

  for (int B = 0; B < N; ++B) {
    ExecInterval &I = FI.Blocks[B];
    if (!Reach.live(B)) {
      // Unreachable, or cannot reach an exit: never part of a complete
      // (terminating) execution.
      I = ExecInterval{0, 0, false};
      continue;
    }
    // Every complete path crosses B iff B post-dominates the entry.
    I.Min = (B == 0 || PostDom.dominates(B, 0)) ? 1 : 0;
    if (Loops.inCycle(B)) {
      I.Unbounded = true;
      I.Max = 0;
    } else {
      I.Max = 1;
    }
  }

  auto Edges = Fn.edges();
  FI.Edges.assign(Edges.size(), ExecInterval{});
  for (size_t E = 0; E < Edges.size(); ++E) {
    ExecInterval &I = FI.Edges[E];
    const CfgEdge &Edge = Edges[E];
    if (!Reach.live(Edge)) {
      I = ExecInterval{0, 0, false};
      continue;
    }
    // Mandatory iff removing the edge disconnects entry from every
    // exit. CFGs here are small (tens of edges), so one flood per edge
    // is fine.
    I.Min = exitReachableAvoiding(Fn, Edge) ? 0 : 1;
    if (Loops.SccOf[Edge.From] == Loops.SccOf[Edge.To] &&
        Loops.inCycle(Edge.From)) {
      // Both ends inside one cycle: the edge can repeat each iteration.
      I.Unbounded = true;
      I.Max = 0;
    } else {
      // A cross-SCC edge is a DAG edge of the condensation: once control
      // crosses it, it can never return to the source component, so the
      // edge executes at most once per invocation.
      I.Max = 1;
    }
  }
  return FI;
}

} // namespace analysis
} // namespace cdvs
