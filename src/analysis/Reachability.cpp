//===- analysis/Reachability.cpp - CFG reachability and liveness ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Reachability.h"

namespace cdvs {
namespace analysis {

Reachability computeReachability(const Function &Fn) {
  const int N = Fn.numBlocks();
  Reachability R;
  R.FromEntry.assign(N, 0);
  R.ToExit.assign(N, 0);
  R.Blocks.assign(N, BlockLiveness::Live);
  if (N == 0)
    return R;

  // Forward flood from the entry block.
  std::vector<int> Work;
  Work.push_back(0);
  R.FromEntry[0] = 1;
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    for (int S : Fn.block(B).Succs)
      if (!R.FromEntry[S]) {
        R.FromEntry[S] = 1;
        Work.push_back(S);
      }
  }

  // Backward flood from every Ret block over the reverse CFG.
  auto Preds = Fn.predecessors();
  for (int B = 0; B < N; ++B)
    if (Fn.block(B).Term == TermKind::Ret) {
      R.ToExit[B] = 1;
      Work.push_back(B);
    }
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    for (int P : Preds[B])
      if (!R.ToExit[P]) {
        R.ToExit[P] = 1;
        Work.push_back(P);
      }
  }

  for (int B = 0; B < N; ++B) {
    if (!R.FromEntry[B])
      R.Blocks[B] = BlockLiveness::DeadUnreachable;
    else if (!R.ToExit[B])
      R.Blocks[B] = BlockLiveness::DeadNoExit;
    else
      R.Blocks[B] = BlockLiveness::Live;
  }
  return R;
}

} // namespace analysis
} // namespace cdvs
