//===- analysis/Analysis.cpp - Whole-function static analysis ---------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include <algorithm>

namespace cdvs {
namespace analysis {

int FunctionAnalysis::edgeIndex(const CfgEdge &E) const {
  // Edges follows successor order within a block, which is not sorted
  // by To; the lists are tiny, so scan.
  auto It = std::find(Edges.begin(), Edges.end(), E);
  if (It == Edges.end())
    return -1;
  return static_cast<int>(It - Edges.begin());
}

int FunctionAnalysis::numDeadBlocks() const {
  int N = 0;
  for (BlockLiveness L : Reach.Blocks)
    if (L != BlockLiveness::Live)
      ++N;
  return N;
}

int FunctionAnalysis::numDeadEdges() const {
  int N = 0;
  for (const ScalingPoint &P : Points)
    if (P.Kind == ScalingPointKind::Dead)
      ++N;
  return N;
}

int FunctionAnalysis::numIrreducibleSccs() const {
  int N = 0;
  for (const Scc &S : Loops.Sccs)
    if (S.Irreducible)
      ++N;
  return N;
}

int FunctionAnalysis::maxLoopDepth() const {
  int D = 0;
  for (const Loop &L : Loops.Loops)
    D = std::max(D, L.Depth);
  return D;
}

FunctionAnalysis analyzeFunction(const Function &Fn) {
  FunctionAnalysis FA;
  FA.Reach = computeReachability(Fn);
  FA.Dom = computeDominators(Fn);
  FA.PostDom = computePostDominators(Fn);
  FA.Loops = computeLoops(Fn, FA.Dom);
  FA.Freq = computeFrequencyIntervals(Fn, FA.Reach, FA.PostDom, FA.Loops);
  FA.Points = classifyScalingPoints(Fn, FA.Reach, FA.Loops);
  FA.Edges = Fn.edges();
  return FA;
}

} // namespace analysis
} // namespace cdvs
