//===- analysis/Loops.cpp - SCCs, natural loops, irreducibility -------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"

#include <algorithm>
#include <map>

namespace cdvs {
namespace analysis {

bool Loop::contains(int B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

namespace {

/// Iterative Tarjan SCC. Components are emitted in reverse topological
/// order; we only need the membership map and per-component block sets.
struct TarjanScc {
  const Function &Fn;
  std::vector<int> Index, LowLink, SccOf;
  std::vector<char> OnStack;
  std::vector<int> Stack;
  std::vector<std::vector<int>> Components;
  int NextIndex = 0;

  explicit TarjanScc(const Function &Fn) : Fn(Fn) {
    int N = Fn.numBlocks();
    Index.assign(N, -1);
    LowLink.assign(N, 0);
    SccOf.assign(N, -1);
    OnStack.assign(N, 0);
    for (int B = 0; B < N; ++B)
      if (Index[B] < 0)
        run(B);
  }

  void run(int Root) {
    // Explicit DFS frames: (node, next successor position).
    std::vector<std::pair<int, size_t>> Frames;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      auto &[B, Pos] = Frames.back();
      if (Pos == 0) {
        Index[B] = LowLink[B] = NextIndex++;
        Stack.push_back(B);
        OnStack[B] = 1;
      }
      bool Descended = false;
      const auto &Succs = Fn.block(B).Succs;
      while (Pos < Succs.size()) {
        int S = Succs[Pos++];
        if (Index[S] < 0) {
          Frames.push_back({S, 0});
          Descended = true;
          break;
        }
        if (OnStack[S])
          LowLink[B] = std::min(LowLink[B], Index[S]);
      }
      if (Descended)
        continue;
      if (LowLink[B] == Index[B]) {
        std::vector<int> Comp;
        int Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = 0;
          SccOf[Member] = static_cast<int>(Components.size());
          Comp.push_back(Member);
        } while (Member != B);
        std::sort(Comp.begin(), Comp.end());
        Components.push_back(std::move(Comp));
      }
      int Done = B;
      Frames.pop_back();
      if (!Frames.empty()) {
        int Parent = Frames.back().first;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Done]);
      }
    }
  }
};

} // namespace

LoopForest computeLoops(const Function &Fn, const DomTree &Dom) {
  const int N = Fn.numBlocks();
  LoopForest F;
  F.SccOf.assign(N, -1);
  F.LoopOf.assign(N, -1);
  F.LoopDepth.assign(N, 0);
  if (N == 0)
    return F;

  // SCC condensation.
  TarjanScc T(Fn);
  F.SccOf = T.SccOf;
  F.Sccs.resize(T.Components.size());
  auto Preds = Fn.predecessors();
  for (size_t C = 0; C < T.Components.size(); ++C) {
    Scc &S = F.Sccs[C];
    S.Blocks = std::move(T.Components[C]);
    bool SelfEdge = false;
    for (int B : S.Blocks)
      for (int Succ : Fn.block(B).Succs)
        if (Succ == B)
          SelfEdge = true;
    S.Nontrivial = S.Blocks.size() > 1 || SelfEdge;
    if (!S.Nontrivial)
      continue;
    for (int B : S.Blocks) {
      bool Entry = B == 0; // The function entry enters any cycle it is in.
      for (int P : Preds[B])
        if (F.SccOf[P] != static_cast<int>(C))
          Entry = true;
      if (Entry)
        S.Entries.push_back(B);
    }
    // A cycle the control flow can enter at two different blocks has no
    // single dominating header: irreducible.
    S.Irreducible = S.Entries.size() > 1;
    if (S.Irreducible)
      F.HasIrreducible = true;
  }

  // Natural loops from dominance back edges, one loop per header.
  std::map<int, Loop> ByHeader;
  for (const CfgEdge &E : Fn.edges()) {
    if (!Dom.reachable(E.From) || !Dom.dominates(E.To, E.From))
      continue; // Not a back edge (or in unreachable code).
    Loop &L = ByHeader[E.To];
    L.Header = E.To;
    L.BackEdges.push_back(E);
  }
  for (auto &[Header, L] : ByHeader) {
    // Body: header plus reverse flood from each latch, stopping at the
    // header.
    std::vector<char> InLoop(N, 0);
    InLoop[Header] = 1;
    std::vector<int> Work;
    for (const CfgEdge &BE : L.BackEdges)
      if (!InLoop[BE.From]) {
        InLoop[BE.From] = 1;
        Work.push_back(BE.From);
      }
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      for (int P : Preds[B])
        if (!InLoop[P]) {
          InLoop[P] = 1;
          Work.push_back(P);
        }
    }
    for (int B = 0; B < N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
    F.Loops.push_back(std::move(L));
  }

  // Nesting: a loop's parent is the smallest other loop containing its
  // header. Sorting by body size descending makes parents precede
  // children and leaves LoopOf holding the innermost loop per block.
  std::sort(F.Loops.begin(), F.Loops.end(), [](const Loop &A, const Loop &B) {
    if (A.Blocks.size() != B.Blocks.size())
      return A.Blocks.size() > B.Blocks.size();
    return A.Header < B.Header;
  });
  for (size_t I = 0; I < F.Loops.size(); ++I) {
    Loop &L = F.Loops[I];
    for (size_t J = I; J-- > 0;) {
      if (F.Loops[J].Header != L.Header && F.Loops[J].contains(L.Header)) {
        L.Parent = static_cast<int>(J);
        L.Depth = F.Loops[J].Depth + 1;
        break;
      }
    }
    for (int B : L.Blocks) {
      F.LoopOf[B] = static_cast<int>(I);
      F.LoopDepth[B] = L.Depth;
    }
  }

  // Retreating edges inside a cycle whose head does not dominate the
  // tail are a second irreducibility witness (catches cycles nested
  // inside an otherwise reducible region).
  for (const CfgEdge &E : Fn.edges()) {
    int C = F.SccOf[E.From];
    if (C != F.SccOf[E.To] || !F.Sccs[C].Nontrivial)
      continue;
    if (!Dom.reachable(E.From))
      continue;
    bool InSomeNaturalLoop = false;
    for (const Loop &L : F.Loops)
      if (L.contains(E.From) && L.contains(E.To))
        InSomeNaturalLoop = true;
    if (!InSomeNaturalLoop && !F.Sccs[C].Irreducible) {
      F.Sccs[C].Irreducible = true;
      F.HasIrreducible = true;
    }
  }

  return F;
}

} // namespace analysis
} // namespace cdvs
