//===- analysis/Dominators.cpp - Dominator and post-dominator trees ---------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

namespace cdvs {
namespace analysis {

DomTree::DomTree(int Root, std::vector<int> IdomIn)
    : Root(Root), Idom(std::move(IdomIn)) {
  Depth.assign(Idom.size(), kNone);
  if (Root != kNone && Root < static_cast<int>(Idom.size()))
    Depth[Root] = 0;
  // Idom always points strictly up the tree, so repeated sweeps settle
  // depths in at most tree-height passes.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int N = 0; N < static_cast<int>(Idom.size()); ++N) {
      if (N == Root || Idom[N] == kNone || Depth[N] != kNone)
        continue;
      if (Depth[Idom[N]] != kNone) {
        Depth[N] = Depth[Idom[N]] + 1;
        Changed = true;
      }
    }
  }
}

bool DomTree::dominates(int A, int B) const {
  if (A == B)
    return true;
  if (!reachable(A) || !reachable(B))
    return false;
  // Walk B up to A's depth, then compare.
  int N = B;
  while (Depth[N] > Depth[A])
    N = Idom[N];
  return N == A;
}

namespace {

/// Graph view shared by the forward and reverse computations: dense node
/// ids, explicit successor/predecessor lists, single root.
struct GraphView {
  int NumNodes = 0;
  int Root = 0;
  std::vector<std::vector<int>> Preds;
  std::vector<std::vector<int>> Succs;
};

/// Cooper-Harvey-Kennedy: intersect two idom chains by walking the
/// deeper (later in reverse postorder) finger up until they meet.
int intersect(const std::vector<int> &Idom, const std::vector<int> &PostIndex,
              int A, int B) {
  while (A != B) {
    while (PostIndex[A] < PostIndex[B])
      A = Idom[A];
    while (PostIndex[B] < PostIndex[A])
      B = Idom[B];
  }
  return A;
}

DomTree computeOnGraph(const GraphView &G) {
  const int N = G.NumNodes;
  std::vector<int> Idom(N, DomTree::kNone);
  if (N == 0)
    return DomTree(DomTree::kNone, std::move(Idom));

  // Iterative DFS postorder from the root.
  std::vector<int> PostOrder;
  PostOrder.reserve(N);
  std::vector<int> PostIndex(N, -1);
  {
    std::vector<char> Visited(N, 0);
    // Stack holds (node, next successor index).
    std::vector<std::pair<int, size_t>> Stack;
    Stack.push_back({G.Root, 0});
    Visited[G.Root] = 1;
    while (!Stack.empty()) {
      auto &[Node, NextSucc] = Stack.back();
      if (NextSucc < G.Succs[Node].size()) {
        int S = G.Succs[Node][NextSucc++];
        if (!Visited[S]) {
          Visited[S] = 1;
          Stack.push_back({S, 0});
        }
      } else {
        PostIndex[Node] = static_cast<int>(PostOrder.size());
        PostOrder.push_back(Node);
        Stack.pop_back();
      }
    }
  }

  // Reverse postorder, root first.
  std::vector<int> RPO(PostOrder.rbegin(), PostOrder.rend());
  Idom[G.Root] = G.Root;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Node : RPO) {
      if (Node == G.Root)
        continue;
      int NewIdom = DomTree::kNone;
      for (int P : G.Preds[Node]) {
        if (Idom[P] == DomTree::kNone)
          continue; // Predecessor not yet processed or unreachable.
        NewIdom = NewIdom == DomTree::kNone
                      ? P
                      : intersect(Idom, PostIndex, NewIdom, P);
      }
      assert(NewIdom != DomTree::kNone && "reachable node with no processed pred");
      if (Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
  return DomTree(G.Root, std::move(Idom));
}

} // namespace

DomTree computeDominators(const Function &Fn) {
  GraphView G;
  G.NumNodes = Fn.numBlocks();
  G.Root = 0;
  if (G.NumNodes == 0)
    return DomTree(DomTree::kNone, {});
  G.Succs.resize(G.NumNodes);
  G.Preds = Fn.predecessors();
  for (int B = 0; B < G.NumNodes; ++B)
    G.Succs[B].assign(Fn.block(B).Succs.begin(), Fn.block(B).Succs.end());
  return computeOnGraph(G);
}

DomTree computePostDominators(const Function &Fn) {
  const int N = Fn.numBlocks();
  const int VirtualExit = N;
  GraphView G;
  G.NumNodes = N + 1;
  G.Root = VirtualExit;
  G.Succs.resize(G.NumNodes);
  G.Preds.resize(G.NumNodes);
  // Reverse CFG: an edge From->To becomes To->From, and every Ret block
  // gets a reverse-successor edge from the virtual exit.
  for (int B = 0; B < N; ++B) {
    for (int S : Fn.block(B).Succs) {
      G.Succs[S].push_back(B);
      G.Preds[B].push_back(S);
    }
    if (Fn.block(B).Term == TermKind::Ret) {
      G.Succs[VirtualExit].push_back(B);
      G.Preds[B].push_back(VirtualExit);
    }
  }
  return computeOnGraph(G);
}

} // namespace analysis
} // namespace cdvs
