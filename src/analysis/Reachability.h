//===- analysis/Reachability.h - CFG reachability and liveness ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward (from the entry block) and backward (to any Ret block)
/// reachability over a Function CFG, plus the structural dead-block and
/// dead-edge classification derived from it. "Dead" here is a static,
/// profile-independent fact: a dead edge cannot be crossed by any
/// terminating execution of the function, so every flow-conserving
/// profile must report a zero count for it. The verify::CfgChecker and
/// milp presolve both consume this single classification so they can
/// never disagree about which edges are dead.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYSIS_REACHABILITY_H
#define CDVS_ANALYSIS_REACHABILITY_H

#include "ir/Function.h"

#include <vector>

namespace cdvs {
namespace analysis {

/// Why a block is statically dead (or not).
enum class BlockLiveness {
  Live,            ///< Reachable from entry and reaches some Ret.
  DeadUnreachable, ///< Not reachable from the entry block.
  DeadNoExit,      ///< Reachable, but no path from it reaches a Ret.
};

/// Why an edge is statically dead (or not). An edge is live iff its
/// source is reachable from entry and its target can still reach a Ret;
/// only live edges can appear on a complete entry-to-exit path.
enum class EdgeLiveness {
  Live,
  DeadUnreachable, ///< Source block is unreachable from entry.
  DeadNoExit,      ///< Target block cannot reach any Ret block.
};

/// Reachability facts for one Function.
struct Reachability {
  std::vector<char> FromEntry; ///< Block reachable from block 0.
  std::vector<char> ToExit;    ///< Some Ret reachable from block.
  std::vector<BlockLiveness> Blocks;

  bool fromEntry(int B) const { return FromEntry[B] != 0; }
  bool toExit(int B) const { return ToExit[B] != 0; }
  bool live(int B) const { return Blocks[B] == BlockLiveness::Live; }

  /// Classifies a CFG edge of the analyzed function.
  EdgeLiveness classify(const CfgEdge &E) const {
    if (!fromEntry(E.From))
      return EdgeLiveness::DeadUnreachable;
    if (!toExit(E.To))
      return EdgeLiveness::DeadNoExit;
    return EdgeLiveness::Live;
  }

  bool live(const CfgEdge &E) const { return classify(E) == EdgeLiveness::Live; }
};

/// Computes forward/backward reachability for \p Fn.
Reachability computeReachability(const Function &Fn);

} // namespace analysis
} // namespace cdvs

#endif // CDVS_ANALYSIS_REACHABILITY_H
