//===- analysis/Intervals.h - Static execution-frequency intervals -*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-independent bounds on how often each block and edge executes
/// per invocation, derived purely from dominance and loop structure:
///
///  * Min = 1 when every complete entry-to-exit path crosses the block
///    (it post-dominates the entry, or is the entry) or edge (removing
///    it disconnects entry from exit); 0 otherwise.
///  * Max = 0 for statically dead blocks/edges, unbounded inside any
///    nontrivial cycle, 1 everywhere else (an acyclic region executes a
///    block at most once per invocation).
///
/// These intervals bound every flow-conserving profile the simulator
/// can produce, so a profile count outside its interval is evidence of
/// corruption -- and a Max of 0 is precisely the license the MILP
/// presolve needs to fix the edge's mode variables.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYSIS_INTERVALS_H
#define CDVS_ANALYSIS_INTERVALS_H

#include "analysis/Dominators.h"
#include "analysis/Loops.h"
#include "analysis/Reachability.h"
#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace cdvs {
namespace analysis {

/// Closed interval of per-invocation execution counts.
struct ExecInterval {
  uint64_t Min = 0;
  uint64_t Max = 0;        ///< Meaningful only when !Unbounded.
  bool Unbounded = false;  ///< Max is unbounded (block/edge in a cycle).

  /// \returns true when \p Count is consistent with the interval.
  bool admits(uint64_t Count) const {
    return Count >= Min && (Unbounded || Count <= Max);
  }

  bool mustExecute() const { return Min >= 1; }
  bool cannotExecute() const { return !Unbounded && Max == 0; }
};

/// Per-block and per-edge intervals; Edges is parallel to Fn.edges().
struct FrequencyIntervals {
  std::vector<ExecInterval> Blocks;
  std::vector<ExecInterval> Edges;
};

/// Computes static frequency intervals for \p Fn from previously
/// computed reachability, post-dominance, and loop structure.
FrequencyIntervals computeFrequencyIntervals(const Function &Fn,
                                             const Reachability &Reach,
                                             const DomTree &PostDom,
                                             const LoopForest &Loops);

} // namespace analysis
} // namespace cdvs

#endif // CDVS_ANALYSIS_INTERVALS_H
