//===- analysis/Loops.h - SCCs, natural loops, irreducibility ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan SCC condensation of a Function CFG, the natural-loop forest
/// recovered from dominance back edges, and irreducibility detection.
///
/// A back edge is an edge T->H whose head H dominates its tail T; its
/// natural loop is H plus every block that reaches T without passing
/// through H. A nontrivial SCC with more than one entry block (a block
/// with a predecessor outside the SCC), or containing a retreating edge
/// that is not a back edge, is irreducible: no single header dominates
/// the cycle, so loop-based reasoning (and the paper's "set the mode on
/// the loop entry edge" placement) is ambiguous there.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYSIS_LOOPS_H
#define CDVS_ANALYSIS_LOOPS_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <vector>

namespace cdvs {
namespace analysis {

/// One natural loop.
struct Loop {
  int Header = 0;                 ///< Header block id (dominates the body).
  std::vector<int> Blocks;        ///< Body block ids, sorted, includes Header.
  std::vector<CfgEdge> BackEdges; ///< Latch->Header edges forming the loop.
  int Parent = -1;                ///< Index of enclosing loop, -1 for top level.
  int Depth = 1;                  ///< Nesting depth; top-level loops are 1.

  bool contains(int B) const;
};

/// One strongly connected component of the CFG.
struct Scc {
  std::vector<int> Blocks;  ///< Member block ids, sorted.
  std::vector<int> Entries; ///< Members with a predecessor outside the SCC.
  bool Irreducible = false; ///< More than one entry into the cycle.

  /// True for a component that actually contains a cycle (more than one
  /// block, or a single block with a self edge).
  bool Nontrivial = false;
};

/// Loop and SCC structure of a Function.
struct LoopForest {
  std::vector<Loop> Loops;     ///< Sorted outermost-first within a nest.
  std::vector<Scc> Sccs;       ///< Condensation components.
  std::vector<int> SccOf;      ///< Block id -> index into Sccs.
  std::vector<int> LoopOf;     ///< Block id -> innermost loop index or -1.
  std::vector<int> LoopDepth;  ///< Block id -> nesting depth, 0 outside loops.
  bool HasIrreducible = false; ///< Any SCC with multiple entries.

  /// Blocks in some nontrivial cycle (natural loop or irreducible SCC);
  /// their static execution count is unbounded.
  bool inCycle(int B) const {
    return Sccs[SccOf[B]].Nontrivial;
  }
};

/// Computes SCCs, natural loops, and irreducibility facts for \p Fn
/// using the dominator tree \p Dom (from computeDominators(Fn)).
LoopForest computeLoops(const Function &Fn, const DomTree &Dom);

} // namespace analysis
} // namespace cdvs

#endif // CDVS_ANALYSIS_LOOPS_H
