//===- analysis/Placement.h - Mode scaling-point legality --------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static legality classification of mode scaling points. The paper
/// (Section 4.1) attaches voltage/frequency mode decisions to CFG
/// edges; not every edge is an equally sensible place to switch:
///
///  * Dead edges can never be crossed, so a mode set there is
///    unreachable code in the schedule.
///  * Self-loop and loop back edges re-pay the transition penalty on
///    every iteration; the paper's placement puts switches on loop
///    entry/exit edges instead.
///  * Edges entering an irreducible region have no unique loop header,
///    so the "mode of the loop" the paper reasons about is ambiguous.
///
/// The classification is purely advisory for the MILP (which prices
/// transitions explicitly) but is surfaced by dvs-lint --static so
/// hand-written schedules and workload CFGs get audited.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYSIS_PLACEMENT_H
#define CDVS_ANALYSIS_PLACEMENT_H

#include "analysis/Loops.h"
#include "analysis/Reachability.h"
#include "ir/Function.h"

#include <vector>

namespace cdvs {
namespace analysis {

/// Legality/advisability of using an edge as a scaling point.
enum class ScalingPointKind {
  Normal,           ///< Live forward edge; unrestricted scaling point.
  LoopEntry,        ///< Enters a loop from outside: the preferred spot.
  LoopExit,         ///< Leaves a cycle: preferred spot for restoring mode.
  LoopBack,         ///< Back edge: a switch here repeats every iteration.
  SelfLoop,         ///< Single-block cycle: worst-case repeated switch.
  IrreducibleEntry, ///< Enters a multi-entry cycle: ambiguous loop mode.
  Dead,             ///< Statically dead edge: a mode here is never used.
};

/// Classification of one CFG edge, parallel to Function::edges().
struct ScalingPoint {
  CfgEdge Edge;
  ScalingPointKind Kind = ScalingPointKind::Normal;
};

/// \returns a short lowercase name for \p K ("loop-back", "dead", ...).
const char *scalingPointKindName(ScalingPointKind K);

/// Classifies every CFG edge of \p Fn.
std::vector<ScalingPoint> classifyScalingPoints(const Function &Fn,
                                                const Reachability &Reach,
                                                const LoopForest &Loops);

} // namespace analysis
} // namespace cdvs

#endif // CDVS_ANALYSIS_PLACEMENT_H
