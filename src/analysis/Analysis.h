//===- analysis/Analysis.h - Whole-function static analysis ------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella entry point bundling every static CFG analysis the DVS
/// pipeline consumes: reachability, dominators/post-dominators, loop
/// forest with irreducibility, static execution-frequency intervals,
/// and the scaling-point legality classification. One call computes
/// everything; the result is immutable and safe to share across
/// threads (the service memoizes one instance per workload).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYSIS_ANALYSIS_H
#define CDVS_ANALYSIS_ANALYSIS_H

#include "analysis/Dominators.h"
#include "analysis/Intervals.h"
#include "analysis/Loops.h"
#include "analysis/Placement.h"
#include "analysis/Reachability.h"
#include "ir/Function.h"

#include <cstddef>
#include <vector>

namespace cdvs {
namespace analysis {

/// All static facts about one Function.
struct FunctionAnalysis {
  Reachability Reach;
  DomTree Dom;
  DomTree PostDom;
  LoopForest Loops;
  FrequencyIntervals Freq;
  std::vector<ScalingPoint> Points; ///< Parallel to Fn.edges().
  std::vector<CfgEdge> Edges;       ///< Fn.edges(), for index lookups.

  /// Index of \p E in Edges, or -1 when absent.
  int edgeIndex(const CfgEdge &E) const;

  /// Summary counters (over Edges / blocks).
  int numDeadBlocks() const;
  int numDeadEdges() const;
  int numIrreducibleSccs() const;
  int maxLoopDepth() const;
};

/// Runs every analysis over \p Fn.
FunctionAnalysis analyzeFunction(const Function &Fn);

} // namespace analysis
} // namespace cdvs

#endif // CDVS_ANALYSIS_ANALYSIS_H
