//===- analysis/Dominators.h - Dominator and post-dominator trees -*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees over Function CFGs, computed with
/// the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
/// Dominance Algorithm"). Post-dominance is dominance over the reverse
/// CFG rooted at a virtual exit node that every Ret block branches to;
/// the virtual exit is exposed as node id numBlocks() so that functions
/// with several Ret blocks still have a single post-dominator root.
///
/// Both trees tolerate unreachable nodes: a block that the root cannot
/// reach has no immediate dominator (idom() returns kNone) and is
/// dominated by nothing but itself.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_ANALYSIS_DOMINATORS_H
#define CDVS_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace cdvs {
namespace analysis {

/// A dominator tree over dense node ids.
///
/// Nodes are block ids, except in the post-dominator tree where one
/// extra node (id == numBlocks of the analyzed function) stands for the
/// virtual exit. The root's idom is itself; nodes unreachable from the
/// root have idom kNone.
class DomTree {
public:
  static constexpr int kNone = -1;

  DomTree() = default;
  DomTree(int Root, std::vector<int> Idom);

  int root() const { return Root; }
  int numNodes() const { return static_cast<int>(Idom.size()); }

  /// Immediate dominator of \p Node, or kNone if \p Node is unreachable
  /// from the root. The root's idom is the root itself.
  int idom(int Node) const { return Idom[Node]; }

  /// Depth of \p Node in the tree (root is 0); kNone for unreachable.
  int depth(int Node) const { return Depth[Node]; }

  /// \returns true when \p Node is reachable from the tree root.
  bool reachable(int Node) const { return Idom[Node] != kNone; }

  /// \returns true when \p A dominates \p B (reflexive). Unreachable
  /// nodes dominate only themselves.
  bool dominates(int A, int B) const;

  /// \returns true when \p A strictly dominates \p B.
  bool strictlyDominates(int A, int B) const { return A != B && dominates(A, B); }

private:
  int Root = kNone;
  std::vector<int> Idom;
  std::vector<int> Depth;
};

/// Computes the dominator tree of \p Fn rooted at the entry block 0.
DomTree computeDominators(const Function &Fn);

/// Computes the post-dominator tree of \p Fn over the reverse CFG,
/// rooted at a virtual exit node with id Fn.numBlocks() that succeeds
/// every Ret block. A function with no Ret block yields a tree where
/// only the virtual exit is reachable.
DomTree computePostDominators(const Function &Fn);

} // namespace analysis
} // namespace cdvs

#endif // CDVS_ANALYSIS_DOMINATORS_H
