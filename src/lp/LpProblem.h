//===- lp/LpProblem.h - Linear program description --------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear program in the form
///
///   minimize    c^T x
///   subject to  a_i^T x  {<=, >=, ==}  b_i     for each row i
///               Lo_j <= x_j <= Hi_j            for each variable j
///
/// Every variable must have a finite lower bound (all DVS variables are
/// naturally nonnegative); upper bounds may be +infinity. Rows are stored
/// sparsely. The solver (SimplexSolver) consumes this description.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_LP_LPPROBLEM_H
#define CDVS_LP_LPPROBLEM_H

#include <cassert>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace cdvs {

/// Direction of a linear constraint row.
enum class RowSense { LE, GE, EQ };

/// One sparse term of a constraint row: coefficient on a variable.
struct LpTerm {
  int Var = 0;
  double Coeff = 0.0;
};

/// Positive infinity used for "no upper bound".
inline double lpInf() { return std::numeric_limits<double>::infinity(); }

/// Mutable LP model builder.
class LpProblem {
public:
  /// Adds a variable with bounds [\p Lo, \p Hi] and objective cost
  /// \p Cost. Lo must be finite. \returns the variable index.
  int addVariable(double Lo, double Hi, double Cost,
                  std::string Name = "");

  /// Adds a constraint row. Terms on the same variable are allowed and
  /// are summed by the solver. \returns the row index.
  int addRow(RowSense Sense, double Rhs, std::vector<LpTerm> Terms);

  /// Overwrites the objective coefficient of \p Var.
  void setCost(int Var, double Cost);

  /// Tightens/relaxes variable bounds (used by branch-and-bound to fix
  /// binaries without rebuilding the model).
  void setBounds(int Var, double Lo, double Hi);

  int numVariables() const { return static_cast<int>(Cost_.size()); }
  int numRows() const { return static_cast<int>(Sense_.size()); }

  double cost(int Var) const { return Cost_[Var]; }
  double lowerBound(int Var) const { return Lo_[Var]; }
  double upperBound(int Var) const { return Hi_[Var]; }
  const std::string &name(int Var) const { return Names_[Var]; }

  RowSense sense(int Row) const { return Sense_[Row]; }
  double rhs(int Row) const { return Rhs_[Row]; }
  const std::vector<LpTerm> &rowTerms(int Row) const { return Terms_[Row]; }

  /// Evaluates the objective at point \p X (size numVariables()).
  double objectiveAt(const std::vector<double> &X) const;

  /// \returns the row activity a_i^T x at point \p X.
  double rowActivityAt(int Row, const std::vector<double> &X) const;

  /// \returns true if \p X satisfies all rows and bounds within \p Tol.
  bool isFeasible(const std::vector<double> &X, double Tol = 1e-6) const;

private:
  std::vector<double> Cost_;
  std::vector<double> Lo_;
  std::vector<double> Hi_;
  std::vector<std::string> Names_;
  std::vector<RowSense> Sense_;
  std::vector<double> Rhs_;
  std::vector<std::vector<LpTerm>> Terms_;
};

} // namespace cdvs

#endif // CDVS_LP_LPPROBLEM_H
