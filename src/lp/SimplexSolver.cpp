//===- lp/SimplexSolver.cpp - Bounded-variable primal simplex ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Tableau layout: one dense row per constraint over columns
//   [0, n)            structural variables
//   [n, n+m)          slack variables (one per row; GE rows are negated to
//                     LE on input, so every slack has bounds [0, +inf) for
//                     LE rows and [0, 0] for EQ rows)
//   [n+m, n+m+a)      phase-1 artificial variables
//   n+m+a             the transformed right-hand side
//
// Nonbasic variables rest at a bound (every variable has a finite lower
// bound by LpProblem's contract). Basic values are maintained
// incrementally in Beta and refreshed periodically from the transformed
// RHS to bound numerical drift.
//
//===----------------------------------------------------------------------===//

#include "lp/SimplexSolver.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace cdvs;

const char *cdvs::lpStatusName(LpStatus Status) {
  switch (Status) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterationLimit:
    return "iteration-limit";
  }
  cdvsUnreachable("bad LpStatus");
}

namespace {

enum class VarState : unsigned char { AtLower, AtUpper, Basic };

} // namespace

struct SimplexSolver::Impl {
  const LpProblem &P;
  const SimplexOptions &O;

  int NumStruct = 0;
  int NumRows = 0;
  int NumArt = 0;
  int NumCols = 0; // structural + slack + artificial
  int RhsCol = 0;  // == NumCols

  std::vector<double> Tab; // NumRows x (NumCols + 1)
  std::vector<double> Lo, Hi, Cost;
  std::vector<VarState> State;
  std::vector<int> BasisOfRow;
  std::vector<int> RowOfBasic;
  std::vector<double> Beta;
  std::vector<double> D;
  long Iterations = 0;
  int DegenRun = 0;

  Impl(const LpProblem &P, const SimplexOptions &O) : P(P), O(O) {}

  double &at(int R, int C) {
    return Tab[static_cast<size_t>(R) * (NumCols + 1) + C];
  }
  double atC(int R, int C) const {
    return Tab[static_cast<size_t>(R) * (NumCols + 1) + C];
  }

  bool isArtificial(int C) const { return C >= NumStruct + NumRows; }

  double boundValue(int C) const {
    return State[C] == VarState::AtUpper ? Hi[C] : Lo[C];
  }

  void build();
  void computeReducedCosts(const std::vector<double> &Costs);
  void pivot(int Row, int Col);
  void refreshBeta();
  LpStatus runPhase();
  bool driveOutArtificials();
  double phase1Infeasibility() const;
  LpSolution finish(LpStatus Status);
};

void SimplexSolver::Impl::build() {
  NumStruct = P.numVariables();
  NumRows = P.numRows();

  // First pass: initial slack values with all structurals at lower bound.
  std::vector<double> SlackVal(NumRows, 0.0);
  std::vector<bool> NeedsArt(NumRows, false);
  for (int I = 0; I < NumRows; ++I) {
    double Sign = P.sense(I) == RowSense::GE ? -1.0 : 1.0;
    double Act = 0.0;
    for (const LpTerm &T : P.rowTerms(I))
      Act += Sign * T.Coeff * P.lowerBound(T.Var);
    double B = Sign * P.rhs(I);
    double S = B - Act;
    SlackVal[I] = S;
    bool IsEq = P.sense(I) == RowSense::EQ;
    if (S < -O.FeasTol || (IsEq && S > O.FeasTol))
      NeedsArt[I] = true;
  }
  NumArt = static_cast<int>(
      std::count(NeedsArt.begin(), NeedsArt.end(), true));
  NumCols = NumStruct + NumRows + NumArt;
  RhsCol = NumCols;

  Tab.assign(static_cast<size_t>(NumRows) * (NumCols + 1), 0.0);
  Lo.assign(NumCols, 0.0);
  Hi.assign(NumCols, 0.0);
  Cost.assign(NumCols, 0.0);
  State.assign(NumCols, VarState::AtLower);
  BasisOfRow.assign(NumRows, -1);
  RowOfBasic.assign(NumCols, -1);
  Beta.assign(NumRows, 0.0);

  for (int J = 0; J < NumStruct; ++J) {
    Lo[J] = P.lowerBound(J);
    Hi[J] = P.upperBound(J);
    Cost[J] = P.cost(J);
  }

  int NextArt = NumStruct + NumRows;
  for (int I = 0; I < NumRows; ++I) {
    double Sign = P.sense(I) == RowSense::GE ? -1.0 : 1.0;
    for (const LpTerm &T : P.rowTerms(I))
      at(I, T.Var) += Sign * T.Coeff;
    int SlackCol = NumStruct + I;
    at(I, SlackCol) = 1.0;
    Lo[SlackCol] = 0.0;
    Hi[SlackCol] = P.sense(I) == RowSense::EQ ? 0.0 : lpInf();
    at(I, RhsCol) = Sign * P.rhs(I);

    if (NeedsArt[I]) {
      int ArtCol = NextArt++;
      double G = SlackVal[I] < 0.0 ? -1.0 : 1.0;
      // The artificial must enter the basis as a unit column: scale the
      // whole row by G so the artificial's coefficient is +1 and its
      // basic value |SlackVal| is nonnegative.
      if (G < 0.0)
        for (int C = 0; C <= NumCols; ++C)
          at(I, C) = -at(I, C);
      at(I, ArtCol) = 1.0;
      Lo[ArtCol] = 0.0;
      Hi[ArtCol] = lpInf();
      BasisOfRow[I] = ArtCol;
      RowOfBasic[ArtCol] = I;
      State[ArtCol] = VarState::Basic;
      State[SlackCol] = VarState::AtLower;
      Beta[I] = std::fabs(SlackVal[I]);
    } else {
      BasisOfRow[I] = SlackCol;
      RowOfBasic[SlackCol] = I;
      State[SlackCol] = VarState::Basic;
      Beta[I] = SlackVal[I];
    }
  }
}

void SimplexSolver::Impl::computeReducedCosts(
    const std::vector<double> &Costs) {
  D = Costs;
  D.resize(NumCols, 0.0);
  for (int I = 0; I < NumRows; ++I) {
    double Cb = Costs[BasisOfRow[I]];
    if (Cb == 0.0)
      continue;
    for (int C = 0; C < NumCols; ++C)
      D[C] -= Cb * atC(I, C);
  }
  for (int I = 0; I < NumRows; ++I)
    D[BasisOfRow[I]] = 0.0;
}

void SimplexSolver::Impl::pivot(int Row, int Col) {
  double Piv = at(Row, Col);
  assert(std::fabs(Piv) > 1e-12 && "pivot too small");
  double Inv = 1.0 / Piv;
  for (int C = 0; C <= NumCols; ++C)
    at(Row, C) *= Inv;
  at(Row, Col) = 1.0;
  for (int I = 0; I < NumRows; ++I) {
    if (I == Row)
      continue;
    double F = at(I, Col);
    if (std::fabs(F) <= 1e-13) {
      at(I, Col) = 0.0;
      continue;
    }
    for (int C = 0; C <= NumCols; ++C)
      at(I, C) -= F * at(Row, C);
    at(I, Col) = 0.0;
  }
  double Fd = D[Col];
  if (Fd != 0.0) {
    for (int C = 0; C < NumCols; ++C)
      D[C] -= Fd * at(Row, C);
    D[Col] = 0.0;
  }
}

void SimplexSolver::Impl::refreshBeta() {
  // Beta = transformed RHS minus contributions of nonbasic columns that
  // rest at a nonzero bound.
  std::vector<std::pair<int, double>> NonzeroNonbasic;
  for (int C = 0; C < NumCols; ++C) {
    if (State[C] == VarState::Basic)
      continue;
    double V = boundValue(C);
    if (V != 0.0)
      NonzeroNonbasic.push_back({C, V});
  }
  for (int I = 0; I < NumRows; ++I) {
    double V = atC(I, RhsCol);
    for (const auto &[C, Val] : NonzeroNonbasic)
      V -= atC(I, C) * Val;
    Beta[I] = V;
  }
}

LpStatus SimplexSolver::Impl::runPhase() {
  for (;;) {
    if (Iterations >= O.MaxIterations)
      return LpStatus::IterationLimit;
    bool UseBland = DegenRun > O.BlandThreshold;

    // Pricing: pick the entering column.
    int Enter = -1;
    double BestScore = 0.0;
    for (int C = 0; C < NumCols; ++C) {
      if (State[C] == VarState::Basic || Lo[C] == Hi[C])
        continue;
      double Dc = D[C];
      bool Eligible = (State[C] == VarState::AtLower && Dc < -O.CostTol) ||
                      (State[C] == VarState::AtUpper && Dc > O.CostTol);
      if (!Eligible)
        continue;
      if (UseBland) {
        Enter = C;
        break;
      }
      double Score = std::fabs(Dc);
      if (Score > BestScore) {
        BestScore = Score;
        Enter = C;
      }
    }
    if (Enter < 0)
      return LpStatus::Optimal;

    double Dir = State[Enter] == VarState::AtLower ? 1.0 : -1.0;

    // Ratio test: smallest step that drives a basic variable to a bound,
    // or the entering variable's own bound span (a bound flip).
    double BestT = Hi[Enter] - Lo[Enter]; // may be +inf
    int LeaveRow = -1;
    bool LeaveAtUpper = false;
    double BestAlpha = 0.0;
    for (int I = 0; I < NumRows; ++I) {
      double Alpha = atC(I, Enter);
      double W = Dir * Alpha;
      int BCol = BasisOfRow[I];
      double Lim;
      bool ToUpper;
      if (W > O.PivotTol) {
        Lim = (Beta[I] - Lo[BCol]) / W;
        ToUpper = false;
      } else if (W < -O.PivotTol && std::isfinite(Hi[BCol])) {
        Lim = (Hi[BCol] - Beta[I]) / (-W);
        ToUpper = true;
      } else {
        continue;
      }
      if (Lim < 0.0)
        Lim = 0.0;
      bool Better = Lim < BestT - 1e-12;
      bool Tie = !Better && Lim < BestT + 1e-12 && LeaveRow >= 0;
      if (Tie) {
        if (UseBland)
          Better = BCol < BasisOfRow[LeaveRow];
        else
          Better = std::fabs(Alpha) > std::fabs(BestAlpha);
      } else if (!Better && LeaveRow < 0 && Lim <= BestT) {
        Better = true;
      }
      if (Better) {
        BestT = Lim;
        LeaveRow = I;
        LeaveAtUpper = ToUpper;
        BestAlpha = Alpha;
      }
    }

    if (!std::isfinite(BestT))
      return LpStatus::Unbounded;
    if (BestT < 0.0)
      BestT = 0.0;

    ++Iterations;
    if (BestT < 1e-11)
      ++DegenRun;
    else
      DegenRun = 0;

    if (LeaveRow < 0) {
      // Bound flip: the entering variable runs to its opposite bound.
      for (int I = 0; I < NumRows; ++I)
        Beta[I] -= Dir * BestT * atC(I, Enter);
      State[Enter] = State[Enter] == VarState::AtLower ? VarState::AtUpper
                                                       : VarState::AtLower;
    } else {
      double EnterVal = boundValue(Enter) + Dir * BestT;
      for (int I = 0; I < NumRows; ++I) {
        if (I != LeaveRow)
          Beta[I] -= Dir * BestT * atC(I, Enter);
      }
      int LeaveCol = BasisOfRow[LeaveRow];
      State[LeaveCol] =
          LeaveAtUpper ? VarState::AtUpper : VarState::AtLower;
      RowOfBasic[LeaveCol] = -1;
      BasisOfRow[LeaveRow] = Enter;
      RowOfBasic[Enter] = LeaveRow;
      State[Enter] = VarState::Basic;
      Beta[LeaveRow] = EnterVal;
      pivot(LeaveRow, Enter);
    }

    if (Iterations % O.RefreshInterval == 0)
      refreshBeta();
  }
}

double SimplexSolver::Impl::phase1Infeasibility() const {
  double Sum = 0.0;
  for (int I = 0; I < NumRows; ++I)
    if (isArtificial(BasisOfRow[I]))
      Sum += std::max(0.0, Beta[I]);
  return Sum;
}

bool SimplexSolver::Impl::driveOutArtificials() {
  for (int I = 0; I < NumRows; ++I) {
    int BCol = BasisOfRow[I];
    if (!isArtificial(BCol))
      continue;
    // The artificial sits at value ~0. Exchange it for any real column
    // with a usable pivot entry; if none, the row is redundant and the
    // artificial stays basic, pinned to zero.
    int Pick = -1;
    for (int C = 0; C < NumStruct + NumRows; ++C) {
      if (State[C] == VarState::Basic)
        continue;
      if (std::fabs(atC(I, C)) > 1e-7) {
        Pick = C;
        break;
      }
    }
    if (Pick < 0)
      continue;
    double EnterVal = boundValue(Pick);
    State[BCol] = VarState::AtLower;
    RowOfBasic[BCol] = -1;
    BasisOfRow[I] = Pick;
    RowOfBasic[Pick] = I;
    State[Pick] = VarState::Basic;
    Beta[I] = EnterVal;
    pivot(I, Pick);
  }
  // Pin every artificial (basic or not) to zero so phase 2 cannot use it.
  for (int C = NumStruct + NumRows; C < NumCols; ++C) {
    Lo[C] = 0.0;
    Hi[C] = 0.0;
  }
  return true;
}

LpSolution SimplexSolver::Impl::finish(LpStatus Status) {
  LpSolution Sol;
  Sol.Status = Status;
  Sol.Iterations = Iterations;
  Sol.X.assign(NumStruct, 0.0);
  for (int J = 0; J < NumStruct; ++J) {
    if (State[J] == VarState::Basic)
      Sol.X[J] = Beta[RowOfBasic[J]];
    else
      Sol.X[J] = boundValue(J);
    // Clamp tiny bound violations from numerical drift.
    Sol.X[J] = std::min(std::max(Sol.X[J], Lo[J]), Hi[J]);
  }
  Sol.Objective = P.objectiveAt(Sol.X);
  return Sol;
}

SimplexSolver::SimplexSolver(const LpProblem &Problem, SimplexOptions Opts)
    : Problem(Problem), Opts(Opts) {}

LpSolution SimplexSolver::solve() {
  Impl I(Problem, Opts);
  I.build();

  if (I.NumArt > 0) {
    std::vector<double> Phase1Cost(I.NumCols, 0.0);
    for (int C = I.NumStruct + I.NumRows; C < I.NumCols; ++C)
      Phase1Cost[C] = 1.0;
    I.computeReducedCosts(Phase1Cost);
    LpStatus S = I.runPhase();
    if (S == LpStatus::IterationLimit)
      return I.finish(S);
    assert(S != LpStatus::Unbounded && "phase 1 cannot be unbounded");
    I.refreshBeta();
    if (I.phase1Infeasibility() > Opts.FeasTol * 10.0)
      return I.finish(LpStatus::Infeasible);
    I.driveOutArtificials();
  }

  std::vector<double> Phase2Cost(I.NumCols, 0.0);
  for (int C = 0; C < I.NumStruct; ++C)
    Phase2Cost[C] = Problem.cost(C);
  I.DegenRun = 0;
  I.computeReducedCosts(Phase2Cost);
  LpStatus S = I.runPhase();
  I.refreshBeta();
  return I.finish(S);
}

LpSolution cdvs::solveLp(const LpProblem &Problem, SimplexOptions Opts) {
  return SimplexSolver(Problem, Opts).solve();
}
