//===- lp/SimplexSolver.cpp - Bounded-variable primal simplex ------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
//
// Tableau layout: one dense row per constraint over columns
//   [0, n)            structural variables
//   [n, n+m)          slack variables (one per row; GE rows are negated to
//                     LE on input, so every slack has bounds [0, +inf) for
//                     LE rows and [0, 0] for EQ rows)
//   [n+m, n+m+a)      phase-1 artificial variables
//   n+m+a             the transformed right-hand side
//
// Nonbasic variables rest at a bound (every variable has a finite lower
// bound by LpProblem's contract). Basic values are maintained
// incrementally in Beta and refreshed periodically from the transformed
// RHS to bound numerical drift.
//
// The same Core drives two front ends:
//  * SimplexSolver — one-shot cold solve: build, phase 1 via artificials,
//    phase 2 primal;
//  * SimplexEngine — persistent warm solves: after a bound change the old
//    basis stays dual feasible (costs are untouched), so a bounded-
//    variable dual simplex restores primal feasibility and primal phase 2
//    finishes. A basis snapshot (SimplexBasis) can be exported and
//    re-entered by refactorizing a raw tableau around it.
//
// The dual phase's infeasibility verdict does not lean on reduced costs:
// when no entering column is sign-eligible for a violated row, that row
// alone certifies primal infeasibility (every nonbasic movement pushes
// the basic variable further out of bounds), which is what makes it safe
// for branch-and-bound pruning.
//
//===----------------------------------------------------------------------===//

#include "lp/SimplexSolver.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace cdvs;

const char *cdvs::lpStatusName(LpStatus Status) {
  switch (Status) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterationLimit:
    return "iteration-limit";
  }
  cdvsUnreachable("bad LpStatus");
}

namespace {

enum class VarState : unsigned char { AtLower, AtUpper, Basic };

struct Core {
  const LpProblem *P;
  SimplexOptions O;

  int NumStruct = 0;
  int NumRows = 0;
  int NumArt = 0;
  int NumCols = 0; // structural + slack + artificial
  int RhsCol = 0;  // == NumCols

  std::vector<double> Tab; // NumRows x (NumCols + 1)
  std::vector<double> Lo, Hi;
  std::vector<VarState> State;
  std::vector<int> BasisOfRow;
  std::vector<int> RowOfBasic;
  std::vector<double> Beta;
  std::vector<double> D;
  long Iterations = 0;
  long IterBase = 0; // Iterations at the start of the current solve
  long TotalPivots = 0;
  int DegenRun = 0;

  Core(const LpProblem *P, SimplexOptions O) : P(P), O(O) {}

  double &at(int R, int C) {
    return Tab[static_cast<size_t>(R) * (NumCols + 1) + C];
  }
  double atC(int R, int C) const {
    return Tab[static_cast<size_t>(R) * (NumCols + 1) + C];
  }

  bool isArtificial(int C) const { return C >= NumStruct + NumRows; }

  double boundValue(int C) const {
    return State[C] == VarState::AtUpper ? Hi[C] : Lo[C];
  }

  void buildCold();
  void buildRaw();
  void computeReducedCosts(const std::vector<double> &Costs);
  void computePhase2Costs();
  void pivot(int Row, int Col);
  void refreshBeta();
  LpStatus runPhase();
  LpStatus dualPhase(long Cap);
  bool driveOutArtificials();
  double phase1Infeasibility() const;
  LpSolution finish(LpStatus Status);

  LpSolution solveCold();
  LpSolution solveWarm(long DualCap);

  void setBounds(int Var, double Lo, double Hi);
  void exportBasis(SimplexBasis &B) const;
  bool refactorizeFrom(const SimplexBasis &B);
};

void Core::buildCold() {
  NumStruct = P->numVariables();
  NumRows = P->numRows();

  // First pass: initial slack values with all structurals at lower bound.
  std::vector<double> SlackVal(NumRows, 0.0);
  std::vector<bool> NeedsArt(NumRows, false);
  for (int I = 0; I < NumRows; ++I) {
    double Sign = P->sense(I) == RowSense::GE ? -1.0 : 1.0;
    double Act = 0.0;
    for (const LpTerm &T : P->rowTerms(I))
      Act += Sign * T.Coeff * P->lowerBound(T.Var);
    double B = Sign * P->rhs(I);
    double S = B - Act;
    SlackVal[I] = S;
    bool IsEq = P->sense(I) == RowSense::EQ;
    if (S < -O.FeasTol || (IsEq && S > O.FeasTol))
      NeedsArt[I] = true;
  }
  NumArt = static_cast<int>(
      std::count(NeedsArt.begin(), NeedsArt.end(), true));
  NumCols = NumStruct + NumRows + NumArt;
  RhsCol = NumCols;

  Tab.assign(static_cast<size_t>(NumRows) * (NumCols + 1), 0.0);
  Lo.assign(NumCols, 0.0);
  Hi.assign(NumCols, 0.0);
  State.assign(NumCols, VarState::AtLower);
  BasisOfRow.assign(NumRows, -1);
  RowOfBasic.assign(NumCols, -1);
  Beta.assign(NumRows, 0.0);
  D.assign(NumCols, 0.0);

  for (int J = 0; J < NumStruct; ++J) {
    Lo[J] = P->lowerBound(J);
    Hi[J] = P->upperBound(J);
  }

  int NextArt = NumStruct + NumRows;
  for (int I = 0; I < NumRows; ++I) {
    double Sign = P->sense(I) == RowSense::GE ? -1.0 : 1.0;
    for (const LpTerm &T : P->rowTerms(I))
      at(I, T.Var) += Sign * T.Coeff;
    int SlackCol = NumStruct + I;
    at(I, SlackCol) = 1.0;
    Lo[SlackCol] = 0.0;
    Hi[SlackCol] = P->sense(I) == RowSense::EQ ? 0.0 : lpInf();
    at(I, RhsCol) = Sign * P->rhs(I);

    if (NeedsArt[I]) {
      int ArtCol = NextArt++;
      double G = SlackVal[I] < 0.0 ? -1.0 : 1.0;
      // The artificial must enter the basis as a unit column: scale the
      // whole row by G so the artificial's coefficient is +1 and its
      // basic value |SlackVal| is nonnegative.
      if (G < 0.0)
        for (int C = 0; C <= NumCols; ++C)
          at(I, C) = -at(I, C);
      at(I, ArtCol) = 1.0;
      Lo[ArtCol] = 0.0;
      Hi[ArtCol] = lpInf();
      BasisOfRow[I] = ArtCol;
      RowOfBasic[ArtCol] = I;
      State[ArtCol] = VarState::Basic;
      State[SlackCol] = VarState::AtLower;
      Beta[I] = std::fabs(SlackVal[I]);
    } else {
      BasisOfRow[I] = SlackCol;
      RowOfBasic[SlackCol] = I;
      State[SlackCol] = VarState::Basic;
      Beta[I] = SlackVal[I];
    }
  }
}

void Core::buildRaw() {
  // Artificial-free layout with the all-slack basis; used as the canvas
  // for refactorizing around an imported basis.
  NumStruct = P->numVariables();
  NumRows = P->numRows();
  NumArt = 0;
  NumCols = NumStruct + NumRows;
  RhsCol = NumCols;

  Tab.assign(static_cast<size_t>(NumRows) * (NumCols + 1), 0.0);
  Lo.assign(NumCols, 0.0);
  Hi.assign(NumCols, 0.0);
  State.assign(NumCols, VarState::AtLower);
  BasisOfRow.assign(NumRows, -1);
  RowOfBasic.assign(NumCols, -1);
  Beta.assign(NumRows, 0.0);
  D.assign(NumCols, 0.0);

  for (int J = 0; J < NumStruct; ++J) {
    Lo[J] = P->lowerBound(J);
    Hi[J] = P->upperBound(J);
  }
  for (int I = 0; I < NumRows; ++I) {
    double Sign = P->sense(I) == RowSense::GE ? -1.0 : 1.0;
    for (const LpTerm &T : P->rowTerms(I))
      at(I, T.Var) += Sign * T.Coeff;
    int SlackCol = NumStruct + I;
    at(I, SlackCol) = 1.0;
    Lo[SlackCol] = 0.0;
    Hi[SlackCol] = P->sense(I) == RowSense::EQ ? 0.0 : lpInf();
    at(I, RhsCol) = Sign * P->rhs(I);
  }
}

void Core::computeReducedCosts(const std::vector<double> &Costs) {
  D = Costs;
  D.resize(NumCols, 0.0);
  for (int I = 0; I < NumRows; ++I) {
    double Cb = Costs[BasisOfRow[I]];
    if (Cb == 0.0)
      continue;
    for (int C = 0; C < NumCols; ++C)
      D[C] -= Cb * atC(I, C);
  }
  for (int I = 0; I < NumRows; ++I)
    D[BasisOfRow[I]] = 0.0;
}

void Core::computePhase2Costs() {
  std::vector<double> Costs(NumCols, 0.0);
  for (int C = 0; C < NumStruct; ++C)
    Costs[C] = P->cost(C);
  computeReducedCosts(Costs);
}

void Core::pivot(int Row, int Col) {
  double Piv = at(Row, Col);
  assert(std::fabs(Piv) > 1e-12 && "pivot too small");
  double Inv = 1.0 / Piv;
  for (int C = 0; C <= NumCols; ++C)
    at(Row, C) *= Inv;
  at(Row, Col) = 1.0;
  for (int I = 0; I < NumRows; ++I) {
    if (I == Row)
      continue;
    double F = at(I, Col);
    if (std::fabs(F) <= 1e-13) {
      at(I, Col) = 0.0;
      continue;
    }
    for (int C = 0; C <= NumCols; ++C)
      at(I, C) -= F * at(Row, C);
    at(I, Col) = 0.0;
  }
  double Fd = D[Col];
  if (Fd != 0.0) {
    for (int C = 0; C < NumCols; ++C)
      D[C] -= Fd * at(Row, C);
    D[Col] = 0.0;
  }
  ++TotalPivots;
}

void Core::refreshBeta() {
  // Beta = transformed RHS minus contributions of nonbasic columns that
  // rest at a nonzero bound.
  std::vector<std::pair<int, double>> NonzeroNonbasic;
  for (int C = 0; C < NumCols; ++C) {
    if (State[C] == VarState::Basic)
      continue;
    double V = boundValue(C);
    if (V != 0.0)
      NonzeroNonbasic.push_back({C, V});
  }
  for (int I = 0; I < NumRows; ++I) {
    double V = atC(I, RhsCol);
    for (const auto &[C, Val] : NonzeroNonbasic)
      V -= atC(I, C) * Val;
    Beta[I] = V;
  }
}

LpStatus Core::runPhase() {
  for (;;) {
    if (Iterations - IterBase >= O.MaxIterations)
      return LpStatus::IterationLimit;
    bool UseBland = DegenRun > O.BlandThreshold;

    // Pricing: pick the entering column.
    int Enter = -1;
    double BestScore = 0.0;
    for (int C = 0; C < NumCols; ++C) {
      if (State[C] == VarState::Basic || Lo[C] == Hi[C])
        continue;
      double Dc = D[C];
      bool Eligible = (State[C] == VarState::AtLower && Dc < -O.CostTol) ||
                      (State[C] == VarState::AtUpper && Dc > O.CostTol);
      if (!Eligible)
        continue;
      if (UseBland) {
        Enter = C;
        break;
      }
      double Score = std::fabs(Dc);
      if (Score > BestScore) {
        BestScore = Score;
        Enter = C;
      }
    }
    if (Enter < 0)
      return LpStatus::Optimal;

    double Dir = State[Enter] == VarState::AtLower ? 1.0 : -1.0;

    // Ratio test: smallest step that drives a basic variable to a bound,
    // or the entering variable's own bound span (a bound flip).
    double BestT = Hi[Enter] - Lo[Enter]; // may be +inf
    int LeaveRow = -1;
    bool LeaveAtUpper = false;
    double BestAlpha = 0.0;
    for (int I = 0; I < NumRows; ++I) {
      double Alpha = atC(I, Enter);
      double W = Dir * Alpha;
      int BCol = BasisOfRow[I];
      double Lim;
      bool ToUpper;
      if (W > O.PivotTol) {
        Lim = (Beta[I] - Lo[BCol]) / W;
        ToUpper = false;
      } else if (W < -O.PivotTol && std::isfinite(Hi[BCol])) {
        Lim = (Hi[BCol] - Beta[I]) / (-W);
        ToUpper = true;
      } else {
        continue;
      }
      if (Lim < 0.0)
        Lim = 0.0;
      bool Better = Lim < BestT - 1e-12;
      bool Tie = !Better && Lim < BestT + 1e-12 && LeaveRow >= 0;
      if (Tie) {
        if (UseBland)
          Better = BCol < BasisOfRow[LeaveRow];
        else
          Better = std::fabs(Alpha) > std::fabs(BestAlpha);
      } else if (!Better && LeaveRow < 0 && Lim <= BestT) {
        Better = true;
      }
      if (Better) {
        BestT = Lim;
        LeaveRow = I;
        LeaveAtUpper = ToUpper;
        BestAlpha = Alpha;
      }
    }

    if (!std::isfinite(BestT))
      return LpStatus::Unbounded;
    if (BestT < 0.0)
      BestT = 0.0;

    ++Iterations;
    if (BestT < 1e-11)
      ++DegenRun;
    else
      DegenRun = 0;

    if (LeaveRow < 0) {
      // Bound flip: the entering variable runs to its opposite bound.
      for (int I = 0; I < NumRows; ++I)
        Beta[I] -= Dir * BestT * atC(I, Enter);
      State[Enter] = State[Enter] == VarState::AtLower ? VarState::AtUpper
                                                       : VarState::AtLower;
    } else {
      double EnterVal = boundValue(Enter) + Dir * BestT;
      for (int I = 0; I < NumRows; ++I) {
        if (I != LeaveRow)
          Beta[I] -= Dir * BestT * atC(I, Enter);
      }
      int LeaveCol = BasisOfRow[LeaveRow];
      State[LeaveCol] =
          LeaveAtUpper ? VarState::AtUpper : VarState::AtLower;
      RowOfBasic[LeaveCol] = -1;
      BasisOfRow[LeaveRow] = Enter;
      RowOfBasic[Enter] = LeaveRow;
      State[Enter] = VarState::Basic;
      Beta[LeaveRow] = EnterVal;
      pivot(LeaveRow, Enter);
    }

    if ((Iterations - IterBase) % O.RefreshInterval == 0)
      refreshBeta();
  }
}

LpStatus Core::dualPhase(long Cap) {
  // Bounded-variable dual simplex: drive out basic variables that violate
  // their bounds while the (unchanged) costs keep the basis dual feasible.
  long Start = Iterations;
  for (;;) {
    if (Iterations - Start >= Cap)
      return LpStatus::IterationLimit;

    // Leaving: the most-violated basic variable.
    int Row = -1;
    bool ViolLower = false;
    double BestViol = O.FeasTol;
    for (int I = 0; I < NumRows; ++I) {
      int B = BasisOfRow[I];
      double VLo = Lo[B] - Beta[I];
      if (VLo > BestViol) {
        BestViol = VLo;
        Row = I;
        ViolLower = true;
      }
      if (std::isfinite(Hi[B])) {
        double VHi = Beta[I] - Hi[B];
        if (VHi > BestViol) {
          BestViol = VHi;
          Row = I;
          ViolLower = false;
        }
      }
    }
    if (Row < 0)
      return LpStatus::Optimal; // primal feasible

    int BCol = BasisOfRow[Row];
    double Delta = ViolLower ? Beta[Row] - Lo[BCol] : Beta[Row] - Hi[BCol];

    // Entering: minimum dual ratio |D|/|alpha| over sign-eligible
    // nonbasic columns. If none is eligible, the row itself certifies
    // primal infeasibility: every admissible nonbasic move pushes the
    // basic variable further outside its bound, independent of D.
    int Enter = -1;
    double BestRatio = std::numeric_limits<double>::infinity();
    double BestAlpha = 0.0;
    for (int C = 0; C < NumCols; ++C) {
      if (State[C] == VarState::Basic || Lo[C] == Hi[C])
        continue;
      double Alpha = atC(Row, C);
      bool AtLowerC = State[C] == VarState::AtLower;
      bool Eligible;
      if (ViolLower)
        Eligible = (AtLowerC && Alpha < -O.PivotTol) ||
                   (!AtLowerC && Alpha > O.PivotTol);
      else
        Eligible = (AtLowerC && Alpha > O.PivotTol) ||
                   (!AtLowerC && Alpha < -O.PivotTol);
      if (!Eligible)
        continue;
      double Ratio = std::fabs(D[C]) / std::fabs(Alpha);
      bool Better =
          Ratio < BestRatio - 1e-12 ||
          (Ratio < BestRatio + 1e-12 &&
           std::fabs(Alpha) > std::fabs(BestAlpha));
      if (Better) {
        BestRatio = Ratio;
        Enter = C;
        BestAlpha = Alpha;
      }
    }
    if (Enter < 0)
      return LpStatus::Infeasible;

    ++Iterations;
    double T = Delta / BestAlpha; // entering step away from its bound
    double EnterVal = boundValue(Enter) + T;
    for (int I = 0; I < NumRows; ++I)
      if (I != Row)
        Beta[I] -= T * atC(I, Enter);
    State[BCol] = ViolLower ? VarState::AtLower : VarState::AtUpper;
    RowOfBasic[BCol] = -1;
    BasisOfRow[Row] = Enter;
    RowOfBasic[Enter] = Row;
    State[Enter] = VarState::Basic;
    Beta[Row] = EnterVal;
    pivot(Row, Enter);

    if ((Iterations - Start) % O.RefreshInterval == 0)
      refreshBeta();
  }
}

double Core::phase1Infeasibility() const {
  double Sum = 0.0;
  for (int I = 0; I < NumRows; ++I)
    if (isArtificial(BasisOfRow[I]))
      Sum += std::max(0.0, Beta[I]);
  return Sum;
}

bool Core::driveOutArtificials() {
  for (int I = 0; I < NumRows; ++I) {
    int BCol = BasisOfRow[I];
    if (!isArtificial(BCol))
      continue;
    // The artificial sits at value ~0. Exchange it for any real column
    // with a usable pivot entry; if none, the row is redundant and the
    // artificial stays basic, pinned to zero.
    int Pick = -1;
    for (int C = 0; C < NumStruct + NumRows; ++C) {
      if (State[C] == VarState::Basic)
        continue;
      if (std::fabs(atC(I, C)) > 1e-7) {
        Pick = C;
        break;
      }
    }
    if (Pick < 0)
      continue;
    double EnterVal = boundValue(Pick);
    State[BCol] = VarState::AtLower;
    RowOfBasic[BCol] = -1;
    BasisOfRow[I] = Pick;
    RowOfBasic[Pick] = I;
    State[Pick] = VarState::Basic;
    Beta[I] = EnterVal;
    pivot(I, Pick);
  }
  // Pin every artificial (basic or not) to zero so phase 2 cannot use it.
  for (int C = NumStruct + NumRows; C < NumCols; ++C) {
    Lo[C] = 0.0;
    Hi[C] = 0.0;
  }
  return true;
}

LpSolution Core::finish(LpStatus Status) {
  LpSolution Sol;
  Sol.Status = Status;
  Sol.Iterations = Iterations - IterBase;
  Sol.X.assign(NumStruct, 0.0);
  for (int J = 0; J < NumStruct; ++J) {
    if (State[J] == VarState::Basic)
      Sol.X[J] = Beta[RowOfBasic[J]];
    else
      Sol.X[J] = boundValue(J);
    // Clamp tiny bound violations from numerical drift.
    Sol.X[J] = std::min(std::max(Sol.X[J], Lo[J]), Hi[J]);
  }
  Sol.Objective = P->objectiveAt(Sol.X);
  return Sol;
}

LpSolution Core::solveCold() {
  IterBase = Iterations;
  buildCold();

  if (NumArt > 0) {
    std::vector<double> Phase1Cost(NumCols, 0.0);
    for (int C = NumStruct + NumRows; C < NumCols; ++C)
      Phase1Cost[C] = 1.0;
    DegenRun = 0;
    computeReducedCosts(Phase1Cost);
    LpStatus S = runPhase();
    if (S == LpStatus::IterationLimit)
      return finish(S);
    assert(S != LpStatus::Unbounded && "phase 1 cannot be unbounded");
    refreshBeta();
    if (phase1Infeasibility() > O.FeasTol * 10.0)
      return finish(LpStatus::Infeasible);
    driveOutArtificials();
  }

  DegenRun = 0;
  computePhase2Costs();
  LpStatus S = runPhase();
  refreshBeta();
  return finish(S);
}

LpSolution Core::solveWarm(long DualCap) {
  IterBase = Iterations;
  // Costs never change between warm solves, so the held basis is dual
  // feasible; recompute D and Beta exactly to shed incremental drift.
  computePhase2Costs();
  refreshBeta();
  DegenRun = 0;
  LpStatus S = dualPhase(DualCap);
  if (S == LpStatus::Optimal)
    S = runPhase();
  refreshBeta();
  return finish(S);
}

void Core::setBounds(int Var, double NewLo, double NewHi) {
  assert(Var >= 0 && Var < NumStruct && "not a structural variable");
  Lo[Var] = NewLo;
  Hi[Var] = NewHi;
  // A nonbasic variable must rest at an existing bound; Beta is
  // recomputed from the resting values at the start of the next warm
  // solve (refreshBeta), so only the state needs fixing here.
  if (State[Var] == VarState::AtUpper && !std::isfinite(NewHi))
    State[Var] = VarState::AtLower;
}

void Core::exportBasis(SimplexBasis &B) const {
  int NumReal = NumStruct + NumRows;
  B.ColState.assign(NumReal, 0);
  for (int C = 0; C < NumReal; ++C)
    B.ColState[C] = static_cast<unsigned char>(State[C]);
  B.BasisOfRow.assign(NumRows, -1);
  for (int I = 0; I < NumRows; ++I)
    if (!isArtificial(BasisOfRow[I]))
      B.BasisOfRow[I] = BasisOfRow[I];
}

bool Core::refactorizeFrom(const SimplexBasis &B) {
  if (static_cast<int>(B.BasisOfRow.size()) != P->numRows() ||
      static_cast<int>(B.ColState.size()) !=
          P->numVariables() + P->numRows())
    return false;
  buildRaw();

  // Nonbasic resting states from the snapshot (Basic entries are set
  // below as rows are pivoted in).
  for (int C = 0; C < NumCols; ++C) {
    auto S = static_cast<VarState>(B.ColState[C]);
    State[C] = S == VarState::AtUpper && std::isfinite(Hi[C])
                   ? VarState::AtUpper
                   : VarState::AtLower;
  }

  // Target column per row; rows whose export was an artificial (-1) fall
  // back to their own slack, duplicates resolved greedily afterwards.
  std::vector<int> Tgt(NumRows, -1);
  std::vector<char> ColUsed(NumCols, 0);
  for (int I = 0; I < NumRows; ++I) {
    int C = B.BasisOfRow[I];
    if (C >= 0 && C < NumCols && !ColUsed[C]) {
      Tgt[I] = C;
      ColUsed[C] = 1;
    }
  }
  for (int I = 0; I < NumRows; ++I) {
    if (Tgt[I] >= 0)
      continue;
    int SlackCol = NumStruct + I;
    if (!ColUsed[SlackCol]) {
      Tgt[I] = SlackCol;
      ColUsed[SlackCol] = 1;
    }
  }

  auto installBasic = [&](int Row, int Col) {
    State[Col] = VarState::Basic;
    BasisOfRow[Row] = Col;
    RowOfBasic[Col] = Row;
    pivot(Row, Col);
  };

  // Gaussian elimination into the target basis: pivot whichever
  // remaining (row, target) pair currently has a usable entry; a row
  // whose target entry was eliminated picks any unused column instead.
  std::vector<char> Done(NumRows, 0);
  int Remaining = NumRows;
  while (Remaining > 0) {
    bool Progress = false;
    for (int I = 0; I < NumRows; ++I) {
      if (Done[I] || Tgt[I] < 0)
        continue;
      if (std::fabs(at(I, Tgt[I])) <= 1e-7)
        continue;
      installBasic(I, Tgt[I]);
      Done[I] = 1;
      --Remaining;
      Progress = true;
    }
    if (Progress)
      continue;
    int PickRow = -1, PickCol = -1;
    double BestA = 1e-7;
    for (int I = 0; I < NumRows && PickRow < 0; ++I) {
      if (Done[I])
        continue;
      for (int C = 0; C < NumCols; ++C) {
        if (ColUsed[C])
          continue;
        double A = std::fabs(at(I, C));
        if (A > BestA) {
          BestA = A;
          PickRow = I;
          PickCol = C;
        }
      }
    }
    if (PickRow < 0)
      return false;
    if (Tgt[PickRow] >= 0)
      ColUsed[Tgt[PickRow]] = 0; // release the unusable target
    Tgt[PickRow] = PickCol;
    ColUsed[PickCol] = 1;
    installBasic(PickRow, PickCol);
    Done[PickRow] = 1;
    --Remaining;
  }

  refreshBeta();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// SimplexSolver: one-shot cold solves
//===----------------------------------------------------------------------===//

struct SimplexSolver::Impl : Core {
  using Core::Core;
};

SimplexSolver::SimplexSolver(const LpProblem &Problem, SimplexOptions Opts)
    : Problem(Problem), Opts(Opts) {}

LpSolution SimplexSolver::solve() {
  Impl I(&Problem, Opts);
  return I.solveCold();
}

LpSolution SimplexSolver::solve(SimplexBasis &ExportBasis) {
  Impl I(&Problem, Opts);
  LpSolution S = I.solveCold();
  I.exportBasis(ExportBasis);
  return S;
}

LpSolution cdvs::solveLp(const LpProblem &Problem, SimplexOptions Opts) {
  return SimplexSolver(Problem, Opts).solve();
}

//===----------------------------------------------------------------------===//
// SimplexEngine: persistent warm-started solves
//===----------------------------------------------------------------------===//

struct SimplexEngine::Impl {
  LpProblem P; // owned; address-stable behind the unique_ptr
  Core C;
  bool HasBasis = false;
  long PivotsAtRebuild = 0;
  long Warm = 0, Cold = 0;

  /// Full refactorization cadence: a cold solve performs on the order of
  /// rows-many pivots with no refactorization at all, so re-pivoting the
  /// basis from a raw tableau every few thousand pivots keeps the warm
  /// path's accumulated error no worse than the cold baseline's.
  static constexpr long RebuildPivots = 2048;

  Impl(LpProblem Problem, SimplexOptions Opts)
      : P(std::move(Problem)), C(&P, Opts) {}

  LpSolution solve();
};

LpSolution SimplexEngine::Impl::solve() {
  if (HasBasis && C.TotalPivots - PivotsAtRebuild > RebuildPivots) {
    SimplexBasis B;
    C.exportBasis(B);
    HasBasis = C.refactorizeFrom(B);
    PivotsAtRebuild = C.TotalPivots;
  }

  if (HasBasis) {
    long DualCap = 64 + 4L * (C.NumRows + C.NumStruct);
    LpSolution S = C.solveWarm(DualCap);
    bool Trust = false;
    switch (S.Status) {
    case LpStatus::Optimal:
      // Cheap end-to-end check against the original rows; any violation
      // beyond what the cold path would tolerate voids the warm result.
      Trust = P.isFeasible(S.X, 1e-5);
      break;
    case LpStatus::Infeasible:
    case LpStatus::Unbounded:
      Trust = true;
      break;
    case LpStatus::IterationLimit:
      Trust = false;
      break;
    }
    if (Trust) {
      ++Warm;
      return S;
    }
    HasBasis = false;
  }

  ++Cold;
  LpSolution S = C.solveCold();
  PivotsAtRebuild = C.TotalPivots;
  HasBasis = S.Status == LpStatus::Optimal;
  return S;
}

SimplexEngine::SimplexEngine(LpProblem Problem, SimplexOptions Opts)
    : I(std::make_unique<Impl>(std::move(Problem), Opts)) {}

SimplexEngine::~SimplexEngine() = default;
SimplexEngine::SimplexEngine(SimplexEngine &&) noexcept = default;
SimplexEngine &SimplexEngine::operator=(SimplexEngine &&) noexcept = default;

const LpProblem &SimplexEngine::problem() const { return I->P; }

void SimplexEngine::setBounds(int Var, double Lo, double Hi) {
  I->P.setBounds(Var, Lo, Hi);
  // Before any solve the tableau is empty; bounds are picked up by the
  // first (cold) build instead.
  if (I->C.NumCols > 0)
    I->C.setBounds(Var, Lo, Hi);
}

LpSolution SimplexEngine::solve() { return I->solve(); }

void SimplexEngine::exportBasis(SimplexBasis &Out) const {
  if (I->HasBasis)
    I->C.exportBasis(Out);
  else {
    Out.ColState.clear();
    Out.BasisOfRow.clear();
  }
}

bool SimplexEngine::loadBasis(const SimplexBasis &Basis) {
  if (Basis.empty()) {
    I->HasBasis = false;
    return false;
  }
  I->HasBasis = I->C.refactorizeFrom(Basis);
  I->PivotsAtRebuild = I->C.TotalPivots;
  return I->HasBasis;
}

long SimplexEngine::warmSolves() const { return I->Warm; }
long SimplexEngine::coldSolves() const { return I->Cold; }
long SimplexEngine::totalPivots() const { return I->C.TotalPivots; }
