//===- lp/LpWriter.h - CPLEX LP-format export --------------------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an LpProblem in the classic CPLEX LP file format, so the
/// MILPs this repo builds can be inspected by eye or cross-checked with
/// any external solver — the paper's own flow went through AMPL into
/// CPLEX, and this is the equivalent escape hatch.
///
/// Variables may optionally be marked integer (they are emitted in a
/// `Generals`/`Binaries` section).
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_LP_LPWRITER_H
#define CDVS_LP_LPWRITER_H

#include "lp/LpProblem.h"

#include <string>
#include <vector>

namespace cdvs {

/// Renders \p P as LP-format text (minimization). \p IntegerVars lists
/// variable indices to declare integer; binaries (bounds [0,1]) go to
/// the `Binaries` section. Variables with empty names are called x<i>.
std::string writeLpFormat(const LpProblem &P,
                          const std::vector<int> &IntegerVars = {});

} // namespace cdvs

#endif // CDVS_LP_LPWRITER_H
