//===- lp/LpProblem.cpp - Linear program description ----------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "lp/LpProblem.h"

using namespace cdvs;

int LpProblem::addVariable(double Lo, double Hi, double Cost,
                           std::string Name) {
  assert(std::isfinite(Lo) && "lower bound must be finite");
  assert(Lo <= Hi && "empty variable domain");
  Cost_.push_back(Cost);
  Lo_.push_back(Lo);
  Hi_.push_back(Hi);
  Names_.push_back(std::move(Name));
  return numVariables() - 1;
}

int LpProblem::addRow(RowSense Sense, double Rhs, std::vector<LpTerm> Terms) {
#ifndef NDEBUG
  for (const LpTerm &T : Terms)
    assert(T.Var >= 0 && T.Var < numVariables() && "term on unknown var");
#endif
  Sense_.push_back(Sense);
  Rhs_.push_back(Rhs);
  Terms_.push_back(std::move(Terms));
  return numRows() - 1;
}

void LpProblem::setCost(int Var, double Cost) {
  assert(Var >= 0 && Var < numVariables() && "unknown variable");
  Cost_[Var] = Cost;
}

void LpProblem::setBounds(int Var, double Lo, double Hi) {
  assert(Var >= 0 && Var < numVariables() && "unknown variable");
  assert(std::isfinite(Lo) && Lo <= Hi && "bad bounds");
  Lo_[Var] = Lo;
  Hi_[Var] = Hi;
}

double LpProblem::objectiveAt(const std::vector<double> &X) const {
  assert(static_cast<int>(X.size()) == numVariables());
  double Sum = 0.0;
  for (int J = 0; J < numVariables(); ++J)
    Sum += Cost_[J] * X[J];
  return Sum;
}

double LpProblem::rowActivityAt(int Row, const std::vector<double> &X) const {
  double Sum = 0.0;
  for (const LpTerm &T : Terms_[Row])
    Sum += T.Coeff * X[T.Var];
  return Sum;
}

bool LpProblem::isFeasible(const std::vector<double> &X, double Tol) const {
  if (static_cast<int>(X.size()) != numVariables())
    return false;
  for (int J = 0; J < numVariables(); ++J)
    if (X[J] < Lo_[J] - Tol || X[J] > Hi_[J] + Tol)
      return false;
  for (int I = 0; I < numRows(); ++I) {
    double Act = rowActivityAt(I, X);
    switch (Sense_[I]) {
    case RowSense::LE:
      if (Act > Rhs_[I] + Tol)
        return false;
      break;
    case RowSense::GE:
      if (Act < Rhs_[I] - Tol)
        return false;
      break;
    case RowSense::EQ:
      if (std::fabs(Act - Rhs_[I]) > Tol)
        return false;
      break;
    }
  }
  return true;
}
