//===- lp/SimplexSolver.h - Bounded-variable primal simplex -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact dense two-phase primal simplex solver with native variable
/// bounds (no bound rows). This is the substrate under the MILP
/// branch-and-bound used by the paper's DVS scheduling formulation; the
/// original work used CPLEX, which is proprietary, so we implement the
/// solver from scratch.
///
/// Features:
///  * bounded variables (finite lower bound required, upper may be +inf)
///    handled natively with bound-flip ratio tests;
///  * phase 1 via artificial variables on infeasible rows;
///  * Dantzig pricing with a Bland's-rule fallback after a run of
///    degenerate steps (anti-cycling);
///  * periodic recomputation of basic values from the transformed
///    right-hand side to bound numerical drift.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_LP_SIMPLEXSOLVER_H
#define CDVS_LP_SIMPLEXSOLVER_H

#include "lp/LpProblem.h"

#include <memory>
#include <vector>

namespace cdvs {

/// Outcome of an LP solve.
enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// \returns a printable name for an LpStatus.
const char *lpStatusName(LpStatus Status);

/// Solution of an LP: status, objective, and structural variable values.
struct LpSolution {
  LpStatus Status = LpStatus::IterationLimit;
  double Objective = 0.0;
  std::vector<double> X;
  long Iterations = 0;
};

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  long MaxIterations = 500000;
  /// Entries smaller than this never serve as pivots.
  double PivotTol = 1e-9;
  /// Reduced costs within this of zero count as optimal.
  double CostTol = 1e-7;
  /// Row/bound violations within this count as feasible.
  double FeasTol = 1e-7;
  /// Consecutive degenerate steps before switching to Bland's rule.
  int BlandThreshold = 64;
  /// Recompute basic values from the transformed RHS this often.
  int RefreshInterval = 256;
};

/// Snapshot of a simplex basis over the structural and slack columns.
/// A basis is valid for any problem with the same rows and costs — the
/// branch-and-bound exports a parent node's basis and re-enters it in a
/// child whose only difference is one variable-bound change.
struct SimplexBasis {
  /// Per-column resting state (VarState as unsigned char), size
  /// numVariables() + numRows(). Basic columns are identified by
  /// BasisOfRow, not by this array.
  std::vector<unsigned char> ColState;
  /// Column basic in each row; -1 marks a row whose basic column cannot
  /// be exported (a phase-1 artificial pinned in a redundant row) — the
  /// importer substitutes the row's own slack.
  std::vector<int> BasisOfRow;

  bool empty() const { return BasisOfRow.empty(); }
};

/// Dense two-phase bounded-variable primal simplex.
class SimplexSolver {
public:
  explicit SimplexSolver(const LpProblem &Problem,
                         SimplexOptions Opts = SimplexOptions());

  /// Runs phase 1 (if needed) and phase 2. The solution's X holds only
  /// the structural variables of the original problem.
  LpSolution solve();

  /// Like solve(), but also exports the final basis for warm starts.
  LpSolution solve(SimplexBasis &ExportBasis);

private:
  struct Impl;
  const LpProblem &Problem;
  SimplexOptions Opts;
};

/// Convenience: build a solver and solve.
LpSolution solveLp(const LpProblem &Problem,
                   SimplexOptions Opts = SimplexOptions());

/// A persistent simplex engine for sequences of related solves.
///
/// The engine owns a copy of the problem and keeps the factorized
/// tableau alive between solves. After setBounds() the previous optimal
/// basis is usually dual feasible (costs are unchanged), so solve()
/// repairs primal feasibility with a bounded-variable dual simplex and
/// polishes with primal phase 2 — no tableau rebuild, no phase 1. This
/// is the branch-and-bound's per-node path: one bound change between
/// parent and child, a handful of dual pivots instead of a cold solve.
///
/// Robustness: any numerical doubt (failed refactorization, iteration
/// cap, a warm "optimal" that fails a feasibility check) falls back to
/// the proven cold two-phase path, so warm starting is strictly an
/// optimization, never a correctness risk.
class SimplexEngine {
public:
  explicit SimplexEngine(LpProblem Problem,
                         SimplexOptions Opts = SimplexOptions());
  ~SimplexEngine();
  SimplexEngine(SimplexEngine &&) noexcept;
  SimplexEngine &operator=(SimplexEngine &&) noexcept;

  /// The engine's problem copy; bounds reflect every setBounds() call.
  const LpProblem &problem() const;

  /// Changes one structural variable's bounds. Cheap: O(rows) when the
  /// variable is nonbasic, O(1) when basic (the violation, if any, is
  /// repaired by the next solve()).
  void setBounds(int Var, double Lo, double Hi);

  /// Solves the problem at the current bounds: warm from the held basis
  /// when one exists, cold otherwise.
  LpSolution solve();

  /// Exports the basis held after the last solve (empty if none).
  void exportBasis(SimplexBasis &Out) const;

  /// Re-enters \p Basis by refactorizing the tableau around it.
  /// \returns false (and keeps no basis) if the refactorization fails;
  /// the next solve() then runs cold.
  bool loadBasis(const SimplexBasis &Basis);

  /// Solve-path counters (diagnostics for benches/tests/metrics).
  long warmSolves() const;
  long coldSolves() const;
  /// Simplex pivots executed over the engine's lifetime, refactorization
  /// re-pivots included — the truest "simplex effort" odometer the
  /// observability layer exports per B&B worker.
  long totalPivots() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace cdvs

#endif // CDVS_LP_SIMPLEXSOLVER_H
