//===- lp/SimplexSolver.h - Bounded-variable primal simplex -----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact dense two-phase primal simplex solver with native variable
/// bounds (no bound rows). This is the substrate under the MILP
/// branch-and-bound used by the paper's DVS scheduling formulation; the
/// original work used CPLEX, which is proprietary, so we implement the
/// solver from scratch.
///
/// Features:
///  * bounded variables (finite lower bound required, upper may be +inf)
///    handled natively with bound-flip ratio tests;
///  * phase 1 via artificial variables on infeasible rows;
///  * Dantzig pricing with a Bland's-rule fallback after a run of
///    degenerate steps (anti-cycling);
///  * periodic recomputation of basic values from the transformed
///    right-hand side to bound numerical drift.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_LP_SIMPLEXSOLVER_H
#define CDVS_LP_SIMPLEXSOLVER_H

#include "lp/LpProblem.h"

#include <vector>

namespace cdvs {

/// Outcome of an LP solve.
enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// \returns a printable name for an LpStatus.
const char *lpStatusName(LpStatus Status);

/// Solution of an LP: status, objective, and structural variable values.
struct LpSolution {
  LpStatus Status = LpStatus::IterationLimit;
  double Objective = 0.0;
  std::vector<double> X;
  long Iterations = 0;
};

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  long MaxIterations = 500000;
  /// Entries smaller than this never serve as pivots.
  double PivotTol = 1e-9;
  /// Reduced costs within this of zero count as optimal.
  double CostTol = 1e-7;
  /// Row/bound violations within this count as feasible.
  double FeasTol = 1e-7;
  /// Consecutive degenerate steps before switching to Bland's rule.
  int BlandThreshold = 64;
  /// Recompute basic values from the transformed RHS this often.
  int RefreshInterval = 256;
};

/// Dense two-phase bounded-variable primal simplex.
class SimplexSolver {
public:
  explicit SimplexSolver(const LpProblem &Problem,
                         SimplexOptions Opts = SimplexOptions());

  /// Runs phase 1 (if needed) and phase 2. The solution's X holds only
  /// the structural variables of the original problem.
  LpSolution solve();

private:
  struct Impl;
  const LpProblem &Problem;
  SimplexOptions Opts;
};

/// Convenience: build a solver and solve.
LpSolution solveLp(const LpProblem &Problem,
                   SimplexOptions Opts = SimplexOptions());

} // namespace cdvs

#endif // CDVS_LP_SIMPLEXSOLVER_H
