//===- lp/LpWriter.cpp - CPLEX LP-format export ----------------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "lp/LpWriter.h"

#include <cmath>
#include <cstdio>
#include <set>

using namespace cdvs;

namespace {

std::string varName(const LpProblem &P, int Var) {
  if (!P.name(Var).empty())
    return P.name(Var);
  return "x" + std::to_string(Var);
}

void appendNumber(std::string &Out, double X) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.12g", X);
  Out += Buf;
}

void appendTerms(std::string &Out, const LpProblem &P,
                 const std::vector<LpTerm> &Terms) {
  bool First = true;
  for (const LpTerm &T : Terms) {
    if (T.Coeff == 0.0)
      continue;
    if (T.Coeff >= 0.0)
      Out += First ? "" : " + ";
    else
      Out += First ? "- " : " - ";
    appendNumber(Out, std::fabs(T.Coeff));
    Out += " " + varName(P, T.Var);
    First = false;
  }
  if (First)
    Out += "0 " + varName(P, 0);
}

} // namespace

std::string cdvs::writeLpFormat(const LpProblem &P,
                                const std::vector<int> &IntegerVars) {
  std::string Out = "Minimize\n obj: ";
  std::vector<LpTerm> Obj;
  for (int J = 0; J < P.numVariables(); ++J)
    if (P.cost(J) != 0.0)
      Obj.push_back({J, P.cost(J)});
  appendTerms(Out, P, Obj);
  Out += "\nSubject To\n";

  for (int I = 0; I < P.numRows(); ++I) {
    Out += " c" + std::to_string(I) + ": ";
    appendTerms(Out, P, P.rowTerms(I));
    switch (P.sense(I)) {
    case RowSense::LE:
      Out += " <= ";
      break;
    case RowSense::GE:
      Out += " >= ";
      break;
    case RowSense::EQ:
      Out += " = ";
      break;
    }
    appendNumber(Out, P.rhs(I));
    Out += "\n";
  }

  Out += "Bounds\n";
  std::set<int> Binaries, Generals;
  for (int V : IntegerVars) {
    if (P.lowerBound(V) == 0.0 && P.upperBound(V) == 1.0)
      Binaries.insert(V);
    else
      Generals.insert(V);
  }
  for (int J = 0; J < P.numVariables(); ++J) {
    if (Binaries.count(J))
      continue; // implied 0/1
    Out += " ";
    appendNumber(Out, P.lowerBound(J));
    Out += " <= " + varName(P, J);
    if (std::isfinite(P.upperBound(J))) {
      Out += " <= ";
      appendNumber(Out, P.upperBound(J));
    }
    Out += "\n";
  }

  if (!Generals.empty()) {
    Out += "Generals\n";
    for (int V : Generals)
      Out += " " + varName(P, V) + "\n";
  }
  if (!Binaries.empty()) {
    Out += "Binaries\n";
    for (int V : Binaries)
      Out += " " + varName(P, V) + "\n";
  }
  Out += "End\n";
  return Out;
}
