//===- service/ResultCache.h - Sharded LRU schedule cache -------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed result store at the heart of the scheduling
/// service: solved schedules keyed by instance fingerprint
/// (milp/Fingerprint.h) in a sharded LRU map, with single-flight
/// deduplication — when N workers ask for the same key concurrently, one
/// becomes the leader and solves while the other N-1 block on the
/// leader's flight and share its result, so N identical requests cost
/// one solve.
///
/// Sharding keeps the lock a solve-duration-free point: a shard's mutex
/// is only ever held for map/list operations; leaders compute with no
/// lock held. Values are immutable shared_ptrs, so readers never copy
/// the schedule text under the lock either.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SERVICE_RESULTCACHE_H
#define CDVS_SERVICE_RESULTCACHE_H

#include "milp/MilpSolver.h"
#include "obs/Metrics.h"

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cdvs {

/// An immutable cached solve outcome. Infeasible outcomes are cached
/// too (Feasible = false): infeasibility is as deterministic a property
/// of the instance as the optimal schedule is.
struct CachedSchedule {
  bool Feasible = true;
  std::string Reason; ///< infeasibility explanation when !Feasible
  std::string ScheduleText;
  double PredictedEnergyJoules = 0.0;
  double LowerBoundJoules = 0.0;
  MilpStatus Milp = MilpStatus::Limit;
  double SolveSeconds = 0.0; ///< MILP time of the original solve
  double SerializeSeconds = 0.0; ///< schedule emission time, ditto
  /// Post-solve verification outcome of the original solve: number of
  /// error-severity diagnostics, or -1 when the verify stage did not
  /// run (ServiceOptions::Verify == Off, or an infeasible instance).
  int VerifyErrors = -1;
  std::string VerifyDetail; ///< first error line when VerifyErrors > 0
  double VerifySeconds = 0.0; ///< verify-pass time, ditto

  /// Task-graph extension. Replans == -1 (the default) marks a
  /// single-program entry; every serialization omits the fields below in
  /// that case so pre-graph peer data stays byte-identical. For graph
  /// entries ScheduleText holds `cdvs-taskplan v1` text instead of a
  /// schedule.
  int Replans = -1;
  int ReplansAccepted = 0;
  double StaticEnergyJoules = 0.0;
  double ActualEnergyJoules = 0.0;
  double MakespanSeconds = 0.0;
};

/// Counters for the cache and its single-flight layer.
struct CacheStats {
  long Hits = 0;
  long Misses = 0; ///< leader computes (== solves attempted)
  long SharedFlights = 0; ///< followers that waited on a leader
  long Evictions = 0;
  size_t Entries = 0;
};

/// Sharded LRU + single-flight store; see the file comment.
class ResultCache {
public:
  /// \p Capacity total entries, split evenly over \p NumShards shards
  /// (each shard keeps at least one entry).
  explicit ResultCache(size_t Capacity, size_t NumShards = 8);

  using ComputeFn =
      std::function<std::shared_ptr<const CachedSchedule>()>;

  /// What getOrCompute observed for a key.
  struct Lookup {
    std::shared_ptr<const CachedSchedule> Value;
    bool Hit = false;    ///< served from the store
    bool Shared = false; ///< served by waiting on another's solve
  };

  /// \returns the cached value for \p Key, computing it with \p Compute
  /// on a miss. Concurrent calls for the same key collapse to one
  /// Compute. A Compute returning nullptr (transient failure) is handed
  /// to its waiters but not stored, so a later request retries.
  Lookup getOrCompute(const std::string &Key, const ComputeFn &Compute);

  /// Non-computing probe (does not touch hit/miss counters or recency).
  std::shared_ptr<const CachedSchedule>
  peek(const std::string &Key) const;

  CacheStats stats() const;
  size_t capacity() const { return PerShardCap * Shards.size(); }

private:
  struct Flight {
    std::mutex Mu;
    std::condition_variable Cv;
    bool Done = false;
    std::shared_ptr<const CachedSchedule> Value;
  };

  struct Shard {
    mutable std::mutex Mu;
    /// Most-recently-used first; entries hold iterators into this list.
    std::list<std::string> Lru;
    struct Entry {
      std::shared_ptr<const CachedSchedule> Value;
      std::list<std::string>::iterator LruIt;
    };
    std::unordered_map<std::string, Entry> Map;
    std::unordered_map<std::string, std::shared_ptr<Flight>> InFlight;
    long Hits = 0, Misses = 0, SharedFlights = 0, Evictions = 0;
    /// Shard-labeled mirrors in the process registry, so an exported
    /// snapshot shows whether load skews onto one shard. Registered at
    /// cache construction; increments ride the shard lock.
    obs::Counter *MHits = nullptr, *MMisses = nullptr,
                 *MShared = nullptr, *MEvictions = nullptr;
  };

  Shard &shardOf(const std::string &Key);
  const Shard &shardOf(const std::string &Key) const;

  size_t PerShardCap;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace cdvs

#endif // CDVS_SERVICE_RESULTCACHE_H
