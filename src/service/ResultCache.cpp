//===- service/ResultCache.cpp - Sharded LRU schedule cache ----------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "obs/Trace.h"

#include <cassert>

using namespace cdvs;

ResultCache::ResultCache(size_t Capacity, size_t NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  PerShardCap = Capacity / NumShards;
  if (PerShardCap == 0)
    PerShardCap = 1;
  Shards.reserve(NumShards);
  for (size_t I = 0; I < NumShards; ++I) {
    Shards.push_back(std::make_unique<Shard>());
    Shard &S = *Shards.back();
    obs::Labels L{{"shard", std::to_string(I)}};
    S.MHits = &obs::metrics().counter(
        "cdvs_cache_hits_total", "Result-cache lookups served from the store", L);
    S.MMisses = &obs::metrics().counter(
        "cdvs_cache_misses_total",
        "Result-cache lookups that led a fresh solve", L);
    S.MShared = &obs::metrics().counter(
        "cdvs_cache_shared_flights_total",
        "Lookups that waited on another request's in-flight solve", L);
    S.MEvictions = &obs::metrics().counter(
        "cdvs_cache_evictions_total", "LRU entries displaced", L);
  }
}

ResultCache::Shard &ResultCache::shardOf(const std::string &Key) {
  return *Shards[std::hash<std::string>{}(Key) % Shards.size()];
}

const ResultCache::Shard &
ResultCache::shardOf(const std::string &Key) const {
  return *Shards[std::hash<std::string>{}(Key) % Shards.size()];
}

ResultCache::Lookup
ResultCache::getOrCompute(const std::string &Key,
                          const ComputeFn &Compute) {
  Shard &S = shardOf(Key);
  std::shared_ptr<Flight> F;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      // Hit: refresh recency.
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second.LruIt);
      ++S.Hits;
      S.MHits->inc();
      return {It->second.Value, /*Hit=*/true, /*Shared=*/false};
    }
    auto FIt = S.InFlight.find(Key);
    if (FIt != S.InFlight.end()) {
      F = FIt->second;
      ++S.SharedFlights;
      S.MShared->inc();
    } else {
      F = std::make_shared<Flight>();
      S.InFlight.emplace(Key, F);
      Leader = true;
      ++S.Misses;
      S.MMisses->inc();
    }
  }

  if (!Leader) {
    // The wait is where single-flight followers spend their stage time;
    // make it a first-class span so a trace shows collapse, not hangs.
    obs::TraceSpan Wait("cache_wait", "cache");
    std::unique_lock<std::mutex> FLock(F->Mu);
    F->Cv.wait(FLock, [&] { return F->Done; });
    return {F->Value, /*Hit=*/false, /*Shared=*/true};
  }

  // Leader: solve with no shard lock held.
  std::shared_ptr<const CachedSchedule> Value = Compute();

  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (Value) {
      S.Lru.push_front(Key);
      S.Map[Key] = {Value, S.Lru.begin()};
      while (S.Map.size() > PerShardCap) {
        S.Map.erase(S.Lru.back());
        S.Lru.pop_back();
        ++S.Evictions;
        S.MEvictions->inc();
      }
    }
    S.InFlight.erase(Key);
  }
  {
    std::lock_guard<std::mutex> FLock(F->Mu);
    F->Value = Value;
    F->Done = true;
  }
  F->Cv.notify_all();
  return {Value, /*Hit=*/false, /*Shared=*/false};
}

std::shared_ptr<const CachedSchedule>
ResultCache::peek(const std::string &Key) const {
  const Shard &S = shardOf(Key);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Key);
  return It == S.Map.end() ? nullptr : It->second.Value;
}

CacheStats ResultCache::stats() const {
  CacheStats Total;
  for (const auto &SP : Shards) {
    std::lock_guard<std::mutex> Lock(SP->Mu);
    Total.Hits += SP->Hits;
    Total.Misses += SP->Misses;
    Total.SharedFlights += SP->SharedFlights;
    Total.Evictions += SP->Evictions;
    Total.Entries += SP->Map.size();
  }
  return Total;
}
