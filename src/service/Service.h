//===- service/Service.h - Batch DVS-scheduling service ---------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process scheduling service that turns the reproduction into a
/// servable system: callers submit DVS jobs (service/Job.h) and get
/// futures of serialized schedules. Each accepted job runs a staged
/// pipeline on a persistent support/TaskPool:
///
///   1. profile   — resolve the workload, collect per-mode profiles
///                  (memoized: identical (workload, input, mode table)
///                  tuples profile once per service);
///   2. bound     — resolve the deadline, reject infeasible deadlines
///                  early, compute the deadline-free energy lower bound
///                  (every block at its cheapest mode);
///   3. schedule  — fingerprint the normalized MILP instance
///                  (milp/Fingerprint.h) and solve through the
///                  content-addressed ResultCache, so repeated and
///                  concurrent identical instances cost one MILP.
///
/// Admission control and backpressure: the pending queue is bounded
/// (ServiceOptions::QueueCapacity); submissions beyond it complete
/// immediately as Rejected with a reason instead of queueing without
/// bound. Pending jobs are ordered by deadline urgency (absolute seconds
/// or tightness — smaller first), FIFO within a tie, so stringent jobs
/// never starve behind lax batch work.
///
/// shutdown() is drain-and-stop: accepted work completes, new work is
/// rejected; it is idempotent and runs from the destructor too.
/// pause()/resume() hold workers between dequeues — deterministic
/// backpressure and priority tests hinge on this.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SERVICE_SERVICE_H
#define CDVS_SERVICE_SERVICE_H

#include "analysis/Analysis.h"
#include "power/ModeTable.h"
#include "profile/Profile.h"
#include "service/Job.h"
#include "service/ResultCache.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

namespace cdvs {

/// Post-solve static verification policy (src/verify). Off skips the
/// passes entirely; Warn runs them and records findings on the result;
/// Strict additionally fails jobs whose schedule draws any
/// error-severity diagnostic.
enum class VerifyMode { Off, Warn, Strict };

/// \returns a printable lower-case name ("off", "warn", "strict").
const char *verifyModeName(VerifyMode Mode);

/// Parses "off"/"warn"/"strict"; \returns false on anything else.
bool parseVerifyMode(const std::string &Text, VerifyMode &Out);

/// Cluster cache-fill hook (src/cluster/PeerFill.h): given the request
/// and its instance fingerprint, try to pull the already-solved schedule
/// from the previous ring owner. Returns the fetched value, or nullptr
/// to fall through to a cold solve. Runs inside the single-flight leader
/// on a pipeline worker, so one fetch covers all concurrent duplicates.
using PeerFillFn = std::function<std::shared_ptr<const CachedSchedule>(
    const JobRequest &Request, const std::string &FingerprintHex)>;

/// Sizing and policy knobs for a SchedulerService.
struct ServiceOptions {
  /// Pipeline worker threads; 0 means one per hardware core.
  int NumWorkers = 0;
  /// Pending-job bound; submissions past it are rejected (backpressure).
  size_t QueueCapacity = 128;
  /// Result-cache entries across all shards.
  size_t CacheCapacity = 512;
  size_t CacheShards = 8;
  /// MILP threads per job; 1 keeps node exploration deterministic so
  /// cache hits are byte-identical to fresh solves, and lets job-level
  /// parallelism own the cores.
  int MilpThreadsPerJob = 1;
  /// Start with workers paused (tests build deterministic queues).
  bool StartPaused = false;
  /// Post-solve verification: run the src/verify passes over every
  /// fresh schedule (Warn records, Strict fails the job on errors).
  VerifyMode Verify = VerifyMode::Off;
  /// Run the analyze stage (static CFG analysis, memoized per workload)
  /// and hand the scheduler its certified presolve. Schedules are
  /// byte-identical either way; off skips the analysis and solves the
  /// full MILP.
  bool Presolve = true;
  /// When set, cache misses first try this peer fetch before solving
  /// cold (cluster mode; empty in single-node deployments).
  PeerFillFn PeerFill;
};

/// Service-level counters (cache counters live in CacheStats).
struct ServiceStats {
  long Submitted = 0; ///< accepted into the queue
  long Rejected = 0;  ///< refused at admission
  long Completed = 0; ///< finished Done
  long Infeasible = 0;
  long Failed = 0;
  long ProfileCacheHits = 0;
  long ProfileCacheMisses = 0;
  /// Jobs whose post-solve verification drew at least one error.
  long VerifyFailures = 0;
  /// Cache misses satisfied by a peer fetch instead of a cold solve.
  long PeerFills = 0;
  /// Deepest the admission queue has been (backpressure headroom).
  size_t PeakQueueDepth = 0;
};

/// The batch DVS-scheduling service; see the file comment.
class SchedulerService {
public:
  explicit SchedulerService(ServiceOptions Opts = ServiceOptions());
  ~SchedulerService();

  SchedulerService(const SchedulerService &) = delete;
  SchedulerService &operator=(const SchedulerService &) = delete;

  /// Submits one job. Admission happens synchronously: the returned
  /// future is already resolved (Rejected) when the queue is full or the
  /// service is shutting down.
  std::future<JobResult> submit(JobRequest Request);

  /// Callback-style submission for event-driven callers (the network
  /// front end): \p OnDone runs exactly once with the result — on a
  /// pipeline worker thread when the job was admitted, or inline (before
  /// this call returns, with a Rejected result) when admission refused
  /// it. \returns true when the job was admitted. \p OnDone must not
  /// throw and must not block the worker for long; shutdown() still
  /// drains admitted jobs, so every accepted callback fires before
  /// shutdown() returns.
  bool submitAsync(JobRequest Request,
                   std::function<void(JobResult)> OnDone);

  /// Submits every request, then waits; results come back in request
  /// order.
  std::vector<JobResult> runBatch(std::vector<JobRequest> Requests);

  /// Holds workers before their next dequeue (queued work stays queued).
  void pause();
  /// Releases paused workers.
  void resume();

  /// Drains accepted work, then stops the workers. Idempotent; new
  /// submissions are rejected once shutdown begins.
  void shutdown();

  ServiceStats stats() const;
  CacheStats cacheStats() const;
  /// Non-computing result-cache probe by fingerprint hex — what a
  /// PeerFetch frame answers with (net::Server). Does not touch cache
  /// counters or recency.
  std::shared_ptr<const CachedSchedule>
  cachePeek(const std::string &FingerprintHex) const {
    return Cache.peek(FingerprintHex);
  }
  /// Queue-pressure counters of the underlying TaskPool.
  PoolStats poolStats() const { return Pool.stats(); }

private:
  struct PendingJob {
    JobRequest Request;
    /// Exactly one completion channel is used: OnDone when nonempty
    /// (submitAsync), the promise otherwise (submit).
    std::promise<JobResult> Promise;
    std::function<void(JobResult)> OnDone;
    std::chrono::steady_clock::time_point Enqueued;
  };
  /// Priority key: (urgency, admission sequence) — smaller runs first.
  using QueueKey = std::pair<double, long>;

  void workerLoop();
  /// Shared admission path of submit/submitAsync: enqueues \p Job
  /// (moving from it) or returns the nonempty rejection reason
  /// (backpressure, shutdown), leaving \p Job with the caller.
  std::string admit(std::unique_ptr<PendingJob> &Job);
  JobResult execute(const JobRequest &Request, double QueueSeconds,
                    long DequeueSeq);
  /// The task-graph pipeline (Request.Graph != nullptr): per-node
  /// profiles through the same memoized profile cache, a critical-path
  /// bound stage, then the static plan + online slack-reclamation run
  /// through the result cache keyed on the graph fingerprint, verified
  /// by verify::checkTaskPlan under Opts.Verify.
  JobResult executeGraph(const JobRequest &Request, double QueueSeconds,
                         long DequeueSeq);
  /// Stage 1. \returns the per-category profiles (memoized) or an error.
  ErrorOr<std::vector<CategoryProfile>>
  profileStage(const JobRequest &Request, const ModeTable &Modes,
               double *ProfileSeconds);
  /// One (workload, input) profile through the memoized cache; the
  /// shared primitive of profileStage and the graph pipeline. Empty
  /// \p InputName selects the workload's default input.
  ErrorOr<std::shared_ptr<const Profile>>
  profileOne(const std::string &WorkloadName, const std::string &InputName,
             const ModeTable &Modes, const std::string &ModesKey,
             double *ProfileSeconds);

  ServiceOptions Opts;
  ResultCache Cache;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::map<QueueKey, std::unique_ptr<PendingJob>> Queue;
  bool Paused = false;
  bool Stopping = false;
  long AdmitSeq = 0;

  /// (workload|input|modes digest) -> collected profile. Grows with the
  /// distinct profiled inputs — a handful per workload — so unbounded is
  /// the right bound.
  std::map<std::string, std::shared_ptr<const Profile>> ProfileCache;
  std::mutex ProfileMu;

  /// workload -> static CFG analysis, computed once per service (the
  /// analyze stage); immutable and shared across workers.
  std::map<std::string, std::shared_ptr<const analysis::FunctionAnalysis>>
      AnalysisCache;
  std::mutex AnalysisMu;

  std::atomic<long> DequeueSeq{0};
  mutable std::mutex StatsMu;
  ServiceStats Counters;

  /// Workers run as long-lived pool tasks; the pool outlives the queue.
  TaskPool Pool;
};

} // namespace cdvs

#endif // CDVS_SERVICE_SERVICE_H
