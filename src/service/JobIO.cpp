//===- service/JobIO.cpp - JSON codec for job requests/results -------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/JobIO.h"

#include "milp/MilpSolver.h"

#include <cstdio>
#include <cstdlib>

using namespace cdvs;

ErrorOr<JobRequest> cdvs::jobRequestFromJson(const JsonValue &V) {
  if (!V.isObject())
    return makeError("request must be a JSON object");
  JobRequest R;
  for (const auto &[Key, Field] : V.Obj) {
    if (Key == "id" && Field.isString()) {
      R.Id = Field.Str;
    } else if (Key == "workload" && Field.isString()) {
      R.Workload = Field.Str;
    } else if (Key == "input" && Field.isString()) {
      R.Categories.push_back({Field.Str, 1.0});
    } else if (Key == "categories" && Field.isArray()) {
      for (const JsonValue &C : Field.Arr) {
        const JsonValue *In = C.find("input");
        const JsonValue *Wt = C.find("weight");
        if (!In || !In->isString())
          return makeError("category entries need a string 'input'");
        R.Categories.push_back(
            {In->Str, Wt && Wt->isNumber() ? Wt->Num : 1.0});
      }
    } else if (Key == "deadline" && Field.isNumber()) {
      R.DeadlineSeconds = Field.Num;
    } else if (Key == "tightness" && Field.isNumber()) {
      R.DeadlineTightness = Field.Num;
    } else if (Key == "filter" && Field.isNumber()) {
      R.FilterThreshold = Field.Num;
    } else if (Key == "initial_mode" && Field.isNumber()) {
      R.InitialMode = static_cast<int>(Field.Num);
    } else if (Key == "levels" && Field.isNumber()) {
      R.NumLevels = static_cast<int>(Field.Num);
    } else if (Key == "capacitance" && Field.isNumber()) {
      R.CapacitanceF = Field.Num;
    } else if (Key == "graph" && Field.isObject()) {
      ErrorOr<taskgraph::TaskGraph> G = taskGraphFromJson(Field);
      if (!G)
        return makeError(G.message());
      R.Graph = std::make_shared<const taskgraph::TaskGraph>(std::move(*G));
    } else if (Key == "graph_replan" && Field.isBool()) {
      R.GraphReplan = Field.B;
    } else {
      return makeError("unknown or mistyped request field '" + Key + "'");
    }
  }
  if (R.Workload.empty() && !R.Graph)
    return makeError("request is missing 'workload'");
  if (!R.Workload.empty() && R.Graph)
    return makeError("request cannot carry both 'workload' and 'graph'");
  return R;
}

ErrorOr<taskgraph::TaskGraph> cdvs::taskGraphFromJson(const JsonValue &V) {
  if (!V.isObject())
    return makeError("'graph' must be a JSON object");
  taskgraph::TaskGraph G;
  const JsonValue *Nodes = nullptr, *Edges = nullptr;
  for (const auto &[Key, Field] : V.Obj) {
    if (Key == "name" && Field.isString()) {
      G.Name = Field.Str;
    } else if (Key == "deadline" && Field.isNumber()) {
      G.DeadlineSeconds = Field.Num;
    } else if (Key == "tightness" && Field.isNumber()) {
      G.DeadlineTightness = Field.Num;
    } else if (Key == "nodes" && Field.isArray()) {
      Nodes = &Field;
    } else if (Key == "edges" && Field.isArray()) {
      Edges = &Field;
    } else {
      return makeError("unknown or mistyped graph field '" + Key + "'");
    }
  }
  if (!Nodes)
    return makeError("'graph' is missing array 'nodes'");
  for (const JsonValue &N : Nodes->Arr) {
    const JsonValue *Name = N.find("name");
    const JsonValue *Workload = N.find("workload");
    if (!Name || !Name->isString() || !Workload || !Workload->isString())
      return makeError("graph nodes need string 'name' and 'workload'");
    taskgraph::TaskNode Node;
    Node.Name = Name->Str;
    Node.Workload = Workload->Str;
    if (const JsonValue *In = N.find("input"); In && In->isString())
      Node.Input = In->Str;
    if (const JsonValue *F = N.find("actual"); F && F->isNumber())
      Node.ActualFactor = F->Num;
    G.Nodes.push_back(std::move(Node));
  }
  if (Edges) {
    for (const JsonValue &E : Edges->Arr) {
      if (!E.isArray() || E.Arr.size() != 2 || !E.Arr[0].isString() ||
          !E.Arr[1].isString())
        return makeError("graph edges must be [\"from\", \"to\"] pairs");
      int From = -1, To = -1;
      for (size_t I = 0; I < G.Nodes.size(); ++I) {
        if (G.Nodes[I].Name == E.Arr[0].Str)
          From = static_cast<int>(I);
        if (G.Nodes[I].Name == E.Arr[1].Str)
          To = static_cast<int>(I);
      }
      if (From < 0 || To < 0)
        return makeError("graph edge names unknown task '" +
                         (From < 0 ? E.Arr[0].Str : E.Arr[1].Str) + "'");
      G.Edges.push_back({From, To});
    }
  }
  ErrorOr<bool> Valid = taskgraph::validateGraph(G);
  if (!Valid)
    return makeError(Valid.message());
  return G;
}

ErrorOr<JobRequest> cdvs::jobRequestFromJsonText(const std::string &Text) {
  ErrorOr<JsonValue> V = parseJson(Text);
  if (!V)
    return makeError(V.message());
  return jobRequestFromJson(*V);
}

double cdvs::peekDeadlineTightness(const std::string &Text,
                                   double Fallback) {
  // One linear scan, no allocation, no tree. A "tightness" inside a
  // string value can fool this — acceptable for an admission hint; the
  // admit path still does the strict parse.
  static const char Key[] = "\"tightness\"";
  size_t At = Text.find(Key);
  if (At == std::string::npos)
    return Fallback;
  size_t I = At + sizeof(Key) - 1;
  while (I < Text.size() &&
         (Text[I] == ' ' || Text[I] == '\t' || Text[I] == '\n' ||
          Text[I] == '\r'))
    ++I;
  if (I >= Text.size() || Text[I] != ':')
    return Fallback;
  ++I;
  const char *Start = Text.c_str() + I;
  char *End = nullptr;
  double V = std::strtod(Start, &End);
  if (End == Start)
    return Fallback;
  return V;
}

std::string cdvs::taskGraphToJson(const taskgraph::TaskGraph &G) {
  char Buf[64];
  std::string Out = "{\"name\":\"" + jsonEscape(G.Name) + "\"";
  if (G.DeadlineSeconds > 0) {
    std::snprintf(Buf, sizeof(Buf), ",\"deadline\":%.17g",
                  G.DeadlineSeconds);
    Out += Buf;
  } else if (G.DeadlineTightness != 0.5) {
    std::snprintf(Buf, sizeof(Buf), ",\"tightness\":%.17g",
                  G.DeadlineTightness);
    Out += Buf;
  }
  Out += ",\"nodes\":[";
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    const taskgraph::TaskNode &N = G.Nodes[I];
    Out += std::string(I ? "," : "") + "{\"name\":\"" + jsonEscape(N.Name) +
           "\",\"workload\":\"" + jsonEscape(N.Workload) + "\"";
    if (!N.Input.empty())
      Out += ",\"input\":\"" + jsonEscape(N.Input) + "\"";
    if (N.ActualFactor != 1.0) {
      std::snprintf(Buf, sizeof(Buf), ",\"actual\":%.17g", N.ActualFactor);
      Out += Buf;
    }
    Out += "}";
  }
  Out += "],\"edges\":[";
  for (size_t I = 0; I < G.Edges.size(); ++I)
    Out += std::string(I ? "," : "") + "[\"" +
           jsonEscape(G.Nodes[G.Edges[I].first].Name) + "\",\"" +
           jsonEscape(G.Nodes[G.Edges[I].second].Name) + "\"]";
  Out += "]}";
  return Out;
}

std::string cdvs::jobRequestToJson(const JobRequest &R) {
  char Buf[64];
  std::string Out;
  if (R.Graph) {
    Out = "{\"graph\":" + taskGraphToJson(*R.Graph);
    if (!R.GraphReplan)
      Out += ",\"graph_replan\":false";
  } else {
    Out = "{\"workload\":\"" + jsonEscape(R.Workload) + "\"";
  }
  if (!R.Id.empty())
    Out += ",\"id\":\"" + jsonEscape(R.Id) + "\"";
  if (!R.Categories.empty()) {
    Out += ",\"categories\":[";
    for (size_t I = 0; I < R.Categories.size(); ++I) {
      std::snprintf(Buf, sizeof(Buf), "\"weight\":%.17g",
                    R.Categories[I].Weight);
      Out += std::string(I ? "," : "") + "{\"input\":\"" +
             jsonEscape(R.Categories[I].Input) + "\"," + Buf + "}";
    }
    Out += "]";
  }
  auto addNum = [&](const char *Key, double Val, double Default) {
    if (Val == Default)
      return;
    std::snprintf(Buf, sizeof(Buf), ",\"%s\":%.17g", Key, Val);
    Out += Buf;
  };
  JobRequest Defaults;
  addNum("deadline", R.DeadlineSeconds, Defaults.DeadlineSeconds);
  addNum("tightness", R.DeadlineTightness, Defaults.DeadlineTightness);
  addNum("filter", R.FilterThreshold, Defaults.FilterThreshold);
  addNum("initial_mode", R.InitialMode, Defaults.InitialMode);
  addNum("levels", R.NumLevels, Defaults.NumLevels);
  addNum("capacitance", R.CapacitanceF, Defaults.CapacitanceF);
  Out += "}";
  return Out;
}

std::string cdvs::jobResultToJson(const JobResult &R, bool IncludeSchedule,
                                  const std::string &ScheduleFile) {
  char Buf[256];
  std::string Out = "{\"id\":\"" + jsonEscape(R.Id) + "\",\"status\":\"";
  Out += jobStatusName(R.Status);
  Out += "\"";
  if (!R.Reason.empty())
    Out += ",\"reason\":\"" + jsonEscape(R.Reason) + "\"";
  if (!R.Fingerprint.empty())
    Out += ",\"fingerprint\":\"" + R.Fingerprint + "\"";
  std::snprintf(Buf, sizeof(Buf),
                ",\"cache_hit\":%s,\"shared_flight\":%s",
                R.CacheHit ? "true" : "false",
                R.SharedFlight ? "true" : "false");
  Out += Buf;
  if (R.Status == JobStatus::Done) {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"energy_uj\":%.3f,\"lower_bound_uj\":%.3f,"
                  "\"deadline_ms\":%.4f,\"milp\":\"%s\"",
                  R.PredictedEnergyJoules * 1e6, R.LowerBoundJoules * 1e6,
                  R.DeadlineSeconds * 1e3, milpStatusName(R.Milp));
    Out += Buf;
  }
  if (R.Replans >= 0) {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"replans\":%d,\"replans_accepted\":%d,"
                  "\"static_energy_uj\":%.3f,\"actual_energy_uj\":%.3f,"
                  "\"makespan_ms\":%.4f",
                  R.Replans, R.ReplansAccepted, R.StaticEnergyJoules * 1e6,
                  R.ActualEnergyJoules * 1e6, R.MakespanSeconds * 1e3);
    Out += Buf;
  }
  if (R.VerifyErrors >= 0) {
    std::snprintf(Buf, sizeof(Buf), ",\"verify_errors\":%d",
                  R.VerifyErrors);
    Out += Buf;
    if (!R.VerifyDetail.empty())
      Out += ",\"verify_detail\":\"" + jsonEscape(R.VerifyDetail) + "\"";
  }
  std::snprintf(Buf, sizeof(Buf),
                ",\"queue_ms\":%.3f,\"profile_ms\":%.3f,"
                "\"bound_ms\":%.3f,\"solve_ms\":%.3f,"
                "\"serialize_ms\":%.3f,\"verify_ms\":%.3f,"
                "\"total_ms\":%.3f",
                R.QueueSeconds * 1e3, R.ProfileSeconds * 1e3,
                R.BoundSeconds * 1e3, R.SolveSeconds * 1e3,
                R.SerializeSeconds * 1e3, R.VerifySeconds * 1e3,
                R.TotalSeconds * 1e3);
  Out += Buf;
  if (!R.Backend.empty())
    Out += ",\"backend\":\"" + jsonEscape(R.Backend) + "\"";
  if (!ScheduleFile.empty())
    Out += ",\"schedule_file\":\"" + jsonEscape(ScheduleFile) + "\"";
  if (IncludeSchedule && !R.ScheduleText.empty())
    Out += ",\"schedule\":\"" + jsonEscape(R.ScheduleText) + "\"";
  Out += "}";
  return Out;
}

namespace {

bool parseJobStatus(const std::string &Name, JobStatus &Out) {
  for (JobStatus S : {JobStatus::Done, JobStatus::Rejected,
                      JobStatus::Infeasible, JobStatus::Failed}) {
    if (Name == jobStatusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

bool parseMilpStatus(const std::string &Name, MilpStatus &Out) {
  for (MilpStatus S :
       {MilpStatus::Optimal, MilpStatus::Feasible, MilpStatus::Infeasible,
        MilpStatus::Unbounded, MilpStatus::Limit}) {
    if (Name == milpStatusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

} // namespace

ErrorOr<JobResult> cdvs::jobResultFromJson(const JsonValue &V) {
  if (!V.isObject())
    return makeError("result must be a JSON object");
  const JsonValue *Status = V.find("status");
  if (!Status || !Status->isString())
    return makeError("result is missing string 'status'");
  JobResult R;
  if (!parseJobStatus(Status->Str, R.Status))
    return makeError("unknown result status '" + Status->Str + "'");

  auto str = [&](const char *Key, std::string &Out) {
    if (const JsonValue *F = V.find(Key); F && F->isString())
      Out = F->Str;
  };
  auto num = [&](const char *Key, double &Out, double Scale = 1.0) {
    if (const JsonValue *F = V.find(Key); F && F->isNumber())
      Out = F->Num * Scale;
  };
  auto boolean = [&](const char *Key, bool &Out) {
    if (const JsonValue *F = V.find(Key); F && F->isBool())
      Out = F->B;
  };

  str("id", R.Id);
  str("reason", R.Reason);
  str("fingerprint", R.Fingerprint);
  boolean("cache_hit", R.CacheHit);
  boolean("shared_flight", R.SharedFlight);
  num("energy_uj", R.PredictedEnergyJoules, 1e-6);
  num("lower_bound_uj", R.LowerBoundJoules, 1e-6);
  num("deadline_ms", R.DeadlineSeconds, 1e-3);
  if (const JsonValue *F = V.find("milp"); F && F->isString())
    if (!parseMilpStatus(F->Str, R.Milp))
      return makeError("unknown milp status '" + F->Str + "'");
  if (const JsonValue *F = V.find("verify_errors"); F && F->isNumber())
    R.VerifyErrors = static_cast<int>(F->Num);
  if (const JsonValue *F = V.find("replans"); F && F->isNumber())
    R.Replans = static_cast<int>(F->Num);
  if (const JsonValue *F = V.find("replans_accepted"); F && F->isNumber())
    R.ReplansAccepted = static_cast<int>(F->Num);
  num("static_energy_uj", R.StaticEnergyJoules, 1e-6);
  num("actual_energy_uj", R.ActualEnergyJoules, 1e-6);
  num("makespan_ms", R.MakespanSeconds, 1e-3);
  str("verify_detail", R.VerifyDetail);
  num("queue_ms", R.QueueSeconds, 1e-3);
  num("profile_ms", R.ProfileSeconds, 1e-3);
  num("bound_ms", R.BoundSeconds, 1e-3);
  num("solve_ms", R.SolveSeconds, 1e-3);
  num("serialize_ms", R.SerializeSeconds, 1e-3);
  num("verify_ms", R.VerifySeconds, 1e-3);
  num("total_ms", R.TotalSeconds, 1e-3);
  str("backend", R.Backend);
  str("schedule", R.ScheduleText);
  return R;
}

ErrorOr<JobResult> cdvs::jobResultFromJsonText(const std::string &Text) {
  ErrorOr<JsonValue> V = parseJson(Text);
  if (!V)
    return makeError(V.message());
  return jobResultFromJson(*V);
}

ErrorOr<std::string> cdvs::peerFetchFromJsonText(const std::string &Text) {
  ErrorOr<JsonValue> V = parseJson(Text);
  if (!V)
    return makeError("peer_fetch payload: " + V.message());
  const JsonValue *F = V->find("fingerprint");
  if (!F || !F->isString())
    return makeError("peer_fetch payload needs string 'fingerprint'");
  if (F->Str.size() != 32)
    return makeError("peer_fetch fingerprint must be 32 hex chars, got " +
                     std::to_string(F->Str.size()));
  for (char C : F->Str)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f') ||
          (C >= 'A' && C <= 'F')))
      return makeError("peer_fetch fingerprint has a non-hex byte");
  return F->Str;
}

std::string cdvs::peerDataToJson(const CachedSchedule *C) {
  if (!C)
    return "{\"found\":false}";
  char Buf[256];
  std::string Out = "{\"found\":true,\"feasible\":";
  Out += C->Feasible ? "true" : "false";
  if (!C->Reason.empty())
    Out += ",\"reason\":\"" + jsonEscape(C->Reason) + "\"";
  std::snprintf(Buf, sizeof(Buf),
                ",\"energy_j\":%.17g,\"lower_bound_j\":%.17g,"
                "\"milp\":\"%s\",\"solve_s\":%.17g,\"serialize_s\":%.17g",
                C->PredictedEnergyJoules, C->LowerBoundJoules,
                milpStatusName(C->Milp), C->SolveSeconds,
                C->SerializeSeconds);
  Out += Buf;
  if (C->VerifyErrors >= 0) {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"verify_errors\":%d,\"verify_s\":%.17g",
                  C->VerifyErrors, C->VerifySeconds);
    Out += Buf;
    if (!C->VerifyDetail.empty())
      Out += ",\"verify_detail\":\"" + jsonEscape(C->VerifyDetail) + "\"";
  }
  if (C->Replans >= 0) {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"replans\":%d,\"replans_accepted\":%d,"
                  "\"static_energy_j\":%.17g,\"actual_energy_j\":%.17g,"
                  "\"makespan_s\":%.17g",
                  C->Replans, C->ReplansAccepted, C->StaticEnergyJoules,
                  C->ActualEnergyJoules, C->MakespanSeconds);
    Out += Buf;
  }
  if (!C->ScheduleText.empty())
    Out += ",\"schedule\":\"" + jsonEscape(C->ScheduleText) + "\"";
  Out += "}";
  return Out;
}

ErrorOr<PeerData> cdvs::peerDataFromJsonText(const std::string &Text) {
  ErrorOr<JsonValue> V = parseJson(Text);
  if (!V)
    return makeError("peer_data payload: " + V.message());
  const JsonValue *Found = V->find("found");
  if (!Found || !Found->isBool())
    return makeError("peer_data payload needs bool 'found'");
  PeerData D;
  if (!Found->B)
    return D;
  const JsonValue *Feasible = V->find("feasible");
  if (!Feasible || !Feasible->isBool())
    return makeError("found peer_data needs bool 'feasible'");
  auto C = std::make_shared<CachedSchedule>();
  C->Feasible = Feasible->B;
  auto str = [&](const char *Key, std::string &Out) {
    if (const JsonValue *F = V->find(Key); F && F->isString())
      Out = F->Str;
  };
  auto num = [&](const char *Key, double &Out) {
    if (const JsonValue *F = V->find(Key); F && F->isNumber())
      Out = F->Num;
  };
  str("reason", C->Reason);
  str("schedule", C->ScheduleText);
  num("energy_j", C->PredictedEnergyJoules);
  num("lower_bound_j", C->LowerBoundJoules);
  num("solve_s", C->SolveSeconds);
  num("serialize_s", C->SerializeSeconds);
  if (const JsonValue *F = V->find("milp"); F && F->isString())
    if (!parseMilpStatus(F->Str, C->Milp))
      return makeError("unknown milp status '" + F->Str + "'");
  if (const JsonValue *F = V->find("verify_errors"); F && F->isNumber())
    C->VerifyErrors = static_cast<int>(F->Num);
  str("verify_detail", C->VerifyDetail);
  num("verify_s", C->VerifySeconds);
  if (const JsonValue *F = V->find("replans"); F && F->isNumber())
    C->Replans = static_cast<int>(F->Num);
  if (const JsonValue *F = V->find("replans_accepted"); F && F->isNumber())
    C->ReplansAccepted = static_cast<int>(F->Num);
  num("static_energy_j", C->StaticEnergyJoules);
  num("actual_energy_j", C->ActualEnergyJoules);
  num("makespan_s", C->MakespanSeconds);
  if (C->Feasible && C->ScheduleText.empty())
    return makeError("found feasible peer_data is missing 'schedule'");
  D.Found = true;
  D.Value = std::move(C);
  return D;
}
