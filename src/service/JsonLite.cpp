//===- service/JsonLite.cpp - Minimal JSON reader/writer -------------------===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/JsonLite.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace cdvs;

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string; Pos is the cursor.
struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "json: " + Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    for (const char *P = Word; *P; ++P, ++Pos)
      if (Pos >= Text.size() || Text[Pos] != *P)
        return fail(std::string("bad literal (expected ") + Word + ")");
    return true;
  }

  /// Appends \p Code as UTF-8 (up to U+10FFFF).
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xc0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xe0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  /// Reads the 4 hex digits of a \u escape into \p Code.
  bool hex4(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return fail("unterminated \\u escape");
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code |= static_cast<unsigned>(H - 'A' + 10);
      else
        return fail("bad \\u escape digit");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (++Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          unsigned Code = 0;
          if (!hex4(Code))
            return false;
          if (Code >= 0xdc00 && Code <= 0xdfff)
            return fail("unpaired low surrogate in \\u escape");
          if (Code >= 0xd800 && Code <= 0xdbff) {
            // A high surrogate is only meaningful as half of a pair;
            // a lone one would decode to CESU-8 garbage.
            if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
                Text[Pos + 1] != 'u')
              return fail("unpaired high surrogate in \\u escape");
            Pos += 2;
            unsigned Low = 0;
            if (!hex4(Low))
              return false;
            if (Low < 0xdc00 || Low > 0xdfff)
              return fail("bad low surrogate in \\u escape");
            Code = 0x10000 + ((Code - 0xd800) << 10) + (Low - 0xdc00);
          }
          appendUtf8(Out, Code);
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &V) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      V.K = JsonValue::Kind::Object;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipSpace();
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return false;
        JsonValue Member;
        if (!parseValue(Member))
          return false;
        // Duplicate keys would make find() answer for one member while
        // the sender meant the other; ambiguity is an error here.
        for (const auto &[Name, Existing] : V.Obj)
          if (Name == Key)
            return fail("duplicate object key '" + Key + "'");
        V.Obj.emplace_back(std::move(Key), std::move(Member));
        skipSpace();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = JsonValue::Kind::Array;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        JsonValue Elem;
        if (!parseValue(Elem))
          return false;
        V.Arr.push_back(std::move(Elem));
        skipSpace();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      V.K = JsonValue::Kind::String;
      return parseString(V.Str);
    }
    if (C == 't') {
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return literal("true");
    }
    if (C == 'f') {
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return literal("false");
    }
    if (C == 'n') {
      V.K = JsonValue::Kind::Null;
      return literal("null");
    }
    // Number.
    char *End = nullptr;
    V.Num = std::strtod(Text.c_str() + Pos, &End);
    if (End == Text.c_str() + Pos)
      return fail("invalid value");
    V.K = JsonValue::Kind::Number;
    Pos = static_cast<size_t>(End - Text.c_str());
    return true;
  }
};

} // namespace

ErrorOr<JsonValue> cdvs::parseJson(const std::string &Text) {
  Parser P(Text);
  JsonValue V;
  if (!P.parseValue(V))
    return makeError(P.Error);
  P.skipSpace();
  if (P.Pos != Text.size())
    return makeError("json: trailing data at offset " +
                     std::to_string(P.Pos));
  return V;
}

std::string cdvs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
