//===- service/JsonLite.h - Minimal JSON reader/writer ----------*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough JSON for the dvsd request/response protocol: a recursive-
/// descent parser into a small value tree, and string escaping for the
/// emit side (responses are assembled by hand — they are flat). Supports
/// the full value grammar with numbers as doubles; \uXXXX escapes decode
/// to UTF-8, with surrogate pairs combined and lone surrogates rejected.
/// Malformed input fails loudly: duplicate object keys and truncated
/// \u escapes are errors, never silently resolved — requests arrive over
/// the network, and an ambiguous request must not schedule anything. No
/// external dependency, matching the container constraint.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SERVICE_JSONLITE_H
#define CDVS_SERVICE_JSONLITE_H

#include "support/Error.h"

#include <string>
#include <utility>
#include <vector>

namespace cdvs {

/// A parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
ErrorOr<JsonValue> parseJson(const std::string &Text);

/// Escapes \p S for embedding inside a JSON string literal (no quotes
/// added).
std::string jsonEscape(const std::string &S);

} // namespace cdvs

#endif // CDVS_SERVICE_JSONLITE_H
