//===- service/JobIO.h - JSON codec for job requests/results ----*- C++ -*-===//
//
// Part of the cdvs project (PLDI 2003 compile-time DVS reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON vocabulary for service::JobRequest / service::JobResult,
/// shared by the dvsd JSON-lines CLI, the cdvs-wire v1 network protocol
/// (src/net), and the load generator — factored here so the three front
/// ends cannot drift apart. Request objects are the dvsd line format:
///
///   {"id": "j1", "workload": "gsm", "input": "speech1",
///    "categories": [{"input": "speech2", "weight": 0.5}, ...],
///    "deadline": 0.0012, "tightness": 0.5, "filter": 0.02,
///    "initial_mode": -1, "levels": 0, "capacitance": 1e-5}
///
/// Unknown request fields are errors, so a typo fails loudly instead of
/// silently scheduling the default. Result objects carry status, cache
/// provenance, per-stage latency, and (when asked) the schedule itself
/// as `cdvs-schedule v1` text under "schedule" — that raw text is what
/// the byte-identity checks diff against dvsd's --schedules output.
///
//===----------------------------------------------------------------------===//

#ifndef CDVS_SERVICE_JOBIO_H
#define CDVS_SERVICE_JOBIO_H

#include "service/JsonLite.h"
#include "service/Job.h"
#include "service/ResultCache.h"
#include "support/Error.h"

#include <memory>
#include <string>

namespace cdvs {

/// Maps a parsed JSON object onto a JobRequest; unknown or mistyped
/// fields are errors. Task-graph jobs carry a "graph" object instead of
/// "workload":
///
///   {"id": "g1", "graph": {"name": "diamond", "tightness": 0.45,
///     "nodes": [{"name": "a", "workload": "adpcm", "actual": 0.7}, ...],
///     "edges": [["a", "b"], ...]}, "graph_replan": false}
ErrorOr<JobRequest> jobRequestFromJson(const JsonValue &V);

/// Maps a parsed "graph" object onto a validated TaskGraph (edges name
/// tasks by their "name" field). Unknown fields and structural
/// violations (cycles, duplicate names, bad edge names) are errors.
ErrorOr<taskgraph::TaskGraph> taskGraphFromJson(const JsonValue &V);

/// Serializes \p G as the "graph" object jobRequestFromJson accepts.
/// Canonical: nodes in index order, defaults omitted, %.17g numerics.
std::string taskGraphToJson(const taskgraph::TaskGraph &G);

/// Parses one JSON request document (a dvsd request line).
ErrorOr<JobRequest> jobRequestFromJsonText(const std::string &Text);

/// Best-effort deadline-class peek for overload admission: scans \p Text
/// for the first `"tightness"` key and reads the number after its colon
/// without building a JSON tree — the whole point is that an overloaded
/// reactor decides shed-or-admit in one cheap pass over the bytes.
/// \returns \p Fallback when the key is absent or the value does not
/// parse (the full parse on the admit path reports real errors).
double peekDeadlineTightness(const std::string &Text, double Fallback);

/// Serializes \p R as one request object. Only fields that differ from
/// the defaults are emitted, so the output round-trips through
/// jobRequestFromJson to an equivalent request.
std::string jobRequestToJson(const JobRequest &R);

/// Serializes \p R as one result object (dvsd's line format). With
/// \p IncludeSchedule the `cdvs-schedule v1` text rides along under
/// "schedule"; \p ScheduleFile, when nonempty, is recorded as
/// "schedule_file" (dvsd's --schedules=DIR receipts).
std::string jobResultToJson(const JobResult &R, bool IncludeSchedule,
                            const std::string &ScheduleFile = "");

/// Maps a parsed result object back onto a JobResult (client side).
/// Numeric fields survive at the emitters' printed precision; the
/// schedule text survives byte-exactly.
ErrorOr<JobResult> jobResultFromJson(const JsonValue &V);

/// Parses one JSON result document.
ErrorOr<JobResult> jobResultFromJsonText(const std::string &Text);

/// Parses a PeerFetch frame payload ({"fingerprint":"<32 hex>"}).
/// \returns the fingerprint hex, validated for length and hex-ness.
ErrorOr<std::string> peerFetchFromJsonText(const std::string &Text);

/// Serializes a PeerData frame payload: a cache miss when \p C is null
/// ({"found":false}), otherwise the full CachedSchedule. Doubles are
/// emitted at %.17g so the fetched value round-trips bit-exactly — a
/// peer-filled backend then serves responses byte-identical to the
/// origin's (and to single-node dvsd output).
std::string peerDataToJson(const CachedSchedule *C);

/// A decoded PeerData payload: Found=false on a peer cache miss.
struct PeerData {
  bool Found = false;
  std::shared_ptr<const CachedSchedule> Value;
};

/// Parses a PeerData frame payload.
ErrorOr<PeerData> peerDataFromJsonText(const std::string &Text);

} // namespace cdvs

#endif // CDVS_SERVICE_JOBIO_H
